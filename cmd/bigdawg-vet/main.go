// Command bigdawg-vet is the repository's vet tool: five analyzers that
// enforce polystore invariants across every package. Run it through the
// go command so package resolution and export data come from the build
// cache:
//
//	go build -o /tmp/bigdawg-vet ./cmd/bigdawg-vet
//	go vet -vettool=/tmp/bigdawg-vet ./...
//
// See internal/lint/README.md for the analyzer catalogue and the
// //lint:ignore suppression syntax.
package main

import (
	"repro/internal/lint"
	"repro/internal/lint/unitchecker"
)

func main() {
	unitchecker.Main(lint.Analyzers()...)
}
