// Command mimicgen generates the synthetic MIMIC II dataset as CSV
// files plus a notes file, for loading into external tools or
// inspecting the corpus the demo runs on.
//
// Usage:
//
//	mimicgen -patients 500 -seed 1 -out ./data
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/engine"
	"repro/internal/mimic"
)

func main() {
	var (
		patients = flag.Int("patients", 500, "number of patients")
		seed     = flag.Int64("seed", 1, "generator seed")
		seconds  = flag.Int("waveform-seconds", 8, "seconds of waveform per patient")
		out      = flag.String("out", "mimic_data", "output directory")
	)
	flag.Parse()

	cfg := mimic.DefaultConfig()
	cfg.Patients = *patients
	cfg.Seed = *seed
	cfg.WaveformSeconds = *seconds
	ds, err := mimic.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	tables := map[string]*engine.Relation{
		"patients.csv":      ds.Patients,
		"admissions.csv":    ds.Admissions,
		"labs.csv":          ds.Labs,
		"prescriptions.csv": ds.Prescriptions,
	}
	for name, rel := range tables {
		if err := writeCSV(filepath.Join(*out, name), rel); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %-18s %6d rows\n", name, rel.Len())
	}

	notesPath := filepath.Join(*out, "notes.txt")
	f, err := os.Create(notesPath)
	if err != nil {
		log.Fatal(err)
	}
	bw := bufio.NewWriter(f)
	for _, n := range ds.Notes {
		fmt.Fprintf(bw, "p%06d\t%s\t%d\t%s\n", n.PatientID, n.Author, n.Seq, n.Text)
	}
	if err := bw.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %-18s %6d notes\n", "notes.txt", len(ds.Notes))

	// One sample waveform so users can eyeball the signal.
	wfPath := filepath.Join(*out, "waveform_p1.csv")
	wf := mimic.Waveform(cfg.Seed, 1, 0, cfg.SampleRate*cfg.WaveformSeconds, cfg.SampleRate, false)
	wfRel := engine.NewRelation(engine.NewSchema(
		engine.Col("t", engine.TypeInt), engine.Col("v", engine.TypeFloat)))
	for i, v := range wf {
		_ = wfRel.Append(engine.Tuple{engine.NewInt(int64(i)), engine.NewFloat(v)})
	}
	if err := writeCSV(wfPath, wfRel); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %-18s %6d samples @ %d Hz\n", "waveform_p1.csv", len(wf), cfg.SampleRate)
}

func writeCSV(path string, rel *engine.Relation) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := rel.WriteCSV(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
