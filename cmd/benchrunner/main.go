// Command benchrunner regenerates every experiment table of the
// reproduction (E1–E11 in DESIGN.md) and prints them in the format
// recorded in EXPERIMENTS.md.
//
// Usage:
//
//	benchrunner [-quick] [-only E2,E5] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "small sizes for a fast smoke run")
		only  = flag.String("only", "", "comma-separated experiment IDs (e.g. E2,E5)")
		seed  = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	wanted := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			wanted[id] = true
		}
	}

	cfg := experiments.Config{Quick: *quick, Seed: *seed}
	start := time.Now()
	tables, err := experiments.RunAll(cfg)
	if err != nil {
		// Print what completed before failing.
		for _, t := range tables {
			if len(wanted) == 0 || wanted[t.ID] {
				fmt.Println(t)
			}
		}
		log.Fatal(err)
	}
	for _, t := range tables {
		if len(wanted) > 0 && !wanted[t.ID] {
			continue
		}
		fmt.Println(t)
	}
	fmt.Printf("all experiments completed in %s (quick=%v, seed=%d)\n",
		time.Since(start).Round(time.Millisecond), *quick, *seed)
}
