// Command benchcheck is the bench-trajectory regression gate: it
// compares a freshly generated BENCH_*.json against the committed
// baseline and fails when a tracked headline metric regresses past the
// allowed fraction. It understands both shapes bench.sh emits — an
// array of named benchmark entries ([{"name": ..., "allocs_per_op":
// ...}, ...]) and a single flat object (BENCH_lint.json,
// BENCH_serve.json).
//
// A regression is current > baseline*(1+max-regress) + min-delta;
// -min-delta is absolute slack so near-zero baselines (e.g. 0
// findings, 171 ns) are not failed by noise a fraction cannot absorb.
// Entries or metrics present in the baseline but missing from the
// current file fail the check: a benchmark silently disappearing is
// exactly the partial-JSON failure mode this tool exists to catch.
//
//	benchcheck -baseline BENCH_obs.json -current /tmp/BENCH_obs.json \
//	    -metrics allocs_per_op,bytes_per_op -max-regress 0.25
//	benchcheck -current /tmp/BENCH_serve.json \
//	    -require qps,p50_ms,p99_ms -require-positive requests
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strings"
)

// entry is one named bag of numeric metrics.
type entry struct {
	name    string
	metrics map[string]float64
}

func main() {
	baseline := flag.String("baseline", "", "committed baseline JSON (omit to only -require)")
	current := flag.String("current", "", "freshly generated JSON (required)")
	metricsFlag := flag.String("metrics", "", "comma-separated numeric fields gated for regression against the baseline")
	maxRegress := flag.Float64("max-regress", 0.25, "allowed fractional regression over baseline")
	minDelta := flag.Float64("min-delta", 0, "absolute slack added to every bound")
	require := flag.String("require", "", "comma-separated fields every current entry must contain")
	requirePositive := flag.String("require-positive", "", "comma-separated numeric fields that must be > 0 in every current entry")
	flag.Parse()

	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchcheck: -current is required")
		os.Exit(2)
	}
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	if len(cur) == 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: %s holds zero benchmark entries\n", *current)
		os.Exit(1)
	}

	var failures []string
	for _, field := range splitList(*require) {
		for _, e := range cur {
			if _, ok := e.metrics[field]; !ok {
				failures = append(failures, fmt.Sprintf("%s: entry %q lacks required field %q", *current, e.name, field))
			}
		}
	}
	for _, field := range splitList(*requirePositive) {
		for _, e := range cur {
			v, ok := e.metrics[field]
			if !ok {
				failures = append(failures, fmt.Sprintf("%s: entry %q lacks required field %q", *current, e.name, field))
			} else if v <= 0 {
				failures = append(failures, fmt.Sprintf("%s: entry %q has %s = %v, want > 0", *current, e.name, field, v))
			}
		}
	}

	tracked := splitList(*metricsFlag)
	if *baseline != "" && len(tracked) > 0 {
		base, err := load(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(2)
		}
		curByName := map[string]entry{}
		for _, e := range cur {
			curByName[e.name] = e
		}
		checked := 0
		for _, be := range base {
			ce, ok := curByName[be.name]
			if !ok {
				failures = append(failures, fmt.Sprintf("baseline entry %q missing from %s", be.name, *current))
				continue
			}
			for _, m := range tracked {
				bv, ok := be.metrics[m]
				if !ok {
					continue // baseline never tracked this metric for this entry
				}
				cv, ok := ce.metrics[m]
				if !ok {
					failures = append(failures, fmt.Sprintf("entry %q lost tracked metric %q", be.name, m))
					continue
				}
				checked++
				bound := bv*(1+*maxRegress) + *minDelta
				if cv > bound {
					failures = append(failures, fmt.Sprintf(
						"entry %q metric %q regressed: %v > %v (baseline %v, +%.0f%% + %v slack)",
						be.name, m, cv, bound, bv, *maxRegress*100, *minDelta))
				}
			}
		}
		if checked == 0 {
			failures = append(failures, fmt.Sprintf(
				"no tracked metric (%s) was comparable between %s and %s — nothing was actually gated",
				*metricsFlag, *baseline, *current))
		}
	}

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "benchcheck: FAIL: "+f)
		}
		os.Exit(1)
	}
	fmt.Printf("benchcheck: %s ok (%d entries)\n", *current, len(cur))
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// load parses a BENCH_*.json file into named entries. Arrays become
// one entry per element (named by the element's "name" field); a flat
// object becomes a single entry named after itself.
func load(path string) ([]entry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var any_ any
	if err := json.Unmarshal(raw, &any_); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	switch v := any_.(type) {
	case []any:
		entries := make([]entry, 0, len(v))
		for i, el := range v {
			m, ok := el.(map[string]any)
			if !ok {
				return nil, fmt.Errorf("%s: element %d is not an object", path, i)
			}
			e := toEntry(m)
			if e.name == "" {
				return nil, fmt.Errorf("%s: element %d lacks a \"name\"", path, i)
			}
			entries = append(entries, e)
		}
		return entries, nil
	case map[string]any:
		e := toEntry(v)
		if e.name == "" {
			// Nameless flat objects (BENCH_lint.json) get a constant name
			// so a baseline in the repo root matches a current in /tmp.
			e.name = "snapshot"
		}
		return []entry{e}, nil
	default:
		return nil, fmt.Errorf("%s: top level is neither array nor object", path)
	}
}

// cpuSuffix is go test's GOMAXPROCS suffix on benchmark names
// ("BenchmarkX/case-8"): stripped so baselines compare across machines
// with different core counts.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

func toEntry(m map[string]any) entry {
	e := entry{metrics: map[string]float64{}}
	for k, v := range m {
		switch val := v.(type) {
		case float64:
			e.metrics[k] = val
		case bool:
			// Booleans gate as 0/1 so "clean": true is trackable.
			if val {
				e.metrics[k] = 1
			} else {
				e.metrics[k] = 0
			}
		case string:
			if k == "name" {
				e.name = cpuSuffix.ReplaceAllString(val, "")
			}
		}
	}
	return e
}
