package main

// The -bench-serve mode: a closed-loop load driver for the server. It
// starts an in-process server over a generated federation (the same
// seeded generator the equivalence and chaos harnesses pin), hammers
// it with N concurrent client connections for a fixed duration, and
// reports QPS plus latency quantiles measured through the metrics
// registry's lock-free histogram. Optional -bench-max-p99 /
// -bench-max-error-rate bounds turn the run into a pass/fail load
// smoke — the CI serve job's gate.
//
// Outcomes are accounted in four classes: ok, query errors (the
// query itself failed — generated queries include division by zero on
// purpose, so these are expected and not gated), overloaded
// (admission rejection) and transport errors (lost/corrupt
// connection). The error-rate gate covers overloaded + transport.

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/server/client"
)

var (
	benchServe     = flag.Bool("bench-serve", false, "run the server load driver instead of the shell")
	benchClients   = flag.Int("bench-clients", 64, "concurrent client connections")
	benchDuration  = flag.Duration("bench-duration", 3*time.Second, "load duration")
	benchSeed      = flag.Int64("bench-seed", 1, "federation generator seed")
	benchOut       = flag.String("bench-out", "BENCH_serve.json", "result JSON path")
	benchMaxP99    = flag.Duration("bench-max-p99", 0, "fail if p99 latency exceeds this (0 disables)")
	benchMaxErrRte = flag.Float64("bench-max-error-rate", -1, "fail if (overloaded+transport)/requests exceeds this (negative disables)")
)

// serveBenchResult is the BENCH_serve.json schema benchcheck consumes.
type serveBenchResult struct {
	Name            string  `json:"name"`
	Clients         int     `json:"clients"`
	DurationS       float64 `json:"duration_s"`
	Seed            int64   `json:"seed"`
	Requests        int64   `json:"requests"`
	OK              int64   `json:"ok"`
	QueryErrors     int64   `json:"query_errors"`
	Overloaded      int64   `json:"overloaded"`
	TransportErrors int64   `json:"transport_errors"`
	QPS             float64 `json:"qps"`
	P50Ms           float64 `json:"p50_ms"`
	P95Ms           float64 `json:"p95_ms"`
	P99Ms           float64 `json:"p99_ms"`
	ErrorRate       float64 `json:"error_rate"`
}

func runBenchServe() error {
	g := core.NewFedGen(*benchSeed)
	objs := g.Catalog()
	p := core.New()
	for _, o := range objs {
		if err := o.Load(p); err != nil {
			return fmt.Errorf("bench-serve: load %s into %s: %w", o.Name, o.Eng, err)
		}
	}
	queries := g.Queries(objs, 8)

	// Queue deep enough that the closed-loop drivers (one request in
	// flight per connection) are never rejected for queueing alone —
	// overload rejections in this run indicate a real regression.
	s, err := server.Serve(p, "127.0.0.1:0", server.Config{MaxQueue: 2 * *benchClients})
	if err != nil {
		return fmt.Errorf("bench-serve: %w", err)
	}

	reg := metrics.NewRegistry()
	lat := reg.Histogram("bench.latency")
	var okN, queryErrN, overloadedN, transportN atomic.Int64

	fmt.Printf("bench-serve: %d clients × %s against %d objects, %d query shapes (seed %d)\n",
		*benchClients, *benchDuration, len(objs), len(queries), *benchSeed)
	deadline := time.Now().Add(*benchDuration)
	var wg sync.WaitGroup
	for w := 0; w < *benchClients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(s.Addr().String())
			if err != nil {
				transportN.Add(1)
				return
			}
			defer func() { _ = c.Close() }()
			for i := w; time.Now().Before(deadline); i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				start := time.Now()
				_, err := c.Query(ctx, queries[i%len(queries)])
				cancel()
				switch {
				case err == nil:
					okN.Add(1)
					lat.Observe(time.Since(start))
				case errors.Is(err, client.ErrOverloaded):
					overloadedN.Add(1)
				default:
					var qe *client.QueryError
					if errors.As(err, &qe) {
						// The query failed but the server served it; its
						// latency is as real as a success's.
						queryErrN.Add(1)
						lat.Observe(time.Since(start))
						continue
					}
					transportN.Add(1)
					_ = c.Close()
					nc, derr := client.Dial(s.Addr().String())
					if derr != nil {
						return
					}
					c = nc
				}
			}
		}(w)
	}
	wg.Wait()

	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer scancel()
	if err := s.Shutdown(sctx); err != nil {
		return fmt.Errorf("bench-serve: drain failed: %w", err)
	}

	total := okN.Load() + queryErrN.Load() + overloadedN.Load() + transportN.Load()
	completed := okN.Load() + queryErrN.Load()
	res := serveBenchResult{
		Name:            "bench_serve",
		Clients:         *benchClients,
		DurationS:       benchDuration.Seconds(),
		Seed:            *benchSeed,
		Requests:        total,
		OK:              okN.Load(),
		QueryErrors:     queryErrN.Load(),
		Overloaded:      overloadedN.Load(),
		TransportErrors: transportN.Load(),
		QPS:             float64(completed) / benchDuration.Seconds(),
		P50Ms:           float64(lat.P50()) / float64(time.Millisecond),
		P95Ms:           float64(lat.P95()) / float64(time.Millisecond),
		P99Ms:           float64(lat.P99()) / float64(time.Millisecond),
	}
	if total > 0 {
		res.ErrorRate = float64(res.Overloaded+res.TransportErrors) / float64(total)
	}

	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*benchOut, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("bench-serve: %d requests (%d ok, %d query errors, %d overloaded, %d transport), %.0f qps, p50 %.3fms p95 %.3fms p99 %.3fms → %s\n",
		res.Requests, res.OK, res.QueryErrors, res.Overloaded, res.TransportErrors,
		res.QPS, res.P50Ms, res.P95Ms, res.P99Ms, *benchOut)

	if res.Requests == 0 {
		return fmt.Errorf("bench-serve: zero requests completed — the server served nothing")
	}
	if *benchMaxP99 > 0 && res.P99Ms > float64(*benchMaxP99)/float64(time.Millisecond) {
		return fmt.Errorf("bench-serve: p99 %.3fms exceeds bound %s", res.P99Ms, *benchMaxP99)
	}
	if *benchMaxErrRte >= 0 && res.ErrorRate > *benchMaxErrRte {
		return fmt.Errorf("bench-serve: error rate %.4f (overloaded %d + transport %d of %d) exceeds bound %.4f",
			res.ErrorRate, res.Overloaded, res.TransportErrors, res.Requests, *benchMaxErrRte)
	}
	return nil
}
