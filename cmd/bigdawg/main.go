// Command bigdawg is an interactive shell over the polystore: it loads
// the MIMIC II demo federation and accepts SCOPE/CAST queries on
// stdin, one per line — the conference-goer experience of §4.
//
// Usage:
//
//	bigdawg [-patients 200] [-monitor :6060] [-slow 50ms]
//	bigdawg -serve :4250 [-max-concurrent 16] [-max-queue 32] [-drain-timeout 15s]
//	bigdawg -serve :4251 -shard 0/2                      — shard server 0 of 2
//	bigdawg -serve :4250 -join 127.0.0.1:4251,127.0.0.1:4252 — scatter-gather coordinator
//	bigdawg -bench-serve [-bench-clients 64] [-bench-duration 3s] [-bench-out BENCH_serve.json]
//	bigdawg -bench-shard [-bench-shard-counts 1,2,4] [-bench-shard-out BENCH_shard.json]
//	> POSTGRES(SELECT COUNT(*) FROM patients)
//	> RELATIONAL(SELECT * FROM CAST(waveforms, relation) WHERE v > 1.5 LIMIT 5)
//	> TEXT(search(notes, 'very sick', 3))
//	> EXPLAIN ANALYZE RELATIONAL(SELECT * FROM CAST(waveforms, relation) WHERE v > 1.5)
//	> .objects          — list catalog entries
//	> .islands          — list islands
//	> .cast wf postgres — migrate an object
//	> .metrics          — dump the metrics registry
//	> .advise wf        — the monitor's placement advice (§2.1)
//	> .quit
//
// -monitor serves expvar (/debug/vars, including the "bigdawg" metrics
// registry with query/cast latency quantiles) and net/http/pprof
// (/debug/pprof/) on the given address. -slow logs any query slower
// than the threshold to stderr together with its EXPLAIN ANALYZE span
// tree, so a slow cross-island cast shows which stage ate the time.
//
// -serve swaps the shell for the TCP server (serve.go): the same
// federation, the same -monitor endpoint, but queries arrive over the
// BDWQ wire protocol. -shard/-join (shard.go) turn a set of such
// servers into a sharded federation: N shard servers each holding one
// hash partition of every relational table, and a coordinator that
// scatters queries across them and merges. -bench-serve runs the
// closed-loop load driver (benchserve.go) against an in-process server
// and exits; -bench-shard sweeps the coordinator + N shards topology
// across shard counts and writes the scaling curve (benchshard.go).
package main

import (
	"bufio"
	"context"
	_ "expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/demo"
	"repro/internal/mimic"
)

func main() {
	patients := flag.Int("patients", 200, "demo dataset size")
	monitorAddr := flag.String("monitor", "", "serve expvar and pprof on this address (e.g. :6060)")
	slow := flag.Duration("slow", 0, "log queries slower than this with their span tree (0 disables)")
	flag.Parse()

	if *benchServe {
		if err := runBenchServe(); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *benchShard {
		if err := runBenchShard(); err != nil {
			log.Fatal(err)
		}
		return
	}

	cfg := mimic.DefaultConfig()
	cfg.Patients = *patients
	fmt.Printf("loading MIMIC II demo federation (%d patients)...\n", *patients)
	sys, err := demo.Load(cfg)
	if err != nil {
		log.Fatal(err)
	}
	p := sys.Poly
	if err := applyTopology(p); err != nil {
		log.Fatal(err)
	}

	if *monitorAddr != "" {
		if err := p.Metrics.PublishExpvar("bigdawg"); err != nil {
			log.Fatal(err)
		}
		go func() {
			// The expvar import mounts /debug/vars and the pprof import
			// mounts /debug/pprof on the default mux.
			log.Fatal(http.ListenAndServe(*monitorAddr, nil))
		}()
		fmt.Printf("monitor: http://%s/debug/vars and /debug/pprof/\n", *monitorAddr)
	}

	if *serveAddr != "" {
		if err := runServe(p); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Printf("ready: %d objects across 4 engines, %d islands\n",
		len(p.Objects()), len(core.Islands()))
	fmt.Println(`type a SCOPE query like POSTGRES(SELECT COUNT(*) FROM patients), or .help`)

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("bigdawg> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == ".quit" || line == ".exit":
			return
		case line == ".help":
			fmt.Println(`queries:  ISLAND(body) with ISLAND ∈ RELATIONAL ARRAY TEXT STREAM D4M POSTGRES SCIDB ACCUMULO SSTORE
explain:  EXPLAIN ANALYZE ISLAND(body) — span tree with durations, wire bytes, pushdown
commands: .objects .islands .cast <obj> <engine> .metrics .advise <obj> .quit`)
		case line == ".objects":
			for _, o := range p.Objects() {
				fmt.Printf("  %-20s %-10s (physical: %s)\n", o.Name, o.Engine, o.Physical)
			}
		case line == ".islands":
			for _, i := range core.Islands() {
				fmt.Println("  " + i)
			}
		case line == ".metrics":
			fmt.Println(indentMetrics(p.Metrics.String()))
		case strings.HasPrefix(line, ".advise "):
			advise(p, strings.TrimSpace(strings.TrimPrefix(line, ".advise ")))
		case strings.HasPrefix(line, ".cast "):
			parts := strings.Fields(line)
			if len(parts) != 3 {
				fmt.Println("usage: .cast <object> <engine>")
				break
			}
			res, err := p.Migrate(parts[1], core.EngineKind(parts[2]), core.CastOptions{})
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			fmt.Printf("migrated %s: %s → %s (%d rows, %s)\n",
				res.Object, res.From, res.To, res.Rows, res.Elapsed.Round(time.Microsecond))
		case hasExplainPrefix(line):
			report, rel, err := p.ExplainAnalyze(context.Background(), trimExplainPrefix(line))
			fmt.Print(report)
			if err != nil {
				break
			}
			fmt.Printf("(%d rows)\n", rel.Len())
		default:
			runQuery(p, line, *slow)
		}
		fmt.Print("bigdawg> ")
	}
}

// runQuery executes one interactive query. With -slow set, the query
// runs under EXPLAIN ANALYZE so a threshold breach can print the span
// tree that explains where the time went.
func runQuery(p *core.Polystore, q string, slow time.Duration) {
	start := time.Now()
	if slow > 0 {
		report, rel, err := p.ExplainAnalyze(context.Background(), q)
		elapsed := time.Since(start)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		if elapsed >= slow {
			log.Printf("slow query (%s >= %s): %s\n%s",
				elapsed.Round(time.Microsecond), slow, q, report)
		}
		fmt.Print(rel)
		fmt.Printf("(%d rows, %s)\n", rel.Len(), elapsed.Round(time.Microsecond))
		return
	}
	rel, err := p.Query(q)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Print(rel)
	fmt.Printf("(%d rows, %s)\n", rel.Len(), time.Since(start).Round(time.Microsecond))
}

// advise prints the monitor's placement recommendation for one object —
// the §2.1 loop surfaced interactively. The monitor learns from every
// query the shell runs.
func advise(p *core.Polystore, object string) {
	var eng core.EngineKind
	found := false
	for _, o := range p.Objects() {
		if o.Name == object {
			eng, found = o.Engine, true
			break
		}
	}
	if !found {
		fmt.Printf("unknown object %q (try .objects)\n", object)
		return
	}
	adv := p.Monitor.Advise(object, string(eng))
	if adv.ShouldMigrate {
		fmt.Printf("migrate %s: %s → %s (%s)\n", object, adv.From, adv.To, adv.Reason)
		fmt.Printf("  try: .cast %s %s\n", object, adv.To)
	} else {
		fmt.Printf("keep %s on %s (%s)\n", object, eng, adv.Reason)
	}
}

func hasExplainPrefix(line string) bool {
	u := strings.ToUpper(line)
	return strings.HasPrefix(u, "EXPLAIN ANALYZE ") || strings.HasPrefix(u, "EXPLAIN ")
}

func trimExplainPrefix(line string) string {
	for _, p := range []string{"EXPLAIN ANALYZE ", "EXPLAIN "} {
		if len(line) >= len(p) && strings.EqualFold(line[:len(p)], p) {
			return strings.TrimSpace(line[len(p):])
		}
	}
	return line
}

// indentMetrics reflows the registry's single-line JSON to one metric
// per line for the terminal.
func indentMetrics(s string) string {
	s = strings.TrimPrefix(s, "{")
	s = strings.TrimSuffix(s, "}")
	var sb strings.Builder
	for i, part := range strings.Split(s, ", \"") {
		if i > 0 {
			part = "\"" + part
		}
		sb.WriteString("  " + part + "\n")
	}
	return strings.TrimRight(sb.String(), "\n")
}
