// Command bigdawg is an interactive shell over the polystore: it loads
// the MIMIC II demo federation and accepts SCOPE/CAST queries on
// stdin, one per line — the conference-goer experience of §4.
//
// Usage:
//
//	bigdawg [-patients 200]
//	> POSTGRES(SELECT COUNT(*) FROM patients)
//	> RELATIONAL(SELECT * FROM CAST(waveforms, relation) WHERE v > 1.5 LIMIT 5)
//	> TEXT(search(notes, 'very sick', 3))
//	> .objects          — list catalog entries
//	> .islands          — list islands
//	> .cast wf postgres — migrate an object
//	> .quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/demo"
	"repro/internal/mimic"
)

func main() {
	patients := flag.Int("patients", 200, "demo dataset size")
	flag.Parse()

	cfg := mimic.DefaultConfig()
	cfg.Patients = *patients
	fmt.Printf("loading MIMIC II demo federation (%d patients)...\n", *patients)
	sys, err := demo.Load(cfg)
	if err != nil {
		log.Fatal(err)
	}
	p := sys.Poly
	fmt.Printf("ready: %d objects across 4 engines, %d islands\n",
		len(p.Objects()), len(core.Islands()))
	fmt.Println(`type a SCOPE query like POSTGRES(SELECT COUNT(*) FROM patients), or .help`)

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("bigdawg> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == ".quit" || line == ".exit":
			return
		case line == ".help":
			fmt.Println(`queries: ISLAND(body) with ISLAND ∈ RELATIONAL ARRAY TEXT STREAM D4M POSTGRES SCIDB ACCUMULO SSTORE
commands: .objects .islands .cast <obj> <engine> .quit`)
		case line == ".objects":
			for _, o := range p.Objects() {
				fmt.Printf("  %-20s %-10s (physical: %s)\n", o.Name, o.Engine, o.Physical)
			}
		case line == ".islands":
			for _, i := range core.Islands() {
				fmt.Println("  " + i)
			}
		case strings.HasPrefix(line, ".cast "):
			parts := strings.Fields(line)
			if len(parts) != 3 {
				fmt.Println("usage: .cast <object> <engine>")
				break
			}
			res, err := p.Migrate(parts[1], core.EngineKind(parts[2]), core.CastOptions{})
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			fmt.Printf("migrated %s: %s → %s (%d rows, %s)\n",
				res.Object, res.From, res.To, res.Rows, res.Elapsed.Round(time.Microsecond))
		default:
			start := time.Now()
			rel, err := p.Query(line)
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			fmt.Print(rel)
			fmt.Printf("(%d rows, %s)\n", rel.Len(), time.Since(start).Round(time.Microsecond))
		}
		fmt.Print("bigdawg> ")
	}
}
