package main

// The -bench-shard mode: the shard-scaling benchmark behind
// bench.sh --shard. For each shard count in the sweep it builds the
// same large table, partitions it across that many in-process BDWQ
// shard servers behind a coordinator, hammers the coordinator with
// closed-loop clients running scatter-shaped queries (a filtered scan
// count and a pushed-down grouped aggregate), and records QPS plus
// latency quantiles. BENCH_shard.json holds one entry per shard count
// — the scaling curve PR over PR. Queries are verified for the right
// answer on every response: a fast wrong scatter must fail the run,
// not flatter it.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/shard"
)

var (
	benchShard     = flag.Bool("bench-shard", false, "run the shard-scaling benchmark instead of the shell")
	benchShardRows = flag.Int("bench-shard-rows", 100000, "rows in the partitioned table")
	benchShardSet  = flag.String("bench-shard-counts", "1,2,4", "comma-separated shard counts to sweep")
	benchShardCli  = flag.Int("bench-shard-clients", 8, "concurrent client connections")
	benchShardDur  = flag.Duration("bench-shard-duration", 2*time.Second, "load duration per shard count")
	benchShardOut  = flag.String("bench-shard-out", "BENCH_shard.json", "result JSON path")
)

// shardBenchEntry is one shard count's row in BENCH_shard.json.
type shardBenchEntry struct {
	Name      string  `json:"name"`
	Shards    int     `json:"shards"`
	Rows      int     `json:"rows"`
	Clients   int     `json:"clients"`
	DurationS float64 `json:"duration_s"`
	Requests  int64   `json:"requests"`
	OK        int64   `json:"ok"`
	Errors    int64   `json:"errors"`
	QPS       float64 `json:"qps"`
	P50Ms     float64 `json:"p50_ms"`
	P95Ms     float64 `json:"p95_ms"`
	P99Ms     float64 `json:"p99_ms"`
	ErrorRate float64 `json:"error_rate"`
}

// shardBenchTable builds the workload table: a dense INT key, a
// low-cardinality group column and a float measure — seeded, so every
// shard count sweeps the identical data.
func shardBenchTable(rows int) *engine.Relation {
	rng := rand.New(rand.NewSource(42))
	rel := engine.NewRelation(engine.NewSchema(
		engine.Col("k", engine.TypeInt),
		engine.Col("g", engine.TypeString),
		engine.Col("v", engine.TypeFloat)))
	for i := 0; i < rows; i++ {
		_ = rel.Append(engine.Tuple{
			engine.NewInt(int64(i)),
			engine.NewString(fmt.Sprintf("g%d", i%8)),
			engine.NewFloat(rng.Float64()),
		})
	}
	return rel
}

// shardBenchTopology serves the table partitioned n ways and returns
// the coordinator address plus a teardown.
func shardBenchTopology(rel *engine.Relation, n int) (addr string, teardown func(), err error) {
	spec := shard.HashSpec("k", n)
	parts, err := shard.Split(rel, spec)
	if err != nil {
		return "", nil, err
	}
	var srvs []*server.Server
	var eps []*client.Endpoint
	stop := func() {
		for _, ep := range eps {
			_ = ep.Close()
		}
		for _, s := range srvs {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			_ = s.Shutdown(ctx)
			cancel()
		}
	}
	coord := core.New()
	ifaces := make([]core.ShardEndpoint, 0, n)
	idx := make([]int, 0, n)
	for i, part := range parts {
		sp := core.New()
		if err := sp.Load(core.EnginePostgres, "big", part, core.CastOptions{}); err != nil {
			stop()
			return "", nil, fmt.Errorf("shard %d load: %w", i, err)
		}
		s, err := server.Serve(sp, "127.0.0.1:0", server.Config{})
		if err != nil {
			stop()
			return "", nil, fmt.Errorf("shard %d serve: %w", i, err)
		}
		srvs = append(srvs, s)
		ep := client.NewEndpoint(s.Addr().String())
		eps = append(eps, ep)
		ifaces = append(ifaces, ep)
		idx = append(idx, i)
	}
	coord.SetShardEndpoints(ifaces...)
	if err := coord.RegisterSharded("big", spec, rel.Schema, idx...); err != nil {
		stop()
		return "", nil, err
	}
	cs, err := server.Serve(coord, "127.0.0.1:0", server.Config{MaxQueue: 2 * *benchShardCli})
	if err != nil {
		stop()
		return "", nil, err
	}
	srvs = append(srvs, cs)
	return cs.Addr().String(), stop, nil
}

func runBenchShard() error {
	rel := shardBenchTable(*benchShardRows)
	// The expected answers, for verifying every benchmarked response.
	wantCount := int64(0)
	for _, t := range rel.Tuples {
		if t[2].AsFloat() > 0.5 {
			wantCount++
		}
	}
	queries := []struct {
		q     string
		check func(r *engine.Relation) bool
	}{
		{"RELATIONAL(SELECT COUNT(*) AS n FROM big WHERE v > 0.5)",
			func(r *engine.Relation) bool { return r.Len() == 1 && r.Tuples[0][0].AsInt() == wantCount }},
		{"RELATIONAL(SELECT g, COUNT(*) AS n FROM big GROUP BY g)",
			func(r *engine.Relation) bool { return r.Len() == 8 }},
	}

	var counts []int
	for _, part := range strings.Split(*benchShardSet, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return fmt.Errorf("bench-shard: bad shard count %q", part)
		}
		counts = append(counts, n)
	}

	entries := make([]shardBenchEntry, 0, len(counts))
	for _, n := range counts {
		addr, teardown, err := shardBenchTopology(rel, n)
		if err != nil {
			return fmt.Errorf("bench-shard: shards=%d: %w", n, err)
		}
		reg := metrics.NewRegistry()
		lat := reg.Histogram("bench.latency")
		var okN, errN atomic.Int64
		fmt.Printf("bench-shard: %d clients × %s against %d rows over %d shard(s)\n",
			*benchShardCli, *benchShardDur, *benchShardRows, n)
		deadline := time.Now().Add(*benchShardDur)
		var wg sync.WaitGroup
		for w := 0; w < *benchShardCli; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				c, err := client.Dial(addr)
				if err != nil {
					errN.Add(1)
					return
				}
				defer func() { _ = c.Close() }()
				for i := w; time.Now().Before(deadline); i++ {
					q := queries[i%len(queries)]
					ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
					start := time.Now()
					r, err := c.Query(ctx, q.q)
					cancel()
					if err != nil || !q.check(r) {
						errN.Add(1)
						continue
					}
					okN.Add(1)
					lat.Observe(time.Since(start))
				}
			}(w)
		}
		wg.Wait()
		teardown()

		total := okN.Load() + errN.Load()
		e := shardBenchEntry{
			Name:      fmt.Sprintf("shards=%d", n),
			Shards:    n,
			Rows:      *benchShardRows,
			Clients:   *benchShardCli,
			DurationS: benchShardDur.Seconds(),
			Requests:  total,
			OK:        okN.Load(),
			Errors:    errN.Load(),
			QPS:       float64(okN.Load()) / benchShardDur.Seconds(),
			P50Ms:     float64(lat.P50()) / float64(time.Millisecond),
			P95Ms:     float64(lat.P95()) / float64(time.Millisecond),
			P99Ms:     float64(lat.P99()) / float64(time.Millisecond),
		}
		if total > 0 {
			e.ErrorRate = float64(e.Errors) / float64(total)
		}
		if e.OK == 0 {
			return fmt.Errorf("bench-shard: shards=%d completed zero correct queries (%d errors)", n, e.Errors)
		}
		fmt.Printf("bench-shard: shards=%d: %d ok (%d errors), %.0f qps, p50 %.2fms p95 %.2fms p99 %.2fms\n",
			n, e.OK, e.Errors, e.QPS, e.P50Ms, e.P95Ms, e.P99Ms)
		entries = append(entries, e)
	}

	out, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*benchShardOut, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("bench-shard: wrote %d entries to %s\n", len(entries), *benchShardOut)
	return nil
}
