package main

// The -shard/-join topology flags: one bigdawg binary plays either
// role of a sharded federation. `-shard K/N` keeps only this node's
// hash partition of every relational demo table (the physical shard
// server); `-join a,b,c` drops the local copies and registers each
// relational table as partitioned across those N shard servers, making
// this node the scatter-gather coordinator. Both sides derive the same
// deterministic spec — hash on the table's first column, N partitions
// — from the same demo dataset, so no placement metadata needs to be
// exchanged.
//
//	bigdawg -serve :4251 -shard 0/2     # shard server 0
//	bigdawg -serve :4252 -shard 1/2     # shard server 1
//	bigdawg -serve :4250 -join 127.0.0.1:4251,127.0.0.1:4252
//
// The coordinator answers SCOPE queries over the full logical tables;
// bodies touching a partitioned table fan out over the BDWQ protocol
// and merge. Non-relational demo objects (arrays, KV, streams) stay
// local to the coordinator.

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/server/client"
	"repro/internal/shard"
)

var (
	shardOf = flag.String("shard", "",
		"serve as shard K/N: keep only this node's hash partition of every relational table")
	joinAddrs = flag.String("join", "",
		"comma-separated shard server addresses: act as the scatter-gather coordinator over them")
)

// applyTopology rewires the loaded federation according to -shard/-join
// before the shell or server starts.
func applyTopology(p *core.Polystore) error {
	switch {
	case *shardOf != "" && *joinAddrs != "":
		return fmt.Errorf("-shard and -join are mutually exclusive: a node is a shard or the coordinator")
	case *shardOf != "":
		return applyShardRole(p, *shardOf)
	case *joinAddrs != "":
		return applyCoordinatorRole(p, *joinAddrs)
	}
	return nil
}

// relationalObjects lists the catalog's EnginePostgres objects — the
// tables the topology partitions.
func relationalObjects(p *core.Polystore) []core.ObjectInfo {
	var objs []core.ObjectInfo
	for _, o := range p.Objects() {
		if o.Engine == core.EnginePostgres {
			objs = append(objs, o)
		}
	}
	return objs
}

// dropLocal removes an object from the catalog and its relational
// storage, making room for a partition or a placement under the same
// name.
func dropLocal(p *core.Polystore, o core.ObjectInfo) {
	p.Deregister(o.Name)
	_ = p.Relational.DropTable(o.Physical)
}

func applyShardRole(p *core.Polystore, kn string) error {
	k, n, err := parseShardOf(kn)
	if err != nil {
		return err
	}
	for _, o := range relationalObjects(p) {
		rel, err := p.Dump(o.Name)
		if err != nil {
			return fmt.Errorf("shard %s: dump %s: %w", kn, o.Name, err)
		}
		spec := shard.HashSpec(rel.Schema.Columns[0].Name, n)
		parts, err := shard.Split(rel, spec)
		if err != nil {
			return fmt.Errorf("shard %s: split %s: %w", kn, o.Name, err)
		}
		dropLocal(p, o)
		if err := p.Load(core.EnginePostgres, o.Name, parts[k], core.CastOptions{}); err != nil {
			return fmt.Errorf("shard %s: load partition of %s: %w", kn, o.Name, err)
		}
		fmt.Printf("shard %d/%d: %s holds %d of %d rows (hash on %s)\n",
			k, n, o.Name, parts[k].Len(), rel.Len(), spec.Key)
	}
	return nil
}

func applyCoordinatorRole(p *core.Polystore, addrList string) error {
	addrs := strings.Split(addrList, ",")
	eps := make([]core.ShardEndpoint, 0, len(addrs))
	for _, a := range addrs {
		a = strings.TrimSpace(a)
		if a == "" {
			return fmt.Errorf("-join: empty shard address in %q", addrList)
		}
		eps = append(eps, client.NewEndpoint(a))
	}
	p.SetShardEndpoints(eps...)
	idx := make([]int, len(eps))
	for i := range idx {
		idx[i] = i
	}
	for _, o := range relationalObjects(p) {
		rel, err := p.Dump(o.Name)
		if err != nil {
			return fmt.Errorf("-join: dump %s: %w", o.Name, err)
		}
		spec := shard.HashSpec(rel.Schema.Columns[0].Name, len(eps))
		dropLocal(p, o)
		if err := p.RegisterSharded(o.Name, spec, rel.Schema, idx...); err != nil {
			return fmt.Errorf("-join: register %s: %w", o.Name, err)
		}
		fmt.Printf("coordinator: %s partitioned %d ways (hash on %s)\n",
			o.Name, len(eps), spec.Key)
	}
	return nil
}

// parseShardOf parses "K/N" with 0 <= K < N.
func parseShardOf(s string) (k, n int, err error) {
	parts := strings.Split(s, "/")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("-shard wants K/N (e.g. 0/2), got %q", s)
	}
	k, kerr := strconv.Atoi(parts[0])
	n, nerr := strconv.Atoi(parts[1])
	if kerr != nil || nerr != nil || n <= 0 || k < 0 || k >= n {
		return 0, 0, fmt.Errorf("-shard wants K/N with 0 <= K < N, got %q", s)
	}
	return k, n, nil
}
