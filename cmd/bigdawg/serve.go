package main

// The -serve mode: instead of the interactive shell, expose the loaded
// federation as a long-lived TCP service speaking the BDWQ request
// protocol with BDW2-framed results. SIGINT/SIGTERM triggers a
// graceful drain (in-flight queries finish, then the process exits);
// if the drain budget expires, remaining queries are severed — the
// atomic-cast machinery keeps the catalog consistent either way.

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/server"
)

var (
	serveAddr = flag.String("serve", "",
		"serve the polystore over TCP on this address (e.g. :4250) instead of the shell")
	serveMaxConcurrent = flag.Int("max-concurrent", 0,
		"queries executing in parallel (0 = 2×GOMAXPROCS)")
	serveMaxQueue = flag.Int("max-queue", 0,
		"admitted requests waiting for a slot before rejection (0 = 2×max-concurrent)")
	serveDrain = flag.Duration("drain-timeout", 15*time.Second,
		"graceful drain budget on SIGINT/SIGTERM before in-flight queries are severed")
)

func runServe(p *core.Polystore) error {
	s, err := server.Serve(p, *serveAddr, server.Config{
		MaxConcurrent: *serveMaxConcurrent,
		MaxQueue:      *serveMaxQueue,
	})
	if err != nil {
		return err
	}
	cfg := s.Config()
	fmt.Printf("serving on %s (max-concurrent %d, queue %d, default timeout %s)\n",
		s.Addr(), cfg.MaxConcurrent, cfg.MaxQueue, cfg.DefaultTimeout)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("signal received, draining...")
	ctx, cancel := context.WithTimeout(context.Background(), *serveDrain)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain budget exhausted, in-flight queries severed: %w", err)
	}
	fmt.Println("drained cleanly")
	return nil
}
