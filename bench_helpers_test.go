package repro

import (
	"repro/internal/array"
	"repro/internal/engine"
)

// coreArray aliases the array engine type for the root bench fixtures.
type coreArray = array.Array

func coreNewArray(name string, patients, samples int64) (*coreArray, error) {
	return array.New(name, []array.Dim{
		{Name: "patient", Low: 1, High: patients},
		{Name: "t", Low: 0, High: samples - 1},
	}, []engine.Column{engine.Col("v", engine.TypeFloat)}, true)
}

// benchDuration reports a time.Duration as milliseconds for bench logs.
var _ = coreNewArray
