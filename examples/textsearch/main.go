// Command textsearch demonstrates the paper's Text Analysis interface
// (§1): complex keyword searches over clinical notes in the key-value
// engine, combined across islands with relational data — "find me the
// patients that have at least three doctor's reports saying 'very
// sick' and are taking a particular drug".
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/demo"
	"repro/internal/mimic"
)

func main() {
	cfg := mimic.DefaultConfig()
	cfg.Patients = 300
	sys, err := demo.Load(cfg)
	if err != nil {
		log.Fatal(err)
	}
	p := sys.Poly

	fmt.Println("== text island: patients with ≥3 notes saying 'very sick' ==")
	rel, err := p.Query(`TEXT(search(notes, 'very sick', 3))`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d patients (index search)\n", rel.Len())

	// The paper's full query adds "...and are taking a particular drug":
	// text island for the cohort, relational island for the drug filter.
	fmt.Println("\n== cross-island: very-sick cohort ∩ warfarin takers ==")
	var cohort []string
	for _, t := range rel.Tuples {
		// note rows are "p%06d" → patient id
		cohort = append(cohort, strings.TrimLeft(strings.TrimPrefix(t[0].S, "p"), "0"))
	}
	sql := fmt.Sprintf(
		`POSTGRES(SELECT DISTINCT patient_id FROM prescriptions WHERE drug = 'warfarin' AND patient_id IN (%s) ORDER BY patient_id)`,
		strings.Join(cohort, ", "))
	joined, err := p.Query(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d of %d very-sick patients take warfarin\n", joined.Len(), len(cohort))

	fmt.Println("\n== D4M island: notes as an associative array ==")
	rel, err = p.Query(`D4M(sumrows(assoc(notes)))`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  note-count vector has %d patient rows\n", rel.Len())

	fmt.Println("\n== degenerate island scans ==")
	rel, err = p.Query(`TEXT(get(notes, 'p000001'))`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  patient 1 has %d note cells:\n", rel.Len())
	for i, t := range rel.Tuples {
		if i == 2 {
			fmt.Println("    ...")
			break
		}
		fmt.Printf("    [%s] %s\n", t[2].S, t[4].S)
	}

	fmt.Println("\n== index vs full-scan baseline (same answer, different cost) ==")
	idx, err := p.Query(`TEXT(search(notes, 'very sick', 3))`)
	if err != nil {
		log.Fatal(err)
	}
	scan, err := p.Query(`TEXT(searchscan(notes, 'very sick', 3))`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  indexed: %d rows, scan baseline: %d rows — agree: %v\n",
		idx.Len(), scan.Len(), idx.Len() == scan.Len())
}
