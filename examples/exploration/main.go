// Command exploration demonstrates BigDAWG's two exploratory-analysis
// systems (§2.2): SeeDB, which reproduces the paper's Figure 2 by
// surfacing the reversed race↔stay-duration relationship in the ICU
// cohort, and Searchlight, which finds semantic windows in waveform
// data by constraint-programming over a synopsis.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/engine"
	"repro/internal/mimic"
	"repro/internal/searchlight"
	"repro/internal/seedb"
)

func main() {
	cfg := mimic.DefaultConfig()
	cfg.Patients = 400
	ds, err := mimic.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== SeeDB: 'tell me something interesting' about ICU admissions ==")
	rel := flattenAdmissions(ds)
	results, stats, err := seedb.Explore(rel, "ward = 'icu'",
		[]string{"race", "sex", "drug"}, []string{"days"},
		[]seedb.Agg{seedb.AggAvg, seedb.AggCount},
		seedb.Options{K: 3, Prune: true, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d views considered, %d pruned, %d rows processed\n",
		stats.ViewsConsidered, stats.ViewsPruned, stats.RowsProcessed)
	for rank, r := range results {
		fmt.Printf("  #%d %-22s utility %.3f\n", rank+1, r.View, r.Utility)
	}
	top := results[0]
	fmt.Printf("\n  Figure 2 reproduction — %s:\n", top.View)
	fmt.Printf("  %-10s %12s %12s\n", "group", "ICU cohort", "rest of data")
	keys := sortedKeys(top.Target)
	for _, k := range keys {
		fmt.Printf("  %-10s %12.2f %12.2f\n", k, top.Target[k], top.Reference[k])
	}
	fmt.Println("  (the ICU cohort reverses the population trend, as in the paper)")

	fmt.Println("\n== Searchlight: CP search for calm intervals in a waveform ==")
	signal := mimic.Waveform(cfg.Seed, 7, 0, cfg.SampleRate*60, cfg.SampleRate, false)
	syn, err := searchlight.BuildSynopsis(signal, 25)
	if err != nil {
		log.Fatal(err)
	}
	q := searchlight.Query{
		WindowLen: cfg.SampleRate / 2, // half-second windows
		Constraints: []searchlight.Constraint{
			{Agg: "avg", Lo: -0.05, Hi: 0.05}, // centred
			{Agg: "max", Lo: -10, Hi: 1.2},    // no large spikes
		},
	}
	matches, sstats, err := searchlight.Search(signal, syn, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  windows: %d total, %d pruned by synopsis, %d validated on raw data\n",
		sstats.WindowsTotal, sstats.PrunedInfeasible+sstats.AcceptedByBounds, sstats.Validated)
	fmt.Printf("  matches: %d (first at t=%d)\n", len(matches), firstStart(matches))
	_, ex, _ := searchlight.SearchExhaustive(signal, q)
	fmt.Printf("  raw points read: %d with synopsis vs %d exhaustive (%.1fx less)\n",
		sstats.RawPointsRead, ex.RawPointsRead,
		float64(ex.RawPointsRead)/float64(max64(sstats.RawPointsRead, 1)))
}

func flattenAdmissions(ds *mimic.Dataset) *engine.Relation {
	raceOf := map[int64]string{}
	sexOf := map[int64]string{}
	for _, p := range ds.Patients.Tuples {
		raceOf[p[0].I] = p[4].S
		sexOf[p[0].I] = p[3].S
	}
	rel := engine.NewRelation(engine.NewSchema(
		engine.Col("ward", engine.TypeString), engine.Col("race", engine.TypeString),
		engine.Col("sex", engine.TypeString), engine.Col("drug", engine.TypeString),
		engine.Col("days", engine.TypeFloat),
	))
	for _, a := range ds.Admissions.Tuples {
		pid := a[1].I
		_ = rel.Append(engine.Tuple{a[2], engine.NewString(raceOf[pid]), engine.NewString(sexOf[pid]), a[4], a[3]})
	}
	return rel
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func firstStart(ms []searchlight.Match) int {
	if len(ms) == 0 {
		return -1
	}
	return ms[0].Start
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
