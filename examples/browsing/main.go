// Command browsing demonstrates the ScalaR pan/zoom interface (§1
// "Browsing"): a detail-on-demand tile browser over the waveform array
// with neighbour prefetching, contrasted against a cold browser on the
// same pan trace.
package main

import (
	"fmt"
	"log"

	"repro/internal/array"
	"repro/internal/engine"
	"repro/internal/mimic"
	"repro/internal/scalar"
)

func main() {
	cfg := mimic.DefaultConfig()
	const patients, samples = 64, 512

	// Waveform heat map: patient × time.
	src, err := array.New("wf_map", []array.Dim{
		{Name: "patient", Low: 1, High: patients},
		{Name: "t", Low: 0, High: samples - 1},
	}, []engine.Column{engine.Col("v", engine.TypeFloat)}, true)
	if err != nil {
		log.Fatal(err)
	}
	for pid := 1; pid <= patients; pid++ {
		w := mimic.Waveform(cfg.Seed, pid, 0, samples, cfg.SampleRate, false)
		for i, v := range w {
			if err := src.Set([]int64{int64(pid), int64(i)}, engine.Tuple{engine.NewFloat(v)}); err != nil {
				log.Fatal(err)
			}
		}
	}

	// A user session: start at the overview, zoom twice, pan across.
	trace := [][3]int{
		{0, 0, 0},
		{1, 0, 0}, {1, 1, 0},
		{2, 1, 1}, {2, 2, 1}, {2, 3, 1}, {2, 3, 2}, {2, 2, 2}, {2, 1, 2},
	}

	run := func(prefetch bool) scalar.Stats {
		b, err := scalar.NewBrowser(src, "v", 16, 3, 256)
		if err != nil {
			log.Fatal(err)
		}
		b.Prefetch = prefetch
		b.SyncPrefetch = true // deterministic output for the demo
		for _, step := range trace {
			if _, err := b.Fetch(step[0], step[1], step[2]); err != nil {
				log.Fatal(err)
			}
		}
		return b.Stats()
	}

	fmt.Println("== ScalaR detail-on-demand browsing over a 64×512 waveform map ==")
	cold := run(false)
	warm := run(true)
	fmt.Printf("  trace: %d gestures (overview → zoom → pan)\n", len(trace))
	fmt.Printf("  %-12s hits=%2d misses=%2d prefetches=%2d\n", "no prefetch", cold.CacheHits, cold.CacheMiss, cold.Prefetches)
	fmt.Printf("  %-12s hits=%2d misses=%2d prefetches=%2d\n", "prefetch", warm.CacheHits, warm.CacheMiss, warm.Prefetches)
	fmt.Println("  with prefetching, pans and zoom-ins are served from cache —")
	fmt.Println("  the interactive-latency behaviour §1.2 calls 'detail on demand'.")

	// Show one rendered tile so the output is tangible.
	b, _ := scalar.NewBrowser(src, "v", 8, 3, 64)
	tile, err := b.Fetch(0, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n  overview tile (8×8 avg amplitude, '·'<0, '#'≥0):")
	for y := 0; y < tile.Height; y++ {
		fmt.Print("    ")
		for x := 0; x < tile.Width; x++ {
			if tile.Cells[x*tile.Height+y] >= 0 {
				fmt.Print("#")
			} else {
				fmt.Print("·")
			}
		}
		fmt.Println()
	}
}
