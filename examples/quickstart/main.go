// Command quickstart is the smallest end-to-end BigDAWG program: build
// a federation of two engines, register objects, and run SCOPE/CAST
// queries across them — including the exact query form from §2.1 of
// the paper:
//
//	RELATIONAL(SELECT * FROM CAST(A, relation) WHERE v > 5)
package main

import (
	"fmt"
	"log"

	"repro/internal/array"
	"repro/internal/core"
	"repro/internal/engine"
)

func main() {
	p := core.New()

	// A relational table in the Postgres engine.
	mustExec(p, `CREATE TABLE sensors (id INT PRIMARY KEY, room TEXT, kind TEXT)`)
	mustExec(p, `INSERT INTO sensors VALUES (1,'icu_a','ecg'),(2,'icu_a','spo2'),(3,'icu_b','ecg')`)
	must(p.Register("sensors", core.EnginePostgres, "sensors"))

	// An array in the SciDB engine: A[i] = i².
	a, err := array.New("A", []array.Dim{{Name: "i", Low: 0, High: 9}},
		[]engine.Column{engine.Col("v", engine.TypeFloat)}, true)
	must(err)
	must(a.Fill(func(c []int64) engine.Tuple {
		return engine.Tuple{engine.NewFloat(float64(c[0] * c[0]))}
	}))
	p.ArrayStore.Put(a)
	must(p.Register("A", core.EngineSciDB, "A"))

	fmt.Println("== degenerate islands (native languages) ==")
	show(p, `POSTGRES(SELECT room, COUNT(*) AS n FROM sensors GROUP BY room ORDER BY room)`)
	show(p, `SCIDB(aggregate(A, max(v)))`)

	fmt.Println("== the paper's CAST example: relational query over an array ==")
	show(p, `RELATIONAL(SELECT * FROM CAST(A, relation) WHERE v > 5)`)

	fmt.Println("== location transparency: no CAST needed on the multi-engine island ==")
	show(p, `RELATIONAL(SELECT COUNT(*) AS big_cells FROM A WHERE v > 5)`)

	fmt.Println("== cross-island pipeline: ARRAY subquery feeding SQL ==")
	show(p, `RELATIONAL(SELECT COUNT(*) AS n FROM CAST(ARRAY(filter(A, v % 2 = 0)), relation))`)
}

func mustExec(p *core.Polystore, sql string) {
	if _, err := p.Relational.Execute(sql); err != nil {
		log.Fatal(err)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func show(p *core.Polystore, q string) {
	fmt.Println("  query:", q)
	rel, err := p.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	for _, line := range splitLines(rel.String()) {
		fmt.Println("   ", line)
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
