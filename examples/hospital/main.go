// Command hospital runs the paper's headline demonstration (§1, §3):
// the MIMIC II ICU application. It loads patient metadata into
// Postgres, historical waveforms into SciDB, clinical notes into
// Accumulo and a live vitals feed into S-Store, then exercises the
// demo's interfaces: real-time monitoring with anomaly alerts, complex
// analytics (FFT of a patient's waveform "compared to normal"), text
// analysis, and cross-engine SQL.
package main

import (
	"fmt"
	"log"

	"repro/internal/analytics"
	"repro/internal/demo"
	"repro/internal/mimic"
)

func main() {
	cfg := mimic.DefaultConfig()
	cfg.Patients = 200
	sys, err := demo.Load(cfg)
	if err != nil {
		log.Fatal(err)
	}
	p := sys.Poly

	fmt.Println("== federation layout ==")
	for _, obj := range p.Objects() {
		fmt.Printf("  %-16s → %s\n", obj.Name, obj.Engine)
	}

	fmt.Println("\n== SQL analytics (Postgres): how many patients got each drug ==")
	rel, err := p.Query(`POSTGRES(SELECT drug, COUNT(DISTINCT patient_id) AS patients FROM prescriptions GROUP BY drug ORDER BY patients DESC)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rel)

	fmt.Println("\n== complex analytics (SciDB + FFT): patient 5's heart rate vs normal ==")
	wf, err := p.ArrayStore.Get("waveforms")
	if err != nil {
		log.Fatal(err)
	}
	slice, err := wf.Subarray([]int64{5, 0}, []int64{5, int64(cfg.SampleRate*cfg.WaveformSeconds) - 1})
	if err != nil {
		log.Fatal(err)
	}
	row := slice.Scan()
	vals, err := row.Floats("v")
	if err != nil {
		log.Fatal(err)
	}
	_, hz := analytics.DominantFrequency(vals, float64(cfg.SampleRate))
	fmt.Printf("  dominant frequency: %.2f Hz (%.0f bpm); expected %.2f Hz\n",
		hz, hz*60, mimic.HeartRateHz(cfg.Seed, 5))

	fmt.Println("\n== text analysis (Accumulo): ≥3 notes saying 'very sick' ==")
	rel, err = p.Query(`TEXT(search(notes, 'very sick', 3))`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d patients flagged (ground truth: %d)\n",
		rel.Len(), len(sys.Dataset.VerySickPatients(3)))

	fmt.Println("\n== cross-engine SQL: join Postgres patients with SciDB waveforms ==")
	rel, err = p.Query(`RELATIONAL(SELECT p.sex, COUNT(*) AS loud_samples FROM patients p JOIN waveforms w ON p.id = w.patient WHERE w.v > 1.2 GROUP BY p.sex ORDER BY p.sex)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rel)

	fmt.Println("\n== real-time monitoring (S-Store): live feed with anomaly detection ==")
	rate := cfg.SampleRate
	if _, err := sys.IngestLive(1, 0, 3*rate, false); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  3s of normal signal ingested → %d alerts\n", len(sys.Alerts))
	n, err := sys.IngestLive(1, 3*rate, rate, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  1s of arrhythmia ingested   → %d alerts\n", n)
	if n > 0 {
		a := sys.Alerts[len(sys.Alerts)-1]
		fmt.Printf("  latest alert: patient %d at t=%d, divergence score %.2f\n",
			a.Patient, a.TS, a.Score)
	}

	fmt.Println("\n== aging (§3): records that slid out of the window reached SciDB ==")
	rel, err = p.Query(`SCIDB(aggregate(vitals_history, count(v)))`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  historical vitals cells: %s\n", rel.Tuples[0][0].String())
}
