#!/usr/bin/env bash
# bench.sh — run the E-series experiment benchmarks plus the relational
# executor benchmarks with -benchmem and snapshot the numbers into
# BENCH_relational.json, so the perf trajectory is tracked PR over PR.
#
# Usage:
#   ./bench.sh                # default -benchtime (stable numbers, slow)
#   BENCHTIME=5x ./bench.sh   # quick smoke numbers
#   OUT=snap.json ./bench.sh  # alternate output path
set -euo pipefail
cd "$(dirname "$0")"

BENCHTIME="${BENCHTIME:-1s}"
OUT="${OUT:-BENCH_relational.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

run() {
  local pkg="$1" pattern="$2"
  echo ">> go test -run '^$' -bench '$pattern' -benchmem -benchtime $BENCHTIME $pkg" >&2
  go test -run '^$' -bench "$pattern" -benchmem -benchtime "$BENCHTIME" "$pkg" | tee -a "$RAW"
}

# E-series experiment benchmarks at the repo root.
run . 'BenchmarkE[0-9]'
# Relational executor benchmarks: row vs vectorized, DML index path.
run ./internal/relational 'Benchmark'

# Parse `BenchmarkName  N  ns/op  B/op  allocs/op` lines into JSON.
awk -v out="$OUT" '
BEGIN { print "[" > out; first = 1 }
/^Benchmark/ && NF >= 3 {
  name = $1; iters = $2; ns = ""; bytes = ""; allocs = ""
  for (i = 3; i < NF; i++) {
    if ($(i+1) == "ns/op")     ns = $i
    if ($(i+1) == "B/op")      bytes = $i
    if ($(i+1) == "allocs/op") allocs = $i
  }
  if (ns == "") next
  if (!first) print "," >> out
  first = 0
  printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns >> out
  if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes >> out
  if (allocs != "") printf ", \"allocs_per_op\": %s", allocs >> out
  printf "}" >> out
}
END { print "\n]" >> out }
' "$RAW"

echo "wrote $(grep -c '"name"' "$OUT") benchmark entries to $OUT" >&2
