#!/usr/bin/env bash
# bench.sh — run the E-series experiment benchmarks, the relational
# executor benchmarks and the CAST pushdown benchmarks with -benchmem,
# snapshotting the numbers into BENCH_relational.json and
# BENCH_cast_pushdown.json so the perf trajectory is tracked PR over PR.
#
# BENCH_cast_pushdown.json records the planner acceptance scenario:
# bytes moved (wire_bytes/op) and elapsed time for a selective CAST
# with pushdown on vs off at 10k and 100k rows, plus the end-to-end
# island query with the planner on vs off.
#
# Usage:
#   ./bench.sh                # default -benchtime (stable numbers, slow)
#   BENCHTIME=5x ./bench.sh   # quick smoke numbers
set -euo pipefail
cd "$(dirname "$0")"

BENCHTIME="${BENCHTIME:-1s}"
OUT_RELATIONAL="${OUT_RELATIONAL:-BENCH_relational.json}"
OUT_PUSHDOWN="${OUT_PUSHDOWN:-BENCH_cast_pushdown.json}"

run() {
  local raw="$1" pkg="$2" pattern="$3"
  echo ">> go test -run '^$' -bench '$pattern' -benchmem -benchtime $BENCHTIME $pkg" >&2
  go test -run '^$' -bench "$pattern" -benchmem -benchtime "$BENCHTIME" "$pkg" | tee -a "$raw"
}

# Parse `BenchmarkName  N  ns/op  B/op  allocs/op  [wire_bytes/op]`
# lines into a JSON array.
to_json() {
  local raw="$1" out="$2"
  awk -v out="$out" '
  BEGIN { print "[" > out; first = 1 }
  /^Benchmark/ && NF >= 3 {
    name = $1; iters = $2; ns = ""; bytes = ""; allocs = ""; wire = ""
    for (i = 3; i < NF; i++) {
      if ($(i+1) == "ns/op")         ns = $i
      if ($(i+1) == "B/op")          bytes = $i
      if ($(i+1) == "allocs/op")     allocs = $i
      if ($(i+1) == "wire_bytes/op") wire = $i
    }
    if (ns == "") next
    if (!first) print "," >> out
    first = 0
    printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns >> out
    if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes >> out
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs >> out
    if (wire != "")   printf ", \"wire_bytes_per_op\": %s", wire >> out
    printf "}" >> out
  }
  END { print "\n]" >> out }
  ' "$raw"
  echo "wrote $(grep -c '"name"' "$out") benchmark entries to $out" >&2
}

RAW_RELATIONAL="$(mktemp)"
RAW_PUSHDOWN="$(mktemp)"
trap 'rm -f "$RAW_RELATIONAL" "$RAW_PUSHDOWN"' EXIT

# E-series experiment benchmarks at the repo root.
run "$RAW_RELATIONAL" . 'BenchmarkE[0-9]'
# Relational executor benchmarks: row vs vectorized, DML index path.
run "$RAW_RELATIONAL" ./internal/relational 'Benchmark'
to_json "$RAW_RELATIONAL" "$OUT_RELATIONAL"

# CAST pushdown: bytes moved + latency, planner on/off, 10k/100k rows.
run "$RAW_PUSHDOWN" ./internal/core 'BenchmarkCastPushdown|BenchmarkQueryPushdown'
to_json "$RAW_PUSHDOWN" "$OUT_PUSHDOWN"
