#!/usr/bin/env bash
# bench.sh — run the E-series experiment benchmarks, the relational
# executor benchmarks and the CAST pushdown benchmarks with -benchmem,
# snapshotting the numbers into BENCH_relational.json and
# BENCH_cast_pushdown.json so the perf trajectory is tracked PR over PR.
#
# BENCH_cast_pushdown.json records the planner acceptance scenario:
# bytes moved (wire_bytes/op) and elapsed time for a selective CAST
# with pushdown on vs off at 10k and 100k rows, plus the end-to-end
# island query with the planner on vs off.
#
# Usage:
#   ./bench.sh                # default -benchtime (stable numbers, slow)
#   BENCHTIME=5x ./bench.sh   # quick smoke numbers
#   ./bench.sh --lint         # time the bigdawg-vet suite repo-wide,
#                             # write BENCH_lint.json, exit 1 on findings
#   ./bench.sh --fault        # benchmark disabled-failpoint overhead,
#                             # write BENCH_fault.json
#   ./bench.sh --obs          # benchmark tracing disabled vs enabled,
#                             # write BENCH_obs.json
#   ./bench.sh --serve        # fixed-duration server load smoke via the
#                             # bigdawg -bench-serve driver, write
#                             # BENCH_serve.json (QPS, p50/p95/p99)
#   ./bench.sh --shard        # shard-scaling sweep: the same table
#                             # partitioned across 1/2/4 in-process BDWQ
#                             # shard servers behind a coordinator, write
#                             # BENCH_shard.json (QPS/p99 vs shard count)
#
# Every mode fails loudly: a benchmark that does not build, errors out,
# or produces zero parseable entries exits non-zero — an empty or
# partial BENCH_*.json must never look like a clean run.
set -euo pipefail
cd "$(dirname "$0")"

# --lint: snapshot the static-analysis suite the way the benchmarks
# snapshot perf — tool build time, repo-wide vet wall time, package
# and finding counts — so analyzer cost is tracked PR over PR too.
if [[ "${1:-}" == "--lint" ]]; then
  OUT_LINT="${OUT_LINT:-BENCH_lint.json}"
  TOOL_DIR="$(mktemp -d)"
  FINDINGS="$(mktemp)"
  trap 'rm -rf "$TOOL_DIR" "$FINDINGS"' EXIT

  build_start=$(date +%s%N)
  go build -o "$TOOL_DIR/bigdawg-vet" ./cmd/bigdawg-vet
  build_ns=$(( $(date +%s%N) - build_start ))

  vet_status=0
  vet_start=$(date +%s%N)
  go vet -vettool="$TOOL_DIR/bigdawg-vet" ./... 2> "$FINDINGS" || vet_status=$?
  vet_ns=$(( $(date +%s%N) - vet_start ))

  # Findings are "<pos>: <msg> (<analyzer>)" lines; go vet also echoes
  # "# <package>" headers to stderr, so count only analyzer lines.
  nfindings=$(grep -cE '\((lockheld|templeak|spanend|decodebounds|batchalias|errdrop)\)$' "$FINDINGS" || true)
  npackages=$(go list ./... | wc -l | tr -d ' ')

  cat > "$OUT_LINT" <<EOF
{
  "tool_build_ns": $build_ns,
  "vet_wall_ns": $vet_ns,
  "packages": $npackages,
  "findings": $nfindings,
  "clean": $([[ "$nfindings" -eq 0 && "$vet_status" -eq 0 ]] && echo true || echo false)
}
EOF
  echo "wrote $OUT_LINT (packages=$npackages findings=$nfindings vet_wall_ns=$vet_ns)" >&2
  if [[ "$nfindings" -gt 0 || "$vet_status" -ne 0 ]]; then
    cat "$FINDINGS" >&2
    exit 1
  fi
  exit 0
fi

BENCHTIME="${BENCHTIME:-1s}"
OUT_RELATIONAL="${OUT_RELATIONAL:-BENCH_relational.json}"
OUT_PUSHDOWN="${OUT_PUSHDOWN:-BENCH_cast_pushdown.json}"

run() {
  local raw="$1" pkg="$2" pattern="$3"
  echo ">> go test -run '^$' -bench '$pattern' -benchmem -benchtime $BENCHTIME $pkg" >&2
  # set -o pipefail makes a build or benchmark failure fatal despite the
  # tee; the explicit check keeps the failure message attributable.
  if ! go test -run '^$' -bench "$pattern" -benchmem -benchtime "$BENCHTIME" "$pkg" | tee -a "$raw"; then
    echo "bench.sh: benchmark run failed: $pkg ($pattern)" >&2
    exit 1
  fi
}

# Parse `BenchmarkName  N  ns/op  B/op  allocs/op  [wire_bytes/op]`
# lines into a JSON array.
to_json() {
  local raw="$1" out="$2"
  awk -v out="$out" '
  BEGIN { print "[" > out; first = 1 }
  /^Benchmark/ && NF >= 3 {
    name = $1; iters = $2; ns = ""; bytes = ""; allocs = ""; wire = ""
    for (i = 3; i < NF; i++) {
      if ($(i+1) == "ns/op")         ns = $i
      if ($(i+1) == "B/op")          bytes = $i
      if ($(i+1) == "allocs/op")     allocs = $i
      if ($(i+1) == "wire_bytes/op") wire = $i
    }
    if (ns == "") next
    if (!first) print "," >> out
    first = 0
    printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns >> out
    if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes >> out
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs >> out
    if (wire != "")   printf ", \"wire_bytes_per_op\": %s", wire >> out
    printf "}" >> out
  }
  END { print "\n]" >> out }
  ' "$raw"
  local entries
  entries=$(grep -c '"name"' "$out" || true)
  if [[ "$entries" -eq 0 ]]; then
    echo "bench.sh: no benchmark entries parsed into $out — the pattern matched nothing or every run errored" >&2
    exit 1
  fi
  echo "wrote $entries benchmark entries to $out" >&2
}

# --fault: price the fault-injection suite when it is idle — a bare
# disarmed Hit, the Wrap passthrough, and the acceptance-scenario cast
# with no failpoints armed — next to the pre-existing cast baseline.
# BenchmarkFaultCastDisarmed vs BenchmarkCastPushdown/rows=10000/full
# in the same snapshot must sit within run-to-run noise of each other:
# that pair is the "failpoints are free when disabled" proof, tracked
# PR over PR in BENCH_fault.json.
if [[ "${1:-}" == "--fault" ]]; then
  OUT_FAULT="${OUT_FAULT:-BENCH_fault.json}"
  RAW_FAULT="$(mktemp)"
  trap 'rm -f "$RAW_FAULT"' EXIT
  run "$RAW_FAULT" ./internal/core 'BenchmarkFault'
  run "$RAW_FAULT" ./internal/core 'BenchmarkCastPushdown/^rows=10000$/full'
  to_json "$RAW_FAULT" "$OUT_FAULT"
  exit 0
fi

# --obs: price the observability layer — the acceptance cast and the
# end-to-end pushdown query, each with tracing off (plain context, the
# production default) and on (live span tree). The off/on deltas in
# BENCH_obs.json are the "tracing is free when disabled" proof: the
# trace=off rows must sit within run-to-run noise of the untraced
# baselines (BenchmarkFaultCastDisarmed, BenchmarkQueryPushdown), and
# TestObsDisabledZeroAlloc pins the disabled path to zero allocations
# in CI.
if [[ "${1:-}" == "--obs" ]]; then
  OUT_OBS="${OUT_OBS:-BENCH_obs.json}"
  RAW_OBS="$(mktemp)"
  trap 'rm -f "$RAW_OBS"' EXIT
  run "$RAW_OBS" ./internal/core 'BenchmarkObsCast|BenchmarkObsQuery'
  to_json "$RAW_OBS" "$OUT_OBS"
  exit 0
fi

# --serve: the server load smoke. The bigdawg -bench-serve driver
# starts an in-process server over the equivalence generator's
# federation and hammers it with SERVE_CLIENTS concurrent connections
# for SERVE_DURATION, writing QPS and latency quantiles to
# BENCH_serve.json. SERVE_MAX_P99 / SERVE_MAX_ERROR_RATE turn the run
# into a pass/fail gate (CI sets both).
if [[ "${1:-}" == "--serve" ]]; then
  OUT_SERVE="${OUT_SERVE:-BENCH_serve.json}"
  SERVE_CLIENTS="${SERVE_CLIENTS:-64}"
  SERVE_DURATION="${SERVE_DURATION:-3s}"
  SERVE_MAX_P99="${SERVE_MAX_P99:-0}"
  SERVE_MAX_ERROR_RATE="${SERVE_MAX_ERROR_RATE:--1}"
  go run ./cmd/bigdawg -bench-serve \
    -bench-clients "$SERVE_CLIENTS" -bench-duration "$SERVE_DURATION" \
    -bench-out "$OUT_SERVE" \
    -bench-max-p99 "$SERVE_MAX_P99" -bench-max-error-rate "$SERVE_MAX_ERROR_RATE"
  exit 0
fi

# --shard: the shard-scaling sweep. The bigdawg -bench-shard driver
# builds the same seeded table partitioned across SHARD_COUNTS
# in-process shard servers behind a scatter-gather coordinator and
# drives scatter-shaped queries (filtered COUNT, pushed-down GROUP BY)
# through real clients, verifying every answer. BENCH_shard.json holds
# one entry per shard count — the scaling curve. Absolute QPS and its
# slope are machine-dependent (a single-core box cannot scale), so CI
# gates shape and error_rate, not throughput.
if [[ "${1:-}" == "--shard" ]]; then
  OUT_SHARD="${OUT_SHARD:-BENCH_shard.json}"
  SHARD_ROWS="${SHARD_ROWS:-100000}"
  SHARD_COUNTS="${SHARD_COUNTS:-1,2,4}"
  SHARD_CLIENTS="${SHARD_CLIENTS:-8}"
  SHARD_DURATION="${SHARD_DURATION:-2s}"
  go run ./cmd/bigdawg -bench-shard \
    -bench-shard-rows "$SHARD_ROWS" -bench-shard-counts "$SHARD_COUNTS" \
    -bench-shard-clients "$SHARD_CLIENTS" -bench-shard-duration "$SHARD_DURATION" \
    -bench-shard-out "$OUT_SHARD"
  exit 0
fi

RAW_RELATIONAL="$(mktemp)"
RAW_PUSHDOWN="$(mktemp)"
trap 'rm -f "$RAW_RELATIONAL" "$RAW_PUSHDOWN"' EXIT

# E-series experiment benchmarks at the repo root.
run "$RAW_RELATIONAL" . 'BenchmarkE[0-9]'
# Relational executor benchmarks: row vs vectorized, DML index path.
run "$RAW_RELATIONAL" ./internal/relational 'Benchmark'
to_json "$RAW_RELATIONAL" "$OUT_RELATIONAL"

# CAST pushdown: bytes moved + latency, planner on/off, 10k/100k rows.
run "$RAW_PUSHDOWN" ./internal/core 'BenchmarkCastPushdown|BenchmarkQueryPushdown'
to_json "$RAW_PUSHDOWN" "$OUT_PUSHDOWN"
