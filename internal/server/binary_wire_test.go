package server

// Unit and fuzz coverage for the request/response wire protocol. The
// fuzzers are the satellite the CI fuzz job runs: arbitrary bytes fed
// to the decoders must produce either a clean decode or a typed
// protocol error — never a panic, and never an allocation driven by an
// unvalidated wire length.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
)

func wireRelation(t testing.TB) *engine.Relation {
	rel := engine.NewRelation(engine.NewSchema(
		engine.Col("c0", engine.TypeInt),
		engine.Col("v", engine.TypeString)))
	for i := 0; i < 10; i++ {
		if err := rel.Append(engine.Tuple{engine.NewInt(int64(i)), engine.NewString("x")}); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	return rel
}

func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpQuery, Text: "RELATIONAL(SELECT * FROM CAST(o0, relation))"},
		{Op: OpQuery, Deadline: 1500 * time.Millisecond, Text: "ARRAY(scan(CAST(o1, array)))"},
		{Op: OpExplain, Text: "TEXT(count(CAST(o2, text)))"},
		{Op: OpCast, Object: "o0", Engine: "accumulo"},
		{Op: OpCast, Object: strings.Repeat("n", maxCastArgBytes), Engine: ""},
		{Op: OpMetrics},
		{Op: OpPing, Deadline: 24 * time.Hour},
		{Op: OpQuery, Text: strings.Repeat("q", MaxRequestBytes)},
	}
	for _, req := range reqs {
		var buf bytes.Buffer
		if err := WriteRequest(&buf, req); err != nil {
			t.Fatalf("write %+v: %v", req.Op, err)
		}
		got, err := ReadRequest(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("read op %d: %v", req.Op, err)
		}
		want := req
		// Deadlines travel as capped milliseconds.
		millis := want.Deadline.Milliseconds()
		if millis > maxDeadlineMillis {
			millis = maxDeadlineMillis
		}
		want.Deadline = time.Duration(millis) * time.Millisecond
		// Cast requests drop any Text; query requests drop cast args.
		if got != want {
			t.Fatalf("round trip mismatch: sent %+v got %+v", want, got)
		}
	}
}

func TestReadRequestRejectsCorruptFrames(t *testing.T) {
	valid := func() []byte {
		var buf bytes.Buffer
		if err := WriteRequest(&buf, Request{Op: OpQuery, Text: "TEXT(count(CAST(o0, text)))"}); err != nil {
			t.Fatalf("write: %v", err)
		}
		return buf.Bytes()
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"bad magic", append([]byte{0xde, 0xad, 0xbe, 0xef}, valid()[4:]...)},
		{"unknown opcode", func() []byte { b := valid(); b[4] = 99; return b }()},
		{"oversized deadline", func() []byte {
			b := valid()
			binary.LittleEndian.PutUint32(b[5:9], maxDeadlineMillis+1)
			return b
		}()},
		{"oversized payload length", func() []byte {
			b := valid()[:13]
			binary.LittleEndian.PutUint32(b[9:13], MaxRequestBytes+1)
			return b
		}()},
		{"truncated header", valid()[:7]},
		{"truncated payload", valid()[:20]},
		{"cast arg overruns payload", func() []byte {
			var buf bytes.Buffer
			payload := binary.LittleEndian.AppendUint16(nil, 500) // claims 500, has 1
			payload = append(payload, 'x')
			buf.Write(binary.LittleEndian.AppendUint32(nil, reqMagic))
			buf.WriteByte(OpCast)
			buf.Write(binary.LittleEndian.AppendUint32(nil, 0))
			buf.Write(binary.LittleEndian.AppendUint32(nil, uint32(len(payload))))
			buf.Write(payload)
			return buf.Bytes()
		}()},
		{"cast trailing bytes", func() []byte {
			var buf bytes.Buffer
			payload := binary.LittleEndian.AppendUint16(nil, 1)
			payload = append(payload, 'a')
			payload = binary.LittleEndian.AppendUint16(payload, 1)
			payload = append(payload, 'b', 'z', 'z')
			buf.Write(binary.LittleEndian.AppendUint32(nil, reqMagic))
			buf.WriteByte(OpCast)
			buf.Write(binary.LittleEndian.AppendUint32(nil, 0))
			buf.Write(binary.LittleEndian.AppendUint32(nil, uint32(len(payload))))
			buf.Write(payload)
			return buf.Bytes()
		}()},
		{"ping with payload", func() []byte {
			var buf bytes.Buffer
			buf.Write(binary.LittleEndian.AppendUint32(nil, reqMagic))
			buf.WriteByte(OpPing)
			buf.Write(binary.LittleEndian.AppendUint32(nil, 0))
			buf.Write(binary.LittleEndian.AppendUint32(nil, 3))
			buf.WriteString("???")
			return buf.Bytes()
		}()},
	}
	for _, tc := range cases {
		_, err := ReadRequest(bytes.NewReader(tc.data))
		if err == nil {
			t.Fatalf("%s: decode succeeded, want protocol error", tc.name)
		}
		if !IsProtocolError(err) {
			t.Fatalf("%s: error %v is not a protocol error", tc.name, err)
		}
	}
	// Clean close before any byte is io.EOF, not a protocol error.
	if _, err := ReadRequest(bytes.NewReader(nil)); !errors.Is(err, io.EOF) || IsProtocolError(err) {
		t.Fatalf("empty stream: got %v, want bare io.EOF", err)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	rel := wireRelation(t)

	var buf bytes.Buffer
	if err := WriteRelation(&buf, rel); err != nil {
		t.Fatalf("write relation: %v", err)
	}
	resp, err := ReadResponse(&buf)
	if err != nil || resp.Status != StatusRelation || resp.Rel == nil || resp.Rel.Len() != rel.Len() {
		t.Fatalf("relation round trip: resp %+v err %v", resp, err)
	}

	buf.Reset()
	if err := WriteText(&buf, "metrics snapshot"); err != nil {
		t.Fatalf("write text: %v", err)
	}
	resp, err = ReadResponse(&buf)
	if err != nil || resp.Status != StatusText || resp.Text != "metrics snapshot" {
		t.Fatalf("text round trip: resp %+v err %v", resp, err)
	}

	buf.Reset()
	if err := WriteError(&buf, CodeOverloaded, "busy"); err != nil {
		t.Fatalf("write error: %v", err)
	}
	resp, err = ReadResponse(&buf)
	if err != nil || resp.Status != StatusError || resp.Code != CodeOverloaded || resp.Text != "busy" {
		t.Fatalf("error round trip: resp %+v err %v", resp, err)
	}

	buf.Reset()
	if err := WriteExplain(&buf, "query 1ms\n  parse 0.1ms", rel); err != nil {
		t.Fatalf("write explain: %v", err)
	}
	resp, err = ReadResponse(&buf)
	if err != nil || resp.Status != StatusExplain || !strings.Contains(resp.Text, "parse") ||
		resp.Rel == nil || resp.Rel.Len() != rel.Len() {
		t.Fatalf("explain round trip: resp %+v err %v", resp, err)
	}
}

func TestWriteErrorTruncatesOversizedMessage(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteError(&buf, CodeInternal, strings.Repeat("e", maxErrBytes+500)); err != nil {
		t.Fatalf("write: %v", err)
	}
	resp, err := ReadResponse(&buf)
	if err != nil || resp.Status != StatusError || len(resp.Text) != maxErrBytes {
		t.Fatalf("truncated error round trip: len %d err %v", len(resp.Text), err)
	}
}

func TestReadResponseRejectsOversizedText(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteByte(StatusText)
	buf.Write(binary.LittleEndian.AppendUint32(nil, maxTextBytes+1))
	if _, err := ReadResponse(&buf); err == nil || !IsProtocolError(err) {
		t.Fatalf("oversized text accepted: %v", err)
	}
	buf.Reset()
	buf.WriteByte(StatusError)
	buf.WriteByte(CodeInternal)
	buf.Write(binary.LittleEndian.AppendUint32(nil, maxErrBytes+1))
	if _, err := ReadResponse(&buf); err == nil || !IsProtocolError(err) {
		t.Fatalf("oversized error message accepted: %v", err)
	}
}

// FuzzReadRequest feeds arbitrary bytes to the request decoder. Every
// outcome must be a clean decode (which must then re-encode and decode
// to the same request) or a typed protocol error; panics and
// wire-chosen allocations are the bugs this hunts.
func FuzzReadRequest(f *testing.F) {
	for _, req := range []Request{
		{Op: OpQuery, Text: "RELATIONAL(SELECT COUNT(*) AS n FROM CAST(o0, relation))"},
		{Op: OpCast, Object: "o1", Engine: "scidb", Deadline: time.Second},
		{Op: OpMetrics},
		{Op: OpPing},
	} {
		var buf bytes.Buffer
		if err := WriteRequest(&buf, req); err != nil {
			f.Fatalf("seed: %v", err)
		}
		f.Add(buf.Bytes())
		f.Add(buf.Bytes()[:buf.Len()-1])
	}
	f.Add([]byte{})
	f.Add([]byte{0x42, 0x44, 0x57, 0x51, 1, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ReadRequest(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, io.EOF) && !IsProtocolError(err) {
				t.Fatalf("unclassified decode error: %v", err)
			}
			return
		}
		var out bytes.Buffer
		if err := WriteRequest(&out, req); err != nil {
			t.Fatalf("decoded request does not re-encode: %+v: %v", req, err)
		}
		again, err := ReadRequest(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded request does not decode: %v", err)
		}
		if again != req {
			t.Fatalf("unstable round trip: %+v vs %+v", req, again)
		}
	})
}

// FuzzReadResponse does the same for the client-side response decoder,
// which also fronts the engine's BDW2 relation codec.
func FuzzReadResponse(f *testing.F) {
	rel := wireRelation(f)
	var buf bytes.Buffer
	if err := WriteRelation(&buf, rel); err != nil {
		f.Fatalf("seed: %v", err)
	}
	f.Add(buf.Bytes())
	buf.Reset()
	_ = WriteText(&buf, "pong")
	f.Add(buf.Bytes())
	buf.Reset()
	_ = WriteError(&buf, CodeDeadline, "deadline exceeded")
	f.Add(buf.Bytes())
	buf.Reset()
	_ = WriteExplain(&buf, "query 1ms", rel)
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:4])
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := ReadResponse(bytes.NewReader(data))
		if err != nil {
			if !IsProtocolError(err) {
				t.Fatalf("unclassified decode error: %v", err)
			}
			return
		}
		switch resp.Status {
		case StatusText:
			var out bytes.Buffer
			if err := WriteText(&out, resp.Text); err != nil {
				t.Fatalf("decoded text does not re-encode: %v", err)
			}
		case StatusError:
			var out bytes.Buffer
			if err := WriteError(&out, resp.Code, resp.Text); err != nil {
				t.Fatalf("decoded error does not re-encode: %v", err)
			}
		}
	})
}
