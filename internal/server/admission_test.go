package server

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestAcquireRejectsExpiredContext pins the admission-order bug: with
// free slots AND an already-expired context, the slot/ctx select chose
// randomly, so roughly half of expired requests were admitted and
// executed. acquire must check expiry first — deterministically, every
// time.
func TestAcquireRejectsExpiredContext(t *testing.T) {
	a := newAdmission(4, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 500; i++ {
		err := a.acquire(ctx)
		if err == nil {
			a.release()
			t.Fatalf("iteration %d: expired context was admitted", i)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("iteration %d: err = %v, want context.Canceled", i, err)
		}
	}
	if e, q := a.executing(), a.queued(); e != 0 || q != 0 {
		t.Fatalf("counters after rejected acquires: executing=%d queued=%d, want 0/0", e, q)
	}
	// The member tokens taken during the rejected acquires must all be
	// returned: a live request can still fill every slot.
	for i := 0; i < 4; i++ {
		if err := a.acquire(context.Background()); err != nil {
			t.Fatalf("live acquire %d after rejections: %v", i, err)
		}
	}
	if e := a.executing(); e != 4 {
		t.Fatalf("executing = %d, want 4", e)
	}
	for i := 0; i < 4; i++ {
		a.release()
	}
}

// TestQueuedNoOverReportDuringRelease pins the queue-depth metric bug:
// queued() derived from len(members)-len(slots) transiently over-reports
// while release drains slots before members. With no waiter ever
// present, every reading of queued() must be exactly zero, including
// mid-release.
func TestQueuedNoOverReportDuringRelease(t *testing.T) {
	a := newAdmission(1, 0)
	for i := 0; i < 300; i++ {
		if err := a.acquire(context.Background()); err != nil {
			t.Fatalf("acquire: %v", err)
		}
		done := make(chan struct{})
		go func() {
			a.release()
			close(done)
		}()
	poll:
		for {
			if q := a.queued(); q != 0 {
				t.Fatalf("iteration %d: queued() = %d with no waiters", i, q)
			}
			select {
			case <-done:
				break poll
			default:
				runtime.Gosched()
			}
		}
	}
}

// TestAdmissionCountersRaceStress hammers acquire/release from many
// goroutines — some with already-tight deadlines so the expiry path
// runs too — while a reader continuously asserts the metric invariants:
// both counters non-negative, executing bounded by the slot count,
// queued bounded by the admission capacity. Run under -race in CI.
func TestAdmissionCountersRaceStress(t *testing.T) {
	const maxConcurrent, maxQueue = 3, 5
	a := newAdmission(maxConcurrent, maxQueue)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 12; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ctx := context.Background()
				cancel := context.CancelFunc(func() {})
				if w%3 == 0 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(w%2)*time.Millisecond)
				}
				if err := a.acquire(ctx); err == nil {
					a.release()
				}
				cancel()
			}
		}(w)
	}
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		if e := a.executing(); e < 0 || e > maxConcurrent {
			t.Errorf("executing() = %d, want within [0, %d]", e, maxConcurrent)
			break
		}
		if q := a.queued(); q < 0 || q > maxConcurrent+maxQueue {
			t.Errorf("queued() = %d, want within [0, %d]", q, maxConcurrent+maxQueue)
			break
		}
	}
	close(stop)
	wg.Wait()
	if e, q := a.executing(), a.queued(); e != 0 || q != 0 {
		t.Fatalf("counters after quiesce: executing=%d queued=%d, want 0/0", e, q)
	}
}
