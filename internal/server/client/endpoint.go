package client

import (
	"context"
	"sync"

	"repro/internal/engine"
)

// Endpoint is a self-healing handle on one server address: it dials
// lazily, reuses the connection across calls, and redials after the
// connection breaks (a transport failure, or a cancellation that
// severed the socket mid-round-trip). Server-side query errors leave
// the connection healthy and cached. It satisfies core.ShardEndpoint,
// so a scatter coordinator keeps one Endpoint per shard and individual
// failed or cancelled fan-out calls don't poison later queries.
type Endpoint struct {
	addr string

	mu sync.Mutex
	c  *Client
}

// NewEndpoint makes a handle on addr without dialing.
func NewEndpoint(addr string) *Endpoint { return &Endpoint{addr: addr} }

// client returns the cached connection, replacing it if broken.
func (e *Endpoint) client() (*Client, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.c != nil && !e.c.broken.Load() {
		return e.c, nil
	}
	if e.c != nil {
		_ = e.c.Close()
		e.c = nil
	}
	c, err := Dial(e.addr)
	if err != nil {
		return nil, err
	}
	e.c = c
	return c, nil
}

// Query runs one SCOPE/CAST query over the endpoint's connection.
func (e *Endpoint) Query(ctx context.Context, q string) (*engine.Relation, error) {
	c, err := e.client()
	if err != nil {
		return nil, err
	}
	return c.Query(ctx, q)
}

// Ping round-trips an empty request.
func (e *Endpoint) Ping(ctx context.Context) error {
	c, err := e.client()
	if err != nil {
		return err
	}
	return c.Ping(ctx)
}

// Close tears down the cached connection, if any.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.c == nil {
		return nil
	}
	err := e.c.Close()
	e.c = nil
	return err
}
