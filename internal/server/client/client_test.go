package client

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/server"
)

// stalledListener accepts connections and never responds — the
// pathological server that exposed the roundTrip cancellation bug.
// Accepted connections are held (not leaked to GC, whose finalizer
// would close them) until Close.
type stalledListener struct {
	ln net.Listener

	mu    sync.Mutex
	conns []net.Conn
}

func newStalledListener(t *testing.T) *stalledListener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	s := &stalledListener{ln: ln}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			s.conns = append(s.conns, c)
			s.mu.Unlock()
		}
	}()
	t.Cleanup(s.Close)
	return s
}

func (s *stalledListener) Addr() string { return s.ln.Addr().String() }

func (s *stalledListener) Close() {
	_ = s.ln.Close()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.conns {
		_ = c.Close()
	}
	s.conns = nil
}

// TestCancelUnblocksStalledRoundTrip pins the roundTrip bug: a
// deadline-less context that is cancelled while the client is blocked
// in ReadResponse against a stalled server must sever the connection
// and return promptly — before the fix it hung forever (the socket
// deadline was only set when the context carried one).
func TestCancelUnblocksStalledRoundTrip(t *testing.T) {
	srv := newStalledListener(t)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer func() { _ = c.Close() }()

	ctx, cancel := context.WithCancel(context.Background()) // no deadline
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Query(ctx, "RELATIONAL(SELECT 1)")
		errCh <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the query block on the read
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("roundTrip still blocked 5s after cancellation")
	}
	// The severed connection is marked broken: later calls fail fast
	// instead of writing into a desynchronized stream.
	if _, err := c.Query(context.Background(), "RELATIONAL(SELECT 1)"); err == nil {
		t.Fatal("query on severed connection succeeded")
	}
}

// TestCancelledBeforeCallFailsFast: an already-cancelled context never
// touches the wire.
func TestCancelledBeforeCallFailsFast(t *testing.T) {
	srv := newStalledListener(t)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer func() { _ = c.Close() }()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Query(ctx, "RELATIONAL(SELECT 1)"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// servedPolystore runs a real server over a one-table polystore.
func servedPolystore(t *testing.T) string {
	t.Helper()
	p := core.New()
	rel := engine.NewRelation(engine.NewSchema(engine.Col("c0", engine.TypeInt)))
	for i := 0; i < 8; i++ {
		_ = rel.Append(engine.Tuple{engine.NewInt(int64(i))})
	}
	if err := p.Load(core.EnginePostgres, "t", rel, core.CastOptions{}); err != nil {
		t.Fatalf("load: %v", err)
	}
	s, err := server.Serve(p, "127.0.0.1:0", server.Config{})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s.Addr().String()
}

// TestEndpointRedialsAfterBrokenConnection: an Endpoint survives a
// severed connection (here: a cancellation mid-round-trip would do the
// same) by redialing on the next call, while server-side query errors
// leave the cached connection in place.
func TestEndpointRedialsAfterBrokenConnection(t *testing.T) {
	addr := servedPolystore(t)
	e := NewEndpoint(addr)
	defer func() { _ = e.Close() }()

	if _, err := e.Query(context.Background(), "RELATIONAL(SELECT * FROM t)"); err != nil {
		t.Fatalf("first query: %v", err)
	}
	first := e.c

	// A server-side query error is not a transport failure: the
	// connection stays cached.
	var qerr *QueryError
	if _, err := e.Query(context.Background(), "RELATIONAL(SELECT * FROM missing)"); !errors.As(err, &qerr) {
		t.Fatalf("err = %v, want *QueryError", err)
	}
	if e.c != first {
		t.Fatal("query error invalidated the connection")
	}

	// Break the connection under the endpoint; the next call redials.
	_ = first.Close()
	rel, err := e.Query(context.Background(), "RELATIONAL(SELECT * FROM t)")
	if err != nil {
		t.Fatalf("query after break: %v", err)
	}
	if rel.Len() != 8 {
		t.Fatalf("rows = %d, want 8", rel.Len())
	}
	if e.c == first {
		t.Fatal("endpoint did not redial after transport failure")
	}
}
