// Package client is the Go client for the polystore server: a
// connection speaking the framed request protocol of internal/server,
// with results streamed back in the v2 BDW2 codec. A Client is safe
// for concurrent use; calls serialize on the single connection (open
// several clients for parallelism — the load driver does).
package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/server"
)

// Typed failures a server can answer with. Errors returned by Query
// and friends wrap these, so errors.Is picks them out of the chain.
var (
	// ErrOverloaded mirrors server.ErrOverloaded across the wire.
	ErrOverloaded = server.ErrOverloaded
	// ErrDeadline reports the per-query deadline expired server-side.
	ErrDeadline = errors.New("client: query deadline exceeded on server")
	// ErrShutdown reports the server severed the query (drain/hard stop).
	ErrShutdown = errors.New("client: query severed by server shutdown")
)

// QueryError is a server-side failure of a well-formed request — the
// query itself erred, not the transport.
type QueryError struct {
	Code byte
	Msg  string
}

func (e *QueryError) Error() string { return e.Msg }

// Unwrap maps wire codes back to the typed sentinels.
func (e *QueryError) Unwrap() error {
	switch e.Code {
	case server.CodeOverloaded:
		return ErrOverloaded
	case server.CodeDeadline:
		return ErrDeadline
	case server.CodeShutdown:
		return ErrShutdown
	default:
		return nil
	}
}

// Client is one connection to a polystore server.
type Client struct {
	mu   sync.Mutex // serializes round trips
	conn net.Conn
	br   *bufio.Reader
	// broken marks the connection after a transport/protocol failure or
	// Close: framing may be lost, so further calls fail fast. It is
	// atomic (not under mu) so Close can sever a round trip in flight —
	// that is how a caller abandons a query mid-execution.
	broken atomic.Bool
}

// Dial connects to a polystore server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, br: bufio.NewReader(conn)}, nil
}

// Close tears down the connection. It deliberately does not take the
// round-trip lock: closing while a call is blocked on the server is
// how a caller disconnects mid-query (the server cancels the query's
// context when it notices).
func (c *Client) Close() error {
	c.broken.Store(true)
	return c.conn.Close()
}

// roundTrip sends one request and decodes the response, serializing on
// the connection. The context's deadline travels in the request frame
// (the server enforces it around the query) and is mirrored onto the
// socket so a dead server cannot block the client past it.
func (c *Client) roundTrip(ctx context.Context, req server.Request) (server.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken.Load() {
		return server.Response{}, fmt.Errorf("client: connection is broken (closed or previous transport failure)")
	}
	if err := ctx.Err(); err != nil {
		return server.Response{}, err
	}
	var sockDeadline time.Time // zero = none
	if d, ok := ctx.Deadline(); ok {
		req.Deadline = time.Until(d)
		if req.Deadline <= 0 {
			return server.Response{}, context.DeadlineExceeded
		}
		// Grace so the server's own deadline reply normally wins the race
		// against the socket timeout.
		sockDeadline = d.Add(2 * time.Second)
	}
	if err := c.conn.SetDeadline(sockDeadline); err != nil {
		c.broken.Store(true)
		return server.Response{}, err
	}
	// Watch for cancellation while blocked on the socket. The deadline
	// (when any) is mirrored onto the socket above, but cancellation of
	// a deadline-less context has no other lever: severing the
	// connection is the only way to unblock WriteRequest/ReadResponse
	// against a stalled server.
	stop := make(chan struct{})
	watcher := make(chan struct{})
	go func() {
		defer close(watcher)
		select {
		case <-ctx.Done():
			// Deadline expiry is left to the mirrored socket deadline,
			// whose grace lets the server's own deadline reply win the
			// race; explicit cancellation severs immediately.
			if errors.Is(ctx.Err(), context.Canceled) {
				c.broken.Store(true)
				c.conn.Close()
			}
		case <-stop:
		}
	}()
	resp, err := func() (server.Response, error) {
		if err := server.WriteRequest(c.conn, req); err != nil {
			return server.Response{}, fmt.Errorf("client: send: %w", err)
		}
		resp, err := server.ReadResponse(c.br)
		if err != nil {
			return server.Response{}, fmt.Errorf("client: recv: %w", err)
		}
		return resp, nil
	}()
	close(stop)
	<-watcher
	if err != nil {
		c.broken.Store(true)
		// A cancellation-severed socket surfaces as a read/write error;
		// report the cause, not the symptom.
		if cerr := ctx.Err(); cerr != nil {
			return server.Response{}, cerr
		}
		return server.Response{}, err
	}
	return resp, nil
}

// errFrom converts an error response into a *QueryError.
func errFrom(resp server.Response) error {
	if resp.Status != server.StatusError {
		return fmt.Errorf("client: unexpected response status %d", resp.Status)
	}
	return &QueryError{Code: resp.Code, Msg: resp.Text}
}

// Query runs one SCOPE/CAST query and returns its result relation.
func (c *Client) Query(ctx context.Context, q string) (*engine.Relation, error) {
	resp, err := c.roundTrip(ctx, server.Request{Op: server.OpQuery, Text: q})
	if err != nil {
		return nil, err
	}
	if resp.Status != server.StatusRelation {
		return nil, errFrom(resp)
	}
	return resp.Rel, nil
}

// Explain runs EXPLAIN ANALYZE on a query: the span-tree report plus
// the result relation.
func (c *Client) Explain(ctx context.Context, q string) (string, *engine.Relation, error) {
	resp, err := c.roundTrip(ctx, server.Request{Op: server.OpExplain, Text: q})
	if err != nil {
		return "", nil, err
	}
	if resp.Status != server.StatusExplain {
		return "", nil, errFrom(resp)
	}
	return resp.Text, resp.Rel, nil
}

// Cast migrates a catalog object to another engine; the returned text
// summarises the migration.
func (c *Client) Cast(ctx context.Context, object, eng string) (string, error) {
	resp, err := c.roundTrip(ctx, server.Request{Op: server.OpCast, Object: object, Engine: eng})
	if err != nil {
		return "", err
	}
	if resp.Status != server.StatusText {
		return "", errFrom(resp)
	}
	return resp.Text, nil
}

// Metrics fetches the server's metrics-registry snapshot as JSON.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	resp, err := c.roundTrip(ctx, server.Request{Op: server.OpMetrics})
	if err != nil {
		return "", err
	}
	if resp.Status != server.StatusText {
		return "", errFrom(resp)
	}
	return resp.Text, nil
}

// Ping round-trips an empty request.
func (c *Client) Ping(ctx context.Context) error {
	resp, err := c.roundTrip(ctx, server.Request{Op: server.OpPing})
	if err != nil {
		return err
	}
	if resp.Status != server.StatusText {
		return errFrom(resp)
	}
	return nil
}
