package server_test

// Integration suite for the polystore TCP server, written to run under
// -race: concurrent clients over a generated federation, mid-query
// disconnects cancelling in-flight work, per-query deadline expiry,
// admission-controller overload rejection, graceful drain, hard stop,
// and corrupt input over raw TCP — all bracketed by a goroutine-leak
// check so every path provably unwinds to zero server goroutines.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/server"
	"repro/internal/server/client"
)

// leakCheck snapshots the goroutine count; its returned func polls
// until the count returns to the baseline (a grace of 2 absorbs
// runtime housekeeping goroutines that come and go).
func leakCheck(t *testing.T) func() {
	t.Helper()
	base := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			runtime.GC()
			n := runtime.NumGoroutine()
			if n <= base+2 {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				m := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d live, baseline %d\n%s", n, base, buf[:m])
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// fedServer builds a seeded federation, loads it into a fresh
// polystore and serves it on loopback.
func fedServer(t *testing.T, seed int64, cfg server.Config) (*server.Server, *core.Polystore, []string) {
	t.Helper()
	g := core.NewFedGen(seed)
	objs := g.Catalog()
	p := core.New()
	for _, o := range objs {
		if err := o.Load(p); err != nil {
			t.Fatalf("load %s into %s: %v", o.Name, o.Eng, err)
		}
	}
	queries := g.Queries(objs, 6)
	s, err := server.Serve(p, "127.0.0.1:0", cfg)
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	return s, p, queries
}

// kvServer serves a minimal deterministic federation: one KV-resident
// object, so crossQuery below always migrates (and therefore always
// passes the cast failpoints fault tests arm).
func kvServer(t *testing.T, cfg server.Config) (*server.Server, *core.Polystore) {
	t.Helper()
	p := core.New()
	rel := engine.NewRelation(engine.NewSchema(
		engine.Col("c0", engine.TypeInt),
		engine.Col("v", engine.TypeString)))
	for i := 0; i < 24; i++ {
		if err := rel.Append(engine.Tuple{engine.NewInt(int64(i)), engine.NewString("x")}); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := p.Load(core.EngineAccumulo, "kvobj", rel, core.CastOptions{}); err != nil {
		t.Fatalf("load: %v", err)
	}
	s, err := server.Serve(p, "127.0.0.1:0", cfg)
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	return s, p
}

const crossQuery = "RELATIONAL(SELECT COUNT(*) AS n FROM CAST(kvobj, relation))"

func shutdown(t *testing.T, s *server.Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// canon renders a relation order-insensitively for comparison.
func canon(rel *engine.Relation) string {
	if rel == nil {
		return "<nil>"
	}
	rows := make([]string, 0, rel.Len())
	for _, tup := range rel.Tuples {
		parts := make([]string, len(tup))
		for i, v := range tup {
			parts[i] = v.String()
		}
		rows = append(rows, strings.Join(parts, "|"))
	}
	sort.Strings(rows)
	return strings.Join(rel.Schema.Names(), ",") + "\n" + strings.Join(rows, "\n")
}

// TestServerMatchesInProcess pins the server's answers to the library
// API's: every generated query must return the same rows (or an error
// exactly when the in-process call errors) through the wire.
func TestServerMatchesInProcess(t *testing.T) {
	check := leakCheck(t)
	s, p, queries := fedServer(t, 11, server.Config{})
	want := make([]string, len(queries))
	wantErr := make([]bool, len(queries))
	for i, q := range queries {
		rel, err := p.Query(q)
		wantErr[i] = err != nil
		if err == nil {
			want[i] = canon(rel)
		}
	}

	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer func() { _ = c.Close() }()
	ctx := context.Background()
	for i, q := range queries {
		rel, err := c.Query(ctx, q)
		if (err != nil) != wantErr[i] {
			t.Fatalf("query %d error divergence: server %v, in-process err=%v\n%s", i, err, wantErr[i], q)
		}
		if err != nil {
			var qe *client.QueryError
			if !errors.As(err, &qe) {
				t.Fatalf("query %d: error %v is not a QueryError", i, err)
			}
			continue
		}
		if got := canon(rel); got != want[i] {
			t.Fatalf("query %d diverges over the wire\nwant %s\ngot  %s\n%s", i, want[i], got, q)
		}
	}

	// Explain carries both a report and the same relation.
	for i, q := range queries {
		if wantErr[i] {
			continue
		}
		report, rel, err := c.Explain(ctx, q)
		if err != nil {
			t.Fatalf("explain %d: %v", i, err)
		}
		if !strings.Contains(report, "query") {
			t.Fatalf("explain %d: report has no query span:\n%s", i, report)
		}
		if got := canon(rel); got != want[i] {
			t.Fatalf("explain %d relation diverges\nwant %s\ngot  %s", i, want[i], got)
		}
	}

	if err := c.Ping(ctx); err != nil {
		t.Fatalf("ping: %v", err)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	for _, key := range []string{"server.requests", "server.connections", "query.count"} {
		if !strings.Contains(m, key) {
			t.Fatalf("metrics snapshot missing %s:\n%s", key, m)
		}
	}
	shutdown(t, s)
	check()
}

// TestServerCast migrates an object through the wire and verifies the
// catalog moved.
func TestServerCast(t *testing.T) {
	check := leakCheck(t)
	s, p := kvServer(t, server.Config{})
	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer func() { _ = c.Close() }()
	summary, err := c.Cast(context.Background(), "kvobj", string(core.EnginePostgres))
	if err != nil {
		t.Fatalf("cast: %v", err)
	}
	if !strings.Contains(summary, "kvobj") || !strings.Contains(summary, "postgres") {
		t.Fatalf("cast summary lacks object/engine: %q", summary)
	}
	if info, ok := p.Lookup("kvobj"); !ok || info.Engine != core.EnginePostgres {
		t.Fatalf("catalog did not move: %+v ok=%v", info, ok)
	}
	// Unknown object is a query error, not a dead connection.
	if _, err := c.Cast(context.Background(), "nosuch", "postgres"); err == nil {
		t.Fatal("cast of unknown object succeeded")
	} else if qe := new(client.QueryError); !errors.As(err, &qe) {
		t.Fatalf("cast of unknown object: %v is not a QueryError", err)
	}
	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("connection unusable after query error: %v", err)
	}
	shutdown(t, s)
	check()
}

// TestConcurrentClients hammers one server with 64 concurrent
// connections, each running the full generated query batch, and pins
// every answer to the precomputed in-process result. Run under -race
// this is the concurrency acceptance gate.
func TestConcurrentClients(t *testing.T) {
	check := leakCheck(t)
	// Queue deep enough that 64 simultaneous arrivals are admitted (the
	// admission controller's rejection path has its own test below).
	s, p, queries := fedServer(t, 7, server.Config{MaxQueue: 128})
	want := make([]string, len(queries))
	wantErr := make([]bool, len(queries))
	for i, q := range queries {
		rel, err := p.Query(q)
		wantErr[i] = err != nil
		if err == nil {
			want[i] = canon(rel)
		}
	}

	const clients = 64
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for n := 0; n < clients; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			c, err := client.Dial(s.Addr().String())
			if err != nil {
				errs <- fmt.Errorf("client %d dial: %w", n, err)
				return
			}
			defer func() { _ = c.Close() }()
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			for i, q := range queries {
				rel, err := c.Query(ctx, q)
				if (err != nil) != wantErr[i] {
					errs <- fmt.Errorf("client %d query %d error divergence: %v", n, i, err)
					return
				}
				if err == nil && canon(rel) != want[i] {
					errs <- fmt.Errorf("client %d query %d result divergence", n, i)
					return
				}
			}
		}(n)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	shutdown(t, s)
	check()
}

// TestMidQueryDisconnect arms a delay on the cast dump failpoint, sends
// a slow cross-island query, then drops the connection mid-flight. The
// server must cancel the in-flight query context, roll the migration
// back, unwind without leaking, and keep serving other clients.
func TestMidQueryDisconnect(t *testing.T) {
	check := leakCheck(t)
	s, p := kvServer(t, server.Config{})
	fault.Arm(fault.Spec{Point: core.FpCastDump, Mode: fault.ModeDelay, Delay: 400 * time.Millisecond, Times: -1})
	defer fault.Reset()

	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.Query(context.Background(), crossQuery)
		done <- err
	}()
	// Wait until the query holds its execution slot, then vanish.
	waitFor(t, time.Second, func() bool { return s.AdmissionExecuting() == 1 })
	_ = c.Close()
	if err := <-done; err == nil {
		t.Fatal("query on severed connection returned a result to the client")
	}
	// The in-flight slot must free (the query context was cancelled and
	// the pipeline unwound), and the migration must have rolled back.
	waitFor(t, 5*time.Second, func() bool { return s.AdmissionExecuting() == 0 })
	if info, ok := p.Lookup("kvobj"); !ok || info.Engine != core.EngineAccumulo {
		t.Fatalf("disconnect leaked migration state: %+v ok=%v", info, ok)
	}
	fault.Reset()

	c2, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("dial after disconnect: %v", err)
	}
	defer func() { _ = c2.Close() }()
	if rel, err := c2.Query(context.Background(), crossQuery); err != nil || rel.Len() != 1 {
		t.Fatalf("server unhealthy after disconnect: rel=%v err=%v", rel, err)
	}
	shutdown(t, s)
	check()
}

// TestDeadlineExpiry sends a query whose per-request deadline is far
// shorter than the armed cast delay: the server must answer with the
// typed deadline error and the connection must remain usable.
func TestDeadlineExpiry(t *testing.T) {
	check := leakCheck(t)
	s, _ := kvServer(t, server.Config{})
	fault.Arm(fault.Spec{Point: core.FpCastDump, Mode: fault.ModeDelay, Delay: 300 * time.Millisecond, Times: -1})
	defer fault.Reset()

	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer func() { _ = c.Close() }()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	_, err = c.Query(ctx, crossQuery)
	cancel()
	if !errors.Is(err, client.ErrDeadline) {
		t.Fatalf("expected ErrDeadline, got %v", err)
	}
	// Same budget through the cast opcode.
	ctx, cancel = context.WithTimeout(context.Background(), 50*time.Millisecond)
	_, err = c.Cast(ctx, "kvobj", "postgres")
	cancel()
	if !errors.Is(err, client.ErrDeadline) {
		t.Fatalf("cast: expected ErrDeadline, got %v", err)
	}
	fault.Reset()
	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("connection unusable after deadline errors: %v", err)
	}
	shutdown(t, s)
	check()
}

// TestOverloadRejection pins the admission controller's bounded-queue
// semantics: with one slot and one queue place, a third concurrent
// request is rejected immediately with the typed overload error.
func TestOverloadRejection(t *testing.T) {
	check := leakCheck(t)
	s, _ := kvServer(t, server.Config{MaxConcurrent: 1, MaxQueue: 1})
	fault.Arm(fault.Spec{Point: core.FpCastDump, Mode: fault.ModeDelay, Delay: 500 * time.Millisecond, Times: -1})
	defer fault.Reset()

	dial := func() *client.Client {
		c, err := client.Dial(s.Addr().String())
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		return c
	}
	c1, c2, c3 := dial(), dial(), dial()
	defer func() { _ = c1.Close() }()
	defer func() { _ = c2.Close() }()
	defer func() { _ = c3.Close() }()

	r1 := make(chan error, 1)
	go func() { _, err := c1.Query(context.Background(), crossQuery); r1 <- err }()
	waitFor(t, time.Second, func() bool { return s.AdmissionExecuting() == 1 })

	r2 := make(chan error, 1)
	go func() { _, err := c2.Query(context.Background(), crossQuery); r2 <- err }()
	waitFor(t, time.Second, func() bool { return s.AdmissionQueued() == 1 })

	// Slot busy, queue full: this one must bounce, fast.
	start := time.Now()
	_, err := c3.Query(context.Background(), crossQuery)
	if !errors.Is(err, client.ErrOverloaded) {
		t.Fatalf("expected ErrOverloaded, got %v", err)
	}
	if d := time.Since(start); d > 250*time.Millisecond {
		t.Fatalf("overload rejection took %v — it queued instead of bouncing", d)
	}
	// The occupant and the queued request both complete normally.
	if err := <-r1; err != nil {
		t.Fatalf("occupant query failed: %v", err)
	}
	if err := <-r2; err != nil {
		t.Fatalf("queued query failed: %v", err)
	}
	shutdown(t, s)
	check()
}

// TestGracefulDrain starts a slow query, then shuts down: the in-flight
// query must complete and deliver its result, idle connections must
// close, new dials must fail, and no goroutine may survive.
func TestGracefulDrain(t *testing.T) {
	check := leakCheck(t)
	s, _ := kvServer(t, server.Config{})
	fault.Arm(fault.Spec{Point: core.FpCastDump, Mode: fault.ModeDelay, Delay: 300 * time.Millisecond, Times: -1})
	defer fault.Reset()

	busy, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer func() { _ = busy.Close() }()
	idle, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("dial idle: %v", err)
	}
	defer func() { _ = idle.Close() }()

	type result struct {
		rel *engine.Relation
		err error
	}
	r := make(chan result, 1)
	go func() {
		rel, err := busy.Query(context.Background(), crossQuery)
		r <- result{rel, err}
	}()
	waitFor(t, time.Second, func() bool { return s.AdmissionExecuting() == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	res := <-r
	if res.err != nil || res.rel == nil || res.rel.Len() != 1 {
		t.Fatalf("in-flight query did not survive drain: rel=%v err=%v", res.rel, res.err)
	}
	if err := idle.Ping(context.Background()); err == nil {
		t.Fatal("idle connection survived drain")
	}
	if _, err := client.Dial(s.Addr().String()); err == nil {
		t.Fatal("dial succeeded after drain")
	}
	check()
}

// TestHardStop gives Shutdown an already-tight deadline while a slow
// query is in flight: the query context is severed, the client loses
// the connection, and the server still unwinds to zero goroutines.
func TestHardStop(t *testing.T) {
	check := leakCheck(t)
	s, p := kvServer(t, server.Config{})
	fault.Arm(fault.Spec{Point: core.FpCastDump, Mode: fault.ModeDelay, Delay: 500 * time.Millisecond, Times: -1})
	defer fault.Reset()

	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer func() { _ = c.Close() }()
	r := make(chan error, 1)
	go func() { _, err := c.Query(context.Background(), crossQuery); r <- err }()
	waitFor(t, time.Second, func() bool { return s.AdmissionExecuting() == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hard stop: got %v, want deadline exceeded", err)
	}
	if err := <-r; err == nil {
		t.Fatal("severed query returned a result")
	}
	// Atomic casts guarantee the severed migration left no trace.
	if info, ok := p.Lookup("kvobj"); !ok || info.Engine != core.EngineAccumulo {
		t.Fatalf("hard stop leaked migration state: %+v ok=%v", info, ok)
	}
	check()
}

// TestCorruptInputOverTCP speaks raw bytes to the listener: framing
// violations must each earn a typed bad-request error frame followed by
// connection close — no panic, no hang, no leak.
func TestCorruptInputOverTCP(t *testing.T) {
	check := leakCheck(t)
	s, _ := kvServer(t, server.Config{})

	cases := []struct {
		name string
		data []byte
	}{
		{"bad magic", []byte{0xde, 0xad, 0xbe, 0xef, 1, 0, 0, 0, 0, 0, 0, 0, 0}},
		{"garbage opcode", []byte{0x42, 0x44, 0x57, 0x51, 99, 0, 0, 0, 0, 0, 0, 0, 0}},
		{"oversized declared length", []byte{0x42, 0x44, 0x57, 0x51, 1, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff}},
		{"truncated frame", []byte{0x42, 0x44, 0x57}},
	}
	for _, tc := range cases {
		conn, err := net.Dial("tcp", s.Addr().String())
		if err != nil {
			t.Fatalf("%s: dial: %v", tc.name, err)
		}
		conn.SetDeadline(time.Now().Add(5 * time.Second))
		if _, err := conn.Write(tc.data); err != nil {
			t.Fatalf("%s: write: %v", tc.name, err)
		}
		if tcp, ok := conn.(*net.TCPConn); ok {
			tcp.CloseWrite() // half-close so truncation is visible server-side
		}
		resp, err := server.ReadResponse(conn)
		if err != nil {
			t.Fatalf("%s: no error frame before close: %v", tc.name, err)
		}
		if resp.Status != server.StatusError || resp.Code != server.CodeBadRequest {
			t.Fatalf("%s: got status %d code %d, want bad-request error", tc.name, resp.Status, resp.Code)
		}
		// After the reply the server must close; the next read is EOF.
		if _, err := server.ReadResponse(conn); err == nil {
			t.Fatalf("%s: connection stayed open after protocol error", tc.name)
		}
		conn.Close()
	}

	// A clean immediate close is not a protocol error and leaves no debris.
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	_ = conn.Close()

	// The server still works.
	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("dial after corruption: %v", err)
	}
	defer func() { _ = c.Close() }()
	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("ping after corruption: %v", err)
	}
	shutdown(t, s)
	check()
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("condition not reached within %v", timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
