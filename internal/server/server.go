package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

// Config tunes a Server. The zero value gets sensible defaults from
// normalize.
type Config struct {
	// MaxConcurrent is the number of queries executing in parallel
	// (default 2×GOMAXPROCS — queries are a mix of CPU and pipe work).
	MaxConcurrent int
	// MaxQueue bounds how many admitted requests may wait for a slot
	// before new arrivals are rejected with ErrOverloaded (default
	// 2×MaxConcurrent).
	MaxQueue int
	// DefaultTimeout is the per-query deadline applied when a request
	// carries none (default 30s).
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested deadlines (default 2m).
	MaxTimeout time.Duration
}

func (c Config) normalize() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 2 * c.MaxConcurrent
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	return c
}

// Server is the polystore's TCP front end: one goroutine per
// connection plus one reader goroutine under it (so a dropped peer
// cancels its in-flight query), a per-query context carrying the
// request deadline into QueryCtx/CastCtx, and the admission controller
// bounding concurrent execution. Metrics land in the polystore's own
// registry under server.* — the -monitor expvar endpoint serves them
// alongside the query/cast metrics for free.
type Server struct {
	poly *core.Polystore
	cfg  Config
	ln   net.Listener
	adm  *admission

	// baseCtx parents every query context; cancel severs in-flight work
	// on hard shutdown.
	baseCtx context.Context
	cancel  context.CancelFunc
	// draining closes when Shutdown begins: the accept loop stops and
	// idle connections close; in-flight requests run to completion.
	draining  chan struct{}
	drainOnce sync.Once

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	wg sync.WaitGroup // accept loop + connection handlers

	sm serverMetrics
}

// serverMetrics are the registry handles the request path updates.
type serverMetrics struct {
	connections *metrics.Gauge
	inflight    *metrics.Gauge
	requests    *metrics.Counter
	errors      *metrics.Counter
	overloaded  *metrics.Counter
	protoErrors *metrics.Counter
	latency     *metrics.Histogram
}

// Serve starts a server for the polystore on addr (e.g. ":4250" or
// "127.0.0.1:0") and begins accepting connections.
func Serve(p *core.Polystore, addr string, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	cfg = cfg.normalize()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		poly:     p,
		cfg:      cfg,
		ln:       ln,
		adm:      newAdmission(cfg.MaxConcurrent, cfg.MaxQueue),
		baseCtx:  ctx,
		cancel:   cancel,
		draining: make(chan struct{}),
		conns:    map[net.Conn]struct{}{},
		sm: serverMetrics{
			connections: p.Metrics.Gauge("server.connections"),
			inflight:    p.Metrics.Gauge("server.inflight"),
			requests:    p.Metrics.Counter("server.requests"),
			errors:      p.Metrics.Counter("server.errors"),
			overloaded:  p.Metrics.Counter("server.overloaded"),
			protoErrors: p.Metrics.Counter("server.protocol_errors"),
			latency:     p.Metrics.Histogram("server.latency"),
		},
	}
	p.Metrics.GaugeFunc("server.queue_depth", func() int64 { return int64(s.adm.queued()) })
	p.Metrics.GaugeFunc("server.executing", func() int64 { return int64(s.adm.executing()) })
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr is the listener's bound address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Config reports the server's normalized configuration.
func (s *Server) Config() Config { return s.cfg }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed by Shutdown
		}
		s.mu.Lock()
		select {
		case <-s.draining:
			s.mu.Unlock()
			c.Close()
			continue
		default:
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handleConn(c)
	}
}

// readResult is one frame (or terminal error) off a connection.
type readResult struct {
	req Request
	err error
}

// handleConn owns one connection: a reader goroutine pulls request
// frames off the socket while this goroutine executes them, so a peer
// that disconnects mid-query is noticed immediately (the blocked read
// fails → connCtx cancels → the in-flight QueryCtx unwinds through the
// cast pipeline's teardown). The reader goroutine can never leak: the
// handler's deferred Close unblocks any pending read, and its sends
// select on connCtx which the handler cancels on exit.
func (s *Server) handleConn(c net.Conn) {
	defer s.wg.Done()
	connCtx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	defer func() {
		c.Close()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		s.sm.connections.Add(-1)
	}()
	s.sm.connections.Add(1)

	reqs := make(chan readResult, 1)
	go func() {
		br := bufio.NewReader(c)
		for {
			req, err := ReadRequest(br)
			if err != nil {
				// Park the error (the buffer guarantees room when the
				// handler is idle), then cancel: if the handler is mid-query
				// this is a dropped peer and the query must die now.
				select {
				case reqs <- readResult{err: err}:
				default:
				}
				cancel()
				return
			}
			select {
			case reqs <- readResult{req: req}:
			case <-connCtx.Done():
				return
			}
		}
	}()

	// replyProtoErr answers a framing failure with a typed error frame
	// (best-effort — the peer may already be gone) before closing.
	replyProtoErr := func(err error) {
		if errors.Is(err, io.EOF) {
			return // clean close between requests
		}
		s.sm.protoErrors.Inc()
		_ = WriteError(c, CodeBadRequest, err.Error())
	}

	for {
		select {
		case <-s.draining:
			return
		case <-connCtx.Done():
			// The reader may have parked a protocol error just before
			// cancelling; drain it so corrupt frames still get their reply.
			select {
			case rr := <-reqs:
				if rr.err != nil {
					replyProtoErr(rr.err)
				}
			default:
			}
			return
		case rr := <-reqs:
			if rr.err != nil {
				// After a framing error the stream cannot be trusted.
				replyProtoErr(rr.err)
				return
			}
			if err := s.serveRequest(connCtx, c, rr.req); err != nil {
				return
			}
		}
	}
}

// serveRequest admits, executes and answers one request. A non-nil
// return closes the connection (response write failed or the
// connection's context died).
func (s *Server) serveRequest(connCtx context.Context, c net.Conn, req Request) error {
	start := time.Now()
	s.sm.requests.Inc()

	// The query deadline starts before admission: time spent queued
	// counts against the request's budget, so a saturated server sheds
	// stale work instead of executing it after the client gave up.
	d := s.cfg.DefaultTimeout
	if req.Deadline > 0 {
		d = req.Deadline
		if d > s.cfg.MaxTimeout {
			d = s.cfg.MaxTimeout
		}
	}
	qctx, qcancel := context.WithTimeout(connCtx, d)
	defer qcancel()

	if err := s.adm.acquire(qctx); err != nil {
		if errors.Is(err, ErrOverloaded) {
			s.sm.overloaded.Inc()
			return WriteError(c, CodeOverloaded, err.Error())
		}
		s.sm.errors.Inc()
		return WriteError(c, errCode(connCtx, err), err.Error())
	}
	defer s.adm.release()
	s.sm.inflight.Add(1)
	defer s.sm.inflight.Add(-1)

	switch req.Op {
	case OpQuery:
		rel, err := s.poly.QueryCtx(qctx, req.Text)
		if err != nil {
			s.sm.errors.Inc()
			return WriteError(c, errCode(connCtx, err), err.Error())
		}
		s.sm.latency.Observe(time.Since(start))
		return WriteRelation(c, rel)
	case OpExplain:
		report, rel, err := s.poly.ExplainAnalyze(qctx, req.Text)
		if err != nil {
			s.sm.errors.Inc()
			return WriteError(c, errCode(connCtx, err), fmt.Sprintf("%v\n%s", err, report))
		}
		s.sm.latency.Observe(time.Since(start))
		return WriteExplain(c, report, rel)
	case OpCast:
		res, err := s.poly.MigrateCtx(qctx, req.Object, core.EngineKind(req.Engine), core.CastOptions{})
		if err != nil {
			s.sm.errors.Inc()
			return WriteError(c, errCode(connCtx, err), err.Error())
		}
		s.sm.latency.Observe(time.Since(start))
		return WriteText(c, fmt.Sprintf("migrated %s: %s → %s (%d rows, %d bytes, %s)",
			res.Object, res.From, res.To, res.Rows, res.Bytes, res.Elapsed.Round(time.Microsecond)))
	case OpMetrics:
		return WriteText(c, s.poly.Metrics.String())
	case OpPing:
		return WriteText(c, "pong")
	default:
		// Unreachable: ReadRequest validated the opcode.
		return WriteError(c, CodeBadRequest, fmt.Sprintf("server: unknown opcode %d", req.Op))
	}
}

// errCode classifies a request failure for the wire. Deadline and
// severed-connection outcomes get their own codes so clients (and the
// load driver's error accounting) can tell them from query errors.
func errCode(connCtx context.Context, err error) byte {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return CodeDeadline
	case errors.Is(err, context.Canceled) && connCtx.Err() != nil:
		return CodeShutdown
	default:
		return CodeInternal
	}
}

// Shutdown drains the server: the listener closes, idle connections
// close, and in-flight requests run to completion. If ctx expires
// first, every remaining query context is canceled and connections are
// severed — the atomic-cast machinery guarantees the polystore is left
// consistent. Always returns with zero server goroutines remaining.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainOnce.Do(func() {
		close(s.draining)
		s.ln.Close()
	})
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.cancel()
		return nil
	case <-ctx.Done():
		s.cancel()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}
