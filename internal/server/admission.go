package server

import (
	"context"
	"errors"
)

// ErrOverloaded is returned when a request arrives with every execution
// slot busy and the bounded admission queue already full. The server
// maps it to a CodeOverloaded error frame: the client learns
// immediately instead of the server piling up goroutines — the
// graceful-degradation posture (reject, don't collapse) the robust-join
// literature argues for under overload.
var ErrOverloaded = errors.New("server: overloaded: admission queue full")

// admission is the server's admission controller: a counting semaphore
// of execution slots plus a bounded wait queue. A request either takes
// a slot, waits in the queue for one (still holding its connection
// goroutine — the only goroutine it ever holds), or is rejected with
// ErrOverloaded when the queue is full. Memory and goroutine usage are
// therefore bounded by slots+queue regardless of offered load.
type admission struct {
	// slots holds one token per executing request.
	slots chan struct{}
	// members holds one token per admitted-or-waiting request, so
	// len(members) - len(slots) is the current queue depth and the
	// channel capacity (slots+queue) is the hard admission bound.
	members chan struct{}
}

func newAdmission(maxConcurrent, maxQueue int) *admission {
	return &admission{
		slots:   make(chan struct{}, maxConcurrent),
		members: make(chan struct{}, maxConcurrent+maxQueue),
	}
}

// acquire admits one request: immediately, after a bounded queue wait,
// or not at all. ctx expiry while queued returns ctx's error (the
// request's deadline covers queue time — a request that waited its
// whole budget is not worth starting).
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.members <- struct{}{}:
	default:
		return ErrOverloaded
	}
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		<-a.members
		return ctx.Err()
	}
}

// release frees the slot and membership taken by acquire.
func (a *admission) release() {
	<-a.slots
	<-a.members
}

// executing reports how many requests hold execution slots.
func (a *admission) executing() int { return len(a.slots) }

// queued reports how many admitted requests are waiting for a slot.
func (a *admission) queued() int { return len(a.members) - len(a.slots) }
