package server

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrOverloaded is returned when a request arrives with every execution
// slot busy and the bounded admission queue already full. The server
// maps it to a CodeOverloaded error frame: the client learns
// immediately instead of the server piling up goroutines — the
// graceful-degradation posture (reject, don't collapse) the robust-join
// literature argues for under overload.
var ErrOverloaded = errors.New("server: overloaded: admission queue full")

// admission is the server's admission controller: a counting semaphore
// of execution slots plus a bounded wait queue. A request either takes
// a slot, waits in the queue for one (still holding its connection
// goroutine — the only goroutine it ever holds), or is rejected with
// ErrOverloaded when the queue is full. Memory and goroutine usage are
// therefore bounded by slots+queue regardless of offered load.
type admission struct {
	// slots holds one token per executing request.
	slots chan struct{}
	// members holds one token per admitted-or-waiting request; the
	// channel capacity (slots+queue) is the hard admission bound.
	members chan struct{}
	// nExecuting/nQueued mirror the channel occupancy for metrics.
	// Deriving depth from len(members)-len(slots) would read the two
	// channels non-atomically and transiently over-report during
	// release (which drains slots before members); these counters are
	// updated in an order that keeps every interleaved reading within
	// [0, cap]: queued increments before the wait begins and executing
	// increments before queued decrements, so neither ever dips
	// negative or exceeds its channel's capacity.
	nExecuting atomic.Int64
	nQueued    atomic.Int64
}

func newAdmission(maxConcurrent, maxQueue int) *admission {
	return &admission{
		slots:   make(chan struct{}, maxConcurrent),
		members: make(chan struct{}, maxConcurrent+maxQueue),
	}
}

// acquire admits one request: immediately, after a bounded queue wait,
// or not at all. ctx expiry while queued returns ctx's error (the
// request's deadline covers queue time — a request that waited its
// whole budget is not worth starting; likewise one that arrived
// already expired, which is checked before a free slot can win the
// select race).
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.members <- struct{}{}:
	default:
		return ErrOverloaded
	}
	if err := ctx.Err(); err != nil {
		<-a.members
		return err
	}
	a.nQueued.Add(1)
	select {
	case a.slots <- struct{}{}:
		a.nExecuting.Add(1)
		a.nQueued.Add(-1)
		return nil
	case <-ctx.Done():
		a.nQueued.Add(-1)
		<-a.members
		return ctx.Err()
	}
}

// release frees the slot and membership taken by acquire.
func (a *admission) release() {
	a.nExecuting.Add(-1)
	<-a.slots
	<-a.members
}

// executing reports how many requests hold execution slots.
func (a *admission) executing() int { return int(a.nExecuting.Load()) }

// queued reports how many admitted requests are waiting for a slot.
func (a *admission) queued() int { return int(a.nQueued.Load()) }
