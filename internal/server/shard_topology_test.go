package server_test

// Networked sharding suite: a coordinator polystore whose partitioned
// tables live on real BDWQ shard servers reached through
// client.Endpoint over loopback TCP. The equivalence arm replays the
// fedgen seed matrix against an unsharded baseline; the outage arm
// injects one dead and one stalled shard and demands the typed
// partial-failure error within a bounded time; the lifecycle arm
// drains, hard-stops, and client-disconnects a coordinator + 2 shards
// topology mid-scatter — every test bracketed by the goroutine-leak
// check.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/shard"
)

// ordered renders a relation order-sensitively: shard gather promises
// to restore the exact original row order, so Dump parity is checked
// row for row, not as a multiset.
func ordered(rel *engine.Relation) string {
	if rel == nil {
		return "<nil>"
	}
	rows := make([]string, 0, rel.Len())
	for _, tup := range rel.Tuples {
		parts := make([]string, len(tup))
		for i, v := range tup {
			parts[i] = v.String()
		}
		rows = append(rows, strings.Join(parts, "|"))
	}
	return strings.Join(rows, "\n")
}

// stalledBackend accepts TCP connections and never answers — the slow
// shard. Accepted connections are held so only Close releases them.
type stalledBackend struct {
	ln net.Listener

	mu    sync.Mutex
	conns []net.Conn
}

func newStalledBackend(t *testing.T) *stalledBackend {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	b := &stalledBackend{ln: ln}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			b.mu.Lock()
			b.conns = append(b.conns, c)
			b.mu.Unlock()
		}
	}()
	return b
}

func (b *stalledBackend) Addr() string { return b.ln.Addr().String() }

func (b *stalledBackend) Close() {
	_ = b.ln.Close()
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, c := range b.conns {
		_ = c.Close()
	}
	b.conns = nil
}

// shardFixture is the deterministic coordinator + N shards topology
// used by the outage and lifecycle tests: one sharded table "big"
// (64 rows, hash on k) plus a coordinator-local table "localt".
type shardFixture struct {
	coord    *core.Polystore
	coordSrv *server.Server
	shardSrv []*server.Server
	eps      []*client.Endpoint
}

func newShardFixture(t *testing.T, nShards int) *shardFixture {
	t.Helper()
	big := engine.NewRelation(engine.NewSchema(
		engine.Col("k", engine.TypeInt), engine.Col("v", engine.TypeString)))
	for i := 0; i < 64; i++ {
		if err := big.Append(engine.Tuple{
			engine.NewInt(int64(i)), engine.NewString(fmt.Sprintf("v%d", i%5)),
		}); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	spec := shard.HashSpec("k", nShards)
	parts, err := shard.Split(big, spec)
	if err != nil {
		t.Fatalf("split: %v", err)
	}

	f := &shardFixture{coord: core.New()}
	ifaces := make([]core.ShardEndpoint, 0, nShards)
	idx := make([]int, 0, nShards)
	for i, part := range parts {
		sp := core.New()
		if err := sp.Load(core.EnginePostgres, "big", part, core.CastOptions{}); err != nil {
			t.Fatalf("shard %d load: %v", i, err)
		}
		srv, err := server.Serve(sp, "127.0.0.1:0", server.Config{})
		if err != nil {
			t.Fatalf("shard %d serve: %v", i, err)
		}
		ep := client.NewEndpoint(srv.Addr().String())
		f.shardSrv = append(f.shardSrv, srv)
		f.eps = append(f.eps, ep)
		ifaces = append(ifaces, ep)
		idx = append(idx, i)
	}

	local := engine.NewRelation(engine.NewSchema(engine.Col("x", engine.TypeInt)))
	for i := 0; i < 4; i++ {
		_ = local.Append(engine.Tuple{engine.NewInt(int64(i))})
	}
	if err := f.coord.Load(core.EnginePostgres, "localt", local, core.CastOptions{}); err != nil {
		t.Fatalf("load localt: %v", err)
	}
	f.coord.SetShardEndpoints(ifaces...)
	if err := f.coord.RegisterSharded("big", spec, big.Schema, idx...); err != nil {
		t.Fatalf("register sharded: %v", err)
	}
	f.coordSrv, err = server.Serve(f.coord, "127.0.0.1:0", server.Config{})
	if err != nil {
		t.Fatalf("coordinator serve: %v", err)
	}
	return f
}

// closeShards tears down the endpoints and shard servers. Coordinator
// shutdown is the test's own business (drain and hard-stop exercise
// it directly).
func (f *shardFixture) closeShards(t *testing.T) {
	t.Helper()
	for _, ep := range f.eps {
		_ = ep.Close()
	}
	for _, s := range f.shardSrv {
		shutdown(t, s)
	}
}

const (
	scatterPushQuery = "RELATIONAL(SELECT COUNT(*) AS n FROM big)"
	scatterFallQuery = "RELATIONAL(SELECT k FROM big ORDER BY k)"
)

// rangeBounds derives nShards-1 strictly ascending split points from
// the data's own quantiles, or nil when there are too few distinct
// values to range-partition nShards ways.
func rangeBounds(rel *engine.Relation, col, nShards int) []engine.Value {
	var distinct []engine.Value
	vals := make([]engine.Value, 0, rel.Len())
	for _, tup := range rel.Tuples {
		if !tup[col].IsNull() {
			vals = append(vals, tup[col])
		}
	}
	sort.Slice(vals, func(i, j int) bool { return engine.Compare(vals[i], vals[j]) < 0 })
	for _, v := range vals {
		if len(distinct) == 0 || engine.Compare(distinct[len(distinct)-1], v) != 0 {
			distinct = append(distinct, v)
		}
	}
	if len(distinct) < nShards {
		return nil
	}
	bounds := make([]engine.Value, 0, nShards-1)
	for i := 1; i < nShards; i++ {
		bounds = append(bounds, distinct[i*len(distinct)/nShards])
	}
	return bounds
}

// fedShardSpec alternates hash and range partitioning across the
// federation's relational objects, keyed on the object's first column.
func fedShardSpec(o *core.FedObject, nth, nShards int) shard.Spec {
	key := o.Rel.Schema.Columns[0].Name
	if nth%2 == 1 {
		if b := rangeBounds(o.Rel, 0, nShards); b != nil {
			return shard.RangeSpec(key, b...)
		}
	}
	return shard.HashSpec(key, nShards)
}

// runShardedSeed builds one fedgen federation twice — unsharded
// baseline and a coordinator whose EnginePostgres objects are
// partitioned across nShards TCP shard servers — and replays the
// generated query batch through a real client against both.
func runShardedSeed(t *testing.T, seed int64, nShards int) {
	t.Helper()
	g := core.NewFedGen(seed)
	objs := g.Catalog()
	queries := g.Queries(objs, 6)

	baseline := core.New()
	for _, o := range objs {
		if err := o.Load(baseline); err != nil {
			t.Fatalf("baseline load %s: %v", o.Name, err)
		}
	}

	coord := core.New()
	shardPs := make([]*core.Polystore, nShards)
	for i := range shardPs {
		shardPs[i] = core.New()
	}
	type reg struct {
		name   string
		spec   shard.Spec
		schema engine.Schema
	}
	var regs []reg
	nth := 0
	for _, o := range objs {
		if o.Eng != core.EnginePostgres {
			if err := o.Load(coord); err != nil {
				t.Fatalf("coordinator load %s: %v", o.Name, err)
			}
			continue
		}
		spec := fedShardSpec(o, nth, nShards)
		nth++
		parts, err := shard.Split(o.Rel, spec)
		if err != nil {
			t.Fatalf("split %s: %v", o.Name, err)
		}
		for i, part := range parts {
			if err := shardPs[i].Load(core.EnginePostgres, o.Name, part, core.CastOptions{}); err != nil {
				t.Fatalf("shard %d load %s: %v", i, o.Name, err)
			}
		}
		regs = append(regs, reg{o.Name, spec, o.Rel.Schema})
	}
	if len(regs) == 0 {
		t.Fatal("fedgen catalog has no relational object — generator contract broken")
	}

	// Shard servers first, so their endpoints exist when the
	// coordinator's placements are registered against them.
	ifaces := make([]core.ShardEndpoint, 0, nShards)
	eps := make([]*client.Endpoint, 0, nShards)
	srvs := make([]*server.Server, 0, nShards)
	for i := 0; i < nShards; i++ {
		s, err := server.Serve(shardPs[i], "127.0.0.1:0", server.Config{})
		if err != nil {
			t.Fatalf("shard %d serve: %v", i, err)
		}
		ep := client.NewEndpoint(s.Addr().String())
		srvs = append(srvs, s)
		eps = append(eps, ep)
		ifaces = append(ifaces, ep)
	}
	coord.SetShardEndpoints(ifaces...)
	idx := make([]int, nShards)
	for i := range idx {
		idx[i] = i
	}
	for _, r := range regs {
		if err := coord.RegisterSharded(r.name, r.spec, r.schema, idx...); err != nil {
			t.Fatalf("register %s: %v", r.name, err)
		}
	}
	coordSrv, err := server.Serve(coord, "127.0.0.1:0", server.Config{})
	if err != nil {
		t.Fatalf("coordinator serve: %v", err)
	}
	c, err := client.Dial(coordSrv.Addr().String())
	if err != nil {
		t.Fatalf("dial coordinator: %v", err)
	}

	// A guaranteed scatter per seed, on top of whatever the generator
	// produced.
	queries = append(queries,
		fmt.Sprintf("RELATIONAL(SELECT COUNT(*) AS n FROM %s)", regs[0].name))
	for _, q := range queries {
		relA, errA := baseline.Query(q)
		relB, errB := c.Query(context.Background(), q)
		if (errA != nil) != (errB != nil) {
			t.Fatalf("error divergence on %q:\n  baseline: %v\n  sharded:  %v", q, errA, errB)
		}
		if errA != nil {
			continue
		}
		if canon(relA) != canon(relB) {
			t.Fatalf("result divergence on %q:\n  baseline:\n%s\n  sharded:\n%s",
				q, canon(relA), canon(relB))
		}
	}

	// Dump parity is order-sensitive: gather must reassemble the exact
	// original row order from the hidden position column.
	for _, r := range regs {
		want, err := baseline.Dump(r.name)
		if err != nil {
			t.Fatalf("baseline dump %s: %v", r.name, err)
		}
		got, err := coord.Dump(r.name)
		if err != nil {
			t.Fatalf("sharded dump %s: %v", r.name, err)
		}
		if ordered(want) != ordered(got) {
			t.Fatalf("dump of %s lost row order or rows:\n  want:\n%s\n  got:\n%s",
				r.name, ordered(want), ordered(got))
		}
	}

	_ = c.Close()
	shutdown(t, coordSrv)
	for _, ep := range eps {
		_ = ep.Close()
	}
	for _, s := range srvs {
		shutdown(t, s)
	}
}

// TestShardedEquivalenceTCP replays the fedgen seed matrix against
// coordinator + N real shard servers: sharded must be observationally
// identical to unsharded on every generated query.
func TestShardedEquivalenceTCP(t *testing.T) {
	check := leakCheck(t)
	seeds := 6
	if testing.Short() {
		seeds = 2
	}
	for s := 0; s < seeds; s++ {
		seed := int64(s)
		nShards := 2 + s%3
		t.Run(fmt.Sprintf("seed=%d,shards=%d", seed, nShards), func(t *testing.T) {
			runShardedSeed(t, seed, nShards)
		})
	}
	check()
}

// TestScatterDeadShard kills one shard server: both the pushdown and
// the gather shapes must fail with the typed ShardFailure naming the
// dead shard — quickly, with the coordinator still healthy after.
func TestScatterDeadShard(t *testing.T) {
	check := leakCheck(t)
	f := newShardFixture(t, 2)
	shutdown(t, f.shardSrv[1]) // shard 1 is now connection-refused

	for _, q := range []string{scatterPushQuery, scatterFallQuery} {
		start := time.Now()
		_, err := f.coord.Query(q)
		if d := time.Since(start); d > 5*time.Second {
			t.Fatalf("%q: dead shard stalled the scatter for %v", q, d)
		}
		sf, ok := core.IsShardFailure(err)
		if !ok {
			t.Fatalf("%q: err = %v, want *core.ShardFailure", q, err)
		}
		if sf.Object != "big" || sf.Shard != 1 {
			t.Fatalf("%q: failure blames object=%q shard=%d, want big/1", q, sf.Object, sf.Shard)
		}
	}
	// Non-sharded work is unaffected.
	if rel, err := f.coord.Query("RELATIONAL(SELECT COUNT(*) AS n FROM localt)"); err != nil || rel.Len() != 1 {
		t.Fatalf("local query after shard death: rel=%v err=%v", rel, err)
	}
	shutdown(t, f.coordSrv)
	_ = f.eps[0].Close()
	_ = f.eps[1].Close()
	shutdown(t, f.shardSrv[0])
	check()
}

// TestScatterSlowShard points one placement at a backend that accepts
// and never answers. A deadline must surface as a ShardFailure wrapping
// context.DeadlineExceeded within the deadline's order of magnitude; a
// cancellation must unblock promptly. Neither may leak a goroutine.
func TestScatterSlowShard(t *testing.T) {
	check := leakCheck(t)
	f := newShardFixture(t, 2)
	stalled := newStalledBackend(t)
	slowEp := client.NewEndpoint(stalled.Addr())
	f.coord.SetShardEndpoints(f.eps[0], slowEp)

	// Deadline: the mirrored socket deadline (+ grace) severs the read.
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	_, err := f.coord.QueryCtx(ctx, scatterPushQuery)
	cancel()
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("slow shard held the deadline query for %v", d)
	}
	sf, ok := core.IsShardFailure(err)
	if !ok {
		t.Fatalf("err = %v, want *core.ShardFailure", err)
	}
	if sf.Shard != 1 || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("failure = %v (shard %d), want shard 1 wrapping deadline exceeded", err, sf.Shard)
	}

	// Cancellation: the endpoint's context watcher severs the stalled
	// connection immediately — no socket-deadline wait involved.
	ctx, cancel = context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := f.coord.QueryCtx(ctx, scatterPushQuery)
		errCh <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the scatter block on the read
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled through the ShardFailure", err)
		}
		if _, ok := core.IsShardFailure(err); !ok {
			t.Fatalf("err = %v, want *core.ShardFailure", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("scatter still blocked 5s after cancellation")
	}

	// The healthy placement serves again once the endpoint is restored.
	f.coord.SetShardEndpoints(f.eps[0], f.eps[1])
	rel, err := f.coord.Query(scatterPushQuery)
	if err != nil || rel.Len() != 1 || rel.Tuples[0][0].AsInt() != 64 {
		t.Fatalf("recovery query: rel=%v err=%v, want one row of 64", rel, err)
	}

	_ = slowEp.Close()
	stalled.Close()
	shutdown(t, f.coordSrv)
	f.closeShards(t)
	check()
}

// TestMultiShardGracefulDrain drains a coordinator + 2 shards topology
// while a gather-shaped scatter is in flight (slowed at the staging
// failpoint): the in-flight query must complete with the right rows,
// new work must be refused, and everything unwinds to zero goroutines.
func TestMultiShardGracefulDrain(t *testing.T) {
	check := leakCheck(t)
	f := newShardFixture(t, 2)
	fault.Arm(fault.Spec{Point: core.FpCastLoad, Mode: fault.ModeDelay, Delay: 300 * time.Millisecond, Times: -1})
	defer fault.Reset()

	busy, err := client.Dial(f.coordSrv.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer func() { _ = busy.Close() }()

	type result struct {
		rel *engine.Relation
		err error
	}
	r := make(chan result, 1)
	go func() {
		rel, err := busy.Query(context.Background(), scatterFallQuery)
		r <- result{rel, err}
	}()
	waitFor(t, time.Second, func() bool { return f.coordSrv.AdmissionExecuting() == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := f.coordSrv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	res := <-r
	if res.err != nil || res.rel == nil || res.rel.Len() != 64 {
		t.Fatalf("in-flight scatter did not survive drain: rel=%v err=%v", res.rel, res.err)
	}
	for i, tup := range res.rel.Tuples {
		if tup[0].AsInt() != int64(i) {
			t.Fatalf("row %d = %v, want %d (ORDER BY lost)", i, tup[0], i)
		}
	}
	if _, err := client.Dial(f.coordSrv.Addr().String()); err == nil {
		t.Fatal("dial succeeded after drain")
	}
	fault.Reset()
	f.closeShards(t)
	check()
}

// TestMultiShardHardStop hard-stops the coordinator while a scatter is
// blocked on a stalled shard: Shutdown reports the missed deadline, the
// severed request unblocks the scatter (no orphaned endpoint read), and
// the whole topology unwinds leak-free.
func TestMultiShardHardStop(t *testing.T) {
	check := leakCheck(t)
	f := newShardFixture(t, 2)
	stalled := newStalledBackend(t)
	slowEp := client.NewEndpoint(stalled.Addr())
	f.coord.SetShardEndpoints(f.eps[0], slowEp)

	c, err := client.Dial(f.coordSrv.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer func() { _ = c.Close() }()
	r := make(chan error, 1)
	go func() { _, err := c.Query(context.Background(), scatterPushQuery); r <- err }()
	waitFor(t, time.Second, func() bool { return f.coordSrv.AdmissionExecuting() == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := f.coordSrv.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hard stop: got %v, want deadline exceeded", err)
	}
	if err := <-r; err == nil {
		t.Fatal("severed scatter returned a result")
	}

	_ = slowEp.Close()
	stalled.Close()
	f.closeShards(t)
	check()
}

// TestClientDisconnectMidScatter pins cancellation propagation across
// the whole chain: client vanishes → coordinator cancels the request
// context → the scatter's endpoint watcher severs the stalled shard
// connection → the execution slot frees. The coordinator must then
// serve both local and (with the endpoint restored) sharded queries.
func TestClientDisconnectMidScatter(t *testing.T) {
	check := leakCheck(t)
	f := newShardFixture(t, 2)
	stalled := newStalledBackend(t)
	slowEp := client.NewEndpoint(stalled.Addr())
	f.coord.SetShardEndpoints(f.eps[0], slowEp)

	c, err := client.Dial(f.coordSrv.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	done := make(chan error, 1)
	go func() { _, err := c.Query(context.Background(), scatterPushQuery); done <- err }()
	waitFor(t, time.Second, func() bool { return f.coordSrv.AdmissionExecuting() == 1 })
	_ = c.Close()
	if err := <-done; err == nil {
		t.Fatal("query on severed connection returned a result")
	}
	// The slot frees only if the scatter unblocked off the stalled read.
	waitFor(t, 5*time.Second, func() bool { return f.coordSrv.AdmissionExecuting() == 0 })

	c2, err := client.Dial(f.coordSrv.Addr().String())
	if err != nil {
		t.Fatalf("dial after disconnect: %v", err)
	}
	defer func() { _ = c2.Close() }()
	if rel, err := c2.Query(context.Background(), "RELATIONAL(SELECT COUNT(*) AS n FROM localt)"); err != nil || rel.Len() != 1 {
		t.Fatalf("local query after disconnect: rel=%v err=%v", rel, err)
	}
	f.coord.SetShardEndpoints(f.eps[0], f.eps[1])
	rel, err := c2.Query(context.Background(), scatterPushQuery)
	if err != nil || rel.Len() != 1 || rel.Tuples[0][0].AsInt() != 64 {
		t.Fatalf("scatter after recovery: rel=%v err=%v, want one row of 64", rel, err)
	}

	_ = slowEp.Close()
	stalled.Close()
	shutdown(t, f.coordSrv)
	f.closeShards(t)
	check()
}
