// Package server promotes the polystore from an in-process library to
// a long-lived TCP service: the network-native federation of the
// paper's deployment story. The wire format reuses the v2 "BDW2"
// framed codec for result streaming — one frame ≈ one mini-batch, so a
// result streams to the client exactly the way a CAST streams between
// engines — under a tiny framed request protocol (query / cast /
// explain / metrics / ping).
//
// This file is the protocol layer, shared by the server and the client
// in server/client. It is deliberately named binary_wire.go so the
// bigdawg-vet decodebounds analyzer audits every wire-supplied length
// here the same way it audits the engine codec: a hostile or truncated
// frame must produce a typed error, never a panic or an
// attacker-chosen allocation.
//
// Request frame ("BDWQ"):
//
//	u32 magic 0x51574442
//	u8  opcode (OpQuery, OpCast, OpExplain, OpMetrics, OpPing)
//	u32 deadline in milliseconds (0 = server default)
//	u32 payload length (≤ MaxRequestBytes)
//	payload:
//	  query/explain — the SCOPE query text
//	  cast          — u16 len + object name, u16 len + target engine
//	  metrics/ping  — empty
//
// Response frame:
//
//	u8 status, then:
//	  StatusRelation — a BDW2 relation stream (engine.ReadBinary)
//	  StatusText     — u32 len + UTF-8 bytes
//	  StatusError    — u8 code, u32 len + message bytes
//	  StatusExplain  — u32 len + report bytes, then a BDW2 stream
package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/engine"
)

// Request opcodes.
const (
	OpQuery   byte = 1 // payload: SCOPE query text → StatusRelation
	OpCast    byte = 2 // payload: object + engine → StatusText summary
	OpExplain byte = 3 // payload: SCOPE query text → StatusExplain
	OpMetrics byte = 4 // empty payload → StatusText (registry JSON)
	OpPing    byte = 5 // empty payload → StatusText "pong"
)

// Response statuses.
const (
	StatusRelation byte = 0
	StatusText     byte = 1
	StatusError    byte = 2
	StatusExplain  byte = 3
)

// Error codes carried by StatusError frames.
const (
	CodeInternal   byte = 1 // query/cast failed inside the polystore
	CodeBadRequest byte = 2 // malformed frame or unknown opcode
	CodeOverloaded byte = 3 // admission controller rejected the request
	CodeDeadline   byte = 4 // per-query deadline expired
	CodeShutdown   byte = 5 // server is draining or the query was severed
)

// Wire bounds. Anything beyond them is rejected before allocation.
const (
	reqMagic = 0x51574442 // "BDWQ" little-endian

	// MaxRequestBytes caps one request payload (a query text or cast
	// arguments — 1MiB is orders of magnitude beyond any real query).
	MaxRequestBytes = 1 << 20
	// maxTextBytes caps a text response the client will accept (metrics
	// snapshots, explain reports).
	maxTextBytes = 1 << 26
	// maxErrBytes caps an error message either side will accept.
	maxErrBytes = 1 << 16
	// maxCastArgBytes caps one cast argument (object or engine name).
	maxCastArgBytes = 1 << 12
	// maxDeadlineMillis caps the client-requested deadline field; the
	// server clamps further via Config.MaxTimeout.
	maxDeadlineMillis = 86_400_000 // 24h
)

// Request is one decoded client request.
type Request struct {
	Op       byte
	Deadline time.Duration // 0 = server default
	Text     string        // query text for OpQuery / OpExplain
	Object   string        // OpCast source object
	Engine   string        // OpCast target engine
}

// Response is one decoded server reply (client side).
type Response struct {
	Status byte
	Code   byte             // StatusError only
	Text   string           // StatusText / StatusError message / StatusExplain report
	Rel    *engine.Relation // StatusRelation / StatusExplain
}

// errProto marks protocol-level corruption: after one of these the
// stream framing is lost and the connection must close.
var errProto = errors.New("server: protocol error")

// protof wraps errProto with context, mirroring the engine codec's
// corruptf so failures name what was malformed.
func protof(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errProto, fmt.Sprintf(format, args...))
}

// IsProtocolError reports whether err is a framing-level failure after
// which the connection cannot be reused.
func IsProtocolError(err error) bool { return errors.Is(err, errProto) }

// ---------- request encoding ----------

// WriteRequest frames one request onto w.
func WriteRequest(w io.Writer, req Request) error {
	switch req.Op {
	case OpQuery, OpExplain, OpCast, OpMetrics, OpPing:
	default:
		return fmt.Errorf("server: unknown opcode %d", req.Op)
	}
	var payload []byte
	switch req.Op {
	case OpQuery, OpExplain:
		if len(req.Text) > MaxRequestBytes {
			return fmt.Errorf("server: query of %d bytes exceeds wire limit %d", len(req.Text), MaxRequestBytes)
		}
		payload = []byte(req.Text)
	case OpCast:
		if len(req.Object) > maxCastArgBytes || len(req.Engine) > maxCastArgBytes {
			return fmt.Errorf("server: cast argument exceeds wire limit %d", maxCastArgBytes)
		}
		payload = make([]byte, 0, 4+len(req.Object)+len(req.Engine))
		payload = binary.LittleEndian.AppendUint16(payload, uint16(len(req.Object)))
		payload = append(payload, req.Object...)
		payload = binary.LittleEndian.AppendUint16(payload, uint16(len(req.Engine)))
		payload = append(payload, req.Engine...)
	}
	millis := req.Deadline.Milliseconds()
	if millis < 0 {
		millis = 0
	}
	if millis > maxDeadlineMillis {
		millis = maxDeadlineMillis
	}
	head := make([]byte, 0, 13+len(payload))
	head = binary.LittleEndian.AppendUint32(head, reqMagic)
	head = append(head, req.Op)
	head = binary.LittleEndian.AppendUint32(head, uint32(millis))
	head = binary.LittleEndian.AppendUint32(head, uint32(len(payload)))
	head = append(head, payload...)
	_, err := w.Write(head)
	return err
}

// ReadRequest decodes one request frame. io.EOF before the first byte
// means the peer closed cleanly between requests; any other failure is
// a protocol error that must close the connection.
func ReadRequest(r io.Reader) (Request, error) {
	var hdr [13]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if errors.Is(err, io.EOF) {
			return Request{}, io.EOF
		}
		return Request{}, protof("truncated request header: %v", err)
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return Request{}, protof("truncated request header: %v", err)
	}
	if magic := binary.LittleEndian.Uint32(hdr[0:4]); magic != reqMagic {
		return Request{}, protof("bad request magic %#x", magic)
	}
	req := Request{Op: hdr[4]}
	switch req.Op {
	case OpQuery, OpExplain, OpCast, OpMetrics, OpPing:
	default:
		return Request{}, protof("unknown opcode %d", req.Op)
	}
	millis := binary.LittleEndian.Uint32(hdr[5:9])
	if millis > maxDeadlineMillis {
		return Request{}, protof("deadline %dms exceeds limit %dms", millis, maxDeadlineMillis)
	}
	req.Deadline = time.Duration(millis) * time.Millisecond
	plen := binary.LittleEndian.Uint32(hdr[9:13])
	if plen > MaxRequestBytes {
		return Request{}, protof("request payload %d bytes exceeds limit %d", plen, MaxRequestBytes)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Request{}, protof("truncated request payload: %v", err)
	}
	switch req.Op {
	case OpQuery, OpExplain:
		req.Text = string(payload)
	case OpCast:
		obj, rest, err := readArg(payload)
		if err != nil {
			return Request{}, err
		}
		eng, rest, err := readArg(rest)
		if err != nil {
			return Request{}, err
		}
		if len(rest) != 0 {
			return Request{}, protof("cast payload has %d trailing bytes", len(rest))
		}
		req.Object, req.Engine = obj, eng
	case OpMetrics, OpPing:
		if plen != 0 {
			return Request{}, protof("opcode %d carries no payload, got %d bytes", req.Op, plen)
		}
	}
	return req, nil
}

// readArg decodes one u16-length-prefixed cast argument.
func readArg(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, protof("truncated cast argument length")
	}
	n := binary.LittleEndian.Uint16(b[0:2])
	if int(n) > maxCastArgBytes {
		return "", nil, protof("cast argument of %d bytes exceeds limit %d", n, maxCastArgBytes)
	}
	if int(n) > len(b)-2 {
		return "", nil, protof("cast argument of %d bytes overruns payload of %d", n, len(b)-2)
	}
	return string(b[2 : 2+int(n)]), b[2+int(n):], nil
}

// ---------- response encoding ----------

// WriteRelation frames a successful query result: the status byte, then
// the relation in the BDW2 streaming codec.
func WriteRelation(w io.Writer, rel *engine.Relation) error {
	bw := bufio.NewWriter(w)
	if err := bw.WriteByte(StatusRelation); err != nil {
		return err
	}
	if err := rel.WriteBinary(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteText frames a text response.
func WriteText(w io.Writer, s string) error {
	if len(s) > maxTextBytes {
		return fmt.Errorf("server: text response of %d bytes exceeds wire limit %d", len(s), maxTextBytes)
	}
	buf := make([]byte, 0, 5+len(s))
	buf = append(buf, StatusText)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	buf = append(buf, s...)
	_, err := w.Write(buf)
	return err
}

// WriteError frames a typed error response.
func WriteError(w io.Writer, code byte, msg string) error {
	if len(msg) > maxErrBytes {
		msg = msg[:maxErrBytes]
	}
	buf := make([]byte, 0, 6+len(msg))
	buf = append(buf, StatusError, code)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(msg)))
	buf = append(buf, msg...)
	_, err := w.Write(buf)
	return err
}

// WriteExplain frames an EXPLAIN ANALYZE response: the report text,
// then the result relation.
func WriteExplain(w io.Writer, report string, rel *engine.Relation) error {
	if len(report) > maxTextBytes {
		return fmt.Errorf("server: explain report of %d bytes exceeds wire limit %d", len(report), maxTextBytes)
	}
	bw := bufio.NewWriter(w)
	head := make([]byte, 0, 5+len(report))
	head = append(head, StatusExplain)
	head = binary.LittleEndian.AppendUint32(head, uint32(len(report)))
	head = append(head, report...)
	if _, err := bw.Write(head); err != nil {
		return err
	}
	if err := rel.WriteBinary(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadResponse decodes one response frame (the client side). The
// reader must be positioned at a status byte; relation payloads are
// decoded by the engine codec, which enforces its own bounds.
func ReadResponse(r io.Reader) (Response, error) {
	var b [1]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return Response{}, protof("truncated response status: %v", err)
	}
	resp := Response{Status: b[0]}
	switch resp.Status {
	case StatusRelation:
		rel, err := engine.ReadBinary(r)
		if err != nil {
			return Response{}, protof("relation stream: %v", err)
		}
		resp.Rel = rel
		return resp, nil
	case StatusText:
		s, err := readLenText(r, maxTextBytes)
		if err != nil {
			return Response{}, err
		}
		resp.Text = s
		return resp, nil
	case StatusError:
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return Response{}, protof("truncated error code: %v", err)
		}
		resp.Code = b[0]
		s, err := readLenText(r, maxErrBytes)
		if err != nil {
			return Response{}, err
		}
		resp.Text = s
		return resp, nil
	case StatusExplain:
		s, err := readLenText(r, maxTextBytes)
		if err != nil {
			return Response{}, err
		}
		rel, err := engine.ReadBinary(r)
		if err != nil {
			return Response{}, protof("relation stream: %v", err)
		}
		resp.Text, resp.Rel = s, rel
		return resp, nil
	default:
		return Response{}, protof("unknown response status %d", resp.Status)
	}
}

// readLenText decodes a u32-length-prefixed string, capped at limit
// before any allocation.
func readLenText(r io.Reader, limit int) (string, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return "", protof("truncated text length: %v", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	// The constant cap bounds the allocation for every caller; the
	// caller's limit tightens it per frame type (error messages are far
	// smaller than explain reports).
	if n > maxTextBytes || int64(n) > int64(limit) {
		return "", protof("text of %d bytes exceeds limit %d", n, limit)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", protof("truncated text body: %v", err)
	}
	return string(buf), nil
}
