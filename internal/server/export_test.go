package server

// Test-only introspection into the admission controller, used by the
// integration suite to sequence overload scenarios deterministically.

// AdmissionExecuting reports how many requests hold execution slots.
func (s *Server) AdmissionExecuting() int { return s.adm.executing() }

// AdmissionQueued reports how many admitted requests wait for a slot.
func (s *Server) AdmissionQueued() int { return s.adm.queued() }
