package d4m

import (
	"testing"
	"testing/quick"

	"repro/internal/engine"
)

func graph(t *testing.T) *Assoc {
	t.Helper()
	a := New()
	// a→b→c→d, a→c
	a.Set("a", "b", 1)
	a.Set("b", "c", 1)
	a.Set("c", "d", 1)
	a.Set("a", "c", 1)
	return a
}

func TestSetGetSparseSemantics(t *testing.T) {
	a := New()
	a.Set("r1", "c1", 5)
	if a.Get("r1", "c1") != 5 || a.NNZ() != 1 {
		t.Errorf("basic set/get: %v", a)
	}
	if a.Get("r1", "missing") != 0 {
		t.Error("absent cell should be 0")
	}
	a.Set("r1", "c1", 0) // deletes
	if a.NNZ() != 0 || len(a.Rows()) != 0 {
		t.Errorf("zero should delete: nnz=%d", a.NNZ())
	}
}

func TestRowsColsSorted(t *testing.T) {
	a := New()
	a.Set("z", "9", 1)
	a.Set("a", "5", 1)
	a.Set("m", "7", 1)
	rows := a.Rows()
	if rows[0] != "a" || rows[2] != "z" {
		t.Errorf("rows: %v", rows)
	}
	cols := a.Cols()
	if cols[0] != "5" || cols[2] != "9" {
		t.Errorf("cols: %v", cols)
	}
}

func TestSubset(t *testing.T) {
	a := graph(t)
	sub := a.SubsetRows("a", "b")
	if sub.NNZ() != 3 { // a→b, a→c, b→c
		t.Errorf("SubsetRows nnz = %d", sub.NNZ())
	}
	sub = a.SubsetCols("c", "c")
	if sub.NNZ() != 2 { // a→c, b→c
		t.Errorf("SubsetCols nnz = %d", sub.NNZ())
	}
	if a.SubsetRows("", "").NNZ() != a.NNZ() {
		t.Error("open bounds should keep all")
	}
}

func TestFilter(t *testing.T) {
	a := New()
	a.Set("r", "c1", 1)
	a.Set("r", "c2", 5)
	f := a.Filter(func(v float64) bool { return v > 2 })
	if f.NNZ() != 1 || f.Get("r", "c2") != 5 {
		t.Errorf("filter: %v", f)
	}
}

func TestAddElementMul(t *testing.T) {
	a := New()
	a.Set("r", "x", 1)
	a.Set("r", "y", 2)
	b := New()
	b.Set("r", "y", 3)
	b.Set("r", "z", 4)
	sum := a.Add(b)
	if sum.Get("r", "x") != 1 || sum.Get("r", "y") != 5 || sum.Get("r", "z") != 4 {
		t.Errorf("add: %v", sum)
	}
	had := a.ElementMul(b)
	if had.NNZ() != 1 || had.Get("r", "y") != 6 {
		t.Errorf("hadamard: %v", had)
	}
}

func TestMultiplyPathCounting(t *testing.T) {
	a := graph(t)
	two := a.Multiply(a) // 2-hop paths
	// a→b→c and a→c→d and b→c→d.
	if two.Get("a", "c") != 1 || two.Get("a", "d") != 1 || two.Get("b", "d") != 1 {
		t.Errorf("2-hop: %v", two)
	}
	if two.Get("a", "b") != 0 {
		t.Error("no 2-hop a→b")
	}
}

func TestTransposeInvolution(t *testing.T) {
	a := graph(t)
	if !a.Transpose().Transpose().Equal(a) {
		t.Error("transpose twice should be identity")
	}
	if a.Transpose().Get("b", "a") != 1 {
		t.Error("transpose direction")
	}
}

func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(keys []uint8) bool {
		a := New()
		for i := 0; i+1 < len(keys); i += 2 {
			a.Set(string(rune('a'+keys[i]%26)), string(rune('a'+keys[i+1]%26)), float64(i+1))
		}
		return a.Transpose().Transpose().Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSumRowsDegree(t *testing.T) {
	a := graph(t)
	deg := a.SumRows()
	if deg.Get("a", "sum") != 2 || deg.Get("b", "sum") != 1 {
		t.Errorf("degrees: %v", deg)
	}
}

func TestRelationRoundTrip(t *testing.T) {
	a := graph(t)
	rel := a.ToRelation()
	if rel.Len() != 4 {
		t.Fatalf("triples: %d", rel.Len())
	}
	b, err := FromRelation(rel, "row", "col", "val")
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("relation round trip lost data")
	}
	if _, err := FromRelation(rel, "nope", "col", "val"); err == nil {
		t.Error("missing column should fail")
	}
}

func TestFromKVDump(t *testing.T) {
	rel := engine.NewRelation(engine.NewSchema(
		engine.Col("row", engine.TypeString), engine.Col("family", engine.TypeString),
		engine.Col("qualifier", engine.TypeString), engine.Col("ts", engine.TypeInt),
		engine.Col("value", engine.TypeString),
	))
	_ = rel.Append(engine.Tuple{engine.NewString("p1"), engine.NewString("note"), engine.NewString("d1"), engine.NewInt(1), engine.NewString("hello")})
	_ = rel.Append(engine.Tuple{engine.NewString("p1"), engine.NewString("meta"), engine.NewString("age"), engine.NewInt(1), engine.NewString("70")})
	a, err := FromKVDump(rel)
	if err != nil {
		t.Fatal(err)
	}
	if a.Get("p1", "note:d1") != 1 { // non-numeric → presence
		t.Errorf("presence cell: %v", a.Get("p1", "note:d1"))
	}
	if a.Get("p1", "meta:age") != 70 {
		t.Errorf("numeric cell: %v", a.Get("p1", "meta:age"))
	}
	bad := engine.NewRelation(engine.NewSchema(engine.Col("x", engine.TypeInt)))
	if _, err := FromKVDump(bad); err == nil {
		t.Error("bad shape should fail")
	}
}

func TestBFS(t *testing.T) {
	a := graph(t)
	dist := a.BFS("a", 10)
	want := map[string]int{"a": 0, "b": 1, "c": 1, "d": 2}
	for k, d := range want {
		if dist[k] != d {
			t.Errorf("dist[%s] = %d, want %d", k, dist[k], d)
		}
	}
	if len(dist) != len(want) {
		t.Errorf("dist: %v", dist)
	}
	// maxHops truncates.
	short := a.BFS("a", 1)
	if _, ok := short["d"]; ok {
		t.Error("maxHops=1 should not reach d")
	}
}

func TestMultiplyDistributesOverAdd(t *testing.T) {
	// Property: (A+B)·C == A·C + B·C on small random arrays.
	f := func(ka, kb, kc []uint8) bool {
		build := func(keys []uint8, scale float64) *Assoc {
			a := New()
			for i := 0; i+1 < len(keys) && i < 12; i += 2 {
				a.Set(string(rune('a'+keys[i]%4)), string(rune('a'+keys[i+1]%4)), scale*float64(i+1))
			}
			return a
		}
		a, b, c := build(ka, 1), build(kb, 2), build(kc, 3)
		left := a.Add(b).Multiply(c)
		right := a.Multiply(c).Add(b.Multiply(c))
		return left.Equal(right)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
