// Package d4m implements BigDAWG's D4M island: the associative-array
// data model (Kepner et al., ICASSP 2012) that unifies spreadsheets,
// matrices and graphs, with filtering, subsetting and linear-algebra
// operations (§2.1.1 of the paper). Associative arrays are immutable
// value types here: every operation returns a new array, which is how
// D4M's algebra composes.
//
// Shims to the underlying engines (Accumulo, SciDB, Postgres in the
// paper) are provided via conversions to and from engine.Relation and
// the kvstore triple layout.
package d4m

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/engine"
)

// Assoc is an associative array: a sparse map from (row key, column
// key) strings to float64 values. Zero values are not stored.
type Assoc struct {
	cells map[string]map[string]float64 // row -> col -> value
}

// New returns an empty associative array.
func New() *Assoc { return &Assoc{cells: map[string]map[string]float64{}} }

// Set stores a value; setting zero deletes the cell (D4M's sparse
// semantics).
func (a *Assoc) Set(row, col string, v float64) {
	if v == 0 {
		if m, ok := a.cells[row]; ok {
			delete(m, col)
			if len(m) == 0 {
				delete(a.cells, row)
			}
		}
		return
	}
	m := a.cells[row]
	if m == nil {
		m = map[string]float64{}
		a.cells[row] = m
	}
	m[col] = v
}

// Get reads a cell (0 for absent, like sparse matrices).
func (a *Assoc) Get(row, col string) float64 { return a.cells[row][col] }

// NNZ returns the number of stored (non-zero) cells.
func (a *Assoc) NNZ() int {
	n := 0
	for _, m := range a.cells {
		n += len(m)
	}
	return n
}

// Rows returns the sorted row keys.
func (a *Assoc) Rows() []string {
	out := make([]string, 0, len(a.cells))
	for r := range a.cells {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Cols returns the sorted distinct column keys.
func (a *Assoc) Cols() []string {
	set := map[string]bool{}
	for _, m := range a.cells {
		for c := range m {
			set[c] = true
		}
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Clone deep-copies the array.
func (a *Assoc) Clone() *Assoc {
	out := New()
	for r, m := range a.cells {
		nm := make(map[string]float64, len(m))
		for c, v := range m {
			nm[c] = v
		}
		out.cells[r] = nm
	}
	return out
}

// SubsetRows keeps rows with keys in [lo, hi] (inclusive, lexicographic;
// empty bounds are open) — D4M's row subsetting A(lo:hi, :).
func (a *Assoc) SubsetRows(lo, hi string) *Assoc {
	out := New()
	for r, m := range a.cells {
		if lo != "" && r < lo {
			continue
		}
		if hi != "" && r > hi {
			continue
		}
		for c, v := range m {
			out.Set(r, c, v)
		}
	}
	return out
}

// SubsetCols keeps columns with keys in [lo, hi] — A(:, lo:hi).
func (a *Assoc) SubsetCols(lo, hi string) *Assoc {
	out := New()
	for r, m := range a.cells {
		for c, v := range m {
			if lo != "" && c < lo {
				continue
			}
			if hi != "" && c > hi {
				continue
			}
			out.Set(r, c, v)
		}
	}
	return out
}

// Filter keeps cells whose value satisfies pred — A > 0.5 in D4M.
func (a *Assoc) Filter(pred func(v float64) bool) *Assoc {
	out := New()
	for r, m := range a.cells {
		for c, v := range m {
			if pred(v) {
				out.Set(r, c, v)
			}
		}
	}
	return out
}

// Add returns the element-wise sum a + b (union of supports).
func (a *Assoc) Add(b *Assoc) *Assoc {
	out := a.Clone()
	for r, m := range b.cells {
		for c, v := range m {
			out.Set(r, c, out.Get(r, c)+v)
		}
	}
	return out
}

// ElementMul returns the element-wise (Hadamard) product, whose support
// is the intersection — D4M's A .* B, used for graph edge intersection.
func (a *Assoc) ElementMul(b *Assoc) *Assoc {
	out := New()
	for r, m := range a.cells {
		bm, ok := b.cells[r]
		if !ok {
			continue
		}
		for c, v := range m {
			if bv, ok := bm[c]; ok {
				out.Set(r, c, v*bv)
			}
		}
	}
	return out
}

// Multiply returns the associative-array matrix product: out[r,c] =
// Σ_k a[r,k]·b[k,c], matching keys by string equality. In graph terms
// this is path counting.
func (a *Assoc) Multiply(b *Assoc) *Assoc {
	out := New()
	for r, am := range a.cells {
		for k, av := range am {
			bm, ok := b.cells[k]
			if !ok {
				continue
			}
			for c, bv := range bm {
				out.Set(r, c, out.Get(r, c)+av*bv)
			}
		}
	}
	return out
}

// Transpose swaps rows and columns.
func (a *Assoc) Transpose() *Assoc {
	out := New()
	for r, m := range a.cells {
		for c, v := range m {
			out.Set(c, r, v)
		}
	}
	return out
}

// SumRows collapses each row to a single "sum" column — degree vector
// of a graph adjacency array.
func (a *Assoc) SumRows() *Assoc {
	out := New()
	for r, m := range a.cells {
		s := 0.0
		for _, v := range m {
			s += v
		}
		out.Set(r, "sum", s)
	}
	return out
}

// Equal reports whether two arrays have identical support and values.
func (a *Assoc) Equal(b *Assoc) bool {
	if a.NNZ() != b.NNZ() {
		return false
	}
	for r, m := range a.cells {
		for c, v := range m {
			if b.Get(r, c) != v {
				return false
			}
		}
	}
	return true
}

// ToRelation flattens to (row, col, val) triples sorted by row then col
// — the shim out of the D4M island.
func (a *Assoc) ToRelation() *engine.Relation {
	rel := engine.NewRelation(engine.NewSchema(
		engine.Col("row", engine.TypeString),
		engine.Col("col", engine.TypeString),
		engine.Col("val", engine.TypeFloat),
	))
	for _, r := range a.Rows() {
		m := a.cells[r]
		cols := make([]string, 0, len(m))
		for c := range m {
			cols = append(cols, c)
		}
		sort.Strings(cols)
		for _, c := range cols {
			_ = rel.Append(engine.Tuple{engine.NewString(r), engine.NewString(c), engine.NewFloat(m[c])})
		}
	}
	return rel
}

// FromRelation builds an associative array from three named columns of
// any relation — the shim into the D4M island from Postgres/SciDB.
func FromRelation(rel *engine.Relation, rowCol, colCol, valCol string) (*Assoc, error) {
	ri, err := rel.Schema.MustIndex(rowCol)
	if err != nil {
		return nil, err
	}
	ci, err := rel.Schema.MustIndex(colCol)
	if err != nil {
		return nil, err
	}
	vi, err := rel.Schema.MustIndex(valCol)
	if err != nil {
		return nil, err
	}
	a := New()
	for _, t := range rel.Tuples {
		a.Set(t[ri].String(), t[ci].String(), t[vi].AsFloat())
	}
	return a, nil
}

// FromKVDump builds an associative array from a kvstore Dump relation
// (row, family, qualifier, ts, value): the column key is
// "family:qualifier" and values parse as floats when possible, else
// count occurrences — D4M's standard Accumulo adjacency-array mapping.
func FromKVDump(rel *engine.Relation) (*Assoc, error) {
	if len(rel.Schema.Columns) != 5 {
		return nil, fmt.Errorf("d4m: expected kvstore dump shape, got %v", rel.Schema)
	}
	a := New()
	for _, t := range rel.Tuples {
		col := t[1].String() + ":" + t[2].String()
		v := t[4].AsFloat()
		if v == 0 || v != v { // non-numeric value → presence indicator
			v = 1
		}
		a.Set(t[0].String(), col, v)
	}
	return a, nil
}

// BFS performs breadth-first reachability from start over the adjacency
// array (edges row→col), returning hop counts — the canonical D4M graph
// kernel built from Multiply.
func (a *Assoc) BFS(start string, maxHops int) map[string]int {
	dist := map[string]int{start: 0}
	frontier := New()
	frontier.Set("q", start, 1)
	for hop := 1; hop <= maxHops; hop++ {
		next := frontier.Multiply(a)
		frontier = New()
		advanced := false
		for _, m := range next.cells {
			for c := range m {
				if _, seen := dist[c]; !seen {
					dist[c] = hop
					frontier.Set("q", c, 1)
					advanced = true
				}
			}
		}
		if !advanced {
			break
		}
	}
	return dist
}

// String renders a small array for debugging.
func (a *Assoc) String() string {
	var sb strings.Builder
	for _, r := range a.Rows() {
		for _, c := range a.Cols() {
			if v := a.Get(r, c); v != 0 {
				fmt.Fprintf(&sb, "(%s,%s)=%g ", r, c, v)
			}
		}
	}
	return strings.TrimSpace(sb.String())
}
