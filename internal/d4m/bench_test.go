package d4m

import (
	"fmt"
	"testing"
)

// benchGraph builds a ring + chords adjacency array of n nodes.
func benchGraph(n int) *Assoc {
	a := New()
	for i := 0; i < n; i++ {
		from := fmt.Sprintf("n%05d", i)
		a.Set(from, fmt.Sprintf("n%05d", (i+1)%n), 1)
		a.Set(from, fmt.Sprintf("n%05d", (i+37)%n), 1)
	}
	return a
}

func BenchmarkMultiply(b *testing.B) {
	a := benchGraph(1_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Multiply(a)
	}
}

func BenchmarkBFS(b *testing.B) {
	a := benchGraph(2_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.BFS("n00000", 20)
	}
}

func BenchmarkTranspose(b *testing.B) {
	a := benchGraph(2_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Transpose()
	}
}

func BenchmarkSubsetRows(b *testing.B) {
	a := benchGraph(5_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.SubsetRows("n01000", "n02000")
	}
}
