package searchlight

import (
	"math"
	"testing"
	"testing/quick"
)

func rampSignal(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Sin(2*math.Pi*float64(i)/50) * 0.5
	}
	// Plant a flat region of value ~0.5 at [200, 240).
	for i := 200; i < 240 && i < n; i++ {
		out[i] = 0.5
	}
	return out
}

func TestBuildSynopsisValidation(t *testing.T) {
	if _, err := BuildSynopsis(nil, 8); err == nil {
		t.Error("empty signal should fail")
	}
	if _, err := BuildSynopsis([]float64{1}, 0); err == nil {
		t.Error("zero block size should fail")
	}
}

func TestSearchFindsPlantedRegion(t *testing.T) {
	sig := rampSignal(1000)
	syn, err := BuildSynopsis(sig, 16)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{
		WindowLen: 32,
		Constraints: []Constraint{
			{Agg: "avg", Lo: 0.45, Hi: 0.55},
			{Agg: "min", Lo: 0.4, Hi: 1},
		},
	}
	matches, stats, err := Search(sig, syn, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("planted region not found")
	}
	for _, m := range matches {
		if m.Start < 190 || m.Start > 210 {
			t.Errorf("unexpected match at %d", m.Start)
		}
	}
	if stats.PrunedInfeasible == 0 {
		t.Error("synopsis should prune most windows")
	}
}

func TestSearchMatchesExhaustive(t *testing.T) {
	sig := rampSignal(2000)
	syn, _ := BuildSynopsis(sig, 8)
	queries := []Query{
		{WindowLen: 25, Constraints: []Constraint{{Agg: "avg", Lo: 0.4, Hi: 0.6}}},
		{WindowLen: 50, Constraints: []Constraint{{Agg: "max", Lo: -1, Hi: 0.45}}},
		{WindowLen: 10, Constraints: []Constraint{{Agg: "sum", Lo: 4, Hi: 6}}},
		{WindowLen: 40, Constraints: []Constraint{
			{Agg: "avg", Lo: 0.45, Hi: 0.55}, {Agg: "min", Lo: 0.3, Hi: 1}}},
	}
	for qi, q := range queries {
		fast, fastStats, err := Search(sig, syn, q)
		if err != nil {
			t.Fatal(err)
		}
		slow, slowStats, err := SearchExhaustive(sig, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(fast) != len(slow) {
			t.Fatalf("query %d: %d matches vs %d exhaustive", qi, len(fast), len(slow))
		}
		for i := range fast {
			if fast[i].Start != slow[i].Start {
				t.Errorf("query %d match %d: start %d vs %d", qi, i, fast[i].Start, slow[i].Start)
			}
		}
		if fastStats.RawPointsRead >= slowStats.RawPointsRead {
			t.Errorf("query %d: synopsis read %d raw points, exhaustive %d",
				qi, fastStats.RawPointsRead, slowStats.RawPointsRead)
		}
	}
}

func TestSearchValidation(t *testing.T) {
	sig := rampSignal(100)
	syn, _ := BuildSynopsis(sig, 8)
	if _, _, err := Search(sig, syn, Query{WindowLen: 0, Constraints: []Constraint{{Agg: "avg"}}}); err == nil {
		t.Error("zero window should fail")
	}
	if _, _, err := Search(sig, syn, Query{WindowLen: 1000, Constraints: []Constraint{{Agg: "avg"}}}); err == nil {
		t.Error("oversized window should fail")
	}
	if _, _, err := Search(sig, syn, Query{WindowLen: 10}); err == nil {
		t.Error("no constraints should fail")
	}
	if _, _, err := Search(sig, syn, Query{WindowLen: 10, Constraints: []Constraint{{Agg: "median", Lo: 0, Hi: 1}}}); err == nil {
		t.Error("unknown aggregate should fail")
	}
}

func TestSynopsisBoundsAreSound(t *testing.T) {
	// Property: for random signals and windows, the synopsis bounds
	// always contain the exact aggregates (soundness of speculation).
	f := func(raw []float64, startRaw, lenRaw uint8) bool {
		if len(raw) < 8 {
			return true
		}
		sig := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
				return true
			}
			sig = append(sig, v)
		}
		syn, err := BuildSynopsis(sig, 4)
		if err != nil {
			return false
		}
		wlen := 2 + int(lenRaw)%6
		if wlen > len(sig) {
			return true
		}
		start := int(startRaw) % (len(sig) - wlen + 1)
		end := start + wlen
		wb := syn.windowBounds(start, end)
		m := exactAggregates(sig, start, end)
		const eps = 1e-9
		return m.Min >= wb.minLo-eps && m.Min <= wb.minHi+eps &&
			m.Max >= wb.maxLo-eps && m.Max <= wb.maxHi+eps &&
			m.Sum >= wb.sumLo-eps-1e-9*math.Abs(wb.sumLo) &&
			m.Sum <= wb.sumHi+eps+1e-9*math.Abs(wb.sumHi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCoarseSynopsisStillCorrect(t *testing.T) {
	// Ablation: a coarser synopsis prunes less but never changes results.
	sig := rampSignal(1500)
	q := Query{WindowLen: 30, Constraints: []Constraint{{Agg: "avg", Lo: 0.45, Hi: 0.55}}}
	fine, _ := BuildSynopsis(sig, 4)
	coarse, _ := BuildSynopsis(sig, 64)
	mf, sf, err := Search(sig, fine, q)
	if err != nil {
		t.Fatal(err)
	}
	mc, sc, err := Search(sig, coarse, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(mf) != len(mc) {
		t.Fatalf("resolution changed results: %d vs %d", len(mf), len(mc))
	}
	if sf.RawPointsRead > sc.RawPointsRead {
		t.Errorf("finer synopsis should validate no more raw data: %d vs %d",
			sf.RawPointsRead, sc.RawPointsRead)
	}
}
