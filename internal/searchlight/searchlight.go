// Package searchlight implements BigDAWG's second data-exploration
// system (§2.2 of the paper): Searchlight integrates constraint-
// programming search with DBMS-scale data by first *speculating* over
// compact in-memory synopsis structures and then *validating* the
// candidate results on the actual data.
//
// The query shape is the canonical Searchlight task: find all windows
// of a given length in a signal whose aggregates satisfy interval
// constraints (e.g. "intervals of ~1s where the average amplitude is
// in [0.4, 0.6] and the maximum never exceeds 0.9"). The synopsis is a
// hierarchy-free block grid storing (min, max, sum, count) per block;
// block bounds prove most windows infeasible (or trivially feasible)
// without touching the raw signal.
package searchlight

import (
	"fmt"
	"math"
)

// Constraint restricts one window aggregate to [Lo, Hi].
type Constraint struct {
	Agg    string // "avg", "min", "max", "sum"
	Lo, Hi float64
}

// Query is a window-search task.
type Query struct {
	WindowLen   int
	Constraints []Constraint
}

// Match is one satisfying window [Start, Start+WindowLen).
type Match struct {
	Start int
	Avg   float64
	Min   float64
	Max   float64
	Sum   float64
}

// Stats separates synopsis work from validation work — the ratio is
// Searchlight's whole point.
type Stats struct {
	WindowsTotal     int
	PrunedInfeasible int   // rejected by synopsis bounds alone
	AcceptedByBounds int   // accepted by synopsis bounds alone
	Validated        int   // required touching raw data
	RawPointsRead    int64 // data points read during validation
}

// Synopsis is the in-memory speculation structure.
type Synopsis struct {
	blockSize int
	n         int
	min, max  []float64
	sum       []float64
	count     []int
}

// BuildSynopsis summarises the signal into blocks of blockSize points.
func BuildSynopsis(signal []float64, blockSize int) (*Synopsis, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("searchlight: block size must be positive")
	}
	if len(signal) == 0 {
		return nil, fmt.Errorf("searchlight: empty signal")
	}
	nb := (len(signal) + blockSize - 1) / blockSize
	s := &Synopsis{
		blockSize: blockSize, n: len(signal),
		min: make([]float64, nb), max: make([]float64, nb),
		sum: make([]float64, nb), count: make([]int, nb),
	}
	for b := 0; b < nb; b++ {
		s.min[b] = math.Inf(1)
		s.max[b] = math.Inf(-1)
	}
	for i, v := range signal {
		b := i / blockSize
		if v < s.min[b] {
			s.min[b] = v
		}
		if v > s.max[b] {
			s.max[b] = v
		}
		s.sum[b] += v
		s.count[b]++
	}
	return s, nil
}

// bounds holds provable intervals for a window's aggregates.
type bounds struct {
	minLo, minHi float64 // window min ∈ [minLo, minHi]
	maxLo, maxHi float64 // window max ∈ [maxLo, maxHi]
	sumLo, sumHi float64 // window sum ∈ [sumLo, sumHi]
}

// windowBounds derives provable bounds for the window [start, end)
// from the blocks it overlaps. Fully covered blocks sharpen both sides:
// a block inside the window forces window max ≥ block max and window
// min ≤ block min.
func (s *Synopsis) windowBounds(start, end int) bounds {
	b0 := start / s.blockSize
	b1 := (end - 1) / s.blockSize
	b := bounds{
		minLo: math.Inf(1), minHi: math.Inf(1),
		maxLo: math.Inf(-1), maxHi: math.Inf(-1),
	}
	for blk := b0; blk <= b1; blk++ {
		bStart, bEnd := blk*s.blockSize, (blk+1)*s.blockSize
		if bEnd > s.n {
			bEnd = s.n
		}
		covered := start <= bStart && end >= bEnd
		if s.min[blk] < b.minLo {
			b.minLo = s.min[blk]
		}
		if s.max[blk] > b.maxHi {
			b.maxHi = s.max[blk]
		}
		if covered {
			if s.min[blk] < b.minHi {
				b.minHi = s.min[blk] // window min ≤ this block's min
			}
			if s.max[blk] > b.maxLo {
				b.maxLo = s.max[blk] // window max ≥ this block's max
			}
			b.sumLo += s.sum[blk]
			b.sumHi += s.sum[blk]
		} else {
			overlap := float64(minInt(end, bEnd) - maxInt(start, bStart))
			b.sumLo += overlap * s.min[blk]
			b.sumHi += overlap * s.max[blk]
		}
	}
	// With no fully covered block, fall back to the loose sides.
	if math.IsInf(b.minHi, 1) {
		b.minHi = b.maxHi
	}
	if math.IsInf(b.maxLo, -1) {
		b.maxLo = b.minLo
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Search runs the CP search over the synopsis, validating undecided
// candidates on the raw signal.
func Search(signal []float64, syn *Synopsis, q Query) ([]Match, Stats, error) {
	var stats Stats
	if q.WindowLen <= 0 || q.WindowLen > len(signal) {
		return nil, stats, fmt.Errorf("searchlight: window length %d out of range", q.WindowLen)
	}
	if len(q.Constraints) == 0 {
		return nil, stats, fmt.Errorf("searchlight: no constraints")
	}
	for _, c := range q.Constraints {
		switch c.Agg {
		case "avg", "min", "max", "sum":
		default:
			return nil, stats, fmt.Errorf("searchlight: unknown aggregate %q", c.Agg)
		}
	}
	var out []Match
	wlen := float64(q.WindowLen)
	for start := 0; start+q.WindowLen <= len(signal); start++ {
		stats.WindowsTotal++
		end := start + q.WindowLen
		wb := syn.windowBounds(start, end)

		feasible := true   // could satisfy all constraints
		guaranteed := true // provably satisfies all constraints
		for _, c := range q.Constraints {
			var lo, hi float64 // provable interval for the aggregate
			switch c.Agg {
			case "min":
				lo, hi = wb.minLo, wb.minHi
			case "max":
				lo, hi = wb.maxLo, wb.maxHi
			case "sum":
				lo, hi = wb.sumLo, wb.sumHi
			case "avg":
				lo, hi = wb.sumLo/wlen, wb.sumHi/wlen
			}
			if hi < c.Lo || lo > c.Hi {
				feasible = false
				break
			}
			if !(lo >= c.Lo && hi <= c.Hi) {
				guaranteed = false
			}
		}
		if !feasible {
			stats.PrunedInfeasible++
			continue
		}
		if guaranteed {
			stats.AcceptedByBounds++
			m := exactAggregates(signal, start, end)
			out = append(out, m)
			continue
		}
		// Undecided: validate on the actual data.
		stats.Validated++
		stats.RawPointsRead += int64(q.WindowLen)
		m := exactAggregates(signal, start, end)
		if satisfies(m, q.Constraints) {
			out = append(out, m)
		}
	}
	return out, stats, nil
}

// SearchExhaustive is the no-synopsis baseline: every window validates
// against raw data.
func SearchExhaustive(signal []float64, q Query) ([]Match, Stats, error) {
	var stats Stats
	if q.WindowLen <= 0 || q.WindowLen > len(signal) {
		return nil, stats, fmt.Errorf("searchlight: window length %d out of range", q.WindowLen)
	}
	var out []Match
	for start := 0; start+q.WindowLen <= len(signal); start++ {
		stats.WindowsTotal++
		stats.Validated++
		stats.RawPointsRead += int64(q.WindowLen)
		m := exactAggregates(signal, start, start+q.WindowLen)
		if satisfies(m, q.Constraints) {
			out = append(out, m)
		}
	}
	return out, stats, nil
}

func exactAggregates(signal []float64, start, end int) Match {
	m := Match{Start: start, Min: math.Inf(1), Max: math.Inf(-1)}
	for _, v := range signal[start:end] {
		m.Sum += v
		if v < m.Min {
			m.Min = v
		}
		if v > m.Max {
			m.Max = v
		}
	}
	m.Avg = m.Sum / float64(end-start)
	return m
}

func satisfies(m Match, cs []Constraint) bool {
	for _, c := range cs {
		var v float64
		switch c.Agg {
		case "avg":
			v = m.Avg
		case "min":
			v = m.Min
		case "max":
			v = m.Max
		case "sum":
			v = m.Sum
		}
		if v < c.Lo || v > c.Hi {
			return false
		}
	}
	return true
}
