package tiledb

import (
	"math"
	"testing"
	"testing/quick"
)

func mk2D(t *testing.T, rows, cols int64, density float64) *Array {
	t.Helper()
	a, err := NewArray("m", Box{Lo: []int64{0, 0}, Hi: []int64{rows - 1, cols - 1}}, density)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewArrayValidation(t *testing.T) {
	if _, err := NewArray("x", Box{}, 0.5); err == nil {
		t.Error("empty domain should fail")
	}
	if _, err := NewArray("x", Box{Lo: []int64{5}, Hi: []int64{2}}, 0.5); err == nil {
		t.Error("inverted domain should fail")
	}
	if _, err := NewArray("x", Box{Lo: []int64{0}, Hi: []int64{2, 3}}, 0.5); err == nil {
		t.Error("arity mismatch should fail")
	}
}

func TestWriteReadDense(t *testing.T) {
	a := mk2D(t, 4, 4, 0.5)
	var cells []Cell
	for r := int64(0); r < 4; r++ {
		for c := int64(0); c < 4; c++ {
			cells = append(cells, Cell{Coords: []int64{r, c}, Value: float64(r*4 + c)})
		}
	}
	if err := a.Write(cells); err != nil {
		t.Fatal(err)
	}
	// Fully populated box → dense tile.
	a.ForEachTile(func(tl *Tile) {
		if tl.Kind != DenseTile {
			t.Error("full write should pack a dense tile")
		}
	})
	got, err := a.Read(Box{Lo: []int64{1, 1}, Hi: []int64{2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("subarray read: %d cells", len(got))
	}
	v, ok, err := a.Get([]int64{2, 3})
	if err != nil || !ok || v != 11 {
		t.Errorf("Get = %v %v %v", v, ok, err)
	}
}

func TestWriteSparseTileChoice(t *testing.T) {
	a := mk2D(t, 1000, 1000, 0.5)
	cells := []Cell{
		{Coords: []int64{0, 0}, Value: 1},
		{Coords: []int64{999, 999}, Value: 2},
	}
	if err := a.Write(cells); err != nil {
		t.Fatal(err)
	}
	a.ForEachTile(func(tl *Tile) {
		if tl.Kind != SparseTile {
			t.Error("sparse write should pack a sparse tile")
		}
		if tl.Count() != 2 {
			t.Errorf("tile count = %d", tl.Count())
		}
	})
}

func TestWriteValidation(t *testing.T) {
	a := mk2D(t, 4, 4, 0.5)
	if err := a.Write(nil); err == nil {
		t.Error("empty write should fail")
	}
	if err := a.Write([]Cell{{Coords: []int64{9, 9}, Value: 1}}); err == nil {
		t.Error("out-of-domain write should fail")
	}
	if err := a.Write([]Cell{{Coords: []int64{1}, Value: 1}}); err == nil {
		t.Error("arity mismatch should fail")
	}
}

func TestFragmentShadowing(t *testing.T) {
	a := mk2D(t, 4, 4, 0.9)
	_ = a.Write([]Cell{{Coords: []int64{1, 1}, Value: 10}})
	_ = a.Write([]Cell{{Coords: []int64{1, 1}, Value: 20}})
	if a.Fragments() != 2 {
		t.Fatalf("fragments = %d", a.Fragments())
	}
	v, ok, _ := a.Get([]int64{1, 1})
	if !ok || v != 20 {
		t.Errorf("latest fragment should win: %v %v", v, ok)
	}
	cells, _ := a.Read(a.Domain)
	if len(cells) != 1 || cells[0].Value != 20 {
		t.Errorf("read after shadowing: %v", cells)
	}
}

func TestConsolidate(t *testing.T) {
	a := mk2D(t, 8, 8, 0.9)
	for i := int64(0); i < 8; i++ {
		_ = a.Write([]Cell{{Coords: []int64{i, i}, Value: float64(i)}})
	}
	if a.Fragments() != 8 {
		t.Fatalf("fragments = %d", a.Fragments())
	}
	before, _ := a.Read(a.Domain)
	if err := a.Consolidate(); err != nil {
		t.Fatal(err)
	}
	if a.Fragments() != 1 {
		t.Errorf("fragments after consolidate = %d", a.Fragments())
	}
	after, _ := a.Read(a.Domain)
	if len(before) != len(after) {
		t.Fatalf("consolidation changed cardinality: %d vs %d", len(before), len(after))
	}
	for i := range before {
		if before[i].Value != after[i].Value {
			t.Errorf("cell %d changed: %v vs %v", i, before[i], after[i])
		}
	}
	if a.Stats().Consolidations != 1 {
		t.Errorf("stats consolidations = %d", a.Stats().Consolidations)
	}
}

func TestConsolidatePreservesShadowing(t *testing.T) {
	a := mk2D(t, 4, 4, 0.9)
	_ = a.Write([]Cell{{Coords: []int64{0, 0}, Value: 1}})
	_ = a.Write([]Cell{{Coords: []int64{0, 0}, Value: 2}})
	_ = a.Consolidate()
	v, ok, _ := a.Get([]int64{0, 0})
	if !ok || v != 2 {
		t.Errorf("shadowed value after consolidate: %v", v)
	}
}

func TestSpMV(t *testing.T) {
	// [1 0 2; 0 3 0; 4 0 5] · [1 2 3] = [7, 6, 19]
	a := mk2D(t, 3, 3, 0.9)
	_ = a.Write([]Cell{
		{Coords: []int64{0, 0}, Value: 1}, {Coords: []int64{0, 2}, Value: 2},
		{Coords: []int64{1, 1}, Value: 3},
		{Coords: []int64{2, 0}, Value: 4}, {Coords: []int64{2, 2}, Value: 5},
	})
	y, err := a.SpMV([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{7, 6, 19}
	for i := range want {
		if y[i] != want[i] {
			t.Errorf("y[%d] = %v, want %v", i, y[i], want[i])
		}
	}
	if _, err := a.SpMV([]float64{1}); err == nil {
		t.Error("wrong x length should fail")
	}
	one, _ := NewArray("v", Box{Lo: []int64{0}, Hi: []int64{3}}, 0.5)
	if _, err := one.SpMV([]float64{1, 2, 3, 4}); err == nil {
		t.Error("1-D SpMV should fail")
	}
}

func TestSpMVMatchesDenseReference(t *testing.T) {
	// Property: SpMV over random sparse matrices matches a dense loop.
	f := func(seedRaw uint16) bool {
		seed := int64(seedRaw)
		const n = 10
		a, _ := NewArray("m", Box{Lo: []int64{0, 0}, Hi: []int64{n - 1, n - 1}}, 0.5)
		dense := make([][]float64, n)
		for i := range dense {
			dense[i] = make([]float64, n)
		}
		var cells []Cell
		rng := seed
		next := func() int64 { rng = (rng*6364136223846793005 + 1442695040888963407) & 0x7fffffff; return rng }
		for k := 0; k < 25; k++ {
			r, c := next()%n, next()%n
			v := float64(next()%100) / 10
			dense[r][c] = v
			cells = append(cells, Cell{Coords: []int64{r, c}, Value: v})
		}
		if err := a.Write(cells); err != nil {
			return false
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(next()%10) / 2
		}
		y, err := a.SpMV(x)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			wantY := 0.0
			for j := 0; j < n; j++ {
				wantY += dense[i][j] * x[j]
			}
			if math.Abs(y[i]-wantY) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestReadOutsidePopulatedArea(t *testing.T) {
	a := mk2D(t, 100, 100, 0.5)
	_ = a.Write([]Cell{{Coords: []int64{5, 5}, Value: 1}})
	cells, err := a.Read(Box{Lo: []int64{50, 50}, Hi: []int64{60, 60}})
	if err != nil || len(cells) != 0 {
		t.Errorf("empty region read: %v %v", cells, err)
	}
	_, ok, _ := a.Get([]int64{6, 6})
	if ok {
		t.Error("unwritten cell should be empty")
	}
}
