// Package tiledb implements BigDAWG's TileDB substitute: a prototype
// array store whose fundamental unit of storage and computation is the
// tile — an irregular subarray optimised separately for dense and
// sparse content (§2.5 of the paper). Writes produce immutable
// fragments of tiles; reads merge fragments newest-first; consolidation
// compacts fragments, mirroring TileDB's design.
//
// The payload is a single float64 attribute, which is what the paper's
// sparse-linear-algebra coupling (§2.4) needs; the general-purpose
// multi-attribute array engine lives in internal/array.
package tiledb

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Box is an inclusive n-dimensional bounding box.
type Box struct {
	Lo, Hi []int64
}

// contains reports whether the box contains the coordinates.
func (b Box) contains(c []int64) bool {
	for i := range c {
		if c[i] < b.Lo[i] || c[i] > b.Hi[i] {
			return false
		}
	}
	return true
}

// vol returns the number of cells in the box.
func (b Box) vol() int64 {
	v := int64(1)
	for i := range b.Lo {
		v *= b.Hi[i] - b.Lo[i] + 1
	}
	return v
}

// intersect clips the box to o; empty result returns ok=false.
func (b Box) intersect(o Box) (Box, bool) {
	lo := make([]int64, len(b.Lo))
	hi := make([]int64, len(b.Hi))
	for i := range b.Lo {
		lo[i] = max64(b.Lo[i], o.Lo[i])
		hi[i] = min64(b.Hi[i], o.Hi[i])
		if lo[i] > hi[i] {
			return Box{}, false
		}
	}
	return Box{Lo: lo, Hi: hi}, true
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// TileKind distinguishes the two physical tile layouts.
type TileKind int

// Tile layouts.
const (
	DenseTile TileKind = iota
	SparseTile
)

// Tile is one irregular subarray. Dense tiles store a row-major value
// vector over their box; sparse tiles store parallel coordinate/value
// slices sorted by linearised coordinate.
type Tile struct {
	Kind TileKind
	Box  Box

	dense  []float64 // DenseTile: len == Box.vol(); NaN marks empty
	coords [][]int64 // SparseTile
	vals   []float64
}

// Count returns the number of populated cells in the tile.
func (t *Tile) Count() int64 {
	if t.Kind == SparseTile {
		return int64(len(t.vals))
	}
	n := int64(0)
	for _, v := range t.dense {
		if !math.IsNaN(v) {
			n++
		}
	}
	return n
}

func (t *Tile) linear(c []int64) int64 {
	idx := int64(0)
	for i := range c {
		idx = idx*(t.Box.Hi[i]-t.Box.Lo[i]+1) + (c[i] - t.Box.Lo[i])
	}
	return idx
}

// get reads one cell; ok=false for empty.
func (t *Tile) get(c []int64) (float64, bool) {
	if !t.Box.contains(c) {
		return 0, false
	}
	if t.Kind == DenseTile {
		v := t.dense[t.linear(c)]
		if math.IsNaN(v) {
			return 0, false
		}
		return v, true
	}
	target := t.linear(c)
	i := sort.Search(len(t.coords), func(i int) bool { return t.linear(t.coords[i]) >= target })
	if i < len(t.coords) && t.linear(t.coords[i]) == target {
		return t.vals[i], true
	}
	return 0, false
}

// forEach visits populated cells. coords slice is reused; copy to keep.
func (t *Tile) forEach(fn func(c []int64, v float64)) {
	if t.Kind == SparseTile {
		for i, c := range t.coords {
			fn(c, t.vals[i])
		}
		return
	}
	nd := len(t.Box.Lo)
	c := make([]int64, nd)
	copy(c, t.Box.Lo)
	for idx, v := range t.dense {
		if !math.IsNaN(v) {
			// delinearise idx into c
			rem := int64(idx)
			for i := nd - 1; i >= 0; i-- {
				width := t.Box.Hi[i] - t.Box.Lo[i] + 1
				c[i] = t.Box.Lo[i] + rem%width
				rem /= width
			}
			fn(c, v)
		}
	}
}

// Fragment is one immutable batch of tiles produced by a write session.
type Fragment struct {
	seq   int64
	tiles []*Tile
}

// Array is a TileDB array: schema (dimension count and domain) plus an
// ordered list of fragments. Later fragments shadow earlier ones.
type Array struct {
	Name   string
	Domain Box
	// DensityThreshold selects tile layout at write time: boxes whose
	// populated fraction is at least this value become dense tiles.
	DensityThreshold float64

	mu        sync.RWMutex
	fragments []*Fragment
	nextSeq   int64

	stats Stats
}

// Stats counts engine work for the monitor and the E7 ablation.
type Stats struct {
	TilesRead      int64
	TilesWritten   int64
	Consolidations int64
}

// NewArray creates an array over the given domain.
func NewArray(name string, domain Box, densityThreshold float64) (*Array, error) {
	if len(domain.Lo) == 0 || len(domain.Lo) != len(domain.Hi) {
		return nil, fmt.Errorf("tiledb: %s: malformed domain", name)
	}
	for i := range domain.Lo {
		if domain.Lo[i] > domain.Hi[i] {
			return nil, fmt.Errorf("tiledb: %s: empty domain on dim %d", name, i)
		}
	}
	if densityThreshold <= 0 {
		densityThreshold = 0.5
	}
	return &Array{Name: name, Domain: domain, DensityThreshold: densityThreshold}, nil
}

// Stats returns a snapshot of the engine counters.
func (a *Array) Stats() Stats {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.stats
}

// Fragments returns the current fragment count.
func (a *Array) Fragments() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.fragments)
}

// Cell is one coordinate/value pair for writes and reads.
type Cell struct {
	Coords []int64
	Value  float64
}

// Write stores a batch of cells as one new fragment. The batch is
// packed into a single tile whose bounding box is computed from the
// cells; the tile goes dense when the box is sufficiently full,
// exercising TileDB's "optimised for dense or sparse objects" choice.
func (a *Array) Write(cells []Cell) error {
	if len(cells) == 0 {
		return fmt.Errorf("tiledb: %s: empty write", a.Name)
	}
	nd := len(a.Domain.Lo)
	lo := make([]int64, nd)
	hi := make([]int64, nd)
	copy(lo, cells[0].Coords)
	copy(hi, cells[0].Coords)
	for _, c := range cells {
		if len(c.Coords) != nd {
			return fmt.Errorf("tiledb: %s: coordinate arity %d != %d", a.Name, len(c.Coords), nd)
		}
		if !a.Domain.contains(c.Coords) {
			return fmt.Errorf("tiledb: %s: coordinate %v outside domain", a.Name, c.Coords)
		}
		for i := range c.Coords {
			lo[i] = min64(lo[i], c.Coords[i])
			hi[i] = max64(hi[i], c.Coords[i])
		}
	}
	box := Box{Lo: lo, Hi: hi}
	tile := a.packTile(box, cells)

	a.mu.Lock()
	defer a.mu.Unlock()
	a.nextSeq++
	a.fragments = append(a.fragments, &Fragment{seq: a.nextSeq, tiles: []*Tile{tile}})
	a.stats.TilesWritten++
	return nil
}

func (a *Array) packTile(box Box, cells []Cell) *Tile {
	density := float64(len(cells)) / float64(box.vol())
	if density >= a.DensityThreshold && box.vol() < (1<<28) {
		t := &Tile{Kind: DenseTile, Box: box, dense: make([]float64, box.vol())}
		for i := range t.dense {
			t.dense[i] = math.NaN()
		}
		for _, c := range cells {
			t.dense[t.linear(c.Coords)] = c.Value
		}
		return t
	}
	t := &Tile{Kind: SparseTile, Box: box}
	sorted := make([]Cell, len(cells))
	copy(sorted, cells)
	tmp := &Tile{Box: box}
	// Stable sort so that, among duplicate coordinates, batch order is
	// preserved and the dedup below keeps the last write.
	sort.SliceStable(sorted, func(i, j int) bool {
		return tmp.linear(sorted[i].Coords) < tmp.linear(sorted[j].Coords)
	})
	// Deduplicate: last write in the batch wins.
	for i, c := range sorted {
		if i+1 < len(sorted) && tmp.linear(sorted[i+1].Coords) == tmp.linear(c.Coords) {
			continue
		}
		cc := make([]int64, len(c.Coords))
		copy(cc, c.Coords)
		t.coords = append(t.coords, cc)
		t.vals = append(t.vals, c.Value)
	}
	return t
}

// Read returns the populated cells inside the subarray box, with later
// fragments shadowing earlier ones.
func (a *Array) Read(sub Box) ([]Cell, error) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if len(sub.Lo) != len(a.Domain.Lo) {
		return nil, fmt.Errorf("tiledb: %s: subarray arity mismatch", a.Name)
	}
	type slot struct {
		seq int64
		v   float64
	}
	merged := map[string]slot{}
	coordOf := map[string][]int64{}
	for _, f := range a.fragments {
		for _, t := range f.tiles {
			if _, ok := t.Box.intersect(sub); !ok {
				continue
			}
			a.stats.TilesRead++
			t.forEach(func(c []int64, v float64) {
				if !sub.contains(c) {
					return
				}
				k := coordKey(c)
				if prev, ok := merged[k]; !ok || f.seq > prev.seq {
					merged[k] = slot{seq: f.seq, v: v}
					if !ok {
						cc := make([]int64, len(c))
						copy(cc, c)
						coordOf[k] = cc
					}
				}
			})
		}
	}
	out := make([]Cell, 0, len(merged))
	for k, s := range merged {
		out = append(out, Cell{Coords: coordOf[k], Value: s.v})
	}
	sort.Slice(out, func(i, j int) bool { return coordKey(out[i].Coords) < coordKey(out[j].Coords) })
	return out, nil
}

func coordKey(c []int64) string {
	b := make([]byte, 0, len(c)*8)
	for _, v := range c {
		u := uint64(v) ^ (1 << 63) // order-preserving for signed ints
		for s := 56; s >= 0; s -= 8 {
			b = append(b, byte(u>>uint(s)))
		}
	}
	return string(b)
}

// Consolidate merges all fragments into one, discarding shadowed cells.
// This is TileDB's fragment-compaction operation.
func (a *Array) Consolidate() error {
	cells, err := a.Read(a.Domain)
	if err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.stats.Consolidations++
	if len(cells) == 0 {
		a.fragments = nil
		return nil
	}
	tile := a.packTile(boundingBox(cells), cells)
	a.nextSeq++
	a.fragments = []*Fragment{{seq: a.nextSeq, tiles: []*Tile{tile}}}
	return nil
}

func boundingBox(cells []Cell) Box {
	nd := len(cells[0].Coords)
	lo := make([]int64, nd)
	hi := make([]int64, nd)
	copy(lo, cells[0].Coords)
	copy(hi, cells[0].Coords)
	for _, c := range cells {
		for i := range c.Coords {
			lo[i] = min64(lo[i], c.Coords[i])
			hi[i] = max64(hi[i], c.Coords[i])
		}
	}
	return Box{Lo: lo, Hi: hi}
}

// ForEachTile runs fn over every live tile. This is the tight-coupling
// hook (§2.4): the sparse linear-algebra kernels iterate tiles in place
// with no format conversion, versus the loose path that exports to a
// relation first.
func (a *Array) ForEachTile(fn func(t *Tile)) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	for _, f := range a.fragments {
		for _, t := range f.tiles {
			a.stats.TilesRead++
			fn(t)
		}
	}
}

// SpMV computes y = A·x for a 2-D array holding a sparse matrix, using
// per-tile iteration — the tightly coupled kernel.
func (a *Array) SpMV(x []float64) ([]float64, error) {
	if len(a.Domain.Lo) != 2 {
		return nil, fmt.Errorf("tiledb: %s: SpMV requires a 2-D array", a.Name)
	}
	rows := a.Domain.Hi[0] - a.Domain.Lo[0] + 1
	cols := a.Domain.Hi[1] - a.Domain.Lo[1] + 1
	if int64(len(x)) != cols {
		return nil, fmt.Errorf("tiledb: %s: x has %d entries, want %d", a.Name, len(x), cols)
	}
	y := make([]float64, rows)
	rowLo, colLo := a.Domain.Lo[0], a.Domain.Lo[1]
	a.ForEachTile(func(t *Tile) {
		t.forEach(func(c []int64, v float64) {
			y[c[0]-rowLo] += v * x[c[1]-colLo]
		})
	})
	return y, nil
}

// Get reads a single cell across fragments (newest wins).
func (a *Array) Get(coords []int64) (float64, bool, error) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if !a.Domain.contains(coords) {
		return 0, false, fmt.Errorf("tiledb: %s: coordinate %v outside domain", a.Name, coords)
	}
	for i := len(a.fragments) - 1; i >= 0; i-- {
		for _, t := range a.fragments[i].tiles {
			if v, ok := t.get(coords); ok {
				return v, true, nil
			}
		}
	}
	return 0, false, nil
}
