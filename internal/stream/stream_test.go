package stream

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
)

func waveSchema() engine.Schema {
	return engine.NewSchema(
		engine.Col("patient", engine.TypeInt),
		engine.Col("v", engine.TypeFloat),
	)
}

func rec(ts int64, patient int64, v float64) Record {
	return Record{TS: ts, Values: engine.Tuple{engine.NewInt(patient), engine.NewFloat(v)}}
}

func TestCreateAppendWindow(t *testing.T) {
	e := NewEngine()
	if err := e.CreateStream("wf", waveSchema(), 3); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateStream("wf", waveSchema(), 3); err == nil {
		t.Error("duplicate stream should fail")
	}
	if err := e.CreateStream("bad", waveSchema(), 0); err == nil {
		t.Error("zero capacity should fail")
	}
	for i := int64(0); i < 5; i++ {
		if err := e.Append("wf", rec(i, 1, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	w, err := e.Window("wf")
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 3 {
		t.Fatalf("window len = %d, want 3", w.Len())
	}
	// Oldest two slid out; window holds ts 2,3,4.
	if w.At(0).TS != 2 || w.Last().TS != 4 {
		t.Errorf("window contents: %v..%v", w.At(0).TS, w.Last().TS)
	}
	if n, _ := e.Appended("wf"); n != 5 {
		t.Errorf("appended = %d", n)
	}
	if err := e.Append("missing", rec(0, 1, 0)); err == nil {
		t.Error("append to missing stream should fail")
	}
	if err := e.Append("wf", Record{TS: 9, Values: engine.Tuple{engine.NewInt(1)}}); err == nil {
		t.Error("arity mismatch should fail")
	}
}

func TestWindowAggregate(t *testing.T) {
	e := NewEngine()
	_ = e.CreateStream("wf", waveSchema(), 10)
	for i := int64(1); i <= 4; i++ {
		_ = e.Append("wf", rec(i, 1, float64(i)))
	}
	w, _ := e.Window("wf")
	for _, tc := range []struct {
		kind string
		want float64
	}{{"sum", 10}, {"avg", 2.5}, {"min", 1}, {"max", 4}, {"count", 4}} {
		got, err := w.Aggregate(tc.kind, "v")
		if err != nil || got != tc.want {
			t.Errorf("%s = %v (%v), want %v", tc.kind, got, err, tc.want)
		}
	}
	if _, err := w.Aggregate("median", "v"); err == nil {
		t.Error("unknown aggregate should fail")
	}
	if _, err := w.Aggregate("sum", "nope"); err == nil {
		t.Error("unknown column should fail")
	}
}

func TestTriggerFiresInsideAppend(t *testing.T) {
	e := NewEngine()
	_ = e.CreateStream("wf", waveSchema(), 100)
	var alerts []int64
	err := e.RegisterTrigger("wf", "high_value", func(view *WindowView, r Record) error {
		if r.Values[1].AsFloat() > 5 {
			alerts = append(alerts, r.TS)
		}
		// Trigger sees the new record in the window.
		if view.Last().TS != r.TS {
			t.Errorf("trigger should see appended record")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		_ = e.Append("wf", rec(i, 1, float64(i)))
	}
	if len(alerts) != 4 { // 6,7,8,9
		t.Errorf("alerts: %v", alerts)
	}
	if err := e.RegisterTrigger("missing", "x", nil); err == nil {
		t.Error("trigger on missing stream should fail")
	}
}

func TestTriggerAbortRollsBack(t *testing.T) {
	e := NewEngine()
	_ = e.CreateStream("wf", waveSchema(), 2)
	_ = e.RegisterTrigger("wf", "reject_negative", func(_ *WindowView, r Record) error {
		if r.Values[1].AsFloat() < 0 {
			return fmt.Errorf("negative value")
		}
		return nil
	})
	_ = e.Append("wf", rec(1, 1, 1))
	_ = e.Append("wf", rec(2, 1, 2))
	if err := e.Append("wf", rec(3, 1, -5)); err == nil {
		t.Fatal("aborting trigger should surface error")
	}
	w, _ := e.Window("wf")
	// Window must be exactly as before the failed append, including the
	// record that would have been evicted.
	if w.Len() != 2 || w.At(0).TS != 1 || w.At(1).TS != 2 {
		t.Errorf("rollback failed: window %v %v", w.At(0).TS, w.Last().TS)
	}
	if n, _ := e.Appended("wf"); n != 2 {
		t.Errorf("appended after abort = %d", n)
	}
	if e.Stats().Aborts != 1 {
		t.Errorf("aborts = %d", e.Stats().Aborts)
	}
}

func TestEvictionHook(t *testing.T) {
	e := NewEngine()
	_ = e.CreateStream("wf", waveSchema(), 2)
	var mu sync.Mutex
	var evicted []int64
	e.OnEvict(func(stream string, r Record) {
		mu.Lock()
		evicted = append(evicted, r.TS)
		mu.Unlock()
	})
	for i := int64(0); i < 5; i++ {
		_ = e.Append("wf", rec(i, 1, 0))
	}
	mu.Lock()
	defer mu.Unlock()
	if len(evicted) != 3 || evicted[0] != 0 || evicted[2] != 2 {
		t.Errorf("evicted: %v", evicted)
	}
}

func TestDump(t *testing.T) {
	e := NewEngine()
	_ = e.CreateStream("wf", waveSchema(), 10)
	_ = e.Append("wf", rec(42, 7, 1.5))
	rel, err := e.Dump("wf")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 || rel.Tuples[0][0].I != 42 || rel.Tuples[0][1].I != 7 || rel.Tuples[0][2].F != 1.5 {
		t.Errorf("dump: %v", rel)
	}
	if _, err := e.Dump("missing"); err != nil {
		// expected
	} else {
		t.Error("dump missing stream should fail")
	}
}

func TestTCPIngestion(t *testing.T) {
	e := NewEngine()
	defer func() {
		if err := e.Close(); err != nil {
			t.Errorf("engine close: %v", err)
		}
	}()
	_ = e.CreateStream("wf", waveSchema(), 100)
	addr, err := e.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	lines := []string{
		"wf,1,7,0.5",
		"wf,2,7,0.75",
		"nosuch,3,7,1.0", // error line
		"wf,4,7,1.25",
	}
	if _, err := fmt.Fprint(conn, strings.Join(lines, "\n")+"\n"); err != nil {
		t.Fatal(err)
	}
	// Read the 4 replies.
	buf := make([]byte, 0, 64)
	tmp := make([]byte, 256)
	deadline := time.Now().Add(2 * time.Second)
	for strings.Count(string(buf), "\n") < 4 && time.Now().Before(deadline) {
		_ = conn.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
		n, _ := conn.Read(tmp)
		buf = append(buf, tmp[:n]...)
	}
	replies := strings.Fields(strings.ReplaceAll(string(buf), "\n", " "))
	okCount, errCount := 0, 0
	for _, r := range replies {
		switch {
		case r == "OK":
			okCount++
		case r == "ERR":
			errCount++
		}
	}
	if okCount != 3 || errCount != 1 {
		t.Errorf("replies: %q", string(buf))
	}
	if !e.WaitSettle(3, time.Second) {
		t.Fatal("records did not arrive")
	}
	w, _ := e.Window("wf")
	if w.Len() != 3 {
		t.Errorf("window after tcp ingest: %d", w.Len())
	}
}

func TestIngestLineErrors(t *testing.T) {
	e := NewEngine()
	_ = e.CreateStream("wf", waveSchema(), 10)
	for _, bad := range []string{
		"",
		"wf",
		"wf,notanumber,1,2",
		"wf,1,onlyonefield",
		"wf,1,abc,def", // unparseable int
	} {
		if err := e.IngestLine(bad); err == nil {
			t.Errorf("IngestLine(%q) should fail", bad)
		}
	}
}

func TestCommandLogRecovery(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "wal.log")

	e1, err := NewEngineWithLog(logPath)
	if err != nil {
		t.Fatal(err)
	}
	_ = e1.CreateStream("wf", waveSchema(), 100)
	var alertCount1 int
	_ = e1.RegisterTrigger("wf", "alert", func(_ *WindowView, r Record) error {
		if r.Values[1].AsFloat() > 0.8 {
			alertCount1++
		}
		return nil
	})
	for i := int64(0); i < 50; i++ {
		v := float64(i%10) / 10
		if err := e1.Append("wf", rec(i, 1, v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(logPath); err != nil || fi.Size() == 0 {
		t.Fatalf("log not written: %v", err)
	}

	// "Crash" and recover into a fresh engine with the same DDL.
	e2 := NewEngine()
	_ = e2.CreateStream("wf", waveSchema(), 100)
	var alertCount2 int
	_ = e2.RegisterTrigger("wf", "alert", func(_ *WindowView, r Record) error {
		if r.Values[1].AsFloat() > 0.8 {
			alertCount2++
		}
		return nil
	})
	n, err := e2.Recover(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Errorf("recovered %d records", n)
	}
	// Derived state matches: triggers re-fired identically, windows equal.
	if alertCount2 != alertCount1 {
		t.Errorf("alert counts diverge: %d vs %d", alertCount1, alertCount2)
	}
	w1 := mustWindow(t, NewEngine(), e1, "wf")
	w2 := mustWindow(t, NewEngine(), e2, "wf")
	if w1.Len() != w2.Len() {
		t.Fatalf("window lengths diverge: %d vs %d", w1.Len(), w2.Len())
	}
	for i := 0; i < w1.Len(); i++ {
		if w1.At(i).TS != w2.At(i).TS {
			t.Errorf("window record %d diverges", i)
		}
	}
}

func mustWindow(t *testing.T, _ *Engine, e *Engine, name string) *WindowView {
	t.Helper()
	w, err := e.Window(name)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestConcurrentAppends(t *testing.T) {
	e := NewEngine()
	_ = e.CreateStream("wf", waveSchema(), 1000)
	var wg sync.WaitGroup
	const writers, per = 8, 100
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				_ = e.Append("wf", rec(int64(w*per+i), int64(w), 0.5))
			}
		}(w)
	}
	wg.Wait()
	if n, _ := e.Appended("wf"); n != writers*per {
		t.Errorf("appended = %d, want %d", n, writers*per)
	}
	if e.Stats().Appends != writers*per {
		t.Errorf("stats appends = %d", e.Stats().Appends)
	}
}

func TestIngestLatency(t *testing.T) {
	// The paper requires "response times in the tens of milliseconds" at
	// hundreds of Hz. Locally an append+trigger must be far under 1ms.
	e := NewEngine()
	_ = e.CreateStream("wf", waveSchema(), 125)
	alerted := false
	_ = e.RegisterTrigger("wf", "thresh", func(view *WindowView, r Record) error {
		avg, err := view.Aggregate("avg", "v")
		if err != nil {
			return err
		}
		if avg > 0.9 {
			alerted = true
		}
		return nil
	})
	start := time.Now()
	const n = 1000
	for i := int64(0); i < n; i++ {
		_ = e.Append("wf", rec(i, 1, 1.0))
	}
	elapsed := time.Since(start)
	if !alerted {
		t.Error("trigger never fired")
	}
	perAppend := elapsed / n
	if perAppend > 10*time.Millisecond {
		t.Errorf("append+windowed trigger took %v each; paper needs tens of ms end-to-end", perAppend)
	}
}
