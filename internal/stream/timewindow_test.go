package stream

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/engine"
)

func TestCreateTimeStreamValidation(t *testing.T) {
	e := NewEngine()
	if err := e.CreateTimeStream("x", waveSchema(), 0); err == nil {
		t.Error("zero span should fail")
	}
	if err := e.CreateTimeStream("x", waveSchema(), 100); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateTimeStream("x", waveSchema(), 100); err == nil {
		t.Error("duplicate should fail")
	}
	if err := e.CreateStream("x", waveSchema(), 5); err == nil {
		t.Error("name collision with count stream should fail")
	}
}

func TestTimeWindowRetention(t *testing.T) {
	e := NewEngine()
	if err := e.CreateTimeStream("wf", waveSchema(), 100); err != nil {
		t.Fatal(err)
	}
	// Records every 10 ticks from 0 to 300: window keeps TS in (newest-100, newest].
	for ts := int64(0); ts <= 300; ts += 10 {
		if err := e.Append("wf", rec(ts, 1, float64(ts))); err != nil {
			t.Fatal(err)
		}
	}
	w, _ := e.Window("wf")
	if w.At(0).TS != 210 || w.Last().TS != 300 {
		t.Errorf("window range [%d,%d], want [210,300]", w.At(0).TS, w.Last().TS)
	}
	if w.Len() != 10 {
		t.Errorf("window len %d", w.Len())
	}
}

func TestTimeWindowOutOfOrderWithinSpan(t *testing.T) {
	e := NewEngine()
	_ = e.CreateTimeStream("wf", waveSchema(), 100)
	for _, ts := range []int64{10, 50, 30, 70, 40} {
		if err := e.Append("wf", rec(ts, 1, 0)); err != nil {
			t.Fatalf("ts=%d: %v", ts, err)
		}
	}
	w, _ := e.Window("wf")
	// Window must be TS-sorted despite arrival order.
	for i := 1; i < w.Len(); i++ {
		if w.At(i).TS < w.At(i-1).TS {
			t.Fatalf("window unsorted at %d", i)
		}
	}
	if w.Len() != 5 {
		t.Errorf("len %d", w.Len())
	}
}

func TestTimeWindowRejectsTooLate(t *testing.T) {
	e := NewEngine()
	_ = e.CreateTimeStream("wf", waveSchema(), 100)
	_ = e.Append("wf", rec(500, 1, 0))
	if err := e.Append("wf", rec(399, 1, 0)); err == nil {
		t.Error("record older than the horizon should be rejected")
	}
	// Exactly at the horizon boundary (TS = newest-span) is too late;
	// one tick inside is accepted.
	if err := e.Append("wf", rec(401, 1, 0)); err != nil {
		t.Errorf("in-span record rejected: %v", err)
	}
}

func TestTimeWindowEviction(t *testing.T) {
	e := NewEngine()
	_ = e.CreateTimeStream("wf", waveSchema(), 50)
	var mu sync.Mutex
	var evicted []int64
	e.OnEvict(func(_ string, r Record) {
		mu.Lock()
		evicted = append(evicted, r.TS)
		mu.Unlock()
	})
	_ = e.Append("wf", rec(0, 1, 0))
	_ = e.Append("wf", rec(10, 1, 0))
	_ = e.Append("wf", rec(100, 1, 0)) // evicts 0 and 10 at once
	mu.Lock()
	defer mu.Unlock()
	if len(evicted) != 2 || evicted[0] != 0 || evicted[1] != 10 {
		t.Errorf("evicted: %v", evicted)
	}
}

func TestTimeWindowTriggerAbortRollsBack(t *testing.T) {
	e := NewEngine()
	_ = e.CreateTimeStream("wf", waveSchema(), 100)
	_ = e.RegisterTrigger("wf", "reject", func(_ *WindowView, r Record) error {
		if r.Values[1].AsFloat() < 0 {
			return fmt.Errorf("negative")
		}
		return nil
	})
	_ = e.Append("wf", rec(10, 1, 1))
	_ = e.Append("wf", rec(20, 1, 2))
	if err := e.Append("wf", rec(200, 1, -1)); err == nil {
		t.Fatal("abort expected")
	}
	w, _ := e.Window("wf")
	// Both original records restored, rejected record absent.
	if w.Len() != 2 || w.At(0).TS != 10 || w.At(1).TS != 20 {
		var ts []int64
		for i := 0; i < w.Len(); i++ {
			ts = append(ts, w.At(i).TS)
		}
		t.Errorf("rollback failed: window %v", ts)
	}
}

func TestTimeWindowAggregates(t *testing.T) {
	e := NewEngine()
	_ = e.CreateTimeStream("wf", waveSchema(), 1000)
	for i := int64(1); i <= 5; i++ {
		_ = e.Append("wf", Record{TS: i * 100, Values: engine.Tuple{engine.NewInt(1), engine.NewFloat(float64(i))}})
	}
	w, _ := e.Window("wf")
	avg, err := w.Aggregate("avg", "v")
	if err != nil || avg != 3 {
		t.Errorf("avg = %v %v", avg, err)
	}
}
