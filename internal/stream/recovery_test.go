package stream

import (
	"os"
	"path/filepath"
	"testing"
)

// Failure-injection tests for the command-log recovery path.

func TestRecoverMissingFile(t *testing.T) {
	e := NewEngine()
	if _, err := e.Recover(filepath.Join(t.TempDir(), "nope.log")); err == nil {
		t.Error("missing log should fail")
	}
}

func TestRecoverCorruptLine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	content := "wf,1,1,0.5\nwf,2,1,0.75\nGARBAGE LINE NO COMMAS AT ALL\nwf,3,1,1.0\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	e := NewEngine()
	_ = e.CreateStream("wf", waveSchema(), 10)
	n, err := e.Recover(path)
	if err == nil {
		t.Fatal("corrupt line should fail recovery")
	}
	if n != 2 {
		t.Errorf("recovered %d records before the corruption, want 2", n)
	}
	// The two good records are applied.
	w, _ := e.Window("wf")
	if w.Len() != 2 {
		t.Errorf("window after partial recovery: %d", w.Len())
	}
}

func TestRecoverUnknownStream(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	if err := os.WriteFile(path, []byte("ghost,1,1,0.5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	e := NewEngine()
	if _, err := e.Recover(path); err == nil {
		t.Error("log referencing undeclared stream should fail (DDL must precede replay)")
	}
}

func TestLogAppendsAreDurableAcrossClose(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	e, err := NewEngineWithLog(path)
	if err != nil {
		t.Fatal(err)
	}
	_ = e.CreateStream("wf", waveSchema(), 10)
	for i := int64(0); i < 3; i++ {
		if err := e.Append("wf", rec(i, 1, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Second engine instance appends to the same log.
	e2, err := NewEngineWithLog(path)
	if err != nil {
		t.Fatal(err)
	}
	_ = e2.CreateStream("wf", waveSchema(), 10)
	if err := e2.Append("wf", rec(3, 1, 3)); err != nil {
		t.Fatal(err)
	}
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	// Full replay sees all four.
	e3 := NewEngine()
	_ = e3.CreateStream("wf", waveSchema(), 10)
	n, err := e3.Recover(path)
	if err != nil || n != 4 {
		t.Errorf("replayed %d records (%v), want 4", n, err)
	}
}

func TestAbortedAppendsAreNotLogged(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	e, err := NewEngineWithLog(path)
	if err != nil {
		t.Fatal(err)
	}
	_ = e.CreateStream("wf", waveSchema(), 10)
	_ = e.RegisterTrigger("wf", "reject", func(_ *WindowView, r Record) error {
		if r.Values[1].AsFloat() < 0 {
			return errNegative
		}
		return nil
	})
	_ = e.Append("wf", rec(1, 1, 1))
	_ = e.Append("wf", rec(2, 1, -1)) // aborted
	_ = e.Append("wf", rec(3, 1, 3))
	_ = e.Close()

	e2 := NewEngine()
	_ = e2.CreateStream("wf", waveSchema(), 10)
	n, err := e2.Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("log should hold only committed appends: %d", n)
	}
}

var errNegative = errNeg{}

type errNeg struct{}

func (errNeg) Error() string { return "negative value" }
