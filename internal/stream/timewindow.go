package stream

import (
	"fmt"
	"strings"

	"repro/internal/engine"
)

// Aliases for readability in this file.
type (
	streamSchema = engine.Schema
	streamTuple  = engine.Tuple
)

// Time-based sliding windows. S-Store represents "streams and sliding
// windows as time-varying tables"; alongside the count-based windows in
// stream.go, a time-based stream retains every record whose event
// timestamp lies within Span of the newest record, however many that
// is. Out-of-order arrivals within the span are accepted; records older
// than the span are rejected (too late) rather than silently reordered.

// CreateTimeStream declares a stream whose window holds records with
// TS > newestTS - span.
func (e *Engine) CreateTimeStream(name string, schema streamSchema, span int64) error {
	if span <= 0 {
		return fmt.Errorf("stream: time window span must be positive")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := e.streams[key]; ok {
		return fmt.Errorf("stream: stream %q already exists", name)
	}
	e.streams[key] = &streamState{
		name: name, schema: schema,
		capacity: -1, timeSpan: span,
	}
	return nil
}

// appendTimeBased slides a time window forward for a new record,
// returning the evicted records. Callers hold e.mu.
func (st *streamState) appendTimeBased(rec Record) (evicted []Record, err error) {
	if len(st.window) > 0 {
		newest := st.window[len(st.window)-1].TS
		if rec.TS <= newest-st.timeSpan {
			return nil, fmt.Errorf("stream: %s: record at ts=%d older than window horizon %d",
				st.name, rec.TS, newest-st.timeSpan)
		}
	}
	// Insert keeping the window sorted by TS (out-of-order arrivals
	// within the span are legal).
	pos := len(st.window)
	for pos > 0 && st.window[pos-1].TS > rec.TS {
		pos--
	}
	st.window = append(st.window, Record{})
	copy(st.window[pos+1:], st.window[pos:])
	st.window[pos] = rec

	// Evict everything beyond the span from the (possibly new) newest.
	newest := st.window[len(st.window)-1].TS
	cut := 0
	for cut < len(st.window) && st.window[cut].TS <= newest-st.timeSpan {
		cut++
	}
	evicted = append(evicted, st.window[:cut]...)
	st.window = st.window[cut:]
	return evicted, nil
}

// undoTimeAppend rolls a failed time-based append back. Callers hold
// e.mu; evicted are re-prepended in order.
func (st *streamState) undoTimeAppend(rec Record, evicted []Record) {
	for i, r := range st.window {
		if r.TS == rec.TS && sameTuple(r.Values, rec.Values) {
			st.window = append(st.window[:i], st.window[i+1:]...)
			break
		}
	}
	if len(evicted) > 0 {
		st.window = append(append([]Record{}, evicted...), st.window...)
	}
}

func sameTuple(a, b streamTuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
