// Package stream implements BigDAWG's S-Store substitute: a
// transactional stream processing engine. Following the paper (§2.5) it
// provides the three S-Store extensions over a NewSQL core:
//
//  1. streams and sliding windows represented as time-varying tables,
//  2. an ingestion module absorbing feeds directly from a TCP/IP
//     connection, and
//  3. a lightweight command-log recovery scheme.
//
// Appends are atomic: the record lands in the window and every
// registered trigger (stored procedure) runs inside the same critical
// section, so a trigger always observes the stream state the append
// produced. Records that age out of a window are handed to an eviction
// hook, which the polystore wires to the array engine ("data ages out
// of S-Store and is loaded into SciDB", §3).
package stream

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/engine"
)

// Record is one stream element: an event timestamp (logical, e.g.
// sample index or unix nanos) plus a tuple matching the stream schema.
type Record struct {
	TS     int64
	Values engine.Tuple
}

// Trigger is a stored procedure fired synchronously on every append,
// inside the append's critical section. The view gives read access to
// the stream's current window including the new record. An error aborts
// (rolls back) the append.
type Trigger func(view *WindowView, rec Record) error

// WindowView is a read-only view of one stream's window during a
// trigger or snapshot.
type WindowView struct {
	Name    string
	Schema  engine.Schema
	records []Record
}

// Len returns the number of records in the window.
func (w *WindowView) Len() int { return len(w.records) }

// At returns the i-th record, oldest first.
func (w *WindowView) At(i int) Record { return w.records[i] }

// Last returns the newest record.
func (w *WindowView) Last() Record { return w.records[len(w.records)-1] }

// Floats extracts one column of the window as floats, oldest first.
func (w *WindowView) Floats(col string) ([]float64, error) {
	idx, err := w.Schema.MustIndex(col)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(w.records))
	for i, r := range w.records {
		out[i] = r.Values[idx].AsFloat()
	}
	return out, nil
}

// Aggregate computes a simple aggregate over one column of the window.
func (w *WindowView) Aggregate(kind, col string) (float64, error) {
	vals, err := w.Floats(col)
	if err != nil {
		return 0, err
	}
	if len(vals) == 0 {
		return 0, fmt.Errorf("stream: empty window")
	}
	switch strings.ToLower(kind) {
	case "sum", "avg":
		s := 0.0
		for _, v := range vals {
			s += v
		}
		if strings.EqualFold(kind, "avg") {
			return s / float64(len(vals)), nil
		}
		return s, nil
	case "min":
		m := vals[0]
		for _, v := range vals[1:] {
			if v < m {
				m = v
			}
		}
		return m, nil
	case "max":
		m := vals[0]
		for _, v := range vals[1:] {
			if v > m {
				m = v
			}
		}
		return m, nil
	case "count":
		return float64(len(vals)), nil
	default:
		return 0, fmt.Errorf("stream: unknown aggregate %q", kind)
	}
}

type streamState struct {
	name     string
	schema   engine.Schema
	capacity int   // sliding window size in records; -1 for time-based
	timeSpan int64 // time-based window span (capacity == -1)
	window   []Record
	triggers []namedTrigger
	appended int64
}

type namedTrigger struct {
	name string
	fn   Trigger
}

// Engine is the stream processor. One mutex serialises all appends
// (single-writer transactional core, like H-Store's single-threaded
// partitions); readers snapshot windows under the same lock.
type Engine struct {
	mu      sync.Mutex
	streams map[string]*streamState
	evict   func(stream string, rec Record)

	log   *commandLog
	stats Stats

	listener net.Listener
	wg       sync.WaitGroup
}

// Stats counts engine work for the cross-system monitor.
type Stats struct {
	Appends  int64
	Triggers int64
	Aborts   int64
}

// NewEngine creates a stream engine with no recovery log.
func NewEngine() *Engine {
	return &Engine{streams: map[string]*streamState{}}
}

// NewEngineWithLog creates an engine that command-logs every append to
// path for crash recovery.
func NewEngineWithLog(path string) (*Engine, error) {
	cl, err := openCommandLog(path)
	if err != nil {
		return nil, err
	}
	e := NewEngine()
	e.log = cl
	return e, nil
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// OnEvict registers the hook receiving records that slide out of any
// window. The hook runs outside the append critical section.
func (e *Engine) OnEvict(fn func(stream string, rec Record)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.evict = fn
}

// CreateStream declares a stream with a count-based sliding window.
func (e *Engine) CreateStream(name string, schema engine.Schema, windowCapacity int) error {
	if windowCapacity <= 0 {
		return fmt.Errorf("stream: window capacity must be positive")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := e.streams[key]; ok {
		return fmt.Errorf("stream: stream %q already exists", name)
	}
	e.streams[key] = &streamState{name: name, schema: schema, capacity: windowCapacity}
	return nil
}

// RegisterTrigger attaches a stored procedure to a stream.
func (e *Engine) RegisterTrigger(stream, name string, fn Trigger) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.streams[strings.ToLower(stream)]
	if !ok {
		return fmt.Errorf("stream: no stream %q", stream)
	}
	st.triggers = append(st.triggers, namedTrigger{name, fn})
	return nil
}

// Append ingests one record transactionally: window update plus all
// triggers succeed, or the append rolls back entirely.
func (e *Engine) Append(stream string, rec Record) error {
	e.mu.Lock()
	st, ok := e.streams[strings.ToLower(stream)]
	if !ok {
		e.mu.Unlock()
		return fmt.Errorf("stream: no stream %q", stream)
	}
	if len(rec.Values) != len(st.schema.Columns) {
		e.mu.Unlock()
		return fmt.Errorf("stream: %s: arity %d != %d", stream, len(rec.Values), len(st.schema.Columns))
	}
	var evicted []Record
	if st.capacity < 0 {
		ev, err := st.appendTimeBased(rec)
		if err != nil {
			e.mu.Unlock()
			return err
		}
		evicted = ev
	} else {
		if len(st.window) >= st.capacity {
			evicted = append(evicted, st.window[0])
			st.window = st.window[1:]
		}
		st.window = append(st.window, rec)
	}
	view := &WindowView{Name: st.name, Schema: st.schema, records: st.window}
	for _, tr := range st.triggers {
		e.stats.Triggers++
		if err := tr.fn(view, rec); err != nil {
			// Roll back: restore prior window.
			if st.capacity < 0 {
				st.undoTimeAppend(rec, evicted)
			} else {
				st.window = st.window[:len(st.window)-1]
				if len(evicted) > 0 {
					st.window = append(append([]Record{}, evicted...), st.window...)
				}
			}
			e.stats.Aborts++
			e.mu.Unlock()
			return fmt.Errorf("stream: trigger %s aborted append: %w", tr.name, err)
		}
	}
	st.appended++
	e.stats.Appends++
	evictFn := e.evict
	if e.log != nil {
		if err := e.log.append(st.name, rec); err != nil {
			e.mu.Unlock()
			return err
		}
	}
	e.mu.Unlock()
	if evictFn != nil {
		for _, ev := range evicted {
			evictFn(st.name, ev)
		}
	}
	return nil
}

// Window snapshots the current window of a stream.
func (e *Engine) Window(stream string) (*WindowView, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.streams[strings.ToLower(stream)]
	if !ok {
		return nil, fmt.Errorf("stream: no stream %q", stream)
	}
	recs := make([]Record, len(st.window))
	copy(recs, st.window)
	return &WindowView{Name: st.name, Schema: st.schema, records: recs}, nil
}

// Appended returns the total records ever appended to a stream.
func (e *Engine) Appended(stream string) (int64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.streams[strings.ToLower(stream)]
	if !ok {
		return 0, fmt.Errorf("stream: no stream %q", stream)
	}
	return st.appended, nil
}

// Streams lists stream names.
func (e *Engine) Streams() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.streams))
	for _, st := range e.streams {
		out = append(out, st.name)
	}
	return out
}

// Dump exports a stream's current window as a relation with a leading
// ts column (CAST egress from the streaming island).
func (e *Engine) Dump(stream string) (*engine.Relation, error) {
	w, err := e.Window(stream)
	if err != nil {
		return nil, err
	}
	cols := append([]engine.Column{engine.Col("ts", engine.TypeInt)}, w.Schema.Columns...)
	rel := engine.NewRelation(engine.Schema{Columns: cols})
	for _, r := range w.records {
		row := make(engine.Tuple, 0, len(cols))
		row = append(row, engine.NewInt(r.TS))
		row = append(row, r.Values...)
		_ = rel.Append(row)
	}
	return rel, nil
}

// --- TCP ingestion (§2.5 (ii)) ---

// Listen starts the TCP ingestion module on addr (e.g. "127.0.0.1:0").
// Clients send one record per line:
//
//	streamName,ts,v1,v2,...
//
// Values are parsed against the stream schema. The returned address is
// the bound listen address. Close shuts the listener down.
func (e *Engine) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	e.mu.Lock()
	e.listener = ln
	e.mu.Unlock()
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			e.wg.Add(1)
			go func(c net.Conn) {
				defer e.wg.Done()
				defer c.Close()
				e.serveConn(c)
			}(conn)
		}
	}()
	return ln.Addr().String(), nil
}

func (e *Engine) serveConn(c net.Conn) {
	sc := bufio.NewScanner(c)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if err := e.IngestLine(line); err != nil {
			fmt.Fprintf(c, "ERR %v\n", err)
			continue
		}
		fmt.Fprintf(c, "OK\n")
	}
}

// IngestLine parses and appends one "stream,ts,v1,..." line.
func (e *Engine) IngestLine(line string) error {
	parts := strings.Split(line, ",")
	if len(parts) < 2 {
		return fmt.Errorf("stream: malformed ingest line %q", line)
	}
	name := strings.TrimSpace(parts[0])
	e.mu.Lock()
	st, ok := e.streams[strings.ToLower(name)]
	if !ok {
		e.mu.Unlock()
		return fmt.Errorf("stream: no stream %q", name)
	}
	schema := st.schema
	e.mu.Unlock()
	var ts int64
	if _, err := fmt.Sscanf(strings.TrimSpace(parts[1]), "%d", &ts); err != nil {
		return fmt.Errorf("stream: bad timestamp in %q", line)
	}
	fields := parts[2:]
	if len(fields) != len(schema.Columns) {
		return fmt.Errorf("stream: %s: got %d values, want %d", name, len(fields), len(schema.Columns))
	}
	vals := make(engine.Tuple, len(fields))
	for i, f := range fields {
		v, err := engine.ParseValue(strings.TrimSpace(f), schema.Columns[i].Type)
		if err != nil {
			return err
		}
		vals[i] = v
	}
	return e.Append(name, Record{TS: ts, Values: vals})
}

// Close stops the TCP listener (if any), closes the command log, and
// waits for connection handlers to drain.
func (e *Engine) Close() error {
	e.mu.Lock()
	ln := e.listener
	e.listener = nil
	cl := e.log
	e.log = nil
	e.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	e.wg.Wait()
	if cl != nil {
		return cl.close()
	}
	return nil
}

// --- Command-log recovery (§2.5 (iii)) ---

// commandLog is an append-only log of ingested records. Recovery
// replays the log through the normal Append path, re-firing triggers —
// H-Store-style command logging rather than ARIES-style data logging,
// hence "lightweight".
type commandLog struct {
	f  *os.File
	bw *bufio.Writer
}

func openCommandLog(path string) (*commandLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &commandLog{f: f, bw: bufio.NewWriter(f)}, nil
}

func (cl *commandLog) append(stream string, rec Record) error {
	parts := make([]string, 0, len(rec.Values)+2)
	parts = append(parts, stream, fmt.Sprintf("%d", rec.TS))
	for _, v := range rec.Values {
		parts = append(parts, v.String())
	}
	if _, err := cl.bw.WriteString(strings.Join(parts, ",") + "\n"); err != nil {
		return err
	}
	return cl.bw.Flush()
}

func (cl *commandLog) close() error {
	if err := cl.bw.Flush(); err != nil {
		return err
	}
	return cl.f.Close()
}

// Recover replays a command log into the engine. Streams and triggers
// must be declared first; replay re-executes triggers, reconstructing
// derived state exactly as the original run did.
func (e *Engine) Recover(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	n := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if err := e.IngestLine(line); err != nil {
			return n, fmt.Errorf("stream: recovery failed at record %d: %w", n, err)
		}
		n++
	}
	return n, sc.Err()
}

// WaitSettle is a test helper: it polls until the total appended count
// across streams reaches want or the timeout expires.
func (e *Engine) WaitSettle(want int64, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		e.mu.Lock()
		var total int64
		for _, st := range e.streams {
			total += st.appended
		}
		e.mu.Unlock()
		if total >= want {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return false
}
