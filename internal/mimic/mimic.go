// Package mimic generates a deterministic synthetic stand-in for the
// MIMIC II intensive-care dataset the BigDAWG demo runs on. Real
// MIMIC II requires credentialed access, so this generator reproduces
// the *shape* that drives every demo scenario:
//
//   - patient metadata (relational island / Postgres)
//   - admissions with stay durations carrying a planted SeeDB signal:
//     in the ICU cohort the race↔stay-length trend reverses the rest of
//     the population, which is exactly the Figure 2 finding
//   - ECG-like waveforms at 125 Hz with injectable arrhythmia bursts
//     (array island / SciDB historical, streaming island / S-Store live)
//   - clinical notes with planted "very sick" phrases (text island /
//     Accumulo)
//   - labs and prescriptions (relational)
//
// Everything derives from Config.Seed, so experiments are reproducible.
package mimic

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/engine"
)

// Config controls dataset size and shape.
type Config struct {
	Seed            int64
	Patients        int
	SampleRate      int // waveform Hz, 125 in MIMIC II
	WaveformSeconds int // seconds of waveform per patient
	NotesPerPatient int
	LabsPerPatient  int
}

// DefaultConfig returns a laptop-sized dataset.
func DefaultConfig() Config {
	return Config{
		Seed:            1,
		Patients:        500,
		SampleRate:      125,
		WaveformSeconds: 8,
		NotesPerPatient: 4,
		LabsPerPatient:  6,
	}
}

// Note is one clinical note destined for the key-value engine.
type Note struct {
	PatientID int
	Seq       int
	Author    string
	Text      string
}

// Dataset is the generated corpus.
type Dataset struct {
	Config        Config
	Patients      *engine.Relation // id, name, age, sex, race
	Admissions    *engine.Relation // adm_id, patient_id, ward, days, drug
	Labs          *engine.Relation // lab_id, patient_id, test, value
	Prescriptions *engine.Relation // rx_id, patient_id, drug, dose_mg
	Notes         []Note

	// verySickCounts records how many planted "very sick" phrases each
	// patient's notes contain, for validating text-search results.
	verySickCounts map[int]int
}

var (
	races   = []string{"white", "black", "asian", "hispanic", "other"}
	wards   = []string{"icu", "ward", "er"}
	drugs   = []string{"aspirin", "heparin", "insulin", "metoprolol", "warfarin"}
	tests   = []string{"lactate", "creatinine", "hemoglobin", "sodium", "potassium", "glucose"}
	authors = []string{"dr_smith", "dr_jones", "nurse_lee", "dr_patel"}

	noteFiller = []string{
		"vitals stable overnight", "responded to treatment",
		"scheduled for imaging", "family meeting held",
		"continue current medication", "monitoring heart rhythm",
		"mild fever observed", "appetite improving",
		"pain controlled with medication", "breathing comfortably",
	}
)

// Generate builds the dataset.
func Generate(cfg Config) (*Dataset, error) {
	if cfg.Patients <= 0 || cfg.SampleRate <= 0 || cfg.WaveformSeconds <= 0 {
		return nil, fmt.Errorf("mimic: config must be positive: %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := &Dataset{Config: cfg, verySickCounts: map[int]int{}}

	ds.Patients = engine.NewRelation(engine.NewSchema(
		engine.Col("id", engine.TypeInt),
		engine.Col("name", engine.TypeString),
		engine.Col("age", engine.TypeInt),
		engine.Col("sex", engine.TypeString),
		engine.Col("race", engine.TypeString),
	))
	ds.Admissions = engine.NewRelation(engine.NewSchema(
		engine.Col("adm_id", engine.TypeInt),
		engine.Col("patient_id", engine.TypeInt),
		engine.Col("ward", engine.TypeString),
		engine.Col("days", engine.TypeFloat),
		engine.Col("drug", engine.TypeString),
	))
	ds.Labs = engine.NewRelation(engine.NewSchema(
		engine.Col("lab_id", engine.TypeInt),
		engine.Col("patient_id", engine.TypeInt),
		engine.Col("test", engine.TypeString),
		engine.Col("value", engine.TypeFloat),
	))
	ds.Prescriptions = engine.NewRelation(engine.NewSchema(
		engine.Col("rx_id", engine.TypeInt),
		engine.Col("patient_id", engine.TypeInt),
		engine.Col("drug", engine.TypeString),
		engine.Col("dose_mg", engine.TypeFloat),
	))

	admID, labID, rxID := 1000, 5000, 9000
	for id := 1; id <= cfg.Patients; id++ {
		age := 20 + rng.Intn(70)
		sex := "F"
		if rng.Intn(2) == 0 {
			sex = "M"
		}
		race := races[rng.Intn(len(races))]
		name := fmt.Sprintf("patient_%04d", id)
		_ = ds.Patients.Append(engine.Tuple{
			engine.NewInt(int64(id)), engine.NewString(name),
			engine.NewInt(int64(age)), engine.NewString(sex), engine.NewString(race),
		})

		// Admissions: 1–3 per patient. Stay duration carries the planted
		// Figure 2 signal: population-wide, race "white" stays longer
		// than race "black"; inside the ICU cohort the trend reverses.
		nAdm := 1 + rng.Intn(3)
		for a := 0; a < nAdm; a++ {
			ward := wards[rng.Intn(len(wards))]
			drug := drugs[rng.Intn(len(drugs))]
			base := 3.0 + rng.Float64()*4 // 3–7 days baseline
			switch {
			case ward == "icu" && race == "white":
				base -= 1.5 // reversal: white shorter in ICU
			case ward == "icu" && race == "black":
				base += 1.5 // reversal: black longer in ICU
			case ward != "icu" && race == "white":
				base += 1.0 // population trend: white longer overall
			case ward != "icu" && race == "black":
				base -= 1.0
			}
			if base < 0.5 {
				base = 0.5
			}
			_ = ds.Admissions.Append(engine.Tuple{
				engine.NewInt(int64(admID)), engine.NewInt(int64(id)),
				engine.NewString(ward), engine.NewFloat(base), engine.NewString(drug),
			})
			admID++
		}

		for l := 0; l < cfg.LabsPerPatient; l++ {
			test := tests[rng.Intn(len(tests))]
			_ = ds.Labs.Append(engine.Tuple{
				engine.NewInt(int64(labID)), engine.NewInt(int64(id)),
				engine.NewString(test), engine.NewFloat(1 + rng.Float64()*10),
			})
			labID++
		}

		nRx := 1 + rng.Intn(3)
		for r := 0; r < nRx; r++ {
			_ = ds.Prescriptions.Append(engine.Tuple{
				engine.NewInt(int64(rxID)), engine.NewInt(int64(id)),
				engine.NewString(drugs[rng.Intn(len(drugs))]),
				engine.NewFloat(float64(5 * (1 + rng.Intn(20)))),
			})
			rxID++
		}

		// Notes: ~20% of patients are flagged "very sick" and accumulate
		// the phrase across several notes, enabling the text-analysis
		// demo query ("at least three reports saying 'very sick'").
		verySick := rng.Float64() < 0.2
		for s := 0; s < cfg.NotesPerPatient; s++ {
			var sb strings.Builder
			sb.WriteString(noteFiller[rng.Intn(len(noteFiller))])
			sb.WriteString(". ")
			sb.WriteString(noteFiller[rng.Intn(len(noteFiller))])
			if verySick && s < 3 {
				sb.WriteString(". patient remains very sick")
				ds.verySickCounts[id]++
			}
			sb.WriteString(".")
			ds.Notes = append(ds.Notes, Note{
				PatientID: id, Seq: s,
				Author: authors[rng.Intn(len(authors))],
				Text:   sb.String(),
			})
		}
	}
	return ds, nil
}

// VerySickCount returns the number of notes for the patient containing
// the planted "very sick" phrase — ground truth for text-search tests.
func (ds *Dataset) VerySickCount(patientID int) int { return ds.verySickCounts[patientID] }

// VerySickPatients returns the IDs with at least minNotes planted notes.
func (ds *Dataset) VerySickPatients(minNotes int) []int {
	var out []int
	for id, n := range ds.verySickCounts {
		if n >= minNotes {
			out = append(out, id)
		}
	}
	sortInts(out)
	return out
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// HeartRateHz returns the patient's deterministic resting heart rate in
// Hz (beats/second), in the 1.0–1.5 range (60–90 bpm).
func HeartRateHz(seed int64, patientID int) float64 {
	h := seed*1099511628211 + int64(patientID)*40503
	frac := float64((h>>16)&0xffff) / 65536
	return 1.0 + 0.5*frac
}

// Waveform synthesises n samples of an ECG-like signal for a patient
// starting at sample offset start: a fundamental at the patient's heart
// rate plus harmonics and deterministic noise. If anomaly is true, an
// arrhythmia burst (amplitude surge + frequency wobble) is injected —
// the event the real-time monitor must detect.
func Waveform(seed int64, patientID int, start, n int, sampleRate int, anomaly bool) []float64 {
	hr := HeartRateHz(seed, patientID)
	out := make([]float64, n)
	rng := rand.New(rand.NewSource(seed ^ int64(patientID)<<20 ^ int64(start)))
	for i := 0; i < n; i++ {
		t := float64(start+i) / float64(sampleRate)
		v := math.Sin(2*math.Pi*hr*t) +
			0.5*math.Sin(2*math.Pi*2*hr*t+0.3) +
			0.25*math.Sin(2*math.Pi*3*hr*t+0.7)
		v += 0.05 * (rng.Float64()*2 - 1)
		if anomaly {
			// Burst: tripled amplitude with chaotic frequency content.
			v = 3*v + math.Sin(2*math.Pi*7.3*hr*t)
		}
		out[i] = v
	}
	return out
}

// ReferenceWaveform returns the patient's clean reference profile (no
// noise, no anomaly) used by the monitoring workflow that "compares the
// incoming waveforms to reference ones".
func ReferenceWaveform(seed int64, patientID int, start, n int, sampleRate int) []float64 {
	hr := HeartRateHz(seed, patientID)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		t := float64(start+i) / float64(sampleRate)
		out[i] = math.Sin(2*math.Pi*hr*t) +
			0.5*math.Sin(2*math.Pi*2*hr*t+0.3) +
			0.25*math.Sin(2*math.Pi*3*hr*t+0.7)
	}
	return out
}
