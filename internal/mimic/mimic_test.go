package mimic

import (
	"math"
	"testing"

	"repro/internal/analytics"
	"repro/internal/engine"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Patients = 50
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Patients.Len() != b.Patients.Len() || a.Admissions.Len() != b.Admissions.Len() {
		t.Fatal("same seed should give same cardinalities")
	}
	for i := range a.Patients.Tuples {
		for j := range a.Patients.Tuples[i] {
			if !engine.Equal(a.Patients.Tuples[i][j], b.Patients.Tuples[i][j]) {
				t.Fatalf("patient row %d differs", i)
			}
		}
	}
	if len(a.Notes) != len(b.Notes) || a.Notes[3].Text != b.Notes[3].Text {
		t.Error("notes differ across runs")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{}); err == nil {
		t.Error("zero config should fail")
	}
}

func TestCardinalities(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Patients = 100
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Patients.Len() != 100 {
		t.Errorf("patients: %d", ds.Patients.Len())
	}
	if n := ds.Admissions.Len(); n < 100 || n > 300 {
		t.Errorf("admissions: %d", n)
	}
	if ds.Labs.Len() != 100*cfg.LabsPerPatient {
		t.Errorf("labs: %d", ds.Labs.Len())
	}
	if len(ds.Notes) != 100*cfg.NotesPerPatient {
		t.Errorf("notes: %d", len(ds.Notes))
	}
}

func TestPlantedSeeDBSignal(t *testing.T) {
	// The Figure 2 signal: among ICU admissions mean stay for white <
	// black; outside the ICU the trend reverses.
	cfg := DefaultConfig()
	cfg.Patients = 400
	ds, _ := Generate(cfg)
	raceIdx := 4
	pid := ds.Patients.Schema.Index("id")
	raceOf := map[int64]string{}
	for _, p := range ds.Patients.Tuples {
		raceOf[p[pid].I] = p[raceIdx].S
	}
	var icuW, icuB, otherW, otherB []float64
	for _, a := range ds.Admissions.Tuples {
		race := raceOf[a[1].I]
		days := a[3].F
		icu := a[2].S == "icu"
		switch {
		case icu && race == "white":
			icuW = append(icuW, days)
		case icu && race == "black":
			icuB = append(icuB, days)
		case !icu && race == "white":
			otherW = append(otherW, days)
		case !icu && race == "black":
			otherB = append(otherB, days)
		}
	}
	if analytics.Mean(icuW) >= analytics.Mean(icuB) {
		t.Errorf("ICU: white %.2f should be < black %.2f", analytics.Mean(icuW), analytics.Mean(icuB))
	}
	if analytics.Mean(otherW) <= analytics.Mean(otherB) {
		t.Errorf("non-ICU: white %.2f should be > black %.2f", analytics.Mean(otherW), analytics.Mean(otherB))
	}
}

func TestVerySickGroundTruth(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Patients = 200
	ds, _ := Generate(cfg)
	sick := ds.VerySickPatients(3)
	if len(sick) == 0 {
		t.Fatal("no very-sick patients planted")
	}
	// ~20% of 200 = ~40.
	if len(sick) < 10 || len(sick) > 100 {
		t.Errorf("planted cohort size %d looks wrong", len(sick))
	}
	// Ground truth matches the note text.
	counts := map[int]int{}
	for _, n := range ds.Notes {
		if contains(n.Text, "very sick") {
			counts[n.PatientID]++
		}
	}
	for _, id := range sick {
		if counts[id] < 3 {
			t.Errorf("patient %d flagged but only %d notes contain the phrase", id, counts[id])
		}
	}
	if ds.VerySickCount(sick[0]) < 3 {
		t.Errorf("VerySickCount(%d) = %d", sick[0], ds.VerySickCount(sick[0]))
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
outer:
	for i := 0; i+len(sub) <= len(s); i++ {
		for j := 0; j < len(sub); j++ {
			if s[i+j] != sub[j] {
				continue outer
			}
		}
		return i
	}
	return -1
}

func TestWaveformProperties(t *testing.T) {
	const rate = 125
	w := Waveform(1, 42, 0, rate*4, rate, false)
	if len(w) != rate*4 {
		t.Fatalf("length %d", len(w))
	}
	// Deterministic.
	w2 := Waveform(1, 42, 0, rate*4, rate, false)
	for i := range w {
		if w[i] != w2[i] {
			t.Fatal("waveform not deterministic")
		}
	}
	// Dominant frequency equals the patient's heart rate.
	_, hz := analytics.DominantFrequency(w, rate)
	hr := HeartRateHz(1, 42)
	if math.Abs(hz-hr) > 0.3 {
		t.Errorf("dominant frequency %.2f Hz, heart rate %.2f Hz", hz, hr)
	}
	// Heart rate in the 60–90 bpm band.
	if hr < 1.0 || hr > 1.5 {
		t.Errorf("heart rate %v out of band", hr)
	}
}

func TestAnomalyDetectable(t *testing.T) {
	const rate, n = 125, 500
	normal := Waveform(1, 7, 0, n, rate, false)
	anomalous := Waveform(1, 7, 0, n, rate, true)
	ref := ReferenceWaveform(1, 7, 0, n, rate)
	dNormal, err := analytics.NormalizedRMSE(normal, ref)
	if err != nil {
		t.Fatal(err)
	}
	dAnom, err := analytics.NormalizedRMSE(anomalous, ref)
	if err != nil {
		t.Fatal(err)
	}
	if dNormal > 0.2 {
		t.Errorf("normal waveform too far from reference: %v", dNormal)
	}
	if dAnom < 5*dNormal {
		t.Errorf("anomaly not separable: normal %v vs anomalous %v", dNormal, dAnom)
	}
}

func TestWaveformContinuity(t *testing.T) {
	// Chunked generation must agree with one-shot generation on the
	// deterministic (noise-free) reference component.
	const rate = 125
	full := ReferenceWaveform(1, 9, 0, 2*rate, rate)
	first := ReferenceWaveform(1, 9, 0, rate, rate)
	second := ReferenceWaveform(1, 9, rate, rate, rate)
	for i := 0; i < rate; i++ {
		if full[i] != first[i] || full[rate+i] != second[i] {
			t.Fatal("chunked reference waveform diverges")
		}
	}
}
