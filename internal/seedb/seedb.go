// Package seedb implements BigDAWG's first exploratory-analysis system
// (§2.2 of the paper): SeeDB computes aggregate views — GROUP BY
// queries over every (dimension, measure, aggregate) combination — for
// a target subset of the data and for the rest of it, ranks the views
// by a deviation-based utility (how differently the target behaves),
// and returns the top k as recommended visualisations. To stay
// interactive on large data it processes rows in phases over a shuffled
// sample and prunes views whose confidence interval cannot reach the
// top k, computing only survivors on the full data.
package seedb

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/engine"
	"repro/internal/relational"
)

// Agg names the aggregate function of a view.
type Agg string

// Supported view aggregates.
const (
	AggAvg   Agg = "avg"
	AggSum   Agg = "sum"
	AggCount Agg = "count"
)

// View is one candidate visualisation: measure aggregated per dimension
// value, compared between the target subset and the reference (rest).
type View struct {
	Dim     string
	Measure string
	Agg     Agg
}

// String renders the view like "avg(days) by race".
func (v View) String() string { return fmt.Sprintf("%s(%s) by %s", v.Agg, v.Measure, v.Dim) }

// Result is one ranked view.
type Result struct {
	View    View
	Utility float64
	// Target and Reference hold the per-dimension-value aggregates that
	// a front end would render as the two bar series of Figure 2.
	Target    map[string]float64
	Reference map[string]float64
}

// Stats reports the work done, contrasting exhaustive and pruned runs.
type Stats struct {
	ViewsConsidered int
	ViewsPruned     int
	RowsProcessed   int64
	Phases          int
}

// Options tunes Explore.
type Options struct {
	// K is the number of views to return (default 5).
	K int
	// Prune enables phased sampling + confidence-interval pruning; when
	// false every view is computed exhaustively.
	Prune bool
	// Phases is the number of pruning rounds (default 8).
	Phases int
	// SampleFraction is the fraction of rows used during the pruning
	// phases (default 0.25); survivors are recomputed on all rows.
	SampleFraction float64
	// Seed drives the sampling shuffle.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.K <= 0 {
		o.K = 5
	}
	if o.Phases <= 0 {
		o.Phases = 8
	}
	if o.SampleFraction <= 0 || o.SampleFraction > 1 {
		o.SampleFraction = 0.25
	}
	return o
}

// viewState accumulates one view's grouped aggregates incrementally.
type viewState struct {
	view   View
	dimIdx int
	mIdx   int
	target groupAgg
	ref    groupAgg
	pruned bool
}

type groupAgg struct {
	sum   map[string]float64
	count map[string]int64
}

func newGroupAgg() groupAgg {
	return groupAgg{sum: map[string]float64{}, count: map[string]int64{}}
}

func (g groupAgg) add(key string, v float64) {
	g.sum[key] += v
	g.count[key]++
}

// value materialises the aggregate for one group.
func (g groupAgg) value(agg Agg, key string) float64 {
	switch agg {
	case AggSum:
		return g.sum[key]
	case AggCount:
		return float64(g.count[key])
	default: // avg
		if g.count[key] == 0 {
			return 0
		}
		return g.sum[key] / float64(g.count[key])
	}
}

// utility computes the deviation-based utility: the L2 distance between
// the normalised aggregate distributions of target and reference — the
// metric SeeDB's paper calls its "foremost" utility.
func (s *viewState) utility() float64 {
	keys := map[string]bool{}
	for k := range s.target.count {
		keys[k] = true
	}
	for k := range s.ref.count {
		keys[k] = true
	}
	if len(keys) < 2 {
		return 0 // a single bar cannot deviate interestingly
	}
	var tVec, rVec []float64
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		tVec = append(tVec, s.target.value(s.view.Agg, k))
		rVec = append(rVec, s.ref.value(s.view.Agg, k))
	}
	normalize(tVec)
	normalize(rVec)
	d := 0.0
	for i := range tVec {
		diff := tVec[i] - rVec[i]
		d += diff * diff
	}
	return math.Sqrt(d)
}

func normalize(v []float64) {
	s := 0.0
	for _, x := range v {
		s += math.Abs(x)
	}
	if s == 0 {
		return
	}
	for i := range v {
		v[i] /= s
	}
}

// Explore ranks aggregate views of rel. targetPred is a SQL predicate
// defining the analysed subset (e.g. "ward = 'icu'"); the reference is
// every other row. dims are categorical columns, measures numeric ones.
func Explore(rel *engine.Relation, targetPred string, dims, measures []string, aggs []Agg, opts Options) ([]Result, Stats, error) {
	opts = opts.withDefaults()
	var stats Stats
	if len(dims) == 0 || len(measures) == 0 || len(aggs) == 0 {
		return nil, stats, fmt.Errorf("seedb: need dims, measures and aggs")
	}
	pred, err := relational.CompileRowExpr(targetPred, rel.Schema.Columns)
	if err != nil {
		return nil, stats, err
	}

	// Build the view lattice.
	var views []*viewState
	for _, d := range dims {
		di, err := rel.Schema.MustIndex(d)
		if err != nil {
			return nil, stats, err
		}
		for _, m := range measures {
			mi, err := rel.Schema.MustIndex(m)
			if err != nil {
				return nil, stats, err
			}
			if strings.EqualFold(d, m) {
				continue
			}
			for _, a := range aggs {
				views = append(views, &viewState{
					view:   View{Dim: d, Measure: m, Agg: a},
					dimIdx: di, mIdx: mi,
					target: newGroupAgg(), ref: newGroupAgg(),
				})
			}
		}
	}
	stats.ViewsConsidered = len(views)

	// Precompute target membership once.
	inTarget := make([]bool, rel.Len())
	for i, t := range rel.Tuples {
		v, err := pred(t)
		if err != nil {
			return nil, stats, err
		}
		inTarget[i] = !v.IsNull() && v.AsBool()
	}

	if opts.Prune {
		if err := prunePhases(rel, views, inTarget, opts, &stats); err != nil {
			return nil, stats, err
		}
		// Reset survivors and recompute exactly on the full data.
		for _, vs := range views {
			if !vs.pruned {
				vs.target = newGroupAgg()
				vs.ref = newGroupAgg()
			}
		}
	}
	for i, t := range rel.Tuples {
		stats.RowsProcessed++
		for _, vs := range views {
			if vs.pruned {
				continue
			}
			key := t[vs.dimIdx].String()
			val := t[vs.mIdx].AsFloat()
			if math.IsNaN(val) {
				continue
			}
			if inTarget[i] {
				vs.target.add(key, val)
			} else {
				vs.ref.add(key, val)
			}
		}
	}

	var results []Result
	for _, vs := range views {
		if vs.pruned {
			continue
		}
		res := Result{View: vs.view, Utility: vs.utility(),
			Target: map[string]float64{}, Reference: map[string]float64{}}
		for k := range vs.target.count {
			res.Target[k] = vs.target.value(vs.view.Agg, k)
		}
		for k := range vs.ref.count {
			res.Reference[k] = vs.ref.value(vs.view.Agg, k)
		}
		results = append(results, res)
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Utility != results[j].Utility {
			return results[i].Utility > results[j].Utility
		}
		return results[i].View.String() < results[j].View.String()
	})
	if len(results) > opts.K {
		results = results[:opts.K]
	}
	return results, stats, nil
}

// prunePhases runs the sampling phases, marking hopeless views pruned.
// The confidence radius shrinks as more of the sample is consumed
// (Hoeffding-style 1/√n), and a view is pruned when its upper bound
// falls below the K-th best lower bound.
func prunePhases(rel *engine.Relation, views []*viewState, inTarget []bool, opts Options, stats *Stats) error {
	n := rel.Len()
	sampleN := int(float64(n) * opts.SampleFraction)
	if sampleN < opts.Phases {
		return nil // too little data to bother pruning
	}
	order := rand.New(rand.NewSource(opts.Seed)).Perm(n)[:sampleN]
	perPhase := sampleN / opts.Phases
	processed := 0
	for phase := 0; phase < opts.Phases; phase++ {
		stats.Phases++
		end := processed + perPhase
		if phase == opts.Phases-1 {
			end = sampleN
		}
		for _, idx := range order[processed:end] {
			stats.RowsProcessed++
			t := rel.Tuples[idx]
			for _, vs := range views {
				if vs.pruned {
					continue
				}
				key := t[vs.dimIdx].String()
				val := t[vs.mIdx].AsFloat()
				if math.IsNaN(val) {
					continue
				}
				if inTarget[idx] {
					vs.target.add(key, val)
				} else {
					vs.ref.add(key, val)
				}
			}
		}
		processed = end

		// Utilities live in [0, √2]; the radius follows Hoeffding decay.
		radius := math.Sqrt2 * math.Sqrt(math.Log(float64(2*opts.Phases))/
			(2*float64(processed)/float64(perPhase)))
		type bound struct {
			vs *viewState
			u  float64
		}
		var bounds []bound
		for _, vs := range views {
			if !vs.pruned {
				bounds = append(bounds, bound{vs, vs.utility()})
			}
		}
		if len(bounds) <= opts.K {
			break // nothing left to prune
		}
		sort.Slice(bounds, func(i, j int) bool { return bounds[i].u > bounds[j].u })
		kthLower := bounds[opts.K-1].u - radius
		for _, b := range bounds[opts.K:] {
			if b.u+radius < kthLower {
				b.vs.pruned = true
				stats.ViewsPruned++
			}
		}
	}
	return nil
}
