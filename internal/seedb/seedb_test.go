package seedb

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/mimic"
)

// admissionsWithRace joins the mimic admissions with patient race into
// one flat relation, the input SeeDB explores in the demo.
func admissionsWithRace(t *testing.T, patients int) *engine.Relation {
	t.Helper()
	cfg := mimic.DefaultConfig()
	cfg.Patients = patients
	ds, err := mimic.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	raceOf := map[int64]string{}
	sexOf := map[int64]string{}
	idIdx := ds.Patients.Schema.Index("id")
	raceIdx := ds.Patients.Schema.Index("race")
	sexIdx := ds.Patients.Schema.Index("sex")
	for _, p := range ds.Patients.Tuples {
		raceOf[p[idIdx].I] = p[raceIdx].S
		sexOf[p[idIdx].I] = p[sexIdx].S
	}
	rel := engine.NewRelation(engine.NewSchema(
		engine.Col("ward", engine.TypeString),
		engine.Col("race", engine.TypeString),
		engine.Col("sex", engine.TypeString),
		engine.Col("drug", engine.TypeString),
		engine.Col("days", engine.TypeFloat),
	))
	for _, a := range ds.Admissions.Tuples {
		pid := a[1].I
		_ = rel.Append(engine.Tuple{
			a[2], engine.NewString(raceOf[pid]), engine.NewString(sexOf[pid]), a[4], a[3],
		})
	}
	return rel
}

func defaultViews() ([]string, []string, []Agg) {
	return []string{"race", "sex", "drug"}, []string{"days"}, []Agg{AggAvg, AggCount}
}

func TestExploreValidation(t *testing.T) {
	rel := admissionsWithRace(t, 20)
	if _, _, err := Explore(rel, "ward = 'icu'", nil, []string{"days"}, []Agg{AggAvg}, Options{}); err == nil {
		t.Error("no dims should fail")
	}
	if _, _, err := Explore(rel, "bogus (", []string{"race"}, []string{"days"}, []Agg{AggAvg}, Options{}); err == nil {
		t.Error("bad predicate should fail")
	}
	if _, _, err := Explore(rel, "ward = 'icu'", []string{"nope"}, []string{"days"}, []Agg{AggAvg}, Options{}); err == nil {
		t.Error("unknown dim should fail")
	}
}

func TestFigure2RaceViewRanksTop(t *testing.T) {
	// The planted signal: within the ICU cohort the race↔stay-duration
	// relationship reverses the population trend, so avg(days) by race
	// must be the top view (Figure 2 of the paper).
	rel := admissionsWithRace(t, 400)
	dims, measures, aggs := defaultViews()
	results, stats, err := Explore(rel, "ward = 'icu'", dims, measures, aggs, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no views returned")
	}
	top := results[0]
	if top.View.Dim != "race" || top.View.Agg != AggAvg {
		t.Errorf("top view = %v (utility %.3f), want avg(days) by race", top.View, top.Utility)
	}
	// The reversal itself: in-target white < black, reference white > black.
	if top.Target["white"] >= top.Target["black"] {
		t.Errorf("target: white %.2f should be < black %.2f", top.Target["white"], top.Target["black"])
	}
	if top.Reference["white"] <= top.Reference["black"] {
		t.Errorf("reference: white %.2f should be > black %.2f", top.Reference["white"], top.Reference["black"])
	}
	if stats.ViewsConsidered != 6 { // 3 dims × 1 measure × 2 aggs
		t.Errorf("views considered: %d", stats.ViewsConsidered)
	}
}

func TestPruningPreservesTopView(t *testing.T) {
	rel := admissionsWithRace(t, 400)
	dims, measures, aggs := defaultViews()
	full, fullStats, err := Explore(rel, "ward = 'icu'", dims, measures, aggs, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	pruned, prunedStats, err := Explore(rel, "ward = 'icu'", dims, measures, aggs,
		Options{K: 3, Prune: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if full[0].View != pruned[0].View {
		t.Errorf("pruned top view %v != exhaustive %v", pruned[0].View, full[0].View)
	}
	// Utilities of survivors match exactly (they are recomputed fully).
	if full[0].Utility != pruned[0].Utility {
		t.Errorf("utility mismatch: %v vs %v", full[0].Utility, pruned[0].Utility)
	}
	if prunedStats.Phases == 0 {
		t.Error("pruning ran no phases")
	}
	_ = fullStats
}

func TestPruningReducesWorkWhenViewsPruned(t *testing.T) {
	rel := admissionsWithRace(t, 400)
	// Wider lattice so there is something to prune.
	dims := []string{"race", "sex", "drug", "ward"}
	measures := []string{"days"}
	aggs := []Agg{AggAvg, AggSum, AggCount}
	full, fullStats, err := Explore(rel, "drug = 'aspirin'", dims, measures, aggs, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	pruned, prunedStats, err := Explore(rel, "drug = 'aspirin'", dims, measures, aggs,
		Options{K: 1, Prune: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if full[0].View != pruned[0].View {
		t.Errorf("top view diverged: %v vs %v", pruned[0].View, full[0].View)
	}
	if prunedStats.ViewsPruned > 0 && prunedStats.RowsProcessed >= fullStats.RowsProcessed*2 {
		t.Errorf("pruning did not pay for itself: %d rows vs %d",
			prunedStats.RowsProcessed, fullStats.RowsProcessed)
	}
}

func TestDegenerateTarget(t *testing.T) {
	rel := admissionsWithRace(t, 50)
	dims, measures, aggs := defaultViews()
	// Empty target: utilities are all well-defined (0 deviation is fine).
	results, _, err := Explore(rel, "ward = 'no_such_ward'", dims, measures, aggs, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Utility < 0 {
			t.Errorf("negative utility: %v", r)
		}
	}
}

func TestViewString(t *testing.T) {
	v := View{Dim: "race", Measure: "days", Agg: AggAvg}
	if v.String() != "avg(days) by race" {
		t.Errorf("View.String() = %q", v.String())
	}
}
