package trace

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestDisabledNilSafety proves every Span method is a no-op on the nil
// span an untraced context yields.
func TestDisabledNilSafety(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := Start(ctx, "query")
	if sp != nil {
		t.Fatal("Start on an untraced context returned a span")
	}
	if ctx2 != ctx {
		t.Fatal("Start on an untraced context derived a new context")
	}
	if Enabled(ctx) {
		t.Fatal("Enabled reported true on an untraced context")
	}
	// All nil-safe:
	sp.SetInt("k", 1)
	sp.SetStr("k", "v")
	sp.End()
	//lint:ignore spanend exercising the nil-span path: StartChild must return nil
	if c := sp.StartChild("child"); c != nil {
		t.Fatal("StartChild on nil span returned a span")
	}
	if sp.Name() != "" || sp.Duration() != 0 || sp.Attrs() != nil || sp.Children() != nil {
		t.Fatal("nil span accessors returned non-zero values")
	}
	if sp.Find("x") != nil || sp.Trace() != nil {
		t.Fatal("nil span Find/Trace returned non-nil")
	}
	if got := sp.String(); !strings.Contains(got, "disabled") {
		t.Fatalf("nil span render = %q", got)
	}
	if sp.Trace().OpenSpans() != 0 {
		t.Fatal("nil trace OpenSpans != 0")
	}
}

// TestDisabledZeroAlloc pins the allocation budget of the disabled
// path: an instrumentation site — Start, annotate, End — must allocate
// nothing when the context is untraced. This is the tracing analogue of
// the disarmed-failpoint proof: production queries that never ask for a
// trace pay a context lookup and nothing else.
func TestDisabledZeroAlloc(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		ctx2, sp := Start(ctx, "cast")
		sp.SetInt("wire_bytes", 1234)
		sp.SetStr("object", "patients")
		child := sp.StartChild("encode")
		child.End()
		sp.End()
		_ = ctx2
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocates %.1f per span site, want 0", allocs)
	}
}

func TestSpanTree(t *testing.T) {
	ctx, root := New(context.Background(), "trace")
	ctx, q := Start(ctx, "query")
	q.SetStr("island", "RELATIONAL")
	_, parse := Start(ctx, "parse")
	parse.End()
	_, cast := Start(ctx, "cast")
	cast.SetInt("wire_bytes", 4096)
	enc := cast.StartChild("encode")
	dec := cast.StartChild("decode")
	enc.End()
	dec.End()
	cast.End()
	q.End()
	if root.Trace().OpenSpans() != 1 {
		t.Fatalf("OpenSpans = %d before root end, want 1", root.Trace().OpenSpans())
	}
	root.End()
	if root.Trace().OpenSpans() != 0 {
		t.Fatalf("OpenSpans = %d after root end, want 0", root.Trace().OpenSpans())
	}

	if got := root.Find("decode"); got == nil {
		t.Fatal("Find(decode) = nil")
	}
	if a, ok := root.Find("cast").Attr("wire_bytes"); !ok || a.Int != 4096 {
		t.Fatalf("cast wire_bytes attr = %+v ok=%v", a, ok)
	}
	if n := len(root.FindAll("encode")); n != 1 {
		t.Fatalf("FindAll(encode) = %d, want 1", n)
	}

	out := root.String()
	for _, want := range []string{"query", "parse", "cast", "encode", "decode",
		"island=RELATIONAL", "wire_bytes=4096", "├─", "└─"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestEndIdempotent(t *testing.T) {
	_, root := New(context.Background(), "t")
	sp := root.StartChild("x")
	sp.End()
	d := sp.Duration()
	time.Sleep(2 * time.Millisecond)
	sp.End()
	if sp.Duration() != d {
		t.Fatal("second End changed the duration")
	}
	root.End()
	root.End()
	if root.Trace().OpenSpans() != 0 {
		t.Fatalf("OpenSpans = %d after double End, want 0", root.Trace().OpenSpans())
	}
}

// TestConcurrentChildren exercises the transport shape: goroutines
// opening, annotating and ending children of one span concurrently
// (run under -race in CI).
func TestConcurrentChildren(t *testing.T) {
	_, root := New(context.Background(), "t")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := root.StartChild("worker")
			sp.SetInt("n", 1)
			sp.End()
		}()
	}
	wg.Wait()
	root.End()
	if got := len(root.Children()); got != 16 {
		t.Fatalf("children = %d, want 16", got)
	}
	if root.Trace().OpenSpans() != 0 {
		t.Fatalf("OpenSpans = %d, want 0", root.Trace().OpenSpans())
	}
}

// TestOpenSpanRenders ensures an unclosed span is visible in a render —
// the debugging aid when a test reports orphans.
func TestOpenSpanRenders(t *testing.T) {
	_, root := New(context.Background(), "t")
	//lint:ignore spanend the open-span "(open)" marker is what this test renders
	root.StartChild("leaked")
	out := root.String()
	if !strings.Contains(out, "leaked  (open)") {
		t.Fatalf("open span not marked in render:\n%s", out)
	}
}
