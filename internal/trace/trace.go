// Package trace implements query tracing for the polystore: a tree of
// timed spans — parse, plan, per-cast migrate (with encode/wire/decode
// sub-spans), engine execute, retry attempts, staged commit and
// rollback — carried on the context.Context that already runs through
// QueryCtx/CastCtx/MigrateCtx/LoadCtx.
//
// Tracing is opt-in per call: a context holds a span only after
// trace.New, so production queries that never ask for a trace pay one
// context.Value lookup per instrumentation site and nothing else. The
// disabled path allocates nothing — Start returns the context unchanged
// and a nil *Span, and every Span method is nil-safe — which is pinned
// by TestTracingDisabledZeroAlloc and the --obs benchmark pair, the
// same proof shape as the disarmed-failpoint benchmarks.
//
// Enabled, the span tree renders as an EXPLAIN ANALYZE-style report
// (Render) and its open-span accounting (Trace.OpenSpans) lets tests
// assert that cancellation closes every span — no orphans.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"context"
)

// spanKey carries the current *Span on a context.
type spanKey struct{}

// Trace owns one span tree and its bookkeeping. All mutation goes
// through its mutex: spans may be opened and ended from the transport
// goroutines a cast spawns, concurrently with the query goroutine.
type Trace struct {
	mu   sync.Mutex
	root *Span
	open int
}

// Span is one timed region of a traced query. The zero value is never
// used; a nil *Span is the disabled trace and every method no-ops on
// it.
type Span struct {
	tr       *Trace
	name     string
	start    time.Time
	dur      time.Duration
	ended    bool
	attrs    []Attr
	children []*Span
}

// Attr is one key=value annotation on a span (wire bytes, row counts,
// pushdown decisions). Values are int64 or string; IsInt selects.
type Attr struct {
	Key   string
	Str   string
	Int   int64
	IsInt bool
}

// New enables tracing on ctx: it creates a Trace with a root span and
// returns the derived context plus the root. The caller ends the root
// (usually after the traced call returns) and renders or inspects the
// tree.
func New(ctx context.Context, name string) (context.Context, *Span) {
	tr := &Trace{}
	root := &Span{tr: tr, name: name, start: time.Now()}
	tr.root = root
	tr.open = 1
	return context.WithValue(ctx, spanKey{}, root), root
}

// FromContext returns the context's current span, or nil when the
// context is untraced.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// Enabled reports whether ctx carries a trace.
func Enabled(ctx context.Context) bool { return FromContext(ctx) != nil }

// Start opens a child span of the context's current span and returns a
// derived context carrying it. On an untraced context it returns ctx
// unchanged and a nil span — no allocation, no bookkeeping.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(spanKey{}).(*Span)
	if parent == nil {
		return ctx, nil
	}
	sp := parent.StartChild(name)
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// StartChild opens a child span directly under sp — the form the cast
// transport goroutines use, where a derived context would be
// inconvenient. Nil-safe: a nil receiver returns nil.
func (sp *Span) StartChild(name string) *Span {
	if sp == nil {
		return nil
	}
	child := &Span{tr: sp.tr, name: name, start: time.Now()}
	sp.tr.mu.Lock()
	sp.children = append(sp.children, child)
	sp.tr.open++
	sp.tr.mu.Unlock()
	return child
}

// End closes the span, fixing its duration. Idempotent and nil-safe.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.tr.mu.Lock()
	if !sp.ended {
		sp.ended = true
		sp.dur = time.Since(sp.start)
		sp.tr.open--
	}
	sp.tr.mu.Unlock()
}

// SetInt annotates the span with an integer attribute. Nil-safe.
func (sp *Span) SetInt(key string, v int64) {
	if sp == nil {
		return
	}
	sp.tr.mu.Lock()
	sp.attrs = append(sp.attrs, Attr{Key: key, Int: v, IsInt: true})
	sp.tr.mu.Unlock()
}

// SetStr annotates the span with a string attribute. Nil-safe.
func (sp *Span) SetStr(key, v string) {
	if sp == nil {
		return
	}
	sp.tr.mu.Lock()
	sp.attrs = append(sp.attrs, Attr{Key: key, Str: v})
	sp.tr.mu.Unlock()
}

// Name returns the span's name ("" on nil).
func (sp *Span) Name() string {
	if sp == nil {
		return ""
	}
	return sp.name
}

// Duration returns the span's duration (zero until ended; the live
// elapsed time is not exposed to keep reads race-free).
func (sp *Span) Duration() time.Duration {
	if sp == nil {
		return 0
	}
	sp.tr.mu.Lock()
	defer sp.tr.mu.Unlock()
	return sp.dur
}

// Attrs returns a copy of the span's attributes. Nil-safe.
func (sp *Span) Attrs() []Attr {
	if sp == nil {
		return nil
	}
	sp.tr.mu.Lock()
	defer sp.tr.mu.Unlock()
	return append([]Attr(nil), sp.attrs...)
}

// Attr looks up the last attribute with the given key; ok=false when
// absent. Nil-safe.
func (sp *Span) Attr(key string) (Attr, bool) {
	if sp == nil {
		return Attr{}, false
	}
	sp.tr.mu.Lock()
	defer sp.tr.mu.Unlock()
	for i := len(sp.attrs) - 1; i >= 0; i-- {
		if sp.attrs[i].Key == key {
			return sp.attrs[i], true
		}
	}
	return Attr{}, false
}

// Children returns a copy of the span's child list. Nil-safe.
func (sp *Span) Children() []*Span {
	if sp == nil {
		return nil
	}
	sp.tr.mu.Lock()
	defer sp.tr.mu.Unlock()
	return append([]*Span(nil), sp.children...)
}

// Trace returns the owning trace (nil on nil).
func (sp *Span) Trace() *Trace {
	if sp == nil {
		return nil
	}
	return sp.tr
}

// OpenSpans reports how many spans are currently open — 0 once every
// Start/StartChild has been matched by End. Tests pin this to prove
// cancellation leaves no orphan spans.
func (tr *Trace) OpenSpans() int {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.open
}

// Walk visits sp and its descendants depth-first. Nil-safe.
func (sp *Span) Walk(fn func(*Span, int)) {
	sp.walk(fn, 0)
}

func (sp *Span) walk(fn func(*Span, int), depth int) {
	if sp == nil {
		return
	}
	fn(sp, depth)
	for _, c := range sp.Children() {
		c.walk(fn, depth+1)
	}
}

// Find returns the first span named name in sp's subtree (depth-first),
// or nil. Nil-safe.
func (sp *Span) Find(name string) *Span {
	var found *Span
	sp.Walk(func(s *Span, _ int) {
		if found == nil && s.Name() == name {
			found = s
		}
	})
	return found
}

// FindAll returns every span named name in sp's subtree, depth-first.
func (sp *Span) FindAll(name string) []*Span {
	var out []*Span
	sp.Walk(func(s *Span, _ int) {
		if s.Name() == name {
			out = append(out, s)
		}
	})
	return out
}

// Render writes the span tree rooted at sp as an EXPLAIN ANALYZE-style
// report: one line per span with its duration and attributes, box-drawn
// child connectors. Durations round to µs below 10ms and to 10µs above,
// so reports stay readable without hiding cheap stages.
func (sp *Span) Render(w io.Writer) {
	if sp == nil {
		fmt.Fprintln(w, "(tracing disabled)")
		return
	}
	renderSpan(w, sp, "", "")
}

// String renders the tree into a string.
func (sp *Span) String() string {
	var sb strings.Builder
	sp.Render(&sb)
	return sb.String()
}

func renderSpan(w io.Writer, sp *Span, firstPrefix, restPrefix string) {
	sp.tr.mu.Lock()
	name := sp.name
	dur := sp.dur
	ended := sp.ended
	attrs := append([]Attr(nil), sp.attrs...)
	children := append([]*Span(nil), sp.children...)
	sp.tr.mu.Unlock()

	line := firstPrefix + name
	if ended {
		line += "  " + formatDur(dur)
	} else {
		line += "  (open)"
	}
	for _, a := range attrs {
		if a.IsInt {
			line += fmt.Sprintf("  %s=%d", a.Key, a.Int)
		} else {
			line += fmt.Sprintf("  %s=%s", a.Key, quoteIfNeeded(a.Str))
		}
	}
	fmt.Fprintln(w, line)
	for i, c := range children {
		if i == len(children)-1 {
			renderSpan(w, c, restPrefix+"└─ ", restPrefix+"   ")
		} else {
			renderSpan(w, c, restPrefix+"├─ ", restPrefix+"│  ")
		}
	}
}

func quoteIfNeeded(s string) string {
	if strings.ContainsAny(s, " \t") {
		return "'" + s + "'"
	}
	return s
}

func formatDur(d time.Duration) string {
	switch {
	case d < 10*time.Millisecond:
		return d.Round(time.Microsecond).String()
	case d < time.Second:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Millisecond).String()
	}
}

// SortedAttrs returns the span's attributes sorted by key — stable
// rendering for tests that diff reports.
func (sp *Span) SortedAttrs() []Attr {
	attrs := sp.Attrs()
	sort.SliceStable(attrs, func(i, j int) bool { return attrs[i].Key < attrs[j].Key })
	return attrs
}
