package relational

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/engine"
)

// Expression utilities used by the polystore's cross-island pushdown
// planner: rendering an Expr back to parseable SQL text (the common
// predicate dialect every island's filter operator speaks via
// CompileRowExpr), splitting predicates into AND-conjuncts, rewriting
// away table qualifiers, and walking column references.

// FormatExpr renders e as SQL text that ParseExpression parses back to
// an equivalent expression. Operands are fully parenthesised, so the
// output never depends on precedence.
func FormatExpr(e Expr) string {
	var sb strings.Builder
	formatExpr(&sb, e)
	return sb.String()
}

func formatExpr(sb *strings.Builder, e Expr) {
	switch ex := e.(type) {
	case nil:
		sb.WriteString("NULL")
	case Literal:
		formatLiteral(sb, ex.Val)
	case ColumnRef:
		if ex.Table != "" {
			sb.WriteString(ex.Table)
			sb.WriteByte('.')
		}
		sb.WriteString(ex.Name)
	case BinaryExpr:
		sb.WriteByte('(')
		formatExpr(sb, ex.Left)
		sb.WriteByte(' ')
		sb.WriteString(ex.Op)
		sb.WriteByte(' ')
		formatExpr(sb, ex.Right)
		sb.WriteByte(')')
	case UnaryExpr:
		if ex.Op == "NOT" {
			sb.WriteString("(NOT ")
		} else {
			sb.WriteString("(" + ex.Op)
		}
		formatExpr(sb, ex.Expr)
		sb.WriteByte(')')
	case FuncCall:
		sb.WriteString(ex.Name)
		sb.WriteByte('(')
		if ex.Distinct {
			sb.WriteString("DISTINCT ")
		}
		if ex.Star {
			sb.WriteByte('*')
		}
		for i, a := range ex.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			formatExpr(sb, a)
		}
		sb.WriteByte(')')
	case InExpr:
		sb.WriteByte('(')
		formatExpr(sb, ex.Expr)
		if ex.Not {
			sb.WriteString(" NOT")
		}
		sb.WriteString(" IN (")
		for i, a := range ex.List {
			if i > 0 {
				sb.WriteString(", ")
			}
			formatExpr(sb, a)
		}
		sb.WriteString("))")
	case IsNullExpr:
		sb.WriteByte('(')
		formatExpr(sb, ex.Expr)
		sb.WriteString(" IS ")
		if ex.Not {
			sb.WriteString("NOT ")
		}
		sb.WriteString("NULL)")
	case BetweenExpr:
		sb.WriteByte('(')
		formatExpr(sb, ex.Expr)
		if ex.Not {
			sb.WriteString(" NOT")
		}
		sb.WriteString(" BETWEEN ")
		formatExpr(sb, ex.Lo)
		sb.WriteString(" AND ")
		formatExpr(sb, ex.Hi)
		sb.WriteByte(')')
	default:
		fmt.Fprintf(sb, "%#v", e)
	}
}

func formatLiteral(sb *strings.Builder, v engine.Value) {
	switch v.Kind {
	case engine.TypeNull:
		sb.WriteString("NULL")
	case engine.TypeInt:
		sb.WriteString(strconv.FormatInt(v.I, 10))
	case engine.TypeFloat:
		// NaN/Inf have no literal syntax; they also cannot be produced by
		// the parser, so this path only defends direct AST construction.
		if math.IsNaN(v.F) || math.IsInf(v.F, 0) {
			sb.WriteString("NULL")
			return
		}
		s := strconv.FormatFloat(v.F, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0" // keep the literal FLOAT-kinded on reparse
		}
		sb.WriteString(s)
	case engine.TypeString:
		sb.WriteByte('\'')
		sb.WriteString(strings.ReplaceAll(v.S, "'", "''"))
		sb.WriteByte('\'')
	case engine.TypeBool:
		if v.B {
			sb.WriteString("TRUE")
		} else {
			sb.WriteString("FALSE")
		}
	default:
		sb.WriteString("NULL")
	}
}

// SplitConjuncts flattens nested top-level ANDs into the list of
// conjuncts; a non-AND expression returns as a single conjunct.
func SplitConjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if be, ok := e.(BinaryExpr); ok && be.Op == "AND" {
		return append(SplitConjuncts(be.Left), SplitConjuncts(be.Right)...)
	}
	return []Expr{e}
}

// StripQualifiers returns a copy of e with every column reference's
// table qualifier removed, for evaluation against an unqualified schema
// (a source engine's own column list).
func StripQualifiers(e Expr) Expr {
	switch ex := e.(type) {
	case ColumnRef:
		return ColumnRef{Name: ex.Name}
	case BinaryExpr:
		return BinaryExpr{Op: ex.Op, Left: StripQualifiers(ex.Left), Right: StripQualifiers(ex.Right)}
	case UnaryExpr:
		return UnaryExpr{Op: ex.Op, Expr: StripQualifiers(ex.Expr)}
	case FuncCall:
		args := make([]Expr, len(ex.Args))
		for i, a := range ex.Args {
			args[i] = StripQualifiers(a)
		}
		return FuncCall{Name: ex.Name, Args: args, Star: ex.Star, Distinct: ex.Distinct}
	case InExpr:
		list := make([]Expr, len(ex.List))
		for i, a := range ex.List {
			list[i] = StripQualifiers(a)
		}
		return InExpr{Expr: StripQualifiers(ex.Expr), List: list, Not: ex.Not}
	case IsNullExpr:
		return IsNullExpr{Expr: StripQualifiers(ex.Expr), Not: ex.Not}
	case BetweenExpr:
		return BetweenExpr{Expr: StripQualifiers(ex.Expr), Lo: StripQualifiers(ex.Lo), Hi: StripQualifiers(ex.Hi), Not: ex.Not}
	default:
		return e
	}
}

// WalkColumnRefs calls fn for every column reference in e.
func WalkColumnRefs(e Expr, fn func(ColumnRef)) {
	switch ex := e.(type) {
	case ColumnRef:
		fn(ex)
	case BinaryExpr:
		WalkColumnRefs(ex.Left, fn)
		WalkColumnRefs(ex.Right, fn)
	case UnaryExpr:
		WalkColumnRefs(ex.Expr, fn)
	case FuncCall:
		for _, a := range ex.Args {
			WalkColumnRefs(a, fn)
		}
	case InExpr:
		WalkColumnRefs(ex.Expr, fn)
		for _, a := range ex.List {
			WalkColumnRefs(a, fn)
		}
	case IsNullExpr:
		WalkColumnRefs(ex.Expr, fn)
	case BetweenExpr:
		WalkColumnRefs(ex.Expr, fn)
		WalkColumnRefs(ex.Lo, fn)
		WalkColumnRefs(ex.Hi, fn)
	}
}

// HasAggregate reports whether the expression contains an aggregate
// function call (which a per-row pushdown predicate can never contain).
func HasAggregate(e Expr) bool { return hasAggregate(e) }

// ItemName reports the output column name the executor derives for a
// projection item: the alias if present, a bare column reference's own
// name, else the expression's canonical key. Scatter-gather uses it to
// restore baseline column names on merged shard results.
func ItemName(item SelectItem) string {
	if item.Alias != "" {
		return item.Alias
	}
	if cr, ok := item.Expr.(ColumnRef); ok {
		return cr.Name
	}
	return exprKey(item.Expr)
}
