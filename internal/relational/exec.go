package relational

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/engine"
)

// Execute parses and runs one SQL statement. DML statements return a
// single-row relation reporting affected row counts; SELECT returns its
// result set.
func (db *DB) Execute(sql string) (*engine.Relation, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	switch s := stmt.(type) {
	case CreateTable:
		if err := db.CreateTable(s.Name, s.Schema, s.PrimaryKey); err != nil {
			return nil, err
		}
		return statusRelation("created", 0), nil
	case CreateIndex:
		db.mu.Lock()
		defer db.mu.Unlock()
		t, err := db.table(s.Table)
		if err != nil {
			return nil, err
		}
		if err := t.addIndex(s.Column); err != nil {
			return nil, err
		}
		return statusRelation("indexed", 0), nil
	case DropTable:
		if err := db.DropTable(s.Name); err != nil {
			return nil, err
		}
		return statusRelation("dropped", 0), nil
	case Insert:
		n, err := db.executeInsert(s)
		if err != nil {
			return nil, err
		}
		return statusRelation("inserted", n), nil
	case Update:
		n, err := db.executeUpdate(s)
		if err != nil {
			return nil, err
		}
		return statusRelation("updated", n), nil
	case Delete:
		n, err := db.executeDelete(s)
		if err != nil {
			return nil, err
		}
		return statusRelation("deleted", n), nil
	case *Select:
		return db.ExecuteSelect(s)
	default:
		return nil, fmt.Errorf("relational: unhandled statement %T", stmt)
	}
}

// Query is Execute restricted to SELECT, for island use.
func (db *DB) Query(sql string) (*engine.Relation, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*Select)
	if !ok {
		return nil, fmt.Errorf("relational: Query requires SELECT, got %T", stmt)
	}
	return db.ExecuteSelect(sel)
}

func statusRelation(op string, n int) *engine.Relation {
	rel := engine.NewRelation(engine.NewSchema(engine.Col("status", engine.TypeString), engine.Col("rows", engine.TypeInt)))
	_ = rel.Append(engine.Tuple{engine.NewString(op), engine.NewInt(int64(n))})
	return rel
}

func (db *DB) executeInsert(s Insert) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.table(s.Table)
	if err != nil {
		return 0, err
	}
	colIdx := make([]int, len(s.Columns))
	for i, c := range s.Columns {
		ci := t.Schema.Index(c)
		if ci < 0 {
			return 0, fmt.Errorf("relational: %s: no column %q", s.Table, c)
		}
		colIdx[i] = ci
	}
	n := 0
	for _, exprRow := range s.Rows {
		row := make(engine.Tuple, len(t.Schema.Columns))
		for i := range row {
			row[i] = engine.Null
		}
		if len(s.Columns) == 0 {
			if len(exprRow) != len(row) {
				return n, fmt.Errorf("relational: %s: VALUES arity %d != %d", s.Table, len(exprRow), len(row))
			}
			for i, e := range exprRow {
				v, err := evalConst(e)
				if err != nil {
					return n, err
				}
				row[i] = v
			}
		} else {
			if len(exprRow) != len(s.Columns) {
				return n, fmt.Errorf("relational: %s: VALUES arity %d != column list %d", s.Table, len(exprRow), len(s.Columns))
			}
			for i, e := range exprRow {
				v, err := evalConst(e)
				if err != nil {
					return n, err
				}
				row[colIdx[i]] = v
			}
		}
		if err := t.insert(row); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// evalConst evaluates an expression with no row context (literals and
// arithmetic over them).
func evalConst(e Expr) (engine.Value, error) {
	ev, err := compileExpr(e, nil, nil)
	if err != nil {
		return engine.Null, err
	}
	return ev(nil)
}

func (db *DB) executeUpdate(s Update) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.table(s.Table)
	if err != nil {
		return 0, err
	}
	rs := baseRowSchema(t.Name, t.Schema)
	var where evaluator
	if s.Where != nil {
		where, err = compileExpr(s.Where, rs, nil)
		if err != nil {
			return 0, err
		}
	}
	type setOp struct {
		col  int
		eval evaluator
	}
	var sets []setOp
	for col, e := range s.Set {
		ci := t.Schema.Index(col)
		if ci < 0 {
			return 0, fmt.Errorf("relational: %s: no column %q", s.Table, col)
		}
		ev, err := compileExpr(e, rs, nil)
		if err != nil {
			return 0, err
		}
		sets = append(sets, setOp{ci, ev})
	}
	sort.Slice(sets, func(i, j int) bool { return sets[i].col < sets[j].col })
	n := 0
	// Collect matching slots first so SET expressions see pre-update values.
	var slots []int
	err = t.scan(func(slot int, row engine.Tuple) error {
		db.stats.RowsScanned++
		if where != nil {
			v, err := where(row)
			if err != nil {
				return err
			}
			if v.IsNull() || !v.AsBool() {
				return nil
			}
		}
		slots = append(slots, slot)
		return nil
	})
	if err != nil {
		return 0, err
	}
	for _, slot := range slots {
		row := t.rows[slot]
		newRow := row.Clone()
		for _, op := range sets {
			v, err := op.eval(row)
			if err != nil {
				return n, err
			}
			newRow[op.col] = v
		}
		// Re-insert through delete+insert to keep indexes coherent.
		t.deleteSlot(slot)
		if err := t.insert(newRow); err != nil {
			return n, err
		}
		n++
	}
	db.stats.Queries++
	return n, nil
}

func (db *DB) executeDelete(s Delete) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.table(s.Table)
	if err != nil {
		return 0, err
	}
	rs := baseRowSchema(t.Name, t.Schema)
	var where evaluator
	if s.Where != nil {
		where, err = compileExpr(s.Where, rs, nil)
		if err != nil {
			return 0, err
		}
	}
	var slots []int
	err = t.scan(func(slot int, row engine.Tuple) error {
		db.stats.RowsScanned++
		if where != nil {
			v, err := where(row)
			if err != nil {
				return err
			}
			if v.IsNull() || !v.AsBool() {
				return nil
			}
		}
		slots = append(slots, slot)
		return nil
	})
	if err != nil {
		return 0, err
	}
	for _, slot := range slots {
		t.deleteSlot(slot)
	}
	db.stats.Queries++
	return len(slots), nil
}

// ExecuteSelect runs a parsed SELECT.
func (db *DB) ExecuteSelect(s *Select) (*engine.Relation, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	db.stats.Queries++

	// 1. Build the working row set (FROM + JOINs), or a single empty row
	// for table-less SELECTs.
	var rows []engine.Tuple
	var rs rowSchema
	if s.From == nil {
		rows = []engine.Tuple{{}}
	} else {
		base, err := db.table(s.From.Name)
		if err != nil {
			return nil, err
		}
		alias := s.From.Alias
		if alias == "" {
			alias = base.Name
		}
		rs = baseRowSchema(alias, base.Schema)
		rows, err = db.scanBase(base, rs, s)
		if err != nil {
			return nil, err
		}
		for _, j := range s.Joins {
			jt, err := db.table(j.Table.Name)
			if err != nil {
				return nil, err
			}
			jalias := j.Table.Alias
			if jalias == "" {
				jalias = jt.Name
			}
			rows, rs, err = db.executeJoin(rows, rs, jt, jalias, j)
			if err != nil {
				return nil, err
			}
		}
	}

	// 2. WHERE.
	if s.Where != nil {
		where, err := compileExpr(s.Where, rs, nil)
		if err != nil {
			return nil, err
		}
		kept := rows[:0]
		for _, row := range rows {
			v, err := where(row)
			if err != nil {
				return nil, err
			}
			if !v.IsNull() && v.AsBool() {
				kept = append(kept, row)
			}
		}
		rows = kept
	}

	// 3. Grouped vs plain projection.
	grouped := len(s.GroupBy) > 0
	if !grouped {
		for _, item := range s.Items {
			if !item.Star && hasAggregate(item.Expr) {
				grouped = true // implicit single group, e.g. SELECT COUNT(*) FROM t
				break
			}
		}
	}
	if grouped && s.Having == nil && len(s.GroupBy) == 0 {
		// fine: single-group aggregation
	}
	var out *engine.Relation
	var err error
	if grouped {
		out, err = db.projectGrouped(s, rows, rs)
	} else {
		out, err = db.projectPlain(s, rows, rs)
	}
	if err != nil {
		return nil, err
	}

	// 4. DISTINCT.
	if s.Distinct {
		seen := map[string]bool{}
		kept := out.Tuples[:0]
		for _, t := range out.Tuples {
			k := tupleKey(t[:len(out.Schema.Columns)])
			if !seen[k] {
				seen[k] = true
				kept = append(kept, t)
			}
		}
		out.Tuples = kept
	}

	// 5. ORDER BY (hidden sort columns appended by projection).
	nOut := len(out.Schema.Columns)
	if len(s.OrderBy) > 0 {
		descs := make([]bool, len(s.OrderBy))
		for i, o := range s.OrderBy {
			descs[i] = o.Desc
		}
		sort.SliceStable(out.Tuples, func(i, j int) bool {
			a, b := out.Tuples[i], out.Tuples[j]
			for k := range s.OrderBy {
				cmp := engine.Compare(a[nOut+k], b[nOut+k])
				if cmp != 0 {
					if descs[k] {
						return cmp > 0
					}
					return cmp < 0
				}
			}
			return false
		})
	}
	// Strip hidden sort columns.
	if len(s.OrderBy) > 0 {
		for i, t := range out.Tuples {
			out.Tuples[i] = t[:nOut]
		}
	}

	// 6. OFFSET/LIMIT.
	if s.Offset > 0 {
		if s.Offset >= len(out.Tuples) {
			out.Tuples = nil
		} else {
			out.Tuples = out.Tuples[s.Offset:]
		}
	}
	if s.Limit >= 0 && s.Limit < len(out.Tuples) {
		out.Tuples = out.Tuples[:s.Limit]
	}
	return out, nil
}

// scanBase reads the base table, using an index when WHERE contains a
// top-level equality between an indexed column and a literal.
func (db *DB) scanBase(t *Table, rs rowSchema, s *Select) ([]engine.Tuple, error) {
	if len(s.Joins) == 0 && s.Where != nil {
		if ci, v, ok := indexableEquality(s.Where, rs, t); ok {
			if slots, hit := t.lookup(ci, v); hit {
				rows := make([]engine.Tuple, 0, len(slots))
				for _, slot := range slots {
					if !t.deleted[slot] {
						rows = append(rows, t.rows[slot])
					}
				}
				db.stats.RowsScanned += int64(len(rows))
				return rows, nil
			}
		}
	}
	rows := make([]engine.Tuple, 0, t.live)
	_ = t.scan(func(_ int, row engine.Tuple) error {
		rows = append(rows, row)
		return nil
	})
	db.stats.RowsScanned += int64(len(rows))
	return rows, nil
}

// indexableEquality detects `col = literal` (or literal = col) at the
// top level or on either side of an AND, where col has an index.
func indexableEquality(e Expr, rs rowSchema, t *Table) (ci int, v engine.Value, ok bool) {
	be, isBin := e.(BinaryExpr)
	if !isBin {
		return 0, engine.Null, false
	}
	if be.Op == "AND" {
		if ci, v, ok = indexableEquality(be.Left, rs, t); ok {
			return ci, v, true
		}
		return indexableEquality(be.Right, rs, t)
	}
	if be.Op != "=" {
		return 0, engine.Null, false
	}
	col, lit := be.Left, be.Right
	if _, isCol := col.(ColumnRef); !isCol {
		col, lit = be.Right, be.Left
	}
	cr, isCol := col.(ColumnRef)
	l, isLit := lit.(Literal)
	if !isCol || !isLit {
		return 0, engine.Null, false
	}
	idx, err := rs.resolve(cr.Table, cr.Name)
	if err != nil {
		return 0, engine.Null, false
	}
	// Working schema position == table column position for base scans.
	if idx == t.PKCol {
		return idx, l.Val, true
	}
	if _, hasIdx := t.secondary[idx]; hasIdx {
		return idx, l.Val, true
	}
	return 0, engine.Null, false
}

// executeJoin joins the accumulated working rows with table jt.
func (db *DB) executeJoin(left []engine.Tuple, leftRS rowSchema, jt *Table, jalias string, j Join) ([]engine.Tuple, rowSchema, error) {
	rightRS := baseRowSchema(jalias, jt.Schema)
	combined := append(append(rowSchema{}, leftRS...), rightRS...)

	var rightRows []engine.Tuple
	_ = jt.scan(func(_ int, row engine.Tuple) error {
		rightRows = append(rightRows, row)
		return nil
	})
	db.stats.RowsScanned += int64(len(rightRows))

	if j.Kind == JoinCross {
		out := make([]engine.Tuple, 0, len(left)*len(rightRows))
		for _, l := range left {
			for _, r := range rightRows {
				out = append(out, concatTuples(l, r))
			}
		}
		return out, combined, nil
	}

	// Hash join when ON is an equality between a left column and a right
	// column; otherwise nested loop.
	if lIdx, rIdx, ok := equiJoinCols(j.On, leftRS, rightRS); ok {
		build := make(map[string][]engine.Tuple, len(rightRows))
		for _, r := range rightRows {
			k := valueKey(r[rIdx])
			build[k] = append(build[k], r)
		}
		out := make([]engine.Tuple, 0, len(left))
		nullRight := nullTuple(len(rightRS))
		for _, l := range left {
			matches := build[valueKey(l[lIdx])]
			// NULL join keys never match.
			if l[lIdx].IsNull() {
				matches = nil
			}
			if len(matches) == 0 {
				if j.Kind == JoinLeft {
					out = append(out, concatTuples(l, nullRight))
				}
				continue
			}
			for _, r := range matches {
				out = append(out, concatTuples(l, r))
			}
		}
		return out, combined, nil
	}

	on, err := compileExpr(j.On, combined, nil)
	if err != nil {
		return nil, nil, err
	}
	out := make([]engine.Tuple, 0, len(left))
	nullRight := nullTuple(len(rightRS))
	for _, l := range left {
		matched := false
		for _, r := range rightRows {
			row := concatTuples(l, r)
			v, err := on(row)
			if err != nil {
				return nil, nil, err
			}
			if !v.IsNull() && v.AsBool() {
				out = append(out, row)
				matched = true
			}
		}
		if !matched && j.Kind == JoinLeft {
			out = append(out, concatTuples(l, nullRight))
		}
	}
	return out, combined, nil
}

// equiJoinCols recognises ON a.x = b.y with one side in each schema.
func equiJoinCols(on Expr, leftRS, rightRS rowSchema) (lIdx, rIdx int, ok bool) {
	be, isBin := on.(BinaryExpr)
	if !isBin || be.Op != "=" {
		return 0, 0, false
	}
	lc, lok := be.Left.(ColumnRef)
	rc, rok := be.Right.(ColumnRef)
	if !lok || !rok {
		return 0, 0, false
	}
	if li, err := leftRS.resolve(lc.Table, lc.Name); err == nil {
		if ri, err := rightRS.resolve(rc.Table, rc.Name); err == nil {
			return li, ri, true
		}
	}
	if li, err := leftRS.resolve(rc.Table, rc.Name); err == nil {
		if ri, err := rightRS.resolve(lc.Table, lc.Name); err == nil {
			return li, ri, true
		}
	}
	return 0, 0, false
}

func concatTuples(a, b engine.Tuple) engine.Tuple {
	out := make(engine.Tuple, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

func nullTuple(n int) engine.Tuple {
	t := make(engine.Tuple, n)
	for i := range t {
		t[i] = engine.Null
	}
	return t
}

// expandItems resolves "*" items into explicit column refs and derives
// output names.
func expandItems(items []SelectItem, rs rowSchema) ([]Expr, []string, error) {
	var exprs []Expr
	var names []string
	for _, item := range items {
		if item.Star {
			table := strings.ToLower(item.Table)
			found := false
			for _, c := range rs {
				if table != "" && c.Table != table {
					continue
				}
				exprs = append(exprs, ColumnRef{Table: c.Table, Name: c.Name})
				names = append(names, c.Name)
				found = true
			}
			if !found {
				return nil, nil, fmt.Errorf("relational: %s.* matches no columns", item.Table)
			}
			continue
		}
		exprs = append(exprs, item.Expr)
		name := item.Alias
		if name == "" {
			if cr, ok := item.Expr.(ColumnRef); ok {
				name = cr.Name
			} else {
				name = exprKey(item.Expr)
			}
		}
		names = append(names, name)
	}
	return exprs, names, nil
}

// projectPlain projects ungrouped rows. Hidden ORDER BY columns are
// appended after the visible ones.
func (db *DB) projectPlain(s *Select, rows []engine.Tuple, rs rowSchema) (*engine.Relation, error) {
	exprs, names, err := expandItems(s.Items, rs)
	if err != nil {
		return nil, err
	}
	evals := make([]evaluator, len(exprs))
	for i, e := range exprs {
		evals[i], err = compileExpr(e, rs, nil)
		if err != nil {
			return nil, err
		}
	}
	orderEvals, err := compileOrderBy(s.OrderBy, rs, exprs, names, nil)
	if err != nil {
		return nil, err
	}
	schema := outputSchema(names, exprs, rs)
	out := engine.NewRelation(schema)
	out.Tuples = make([]engine.Tuple, 0, len(rows))
	width := len(evals) + len(orderEvals)
	for _, row := range rows {
		t := make(engine.Tuple, 0, width)
		for _, ev := range evals {
			v, err := ev(row)
			if err != nil {
				return nil, err
			}
			t = append(t, v)
		}
		for _, ev := range orderEvals {
			v, err := ev(t, row)
			if err != nil {
				return nil, err
			}
			t = append(t, v)
		}
		out.Tuples = append(out.Tuples, t)
	}
	return out, nil
}

// orderEval evaluates an ORDER BY expression given the already-projected
// visible values (for alias references) and the source row.
type orderEval func(projected engine.Tuple, row engine.Tuple) (engine.Value, error)

func compileOrderBy(items []OrderItem, rs rowSchema, outExprs []Expr, outNames []string,
	aggLookup func(string, engine.Tuple) (engine.Value, bool)) ([]orderEval, error) {
	evals := make([]orderEval, 0, len(items))
	for _, o := range items {
		// Positional: ORDER BY 2.
		if lit, ok := o.Expr.(Literal); ok && lit.Val.Kind == engine.TypeInt {
			pos := int(lit.Val.I) - 1
			if pos < 0 || pos >= len(outExprs) {
				return nil, fmt.Errorf("relational: ORDER BY position %d out of range", pos+1)
			}
			evals = append(evals, func(projected, _ engine.Tuple) (engine.Value, error) {
				return projected[pos], nil
			})
			continue
		}
		// Alias reference: ORDER BY aliasName.
		if cr, ok := o.Expr.(ColumnRef); ok && cr.Table == "" {
			matched := -1
			for i, n := range outNames {
				if strings.EqualFold(n, cr.Name) {
					matched = i
					break
				}
			}
			// Prefer alias match when the name is not a source column, or
			// when it exactly names an output column.
			if matched >= 0 {
				if _, err := rs.resolve("", cr.Name); err != nil {
					pos := matched
					evals = append(evals, func(projected, _ engine.Tuple) (engine.Value, error) {
						return projected[pos], nil
					})
					continue
				}
				// Name exists both as alias and source column; alias wins
				// only if it aliases that same column.
				if crOut, ok := outExprs[matched].(ColumnRef); ok && strings.EqualFold(crOut.Name, cr.Name) {
					pos := matched
					evals = append(evals, func(projected, _ engine.Tuple) (engine.Value, error) {
						return projected[pos], nil
					})
					continue
				}
			}
		}
		ev, err := compileExpr(o.Expr, rs, aggLookup)
		if err != nil {
			return nil, err
		}
		evals = append(evals, func(_, row engine.Tuple) (engine.Value, error) { return ev(row) })
	}
	return evals, nil
}

// outputSchema infers output column types from expressions where
// possible, defaulting to FLOAT for computed values.
func outputSchema(names []string, exprs []Expr, rs rowSchema) engine.Schema {
	cols := make([]engine.Column, len(names))
	for i := range names {
		cols[i] = engine.Col(names[i], inferExprType(exprs[i], rs))
	}
	return engine.Schema{Columns: cols}
}

func inferExprType(e Expr, rs rowSchema) engine.Type {
	switch ex := e.(type) {
	case Literal:
		return ex.Val.Kind
	case ColumnRef:
		if idx, err := rs.resolve(ex.Table, ex.Name); err == nil {
			return rs[idx].Type
		}
	case FuncCall:
		switch ex.Name {
		case "COUNT", "LENGTH":
			return engine.TypeInt
		case "LOWER", "UPPER", "SUBSTR", "SUBSTRING", "CONCAT":
			return engine.TypeString
		case "MIN", "MAX", "SUM":
			if len(ex.Args) == 1 {
				return inferExprType(ex.Args[0], rs)
			}
		}
		return engine.TypeFloat
	case BinaryExpr:
		switch ex.Op {
		case "AND", "OR", "=", "<>", "<", "<=", ">", ">=", "LIKE":
			return engine.TypeBool
		case "||":
			return engine.TypeString
		default:
			lt := inferExprType(ex.Left, rs)
			rt := inferExprType(ex.Right, rs)
			if lt == engine.TypeInt && rt == engine.TypeInt && ex.Op != "/" {
				return engine.TypeInt
			}
			return engine.TypeFloat
		}
	case UnaryExpr:
		if ex.Op == "NOT" {
			return engine.TypeBool
		}
		return inferExprType(ex.Expr, rs)
	case InExpr, IsNullExpr, BetweenExpr:
		return engine.TypeBool
	}
	return engine.TypeFloat
}

// aggState accumulates one aggregate over one group.
type aggState struct {
	fn       string
	count    int64
	sum      float64
	sumSq    float64
	min, max engine.Value
	distinct map[string]bool
	hasVal   bool
}

func newAggState(fc FuncCall) *aggState {
	st := &aggState{fn: fc.Name}
	if fc.Distinct {
		st.distinct = map[string]bool{}
	}
	return st
}

func (st *aggState) add(v engine.Value) {
	if v.IsNull() {
		return
	}
	if st.distinct != nil {
		k := valueKey(v)
		if st.distinct[k] {
			return
		}
		st.distinct[k] = true
	}
	st.count++
	f := v.AsFloat()
	st.sum += f
	st.sumSq += f * f
	if !st.hasVal {
		st.min, st.max = v, v
		st.hasVal = true
	} else {
		if engine.Compare(v, st.min) < 0 {
			st.min = v
		}
		if engine.Compare(v, st.max) > 0 {
			st.max = v
		}
	}
}

func (st *aggState) result() engine.Value {
	switch st.fn {
	case "COUNT":
		return engine.NewInt(st.count)
	case "SUM":
		if st.count == 0 {
			return engine.Null
		}
		if st.sum == math.Trunc(st.sum) && st.min.Kind == engine.TypeInt && st.max.Kind == engine.TypeInt {
			return engine.NewInt(int64(st.sum))
		}
		return engine.NewFloat(st.sum)
	case "AVG":
		if st.count == 0 {
			return engine.Null
		}
		return engine.NewFloat(st.sum / float64(st.count))
	case "MIN":
		if !st.hasVal {
			return engine.Null
		}
		return st.min
	case "MAX":
		if !st.hasVal {
			return engine.Null
		}
		return st.max
	case "STDDEV":
		if st.count < 2 {
			return engine.Null
		}
		n := float64(st.count)
		variance := (st.sumSq - st.sum*st.sum/n) / (n - 1)
		if variance < 0 {
			variance = 0
		}
		return engine.NewFloat(math.Sqrt(variance))
	default:
		return engine.Null
	}
}

// projectGrouped handles GROUP BY / aggregate projection.
func (db *DB) projectGrouped(s *Select, rows []engine.Tuple, rs rowSchema) (*engine.Relation, error) {
	exprs, names, err := expandItems(s.Items, rs)
	if err != nil {
		return nil, err
	}

	// Collect every aggregate appearing anywhere in the query.
	all := make([]Expr, 0, len(exprs)+2)
	all = append(all, exprs...)
	if s.Having != nil {
		all = append(all, s.Having)
	}
	for _, o := range s.OrderBy {
		all = append(all, o.Expr)
	}
	aggCalls := collectAggregates(all)
	aggKeys := make([]string, len(aggCalls))
	aggArgEvals := make([]evaluator, len(aggCalls))
	for i, fc := range aggCalls {
		aggKeys[i] = exprKey(fc)
		if fc.Star {
			aggArgEvals[i] = nil // COUNT(*)
		} else {
			if len(fc.Args) != 1 {
				return nil, fmt.Errorf("relational: %s expects 1 argument", fc.Name)
			}
			ev, err := compileExpr(fc.Args[0], rs, nil)
			if err != nil {
				return nil, err
			}
			aggArgEvals[i] = ev
		}
	}

	groupEvals := make([]evaluator, len(s.GroupBy))
	for i, g := range s.GroupBy {
		// GROUP BY may reference an output alias.
		resolved := g
		if cr, ok := g.(ColumnRef); ok && cr.Table == "" {
			if _, err := rs.resolve("", cr.Name); err != nil {
				for j, n := range names {
					if strings.EqualFold(n, cr.Name) {
						resolved = exprs[j]
						break
					}
				}
			}
		}
		ev, err := compileExpr(resolved, rs, nil)
		if err != nil {
			return nil, err
		}
		groupEvals[i] = ev
	}

	type group struct {
		firstRow engine.Tuple
		aggs     []*aggState
	}
	groups := map[string]*group{}
	var order []string
	for _, row := range rows {
		var kb strings.Builder
		for _, ge := range groupEvals {
			v, err := ge(row)
			if err != nil {
				return nil, err
			}
			kb.WriteString(valueKey(v))
			kb.WriteByte('\x1f')
		}
		k := kb.String()
		g, ok := groups[k]
		if !ok {
			g = &group{firstRow: row, aggs: make([]*aggState, len(aggCalls))}
			for i, fc := range aggCalls {
				g.aggs[i] = newAggState(fc)
			}
			groups[k] = g
			order = append(order, k)
		}
		for i, st := range g.aggs {
			if aggArgEvals[i] == nil {
				st.count++ // COUNT(*)
				continue
			}
			v, err := aggArgEvals[i](row)
			if err != nil {
				return nil, err
			}
			st.add(v)
		}
	}
	// Aggregate-only query over zero rows still yields one group.
	if len(groups) == 0 && len(s.GroupBy) == 0 {
		g := &group{firstRow: nullTuple(len(rs)), aggs: make([]*aggState, len(aggCalls))}
		for i, fc := range aggCalls {
			g.aggs[i] = newAggState(fc)
		}
		groups[""] = g
		order = append(order, "")
	}

	// Compile output expressions with aggregate lookup. The lookup closes
	// over a per-row map swapped in while iterating groups.
	var currentAggs map[string]engine.Value
	aggLookup := func(key string, _ engine.Tuple) (engine.Value, bool) {
		v, ok := currentAggs[key]
		return v, ok
	}
	evals := make([]evaluator, len(exprs))
	for i, e := range exprs {
		evals[i], err = compileExpr(e, rs, aggLookup)
		if err != nil {
			return nil, err
		}
	}
	var having evaluator
	if s.Having != nil {
		having, err = compileExpr(s.Having, rs, aggLookup)
		if err != nil {
			return nil, err
		}
	}
	orderEvals, err := compileOrderBy(s.OrderBy, rs, exprs, names, aggLookup)
	if err != nil {
		return nil, err
	}

	schema := outputSchema(names, exprs, rs)
	// Aggregates get better type inference from their state.
	for i, e := range exprs {
		if fc, ok := e.(FuncCall); ok && aggregateNames[fc.Name] {
			switch fc.Name {
			case "COUNT":
				schema.Columns[i].Type = engine.TypeInt
			case "AVG", "STDDEV":
				schema.Columns[i].Type = engine.TypeFloat
			}
		}
	}
	out := engine.NewRelation(schema)
	for _, k := range order {
		g := groups[k]
		currentAggs = make(map[string]engine.Value, len(aggKeys))
		for i, key := range aggKeys {
			currentAggs[key] = g.aggs[i].result()
		}
		if having != nil {
			v, err := having(g.firstRow)
			if err != nil {
				return nil, err
			}
			if v.IsNull() || !v.AsBool() {
				continue
			}
		}
		t := make(engine.Tuple, 0, len(evals)+len(orderEvals))
		for _, ev := range evals {
			v, err := ev(g.firstRow)
			if err != nil {
				return nil, err
			}
			t = append(t, v)
		}
		for _, ev := range orderEvals {
			v, err := ev(t, g.firstRow)
			if err != nil {
				return nil, err
			}
			t = append(t, v)
		}
		out.Tuples = append(out.Tuples, t)
	}
	return out, nil
}
