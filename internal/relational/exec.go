package relational

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/engine"
)

// Execute parses and runs one SQL statement. DML statements return a
// single-row relation reporting affected row counts; SELECT returns its
// result set.
func (db *DB) Execute(sql string) (*engine.Relation, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	switch s := stmt.(type) {
	case CreateTable:
		if err := db.CreateTable(s.Name, s.Schema, s.PrimaryKey); err != nil {
			return nil, err
		}
		return statusRelation("created", 0), nil
	case CreateIndex:
		db.mu.Lock()
		defer db.mu.Unlock()
		t, err := db.table(s.Table)
		if err != nil {
			return nil, err
		}
		if err := t.addIndex(s.Column); err != nil {
			return nil, err
		}
		return statusRelation("indexed", 0), nil
	case DropTable:
		if err := db.DropTable(s.Name); err != nil {
			return nil, err
		}
		return statusRelation("dropped", 0), nil
	case Insert:
		n, err := db.executeInsert(s)
		if err != nil {
			return nil, err
		}
		return statusRelation("inserted", n), nil
	case Update:
		n, err := db.executeUpdate(s)
		if err != nil {
			return nil, err
		}
		return statusRelation("updated", n), nil
	case Delete:
		n, err := db.executeDelete(s)
		if err != nil {
			return nil, err
		}
		return statusRelation("deleted", n), nil
	case *Select:
		return db.ExecuteSelect(s)
	default:
		return nil, fmt.Errorf("relational: unhandled statement %T", stmt)
	}
}

// Query is Execute restricted to SELECT, for island use.
func (db *DB) Query(sql string) (*engine.Relation, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*Select)
	if !ok {
		return nil, fmt.Errorf("relational: Query requires SELECT, got %T", stmt)
	}
	return db.ExecuteSelect(sel)
}

func statusRelation(op string, n int) *engine.Relation {
	rel := engine.NewRelation(engine.NewSchema(engine.Col("status", engine.TypeString), engine.Col("rows", engine.TypeInt)))
	_ = rel.Append(engine.Tuple{engine.NewString(op), engine.NewInt(int64(n))})
	return rel
}

func (db *DB) executeInsert(s Insert) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.table(s.Table)
	if err != nil {
		return 0, err
	}
	colIdx := make([]int, len(s.Columns))
	for i, c := range s.Columns {
		ci := t.Schema.Index(c)
		if ci < 0 {
			return 0, fmt.Errorf("relational: %s: no column %q", s.Table, c)
		}
		colIdx[i] = ci
	}
	n := 0
	for _, exprRow := range s.Rows {
		row := make(engine.Tuple, len(t.Schema.Columns))
		for i := range row {
			row[i] = engine.Null
		}
		if len(s.Columns) == 0 {
			if len(exprRow) != len(row) {
				return n, fmt.Errorf("relational: %s: VALUES arity %d != %d", s.Table, len(exprRow), len(row))
			}
			for i, e := range exprRow {
				v, err := evalConst(e)
				if err != nil {
					return n, err
				}
				row[i] = v
			}
		} else {
			if len(exprRow) != len(s.Columns) {
				return n, fmt.Errorf("relational: %s: VALUES arity %d != column list %d", s.Table, len(exprRow), len(s.Columns))
			}
			for i, e := range exprRow {
				v, err := evalConst(e)
				if err != nil {
					return n, err
				}
				row[colIdx[i]] = v
			}
		}
		if err := t.insert(row); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// evalConst evaluates an expression with no row context (literals and
// arithmetic over them).
func evalConst(e Expr) (engine.Value, error) {
	ev, err := compileExpr(e, nil, nil)
	if err != nil {
		return engine.Null, err
	}
	return ev(nil)
}

func (db *DB) executeUpdate(s Update) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.table(s.Table)
	if err != nil {
		return 0, err
	}
	rs := baseRowSchema(t.Name, t.Schema)
	var where evaluator
	if s.Where != nil {
		where, err = compileExpr(s.Where, rs, nil)
		if err != nil {
			return 0, err
		}
	}
	type setOp struct {
		col  int
		eval evaluator
	}
	var sets []setOp
	for col, e := range s.Set {
		ci := t.Schema.Index(col)
		if ci < 0 {
			return 0, fmt.Errorf("relational: %s: no column %q", s.Table, col)
		}
		ev, err := compileExpr(e, rs, nil)
		if err != nil {
			return 0, err
		}
		sets = append(sets, setOp{ci, ev})
	}
	sort.Slice(sets, func(i, j int) bool { return sets[i].col < sets[j].col })
	n := 0
	// Collect matching slots first so SET expressions see pre-update values.
	slots, err := db.collectMatchingSlots(t, rs, s.Where, where)
	if err != nil {
		return 0, err
	}
	for _, slot := range slots {
		row := t.rows[slot]
		newRow := row.Clone()
		for _, op := range sets {
			v, err := op.eval(row)
			if err != nil {
				return n, err
			}
			newRow[op.col] = v
		}
		// Re-insert through delete+insert to keep indexes coherent.
		t.deleteSlot(slot)
		if err := t.insert(newRow); err != nil {
			return n, err
		}
		n++
	}
	db.stats.queries.Add(1)
	return n, nil
}

// collectMatchingSlots returns the slots whose live rows satisfy WHERE,
// routing through an index when the predicate pins an indexed column to
// a literal — the same fast path ExecuteSelect uses, so a PK-equality
// UPDATE or DELETE no longer full-scans. The full predicate is still
// re-applied to the candidates (the equality may be one AND-branch of a
// wider condition, and secondary indexes are non-unique).
func (db *DB) collectMatchingSlots(t *Table, rs rowSchema, whereExpr Expr, where evaluator) ([]int, error) {
	if whereExpr != nil {
		if ci, v, ok := indexableEquality(whereExpr, rs, t); ok {
			if cand, hit := t.lookup(ci, v); hit {
				db.stats.rowsScanned.Add(int64(len(cand)))
				slots := make([]int, 0, len(cand))
				for _, slot := range cand {
					if t.deleted[slot] {
						continue
					}
					if where != nil {
						val, err := where(t.rows[slot])
						if err != nil {
							return nil, err
						}
						if val.IsNull() || !val.AsBool() {
							continue
						}
					}
					slots = append(slots, slot)
				}
				return slots, nil
			}
		}
	}
	var slots []int
	err := t.scan(func(slot int, row engine.Tuple) error {
		db.stats.rowsScanned.Add(1)
		if where != nil {
			v, err := where(row)
			if err != nil {
				return err
			}
			if v.IsNull() || !v.AsBool() {
				return nil
			}
		}
		slots = append(slots, slot)
		return nil
	})
	return slots, err
}

func (db *DB) executeDelete(s Delete) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.table(s.Table)
	if err != nil {
		return 0, err
	}
	rs := baseRowSchema(t.Name, t.Schema)
	var where evaluator
	if s.Where != nil {
		where, err = compileExpr(s.Where, rs, nil)
		if err != nil {
			return 0, err
		}
	}
	slots, err := db.collectMatchingSlots(t, rs, s.Where, where)
	if err != nil {
		return 0, err
	}
	for _, slot := range slots {
		t.deleteSlot(slot)
	}
	db.stats.queries.Add(1)
	return len(slots), nil
}

// rowset is the working set flowing through the SELECT pipeline:
// either a column batch plus selection vector (the vectorized executor)
// or materialised tuples (the row-at-a-time path and every fallback).
type rowset struct {
	rs     rowSchema
	batch  *engine.ColumnBatch
	sel    []int32 // selection into batch; nil = all rows
	rows   []engine.Tuple
	isRows bool
}

// selection returns the current selection vector, materialising the
// identity selection on first use.
func (w *rowset) selection() []int32 {
	if w.sel == nil {
		w.sel = identitySel(w.batch.NumRows)
	}
	return w.sel
}

// materialize converts the working set to row form; the bridge from the
// vectorized pipeline into the row-at-a-time fallback.
func (w *rowset) materialize() []engine.Tuple {
	if !w.isRows {
		if w.batch != nil {
			w.rows = materializeRows(w.batch, w.sel)
		}
		w.isRows = true
		w.batch, w.sel = nil, nil
	}
	return w.rows
}

// ExecuteSelect runs a parsed SELECT.
func (db *DB) ExecuteSelect(s *Select) (*engine.Relation, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	db.stats.queries.Add(1)

	// 1. Build the working set (FROM + JOINs), or a single empty row for
	// table-less SELECTs. Base scans come back columnar when the
	// vectorized executor is on; any stage the vectorizer cannot compile
	// materialises rows and continues on the row path.
	var ws rowset
	if s.From == nil {
		ws.rows, ws.isRows = []engine.Tuple{{}}, true
	} else {
		base, err := db.table(s.From.Name)
		if err != nil {
			return nil, err
		}
		alias := s.From.Alias
		if alias == "" {
			alias = base.Name
		}
		ws.rs = baseRowSchema(alias, base.Schema)
		db.scanBase(base, &ws, s)
		for _, j := range s.Joins {
			jt, err := db.table(j.Table.Name)
			if err != nil {
				return nil, err
			}
			jalias := j.Table.Alias
			if jalias == "" {
				jalias = jt.Name
			}
			if err := db.joinStep(&ws, jt, jalias, j); err != nil {
				return nil, err
			}
		}
	}

	// 2. WHERE.
	if s.Where != nil {
		if err := db.applyWhere(&ws, s.Where); err != nil {
			return nil, err
		}
	}

	// 3. Grouped vs plain projection.
	grouped := len(s.GroupBy) > 0
	if !grouped {
		for _, item := range s.Items {
			if !item.Star && hasAggregate(item.Expr) {
				grouped = true // implicit single group, e.g. SELECT COUNT(*) FROM t
				break
			}
		}
	}
	var out *engine.Relation
	var err error
	if grouped {
		out, err = db.projectGrouped(s, &ws)
	} else {
		out, err = db.projectPlain(s, &ws)
	}
	if err != nil {
		return nil, err
	}

	// 4. DISTINCT.
	if s.Distinct {
		seen := map[string]bool{}
		kept := out.Tuples[:0]
		for _, t := range out.Tuples {
			k := tupleKey(t[:len(out.Schema.Columns)])
			if !seen[k] {
				seen[k] = true
				kept = append(kept, t)
			}
		}
		out.Tuples = kept
	}

	// 5. ORDER BY (hidden sort columns appended by projection).
	nOut := len(out.Schema.Columns)
	if len(s.OrderBy) > 0 {
		descs := make([]bool, len(s.OrderBy))
		for i, o := range s.OrderBy {
			descs[i] = o.Desc
		}
		sort.SliceStable(out.Tuples, func(i, j int) bool {
			a, b := out.Tuples[i], out.Tuples[j]
			for k := range s.OrderBy {
				cmp := engine.Compare(a[nOut+k], b[nOut+k])
				if cmp != 0 {
					if descs[k] {
						return cmp > 0
					}
					return cmp < 0
				}
			}
			return false
		})
	}
	// Strip hidden sort columns.
	if len(s.OrderBy) > 0 {
		for i, t := range out.Tuples {
			out.Tuples[i] = t[:nOut]
		}
	}

	// 6. OFFSET/LIMIT.
	if s.Offset > 0 {
		if s.Offset >= len(out.Tuples) {
			out.Tuples = nil
		} else {
			out.Tuples = out.Tuples[s.Offset:]
		}
	}
	if s.Limit >= 0 && s.Limit < len(out.Tuples) {
		out.Tuples = out.Tuples[:s.Limit]
	}
	return out, nil
}

// scanBase reads the base table into the working set: via an index when
// WHERE pins an indexed column to a literal, else as the cached column
// batch (vectorized executor) or a row scan.
func (db *DB) scanBase(t *Table, ws *rowset, s *Select) {
	if len(s.Joins) == 0 && s.Where != nil {
		if ci, v, ok := indexableEquality(s.Where, ws.rs, t); ok {
			if slots, hit := t.lookup(ci, v); hit {
				rows := make([]engine.Tuple, 0, len(slots))
				for _, slot := range slots {
					if !t.deleted[slot] {
						rows = append(rows, t.rows[slot])
					}
				}
				db.stats.rowsScanned.Add(int64(len(rows)))
				ws.rows, ws.isRows = rows, true
				return
			}
		}
	}
	if db.vectorized {
		ws.batch = t.columnBatch()
		db.stats.rowsScanned.Add(int64(ws.batch.NumRows))
		return
	}
	rows := make([]engine.Tuple, 0, t.live)
	_ = t.scan(func(_ int, row engine.Tuple) error {
		rows = append(rows, row)
		return nil
	})
	db.stats.rowsScanned.Add(int64(len(rows)))
	ws.rows, ws.isRows = rows, true
}

// joinStep joins the working set with table jt, using the batch hash
// join when the working set is columnar and the ON clause is a typed
// equi-join; otherwise it materialises rows and uses the row join.
func (db *DB) joinStep(ws *rowset, jt *Table, jalias string, j Join) error {
	if !ws.isRows && db.vectorized && j.Kind != JoinCross && j.On != nil {
		rightRS := baseRowSchema(jalias, jt.Schema)
		if lIdx, rIdx, ok := equiJoinCols(j.On, ws.rs, rightRS); ok {
			rb := jt.columnBatch()
			combined := append(append(rowSchema{}, ws.rs...), rightRS...)
			if out, ok := vecHashJoin(ws.batch, ws.selection(), rb, lIdx, rIdx, j.Kind, combined.toSchema()); ok {
				db.stats.rowsScanned.Add(int64(rb.NumRows))
				ws.batch, ws.sel, ws.rs = out, nil, combined
				return nil
			}
		}
	}
	rows, rs, err := db.executeJoin(ws.materialize(), ws.rs, jt, jalias, j)
	if err != nil {
		return err
	}
	ws.rows, ws.rs, ws.isRows = rows, rs, true
	return nil
}

// applyWhere filters the working set, vectorized when the predicate
// compiles to a boolean kernel (partitioned across workers for large
// batches), else row-at-a-time.
func (db *DB) applyWhere(ws *rowset, where Expr) error {
	if !ws.isRows {
		vc := &vecCompiler{b: ws.batch, rs: ws.rs}
		if pred, ok := vc.compile(where); ok && pred.kind == engine.TypeBool {
			sel, err := runVecFilter(pred, ws.selection())
			if err != nil {
				return err
			}
			ws.sel = sel
			return nil
		}
	}
	rows := ws.materialize()
	ev, err := compileExpr(where, ws.rs, nil)
	if err != nil {
		return err
	}
	kept := rows[:0]
	for _, row := range rows {
		v, err := ev(row)
		if err != nil {
			return err
		}
		if !v.IsNull() && v.AsBool() {
			kept = append(kept, row)
		}
	}
	ws.rows = kept
	return nil
}

// indexableEquality detects `col = literal` (or literal = col) at the
// top level or on either side of an AND, where col has an index.
func indexableEquality(e Expr, rs rowSchema, t *Table) (ci int, v engine.Value, ok bool) {
	be, isBin := e.(BinaryExpr)
	if !isBin {
		return 0, engine.Null, false
	}
	if be.Op == "AND" {
		if ci, v, ok = indexableEquality(be.Left, rs, t); ok {
			return ci, v, true
		}
		return indexableEquality(be.Right, rs, t)
	}
	if be.Op != "=" {
		return 0, engine.Null, false
	}
	col, lit := be.Left, be.Right
	if _, isCol := col.(ColumnRef); !isCol {
		col, lit = be.Right, be.Left
	}
	cr, isCol := col.(ColumnRef)
	l, isLit := lit.(Literal)
	if !isCol || !isLit {
		return 0, engine.Null, false
	}
	idx, err := rs.resolve(cr.Table, cr.Name)
	if err != nil {
		return 0, engine.Null, false
	}
	// Working schema position == table column position for base scans.
	if idx == t.PKCol {
		return idx, l.Val, true
	}
	if _, hasIdx := t.secondary[idx]; hasIdx {
		return idx, l.Val, true
	}
	return 0, engine.Null, false
}

// executeJoin joins the accumulated working rows with table jt.
func (db *DB) executeJoin(left []engine.Tuple, leftRS rowSchema, jt *Table, jalias string, j Join) ([]engine.Tuple, rowSchema, error) {
	rightRS := baseRowSchema(jalias, jt.Schema)
	combined := append(append(rowSchema{}, leftRS...), rightRS...)

	var rightRows []engine.Tuple
	_ = jt.scan(func(_ int, row engine.Tuple) error {
		rightRows = append(rightRows, row)
		return nil
	})
	db.stats.rowsScanned.Add(int64(len(rightRows)))

	if j.Kind == JoinCross {
		out := make([]engine.Tuple, 0, len(left)*len(rightRows))
		for _, l := range left {
			for _, r := range rightRows {
				out = append(out, concatTuples(l, r))
			}
		}
		return out, combined, nil
	}

	// Hash join when ON is an equality between a left column and a right
	// column; otherwise nested loop.
	if lIdx, rIdx, ok := equiJoinCols(j.On, leftRS, rightRS); ok {
		build := make(map[string][]engine.Tuple, len(rightRows))
		for _, r := range rightRows {
			k := valueKey(r[rIdx])
			build[k] = append(build[k], r)
		}
		out := make([]engine.Tuple, 0, len(left))
		nullRight := nullTuple(len(rightRS))
		for _, l := range left {
			matches := build[valueKey(l[lIdx])]
			// NULL join keys never match.
			if l[lIdx].IsNull() {
				matches = nil
			}
			if len(matches) == 0 {
				if j.Kind == JoinLeft {
					out = append(out, concatTuples(l, nullRight))
				}
				continue
			}
			for _, r := range matches {
				out = append(out, concatTuples(l, r))
			}
		}
		return out, combined, nil
	}

	on, err := compileExpr(j.On, combined, nil)
	if err != nil {
		return nil, nil, err
	}
	out := make([]engine.Tuple, 0, len(left))
	nullRight := nullTuple(len(rightRS))
	for _, l := range left {
		matched := false
		for _, r := range rightRows {
			row := concatTuples(l, r)
			v, err := on(row)
			if err != nil {
				return nil, nil, err
			}
			if !v.IsNull() && v.AsBool() {
				out = append(out, row)
				matched = true
			}
		}
		if !matched && j.Kind == JoinLeft {
			out = append(out, concatTuples(l, nullRight))
		}
	}
	return out, combined, nil
}

// equiJoinCols recognises ON a.x = b.y with one side in each schema.
func equiJoinCols(on Expr, leftRS, rightRS rowSchema) (lIdx, rIdx int, ok bool) {
	be, isBin := on.(BinaryExpr)
	if !isBin || be.Op != "=" {
		return 0, 0, false
	}
	lc, lok := be.Left.(ColumnRef)
	rc, rok := be.Right.(ColumnRef)
	if !lok || !rok {
		return 0, 0, false
	}
	if li, err := leftRS.resolve(lc.Table, lc.Name); err == nil {
		if ri, err := rightRS.resolve(rc.Table, rc.Name); err == nil {
			return li, ri, true
		}
	}
	if li, err := leftRS.resolve(rc.Table, rc.Name); err == nil {
		if ri, err := rightRS.resolve(lc.Table, lc.Name); err == nil {
			return li, ri, true
		}
	}
	return 0, 0, false
}

func concatTuples(a, b engine.Tuple) engine.Tuple {
	out := make(engine.Tuple, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

func nullTuple(n int) engine.Tuple {
	t := make(engine.Tuple, n)
	for i := range t {
		t[i] = engine.Null
	}
	return t
}

// expandItems resolves "*" items into explicit column refs and derives
// output names.
func expandItems(items []SelectItem, rs rowSchema) ([]Expr, []string, error) {
	var exprs []Expr
	var names []string
	for _, item := range items {
		if item.Star {
			table := strings.ToLower(item.Table)
			found := false
			for _, c := range rs {
				if table != "" && c.Table != table {
					continue
				}
				exprs = append(exprs, ColumnRef{Table: c.Table, Name: c.Name})
				names = append(names, c.Name)
				found = true
			}
			if !found {
				return nil, nil, fmt.Errorf("relational: %s.* matches no columns", item.Table)
			}
			continue
		}
		exprs = append(exprs, item.Expr)
		name := item.Alias
		if name == "" {
			if cr, ok := item.Expr.(ColumnRef); ok {
				name = cr.Name
			} else {
				name = exprKey(item.Expr)
			}
		}
		names = append(names, name)
	}
	return exprs, names, nil
}

// projectPlain projects ungrouped rows. Hidden ORDER BY columns are
// appended after the visible ones.
func (db *DB) projectPlain(s *Select, ws *rowset) (*engine.Relation, error) {
	rs := ws.rs
	exprs, names, err := expandItems(s.Items, rs)
	if err != nil {
		return nil, err
	}
	// Vectorized projection: every output expression compiles to a
	// kernel and there is no ORDER BY (whose alias/positional references
	// need the row-path machinery).
	if !ws.isRows && len(s.OrderBy) == 0 {
		if rel, ok, err := projectPlainVec(exprs, names, ws); err != nil {
			return nil, err
		} else if ok {
			return rel, nil
		}
	}
	rows := ws.materialize()
	evals := make([]evaluator, len(exprs))
	for i, e := range exprs {
		evals[i], err = compileExpr(e, rs, nil)
		if err != nil {
			return nil, err
		}
	}
	orderEvals, err := compileOrderBy(s.OrderBy, rs, exprs, names, nil)
	if err != nil {
		return nil, err
	}
	schema := outputSchema(names, exprs, rs)
	out := engine.NewRelation(schema)
	out.Tuples = make([]engine.Tuple, 0, len(rows))
	width := len(evals) + len(orderEvals)
	for _, row := range rows {
		t := make(engine.Tuple, 0, width)
		for _, ev := range evals {
			v, err := ev(row)
			if err != nil {
				return nil, err
			}
			t = append(t, v)
		}
		for _, ev := range orderEvals {
			v, err := ev(t, row)
			if err != nil {
				return nil, err
			}
			t = append(t, v)
		}
		out.Tuples = append(out.Tuples, t)
	}
	return out, nil
}

// projectPlainVec evaluates the output expressions as column kernels
// over the selection and assembles the result tuples from one arena.
func projectPlainVec(exprs []Expr, names []string, ws *rowset) (*engine.Relation, bool, error) {
	vc := &vecCompiler{b: ws.batch, rs: ws.rs}
	evs := make([]vecExpr, len(exprs))
	for i, e := range exprs {
		ev, ok := vc.compile(e)
		if !ok {
			return nil, false, nil
		}
		evs[i] = ev
	}
	sel := ws.selection()
	out := engine.NewRelation(outputSchema(names, exprs, ws.rs))
	n, ncols := len(sel), len(evs)
	out.Tuples = make([]engine.Tuple, n)
	arena := make([]engine.Value, n*ncols)
	for k := range out.Tuples {
		out.Tuples[k] = engine.Tuple(arena[k*ncols : (k+1)*ncols : (k+1)*ncols])
	}
	var v vec
	for j := range evs {
		if err := evs[j].eval(sel, &v); err != nil {
			return nil, false, err
		}
		for k := 0; k < n; k++ {
			arena[k*ncols+j] = v.valueAt(k)
		}
	}
	return out, true, nil
}

// orderEval evaluates an ORDER BY expression given the already-projected
// visible values (for alias references) and the source row.
type orderEval func(projected engine.Tuple, row engine.Tuple) (engine.Value, error)

func compileOrderBy(items []OrderItem, rs rowSchema, outExprs []Expr, outNames []string,
	aggLookup func(string, engine.Tuple) (engine.Value, bool)) ([]orderEval, error) {
	evals := make([]orderEval, 0, len(items))
	for _, o := range items {
		// Positional: ORDER BY 2.
		if lit, ok := o.Expr.(Literal); ok && lit.Val.Kind == engine.TypeInt {
			pos := int(lit.Val.I) - 1
			if pos < 0 || pos >= len(outExprs) {
				return nil, fmt.Errorf("relational: ORDER BY position %d out of range", pos+1)
			}
			evals = append(evals, func(projected, _ engine.Tuple) (engine.Value, error) {
				return projected[pos], nil
			})
			continue
		}
		// Alias reference: ORDER BY aliasName.
		if cr, ok := o.Expr.(ColumnRef); ok && cr.Table == "" {
			matched := -1
			for i, n := range outNames {
				if strings.EqualFold(n, cr.Name) {
					matched = i
					break
				}
			}
			// Prefer alias match when the name is not a source column, or
			// when it exactly names an output column.
			if matched >= 0 {
				if _, err := rs.resolve("", cr.Name); err != nil {
					pos := matched
					evals = append(evals, func(projected, _ engine.Tuple) (engine.Value, error) {
						return projected[pos], nil
					})
					continue
				}
				// Name exists both as alias and source column; alias wins
				// only if it aliases that same column.
				if crOut, ok := outExprs[matched].(ColumnRef); ok && strings.EqualFold(crOut.Name, cr.Name) {
					pos := matched
					evals = append(evals, func(projected, _ engine.Tuple) (engine.Value, error) {
						return projected[pos], nil
					})
					continue
				}
			}
		}
		ev, err := compileExpr(o.Expr, rs, aggLookup)
		if err != nil {
			return nil, err
		}
		evals = append(evals, func(_, row engine.Tuple) (engine.Value, error) { return ev(row) })
	}
	return evals, nil
}

// outputSchema infers output column types from expressions where
// possible, defaulting to FLOAT for computed values.
func outputSchema(names []string, exprs []Expr, rs rowSchema) engine.Schema {
	cols := make([]engine.Column, len(names))
	for i := range names {
		cols[i] = engine.Col(names[i], inferExprType(exprs[i], rs))
	}
	return engine.Schema{Columns: cols}
}

func inferExprType(e Expr, rs rowSchema) engine.Type {
	switch ex := e.(type) {
	case Literal:
		return ex.Val.Kind
	case ColumnRef:
		if idx, err := rs.resolve(ex.Table, ex.Name); err == nil {
			return rs[idx].Type
		}
	case FuncCall:
		switch ex.Name {
		case "COUNT", "LENGTH":
			return engine.TypeInt
		case "LOWER", "UPPER", "SUBSTR", "SUBSTRING", "CONCAT":
			return engine.TypeString
		case "MIN", "MAX", "SUM":
			if len(ex.Args) == 1 {
				return inferExprType(ex.Args[0], rs)
			}
		}
		return engine.TypeFloat
	case BinaryExpr:
		switch ex.Op {
		case "AND", "OR", "=", "<>", "<", "<=", ">", ">=", "LIKE":
			return engine.TypeBool
		case "||":
			return engine.TypeString
		default:
			lt := inferExprType(ex.Left, rs)
			rt := inferExprType(ex.Right, rs)
			if lt == engine.TypeInt && rt == engine.TypeInt && ex.Op != "/" {
				return engine.TypeInt
			}
			return engine.TypeFloat
		}
	case UnaryExpr:
		if ex.Op == "NOT" {
			return engine.TypeBool
		}
		return inferExprType(ex.Expr, rs)
	case InExpr, IsNullExpr, BetweenExpr:
		return engine.TypeBool
	}
	return engine.TypeFloat
}

// aggState accumulates one aggregate over one group.
type aggState struct {
	fn       string
	count    int64
	sum      float64
	sumSq    float64
	min, max engine.Value
	distinct map[string]bool
	hasVal   bool
}

func newAggState(fc FuncCall) *aggState {
	st := &aggState{fn: fc.Name}
	if fc.Distinct {
		st.distinct = map[string]bool{}
	}
	return st
}

func (st *aggState) add(v engine.Value) {
	if v.IsNull() {
		return
	}
	if st.distinct != nil {
		k := valueKey(v)
		if st.distinct[k] {
			return
		}
		st.distinct[k] = true
	}
	st.count++
	f := v.AsFloat()
	st.sum += f
	st.sumSq += f * f
	if !st.hasVal {
		st.min, st.max = v, v
		st.hasVal = true
	} else {
		if engine.Compare(v, st.min) < 0 {
			st.min = v
		}
		if engine.Compare(v, st.max) > 0 {
			st.max = v
		}
	}
}

func (st *aggState) result() engine.Value {
	switch st.fn {
	case "COUNT":
		return engine.NewInt(st.count)
	case "SUM":
		if st.count == 0 {
			return engine.Null
		}
		if st.sum == math.Trunc(st.sum) && st.min.Kind == engine.TypeInt && st.max.Kind == engine.TypeInt {
			return engine.NewInt(int64(st.sum))
		}
		return engine.NewFloat(st.sum)
	case "AVG":
		if st.count == 0 {
			return engine.Null
		}
		return engine.NewFloat(st.sum / float64(st.count))
	case "MIN":
		if !st.hasVal {
			return engine.Null
		}
		return st.min
	case "MAX":
		if !st.hasVal {
			return engine.Null
		}
		return st.max
	case "STDDEV":
		if st.count < 2 {
			return engine.Null
		}
		n := float64(st.count)
		variance := (st.sumSq - st.sum*st.sum/n) / (n - 1)
		if variance < 0 {
			variance = 0
		}
		return engine.NewFloat(math.Sqrt(variance))
	default:
		return engine.Null
	}
}

// aggGroup accumulates one GROUP BY bucket: the group's first source
// row (for evaluating non-aggregate expressions) and its aggregates.
type aggGroup struct {
	firstRow engine.Tuple
	aggs     []*aggState
}

func newAggGroup(firstRow engine.Tuple, aggCalls []FuncCall) *aggGroup {
	g := &aggGroup{firstRow: firstRow, aggs: make([]*aggState, len(aggCalls))}
	for i, fc := range aggCalls {
		g.aggs[i] = newAggState(fc)
	}
	return g
}

// projectGrouped handles GROUP BY / aggregate projection. Accumulation
// — the O(rows) part — runs vectorized when the group keys and
// aggregate arguments compile to kernels; the per-group output phase is
// shared with the row path.
func (db *DB) projectGrouped(s *Select, ws *rowset) (*engine.Relation, error) {
	rs := ws.rs
	exprs, names, err := expandItems(s.Items, rs)
	if err != nil {
		return nil, err
	}

	// Collect every aggregate appearing anywhere in the query.
	all := make([]Expr, 0, len(exprs)+2)
	all = append(all, exprs...)
	if s.Having != nil {
		all = append(all, s.Having)
	}
	for _, o := range s.OrderBy {
		all = append(all, o.Expr)
	}
	aggCalls := collectAggregates(all)
	aggKeys := make([]string, len(aggCalls))
	for i, fc := range aggCalls {
		aggKeys[i] = exprKey(fc)
		if !fc.Star && len(fc.Args) != 1 {
			return nil, fmt.Errorf("relational: %s expects 1 argument", fc.Name)
		}
	}

	// GROUP BY may reference an output alias; resolve once for both
	// accumulation paths.
	groupBy := make([]Expr, len(s.GroupBy))
	for i, g := range s.GroupBy {
		resolved := g
		if cr, ok := g.(ColumnRef); ok && cr.Table == "" {
			if _, err := rs.resolve("", cr.Name); err != nil {
				for j, n := range names {
					if strings.EqualFold(n, cr.Name) {
						resolved = exprs[j]
						break
					}
				}
			}
		}
		groupBy[i] = resolved
	}

	var groups map[string]*aggGroup
	var order []string
	accumulated := false
	if !ws.isRows {
		groups, order, accumulated, err = groupAccumVec(ws, groupBy, aggCalls)
		if err != nil {
			return nil, err
		}
	}
	if !accumulated {
		groups, order, err = db.groupAccumRows(ws, groupBy, aggCalls)
		if err != nil {
			return nil, err
		}
	}
	// Aggregate-only query over zero rows still yields one group.
	if len(groups) == 0 && len(s.GroupBy) == 0 {
		groups[""] = newAggGroup(nullTuple(len(rs)), aggCalls)
		order = append(order, "")
	}

	// Compile output expressions with aggregate lookup. The lookup closes
	// over a per-row map swapped in while iterating groups.
	var currentAggs map[string]engine.Value
	aggLookup := func(key string, _ engine.Tuple) (engine.Value, bool) {
		v, ok := currentAggs[key]
		return v, ok
	}
	evals := make([]evaluator, len(exprs))
	for i, e := range exprs {
		evals[i], err = compileExpr(e, rs, aggLookup)
		if err != nil {
			return nil, err
		}
	}
	var having evaluator
	if s.Having != nil {
		having, err = compileExpr(s.Having, rs, aggLookup)
		if err != nil {
			return nil, err
		}
	}
	orderEvals, err := compileOrderBy(s.OrderBy, rs, exprs, names, aggLookup)
	if err != nil {
		return nil, err
	}

	schema := outputSchema(names, exprs, rs)
	// Aggregates get better type inference from their state.
	for i, e := range exprs {
		if fc, ok := e.(FuncCall); ok && aggregateNames[fc.Name] {
			switch fc.Name {
			case "COUNT":
				schema.Columns[i].Type = engine.TypeInt
			case "AVG", "STDDEV":
				schema.Columns[i].Type = engine.TypeFloat
			}
		}
	}
	out := engine.NewRelation(schema)
	for _, k := range order {
		g := groups[k]
		currentAggs = make(map[string]engine.Value, len(aggKeys))
		for i, key := range aggKeys {
			currentAggs[key] = g.aggs[i].result()
		}
		if having != nil {
			v, err := having(g.firstRow)
			if err != nil {
				return nil, err
			}
			if v.IsNull() || !v.AsBool() {
				continue
			}
		}
		t := make(engine.Tuple, 0, len(evals)+len(orderEvals))
		for _, ev := range evals {
			v, err := ev(g.firstRow)
			if err != nil {
				return nil, err
			}
			t = append(t, v)
		}
		for _, ev := range orderEvals {
			v, err := ev(t, g.firstRow)
			if err != nil {
				return nil, err
			}
			t = append(t, v)
		}
		out.Tuples = append(out.Tuples, t)
	}
	return out, nil
}

// groupAccumRows is the row-at-a-time accumulation loop: interpreted
// group-key and aggregate-argument closures per row.
func (db *DB) groupAccumRows(ws *rowset, groupBy []Expr, aggCalls []FuncCall) (map[string]*aggGroup, []string, error) {
	rs := ws.rs
	groupEvals := make([]evaluator, len(groupBy))
	for i, g := range groupBy {
		ev, err := compileExpr(g, rs, nil)
		if err != nil {
			return nil, nil, err
		}
		groupEvals[i] = ev
	}
	aggArgEvals := make([]evaluator, len(aggCalls))
	for i, fc := range aggCalls {
		if fc.Star {
			continue // COUNT(*)
		}
		ev, err := compileExpr(fc.Args[0], rs, nil)
		if err != nil {
			return nil, nil, err
		}
		aggArgEvals[i] = ev
	}
	groups := map[string]*aggGroup{}
	var order []string
	for _, row := range ws.materialize() {
		var kb strings.Builder
		for _, ge := range groupEvals {
			v, err := ge(row)
			if err != nil {
				return nil, nil, err
			}
			kb.WriteString(valueKey(v))
			kb.WriteByte('\x1f')
		}
		k := kb.String()
		g, ok := groups[k]
		if !ok {
			g = newAggGroup(row, aggCalls)
			groups[k] = g
			order = append(order, k)
		}
		for i, st := range g.aggs {
			if aggArgEvals[i] == nil {
				st.count++ // COUNT(*)
				continue
			}
			v, err := aggArgEvals[i](row)
			if err != nil {
				return nil, nil, err
			}
			st.add(v)
		}
	}
	return groups, order, nil
}

// groupAccumVec is the vectorized accumulation: group keys and
// aggregate arguments are evaluated as column kernels over the
// selection, one pass assigns every row a dense group id (specialised
// hash maps for single int/string keys, byte-encoded composite keys
// otherwise), then each aggregate runs a typed loop over its argument
// vector into flat per-group accumulators — no per-row boxing, no
// per-row closure calls.
func groupAccumVec(ws *rowset, groupBy []Expr, aggCalls []FuncCall) (map[string]*aggGroup, []string, bool, error) {
	vc := &vecCompiler{b: ws.batch, rs: ws.rs}
	gevs := make([]vecExpr, len(groupBy))
	for i, g := range groupBy {
		ev, ok := vc.compile(g)
		if !ok {
			return nil, nil, false, nil
		}
		gevs[i] = ev
	}
	argEvs := make([]*vecExpr, len(aggCalls))
	for i, fc := range aggCalls {
		if fc.Star {
			continue // COUNT(*): no argument
		}
		ev, ok := vc.compile(fc.Args[0])
		if !ok {
			return nil, nil, false, nil
		}
		argEvs[i] = &ev
	}

	sel := ws.selection()
	n := len(sel)
	gvecs := make([]vec, len(gevs))
	for i := range gevs {
		if err := gevs[i].eval(sel, &gvecs[i]); err != nil {
			return nil, nil, false, err
		}
	}
	avecs := make([]*vec, len(argEvs))
	for i, ev := range argEvs {
		if ev == nil {
			continue
		}
		avecs[i] = &vec{}
		if err := ev.eval(sel, avecs[i]); err != nil {
			return nil, nil, false, err
		}
	}

	// Phase 1: assign each selected row a dense group id.
	var glist []*aggGroup
	var keys []string
	newGroup := func(k int) int32 {
		var buf []byte
		for gi := range gvecs {
			buf = gvecs[gi].appendGroupKey(buf, k)
		}
		glist = append(glist, newAggGroup(ws.batch.Row(int(sel[k])), aggCalls))
		keys = append(keys, string(buf))
		return int32(len(glist) - 1)
	}
	gids := make([]int32, n)
	switch {
	case len(gvecs) == 1 && gvecs[0].kind == engine.TypeInt:
		gv := &gvecs[0]
		m := make(map[int64]int32, 64)
		nullGid := int32(-1)
		for k := 0; k < n; k++ {
			if gv.null[k] {
				if nullGid < 0 {
					nullGid = newGroup(k)
				}
				gids[k] = nullGid
				continue
			}
			gid, ok := m[gv.ints[k]]
			if !ok {
				gid = newGroup(k)
				m[gv.ints[k]] = gid
			}
			gids[k] = gid
		}
	case len(gvecs) == 1 && gvecs[0].kind == engine.TypeString:
		gv := &gvecs[0]
		m := make(map[string]int32, 64)
		nullGid := int32(-1)
		for k := 0; k < n; k++ {
			if gv.null[k] {
				if nullGid < 0 {
					nullGid = newGroup(k)
				}
				gids[k] = nullGid
				continue
			}
			gid, ok := m[gv.strs[k]]
			if !ok {
				gid = newGroup(k)
				m[gv.strs[k]] = gid
			}
			gids[k] = gid
		}
	default:
		m := make(map[string]int32, 64)
		var buf []byte
		for k := 0; k < n; k++ {
			buf = buf[:0]
			for gi := range gvecs {
				buf = gvecs[gi].appendGroupKey(buf, k)
			}
			gid, ok := m[string(buf)]
			if !ok {
				gid = newGroup(k)
				m[string(buf)] = gid
			}
			gids[k] = gid
		}
	}

	// Phase 2: typed accumulation per aggregate.
	for i, fc := range aggCalls {
		accumAggVec(glist, gids, i, fc, avecs[i])
	}

	groups := make(map[string]*aggGroup, len(glist))
	for g, key := range keys {
		groups[key] = glist[g]
	}
	return groups, keys, true, nil
}

// accumAggVec folds one aggregate's argument vector into its per-group
// states through flat typed accumulator arrays, boxing at most once per
// group (for MIN/MAX results) instead of once per row.
func accumAggVec(glist []*aggGroup, gids []int32, agg int, fc FuncCall, av *vec) {
	ng := len(glist)
	if av == nil { // COUNT(*)
		counts := make([]int64, ng)
		for _, gid := range gids {
			counts[gid]++
		}
		for g, c := range counts {
			glist[g].aggs[agg].count += c
		}
		return
	}
	if fc.Distinct || (av.kind != engine.TypeInt && av.kind != engine.TypeFloat && av.kind != engine.TypeString) {
		// DISTINCT needs the per-value de-dup map; exotic kinds keep the
		// reference semantics of aggState.add.
		for k, gid := range gids {
			glist[gid].aggs[agg].add(av.valueAt(k))
		}
		return
	}
	counts := make([]int64, ng)
	sums := make([]float64, ng)
	sumSqs := make([]float64, ng)
	has := make([]bool, ng)
	finish := func(g int, minV, maxV engine.Value) {
		st := glist[g].aggs[agg]
		st.count = counts[g]
		st.sum = sums[g]
		st.sumSq = sumSqs[g]
		st.min, st.max = minV, maxV
		st.hasVal = true
	}
	switch av.kind {
	case engine.TypeInt:
		mins := make([]int64, ng)
		maxs := make([]int64, ng)
		for k, gid := range gids {
			if av.null[k] {
				continue
			}
			v := av.ints[k]
			f := float64(v)
			counts[gid]++
			sums[gid] += f
			sumSqs[gid] += f * f
			if !has[gid] {
				mins[gid], maxs[gid], has[gid] = v, v, true
			} else {
				if v < mins[gid] {
					mins[gid] = v
				}
				if v > maxs[gid] {
					maxs[gid] = v
				}
			}
		}
		for g := 0; g < ng; g++ {
			if has[g] {
				finish(g, engine.NewInt(mins[g]), engine.NewInt(maxs[g]))
			}
		}
	case engine.TypeFloat:
		mins := make([]float64, ng)
		maxs := make([]float64, ng)
		for k, gid := range gids {
			if av.null[k] {
				continue
			}
			v := av.floats[k]
			counts[gid]++
			sums[gid] += v
			sumSqs[gid] += v * v
			if !has[gid] {
				mins[gid], maxs[gid], has[gid] = v, v, true
			} else {
				if v < mins[gid] {
					mins[gid] = v
				}
				if v > maxs[gid] {
					maxs[gid] = v
				}
			}
		}
		for g := 0; g < ng; g++ {
			if has[g] {
				finish(g, engine.NewFloat(mins[g]), engine.NewFloat(maxs[g]))
			}
		}
	case engine.TypeString:
		mins := make([]string, ng)
		maxs := make([]string, ng)
		for k, gid := range gids {
			if av.null[k] {
				continue
			}
			v := av.strs[k]
			// aggState sums strings through AsFloat (NaN when
			// unparsable); replicate for result parity.
			f := engine.NewString(v).AsFloat()
			counts[gid]++
			sums[gid] += f
			sumSqs[gid] += f * f
			if !has[gid] {
				mins[gid], maxs[gid], has[gid] = v, v, true
			} else {
				if v < mins[gid] {
					mins[gid] = v
				}
				if v > maxs[gid] {
					maxs[gid] = v
				}
			}
		}
		for g := 0; g < ng; g++ {
			if has[g] {
				finish(g, engine.NewString(mins[g]), engine.NewString(maxs[g]))
			}
		}
	}
}
