// Package relational implements BigDAWG's Postgres substitute: an
// in-memory relational engine with a SQL subset (CREATE TABLE, INSERT,
// UPDATE, DELETE, SELECT with joins, grouping, ordering and secondary
// indexes). It backs the relational island and the Postgres degenerate
// island of the polystore.
package relational

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol // ( ) , * . ; = < > <= >= <> != + - / %
)

type token struct {
	kind tokenKind
	text string // keywords are upper-cased; identifiers keep original case
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "ASC": true, "DESC": true, "LIMIT": true,
	"OFFSET": true, "AS": true, "AND": true, "OR": true, "NOT": true,
	"INSERT": true, "INTO": true, "VALUES": true, "CREATE": true,
	"TABLE": true, "INDEX": true, "ON": true, "DELETE": true, "UPDATE": true,
	"SET": true, "JOIN": true, "INNER": true, "LEFT": true, "OUTER": true,
	"CROSS": true, "NULL": true, "TRUE": true, "FALSE": true, "LIKE": true,
	"IN": true, "IS": true, "BETWEEN": true, "DISTINCT": true, "DROP": true,
	"PRIMARY": true, "KEY": true, "COUNT": true, "SUM": true, "AVG": true,
	"MIN": true, "MAX": true, "STDDEV": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenises a SQL string.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, tok)
		if tok.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '\'' || c == '"':
		quote := c
		l.pos++
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, fmt.Errorf("relational: unterminated string at %d", start)
			}
			ch := l.src[l.pos]
			if ch == quote {
				// Doubled quote is an escaped quote.
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == quote {
					sb.WriteByte(quote)
					l.pos += 2
					continue
				}
				l.pos++
				break
			}
			sb.WriteByte(ch)
			l.pos++
		}
		return token{kind: tokString, text: sb.String(), pos: start}, nil
	case isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
		for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.' ||
			l.src[l.pos] == 'e' || l.src[l.pos] == 'E' ||
			((l.src[l.pos] == '+' || l.src[l.pos] == '-') && l.pos > start &&
				(l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E'))) {
			l.pos++
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		word := l.src[start:l.pos]
		up := strings.ToUpper(word)
		if keywords[up] {
			return token{kind: tokKeyword, text: up, pos: start}, nil
		}
		return token{kind: tokIdent, text: word, pos: start}, nil
	default:
		// Two-char operators first.
		if l.pos+1 < len(l.src) {
			two := l.src[l.pos : l.pos+2]
			switch two {
			case "<=", ">=", "<>", "!=", "||":
				l.pos += 2
				return token{kind: tokSymbol, text: two, pos: start}, nil
			}
		}
		switch c {
		case '(', ')', ',', '*', '.', ';', '=', '<', '>', '+', '-', '/', '%':
			l.pos++
			return token{kind: tokSymbol, text: string(c), pos: start}, nil
		}
		return token{}, fmt.Errorf("relational: unexpected character %q at %d", c, start)
	}
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || unicode.IsLetter(rune(c)) }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) }
