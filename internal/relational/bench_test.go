package relational

import (
	"fmt"
	"testing"

	"repro/internal/engine"
)

func benchDB(b *testing.B, rows int) *DB {
	b.Helper()
	db := NewDB()
	if _, err := db.Execute(`CREATE TABLE t (id INT PRIMARY KEY, grp INT, v FLOAT, label TEXT)`); err != nil {
		b.Fatal(err)
	}
	rel := engine.NewRelation(engine.NewSchema(
		engine.Col("id", engine.TypeInt), engine.Col("grp", engine.TypeInt),
		engine.Col("v", engine.TypeFloat), engine.Col("label", engine.TypeString)))
	for i := 0; i < rows; i++ {
		_ = rel.Append(engine.Tuple{
			engine.NewInt(int64(i)), engine.NewInt(int64(i % 50)),
			engine.NewFloat(float64(i) / 7), engine.NewString(fmt.Sprintf("label_%d", i%10)),
		})
	}
	// Bulk-load via a staging table to keep the PK index.
	for _, row := range rel.Tuples {
		db.mu.Lock()
		tbl, _ := db.table("t")
		if err := tbl.insert(row); err != nil {
			db.mu.Unlock()
			b.Fatal(err)
		}
		db.mu.Unlock()
	}
	return db
}

func BenchmarkInsert(b *testing.B) {
	db := NewDB()
	if _, err := db.Execute(`CREATE TABLE t (id INT PRIMARY KEY, v FLOAT)`); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Execute(fmt.Sprintf(`INSERT INTO t VALUES (%d, %d.5)`, i, i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPointLookupPK(b *testing.B) {
	db := benchDB(b, 10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(`SELECT * FROM t WHERE id = 5000`); err != nil {
			b.Fatal(err)
		}
	}
}

// benchRowVec runs the query under both executors (row-at-a-time and
// vectorized) at the given table size — the acceptance comparison for
// the columnar executor. The vectorized run warms the column cache
// outside the timer, matching the steady state of a resident table.
func benchRowVec(b *testing.B, rows int, prep func(b *testing.B, db *DB), q string) {
	for _, mode := range []string{"row", "vec"} {
		b.Run(mode, func(b *testing.B) {
			db := benchDB(b, rows)
			if prep != nil {
				prep(b, db)
			}
			db.SetVectorized(mode == "vec")
			if _, err := db.Query(q); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFilterScan(b *testing.B) {
	for _, rows := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			benchRowVec(b, rows, nil, `SELECT id FROM t WHERE v > 700.0 AND grp < 25`)
		})
	}
}

func BenchmarkGroupByAggregate(b *testing.B) {
	for _, rows := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			benchRowVec(b, rows, nil, `SELECT grp, COUNT(*), AVG(v), MAX(v) FROM t GROUP BY grp`)
		})
	}
}

func BenchmarkHashJoin(b *testing.B) {
	prep := func(b *testing.B, db *DB) {
		if _, err := db.Execute(`CREATE TABLE g (grp INT PRIMARY KEY, name TEXT)`); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			if _, err := db.Execute(fmt.Sprintf(`INSERT INTO g VALUES (%d, 'group_%d')`, i, i)); err != nil {
				b.Fatal(err)
			}
		}
	}
	for _, rows := range []int{5_000, 100_000} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			benchRowVec(b, rows, prep, `SELECT g.name, COUNT(*) FROM t JOIN g ON t.grp = g.grp GROUP BY g.name`)
		})
	}
}

// BenchmarkUpdateByPK and BenchmarkDeleteByPK pin the DML index fast
// path: a PK-equality predicate routes through the hash index instead
// of full-scanning, so the indexed variants stay flat as the table
// grows while the unindexed ones scale with it.
func BenchmarkUpdateByPK(b *testing.B) {
	run := func(b *testing.B, pk string) {
		db := NewDB()
		if _, err := db.Execute(fmt.Sprintf(`CREATE TABLE u (id INT%s, v FLOAT)`, pk)); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 100_000; i++ {
			db.mu.Lock()
			tbl, _ := db.table("u")
			if err := tbl.insert(engine.Tuple{engine.NewInt(int64(i)), engine.NewFloat(float64(i))}); err != nil {
				db.mu.Unlock()
				b.Fatal(err)
			}
			db.mu.Unlock()
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Execute(`UPDATE u SET v = 1.5 WHERE id = 50000`); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("pk_indexed", func(b *testing.B) { run(b, " PRIMARY KEY") })
	b.Run("full_scan", func(b *testing.B) { run(b, "") })
}

func BenchmarkDeleteByPK(b *testing.B) {
	run := func(b *testing.B, pk string) {
		db := NewDB()
		if _, err := db.Execute(fmt.Sprintf(`CREATE TABLE u (id INT%s, v FLOAT)`, pk)); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 100_000; i++ {
			db.mu.Lock()
			tbl, _ := db.table("u")
			if err := tbl.insert(engine.Tuple{engine.NewInt(int64(i)), engine.NewFloat(float64(i))}); err != nil {
				db.mu.Unlock()
				b.Fatal(err)
			}
			db.mu.Unlock()
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Delete a missing key: exercises the lookup path without
			// mutating the table between iterations.
			if _, err := db.Execute(`DELETE FROM u WHERE id = -1`); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("pk_indexed", func(b *testing.B) { run(b, " PRIMARY KEY") })
	b.Run("full_scan", func(b *testing.B) { run(b, "") })
}

func BenchmarkSecondaryIndexVsScan(b *testing.B) {
	b.Run("scan", func(b *testing.B) {
		db := benchDB(b, 10_000)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(`SELECT COUNT(*) FROM t WHERE grp = 7`); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("indexed", func(b *testing.B) {
		db := benchDB(b, 10_000)
		if _, err := db.Execute(`CREATE INDEX idx_grp ON t (grp)`); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(`SELECT COUNT(*) FROM t WHERE grp = 7`); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkParse(b *testing.B) {
	const sql = `SELECT g.name, COUNT(*) AS n, AVG(t.v) FROM t JOIN g ON t.grp = g.grp WHERE t.v BETWEEN 10 AND 90 GROUP BY g.name HAVING COUNT(*) > 2 ORDER BY n DESC LIMIT 10`
	for i := 0; i < b.N; i++ {
		if _, err := Parse(sql); err != nil {
			b.Fatal(err)
		}
	}
}
