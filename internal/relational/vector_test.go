package relational

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
)

// parityDB builds a table with every scalar kind plus NULLs, loaded in
// both executors' reach.
func parityDB(t testing.TB, rows int) *DB {
	t.Helper()
	db := NewDB()
	if _, err := db.Execute(`CREATE TABLE p (id INT PRIMARY KEY, grp INT, v FLOAT, label TEXT, flag BOOL)`); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.table("p")
	for i := 0; i < rows; i++ {
		row := engine.Tuple{
			engine.NewInt(int64(i)), engine.NewInt(int64(i % 7)),
			engine.NewFloat(float64(i) / 4), engine.NewString(fmt.Sprintf("label_%d", i%5)),
			engine.NewBool(i%3 == 0),
		}
		switch i % 11 {
		case 4:
			row[2] = engine.Null
		case 7:
			row[3] = engine.Null
		case 9:
			row[1] = engine.Null
		}
		if err := tbl.insert(row); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// runBoth executes q under the row and vectorized executors and fails
// on any difference in schema, cardinality or values.
func runBoth(t *testing.T, db *DB, q string) {
	t.Helper()
	db.SetVectorized(false)
	rowRes, rowErr := db.Query(q)
	db.SetVectorized(true)
	vecRes, vecErr := db.Query(q)
	if (rowErr == nil) != (vecErr == nil) {
		t.Fatalf("%s: row err %v, vec err %v", q, rowErr, vecErr)
	}
	if rowErr != nil {
		return
	}
	if !rowRes.Schema.Equal(vecRes.Schema) {
		t.Fatalf("%s: schema %v vs %v", q, rowRes.Schema, vecRes.Schema)
	}
	if rowRes.Len() != vecRes.Len() {
		t.Fatalf("%s: %d rows vs %d rows", q, rowRes.Len(), vecRes.Len())
	}
	for i := range rowRes.Tuples {
		for j := range rowRes.Tuples[i] {
			a, b := rowRes.Tuples[i][j], vecRes.Tuples[i][j]
			if a.Kind != b.Kind || !engine.Equal(a, b) {
				t.Fatalf("%s: row %d col %d: %v(%v) vs %v(%v)", q, i, j, a, a.Kind, b, b.Kind)
			}
		}
	}
}

// TestVectorizedParity runs a battery of queries under both executors;
// the vectorized path must be plan-for-plan indistinguishable.
func TestVectorizedParity(t *testing.T) {
	db := parityDB(t, 500)
	queries := []string{
		// Filters over every comparison and logical operator.
		`SELECT id FROM p WHERE v > 60.0 AND grp < 4`,
		`SELECT id FROM p WHERE grp = 3 OR flag = true`,
		`SELECT id FROM p WHERE NOT (grp = 3) AND v <= 100`,
		`SELECT id FROM p WHERE grp <> 2 AND id >= 250`,
		`SELECT id FROM p WHERE v IS NULL`,
		`SELECT id FROM p WHERE grp IS NOT NULL AND label IS NOT NULL`,
		`SELECT id FROM p WHERE id BETWEEN 100 AND 200`,
		`SELECT id FROM p WHERE v NOT BETWEEN 10 AND 110`,
		`SELECT id FROM p WHERE grp IN (1, 3, 5)`,
		`SELECT id FROM p WHERE grp NOT IN (0, 6)`,
		`SELECT id FROM p WHERE label IN ('label_1', 'label_4')`,
		`SELECT id FROM p WHERE label LIKE 'label_%'`,
		`SELECT id FROM p WHERE label LIKE '%_3'`,
		// Mixed int/float comparison and arithmetic.
		`SELECT id FROM p WHERE v > id`,
		`SELECT id, id + grp, v * 2.0, id - grp, id * grp FROM p WHERE id < 50`,
		`SELECT id, -v, id % 7 FROM p WHERE id < 30`,
		`SELECT label || '!' FROM p WHERE id < 10`,
		// Projection-only (full scan, no WHERE).
		`SELECT * FROM p`,
		`SELECT id, v FROM p`,
		// Aggregates: grouped, implicit single group, HAVING, aliases.
		`SELECT grp, COUNT(*), SUM(v), AVG(v), MIN(v), MAX(v) FROM p GROUP BY grp`,
		`SELECT grp, COUNT(v), STDDEV(v) FROM p GROUP BY grp`,
		`SELECT COUNT(*), AVG(v) FROM p`,
		`SELECT COUNT(*) FROM p WHERE grp IS NULL`,
		`SELECT label, MIN(label), MAX(label) FROM p GROUP BY label`,
		`SELECT grp, COUNT(*) FROM p GROUP BY grp HAVING COUNT(*) > 50`,
		`SELECT grp AS g, COUNT(*) FROM p GROUP BY g`,
		`SELECT grp, COUNT(DISTINCT label) FROM p GROUP BY grp`,
		`SELECT flag, COUNT(*) FROM p GROUP BY flag`,
		`SELECT id / 2, COUNT(*) FROM p GROUP BY id / 2`,
		`SELECT grp, label, COUNT(*) FROM p GROUP BY grp, label`,
		// ORDER BY / DISTINCT / LIMIT ride on either executor's output.
		`SELECT DISTINCT label FROM p`,
		`SELECT id, v FROM p ORDER BY v DESC LIMIT 10`,
		`SELECT grp, COUNT(*) AS n FROM p GROUP BY grp ORDER BY n DESC, grp LIMIT 3`,
		// Row-path fallbacks (scalar functions are not vectorized).
		`SELECT UPPER(label) FROM p WHERE id < 10`,
		`SELECT id FROM p WHERE LENGTH(label) > 6`,
		`SELECT COALESCE(v, 0.0) FROM p WHERE id < 30`,
	}
	for _, q := range queries {
		runBoth(t, db, q)
	}
}

func TestVectorizedParityJoins(t *testing.T) {
	db := parityDB(t, 300)
	if _, err := db.Execute(`CREATE TABLE g (grp INT PRIMARY KEY, name TEXT)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ { // fewer groups than p has, so some rows miss
		if _, err := db.Execute(fmt.Sprintf(`INSERT INTO g VALUES (%d, 'g%d')`, i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Execute(`CREATE TABLE names (label TEXT, pretty TEXT)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := db.Execute(fmt.Sprintf(`INSERT INTO names VALUES ('label_%d', 'Label %d')`, i, i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range []string{
		`SELECT p.id, g.name FROM p JOIN g ON p.grp = g.grp WHERE p.id < 100`,
		`SELECT p.id, g.name FROM p LEFT JOIN g ON p.grp = g.grp WHERE p.id < 100`,
		`SELECT g.name, COUNT(*) FROM p JOIN g ON p.grp = g.grp GROUP BY g.name`,
		`SELECT p.id, n.pretty FROM p JOIN names n ON p.label = n.label WHERE p.id < 50`,
		`SELECT a.id, b.id FROM p a JOIN p b ON a.id = b.grp WHERE a.id < 7`,
		// Non-equi ON: both executors must take the nested-loop path.
		`SELECT p.id, g.name FROM p JOIN g ON p.grp > g.grp WHERE p.id < 20`,
		`SELECT p.id FROM p CROSS JOIN g WHERE p.id < 5`,
	} {
		runBoth(t, db, q)
	}
}

// TestVectorizedShortCircuit pins AND/OR short-circuit semantics: the
// right operand must not be evaluated for rows the left side decides,
// so a guarded division never sees the zero divisor — on both
// executors.
func TestVectorizedShortCircuit(t *testing.T) {
	db := NewDB()
	if _, err := db.Execute(`CREATE TABLE s (id INT PRIMARY KEY, d INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Execute(`INSERT INTO s VALUES (1, 0), (2, 5), (3, NULL)`); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{
		`SELECT id FROM s WHERE d <> 0 AND 10 / d > 1`,
		`SELECT id FROM s WHERE d = 0 OR 10 / d > 1`,
		`SELECT id FROM s WHERE d IS NOT NULL AND d <> 0 AND 10 % d >= 0`,
	} {
		runBoth(t, db, q)
		rel, err := db.Query(q)
		if err != nil {
			t.Fatalf("%s: guarded division errored: %v", q, err)
		}
		if rel.Len() == 0 {
			t.Fatalf("%s: no rows", q)
		}
	}
	// An unguarded division still errors on both paths.
	db.SetVectorized(true)
	if _, err := db.Query(`SELECT id FROM s WHERE 10 / d > 1`); err == nil {
		t.Fatal("unguarded division by zero did not error (vec)")
	}
	db.SetVectorized(false)
	if _, err := db.Query(`SELECT id FROM s WHERE 10 / d > 1`); err == nil {
		t.Fatal("unguarded division by zero did not error (row)")
	}
	db.SetVectorized(true)
}

// TestVectorizedBufferReuse pins two regressions around reused result
// buffers and degenerate IN lists: projectPlainVec shares one scratch
// vec across output expressions, so a kernel that skips rows (the
// short-circuiting AND) must not see the previous expression's values;
// and IN lists reduced to nothing by NULL literals must evaluate to a
// constant miss rather than indexing an unallocated buffer.
func TestVectorizedBufferReuse(t *testing.T) {
	db := NewDB()
	if _, err := db.Execute(`CREATE TABLE s2 (id INT PRIMARY KEY, flag BOOL, grp INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Execute(`INSERT INTO s2 VALUES (1, true, 5), (2, true, 1), (3, NULL, NULL)`); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{
		// flag fills the shared bool buffer with true before the AND runs.
		`SELECT flag, grp = 1 AND id > 0 FROM s2`,
		`SELECT flag, grp = 9 OR id < 0 FROM s2`,
		`SELECT id FROM s2 WHERE flag IN (NULL)`,
		`SELECT id FROM s2 WHERE flag NOT IN (NULL)`,
		`SELECT id FROM s2 WHERE grp IN (NULL)`,
		`SELECT id FROM s2 WHERE grp NOT IN (NULL, NULL)`,
	} {
		runBoth(t, db, q)
	}
}

// TestVectorizedAfterMutation ensures the column cache invalidates on
// writes: a vectorized query after INSERT/UPDATE/DELETE sees the new
// state.
func TestVectorizedAfterMutation(t *testing.T) {
	db := parityDB(t, 100)
	warm := func() int {
		rel, err := db.Query(`SELECT COUNT(*) FROM p WHERE v >= 0 OR v IS NULL OR v < 0`)
		if err != nil {
			t.Fatal(err)
		}
		return int(rel.Tuples[0][0].I)
	}
	if n := warm(); n != 100 {
		t.Fatalf("initial count %d", n)
	}
	if _, err := db.Execute(`INSERT INTO p VALUES (1000, 1, 1.5, 'label_9', false)`); err != nil {
		t.Fatal(err)
	}
	if n := warm(); n != 101 {
		t.Fatalf("count after insert %d, want 101", n)
	}
	if _, err := db.Execute(`DELETE FROM p WHERE id = 1000`); err != nil {
		t.Fatal(err)
	}
	if n := warm(); n != 100 {
		t.Fatalf("count after delete %d, want 100", n)
	}
	if _, err := db.Execute(`UPDATE p SET v = 999.0 WHERE id = 0`); err != nil {
		t.Fatal(err)
	}
	rel, err := db.Query(`SELECT v FROM p WHERE v = 999.0`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 {
		t.Fatalf("update invisible to vectorized scan: %d rows", rel.Len())
	}
}

// TestLikePathological pins the LIKE matcher's complexity: the old
// recursive matcher was exponential on %a%a%a%… patterns and would not
// finish this test within the heat death of the universe.
func TestLikePathological(t *testing.T) {
	s := strings.Repeat("a", 300) + "b"
	pattern := strings.Repeat("%a", 25) + "%c"
	start := time.Now()
	if likeMatch(s, pattern) {
		t.Fatal("pattern should not match")
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("pathological LIKE took %v", elapsed)
	}
	// And the matcher still matches what it should.
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello world", "hello%", true},
		{"hello world", "%world", true},
		{"hello world", "h_llo%", true},
		{"hello world", "%o w%", true},
		{"hello world", "hello", false},
		{"", "%", true},
		{"", "_", false},
		{"abc", "a%b%c", true},
		{"abc", "%%%", true},
		{"aaab", "%a%a%a%b", true},
		{"CaseFold", "casefold", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

// TestDMLIndexFastPath verifies UPDATE/DELETE with a PK or secondary
// equality predicate route through the index (RowsScanned stays flat)
// and still honour compound predicates.
func TestDMLIndexFastPath(t *testing.T) {
	db := parityDB(t, 1000)
	before := db.Stats().RowsScanned
	if rel, err := db.Execute(`UPDATE p SET v = 1.25 WHERE id = 500`); err != nil {
		t.Fatal(err)
	} else if rel.Tuples[0][1].I != 1 {
		t.Fatalf("updated %v rows", rel.Tuples[0][1])
	}
	scanned := db.Stats().RowsScanned - before
	if scanned > 5 {
		t.Fatalf("PK update scanned %d rows, want O(1)", scanned)
	}
	// Compound predicate: index narrows, residual filter still applies.
	before = db.Stats().RowsScanned
	if rel, err := db.Execute(`UPDATE p SET v = 2.5 WHERE id = 501 AND grp = 999`); err != nil {
		t.Fatal(err)
	} else if rel.Tuples[0][1].I != 0 {
		t.Fatalf("residual filter ignored: updated %v rows", rel.Tuples[0][1])
	}
	if scanned := db.Stats().RowsScanned - before; scanned > 5 {
		t.Fatalf("compound PK update scanned %d rows", scanned)
	}
	before = db.Stats().RowsScanned
	if rel, err := db.Execute(`DELETE FROM p WHERE id = 502`); err != nil {
		t.Fatal(err)
	} else if rel.Tuples[0][1].I != 1 {
		t.Fatalf("deleted %v rows", rel.Tuples[0][1])
	}
	if scanned := db.Stats().RowsScanned - before; scanned > 5 {
		t.Fatalf("PK delete scanned %d rows", scanned)
	}
	if rel, _ := db.Query(`SELECT COUNT(*) FROM p`); rel.Tuples[0][0].I != 999 {
		t.Fatalf("count after delete %v", rel.Tuples[0][0])
	}
	// Secondary index fast path.
	if _, err := db.Execute(`CREATE INDEX idx_grp ON p (grp)`); err != nil {
		t.Fatal(err)
	}
	before = db.Stats().RowsScanned
	rel, err := db.Execute(`DELETE FROM p WHERE grp = 3`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Tuples[0][1].I == 0 {
		t.Fatal("secondary-index delete removed nothing")
	}
	if scanned := db.Stats().RowsScanned - before; scanned > 200 {
		t.Fatalf("secondary-index delete scanned %d rows", scanned)
	}
}

// TestJoinEdgeCases covers LEFT JOIN null padding, alias resolution in
// the equi-join detector, and correct fallback when the equi fast path
// does not apply — on both executors.
func TestJoinEdgeCases(t *testing.T) {
	db := NewDB()
	mustExec := func(q string) {
		t.Helper()
		if _, err := db.Execute(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	mustExec(`CREATE TABLE l (id INT PRIMARY KEY, k INT)`)
	mustExec(`CREATE TABLE r (k INT, tag TEXT)`)
	mustExec(`INSERT INTO l VALUES (1, 10), (2, 20), (3, 30), (4, NULL)`)
	mustExec(`INSERT INTO r VALUES (10, 'a'), (10, 'aa'), (30, 'c')`)

	for _, vec := range []bool{false, true} {
		db.SetVectorized(vec)
		name := map[bool]string{false: "row", true: "vec"}[vec]

		// LEFT JOIN pads unmatched and NULL-key rows with NULLs.
		rel, err := db.Query(`SELECT l.id, r.tag FROM l LEFT JOIN r ON l.k = r.k ORDER BY l.id, r.tag`)
		if err != nil {
			t.Fatal(err)
		}
		if rel.Len() != 5 { // 1×2 matches + 3 + two padded (2, 4)
			t.Fatalf("[%s] left join returned %d rows:\n%s", name, rel.Len(), rel)
		}
		padded := 0
		for _, row := range rel.Tuples {
			if row[1].IsNull() {
				padded++
				if row[0].I != 2 && row[0].I != 4 {
					t.Errorf("[%s] row %v should not be padded", name, row[0])
				}
			}
		}
		if padded != 2 {
			t.Fatalf("[%s] %d padded rows, want 2 (unmatched + NULL key)", name, padded)
		}

		// Aliases resolve on both sides of the ON equality, in either order.
		for _, q := range []string{
			`SELECT a.id, b.tag FROM l a JOIN r b ON a.k = b.k`,
			`SELECT a.id, b.tag FROM l a JOIN r b ON b.k = a.k`,
		} {
			rel, err := db.Query(q)
			if err != nil {
				t.Fatalf("[%s] %s: %v", name, q, err)
			}
			if rel.Len() != 3 {
				t.Fatalf("[%s] %s: %d rows, want 3", name, q, rel.Len())
			}
		}

		// Unqualified ON k = k resolves one side per schema (the
		// equi-join detector tries left-then-right), same as the seed.
		rel, err = db.Query(`SELECT l.id FROM l JOIN r ON k = k`)
		if err != nil {
			t.Fatalf("[%s] unqualified equi ON: %v", name, err)
		}
		if rel.Len() != 3 {
			t.Fatalf("[%s] unqualified equi ON %d rows, want 3", name, rel.Len())
		}

		// Non-equi ON falls back to nested loop with the same results.
		rel, err = db.Query(`SELECT l.id, r.tag FROM l JOIN r ON l.k < r.k ORDER BY l.id, r.tag`)
		if err != nil {
			t.Fatal(err)
		}
		// l.k=10 < 30 (1 row... l1:c), l.k=20 < 30 (l2:c), l.k=30: none, NULL: none
		if rel.Len() != 2 {
			t.Fatalf("[%s] non-equi join %d rows, want 2:\n%s", name, rel.Len(), rel)
		}
		// Expression ON (not bare columns) also falls back.
		rel, err = db.Query(`SELECT l.id FROM l JOIN r ON l.k + 0 = r.k`)
		if err != nil {
			t.Fatal(err)
		}
		if rel.Len() != 3 {
			t.Fatalf("[%s] expression-ON join %d rows, want 3", name, rel.Len())
		}
	}
}
