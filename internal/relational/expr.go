package relational

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/engine"
)

// qualCol is one column of a working (possibly joined) row, carrying its
// table qualifier for name resolution.
type qualCol struct {
	Table string // alias or table name, lower-cased
	Name  string // column name, lower-cased
	Type  engine.Type
}

// rowSchema describes the working rows flowing through the executor.
type rowSchema []qualCol

func baseRowSchema(tableName string, s engine.Schema) rowSchema {
	rs := make(rowSchema, len(s.Columns))
	for i, c := range s.Columns {
		rs[i] = qualCol{Table: strings.ToLower(tableName), Name: strings.ToLower(c.Name), Type: c.Type}
	}
	return rs
}

// toSchema flattens the working schema to a plain engine schema
// (qualifiers dropped), used for intermediate column batches.
func (rs rowSchema) toSchema() engine.Schema {
	cols := make([]engine.Column, len(rs))
	for i, c := range rs {
		cols[i] = engine.Col(c.Name, c.Type)
	}
	return engine.Schema{Columns: cols}
}

// resolve finds the index of a (possibly qualified) column reference.
func (rs rowSchema) resolve(table, name string) (int, error) {
	table = strings.ToLower(table)
	name = strings.ToLower(name)
	found := -1
	for i, c := range rs {
		if c.Name != name {
			continue
		}
		if table != "" && c.Table != table {
			continue
		}
		if found >= 0 {
			return -1, fmt.Errorf("relational: ambiguous column %q", name)
		}
		found = i
	}
	if found < 0 {
		if table != "" {
			return -1, fmt.Errorf("relational: no column %s.%s", table, name)
		}
		return -1, fmt.Errorf("relational: no column %q", name)
	}
	return found, nil
}

// evaluator is a compiled scalar expression: schema resolution happens
// once, then evaluation is index-based per row.
type evaluator func(row engine.Tuple) (engine.Value, error)

// compileExpr compiles e against rs. Aggregate calls are resolved via
// aggLookup (nil outside grouped execution); they look up precomputed
// per-group values by the expression's string key.
func compileExpr(e Expr, rs rowSchema, aggLookup func(key string, row engine.Tuple) (engine.Value, bool)) (evaluator, error) {
	switch ex := e.(type) {
	case Literal:
		v := ex.Val
		return func(engine.Tuple) (engine.Value, error) { return v, nil }, nil
	case ColumnRef:
		idx, err := rs.resolve(ex.Table, ex.Name)
		if err != nil {
			return nil, err
		}
		return func(row engine.Tuple) (engine.Value, error) { return row[idx], nil }, nil
	case UnaryExpr:
		inner, err := compileExpr(ex.Expr, rs, aggLookup)
		if err != nil {
			return nil, err
		}
		switch ex.Op {
		case "NOT":
			return func(row engine.Tuple) (engine.Value, error) {
				v, err := inner(row)
				if err != nil {
					return engine.Null, err
				}
				if v.IsNull() {
					return engine.Null, nil
				}
				return engine.NewBool(!v.AsBool()), nil
			}, nil
		case "-":
			return func(row engine.Tuple) (engine.Value, error) {
				v, err := inner(row)
				if err != nil || v.IsNull() {
					return engine.Null, err
				}
				if v.Kind == engine.TypeInt {
					return engine.NewInt(-v.I), nil
				}
				return engine.NewFloat(-v.AsFloat()), nil
			}, nil
		default:
			return nil, fmt.Errorf("relational: unknown unary op %q", ex.Op)
		}
	case BinaryExpr:
		return compileBinary(ex, rs, aggLookup)
	case InExpr:
		inner, err := compileExpr(ex.Expr, rs, aggLookup)
		if err != nil {
			return nil, err
		}
		list := make([]evaluator, len(ex.List))
		for i, le := range ex.List {
			list[i], err = compileExpr(le, rs, aggLookup)
			if err != nil {
				return nil, err
			}
		}
		not := ex.Not
		return func(row engine.Tuple) (engine.Value, error) {
			v, err := inner(row)
			if err != nil {
				return engine.Null, err
			}
			if v.IsNull() {
				return engine.Null, nil
			}
			for _, le := range list {
				lv, err := le(row)
				if err != nil {
					return engine.Null, err
				}
				if engine.Equal(v, lv) {
					return engine.NewBool(!not), nil
				}
			}
			return engine.NewBool(not), nil
		}, nil
	case IsNullExpr:
		inner, err := compileExpr(ex.Expr, rs, aggLookup)
		if err != nil {
			return nil, err
		}
		not := ex.Not
		return func(row engine.Tuple) (engine.Value, error) {
			v, err := inner(row)
			if err != nil {
				return engine.Null, err
			}
			return engine.NewBool(v.IsNull() != not), nil
		}, nil
	case BetweenExpr:
		inner, err := compileExpr(ex.Expr, rs, aggLookup)
		if err != nil {
			return nil, err
		}
		lo, err := compileExpr(ex.Lo, rs, aggLookup)
		if err != nil {
			return nil, err
		}
		hi, err := compileExpr(ex.Hi, rs, aggLookup)
		if err != nil {
			return nil, err
		}
		not := ex.Not
		return func(row engine.Tuple) (engine.Value, error) {
			v, err := inner(row)
			if err != nil || v.IsNull() {
				return engine.Null, err
			}
			lv, err := lo(row)
			if err != nil {
				return engine.Null, err
			}
			hv, err := hi(row)
			if err != nil {
				return engine.Null, err
			}
			in := engine.Compare(v, lv) >= 0 && engine.Compare(v, hv) <= 0
			return engine.NewBool(in != not), nil
		}, nil
	case FuncCall:
		if aggregateNames[ex.Name] {
			if aggLookup == nil {
				return nil, fmt.Errorf("relational: aggregate %s outside grouped query", ex.Name)
			}
			key := exprKey(ex)
			return func(row engine.Tuple) (engine.Value, error) {
				v, ok := aggLookup(key, row)
				if !ok {
					return engine.Null, fmt.Errorf("relational: aggregate %s not computed", key)
				}
				return v, nil
			}, nil
		}
		return compileScalarFunc(ex, rs, aggLookup)
	default:
		return nil, fmt.Errorf("relational: cannot compile %T", e)
	}
}

func compileBinary(ex BinaryExpr, rs rowSchema, aggLookup func(string, engine.Tuple) (engine.Value, bool)) (evaluator, error) {
	left, err := compileExpr(ex.Left, rs, aggLookup)
	if err != nil {
		return nil, err
	}
	right, err := compileExpr(ex.Right, rs, aggLookup)
	if err != nil {
		return nil, err
	}
	op := ex.Op
	switch op {
	case "AND":
		return func(row engine.Tuple) (engine.Value, error) {
			l, err := left(row)
			if err != nil {
				return engine.Null, err
			}
			if !l.IsNull() && !l.AsBool() {
				return engine.NewBool(false), nil
			}
			r, err := right(row)
			if err != nil {
				return engine.Null, err
			}
			if !r.IsNull() && !r.AsBool() {
				return engine.NewBool(false), nil
			}
			if l.IsNull() || r.IsNull() {
				return engine.Null, nil
			}
			return engine.NewBool(true), nil
		}, nil
	case "OR":
		return func(row engine.Tuple) (engine.Value, error) {
			l, err := left(row)
			if err != nil {
				return engine.Null, err
			}
			if !l.IsNull() && l.AsBool() {
				return engine.NewBool(true), nil
			}
			r, err := right(row)
			if err != nil {
				return engine.Null, err
			}
			if !r.IsNull() && r.AsBool() {
				return engine.NewBool(true), nil
			}
			if l.IsNull() || r.IsNull() {
				return engine.Null, nil
			}
			return engine.NewBool(false), nil
		}, nil
	case "=", "<>", "<", "<=", ">", ">=":
		return func(row engine.Tuple) (engine.Value, error) {
			l, err := left(row)
			if err != nil {
				return engine.Null, err
			}
			r, err := right(row)
			if err != nil {
				return engine.Null, err
			}
			if l.IsNull() || r.IsNull() {
				return engine.Null, nil
			}
			cmp := engine.Compare(l, r)
			var b bool
			switch op {
			case "=":
				b = cmp == 0
			case "<>":
				b = cmp != 0
			case "<":
				b = cmp < 0
			case "<=":
				b = cmp <= 0
			case ">":
				b = cmp > 0
			case ">=":
				b = cmp >= 0
			}
			return engine.NewBool(b), nil
		}, nil
	case "LIKE":
		return func(row engine.Tuple) (engine.Value, error) {
			l, err := left(row)
			if err != nil {
				return engine.Null, err
			}
			r, err := right(row)
			if err != nil {
				return engine.Null, err
			}
			if l.IsNull() || r.IsNull() {
				return engine.Null, nil
			}
			return engine.NewBool(likeMatch(l.String(), r.String())), nil
		}, nil
	case "||":
		return func(row engine.Tuple) (engine.Value, error) {
			l, err := left(row)
			if err != nil {
				return engine.Null, err
			}
			r, err := right(row)
			if err != nil {
				return engine.Null, err
			}
			if l.IsNull() || r.IsNull() {
				return engine.Null, nil
			}
			return engine.NewString(l.String() + r.String()), nil
		}, nil
	case "+", "-", "*", "/", "%":
		return func(row engine.Tuple) (engine.Value, error) {
			l, err := left(row)
			if err != nil {
				return engine.Null, err
			}
			r, err := right(row)
			if err != nil {
				return engine.Null, err
			}
			if l.IsNull() || r.IsNull() {
				return engine.Null, nil
			}
			return arith(op, l, r)
		}, nil
	default:
		return nil, fmt.Errorf("relational: unknown binary op %q", op)
	}
}

func arith(op string, l, r engine.Value) (engine.Value, error) {
	bothInt := l.Kind == engine.TypeInt && r.Kind == engine.TypeInt
	if bothInt {
		a, b := l.I, r.I
		switch op {
		case "+":
			return engine.NewInt(a + b), nil
		case "-":
			return engine.NewInt(a - b), nil
		case "*":
			return engine.NewInt(a * b), nil
		case "/":
			if b == 0 {
				return engine.Null, fmt.Errorf("relational: division by zero")
			}
			return engine.NewInt(a / b), nil
		case "%":
			if b == 0 {
				return engine.Null, fmt.Errorf("relational: modulo by zero")
			}
			return engine.NewInt(a % b), nil
		}
	}
	a, b := l.AsFloat(), r.AsFloat()
	switch op {
	case "+":
		return engine.NewFloat(a + b), nil
	case "-":
		return engine.NewFloat(a - b), nil
	case "*":
		return engine.NewFloat(a * b), nil
	case "/":
		if b == 0 {
			return engine.Null, fmt.Errorf("relational: division by zero")
		}
		return engine.NewFloat(a / b), nil
	case "%":
		return engine.NewFloat(math.Mod(a, b)), nil
	}
	return engine.Null, fmt.Errorf("relational: unknown arithmetic op %q", op)
}

// likeMatch implements SQL LIKE with % (any run) and _ (any single
// char), case-insensitive like Postgres ILIKE for demo friendliness.
func likeMatch(s, pattern string) bool {
	return likeIter(strings.ToLower(s), strings.ToLower(pattern))
}

// likeIter matches iteratively with two cursors and single-level
// backtracking to the most recent %. Nested recursion per % made
// pathological patterns like %a%a%a%… against a long non-matching
// string exponential; this form is O(len(s)·len(p)) worst case.
func likeIter(s, p string) bool {
	si, pi := 0, 0
	star, ss := -1, 0 // position of the last % in p, and the s index its run currently ends at
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			star, ss = pi, si
			pi++
		case star >= 0:
			// Mismatch after a %: widen that %'s run by one and retry.
			ss++
			si, pi = ss, star+1
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

func compileScalarFunc(ex FuncCall, rs rowSchema, aggLookup func(string, engine.Tuple) (engine.Value, bool)) (evaluator, error) {
	args := make([]evaluator, len(ex.Args))
	var err error
	for i, a := range ex.Args {
		args[i], err = compileExpr(a, rs, aggLookup)
		if err != nil {
			return nil, err
		}
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("relational: %s expects %d args, got %d", ex.Name, n, len(args))
		}
		return nil
	}
	evalArgs := func(row engine.Tuple) ([]engine.Value, error) {
		vs := make([]engine.Value, len(args))
		for i, a := range args {
			v, err := a(row)
			if err != nil {
				return nil, err
			}
			vs[i] = v
		}
		return vs, nil
	}
	float1 := func(f func(float64) float64) (evaluator, error) {
		if err := need(1); err != nil {
			return nil, err
		}
		return func(row engine.Tuple) (engine.Value, error) {
			v, err := args[0](row)
			if err != nil || v.IsNull() {
				return engine.Null, err
			}
			return engine.NewFloat(f(v.AsFloat())), nil
		}, nil
	}
	switch ex.Name {
	case "ABS":
		if err := need(1); err != nil {
			return nil, err
		}
		return func(row engine.Tuple) (engine.Value, error) {
			v, err := args[0](row)
			if err != nil || v.IsNull() {
				return engine.Null, err
			}
			if v.Kind == engine.TypeInt {
				if v.I < 0 {
					return engine.NewInt(-v.I), nil
				}
				return v, nil
			}
			return engine.NewFloat(math.Abs(v.AsFloat())), nil
		}, nil
	case "SQRT":
		return float1(math.Sqrt)
	case "LOG", "LN":
		return float1(math.Log)
	case "EXP":
		return float1(math.Exp)
	case "SIN":
		return float1(math.Sin)
	case "COS":
		return float1(math.Cos)
	case "FLOOR":
		return float1(math.Floor)
	case "CEIL", "CEILING":
		return float1(math.Ceil)
	case "ROUND":
		if len(args) == 2 {
			return func(row engine.Tuple) (engine.Value, error) {
				vs, err := evalArgs(row)
				if err != nil || vs[0].IsNull() {
					return engine.Null, err
				}
				scale := math.Pow10(int(vs[1].AsInt()))
				return engine.NewFloat(math.Round(vs[0].AsFloat()*scale) / scale), nil
			}, nil
		}
		return float1(math.Round)
	case "POW", "POWER":
		if err := need(2); err != nil {
			return nil, err
		}
		return func(row engine.Tuple) (engine.Value, error) {
			vs, err := evalArgs(row)
			if err != nil || vs[0].IsNull() || vs[1].IsNull() {
				return engine.Null, err
			}
			return engine.NewFloat(math.Pow(vs[0].AsFloat(), vs[1].AsFloat())), nil
		}, nil
	case "MOD":
		if err := need(2); err != nil {
			return nil, err
		}
		return func(row engine.Tuple) (engine.Value, error) {
			vs, err := evalArgs(row)
			if err != nil || vs[0].IsNull() || vs[1].IsNull() {
				return engine.Null, err
			}
			return arith("%", vs[0], vs[1])
		}, nil
	case "LOWER":
		if err := need(1); err != nil {
			return nil, err
		}
		return func(row engine.Tuple) (engine.Value, error) {
			v, err := args[0](row)
			if err != nil || v.IsNull() {
				return engine.Null, err
			}
			return engine.NewString(strings.ToLower(v.String())), nil
		}, nil
	case "UPPER":
		if err := need(1); err != nil {
			return nil, err
		}
		return func(row engine.Tuple) (engine.Value, error) {
			v, err := args[0](row)
			if err != nil || v.IsNull() {
				return engine.Null, err
			}
			return engine.NewString(strings.ToUpper(v.String())), nil
		}, nil
	case "LENGTH":
		if err := need(1); err != nil {
			return nil, err
		}
		return func(row engine.Tuple) (engine.Value, error) {
			v, err := args[0](row)
			if err != nil || v.IsNull() {
				return engine.Null, err
			}
			return engine.NewInt(int64(len(v.String()))), nil
		}, nil
	case "SUBSTR", "SUBSTRING":
		if len(args) != 2 && len(args) != 3 {
			return nil, fmt.Errorf("relational: SUBSTR expects 2 or 3 args")
		}
		return func(row engine.Tuple) (engine.Value, error) {
			vs, err := evalArgs(row)
			if err != nil || vs[0].IsNull() {
				return engine.Null, err
			}
			s := vs[0].String()
			start := int(vs[1].AsInt()) - 1 // SQL is 1-based
			if start < 0 {
				start = 0
			}
			if start > len(s) {
				return engine.NewString(""), nil
			}
			end := len(s)
			if len(vs) == 3 {
				if e := start + int(vs[2].AsInt()); e < end {
					end = e
				}
			}
			if end < start {
				end = start
			}
			return engine.NewString(s[start:end]), nil
		}, nil
	case "CONCAT":
		return func(row engine.Tuple) (engine.Value, error) {
			vs, err := evalArgs(row)
			if err != nil {
				return engine.Null, err
			}
			var sb strings.Builder
			for _, v := range vs {
				sb.WriteString(v.String())
			}
			return engine.NewString(sb.String()), nil
		}, nil
	case "COALESCE":
		return func(row engine.Tuple) (engine.Value, error) {
			for _, a := range args {
				v, err := a(row)
				if err != nil {
					return engine.Null, err
				}
				if !v.IsNull() {
					return v, nil
				}
			}
			return engine.Null, nil
		}, nil
	default:
		return nil, fmt.Errorf("relational: unknown function %s", ex.Name)
	}
}

// exprKey renders a canonical string for an expression, used to identify
// aggregate computations and DISTINCT/group keys.
func exprKey(e Expr) string {
	switch ex := e.(type) {
	case nil:
		return "<nil>"
	case Literal:
		return fmt.Sprintf("lit(%d:%s)", ex.Val.Kind, ex.Val.String())
	case ColumnRef:
		return strings.ToLower(ex.Table) + "." + strings.ToLower(ex.Name)
	case BinaryExpr:
		return "(" + exprKey(ex.Left) + " " + ex.Op + " " + exprKey(ex.Right) + ")"
	case UnaryExpr:
		return ex.Op + "(" + exprKey(ex.Expr) + ")"
	case FuncCall:
		parts := make([]string, len(ex.Args))
		for i, a := range ex.Args {
			parts[i] = exprKey(a)
		}
		star := ""
		if ex.Star {
			star = "*"
		}
		distinct := ""
		if ex.Distinct {
			distinct = "distinct "
		}
		return ex.Name + "(" + distinct + star + strings.Join(parts, ",") + ")"
	case InExpr:
		parts := make([]string, len(ex.List))
		for i, a := range ex.List {
			parts[i] = exprKey(a)
		}
		return fmt.Sprintf("in(%s,%v,[%s])", exprKey(ex.Expr), ex.Not, strings.Join(parts, ","))
	case IsNullExpr:
		return fmt.Sprintf("isnull(%s,%v)", exprKey(ex.Expr), ex.Not)
	case BetweenExpr:
		return fmt.Sprintf("between(%s,%s,%s,%v)", exprKey(ex.Expr), exprKey(ex.Lo), exprKey(ex.Hi), ex.Not)
	default:
		return fmt.Sprintf("%#v", e)
	}
}

// collectAggregates finds every distinct aggregate FuncCall in the
// expression trees, keyed by exprKey.
func collectAggregates(exprs []Expr) []FuncCall {
	seen := map[string]bool{}
	var out []FuncCall
	var walk func(Expr)
	walk = func(e Expr) {
		switch ex := e.(type) {
		case FuncCall:
			if aggregateNames[ex.Name] {
				k := exprKey(ex)
				if !seen[k] {
					seen[k] = true
					out = append(out, ex)
				}
				return // aggregates don't nest
			}
			for _, a := range ex.Args {
				walk(a)
			}
		case BinaryExpr:
			walk(ex.Left)
			walk(ex.Right)
		case UnaryExpr:
			walk(ex.Expr)
		case InExpr:
			walk(ex.Expr)
			for _, a := range ex.List {
				walk(a)
			}
		case IsNullExpr:
			walk(ex.Expr)
		case BetweenExpr:
			walk(ex.Expr)
			walk(ex.Lo)
			walk(ex.Hi)
		}
	}
	for _, e := range exprs {
		if e != nil {
			walk(e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return exprKey(out[i]) < exprKey(out[j]) })
	return out
}
