package relational

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/engine"
)

// testDB builds a small two-table database used across tests.
func testDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	mustExec(t, db, `CREATE TABLE patients (id INT PRIMARY KEY, name TEXT, age INT, sex TEXT, race TEXT)`)
	mustExec(t, db, `CREATE TABLE admissions (adm_id INT PRIMARY KEY, patient_id INT, ward TEXT, days FLOAT)`)
	rows := []string{
		`(1, 'alice', 70, 'F', 'white')`,
		`(2, 'bob', 62, 'M', 'black')`,
		`(3, 'carol', 55, 'F', 'asian')`,
		`(4, 'dave', 81, 'M', 'white')`,
		`(5, 'erin', 47, 'F', 'black')`,
	}
	mustExec(t, db, `INSERT INTO patients VALUES `+strings.Join(rows, ", "))
	adms := []string{
		`(100, 1, 'icu', 4.5)`,
		`(101, 1, 'ward', 2.0)`,
		`(102, 2, 'icu', 9.0)`,
		`(103, 3, 'icu', 1.5)`,
		`(104, 4, 'ward', 3.0)`,
	}
	mustExec(t, db, `INSERT INTO admissions VALUES `+strings.Join(adms, ", "))
	return db
}

func mustExec(t *testing.T, db *DB, sql string) *engine.Relation {
	t.Helper()
	rel, err := db.Execute(sql)
	if err != nil {
		t.Fatalf("Execute(%q): %v", sql, err)
	}
	return rel
}

func mustQuery(t *testing.T, db *DB, sql string) *engine.Relation {
	t.Helper()
	rel, err := db.Query(sql)
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	return rel
}

func TestLexer(t *testing.T) {
	toks, err := lex(`SELECT a.b, 'it''s', 3.5e2 FROM t WHERE x >= 10`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.kind)
		texts = append(texts, tok.text)
	}
	if texts[5] != "it's" || kinds[5] != tokString {
		t.Errorf("string escape: got %q kind %d", texts[5], kinds[5])
	}
	if texts[7] != "3.5e2" || kinds[7] != tokNumber {
		t.Errorf("scientific number: got %q kind %d", texts[7], kinds[7])
	}
	if _, err := lex("SELECT 'unterminated"); err == nil {
		t.Error("unterminated string should fail")
	}
	if _, err := lex("SELECT ~"); err == nil {
		t.Error("bad char should fail")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"FOO BAR",
		"SELECT",
		"SELECT * FROM",
		"CREATE TABLE t (x BLOB)",
		"INSERT INTO t",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t GROUP",
		"SELECT * FROM t extra garbage here (",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func TestCreateInsertSelect(t *testing.T) {
	db := testDB(t)
	rel := mustQuery(t, db, `SELECT name, age FROM patients WHERE age > 60 ORDER BY age`)
	if rel.Len() != 3 {
		t.Fatalf("got %d rows, want 3: %v", rel.Len(), rel)
	}
	if rel.Tuples[0][0].S != "bob" || rel.Tuples[2][0].S != "dave" {
		t.Errorf("order wrong: %v", rel)
	}
	if rel.Schema.Columns[1].Type != engine.TypeInt {
		t.Errorf("age type = %v", rel.Schema.Columns[1].Type)
	}
}

func TestSelectStar(t *testing.T) {
	db := testDB(t)
	rel := mustQuery(t, db, `SELECT * FROM patients`)
	if rel.Len() != 5 || len(rel.Schema.Columns) != 5 {
		t.Fatalf("star select: %v", rel.Schema)
	}
}

func TestWherePredicates(t *testing.T) {
	db := testDB(t)
	cases := []struct {
		sql  string
		want int
	}{
		{`SELECT id FROM patients WHERE sex = 'F'`, 3},
		{`SELECT id FROM patients WHERE sex = 'F' AND age < 60`, 2},
		{`SELECT id FROM patients WHERE sex = 'M' OR race = 'asian'`, 3},
		{`SELECT id FROM patients WHERE NOT sex = 'M'`, 3},
		{`SELECT id FROM patients WHERE name LIKE 'a%'`, 1},
		{`SELECT id FROM patients WHERE name LIKE '%a%'`, 3},
		{`SELECT id FROM patients WHERE name LIKE '_ob'`, 1},
		{`SELECT id FROM patients WHERE name NOT LIKE '%a%'`, 2},
		{`SELECT id FROM patients WHERE age IN (70, 81)`, 2},
		{`SELECT id FROM patients WHERE age NOT IN (70, 81)`, 3},
		{`SELECT id FROM patients WHERE age BETWEEN 55 AND 70`, 3},
		{`SELECT id FROM patients WHERE age NOT BETWEEN 55 AND 70`, 2},
		{`SELECT id FROM patients WHERE age % 2 = 0`, 2},
		{`SELECT id FROM patients WHERE age * 2 > 120`, 3},
	}
	for _, tc := range cases {
		rel := mustQuery(t, db, tc.sql)
		if rel.Len() != tc.want {
			t.Errorf("%s: got %d rows, want %d", tc.sql, rel.Len(), tc.want)
		}
	}
}

func TestNullSemantics(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE t (id INT, v INT)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 10), (2, NULL), (3, 30)`)
	// NULL comparisons are UNKNOWN and filtered out.
	if got := mustQuery(t, db, `SELECT id FROM t WHERE v > 5`).Len(); got != 2 {
		t.Errorf("WHERE v > 5 with NULL: %d rows, want 2", got)
	}
	if got := mustQuery(t, db, `SELECT id FROM t WHERE v IS NULL`).Len(); got != 1 {
		t.Errorf("IS NULL: %d", got)
	}
	if got := mustQuery(t, db, `SELECT id FROM t WHERE v IS NOT NULL`).Len(); got != 2 {
		t.Errorf("IS NOT NULL: %d", got)
	}
	// Aggregates skip NULLs; COUNT(*) does not.
	rel := mustQuery(t, db, `SELECT COUNT(*), COUNT(v), SUM(v), AVG(v) FROM t`)
	row := rel.Tuples[0]
	if row[0].I != 3 || row[1].I != 2 || row[2].AsFloat() != 40 || row[3].AsFloat() != 20 {
		t.Errorf("aggregate NULL handling: %v", row)
	}
	// COALESCE picks the first non-NULL.
	rel = mustQuery(t, db, `SELECT COALESCE(v, -1) FROM t WHERE id = 2`)
	if rel.Tuples[0][0].AsInt() != -1 {
		t.Errorf("COALESCE: %v", rel.Tuples[0][0])
	}
}

func TestAggregates(t *testing.T) {
	db := testDB(t)
	rel := mustQuery(t, db, `SELECT COUNT(*), MIN(age), MAX(age), AVG(age), SUM(age) FROM patients`)
	row := rel.Tuples[0]
	if row[0].I != 5 || row[1].AsInt() != 47 || row[2].AsInt() != 81 {
		t.Errorf("count/min/max: %v", row)
	}
	if row[3].AsFloat() != 63 || row[4].AsFloat() != 315 {
		t.Errorf("avg/sum: %v", row)
	}
	// STDDEV (sample): ages 70,62,55,81,47 → mean 63, var 173.5, sd ~13.17
	rel = mustQuery(t, db, `SELECT STDDEV(age) FROM patients`)
	if sd := rel.Tuples[0][0].AsFloat(); math.Abs(sd-math.Sqrt(173.5)) > 1e-9 {
		t.Errorf("stddev = %v", sd)
	}
	// COUNT DISTINCT.
	rel = mustQuery(t, db, `SELECT COUNT(DISTINCT race) FROM patients`)
	if rel.Tuples[0][0].I != 3 {
		t.Errorf("count distinct race: %v", rel.Tuples[0][0])
	}
	// Aggregates over empty input: one row with NULL/0.
	rel = mustQuery(t, db, `SELECT COUNT(*), SUM(age) FROM patients WHERE age > 1000`)
	if rel.Len() != 1 || rel.Tuples[0][0].I != 0 || !rel.Tuples[0][1].IsNull() {
		t.Errorf("empty aggregate: %v", rel)
	}
}

func TestGroupByHaving(t *testing.T) {
	db := testDB(t)
	rel := mustQuery(t, db, `SELECT sex, COUNT(*) AS n, AVG(age) AS avg_age FROM patients GROUP BY sex ORDER BY sex`)
	if rel.Len() != 2 {
		t.Fatalf("groups: %v", rel)
	}
	// F first: alice 70, carol 55, erin 47 → n=3 avg=57.33
	if rel.Tuples[0][0].S != "F" || rel.Tuples[0][1].I != 3 {
		t.Errorf("F group: %v", rel.Tuples[0])
	}
	if math.Abs(rel.Tuples[0][2].AsFloat()-57.333) > 0.01 {
		t.Errorf("F avg: %v", rel.Tuples[0][2])
	}
	// HAVING filters groups.
	rel = mustQuery(t, db, `SELECT race, COUNT(*) AS n FROM patients GROUP BY race HAVING COUNT(*) > 1 ORDER BY race`)
	if rel.Len() != 2 {
		t.Fatalf("having groups: %v", rel)
	}
	if rel.Tuples[0][0].S != "black" || rel.Tuples[1][0].S != "white" {
		t.Errorf("having result: %v", rel)
	}
	// ORDER BY aggregate.
	rel = mustQuery(t, db, `SELECT race, COUNT(*) FROM patients GROUP BY race ORDER BY COUNT(*) DESC, race`)
	if rel.Tuples[0][0].S != "black" && rel.Tuples[0][0].S != "white" {
		t.Errorf("order by count: %v", rel)
	}
	if rel.Tuples[2][0].S != "asian" {
		t.Errorf("asian should be last: %v", rel)
	}
}

func TestGroupByExpression(t *testing.T) {
	db := testDB(t)
	rel := mustQuery(t, db, `SELECT age / 10 AS decade, COUNT(*) FROM patients GROUP BY decade ORDER BY decade`)
	if rel.Len() != 4 { // 4x, 5x, 6x, 7x, 8x → 47;55;62;70;81 → decades 4,5,6,7,8 = 5 groups
		// recompute: 47→4, 55→5, 62→6, 70→7, 81→8: five groups
		if rel.Len() != 5 {
			t.Fatalf("decades: %v", rel)
		}
	}
}

func TestJoins(t *testing.T) {
	db := testDB(t)
	// Inner join.
	rel := mustQuery(t, db, `SELECT p.name, a.ward, a.days FROM patients p JOIN admissions a ON p.id = a.patient_id ORDER BY a.adm_id`)
	if rel.Len() != 5 {
		t.Fatalf("inner join rows: %d", rel.Len())
	}
	if rel.Tuples[0][0].S != "alice" || rel.Tuples[0][1].S != "icu" {
		t.Errorf("join row 0: %v", rel.Tuples[0])
	}
	// Left join: erin (id 5) has no admissions.
	rel = mustQuery(t, db, `SELECT p.name, a.ward FROM patients p LEFT JOIN admissions a ON p.id = a.patient_id WHERE a.ward IS NULL`)
	if rel.Len() != 1 || rel.Tuples[0][0].S != "erin" {
		t.Errorf("left join nulls: %v", rel)
	}
	// Cross join cardinality.
	rel = mustQuery(t, db, `SELECT COUNT(*) FROM patients CROSS JOIN admissions`)
	if rel.Tuples[0][0].I != 25 {
		t.Errorf("cross join count: %v", rel.Tuples[0][0])
	}
	// Join + group by.
	rel = mustQuery(t, db, `SELECT p.sex, AVG(a.days) AS d FROM patients p JOIN admissions a ON p.id = a.patient_id GROUP BY p.sex ORDER BY p.sex`)
	if rel.Len() != 2 {
		t.Fatalf("join group: %v", rel)
	}
	// F: alice(4.5,2.0) carol(1.5) → 8/3; M: bob 9.0, dave 3.0 → 6.0
	if math.Abs(rel.Tuples[0][1].AsFloat()-8.0/3) > 1e-9 || rel.Tuples[1][1].AsFloat() != 6 {
		t.Errorf("join group avg: %v", rel)
	}
	// Non-equi join falls back to nested loop.
	rel = mustQuery(t, db, `SELECT COUNT(*) FROM patients p JOIN admissions a ON p.id < a.patient_id`)
	want := int64(0)
	for _, pid := range []int64{1, 2, 3, 4, 5} {
		for _, apid := range []int64{1, 1, 2, 3, 4} {
			if pid < apid {
				want++
			}
		}
	}
	if rel.Tuples[0][0].I != want {
		t.Errorf("non-equi join: %v, want %d", rel.Tuples[0][0], want)
	}
}

func TestOrderLimitOffsetDistinct(t *testing.T) {
	db := testDB(t)
	rel := mustQuery(t, db, `SELECT name FROM patients ORDER BY age DESC LIMIT 2`)
	if rel.Len() != 2 || rel.Tuples[0][0].S != "dave" || rel.Tuples[1][0].S != "alice" {
		t.Errorf("limit: %v", rel)
	}
	rel = mustQuery(t, db, `SELECT name FROM patients ORDER BY age DESC LIMIT 2 OFFSET 2`)
	if rel.Len() != 2 || rel.Tuples[0][0].S != "bob" {
		t.Errorf("offset: %v", rel)
	}
	rel = mustQuery(t, db, `SELECT DISTINCT sex FROM patients ORDER BY sex`)
	if rel.Len() != 2 || rel.Tuples[0][0].S != "F" {
		t.Errorf("distinct: %v", rel)
	}
	// ORDER BY position.
	rel = mustQuery(t, db, `SELECT name, age FROM patients ORDER BY 2`)
	if rel.Tuples[0][0].S != "erin" {
		t.Errorf("order by position: %v", rel)
	}
	// OFFSET beyond end.
	rel = mustQuery(t, db, `SELECT name FROM patients OFFSET 99`)
	if rel.Len() != 0 {
		t.Errorf("offset beyond end: %v", rel)
	}
}

func TestScalarFunctions(t *testing.T) {
	db := testDB(t)
	rel := mustQuery(t, db, `SELECT UPPER(name), LENGTH(name), SUBSTR(name, 1, 2) FROM patients WHERE id = 1`)
	row := rel.Tuples[0]
	if row[0].S != "ALICE" || row[1].I != 5 || row[2].S != "al" {
		t.Errorf("string funcs: %v", row)
	}
	rel = mustQuery(t, db, `SELECT ABS(-5), SQRT(16.0), ROUND(3.456, 2), POW(2, 10), MOD(10, 3)`)
	row = rel.Tuples[0]
	if row[0].AsInt() != 5 || row[1].AsFloat() != 4 || row[2].AsFloat() != 3.46 ||
		row[3].AsFloat() != 1024 || row[4].AsInt() != 1 {
		t.Errorf("math funcs: %v", row)
	}
	rel = mustQuery(t, db, `SELECT 'a' || 'b' || 'c', CONCAT('x', 1, 'y')`)
	row = rel.Tuples[0]
	if row[0].S != "abc" || row[1].S != "x1y" {
		t.Errorf("concat: %v", row)
	}
}

func TestUpdateDelete(t *testing.T) {
	db := testDB(t)
	rel := mustExec(t, db, `UPDATE patients SET age = age + 1 WHERE sex = 'F'`)
	if rel.Tuples[0][1].I != 3 {
		t.Errorf("update count: %v", rel)
	}
	got := mustQuery(t, db, `SELECT age FROM patients WHERE id = 1`)
	if got.Tuples[0][0].AsInt() != 71 {
		t.Errorf("update applied: %v", got)
	}
	rel = mustExec(t, db, `DELETE FROM patients WHERE age > 80`)
	if rel.Tuples[0][1].I != 1 {
		t.Errorf("delete count: %v", rel)
	}
	if n, _ := db.TableLen("patients"); n != 4 {
		t.Errorf("post-delete len: %d", n)
	}
	// PK lookup of deleted row finds nothing.
	got = mustQuery(t, db, `SELECT * FROM patients WHERE id = 4`)
	if got.Len() != 0 {
		t.Errorf("deleted row still visible: %v", got)
	}
}

func TestPrimaryKeyAndIndex(t *testing.T) {
	db := testDB(t)
	// Duplicate PK rejected.
	if _, err := db.Execute(`INSERT INTO patients VALUES (1, 'dup', 1, 'F', 'x')`); err == nil {
		t.Error("duplicate PK should fail")
	}
	// Secondary index returns same results as scan.
	mustExec(t, db, `CREATE INDEX idx_race ON patients (race)`)
	rel := mustQuery(t, db, `SELECT name FROM patients WHERE race = 'white' ORDER BY name`)
	if rel.Len() != 2 || rel.Tuples[0][0].S != "alice" {
		t.Errorf("index lookup: %v", rel)
	}
	// Index respects subsequent inserts and deletes.
	mustExec(t, db, `INSERT INTO patients VALUES (6, 'frank', 33, 'M', 'white')`)
	mustExec(t, db, `DELETE FROM patients WHERE id = 1`)
	rel = mustQuery(t, db, `SELECT name FROM patients WHERE race = 'white' ORDER BY name`)
	if rel.Len() != 2 || rel.Tuples[0][0].S != "dave" || rel.Tuples[1][0].S != "frank" {
		t.Errorf("index after mutation: %v", rel)
	}
}

func TestInsertColumnList(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE t (a INT, b TEXT, c FLOAT)`)
	mustExec(t, db, `INSERT INTO t (c, a) VALUES (1.5, 7)`)
	rel := mustQuery(t, db, `SELECT a, b, c FROM t`)
	row := rel.Tuples[0]
	if row[0].I != 7 || !row[1].IsNull() || row[2].F != 1.5 {
		t.Errorf("column-list insert: %v", row)
	}
}

func TestTypeCoercionOnInsert(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE t (f FLOAT, s TEXT)`)
	mustExec(t, db, `INSERT INTO t VALUES (3, 42)`) // int → float, int → string
	rel := mustQuery(t, db, `SELECT f, s FROM t`)
	if rel.Tuples[0][0].Kind != engine.TypeFloat || rel.Tuples[0][1].S != "42" {
		t.Errorf("coercion: %v", rel.Tuples[0])
	}
	if _, err := db.Execute(`INSERT INTO t VALUES ('abc', 'x')`); err == nil {
		t.Error("string into float should fail")
	}
}

func TestDumpAndInsertRelation(t *testing.T) {
	db := testDB(t)
	rel, err := db.Dump("patients")
	if err != nil || rel.Len() != 5 {
		t.Fatalf("dump: %v %v", rel, err)
	}
	db2 := NewDB()
	if err := db2.InsertRelation("patients_copy", rel); err != nil {
		t.Fatal(err)
	}
	got := mustQuery(t, db2, `SELECT COUNT(*) FROM patients_copy`)
	if got.Tuples[0][0].I != 5 {
		t.Errorf("copied rows: %v", got)
	}
}

func TestTableLessSelect(t *testing.T) {
	db := NewDB()
	rel := mustQuery(t, db, `SELECT 1 + 2 AS three, 'x'`)
	if rel.Tuples[0][0].AsInt() != 3 || rel.Tuples[0][1].S != "x" {
		t.Errorf("table-less select: %v", rel)
	}
	if rel.Schema.Columns[0].Name != "three" {
		t.Errorf("alias: %v", rel.Schema)
	}
}

func TestDivisionByZero(t *testing.T) {
	db := NewDB()
	if _, err := db.Query(`SELECT 1 / 0`); err == nil {
		t.Error("int division by zero should fail")
	}
	if _, err := db.Query(`SELECT 1.0 / 0.0`); err == nil {
		t.Error("float division by zero should fail")
	}
}

func TestAmbiguousColumn(t *testing.T) {
	db := testDB(t)
	// "id" exists only in patients; "patient_id" only in admissions; but
	// joining patients to itself makes "name" ambiguous.
	if _, err := db.Query(`SELECT name FROM patients a JOIN patients b ON a.id = b.id`); err == nil {
		t.Error("ambiguous column should fail")
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "h_llo", true},
		{"hello", "h_o", false},
		{"hello", "hell", false},
		{"hello", "%ell%", true},
		{"hello", "hello", true},
		{"hello", "", false},
		{"", "%", true},
		{"abc", "%%", true},
		{"HeLLo", "hello", true}, // case-insensitive
	}
	for _, tc := range cases {
		if got := likeMatch(tc.s, tc.p); got != tc.want {
			t.Errorf("likeMatch(%q,%q) = %v", tc.s, tc.p, got)
		}
	}
}

func TestLikePercentAlwaysMatchesSuffix(t *testing.T) {
	// Property: pattern prefix+"%" matches any string with that prefix.
	f := func(prefix, suffix string) bool {
		if strings.ContainsAny(prefix, "%_") {
			return true
		}
		return likeMatch(prefix+suffix, prefix+"%")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAggregationMatchesManualComputation(t *testing.T) {
	// Property: SUM/COUNT over generated ints match a manual loop.
	db := NewDB()
	mustExec(t, db, `CREATE TABLE nums (v INT)`)
	var total int64
	n := 0
	for i := 0; i < 100; i++ {
		v := int64((i*37)%101 - 50)
		mustExec(t, db, fmt.Sprintf(`INSERT INTO nums VALUES (%d)`, v))
		total += v
		n++
	}
	rel := mustQuery(t, db, `SELECT COUNT(*), SUM(v) FROM nums`)
	if rel.Tuples[0][0].I != int64(n) || rel.Tuples[0][1].AsInt() != total {
		t.Errorf("agg mismatch: %v want count=%d sum=%d", rel.Tuples[0], n, total)
	}
}

func TestStatsCounters(t *testing.T) {
	db := testDB(t)
	before := db.Stats()
	mustQuery(t, db, `SELECT * FROM patients`)
	after := db.Stats()
	if after.Queries != before.Queries+1 {
		t.Errorf("queries counter: %d -> %d", before.Queries, after.Queries)
	}
	if after.RowsScanned <= before.RowsScanned {
		t.Errorf("rows scanned should grow")
	}
}

func TestConcurrentReaders(t *testing.T) {
	db := testDB(t)
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 50; j++ {
				if _, err := db.Query(`SELECT COUNT(*) FROM patients WHERE age > 50`); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
