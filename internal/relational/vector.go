package relational

import (
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"

	"repro/internal/engine"
)

// Vectorized executor kernels. The row-at-a-time executor in exec.go
// interprets one compiled closure tree per row; the kernels here compile
// the same Expr tree once into batch operators that run tight typed
// loops over ColumnBatch vectors, driven by a selection vector (indices
// of the surviving rows). Plans the compiler cannot express — scalar
// function calls, mixed-type (generic) columns, exotic comparisons —
// report !ok and the executor falls back to the row path, so
// vectorization is always a pure optimisation, never a semantics change.

// parallelScanRows is the batch cardinality at which base-table scans
// and filters partition across workers (worker-per-chunk, merged in
// selection order at the end).
const parallelScanRows = 1 << 15

// vec is one intermediate result vector, dense over the current
// selection: entry k holds the value for row sel[k]. null[k] marks SQL
// NULL (three-valued logic propagates it through every kernel).
type vec struct {
	kind   engine.Type
	ints   []int64
	floats []float64
	strs   []string
	bools  []bool
	null   []bool
}

// reset prepares the vector for n results of the given kind. null and
// bools are zeroed (the short-circuiting AND kernel relies on skipped
// rows reading false); ints/floats/strs buffers come back dirty, so
// every kernel must write all selected entries of those.
func (v *vec) reset(kind engine.Type, n int) {
	v.kind = kind
	if cap(v.null) < n {
		v.null = make([]bool, n)
	} else {
		v.null = v.null[:n]
		for i := range v.null {
			v.null[i] = false
		}
	}
	switch kind {
	case engine.TypeInt:
		if cap(v.ints) < n {
			v.ints = make([]int64, n)
		} else {
			v.ints = v.ints[:n]
		}
	case engine.TypeFloat:
		if cap(v.floats) < n {
			v.floats = make([]float64, n)
		} else {
			v.floats = v.floats[:n]
		}
	case engine.TypeString:
		if cap(v.strs) < n {
			v.strs = make([]string, n)
		} else {
			v.strs = v.strs[:n]
		}
	case engine.TypeBool:
		if cap(v.bools) < n {
			v.bools = make([]bool, n)
		} else {
			v.bools = v.bools[:n]
			for i := range v.bools {
				v.bools[i] = false
			}
		}
	}
}

// valueAt boxes entry k.
func (v *vec) valueAt(k int) engine.Value {
	if v.null[k] {
		return engine.Null
	}
	switch v.kind {
	case engine.TypeInt:
		return engine.NewInt(v.ints[k])
	case engine.TypeFloat:
		return engine.NewFloat(v.floats[k])
	case engine.TypeString:
		return engine.NewString(v.strs[k])
	default:
		return engine.NewBool(v.bools[k])
	}
}

// floatAt reads entry k as float64; valid for numeric vecs only.
func (v *vec) floatAt(k int) float64 {
	if v.kind == engine.TypeInt {
		return float64(v.ints[k])
	}
	return v.floats[k]
}

// appendGroupKey appends a canonical byte encoding of entry k, used to
// build composite GROUP BY hash keys without boxing.
func (v *vec) appendGroupKey(buf []byte, k int) []byte {
	if v.null[k] {
		return append(buf, 0)
	}
	switch v.kind {
	case engine.TypeInt:
		buf = append(buf, 1)
		return binary.AppendVarint(buf, v.ints[k])
	case engine.TypeFloat:
		buf = append(buf, 2)
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.floats[k]))
	case engine.TypeString:
		buf = append(buf, 3)
		buf = binary.AppendUvarint(buf, uint64(len(v.strs[k])))
		return append(buf, v.strs[k]...)
	default:
		if v.bools[k] {
			return append(buf, 5)
		}
		return append(buf, 4)
	}
}

// vecExpr is a compiled vectorized expression: a statically known result
// kind plus an evaluator. Evaluators are reentrant (no captured mutable
// state) so chunked scans may share one compiled tree across workers.
type vecExpr struct {
	kind engine.Type
	eval func(sel []int32, out *vec) error
}

// vecCompiler compiles Expr trees against one specific batch.
type vecCompiler struct {
	b  *engine.ColumnBatch
	rs rowSchema
}

func isNumericKind(t engine.Type) bool { return t == engine.TypeInt || t == engine.TypeFloat }

func comparableKinds(a, b engine.Type) bool {
	if isNumericKind(a) && isNumericKind(b) {
		return true
	}
	return a == engine.TypeString && b == engine.TypeString
}

// compile returns the vectorized form of e, or ok=false when e (or a
// subexpression) is outside the vectorizable subset.
func (vc *vecCompiler) compile(e Expr) (vecExpr, bool) {
	switch ex := e.(type) {
	case Literal:
		return vc.compileLiteral(ex.Val)
	case ColumnRef:
		idx, err := vc.rs.resolve(ex.Table, ex.Name)
		if err != nil || idx >= len(vc.b.Cols) {
			return vecExpr{}, false
		}
		return vc.compileColumn(idx)
	case UnaryExpr:
		inner, ok := vc.compile(ex.Expr)
		if !ok {
			return vecExpr{}, false
		}
		switch ex.Op {
		case "-":
			if !isNumericKind(inner.kind) {
				return vecExpr{}, false
			}
			kind := inner.kind
			return vecExpr{kind: kind, eval: func(sel []int32, out *vec) error {
				var in vec
				if err := inner.eval(sel, &in); err != nil {
					return err
				}
				out.reset(kind, len(sel))
				copy(out.null, in.null)
				if kind == engine.TypeInt {
					for k := range in.ints {
						out.ints[k] = -in.ints[k]
					}
				} else {
					for k := range in.floats {
						out.floats[k] = -in.floats[k]
					}
				}
				return nil
			}}, true
		case "NOT":
			if inner.kind != engine.TypeBool {
				return vecExpr{}, false
			}
			return vecExpr{kind: engine.TypeBool, eval: func(sel []int32, out *vec) error {
				var in vec
				if err := inner.eval(sel, &in); err != nil {
					return err
				}
				out.reset(engine.TypeBool, len(sel))
				copy(out.null, in.null)
				for k := range in.bools {
					out.bools[k] = !in.bools[k]
				}
				return nil
			}}, true
		default:
			return vecExpr{}, false
		}
	case BinaryExpr:
		return vc.compileBinary(ex)
	case IsNullExpr:
		inner, ok := vc.compile(ex.Expr)
		if !ok {
			return vecExpr{}, false
		}
		not := ex.Not
		return vecExpr{kind: engine.TypeBool, eval: func(sel []int32, out *vec) error {
			var in vec
			if err := inner.eval(sel, &in); err != nil {
				return err
			}
			out.reset(engine.TypeBool, len(sel))
			for k := range in.null {
				out.bools[k] = in.null[k] != not
			}
			return nil
		}}, true
	case BetweenExpr:
		return vc.compileBetween(ex)
	case InExpr:
		return vc.compileIn(ex)
	default:
		// FuncCall (scalar and aggregate) and anything unknown: row path.
		return vecExpr{}, false
	}
}

func (vc *vecCompiler) compileLiteral(v engine.Value) (vecExpr, bool) {
	kind := v.Kind
	switch kind {
	case engine.TypeInt, engine.TypeFloat, engine.TypeString, engine.TypeBool:
	default:
		return vecExpr{}, false
	}
	return vecExpr{kind: kind, eval: func(sel []int32, out *vec) error {
		out.reset(kind, len(sel))
		switch kind {
		case engine.TypeInt:
			for k := range out.ints {
				out.ints[k] = v.I
			}
		case engine.TypeFloat:
			for k := range out.floats {
				out.floats[k] = v.F
			}
		case engine.TypeString:
			for k := range out.strs {
				out.strs[k] = v.S
			}
		case engine.TypeBool:
			for k := range out.bools {
				out.bools[k] = v.B
			}
		}
		return nil
	}}, true
}

func (vc *vecCompiler) compileColumn(idx int) (vecExpr, bool) {
	col := &vc.b.Cols[idx]
	kind := col.Kind
	if kind == engine.TypeNull {
		return vecExpr{}, false // generic column: row path
	}
	nulls := col.Nulls
	return vecExpr{kind: kind, eval: func(sel []int32, out *vec) error {
		out.reset(kind, len(sel))
		switch kind {
		case engine.TypeInt:
			src := col.Ints
			for k, i := range sel {
				out.ints[k] = src[i]
			}
		case engine.TypeFloat:
			src := col.Floats
			for k, i := range sel {
				out.floats[k] = src[i]
			}
		case engine.TypeString:
			src := col.Strs
			for k, i := range sel {
				out.strs[k] = src[i]
			}
		case engine.TypeBool:
			src := col.Bools
			for k, i := range sel {
				out.bools[k] = src[i]
			}
		}
		if len(nulls) > 0 {
			for k, i := range sel {
				out.null[k] = nulls.Get(int(i))
			}
		}
		return nil
	}}, true
}

func (vc *vecCompiler) compileBinary(ex BinaryExpr) (vecExpr, bool) {
	op := ex.Op
	switch op {
	case "AND", "OR":
		l, ok := vc.compile(ex.Left)
		if !ok || l.kind != engine.TypeBool {
			return vecExpr{}, false
		}
		r, ok := vc.compile(ex.Right)
		if !ok || r.kind != engine.TypeBool {
			return vecExpr{}, false
		}
		isAnd := op == "AND"
		// Like the row path, the right operand is short-circuited: it is
		// evaluated only over the rows the left side does not decide
		// (left true-or-null for AND, false-or-null for OR). This keeps
		// guarded expressions — `d <> 0 AND 10 / d > 1` — from erroring
		// on rows the guard excludes.
		return vecExpr{kind: engine.TypeBool, eval: func(sel []int32, out *vec) error {
			var lv vec
			if err := l.eval(sel, &lv); err != nil {
				return err
			}
			sub := make([]int32, 0, len(sel))
			subPos := make([]int32, 0, len(sel))
			for k := range sel {
				lb, ln := lv.bools[k], lv.null[k]
				var need bool
				if isAnd {
					need = ln || lb
				} else {
					need = ln || !lb
				}
				if need {
					sub = append(sub, sel[k])
					subPos = append(subPos, int32(k))
				}
			}
			out.reset(engine.TypeBool, len(sel))
			if !isAnd {
				// Rows decided by the left side alone: left-true ORs.
				for k := range sel {
					out.bools[k] = !lv.null[k] && lv.bools[k]
				}
			}
			// (For AND, left-false rows keep the zeroed false.)
			if len(sub) == 0 {
				return nil
			}
			var rv vec
			if err := r.eval(sub, &rv); err != nil {
				return err
			}
			for m, k := range subPos {
				ln := lv.null[k]
				rb, rn := rv.bools[m], rv.null[m]
				if isAnd {
					switch {
					case !rn && !rb:
						out.bools[k] = false
						out.null[k] = false
					case ln || rn:
						out.bools[k] = false
						out.null[k] = true
					default:
						out.bools[k] = true
					}
				} else {
					switch {
					case !rn && rb:
						out.bools[k] = true
						out.null[k] = false
					case ln || rn:
						out.bools[k] = false
						out.null[k] = true
					default:
						out.bools[k] = false
					}
				}
			}
			return nil
		}}, true
	case "=", "<>", "<", "<=", ">", ">=":
		l, ok := vc.compile(ex.Left)
		if !ok {
			return vecExpr{}, false
		}
		r, ok := vc.compile(ex.Right)
		if !ok || !comparableKinds(l.kind, r.kind) {
			return vecExpr{}, false
		}
		// Decode the operator into branch flags once, so the per-row
		// loop never dispatches on the operator string.
		var wantLt, wantEq, wantGt bool
		switch op {
		case "=":
			wantEq = true
		case "<>":
			wantLt, wantGt = true, true
		case "<":
			wantLt = true
		case "<=":
			wantLt, wantEq = true, true
		case ">":
			wantGt = true
		case ">=":
			wantGt, wantEq = true, true
		}
		return vecExpr{kind: engine.TypeBool, eval: func(sel []int32, out *vec) error {
			var lv, rv vec
			if err := l.eval(sel, &lv); err != nil {
				return err
			}
			if err := r.eval(sel, &rv); err != nil {
				return err
			}
			out.reset(engine.TypeBool, len(sel))
			switch {
			case lv.kind == engine.TypeInt && rv.kind == engine.TypeInt:
				for k := range out.bools {
					if lv.null[k] || rv.null[k] {
						out.null[k] = true
						continue
					}
					a, b := lv.ints[k], rv.ints[k]
					out.bools[k] = (a < b && wantLt) || (a == b && wantEq) || (a > b && wantGt)
				}
			case lv.kind == engine.TypeString:
				for k := range out.bools {
					if lv.null[k] || rv.null[k] {
						out.null[k] = true
						continue
					}
					cmp := strings.Compare(lv.strs[k], rv.strs[k])
					out.bools[k] = (cmp < 0 && wantLt) || (cmp == 0 && wantEq) || (cmp > 0 && wantGt)
				}
			default:
				for k := range out.bools {
					if lv.null[k] || rv.null[k] {
						out.null[k] = true
						continue
					}
					a, b := lv.floatAt(k), rv.floatAt(k)
					out.bools[k] = (a < b && wantLt) || (a == b && wantEq) || (a > b && wantGt)
				}
			}
			return nil
		}}, true
	case "+", "-", "*", "/", "%":
		l, ok := vc.compile(ex.Left)
		if !ok || !isNumericKind(l.kind) {
			return vecExpr{}, false
		}
		r, ok := vc.compile(ex.Right)
		if !ok || !isNumericKind(r.kind) {
			return vecExpr{}, false
		}
		bothInt := l.kind == engine.TypeInt && r.kind == engine.TypeInt
		kind := engine.TypeFloat
		if bothInt {
			kind = engine.TypeInt
		}
		return vecExpr{kind: kind, eval: func(sel []int32, out *vec) error {
			var lv, rv vec
			if err := l.eval(sel, &lv); err != nil {
				return err
			}
			if err := r.eval(sel, &rv); err != nil {
				return err
			}
			out.reset(kind, len(sel))
			if bothInt {
				for k := range out.ints {
					if lv.null[k] || rv.null[k] {
						out.null[k] = true
						continue
					}
					a, b := lv.ints[k], rv.ints[k]
					switch op {
					case "+":
						out.ints[k] = a + b
					case "-":
						out.ints[k] = a - b
					case "*":
						out.ints[k] = a * b
					case "/":
						if b == 0 {
							return fmt.Errorf("relational: division by zero")
						}
						out.ints[k] = a / b
					case "%":
						if b == 0 {
							return fmt.Errorf("relational: modulo by zero")
						}
						out.ints[k] = a % b
					}
				}
				return nil
			}
			for k := range out.floats {
				if lv.null[k] || rv.null[k] {
					out.null[k] = true
					continue
				}
				a, b := lv.floatAt(k), rv.floatAt(k)
				switch op {
				case "+":
					out.floats[k] = a + b
				case "-":
					out.floats[k] = a - b
				case "*":
					out.floats[k] = a * b
				case "/":
					if b == 0 {
						return fmt.Errorf("relational: division by zero")
					}
					out.floats[k] = a / b
				case "%":
					out.floats[k] = math.Mod(a, b)
				}
			}
			return nil
		}}, true
	case "LIKE":
		l, ok := vc.compile(ex.Left)
		if !ok || l.kind != engine.TypeString {
			return vecExpr{}, false
		}
		// The common shape is a literal pattern: lower it once.
		if lit, isLit := ex.Right.(Literal); isLit && lit.Val.Kind == engine.TypeString {
			pattern := strings.ToLower(lit.Val.S)
			return vecExpr{kind: engine.TypeBool, eval: func(sel []int32, out *vec) error {
				var lv vec
				if err := l.eval(sel, &lv); err != nil {
					return err
				}
				out.reset(engine.TypeBool, len(sel))
				for k := range out.bools {
					if lv.null[k] {
						out.null[k] = true
						continue
					}
					out.bools[k] = likeIter(strings.ToLower(lv.strs[k]), pattern)
				}
				return nil
			}}, true
		}
		r, ok := vc.compile(ex.Right)
		if !ok || r.kind != engine.TypeString {
			return vecExpr{}, false
		}
		return vecExpr{kind: engine.TypeBool, eval: func(sel []int32, out *vec) error {
			var lv, rv vec
			if err := l.eval(sel, &lv); err != nil {
				return err
			}
			if err := r.eval(sel, &rv); err != nil {
				return err
			}
			out.reset(engine.TypeBool, len(sel))
			for k := range out.bools {
				if lv.null[k] || rv.null[k] {
					out.null[k] = true
					continue
				}
				out.bools[k] = likeMatch(lv.strs[k], rv.strs[k])
			}
			return nil
		}}, true
	case "||":
		l, ok := vc.compile(ex.Left)
		if !ok || l.kind != engine.TypeString {
			return vecExpr{}, false
		}
		r, ok := vc.compile(ex.Right)
		if !ok || r.kind != engine.TypeString {
			return vecExpr{}, false
		}
		return vecExpr{kind: engine.TypeString, eval: func(sel []int32, out *vec) error {
			var lv, rv vec
			if err := l.eval(sel, &lv); err != nil {
				return err
			}
			if err := r.eval(sel, &rv); err != nil {
				return err
			}
			out.reset(engine.TypeString, len(sel))
			for k := range out.strs {
				if lv.null[k] || rv.null[k] {
					out.null[k] = true
					continue
				}
				out.strs[k] = lv.strs[k] + rv.strs[k]
			}
			return nil
		}}, true
	default:
		return vecExpr{}, false
	}
}

func (vc *vecCompiler) compileBetween(ex BetweenExpr) (vecExpr, bool) {
	c, ok := vc.compile(ex.Expr)
	if !ok {
		return vecExpr{}, false
	}
	lo, ok := vc.compile(ex.Lo)
	if !ok || !comparableKinds(c.kind, lo.kind) {
		return vecExpr{}, false
	}
	hi, ok := vc.compile(ex.Hi)
	if !ok || !comparableKinds(c.kind, hi.kind) {
		return vecExpr{}, false
	}
	not := ex.Not
	return vecExpr{kind: engine.TypeBool, eval: func(sel []int32, out *vec) error {
		var cv, lv, hv vec
		if err := c.eval(sel, &cv); err != nil {
			return err
		}
		if err := lo.eval(sel, &lv); err != nil {
			return err
		}
		if err := hi.eval(sel, &hv); err != nil {
			return err
		}
		out.reset(engine.TypeBool, len(sel))
		for k := range out.bools {
			if cv.null[k] {
				out.null[k] = true
				continue
			}
			if lv.null[k] || hv.null[k] {
				// Match the row path: a NULL bound still compares (NULL
				// sorts first), because the row evaluator calls
				// engine.Compare on the boxed values.
				in := engine.Compare(cv.valueAt(k), lv.valueAt(k)) >= 0 &&
					engine.Compare(cv.valueAt(k), hv.valueAt(k)) <= 0
				out.bools[k] = in != not
				continue
			}
			var in bool
			if cv.kind == engine.TypeString {
				in = cv.strs[k] >= lv.strs[k] && cv.strs[k] <= hv.strs[k]
			} else if cv.kind == engine.TypeInt && lv.kind == engine.TypeInt && hv.kind == engine.TypeInt {
				in = cv.ints[k] >= lv.ints[k] && cv.ints[k] <= hv.ints[k]
			} else {
				f := cv.floatAt(k)
				in = f >= lv.floatAt(k) && f <= hv.floatAt(k)
			}
			out.bools[k] = in != not
		}
		return nil
	}}, true
}

func (vc *vecCompiler) compileIn(ex InExpr) (vecExpr, bool) {
	c, ok := vc.compile(ex.Expr)
	if !ok {
		return vecExpr{}, false
	}
	// Only literal lists vectorize. NULL literals can never compare
	// equal (the row path's engine.Equal never matches them), so they
	// are dropped.
	var lits []engine.Value
	for _, le := range ex.List {
		lit, isLit := le.(Literal)
		if !isLit {
			return vecExpr{}, false
		}
		if lit.Val.Kind == engine.TypeNull {
			continue
		}
		if !comparableKinds(c.kind, lit.Val.Kind) {
			return vecExpr{}, false
		}
		lits = append(lits, lit.Val)
	}
	not := ex.Not
	if len(lits) == 0 {
		// Every literal was NULL (or the list was empty): no value can
		// match, so the result is constant `not` for non-null inputs,
		// NULL for null inputs — same as the row path's miss case.
		return vecExpr{kind: engine.TypeBool, eval: func(sel []int32, out *vec) error {
			var cv vec
			if err := c.eval(sel, &cv); err != nil {
				return err
			}
			out.reset(engine.TypeBool, len(sel))
			for k := range sel {
				if cv.null[k] {
					out.null[k] = true
					continue
				}
				out.bools[k] = not
			}
			return nil
		}}, true
	}
	if c.kind == engine.TypeString {
		set := make(map[string]bool, len(lits))
		for _, v := range lits {
			set[v.S] = true
		}
		return vecExpr{kind: engine.TypeBool, eval: func(sel []int32, out *vec) error {
			var cv vec
			if err := c.eval(sel, &cv); err != nil {
				return err
			}
			out.reset(engine.TypeBool, len(sel))
			for k := range out.bools {
				if cv.null[k] {
					out.null[k] = true
					continue
				}
				out.bools[k] = set[cv.strs[k]] != not
			}
			return nil
		}}, true
	}
	allInt := c.kind == engine.TypeInt
	for _, v := range lits {
		if v.Kind != engine.TypeInt {
			allInt = false
		}
	}
	if allInt {
		set := make(map[int64]bool, len(lits))
		for _, v := range lits {
			set[v.I] = true
		}
		return vecExpr{kind: engine.TypeBool, eval: func(sel []int32, out *vec) error {
			var cv vec
			if err := c.eval(sel, &cv); err != nil {
				return err
			}
			out.reset(engine.TypeBool, len(sel))
			for k := range out.bools {
				if cv.null[k] {
					out.null[k] = true
					continue
				}
				out.bools[k] = set[cv.ints[k]] != not
			}
			return nil
		}}, true
	}
	floats := make([]float64, len(lits))
	for i, v := range lits {
		floats[i] = v.AsFloat()
	}
	return vecExpr{kind: engine.TypeBool, eval: func(sel []int32, out *vec) error {
		var cv vec
		if err := c.eval(sel, &cv); err != nil {
			return err
		}
		out.reset(engine.TypeBool, len(sel))
		for k := range out.bools {
			if cv.null[k] {
				out.null[k] = true
				continue
			}
			f := cv.floatAt(k)
			found := false
			for _, lf := range floats {
				if f == lf {
					found = true
					break
				}
			}
			out.bools[k] = found != not
		}
		return nil
	}}, true
}

// ---------- drivers ----------

// identitySel returns the selection vector 0..n-1.
func identitySel(n int) []int32 {
	sel := make([]int32, n)
	for i := range sel {
		sel[i] = int32(i)
	}
	return sel
}

// runVecFilter applies the compiled predicate over sel, returning the
// surviving selection. Large selections partition across workers; each
// worker filters its chunk and the chunks concatenate in order, so the
// output order matches the sequential scan.
func runVecFilter(pred vecExpr, sel []int32) ([]int32, error) {
	workers := runtime.GOMAXPROCS(0)
	if len(sel) < parallelScanRows || workers < 2 {
		return filterChunk(pred, sel)
	}
	chunk := (len(sel) + workers - 1) / workers
	type part struct {
		kept []int32
		err  error
	}
	parts := make([]part, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(sel) {
			hi = len(sel)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			kept, err := filterChunk(pred, sel[lo:hi])
			parts[w] = part{kept, err}
		}(w, lo, hi)
	}
	wg.Wait()
	total := 0
	for _, p := range parts {
		if p.err != nil {
			return nil, p.err
		}
		total += len(p.kept)
	}
	out := make([]int32, 0, total)
	for _, p := range parts {
		out = append(out, p.kept...)
	}
	return out, nil
}

func filterChunk(pred vecExpr, sel []int32) ([]int32, error) {
	var out vec
	if err := pred.eval(sel, &out); err != nil {
		return nil, err
	}
	kept := make([]int32, 0, len(sel))
	for k, i := range sel {
		if out.bools[k] && !out.null[k] {
			kept = append(kept, i)
		}
	}
	return kept, nil
}

// ---------- batch hash join ----------

// vecHashJoin joins the selected left rows against the right batch on
// key equality (left column lIdx = right column rIdx), returning the
// combined batch. ok=false when the key columns are not joinable in
// typed form (generic columns, bools, string-vs-number), in which case
// the caller falls back to the row join.
func vecHashJoin(lb *engine.ColumnBatch, lsel []int32, rb *engine.ColumnBatch,
	lIdx, rIdx int, kind JoinKind, combined engine.Schema) (*engine.ColumnBatch, bool) {
	lc, rc := &lb.Cols[lIdx], &rb.Cols[rIdx]
	var lrows, rrows []int32
	left := kind == JoinLeft

	switch {
	case lc.Kind == engine.TypeInt && rc.Kind == engine.TypeInt:
		build := make(map[int64][]int32, rb.NumRows)
		for i, v := range rc.Ints {
			if !rc.Nulls.Get(i) {
				build[v] = append(build[v], int32(i))
			}
		}
		lrows, rrows = probeJoin(lsel, left, func(i int32) ([]int32, bool) {
			if lc.Nulls.Get(int(i)) {
				return nil, false
			}
			return build[lc.Ints[i]], true
		})
	case isNumericKind(lc.Kind) && isNumericKind(rc.Kind):
		// Mixed int/float keys: promote to float64, matching the row
		// path's numeric valueKey equivalence (1 joins 1.0).
		build := make(map[float64][]int32, rb.NumRows)
		for i := 0; i < rb.NumRows; i++ {
			if rc.Nulls.Get(i) {
				continue
			}
			k := colFloat(rc, i)
			build[k] = append(build[k], int32(i))
		}
		lrows, rrows = probeJoin(lsel, left, func(i int32) ([]int32, bool) {
			if lc.Nulls.Get(int(i)) {
				return nil, false
			}
			return build[colFloat(lc, int(i))], true
		})
	case lc.Kind == engine.TypeString && rc.Kind == engine.TypeString:
		build := make(map[string][]int32, rb.NumRows)
		for i, v := range rc.Strs {
			if !rc.Nulls.Get(i) {
				build[v] = append(build[v], int32(i))
			}
		}
		lrows, rrows = probeJoin(lsel, left, func(i int32) ([]int32, bool) {
			if lc.Nulls.Get(int(i)) {
				return nil, false
			}
			return build[lc.Strs[i]], true
		})
	default:
		return nil, false
	}

	out := &engine.ColumnBatch{Schema: combined, Cols: make([]engine.ColVec, len(lb.Cols)+len(rb.Cols)), NumRows: len(lrows)}
	for j := range lb.Cols {
		out.Cols[j] = gatherVec(&lb.Cols[j], lrows)
	}
	for j := range rb.Cols {
		out.Cols[len(lb.Cols)+j] = gatherVec(&rb.Cols[j], rrows)
	}
	return out, true
}

func colFloat(c *engine.ColVec, i int) float64 {
	if c.Kind == engine.TypeInt {
		return float64(c.Ints[i])
	}
	return c.Floats[i]
}

// probeJoin walks the probe side emitting (leftRow, rightRow) index
// pairs; a -1 right row marks LEFT JOIN null padding.
func probeJoin(lsel []int32, left bool, lookup func(i int32) ([]int32, bool)) (lrows, rrows []int32) {
	lrows = make([]int32, 0, len(lsel))
	rrows = make([]int32, 0, len(lsel))
	for _, i := range lsel {
		matches, _ := lookup(i)
		if len(matches) == 0 {
			if left {
				lrows = append(lrows, i)
				rrows = append(rrows, -1)
			}
			continue
		}
		for _, r := range matches {
			lrows = append(lrows, i)
			rrows = append(rrows, r)
		}
	}
	return lrows, rrows
}

// gatherVec materialises src at the given row indices; -1 gathers NULL.
func gatherVec(src *engine.ColVec, rows []int32) engine.ColVec {
	out := engine.ColVec{Kind: src.Kind}
	if src.Kind == engine.TypeNull {
		out.Any = make([]engine.Value, len(rows))
		for k, r := range rows {
			if r < 0 {
				out.Any[k] = engine.Null
			} else {
				out.Any[k] = src.Any[r]
			}
		}
		return out
	}
	setNull := func(k int, r int32) bool {
		if r < 0 || src.Nulls.Get(int(r)) {
			out.Nulls.Set(k)
			return true
		}
		return false
	}
	switch src.Kind {
	case engine.TypeInt:
		out.Ints = make([]int64, len(rows))
		for k, r := range rows {
			if !setNull(k, r) {
				out.Ints[k] = src.Ints[r]
			}
		}
	case engine.TypeFloat:
		out.Floats = make([]float64, len(rows))
		for k, r := range rows {
			if !setNull(k, r) {
				out.Floats[k] = src.Floats[r]
			}
		}
	case engine.TypeString:
		out.Strs = make([]string, len(rows))
		for k, r := range rows {
			if !setNull(k, r) {
				out.Strs[k] = src.Strs[r]
			}
		}
	case engine.TypeBool:
		out.Bools = make([]bool, len(rows))
		for k, r := range rows {
			if !setNull(k, r) {
				out.Bools[k] = src.Bools[r]
			}
		}
	}
	return out
}

// materializeRows boxes the selected batch rows into tuples, carving
// them from one arena (the bridge from the vectorized pipeline back to
// the row-at-a-time fallback).
func materializeRows(b *engine.ColumnBatch, sel []int32) []engine.Tuple {
	if sel == nil {
		return b.ToRelation().Tuples
	}
	ncols := len(b.Cols)
	rows := make([]engine.Tuple, len(sel))
	arena := make([]engine.Value, len(sel)*ncols)
	for k := range sel {
		rows[k] = engine.Tuple(arena[k*ncols : (k+1)*ncols : (k+1)*ncols])
	}
	for j := range b.Cols {
		c := &b.Cols[j]
		for k, i := range sel {
			arena[k*ncols+j] = c.Value(int(i))
		}
	}
	return rows
}
