package relational

import (
	"fmt"

	"repro/internal/engine"
)

// RowExpr is a compiled scalar expression over flat rows. Other engines
// (array cells, stream records, Tupleware UDF pipelines) reuse the SQL
// expression grammar through this API so users write one predicate
// language across islands.
type RowExpr func(row engine.Tuple) (engine.Value, error)

// ParseExpression parses a scalar SQL expression (no statement keywords).
func ParseExpression(src string) (Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("relational: trailing input in expression at %q", p.peek().text)
	}
	return e, nil
}

// CompileExpression compiles a parsed expression against an unqualified
// column list. Aggregates are rejected.
func CompileExpression(e Expr, cols []engine.Column) (RowExpr, error) {
	if hasAggregate(e) {
		return nil, fmt.Errorf("relational: aggregates not allowed in row expressions")
	}
	rs := baseRowSchema("", engine.Schema{Columns: cols})
	ev, err := compileExpr(e, rs, nil)
	if err != nil {
		return nil, err
	}
	return RowExpr(ev), nil
}

// CompileRowExpr parses and compiles src in one step.
func CompileRowExpr(src string, cols []engine.Column) (RowExpr, error) {
	e, err := ParseExpression(src)
	if err != nil {
		return nil, err
	}
	return CompileExpression(e, cols)
}
