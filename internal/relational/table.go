package relational

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
)

// Table is one base table: schema, row storage, and indexes. A primary
// key gets a unique hash index; CREATE INDEX adds non-unique secondary
// hash indexes. Indexes map value keys to row slots.
type Table struct {
	Name    string
	Schema  engine.Schema
	PKCol   int // -1 if no primary key
	rows    []engine.Tuple
	deleted []bool // tombstones; compacted lazily
	live    int

	pkIndex   map[string]int // value key -> slot
	secondary map[int]*index // column idx -> index

	// Columnar scan cache for the vectorized executor. version is bumped
	// on every mutation (always under the DB write lock); the cache is
	// rebuilt lazily on the next vectorized scan. cacheMu serialises
	// rebuilds between concurrent readers, which hold only the DB read
	// lock.
	version  int64
	cacheMu  sync.Mutex
	colCache *engine.ColumnBatch
	cacheVer int64
}

type index struct {
	col   int
	slots map[string][]int
}

func newTable(name string, schema engine.Schema, pkCol int) *Table {
	t := &Table{
		Name:      name,
		Schema:    schema,
		PKCol:     pkCol,
		secondary: map[int]*index{},
	}
	if pkCol >= 0 {
		t.pkIndex = map[string]int{}
	}
	return t
}

// valueKey renders a value for index/group hashing. Kind is included so
// 1 and "1" hash differently, but INT/FLOAT with equal numeric value
// collide intentionally (Compare treats them equal).
func valueKey(v engine.Value) string {
	switch v.Kind {
	case engine.TypeNull:
		return "\x00"
	case engine.TypeInt, engine.TypeFloat, engine.TypeBool:
		return "n" + v.String()
	default:
		return "s" + v.S
	}
}

func tupleKey(t engine.Tuple) string {
	var sb strings.Builder
	for _, v := range t {
		sb.WriteString(valueKey(v))
		sb.WriteByte('\x1f')
	}
	return sb.String()
}

// insert adds a row, maintaining indexes.
func (t *Table) insert(row engine.Tuple) error {
	if len(row) != len(t.Schema.Columns) {
		return fmt.Errorf("relational: %s: arity %d != %d", t.Name, len(row), len(t.Schema.Columns))
	}
	// Light type check with numeric coercion.
	for i, v := range row {
		want := t.Schema.Columns[i].Type
		if v.IsNull() || v.Kind == want {
			continue
		}
		switch {
		case want == engine.TypeFloat && v.Kind == engine.TypeInt:
			row[i] = engine.NewFloat(float64(v.I))
		case want == engine.TypeInt && v.Kind == engine.TypeFloat && v.F == float64(int64(v.F)):
			row[i] = engine.NewInt(int64(v.F))
		case want == engine.TypeString:
			row[i] = engine.NewString(v.String())
		default:
			return fmt.Errorf("relational: %s.%s: cannot store %v as %v",
				t.Name, t.Schema.Columns[i].Name, v.Kind, want)
		}
	}
	if t.PKCol >= 0 {
		k := valueKey(row[t.PKCol])
		if _, dup := t.pkIndex[k]; dup {
			return fmt.Errorf("relational: %s: duplicate primary key %v", t.Name, row[t.PKCol])
		}
		t.pkIndex[k] = len(t.rows)
	}
	slot := len(t.rows)
	t.rows = append(t.rows, row)
	t.deleted = append(t.deleted, false)
	t.live++
	t.version++
	for _, idx := range t.secondary {
		k := valueKey(row[idx.col])
		idx.slots[k] = append(idx.slots[k], slot)
	}
	return nil
}

// deleteSlot tombstones a row and removes it from indexes.
func (t *Table) deleteSlot(slot int) {
	if t.deleted[slot] {
		return
	}
	t.deleted[slot] = true
	t.live--
	t.version++
	if t.PKCol >= 0 {
		delete(t.pkIndex, valueKey(t.rows[slot][t.PKCol]))
	}
	for _, idx := range t.secondary {
		k := valueKey(t.rows[slot][idx.col])
		list := idx.slots[k]
		for i, s := range list {
			if s == slot {
				idx.slots[k] = append(list[:i], list[i+1:]...)
				break
			}
		}
		if len(idx.slots[k]) == 0 {
			delete(idx.slots, k)
		}
	}
}

// addIndex builds a secondary index on the named column.
func (t *Table) addIndex(col string) error {
	ci := t.Schema.Index(col)
	if ci < 0 {
		return fmt.Errorf("relational: %s: no column %q", t.Name, col)
	}
	if _, ok := t.secondary[ci]; ok {
		return nil // idempotent
	}
	idx := &index{col: ci, slots: map[string][]int{}}
	for slot, row := range t.rows {
		if t.deleted[slot] {
			continue
		}
		k := valueKey(row[ci])
		idx.slots[k] = append(idx.slots[k], slot)
	}
	t.secondary[ci] = idx
	return nil
}

// lookup returns the live row slots whose column ci equals v, using an
// index if one exists; ok is false if no index covers ci.
func (t *Table) lookup(ci int, v engine.Value) (slots []int, ok bool) {
	if t.PKCol == ci && t.pkIndex != nil {
		if s, hit := t.pkIndex[valueKey(v)]; hit {
			return []int{s}, true
		}
		return nil, true
	}
	if idx, hit := t.secondary[ci]; hit {
		return idx.slots[valueKey(v)], true
	}
	return nil, false
}

// scan calls fn for every live row.
func (t *Table) scan(fn func(slot int, row engine.Tuple) error) error {
	for slot, row := range t.rows {
		if t.deleted[slot] {
			continue
		}
		if err := fn(slot, row); err != nil {
			return err
		}
	}
	return nil
}

// Len returns the number of live rows.
func (t *Table) Len() int { return t.live }

// columnBatch returns the cached columnar image of the live rows,
// rebuilding it when the table has mutated since the last build. The
// returned batch is an immutable snapshot: mutations bump version and
// the next call builds a fresh batch rather than touching this one, so
// callers (including CAST encoders running outside the table lock) may
// keep reading it.
func (t *Table) columnBatch() *engine.ColumnBatch {
	t.cacheMu.Lock()
	defer t.cacheMu.Unlock()
	if t.colCache == nil || t.cacheVer != t.version {
		t.colCache = buildColumnBatch(t.Schema, t.rows, t.deleted, t.live)
		t.cacheVer = t.version
	}
	return t.colCache
}

// buildColumnBatch converts the live rows to columnar form. Large
// tables are partitioned across workers — one chunk per worker, merged
// in order at the end.
func buildColumnBatch(schema engine.Schema, rows []engine.Tuple, deleted []bool, live int) *engine.ColumnBatch {
	workers := runtime.GOMAXPROCS(0)
	if len(rows) < parallelScanRows || workers < 2 {
		cb := engine.NewColumnBatch(schema, live)
		for slot, row := range rows {
			if !deleted[slot] {
				_ = cb.AppendTuple(row)
			}
		}
		return cb
	}
	chunk := (len(rows) + workers - 1) / workers
	parts := make([]*engine.ColumnBatch, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(rows) {
			hi = len(rows)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			cb := engine.NewColumnBatch(schema, hi-lo)
			for slot := lo; slot < hi; slot++ {
				if !deleted[slot] {
					_ = cb.AppendTuple(rows[slot])
				}
			}
			parts[w] = cb
		}(w, lo, hi)
	}
	wg.Wait()
	out := engine.NewColumnBatch(schema, live)
	for _, p := range parts {
		if p != nil {
			_ = out.AppendBatch(p)
		}
	}
	return out
}

// DB is the relational engine: a set of tables behind a RW lock. It is
// safe for concurrent use; writers serialise, readers share.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table

	// vectorized selects the columnar batch executor for SELECT hot
	// paths (on by default); the row-at-a-time executor remains as the
	// fallback for plans the vectorizer cannot compile.
	vectorized bool

	// Stats feed the cross-system monitor (§2.1 of the paper). The
	// counters are atomic because readers sharing the RLock bump them
	// concurrently.
	stats engineCounters
}

type engineCounters struct {
	queries     atomic.Int64
	rowsScanned atomic.Int64
}

// EngineStats counts work done by the engine, for the monitoring system.
type EngineStats struct {
	Queries     int64
	RowsScanned int64
}

// NewDB creates an empty database.
func NewDB() *DB {
	return &DB{tables: map[string]*Table{}, vectorized: true}
}

// SetVectorized toggles the vectorized executor; with it off every
// query runs the row-at-a-time path. Exposed so benchmarks and
// experiments can compare the two executors on identical plans.
func (db *DB) SetVectorized(on bool) {
	db.mu.Lock()
	db.vectorized = on
	db.mu.Unlock()
}

// Stats returns a snapshot of the engine counters.
func (db *DB) Stats() EngineStats {
	return EngineStats{
		Queries:     db.stats.queries.Load(),
		RowsScanned: db.stats.rowsScanned.Load(),
	}
}

// CreateTable registers a new table programmatically.
func (db *DB) CreateTable(name string, schema engine.Schema, primaryKey string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.createTableLocked(name, schema, primaryKey)
}

func (db *DB) createTableLocked(name string, schema engine.Schema, primaryKey string) error {
	key := strings.ToLower(name)
	if _, exists := db.tables[key]; exists {
		return fmt.Errorf("relational: table %q already exists", name)
	}
	pk := -1
	if primaryKey != "" {
		pk = schema.Index(primaryKey)
		if pk < 0 {
			return fmt.Errorf("relational: primary key %q not in schema", primaryKey)
		}
	}
	db.tables[key] = newTable(name, schema, pk)
	return nil
}

// DropTable removes a table.
func (db *DB) DropTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := db.tables[key]; !ok {
		return fmt.Errorf("relational: no table %q", name)
	}
	delete(db.tables, key)
	return nil
}

// RenameTable atomically moves a table to a new name. It fails if the
// source is missing or the target name is taken, so a staged cast
// commit cannot clobber an existing table.
func (db *DB) RenameTable(oldName, newName string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	oldKey, newKey := strings.ToLower(oldName), strings.ToLower(newName)
	t, ok := db.tables[oldKey]
	if !ok {
		return fmt.Errorf("relational: no table %q", oldName)
	}
	if _, taken := db.tables[newKey]; taken && newKey != oldKey {
		return fmt.Errorf("relational: table %q already exists", newName)
	}
	delete(db.tables, oldKey)
	t.Name = newName
	db.tables[newKey] = t
	return nil
}

// table fetches a table by name (case-insensitive).
func (db *DB) table(name string) (*Table, error) {
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("relational: no table %q", name)
	}
	return t, nil
}

// Tables lists table names.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		out = append(out, t.Name)
	}
	return out
}

// TableSchema returns the schema of the named table.
func (db *DB) TableSchema(name string) (engine.Schema, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.table(name)
	if err != nil {
		return engine.Schema{}, err
	}
	return t.Schema, nil
}

// TableLen returns the live row count of the named table.
func (db *DB) TableLen(name string) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.table(name)
	if err != nil {
		return 0, err
	}
	return t.Len(), nil
}

// insertTuplesLocked bulk-loads rows into the named table, creating it
// (without a primary key) if absent. The rows must be owned by the
// table (callers clone if they keep references).
func (db *DB) insertTuplesLocked(name string, schema engine.Schema, rows []engine.Tuple) error {
	key := strings.ToLower(name)
	t, ok := db.tables[key]
	if !ok {
		if err := db.createTableLocked(name, schema, ""); err != nil {
			return err
		}
		t = db.tables[key]
	}
	if len(schema.Columns) != len(t.Schema.Columns) {
		return fmt.Errorf("relational: %s: incoming arity %d != %d", name, len(schema.Columns), len(t.Schema.Columns))
	}
	for _, row := range rows {
		if err := t.insert(row); err != nil {
			return err
		}
	}
	return nil
}

// InsertRelation bulk-loads a relation into the named table, creating it
// (without a primary key) if absent. This is the CAST ingest path.
func (db *DB) InsertRelation(name string, rel *engine.Relation) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	rows := make([]engine.Tuple, len(rel.Tuples))
	for i, row := range rel.Tuples {
		rows[i] = row.Clone()
	}
	return db.insertTuplesLocked(name, rel.Schema, rows)
}

// Dump exports the named table as a relation (CAST egress path).
func (db *DB) Dump(name string) (*engine.Relation, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.table(name)
	if err != nil {
		return nil, err
	}
	rel := engine.NewRelation(t.Schema)
	rel.Tuples = make([]engine.Tuple, 0, t.live)
	_ = t.scan(func(_ int, row engine.Tuple) error {
		rel.Tuples = append(rel.Tuples, row.Clone())
		return nil
	})
	return rel, nil
}

// DumpBatch exports the named table in columnar form — the zero-copy
// CAST egress path. The returned batch is the table's immutable column
// cache snapshot: no per-row cloning, and on a warm cache no copying at
// all.
func (db *DB) DumpBatch(name string) (*engine.ColumnBatch, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.table(name)
	if err != nil {
		return nil, err
	}
	return t.columnBatch(), nil
}

// InsertBatch bulk-loads a column batch into the named table, creating
// it (without a primary key) if absent — the columnar CAST ingest path.
// Row tuples are carved from one arena rather than allocated per row,
// and the table owns them outright (no clone pass).
func (db *DB) InsertBatch(name string, cb *engine.ColumnBatch) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.insertTuplesLocked(name, cb.Schema, cb.ToRelation().Tuples)
}
