package relational

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/engine"
)

// Parse parses one SQL statement.
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(tokSymbol, ";")
	if !p.atEOF() {
		return nil, fmt.Errorf("relational: trailing input at %q", p.peek().text)
	}
	return stmt, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }
func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// accept consumes the next token if it matches kind and (optionally) text.
func (p *parser) accept(kind tokenKind, text string) bool {
	t := p.peek()
	if t.kind != kind {
		return false
	}
	if text != "" && t.text != text {
		return false
	}
	p.advance()
	return true
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	t := p.peek()
	if t.kind != kind || (text != "" && t.text != text) {
		return token{}, fmt.Errorf("relational: expected %q, got %q at %d", text, t.text, t.pos)
	}
	return p.advance(), nil
}

func (p *parser) expectKeyword(kw string) error {
	_, err := p.expect(tokKeyword, kw)
	return err
}

// ident accepts an identifier or a non-reserved keyword used as a name.
func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind == tokIdent {
		p.advance()
		return t.text, nil
	}
	return "", fmt.Errorf("relational: expected identifier, got %q at %d", t.text, t.pos)
}

func (p *parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return nil, fmt.Errorf("relational: expected statement, got %q", t.text)
	}
	switch t.text {
	case "SELECT":
		return p.parseSelect()
	case "CREATE":
		return p.parseCreate()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "DROP":
		return p.parseDrop()
	default:
		return nil, fmt.Errorf("relational: unsupported statement %q", t.text)
	}
}

func (p *parser) parseCreate() (Statement, error) {
	p.advance() // CREATE
	if p.accept(tokKeyword, "INDEX") {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		table, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return CreateIndex{Name: name, Table: table, Column: col}, nil
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	ct := CreateTable{Name: name}
	for {
		colName, err := p.ident()
		if err != nil {
			return nil, err
		}
		typeTok := p.advance()
		if typeTok.kind != tokIdent && typeTok.kind != tokKeyword {
			return nil, fmt.Errorf("relational: expected type after column %q", colName)
		}
		typ, err := engine.ParseType(typeTok.text)
		if err != nil {
			return nil, err
		}
		ct.Schema.Columns = append(ct.Schema.Columns, engine.Col(colName, typ))
		if p.accept(tokKeyword, "PRIMARY") {
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			ct.PrimaryKey = colName
		}
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return ct, nil
}

func (p *parser) parseDrop() (Statement, error) {
	p.advance() // DROP
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return DropTable{Name: name}, nil
}

func (p *parser) parseInsert() (Statement, error) {
	p.advance() // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins := Insert{Table: table}
	if p.accept(tokSymbol, "(") {
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, col)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	return ins, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	p.advance() // UPDATE
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	up := Update{Table: table, Set: map[string]Expr{}}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		up.Set[col] = e
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if p.accept(tokKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		up.Where = w
	}
	return up, nil
}

func (p *parser) parseDelete() (Statement, error) {
	p.advance() // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	del := Delete{Table: table}
	if p.accept(tokKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		del.Where = w
	}
	return del, nil
}

func (p *parser) parseSelect() (*Select, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{Limit: -1}
	sel.Distinct = p.accept(tokKeyword, "DISTINCT")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if p.accept(tokKeyword, "FROM") {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		sel.From = &ref
		for {
			var kind JoinKind
			switch {
			case p.accept(tokKeyword, "JOIN"):
				kind = JoinInner
			case p.accept(tokKeyword, "INNER"):
				if err := p.expectKeyword("JOIN"); err != nil {
					return nil, err
				}
				kind = JoinInner
			case p.accept(tokKeyword, "LEFT"):
				p.accept(tokKeyword, "OUTER")
				if err := p.expectKeyword("JOIN"); err != nil {
					return nil, err
				}
				kind = JoinLeft
			case p.accept(tokKeyword, "CROSS"):
				if err := p.expectKeyword("JOIN"); err != nil {
					return nil, err
				}
				kind = JoinCross
			default:
				goto doneJoins
			}
			jref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			j := Join{Kind: kind, Table: jref}
			if kind != JoinCross {
				if err := p.expectKeyword("ON"); err != nil {
					return nil, err
				}
				on, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				j.On = on
			}
			sel.Joins = append(sel.Joins, j)
		}
	}
doneJoins:
	if p.accept(tokKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if p.accept(tokKeyword, "GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
	}
	if p.accept(tokKeyword, "HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = h
	}
	if p.accept(tokKeyword, "ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(tokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		n, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		sel.Limit = n
	}
	if p.accept(tokKeyword, "OFFSET") {
		n, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		sel.Offset = n
	}
	return sel, nil
}

func (p *parser) parseInt() (int, error) {
	t, err := p.expect(tokNumber, "")
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, fmt.Errorf("relational: expected integer, got %q", t.text)
	}
	return n, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.accept(tokSymbol, "*") {
		return SelectItem{Star: true}, nil
	}
	// "t.*"
	if p.peek().kind == tokIdent && p.pos+2 < len(p.toks) &&
		p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "." &&
		p.toks[p.pos+2].kind == tokSymbol && p.toks[p.pos+2].text == "*" {
		table := p.advance().text
		p.advance()
		p.advance()
		return SelectItem{Star: true, Table: table}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept(tokKeyword, "AS") {
		a, err := p.ident()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if p.peek().kind == tokIdent {
		item.Alias = p.advance().text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	name, err := p.ident()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Name: name}
	if p.accept(tokKeyword, "AS") {
		a, err := p.ident()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = a
	} else if p.peek().kind == tokIdent {
		ref.Alias = p.advance().text
	}
	return ref, nil
}

// Expression grammar (precedence climbing):
//
//	expr    := orExpr
//	orExpr  := andExpr (OR andExpr)*
//	andExpr := notExpr (AND notExpr)*
//	notExpr := NOT notExpr | cmpExpr
//	cmpExpr := addExpr ((=|<>|!=|<|<=|>|>=|LIKE) addExpr
//	           | IS [NOT] NULL | [NOT] IN (...) | [NOT] BETWEEN a AND b)?
//	addExpr := mulExpr ((+|-|'||') mulExpr)*
//	mulExpr := unary ((*|/|%) unary)*
//	unary   := -unary | primary
//	primary := literal | func(args) | col | (expr)

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = BinaryExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = BinaryExpr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return UnaryExpr{Op: "NOT", Expr: e}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokSymbol {
		switch t.text {
		case "=", "<>", "!=", "<", "<=", ">", ">=":
			p.advance()
			right, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			op := t.text
			if op == "!=" {
				op = "<>"
			}
			return BinaryExpr{Op: op, Left: left, Right: right}, nil
		}
	}
	if t.kind == tokKeyword {
		not := false
		if t.text == "NOT" {
			// Lookahead for NOT IN / NOT LIKE / NOT BETWEEN.
			next := p.toks[p.pos+1]
			if next.kind == tokKeyword && (next.text == "IN" || next.text == "LIKE" || next.text == "BETWEEN") {
				p.advance()
				not = true
				t = p.peek()
			}
		}
		switch t.text {
		case "LIKE":
			p.advance()
			right, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			var e Expr = BinaryExpr{Op: "LIKE", Left: left, Right: right}
			if not {
				e = UnaryExpr{Op: "NOT", Expr: e}
			}
			return e, nil
		case "IS":
			p.advance()
			isNot := p.accept(tokKeyword, "NOT")
			if err := p.expectKeyword("NULL"); err != nil {
				return nil, err
			}
			return IsNullExpr{Expr: left, Not: isNot}, nil
		case "IN":
			p.advance()
			if _, err := p.expect(tokSymbol, "("); err != nil {
				return nil, err
			}
			var list []Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				list = append(list, e)
				if p.accept(tokSymbol, ",") {
					continue
				}
				break
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return InExpr{Expr: left, List: list, Not: not}, nil
		case "BETWEEN":
			p.advance()
			lo, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("AND"); err != nil {
				return nil, err
			}
			hi, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return BetweenExpr{Expr: left, Lo: lo, Hi: hi, Not: not}, nil
		}
	}
	return left, nil
}

func (p *parser) parseAdd() (Expr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokSymbol || (t.text != "+" && t.text != "-" && t.text != "||") {
			return left, nil
		}
		p.advance()
		right, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		left = BinaryExpr{Op: t.text, Left: left, Right: right}
	}
}

func (p *parser) parseMul() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokSymbol || (t.text != "*" && t.text != "/" && t.text != "%") {
			return left, nil
		}
		p.advance()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = BinaryExpr{Op: t.text, Left: left, Right: right}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tokSymbol, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return UnaryExpr{Op: "-", Expr: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.advance()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("relational: bad number %q", t.text)
			}
			return Literal{Val: engine.NewFloat(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("relational: bad number %q", t.text)
		}
		return Literal{Val: engine.NewInt(i)}, nil
	case tokString:
		p.advance()
		return Literal{Val: engine.NewString(t.text)}, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.advance()
			return Literal{Val: engine.Null}, nil
		case "TRUE":
			p.advance()
			return Literal{Val: engine.NewBool(true)}, nil
		case "FALSE":
			p.advance()
			return Literal{Val: engine.NewBool(false)}, nil
		case "COUNT", "SUM", "AVG", "MIN", "MAX", "STDDEV":
			p.advance()
			return p.parseFuncTail(t.text)
		}
		return nil, fmt.Errorf("relational: unexpected keyword %q in expression", t.text)
	case tokSymbol:
		if t.text == "(" {
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, fmt.Errorf("relational: unexpected symbol %q in expression", t.text)
	case tokIdent:
		name := p.advance().text
		// Function call?
		if p.peek().kind == tokSymbol && p.peek().text == "(" {
			return p.parseFuncTail(strings.ToUpper(name))
		}
		// Qualified column?
		if p.accept(tokSymbol, ".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return ColumnRef{Table: name, Name: col}, nil
		}
		return ColumnRef{Name: name}, nil
	default:
		return nil, fmt.Errorf("relational: unexpected token %q", t.text)
	}
}

// parseFuncTail parses "(args)" after a function name.
func (p *parser) parseFuncTail(name string) (Expr, error) {
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	fc := FuncCall{Name: name}
	if p.accept(tokSymbol, "*") {
		fc.Star = true
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return fc, nil
	}
	fc.Distinct = p.accept(tokKeyword, "DISTINCT")
	if !p.accept(tokSymbol, ")") {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			fc.Args = append(fc.Args, e)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
	}
	return fc, nil
}
