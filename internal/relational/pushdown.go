package relational

import (
	"fmt"

	"repro/internal/engine"
)

// DumpBatchWhere is the predicate- and projection-aware CAST egress
// path: it exports the named table in columnar form like DumpBatch, but
// applies a filter predicate (SQL expression text over the table's own
// columns) and a column projection *before* the data leaves the engine,
// so a selective cross-island CAST moves only the rows and columns the
// consuming island will actually touch.
//
// The predicate runs through the same vectorized filter kernels the
// SELECT hot path uses when it compiles (and the vectorized executor is
// on); otherwise it falls back to the interpreted row evaluator, so the
// two executors stay interchangeable. scanned reports how many live
// rows were examined, for CastResult.RowsScanned accounting.
//
// With an empty predicate and nil columns this is exactly DumpBatch:
// the table's immutable column-cache snapshot, zero copies. applied
// reports whether any filtering or non-identity projection actually
// ran (a projection naming every column in schema order is a no-op).
func (db *DB) DumpBatchWhere(name, predicate string, columns []string) (cb *engine.ColumnBatch, scanned int, applied bool, err error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.table(name)
	if err != nil {
		return nil, 0, false, err
	}
	base := t.columnBatch()
	scanned = base.NumRows
	db.stats.rowsScanned.Add(int64(scanned))

	var sel []int32
	filtered := false
	if predicate != "" {
		e, err := ParseExpression(predicate)
		if err != nil {
			return nil, scanned, false, fmt.Errorf("relational: pushdown predicate: %w", err)
		}
		if hasAggregate(e) {
			return nil, scanned, false, fmt.Errorf("relational: pushdown predicate cannot contain aggregates")
		}
		rs := baseRowSchema(t.Name, t.Schema)
		compiled := false
		if db.vectorized {
			vc := &vecCompiler{b: base, rs: rs}
			if pred, ok := vc.compile(e); ok && pred.kind == engine.TypeBool {
				sel, err = runVecFilter(pred, identitySel(base.NumRows))
				if err != nil {
					return nil, scanned, false, err
				}
				compiled = true
			}
		}
		if !compiled {
			ev, err := compileExpr(e, rs, nil)
			if err != nil {
				return nil, scanned, false, err
			}
			sel = make([]int32, 0, base.NumRows)
			for i := 0; i < base.NumRows; i++ {
				v, err := ev(base.Row(i))
				if err != nil {
					return nil, scanned, false, err
				}
				if !v.IsNull() && v.AsBool() {
					sel = append(sel, int32(i))
				}
			}
		}
		filtered = true
	}

	proj, err := projectionIndexes(t.Schema, columns)
	if err != nil {
		return nil, scanned, false, err
	}
	if !filtered && proj == nil {
		return base, scanned, false, nil
	}

	srcIdx := proj
	if srcIdx == nil {
		srcIdx = make([]int, len(base.Cols))
		for j := range srcIdx {
			srcIdx[j] = j
		}
	}
	cols := make([]engine.Column, len(srcIdx))
	for k, j := range srcIdx {
		cols[k] = t.Schema.Columns[j]
	}
	out := &engine.ColumnBatch{
		Schema: engine.Schema{Columns: cols},
		Cols:   make([]engine.ColVec, len(srcIdx)),
	}
	if filtered {
		out.NumRows = len(sel)
		for k, j := range srcIdx {
			out.Cols[k] = gatherVec(&base.Cols[j], sel)
		}
	} else {
		// Projection only: share the immutable cached vectors.
		out.NumRows = base.NumRows
		for k, j := range srcIdx {
			out.Cols[k] = base.Cols[j]
		}
	}
	return out, scanned, true, nil
}

// projectionIndexes resolves a projection column list against the
// schema, returning nil when the projection is absent (or names every
// column in schema order, in which case it is a no-op).
func projectionIndexes(schema engine.Schema, columns []string) ([]int, error) {
	if len(columns) == 0 {
		return nil, nil
	}
	idx := make([]int, len(columns))
	identity := len(columns) == len(schema.Columns)
	for k, name := range columns {
		j := schema.Index(name)
		if j < 0 {
			return nil, fmt.Errorf("relational: pushdown projection: no column %q", name)
		}
		idx[k] = j
		if j != k {
			identity = false
		}
	}
	if identity {
		return nil, nil
	}
	return idx, nil
}
