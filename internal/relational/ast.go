package relational

import "repro/internal/engine"

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// Expr is any scalar expression node.
type Expr interface{ expr() }

// CreateTable is CREATE TABLE name (col type [PRIMARY KEY], ...).
type CreateTable struct {
	Name       string
	Schema     engine.Schema
	PrimaryKey string // column name, "" if none
}

// CreateIndex is CREATE INDEX name ON table (col).
type CreateIndex struct {
	Name   string
	Table  string
	Column string
}

// DropTable is DROP TABLE name.
type DropTable struct{ Name string }

// Insert is INSERT INTO name [(cols)] VALUES (...), (...).
type Insert struct {
	Table   string
	Columns []string // empty means schema order
	Rows    [][]Expr
}

// Update is UPDATE name SET col = expr, ... [WHERE cond].
type Update struct {
	Table string
	Set   map[string]Expr
	Where Expr // nil means all rows
}

// Delete is DELETE FROM name [WHERE cond].
type Delete struct {
	Table string
	Where Expr
}

// Select is a full SELECT statement.
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     *TableRef // nil for SELECT <expr> with no FROM
	Joins    []Join
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int // -1 if absent
	Offset   int
}

// SelectItem is one projection: expression plus optional alias; Star
// marks "*" (optionally qualified as "t.*").
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool
	Table string // for "t.*"
}

// TableRef names a base table with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// JoinKind distinguishes join types.
type JoinKind int

const (
	JoinInner JoinKind = iota
	JoinLeft
	JoinCross
)

// Join is one JOIN clause.
type Join struct {
	Kind  JoinKind
	Table TableRef
	On    Expr // nil for CROSS
}

// OrderItem is one ORDER BY term.
type OrderItem struct {
	Expr Expr
	Desc bool
}

func (CreateTable) stmt() {}
func (CreateIndex) stmt() {}
func (DropTable) stmt()   {}
func (Insert) stmt()      {}
func (Update) stmt()      {}
func (Delete) stmt()      {}
func (*Select) stmt()     {}

// Literal is a constant value.
type Literal struct{ Val engine.Value }

// ColumnRef references a column, optionally table-qualified.
type ColumnRef struct {
	Table string
	Name  string
}

// BinaryExpr is a binary operation: arithmetic, comparison, AND/OR,
// LIKE, string concat (||).
type BinaryExpr struct {
	Op          string
	Left, Right Expr
}

// UnaryExpr is NOT or unary minus.
type UnaryExpr struct {
	Op   string
	Expr Expr
}

// FuncCall is a scalar or aggregate function call. Star marks COUNT(*).
type FuncCall struct {
	Name     string // upper-cased
	Args     []Expr
	Star     bool
	Distinct bool
}

// InExpr is expr [NOT] IN (list).
type InExpr struct {
	Expr Expr
	List []Expr
	Not  bool
}

// IsNullExpr is expr IS [NOT] NULL.
type IsNullExpr struct {
	Expr Expr
	Not  bool
}

// BetweenExpr is expr [NOT] BETWEEN lo AND hi.
type BetweenExpr struct {
	Expr, Lo, Hi Expr
	Not          bool
}

func (Literal) expr()     {}
func (ColumnRef) expr()   {}
func (BinaryExpr) expr()  {}
func (UnaryExpr) expr()   {}
func (FuncCall) expr()    {}
func (InExpr) expr()      {}
func (IsNullExpr) expr()  {}
func (BetweenExpr) expr() {}

// aggregateNames lists SQL aggregate functions the executor understands.
var aggregateNames = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"STDDEV": true,
}

// hasAggregate reports whether the expression tree contains an aggregate
// function call.
func hasAggregate(e Expr) bool {
	switch ex := e.(type) {
	case nil:
		return false
	case FuncCall:
		if aggregateNames[ex.Name] {
			return true
		}
		for _, a := range ex.Args {
			if hasAggregate(a) {
				return true
			}
		}
	case BinaryExpr:
		return hasAggregate(ex.Left) || hasAggregate(ex.Right)
	case UnaryExpr:
		return hasAggregate(ex.Expr)
	case InExpr:
		if hasAggregate(ex.Expr) {
			return true
		}
		for _, a := range ex.List {
			if hasAggregate(a) {
				return true
			}
		}
	case IsNullExpr:
		return hasAggregate(ex.Expr)
	case BetweenExpr:
		return hasAggregate(ex.Expr) || hasAggregate(ex.Lo) || hasAggregate(ex.Hi)
	}
	return false
}
