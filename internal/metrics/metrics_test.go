package metrics

import (
	"encoding/json"
	"expvar"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cast.retries")
	c.Inc()
	c.Add(2)
	if got := r.Counter("cast.retries").Load(); got != 3 {
		t.Fatalf("counter = %d, want 3 (get-or-create must return the same counter)", got)
	}
	g := r.Gauge("queries.inflight")
	g.Set(5)
	g.Add(-2)
	if got := g.Load(); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
	r.GaugeFunc("engine.rows", func() int64 { return 42 })
	if got := r.Snapshot()["engine.rows"]; got != int64(42) {
		t.Fatalf("gauge func snapshot = %v, want 42", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	for _, tc := range []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{time.Microsecond, 0},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 2},
		{1024 * time.Microsecond, 10},
		{24 * time.Hour, histBuckets - 1},
	} {
		if got := bucketFor(tc.d); got != tc.want {
			t.Errorf("bucketFor(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

// TestHistogramQuantiles checks the quantile estimate against a known
// distribution: the error bound is one bucket (a factor of two).
func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	// 90 fast samples at ~100µs, 10 slow at ~10ms.
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(10 * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if p50 := h.P50(); p50 < 32*time.Microsecond || p50 > 256*time.Microsecond {
		t.Errorf("p50 = %v, want ~100µs (within one bucket)", p50)
	}
	if p99 := h.P99(); p99 < 4*time.Millisecond || p99 > 32*time.Millisecond {
		t.Errorf("p99 = %v, want ~10ms (within one bucket)", p99)
	}
	if mean := h.Mean(); mean < 500*time.Microsecond || mean > 2*time.Millisecond {
		t.Errorf("mean = %v, want ~1.09ms", mean)
	}
	if h.Quantile(0) == 0 && h.Count() > 0 {
		// q=0 clamps to the first sample's bucket, not zero
		t.Log("q=0 returned 0") // informational; bucket 0 lower bound is 0
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := &Histogram{}
	if h.P50() != 0 || h.P99() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram quantiles must be 0")
	}
}

// TestConcurrentObserve hammers one histogram and counter from many
// goroutines (meaningful under -race, which CI runs).
func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	c := r.Counter("n")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(time.Duration(j) * time.Microsecond)
				c.Inc()
				_ = r.Snapshot() // concurrent reads must be clean too
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 || c.Load() != 8000 {
		t.Fatalf("count = %d / %d, want 8000", h.Count(), c.Load())
	}
}

func TestSnapshotAndString(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.count").Add(7)
	r.Histogram("a.latency").Observe(3 * time.Millisecond)
	s := r.String()
	var decoded map[string]any
	if err := json.Unmarshal([]byte(s), &decoded); err != nil {
		t.Fatalf("String() is not valid JSON: %v\n%s", err, s)
	}
	if !strings.Contains(s, `"a.count": 7`) {
		t.Errorf("snapshot missing counter: %s", s)
	}
	for _, want := range []string{"p50_ms", "p95_ms", "p99_ms", "count"} {
		if !strings.Contains(s, want) {
			t.Errorf("histogram snapshot missing %s: %s", want, s)
		}
	}
	if names := r.Names(); len(names) != 2 || names[0] != "a.count" || names[1] != "a.latency" {
		t.Errorf("Names() = %v", names)
	}
}

func TestPublishExpvar(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	if err := r.PublishExpvar("metrics_test_registry"); err != nil {
		t.Fatalf("first publish: %v", err)
	}
	// Idempotent: a second call on the same registry is a no-op.
	if err := r.PublishExpvar("metrics_test_registry"); err != nil {
		t.Fatalf("second publish errored: %v", err)
	}
	v := expvar.Get("metrics_test_registry")
	if v == nil {
		t.Fatal("registry not visible via expvar")
	}
	if !strings.Contains(v.String(), `"x": 1`) {
		t.Fatalf("expvar view = %s", v.String())
	}
	// A different registry colliding on the name errors instead of
	// panicking.
	if err := NewRegistry().PublishExpvar("metrics_test_registry"); err == nil {
		t.Fatal("name collision did not error")
	}
}
