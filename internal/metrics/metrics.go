// Package metrics implements the polystore's metrics registry: atomic
// counters, gauges and fixed-bucket latency histograms with p50/p95/p99
// estimation, collected by name in a Registry and exportable via
// expvar. The polystore populates it from the same instrumentation
// sites the trace spans cover — queries by island and class, cast wire
// bytes, rows scanned vs moved, retries, rollbacks — so dashboards and
// tests read one coherent surface.
//
// Everything on the hot path is lock-free: Counter.Add and
// Histogram.Observe are single atomic operations, and the Registry's
// lock is only taken to mint a metric or snapshot the whole set.
package metrics

import (
	"encoding/json"
	"expvar"
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomically settable instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (useful for in-flight counts).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// histBuckets is the number of exponential latency buckets. Bucket i
// holds observations in (2^(i-1)µs, 2^i µs]; bucket 0 holds ≤ 1µs and
// the last bucket is open-ended (≈ 2.2 minutes and beyond).
const histBuckets = 28

// Histogram is a fixed-bucket latency histogram. Buckets are powers of
// two in microseconds, so Observe is a bit-scan plus one atomic add —
// no locks, no allocation — and quantiles interpolate within the
// matched bucket.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
}

// bucketFor maps a duration to its bucket index.
func bucketFor(d time.Duration) int {
	us := d.Microseconds()
	if us <= 1 {
		return 0
	}
	b := bits.Len64(uint64(us - 1)) // ceil(log2(us))
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketFor(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Mean returns the average observed duration (0 with no samples).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile estimates the q-quantile (0 < q ≤ 1) by locating the bucket
// holding the target rank and interpolating linearly inside it. With no
// samples it returns 0. The estimate's error is bounded by the bucket
// width — a factor of two — which is plenty for p50/p99 dashboards.
func (h *Histogram) Quantile(q float64) time.Duration {
	// Snapshot the buckets; samples may land concurrently.
	var counts [histBuckets]int64
	var total int64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range counts {
		if cum+c < rank {
			cum += c
			continue
		}
		lo, hi := bucketBounds(i)
		frac := float64(rank-cum) / float64(c)
		return lo + time.Duration(frac*float64(hi-lo))
	}
	_, hi := bucketBounds(histBuckets - 1)
	return hi
}

// P50, P95 and P99 are the dashboard quantiles.
func (h *Histogram) P50() time.Duration { return h.Quantile(0.50) }

// P95 estimates the 95th percentile.
func (h *Histogram) P95() time.Duration { return h.Quantile(0.95) }

// P99 estimates the 99th percentile.
func (h *Histogram) P99() time.Duration { return h.Quantile(0.99) }

// bucketBounds returns the (lo, hi] duration bounds of bucket i.
func bucketBounds(i int) (time.Duration, time.Duration) {
	if i == 0 {
		return 0, time.Microsecond
	}
	lo := time.Duration(1<<(i-1)) * time.Microsecond
	hi := time.Duration(1<<i) * time.Microsecond
	return lo, hi
}

// Registry collects named metrics. Names are dot-separated
// ("query.relational.latency", "cast.wire_bytes"); get-or-create
// accessors make registration implicit and idempotent.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	gaugeFns map[string]func() int64

	publish sync.Once
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		gaugeFns: map[string]func() int64{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h = &Histogram{}
	r.hists[name] = h
	return h
}

// GaugeFunc registers a pull gauge: fn is evaluated at snapshot time.
// Engine stats (queries served, rows scanned) export this way — the
// engines keep their own atomic counters and the registry reads them.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	r.mu.Lock()
	r.gaugeFns[name] = fn
	r.mu.Unlock()
}

// HistogramSnapshot is the exported view of one histogram.
type HistogramSnapshot struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

func ms(d time.Duration) float64 {
	return math.Round(float64(d)/float64(time.Millisecond)*1000) / 1000
}

// Snapshot returns a point-in-time view of every metric: counters and
// gauges as int64, histograms as HistogramSnapshot. Safe under
// concurrent updates (values are read atomically, the metric set under
// the registry lock).
func (r *Registry) Snapshot() map[string]any {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.hists)+len(r.gaugeFns))
	for name, c := range r.counters {
		out[name] = c.Load()
	}
	for name, g := range r.gauges {
		out[name] = g.Load()
	}
	for name, fn := range r.gaugeFns {
		out[name] = fn()
	}
	for name, h := range r.hists {
		out[name] = HistogramSnapshot{
			Count:  h.Count(),
			MeanMs: ms(h.Mean()),
			P50Ms:  ms(h.P50()),
			P95Ms:  ms(h.P95()),
			P99Ms:  ms(h.P99()),
		}
	}
	return out
}

// Names lists every registered metric name, sorted.
func (r *Registry) Names() []string {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// String renders the snapshot as deterministic JSON (sorted keys) —
// the expvar representation.
func (r *Registry) String() string {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb []byte
	sb = append(sb, '{')
	for i, n := range names {
		if i > 0 {
			sb = append(sb, ',', ' ')
		}
		kb, _ := json.Marshal(n)
		vb, err := json.Marshal(snap[n])
		if err != nil {
			vb = []byte(fmt.Sprintf("%q", fmt.Sprint(snap[n])))
		}
		sb = append(sb, kb...)
		sb = append(sb, ':', ' ')
		sb = append(sb, vb...)
	}
	sb = append(sb, '}')
	return string(sb)
}

// PublishExpvar exposes the registry under the given expvar name
// (/debug/vars once an HTTP server mounts expvar's handler).
// Idempotent per registry; if another variable already claimed the
// name, it is left in place and an error is returned instead of the
// panic expvar.Publish would raise.
func (r *Registry) PublishExpvar(name string) error {
	var err error
	r.publish.Do(func() {
		if expvar.Get(name) != nil {
			err = fmt.Errorf("metrics: expvar %q already published", name)
			return
		}
		expvar.Publish(name, r)
	})
	return err
}
