package fault

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"time"
)

func TestDisarmedHitIsNil(t *testing.T) {
	Reset()
	if err := Hit("nothing.armed"); err != nil {
		t.Fatalf("disarmed hit errored: %v", err)
	}
	if Active() {
		t.Fatal("Active with nothing armed")
	}
}

func TestErrorModeAfterAndTimes(t *testing.T) {
	defer Reset()
	Reset()
	Arm(Spec{Point: "p", Mode: ModeError, After: 2, Times: 2, Transient: true})
	var got []bool
	for i := 0; i < 6; i++ {
		got = append(got, Hit("p") != nil)
	}
	want := []bool{false, false, true, true, false, false}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("trigger pattern %v, want %v", got, want)
	}
	if Fired("p") != 2 {
		t.Fatalf("Fired = %d, want 2", Fired("p"))
	}
}

func TestInjectedErrorClassification(t *testing.T) {
	defer Reset()
	Reset()
	Arm(Spec{Point: "t", Mode: ModeError, Transient: true})
	err := Hit("t")
	var fe *Error
	if !errors.As(err, &fe) || !fe.IsTransient() {
		t.Fatalf("want transient injected error, got %v", err)
	}
	Arm(Spec{Point: "q", Mode: ModeError})
	err = Hit("q")
	if !errors.As(err, &fe) || fe.IsTransient() {
		t.Fatalf("want permanent injected error, got %v", err)
	}
}

func TestDelayMode(t *testing.T) {
	defer Reset()
	Reset()
	Arm(Spec{Point: "d", Mode: ModeDelay, Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := Hit("d"); err != nil {
		t.Fatalf("delay hit errored: %v", err)
	}
	if e := time.Since(start); e < 15*time.Millisecond {
		t.Fatalf("delay hit returned after %v, want ≥ 20ms", e)
	}
}

func TestPartialWriteTruncatesAtOffset(t *testing.T) {
	defer Reset()
	Reset()
	Arm(Spec{Point: "w", Mode: ModePartialWrite, After: 10})
	var sink bytes.Buffer
	w := Wrap("w", &sink)
	n, err := w.Write(make([]byte, 6)) // bytes 0..5 pass
	if n != 6 || err != nil {
		t.Fatalf("first write: n=%d err=%v", n, err)
	}
	n, err = w.Write(make([]byte, 6)) // bytes 6..9 pass, then fail
	if n != 4 {
		t.Fatalf("partial write allowed %d bytes, want 4", n)
	}
	var fe *Error
	if !errors.As(err, &fe) {
		t.Fatalf("want injected error, got %v", err)
	}
	if sink.Len() != 10 {
		t.Fatalf("sink got %d bytes, want exactly 10", sink.Len())
	}
	// Times defaulted to 1: the next attempt passes (a retry outlives it).
	n, err = w.Write(make([]byte, 6))
	if n != 6 || err != nil {
		t.Fatalf("post-trigger write: n=%d err=%v", n, err)
	}
}

func TestWrapIsIdentityWhenDisarmed(t *testing.T) {
	Reset()
	var sink bytes.Buffer
	if w := Wrap("w", &sink); w != any(&sink) {
		t.Fatal("Wrap should return the writer unchanged when nothing is armed")
	}
}

func TestScheduleDeterministic(t *testing.T) {
	hit := []string{"a", "b", "c"}
	write := []string{"w"}
	s1 := Schedule(42, hit, write)
	s2 := Schedule(42, hit, write)
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("same seed produced different schedules:\n%v\n%v", s1, s2)
	}
	if len(s1) == 0 {
		t.Fatal("empty schedule")
	}
	seen := map[string]bool{}
	for _, sp := range s1 {
		if seen[sp.Point] {
			t.Fatalf("duplicate point %q in schedule", sp.Point)
		}
		seen[sp.Point] = true
	}
	// Different seeds should (for some seed) differ.
	diff := false
	for seed := int64(0); seed < 20; seed++ {
		if !reflect.DeepEqual(Schedule(seed, hit, write), s1) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("20 seeds all produced the identical schedule")
	}
}

func BenchmarkHitDisarmed(b *testing.B) {
	Reset()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Hit("bench.point"); err != nil {
			b.Fatal(err)
		}
	}
}
