// Package fault implements named failpoints for fault-injection
// testing across the polystore: the cast pipeline, the wire codec and
// the island load paths register injection points by name, and tests
// arm them with deterministic schedules of errors, delays and partial
// writes. Production code pays one atomic load per point when nothing
// is armed — the package is zero-cost unless a test turns it on.
//
// A failpoint is evaluated either as a call site (Hit) or as an
// io.Writer interposer (Wrap). Armed specs trigger after a configured
// number of hits (bytes, for partial writes) and for a configured
// number of occurrences, so a schedule can say "the third frame write
// fails, once" and a retry that re-runs the pipeline succeeds.
package fault

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Mode selects what an armed failpoint does when it triggers.
type Mode int

// Failure modes.
const (
	// ModeError makes the point return an injected *Error.
	ModeError Mode = iota
	// ModeDelay makes the point sleep for Spec.Delay, then proceed.
	ModeDelay
	// ModePartialWrite applies to Wrap'd writers: the first Spec.After
	// bytes pass through, then the write fails mid-buffer — the
	// truncated-stream shape a crashed peer or full disk produces.
	ModePartialWrite
)

func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModeDelay:
		return "delay"
	case ModePartialWrite:
		return "partial-write"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Error is an injected failure. It flows through the code under test
// like any other error; retry policies recognise the Transient flag via
// the IsTransient method.
type Error struct {
	Point     string
	Transient bool
}

func (e *Error) Error() string {
	kind := "permanent"
	if e.Transient {
		kind = "transient"
	}
	return fmt.Sprintf("fault: injected %s failure at %s", kind, e.Point)
}

// IsTransient classifies the injected failure for retry policies.
func (e *Error) IsTransient() bool { return e.Transient }

// Spec arms one failpoint.
type Spec struct {
	Point string
	Mode  Mode
	// After is how many hits pass untouched before the spec triggers
	// (for ModePartialWrite: how many bytes pass through).
	After int
	// Times is how many triggers fire before the point goes quiet
	// (0 means once; negative means every hit). A transient spec with
	// Times below the retry budget models a fault a retry outlives.
	Times     int
	Transient bool
	Delay     time.Duration
}

type point struct {
	spec  Spec
	hits  int // Hit count, or bytes seen for ModePartialWrite
	fired int
}

func (pt *point) limit() int {
	if pt.spec.Times == 0 {
		return 1
	}
	return pt.spec.Times
}

var (
	armed  atomic.Int32
	mu     sync.Mutex
	points = map[string]*point{}
)

// Arm installs (or replaces) the spec for its point.
func Arm(spec Spec) {
	mu.Lock()
	if _, ok := points[spec.Point]; !ok {
		armed.Add(1)
	}
	points[spec.Point] = &point{spec: spec}
	mu.Unlock()
}

// Disarm removes one point's spec.
func Disarm(name string) {
	mu.Lock()
	if _, ok := points[name]; ok {
		delete(points, name)
		armed.Add(-1)
	}
	mu.Unlock()
}

// Reset disarms every failpoint.
func Reset() {
	mu.Lock()
	armed.Add(-int32(len(points)))
	points = map[string]*point{}
	mu.Unlock()
}

// Active reports whether any failpoint is armed. Code may branch on it
// to take an instrumented (e.g. split-load) path only under injection.
func Active() bool { return armed.Load() > 0 }

// Hit evaluates the named failpoint at a call site. When nothing is
// armed it costs one atomic load and returns nil.
func Hit(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	delay, err := evalHit(name)
	if delay > 0 {
		time.Sleep(delay)
	}
	return err
}

func evalHit(name string) (time.Duration, error) {
	mu.Lock()
	defer mu.Unlock()
	pt, ok := points[name]
	if !ok || pt.spec.Mode == ModePartialWrite {
		return 0, nil
	}
	pt.hits++
	if pt.hits <= pt.spec.After || (pt.spec.Times >= 0 && pt.fired >= pt.limit()) {
		return 0, nil
	}
	pt.fired++
	if pt.spec.Mode == ModeDelay {
		return pt.spec.Delay, nil
	}
	return 0, &Error{Point: name, Transient: pt.spec.Transient}
}

// Wrap interposes the named failpoint on a writer: ModePartialWrite
// specs let Spec.After bytes through and then fail mid-buffer, and
// ModeError/ModeDelay specs treat each Write call as a hit. Returns w
// unchanged when nothing at all is armed.
func Wrap(name string, w io.Writer) io.Writer {
	if armed.Load() == 0 {
		return w
	}
	return &faultWriter{name: name, w: w}
}

type faultWriter struct {
	name string
	w    io.Writer
}

func (fw *faultWriter) Write(p []byte) (int, error) {
	allow, delay, err := evalWrite(fw.name, len(p))
	if delay > 0 {
		time.Sleep(delay)
	}
	if err == nil {
		return fw.w.Write(p)
	}
	n := 0
	if allow > 0 {
		var werr error
		n, werr = fw.w.Write(p[:allow])
		if werr != nil {
			return n, werr
		}
	}
	return n, err
}

func evalWrite(name string, nbytes int) (allow int, delay time.Duration, err error) {
	mu.Lock()
	defer mu.Unlock()
	pt, ok := points[name]
	if !ok {
		return nbytes, 0, nil
	}
	switch pt.spec.Mode {
	case ModePartialWrite:
		if pt.spec.Times >= 0 && pt.fired >= pt.limit() {
			return nbytes, 0, nil
		}
		before := pt.hits
		pt.hits += nbytes
		if pt.hits <= pt.spec.After {
			return nbytes, 0, nil
		}
		pt.fired++
		allow = pt.spec.After - before
		if allow < 0 {
			allow = 0
		}
		return allow, 0, &Error{Point: name, Transient: pt.spec.Transient}
	case ModeError, ModeDelay:
		pt.hits++
		if pt.hits <= pt.spec.After || (pt.spec.Times >= 0 && pt.fired >= pt.limit()) {
			return nbytes, 0, nil
		}
		pt.fired++
		if pt.spec.Mode == ModeDelay {
			return nbytes, pt.spec.Delay, nil
		}
		return 0, 0, &Error{Point: name, Transient: pt.spec.Transient}
	default:
		return nbytes, 0, nil
	}
}

// Fired reports how many times the named point has triggered since it
// was armed — tests assert a schedule actually exercised its faults.
func Fired(name string) int {
	mu.Lock()
	defer mu.Unlock()
	if pt, ok := points[name]; ok {
		return pt.fired
	}
	return 0
}

// Schedule derives a deterministic fault schedule from a seed: one to
// three specs over the given call-site points (hit) and writer points
// (write), with randomized trigger offsets, occurrence counts and
// transient classification. The same seed always produces the same
// schedule, so a failing chaos run reproduces exactly.
func Schedule(seed int64, hit, write []string) []Spec {
	rng := rand.New(rand.NewSource(seed))
	n := 1 + rng.Intn(3)
	if m := len(hit) + len(write); n > m {
		n = m
	}
	specs := make([]Spec, 0, n)
	used := map[string]bool{}
	for len(specs) < n {
		var sp Spec
		if len(write) > 0 && rng.Intn(4) == 0 {
			sp.Point = write[rng.Intn(len(write))]
			sp.Mode = ModePartialWrite
			sp.After = rng.Intn(8 << 10) // truncate within the first frames
		} else if len(hit) > 0 {
			sp.Point = hit[rng.Intn(len(hit))]
			sp.After = rng.Intn(3)
			if rng.Intn(5) == 0 {
				sp.Mode = ModeDelay
				sp.Delay = time.Duration(rng.Intn(2500)) * time.Microsecond
			} else {
				sp.Mode = ModeError
			}
		} else {
			continue
		}
		if used[sp.Point] {
			continue
		}
		used[sp.Point] = true
		sp.Transient = rng.Intn(2) == 0
		sp.Times = 1
		if rng.Intn(4) == 0 {
			sp.Times = 1 + rng.Intn(2)
		}
		specs = append(specs, sp)
	}
	return specs
}
