package demo

import (
	"fmt"
	"testing"

	"repro/internal/mimic"
)

func smallSystem(t *testing.T) *System {
	t.Helper()
	cfg := mimic.DefaultConfig()
	cfg.Patients = 60
	cfg.WaveformSeconds = 2
	sys, err := Load(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestLoadPartitionsAcrossEngines(t *testing.T) {
	sys := smallSystem(t)
	wantEngines := map[string]string{
		"patients": "postgres", "admissions": "postgres",
		"labs": "postgres", "prescriptions": "postgres",
		"waveforms": "scidb", "vitals_history": "scidb",
		"notes": "accumulo", "vitals": "sstore",
	}
	for name, eng := range wantEngines {
		info, ok := sys.Poly.Lookup(name)
		if !ok || string(info.Engine) != eng {
			t.Errorf("object %s: %+v (want %s)", name, info, eng)
		}
	}
}

func TestCrossIslandQueriesWork(t *testing.T) {
	sys := smallSystem(t)
	p := sys.Poly

	// Relational (SQL analytics): drug frequency.
	rel, err := p.Query(`POSTGRES(SELECT drug, COUNT(*) AS n FROM prescriptions GROUP BY drug ORDER BY n DESC)`)
	if err != nil || rel.Len() == 0 {
		t.Errorf("drug histogram: %v %v", rel, err)
	}

	// Array (waveform slice for patient 3).
	rel, err = p.Query(`SCIDB(aggregate(filter(waveforms, patient = 3), count(v)))`)
	if err != nil {
		t.Fatal(err)
	}
	wantSamples := int64(sys.Dataset.Config.SampleRate * sys.Dataset.Config.WaveformSeconds)
	if rel.Tuples[0][0].AsInt() != wantSamples {
		t.Errorf("patient 3 samples: %v, want %d", rel.Tuples[0][0], wantSamples)
	}

	// Text: the planted very-sick cohort surfaces.
	rel, err = p.Query(`TEXT(search(notes, 'very sick', 3))`)
	if err != nil {
		t.Fatal(err)
	}
	want := sys.Dataset.VerySickPatients(3)
	if rel.Len() != len(want) {
		t.Errorf("very-sick cohort: got %d rows, want %d", rel.Len(), len(want))
	}

	// Cross-engine CAST: SQL over the waveform array.
	rel, err = p.Query(`RELATIONAL(SELECT COUNT(*) AS n FROM CAST(waveforms, relation) WHERE v > 1.0)`)
	if err != nil || rel.Tuples[0][0].I == 0 {
		t.Errorf("cast query: %v %v", rel, err)
	}
}

func TestLiveIngestAndAnomalyAlerts(t *testing.T) {
	sys := smallSystem(t)
	rate := sys.Dataset.Config.SampleRate

	// Two seconds of normal signal: no alerts.
	n, err := sys.IngestLive(1, 0, 2*rate, false)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("normal signal raised %d alerts", n)
	}
	// One second of arrhythmia: alerts fire.
	n, err = sys.IngestLive(1, 2*rate, rate, true)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("anomalous signal raised no alerts")
	}
	if sys.Alerts[0].Patient != 1 || sys.Alerts[0].Score <= sys.AlertThreshold {
		t.Errorf("alert contents: %+v", sys.Alerts[0])
	}
}

func TestAgedRecordsReachHistory(t *testing.T) {
	sys := smallSystem(t)
	rate := sys.Dataset.Config.SampleRate
	// Fill the window twice over so half the records age out into SciDB.
	if _, err := sys.IngestLive(2, 0, 2*rate, false); err != nil {
		t.Fatal(err)
	}
	rel, err := sys.Poly.Query(`SCIDB(aggregate(vitals_history, count(v)))`)
	if err != nil {
		t.Fatal(err)
	}
	if got := rel.Tuples[0][0].AsInt(); got != int64(rate) {
		t.Errorf("history cells: %d, want %d", got, rate)
	}
}

func TestStreamWindowQueryAfterIngest(t *testing.T) {
	sys := smallSystem(t)
	rate := sys.Dataset.Config.SampleRate
	if _, err := sys.IngestLive(1, 0, rate/2, false); err != nil {
		t.Fatal(err)
	}
	rel, err := sys.Poly.Query(`STREAM(aggregate(vitals, count, v))`)
	if err != nil {
		t.Fatal(err)
	}
	if int(rel.Tuples[0][0].AsFloat()) != rate/2 {
		t.Errorf("window count: %v, want %d", rel.Tuples[0][0], rate/2)
	}
}

func TestD4MOverNotes(t *testing.T) {
	sys := smallSystem(t)
	rel, err := sys.Poly.Query(`D4M(sumrows(assoc(notes)))`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != sys.Dataset.Config.Patients {
		t.Errorf("note rows per patient: %d, want %d", rel.Len(), sys.Dataset.Config.Patients)
	}
	_ = fmt.Sprintf("%v", rel)
}
