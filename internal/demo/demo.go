// Package demo assembles the BigDAWG MIMIC II demonstration (§3 of the
// paper): it partitions the synthetic MIMIC II dataset across the
// federation exactly as the demo does —
//
//	Postgres  ← patient metadata, admissions, labs, prescriptions
//	SciDB     ← historical waveform samples (dense 2-D array)
//	Accumulo  ← clinical notes (text-indexed)
//	S-Store   ← live vitals stream with an anomaly-alert trigger
//
// — and registers everything in the polystore catalog.
package demo

import (
	"fmt"

	"repro/internal/analytics"
	"repro/internal/array"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/kvstore"
	"repro/internal/mimic"
	"repro/internal/stream"
)

// Alert is one anomaly raised by the real-time monitoring trigger.
type Alert struct {
	Patient int64
	TS      int64
	Score   float64 // normalised RMSE vs the reference waveform
}

// System is the assembled demo federation.
type System struct {
	Poly    *core.Polystore
	Dataset *mimic.Dataset

	// Alerts collects anomaly alerts raised by the vitals trigger. The
	// slice is only safe to read after ingestion quiesces.
	Alerts []Alert

	// AlertThreshold is the NRMSE score above which the trigger fires.
	AlertThreshold float64
}

// WaveformPatients is how many patients get historical waveforms in
// SciDB (a subset keeps the demo laptop-sized).
const WaveformPatients = 20

// Load generates the dataset and loads the federation.
func Load(cfg mimic.Config) (*System, error) {
	ds, err := mimic.Generate(cfg)
	if err != nil {
		return nil, err
	}
	p := core.New()
	sys := &System{Poly: p, Dataset: ds, AlertThreshold: 1.0}

	// --- Postgres: relational tables. ---
	relTables := []struct {
		name string
		rel  *engine.Relation
		pk   string
	}{
		{"patients", ds.Patients, "id"},
		{"admissions", ds.Admissions, "adm_id"},
		{"labs", ds.Labs, "lab_id"},
		{"prescriptions", ds.Prescriptions, "rx_id"},
	}
	for _, t := range relTables {
		if err := p.Relational.CreateTable(t.name, t.rel.Schema, t.pk); err != nil {
			return nil, err
		}
		if err := p.Relational.InsertRelation(t.name, t.rel); err != nil {
			return nil, err
		}
		if err := p.Register(t.name, core.EnginePostgres, t.name); err != nil {
			return nil, err
		}
	}

	// --- SciDB: historical waveforms as a dense 2-D array. ---
	nSamples := int64(cfg.SampleRate * cfg.WaveformSeconds)
	nPatients := int64(cfg.Patients)
	if nPatients > WaveformPatients {
		nPatients = WaveformPatients
	}
	wf, err := array.New("waveforms", []array.Dim{
		{Name: "patient", Low: 1, High: nPatients},
		{Name: "t", Low: 0, High: nSamples - 1},
	}, []engine.Column{engine.Col("v", engine.TypeFloat)}, true)
	if err != nil {
		return nil, err
	}
	for pid := int64(1); pid <= nPatients; pid++ {
		samples := mimic.Waveform(cfg.Seed, int(pid), 0, int(nSamples), cfg.SampleRate, false)
		for i, v := range samples {
			if err := wf.Set([]int64{pid, int64(i)}, engine.Tuple{engine.NewFloat(v)}); err != nil {
				return nil, err
			}
		}
	}
	p.ArrayStore.Put(wf)
	if err := p.Register("waveforms", core.EngineSciDB, "waveforms"); err != nil {
		return nil, err
	}

	// --- Accumulo: clinical notes with a text index on the note family. ---
	if err := p.KV.CreateTable("notes", "note"); err != nil {
		return nil, err
	}
	entries := make([]kvstore.Entry, 0, len(ds.Notes))
	for _, n := range ds.Notes {
		entries = append(entries, kvstore.Entry{
			Key: kvstore.Key{
				Row:       fmt.Sprintf("p%06d", n.PatientID),
				Family:    "note",
				Qualifier: fmt.Sprintf("%s_%02d", n.Author, n.Seq),
				Timestamp: int64(n.Seq),
			},
			Value: n.Text,
		})
	}
	if err := p.KV.PutBatch("notes", entries); err != nil {
		return nil, err
	}
	if err := p.Register("notes", core.EngineAccumulo, "notes"); err != nil {
		return nil, err
	}

	// --- S-Store: live vitals stream + anomaly trigger. ---
	// Window holds one second of samples; the trigger compares the
	// window to the patient's reference profile and raises an alert on
	// divergence — the §1 "Real-Time Monitoring" workflow.
	if err := p.Streams.CreateStream("vitals", engine.NewSchema(
		engine.Col("patient", engine.TypeInt),
		engine.Col("v", engine.TypeFloat),
	), cfg.SampleRate); err != nil {
		return nil, err
	}
	err = p.Streams.RegisterTrigger("vitals", "waveform_anomaly", func(view *stream.WindowView, rec stream.Record) error {
		if view.Len() < cfg.SampleRate {
			return nil // wait for a full window
		}
		pid := rec.Values[0].AsInt()
		vals := make([]float64, 0, view.Len())
		var firstTS int64 = -1
		for i := 0; i < view.Len(); i++ {
			r := view.At(i)
			if r.Values[0].AsInt() != pid {
				continue
			}
			if firstTS < 0 {
				firstTS = r.TS
			}
			vals = append(vals, r.Values[1].AsFloat())
		}
		if len(vals) < cfg.SampleRate/2 {
			return nil
		}
		ref := mimic.ReferenceWaveform(cfg.Seed, int(pid), int(firstTS), len(vals), cfg.SampleRate)
		score, err := analytics.NormalizedRMSE(vals, ref)
		if err != nil {
			return nil // incomparable window shapes are not an abort
		}
		if score > sys.AlertThreshold {
			sys.Alerts = append(sys.Alerts, Alert{Patient: pid, TS: rec.TS, Score: score})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := p.Register("vitals", core.EngineSStore, "vitals"); err != nil {
		return nil, err
	}

	// Aged-out stream records land in SciDB ("data ages out of S-Store
	// and is loaded into SciDB", §3) — modelled by appending evicted
	// records into a sparse history array.
	history, err := array.New("vitals_history", []array.Dim{
		{Name: "patient", Low: 1, High: int64(cfg.Patients)},
		{Name: "t", Low: 0, High: 1 << 40},
	}, []engine.Column{engine.Col("v", engine.TypeFloat)}, false)
	if err != nil {
		return nil, err
	}
	p.ArrayStore.Put(history)
	if err := p.Register("vitals_history", core.EngineSciDB, "vitals_history"); err != nil {
		return nil, err
	}
	p.Streams.OnEvict(func(streamName string, rec stream.Record) {
		if streamName != "vitals" {
			return
		}
		_ = history.Set([]int64{rec.Values[0].AsInt(), rec.TS},
			engine.Tuple{rec.Values[1]})
	})
	return sys, nil
}

// IngestLive pushes n waveform samples for a patient into the vitals
// stream, optionally with an arrhythmia anomaly, starting at sample
// offset start. It returns the number of alerts raised during this
// batch.
func (sys *System) IngestLive(patient int, start, n int, anomaly bool) (int, error) {
	cfg := sys.Dataset.Config
	samples := mimic.Waveform(cfg.Seed, patient, start, n, cfg.SampleRate, anomaly)
	before := len(sys.Alerts)
	for i, v := range samples {
		err := sys.Poly.Streams.Append("vitals", stream.Record{
			TS: int64(start + i),
			Values: engine.Tuple{
				engine.NewInt(int64(patient)), engine.NewFloat(v),
			},
		})
		if err != nil {
			return 0, err
		}
	}
	return len(sys.Alerts) - before, nil
}
