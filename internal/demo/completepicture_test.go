package demo

import (
	"testing"

	"repro/internal/mimic"
)

// TestCompletePatientPicture reproduces the §3 scenario: "since all of
// the streaming data persists in either S-Store or the array engine,
// the real-time monitoring and complex analytics on waveform data will
// use cross-system query support to obtain a complete picture of a
// patient". Recent samples live in the stream window, older samples
// have aged into SciDB; a cross-island query reassembles the full
// signal with no gaps or duplicates.
func TestCompletePatientPicture(t *testing.T) {
	cfg := mimic.DefaultConfig()
	cfg.Patients = 30
	cfg.WaveformSeconds = 2
	sys, err := Load(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := sys.Poly
	rate := cfg.SampleRate

	// Ingest 3 seconds: the window holds the last second, two seconds
	// have aged into the vitals_history array.
	const patient = 4
	totalSamples := 3 * rate
	if _, err := sys.IngestLive(patient, 0, totalSamples, false); err != nil {
		t.Fatal(err)
	}

	// Live part: the stream island's window.
	live, err := p.Query(`STREAM(window(vitals))`)
	if err != nil {
		t.Fatal(err)
	}
	// Historical part: the array island.
	hist, err := p.Query(`SCIDB(filter(vitals_history, patient = 4))`)
	if err != nil {
		t.Fatal(err)
	}
	if live.Len() != rate {
		t.Fatalf("live window: %d samples, want %d", live.Len(), rate)
	}
	if hist.Len() != totalSamples-rate {
		t.Fatalf("history: %d samples, want %d", hist.Len(), totalSamples-rate)
	}

	// Reassemble and verify the complete picture: every timestamp
	// 0..totalSamples-1 exactly once.
	seen := make([]bool, totalSamples)
	tsIdx := live.Schema.Index("ts")
	pidIdx := live.Schema.Index("patient")
	for _, row := range live.Tuples {
		if row[pidIdx].AsInt() != patient {
			continue
		}
		ts := row[tsIdx].AsInt()
		if seen[ts] {
			t.Fatalf("duplicate live sample at ts=%d", ts)
		}
		seen[ts] = true
	}
	hTs := hist.Schema.Index("t")
	for _, row := range hist.Tuples {
		ts := row[hTs].AsInt()
		if seen[ts] {
			t.Fatalf("sample ts=%d present in both window and history", ts)
		}
		seen[ts] = true
	}
	for ts, ok := range seen {
		if !ok {
			t.Fatalf("gap in the complete picture at ts=%d", ts)
		}
	}

	// The same reassembly through a single cross-island SQL query:
	// CAST the live window to a relation and count both sides.
	rel, err := p.Query(`RELATIONAL(SELECT COUNT(*) AS n FROM CAST(vitals, relation) WHERE patient = 4)`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Tuples[0][0].I != int64(rate) {
		t.Errorf("cross-island live count: %v, want %d", rel.Tuples[0][0], rate)
	}
}
