package scalar

import (
	"math"
	"testing"

	"repro/internal/array"
	"repro/internal/engine"
)

// heatmap builds a 2-D dense array with value x+y.
func heatmap(t *testing.T, n int64) *array.Array {
	t.Helper()
	a, err := array.New("map", []array.Dim{
		{Name: "x", Low: 0, High: n - 1}, {Name: "y", Low: 0, High: n - 1},
	}, []engine.Column{engine.Col("v", engine.TypeFloat)}, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Fill(func(c []int64) engine.Tuple {
		return engine.Tuple{engine.NewFloat(float64(c[0] + c[1]))}
	}); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewBrowserValidation(t *testing.T) {
	a := heatmap(t, 8)
	if _, err := NewBrowser(a, "v", 0, 2, 4); err == nil {
		t.Error("zero tileCells should fail")
	}
	one, _ := array.New("one", []array.Dim{{Name: "i", Low: 0, High: 3}},
		[]engine.Column{engine.Col("v", engine.TypeFloat)}, true)
	if _, err := NewBrowser(one, "v", 8, 2, 4); err == nil {
		t.Error("1-D array should fail")
	}
}

func TestFetchTileValues(t *testing.T) {
	a := heatmap(t, 64)
	b, err := NewBrowser(a, "v", 8, 3, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Level 0 = whole domain as one tile of 8×8 aggregate cells.
	tile, err := b.Fetch(0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tile.Width != 8 || tile.Height != 8 {
		t.Fatalf("tile shape %dx%d", tile.Width, tile.Height)
	}
	// Cell (0,0) aggregates block x∈[0,8),y∈[0,8): avg = 3.5+3.5 = 7.
	if math.Abs(tile.Cells[0]-7) > 1e-9 {
		t.Errorf("tile cell (0,0) = %v, want 7", tile.Cells[0])
	}
	// Zoom level 1, tile (1,1) covers x,y ∈ [32,64).
	tile, err = b.Fetch(1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Its first cell aggregates x∈[32,36),y∈[32,36): avg = 33.5+33.5 = 67.
	if math.Abs(tile.Cells[0]-67) > 1e-9 {
		t.Errorf("zoomed cell = %v, want 67", tile.Cells[0])
	}
}

func TestFetchOutOfRange(t *testing.T) {
	a := heatmap(t, 16)
	b, _ := NewBrowser(a, "v", 4, 2, 8)
	if _, err := b.Fetch(5, 0, 0); err == nil {
		t.Error("bad level should fail")
	}
	if _, err := b.Fetch(1, 2, 0); err == nil {
		t.Error("tile beyond grid should fail")
	}
	if _, err := b.Fetch(0, -1, 0); err == nil {
		t.Error("negative tile should fail")
	}
}

func TestCacheHitsOnRevisit(t *testing.T) {
	a := heatmap(t, 32)
	b, _ := NewBrowser(a, "v", 4, 3, 64)
	if _, err := b.Fetch(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Fetch(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.CacheHits != 1 || st.CacheMiss != 1 {
		t.Errorf("cache stats: %+v", st)
	}
}

func TestPrefetchTurnsPansIntoHits(t *testing.T) {
	a := heatmap(t, 64)

	// Without prefetch: a left-to-right pan at level 2 misses every tile.
	cold, _ := NewBrowser(a, "v", 4, 3, 64)
	for x := 0; x < 4; x++ {
		if _, err := cold.Fetch(2, x, 1); err != nil {
			t.Fatal(err)
		}
	}
	coldStats := cold.Stats()
	if coldStats.CacheHits != 0 {
		t.Fatalf("cold browser should miss: %+v", coldStats)
	}

	// With prefetch: after the first fetch, neighbours are warm.
	warm, _ := NewBrowser(a, "v", 4, 3, 64)
	warm.Prefetch = true
	warm.SyncPrefetch = true
	for x := 0; x < 4; x++ {
		if _, err := warm.Fetch(2, x, 1); err != nil {
			t.Fatal(err)
		}
	}
	warmStats := warm.Stats()
	if warmStats.CacheHits < 3 {
		t.Errorf("prefetch should serve pans from cache: %+v", warmStats)
	}
	if warmStats.Prefetches == 0 {
		t.Error("no prefetches recorded")
	}
}

func TestPrefetchWarmsZoomIn(t *testing.T) {
	a := heatmap(t, 64)
	b, _ := NewBrowser(a, "v", 4, 3, 64)
	b.Prefetch = true
	b.SyncPrefetch = true
	if _, err := b.Fetch(1, 0, 0); err != nil {
		t.Fatal(err)
	}
	// Zooming into a child tile should hit the cache.
	before := b.Stats().CacheHits
	if _, err := b.Fetch(2, 0, 0); err != nil {
		t.Fatal(err)
	}
	if b.Stats().CacheHits != before+1 {
		t.Errorf("zoom-in should be prefetched: %+v", b.Stats())
	}
}

func TestCacheEviction(t *testing.T) {
	a := heatmap(t, 64)
	b, _ := NewBrowser(a, "v", 4, 3, 2) // tiny cache
	_, _ = b.Fetch(2, 0, 0)
	_, _ = b.Fetch(2, 1, 0)
	_, _ = b.Fetch(2, 2, 0) // evicts (2,0,0)
	_, _ = b.Fetch(2, 0, 0) // miss again
	st := b.Stats()
	if st.CacheMiss != 4 {
		t.Errorf("expected 4 misses with capacity 2: %+v", st)
	}
}

func TestTileGridCoverage(t *testing.T) {
	// All tiles at a level together cover the domain with plausible
	// averages (no NaNs for a fully dense array).
	a := heatmap(t, 32)
	b, _ := NewBrowser(a, "v", 4, 2, 64)
	for x := 0; x < 2; x++ {
		for y := 0; y < 2; y++ {
			tile, err := b.Fetch(1, x, y)
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range tile.Cells {
				if math.IsNaN(v) {
					t.Fatalf("tile (%d,%d) cell %d is NaN", x, y, i)
				}
			}
		}
	}
}
