// Package scalar implements BigDAWG's browsing interface substrate
// (§1 "Browsing" and §1.2 of the paper): ScalaR, a pan/zoom
// detail-on-demand browser. Because "small vis" — loading the dataset
// into memory — cannot survive in a Big Data stack, ScalaR serves
// fixed-size aggregate tiles computed by the array engine at multiple
// resolution levels and *prefetches data in anticipation of user
// movements*.
package scalar

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/array"
	"repro/internal/engine"
)

// Tile is one rendered region: aggregate values for a w×h block grid.
type Tile struct {
	Level int // 0 = coarsest
	X, Y  int // tile coordinates at that level
	// Cells holds the aggregated value per block, row-major, NaN for
	// empty regions.
	Cells  []float64
	Width  int
	Height int
}

// Stats measures browsing responsiveness: cache behaviour is the whole
// game for interactive latency.
type Stats struct {
	Requests   int64
	CacheHits  int64
	CacheMiss  int64
	Prefetches int64
}

// Browser serves tiles over a 2-D array with detail on demand.
type Browser struct {
	mu    sync.Mutex
	src   *array.Array
	attr  string
	tileW int64
	tileH int64
	// levels counts zoom levels; level L divides the domain into
	// 2^L × 2^L tiles.
	levels int

	cache    map[string]*Tile
	capacity int
	order    []string // FIFO eviction order

	// Prefetch enables neighbour prefetching on every fetch.
	Prefetch bool
	// SyncPrefetch runs prefetches inline instead of in the background;
	// useful for deterministic tests. Production behaviour is async so
	// prefetch work stays off the interaction path.
	SyncPrefetch bool

	wg    sync.WaitGroup
	stats Stats
}

// NewBrowser builds a browser over a 2-D array attribute. tileCells is
// the per-tile grid resolution (e.g. 32 → 32×32 aggregate cells per
// tile); levels is the zoom depth; cacheTiles bounds the tile cache.
func NewBrowser(src *array.Array, attr string, tileCells, levels, cacheTiles int) (*Browser, error) {
	if len(src.Dims) != 2 {
		return nil, fmt.Errorf("scalar: browser needs a 2-D array")
	}
	if tileCells <= 0 || levels <= 0 || cacheTiles <= 0 {
		return nil, fmt.Errorf("scalar: tileCells, levels and cacheTiles must be positive")
	}
	return &Browser{
		src: src, attr: attr,
		tileW: int64(tileCells), tileH: int64(tileCells),
		levels: levels, cache: map[string]*Tile{}, capacity: cacheTiles,
	}, nil
}

// Stats returns a snapshot of browsing counters.
func (b *Browser) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// tilesPerAxis returns how many tiles tile the domain at a level.
func tilesPerAxis(level int) int { return 1 << level }

// Fetch returns the tile at (level, x, y), computing it through the
// array engine's regrid on a miss and prefetching the 4-neighbourhood
// when enabled.
func (b *Browser) Fetch(level, x, y int) (*Tile, error) {
	b.mu.Lock()
	b.stats.Requests++
	b.mu.Unlock()
	t, err := b.fetchOne(level, x, y, false)
	if err != nil {
		return nil, err
	}
	if b.Prefetch {
		// Anticipate pans to the four neighbours and a zoom-in to the
		// four child tiles.
		neighbours := [][3]int{
			{level, x - 1, y}, {level, x + 1, y}, {level, x, y - 1}, {level, x, y + 1},
		}
		if level+1 < b.levels {
			neighbours = append(neighbours,
				[3]int{level + 1, 2 * x, 2 * y}, [3]int{level + 1, 2*x + 1, 2 * y},
				[3]int{level + 1, 2 * x, 2*y + 1}, [3]int{level + 1, 2*x + 1, 2*y + 1})
		}
		for _, nb := range neighbours {
			if nb[1] < 0 || nb[2] < 0 || nb[1] >= tilesPerAxis(nb[0]) || nb[2] >= tilesPerAxis(nb[0]) {
				continue
			}
			if b.SyncPrefetch {
				if _, err := b.fetchOne(nb[0], nb[1], nb[2], true); err != nil {
					return nil, err
				}
				continue
			}
			b.wg.Add(1)
			go func(level, x, y int) {
				defer b.wg.Done()
				_, _ = b.fetchOne(level, x, y, true)
			}(nb[0], nb[1], nb[2])
		}
	}
	return t, nil
}

// Quiesce blocks until outstanding background prefetches finish —
// conceptually the user's think time between gestures.
func (b *Browser) Quiesce() { b.wg.Wait() }

func tileKey(level, x, y int) string { return fmt.Sprintf("%d/%d/%d", level, x, y) }

func (b *Browser) fetchOne(level, x, y int, prefetch bool) (*Tile, error) {
	if level < 0 || level >= b.levels {
		return nil, fmt.Errorf("scalar: level %d out of range [0,%d)", level, b.levels)
	}
	per := tilesPerAxis(level)
	if x < 0 || y < 0 || x >= per || y >= per {
		return nil, fmt.Errorf("scalar: tile (%d,%d) out of range at level %d", x, y, level)
	}
	key := tileKey(level, x, y)
	b.mu.Lock()
	if t, ok := b.cache[key]; ok {
		if !prefetch {
			b.stats.CacheHits++
		}
		b.mu.Unlock()
		return t, nil
	}
	if !prefetch {
		b.stats.CacheMiss++
	} else {
		b.stats.Prefetches++
	}
	b.mu.Unlock()

	t, err := b.computeTile(level, x, y)
	if err != nil {
		return nil, err
	}
	b.mu.Lock()
	if _, dup := b.cache[key]; !dup {
		b.cache[key] = t
		b.order = append(b.order, key)
		for len(b.order) > b.capacity {
			evict := b.order[0]
			b.order = b.order[1:]
			delete(b.cache, evict)
		}
	}
	b.mu.Unlock()
	return t, nil
}

// computeTile runs the detail-on-demand aggregation: subarray the
// tile's domain region, then regrid it to the tile cell resolution.
func (b *Browser) computeTile(level, x, y int) (*Tile, error) {
	d0, d1 := b.src.Dims[0], b.src.Dims[1]
	per := int64(tilesPerAxis(level))
	spanX := (d0.Len() + per - 1) / per
	spanY := (d1.Len() + per - 1) / per
	lo := []int64{d0.Low + int64(x)*spanX, d1.Low + int64(y)*spanY}
	hi := []int64{lo[0] + spanX - 1, lo[1] + spanY - 1}
	if hi[0] > d0.High {
		hi[0] = d0.High
	}
	if hi[1] > d1.High {
		hi[1] = d1.High
	}
	sub, err := b.src.Subarray(lo, hi)
	if err != nil {
		return nil, err
	}
	blockX := (sub.Dims[0].Len() + b.tileW - 1) / b.tileW
	blockY := (sub.Dims[1].Len() + b.tileH - 1) / b.tileH
	if blockX < 1 {
		blockX = 1
	}
	if blockY < 1 {
		blockY = 1
	}
	grid, err := sub.Regrid([]int64{blockX, blockY}, array.AggAvg, b.attr)
	if err != nil {
		return nil, err
	}
	w := int(grid.Dims[0].Len())
	h := int(grid.Dims[1].Len())
	t := &Tile{Level: level, X: x, Y: y, Width: w, Height: h, Cells: make([]float64, w*h)}
	for i := range t.Cells {
		t.Cells[i] = math.NaN()
	}
	err = grid.Iterate(func(coords []int64, vals engine.Tuple) error {
		t.Cells[int(coords[0])*h+int(coords[1])] = vals[0].AsFloat()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}
