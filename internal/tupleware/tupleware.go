// Package tupleware implements BigDAWG's Tupleware substitute: a
// Map-Reduce-style engine that "compiles" UDF pipelines aggressively.
// The paper (§2.5) credits Tupleware's ~two-orders-of-magnitude win
// over the Hadoop codeline to eliminating runtime overhead between
// operators. We reproduce exactly that axis:
//
//   - Compiled mode fuses the whole operator pipeline into a single
//     tight loop per partition: one pass, no intermediate
//     materialisation, no per-stage scheduling.
//   - Staged mode (the Hadoop-style baseline) materialises the full
//     dataset between every stage and simulates per-stage task
//     scheduling and serialisation, the costs Tupleware compiles away.
//
// UDF statistics (estimated cost per call) drive the compiler's choice
// of parallelism, reproducing the paper's "takes statistics about UDFs
// into account" claim.
package tupleware

import (
	"fmt"
	"runtime"
	"sync"
)

// Row is one float vector record; workloads are numeric UDF pipelines
// as in the paper's machine-learning examples.
type Row []float64

// MapFn transforms one row (may return the input slice modified).
type MapFn func(Row) Row

// FilterFn keeps rows where it returns true.
type FilterFn func(Row) bool

// ReduceFn folds a row into an accumulator.
type ReduceFn func(acc Row, r Row) Row

// CombineFn merges two partial accumulators (must be associative).
type CombineFn func(a, b Row) Row

// UDFStats carries the per-call cost estimate the optimiser uses.
type UDFStats struct {
	// EstCyclesPerCall is the predicted cost of one UDF invocation; the
	// planner widens parallelism for expensive UDFs and narrows it for
	// trivial ones where fan-out overhead would dominate.
	EstCyclesPerCall int
}

type stageKind int

const (
	stageMap stageKind = iota
	stageFilter
)

type stage struct {
	kind   stageKind
	mapFn  MapFn
	filter FilterFn
	stats  UDFStats
}

// Pipeline is a declared UDF workflow: a chain of map/filter stages and
// an optional terminal reduce.
type Pipeline struct {
	stages  []stage
	reduce  ReduceFn
	combine CombineFn
	init    func() Row
}

// NewPipeline starts an empty pipeline.
func NewPipeline() *Pipeline { return &Pipeline{} }

// Map appends a map stage.
func (p *Pipeline) Map(fn MapFn, stats UDFStats) *Pipeline {
	p.stages = append(p.stages, stage{kind: stageMap, mapFn: fn, stats: stats})
	return p
}

// Filter appends a filter stage.
func (p *Pipeline) Filter(fn FilterFn, stats UDFStats) *Pipeline {
	p.stages = append(p.stages, stage{kind: stageFilter, filter: fn, stats: stats})
	return p
}

// Reduce sets the terminal fold. init allocates a zero accumulator;
// combine merges per-partition partials.
func (p *Pipeline) Reduce(init func() Row, fold ReduceFn, combine CombineFn) *Pipeline {
	p.init = init
	p.reduce = fold
	p.combine = combine
	return p
}

// parallelism picks worker count from UDF stats: cheap pipelines run
// single-threaded (fan-out would dominate), expensive ones use all
// cores. This is the planner decision the paper attributes to knowing
// UDF statistics.
func (p *Pipeline) parallelism(n int) int {
	totalCycles := 0
	for _, s := range p.stages {
		totalCycles += s.stats.EstCyclesPerCall
	}
	if totalCycles*n < 1_000_000 { // trivial total work
		return 1
	}
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// RunCompiled executes the pipeline in fused mode: each partition makes
// a single pass applying every stage per row, feeding the reducer
// without materialising anything.
func (p *Pipeline) RunCompiled(data []Row) (Row, []Row, error) {
	if err := p.check(); err != nil {
		return nil, nil, err
	}
	workers := p.parallelism(len(data))
	if p.reduce != nil {
		partials := make([]Row, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				acc := p.init()
				lo, hi := span(len(data), workers, w)
				for _, r := range data[lo:hi] {
					if out, keep := p.applyFused(r); keep {
						acc = p.reduce(acc, out)
					}
				}
				partials[w] = acc
			}(w)
		}
		wg.Wait()
		acc := partials[0]
		for _, part := range partials[1:] {
			acc = p.combine(acc, part)
		}
		return acc, nil, nil
	}
	outs := make([][]Row, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo, hi := span(len(data), workers, w)
			local := make([]Row, 0, hi-lo)
			for _, r := range data[lo:hi] {
				if out, keep := p.applyFused(r); keep {
					local = append(local, out)
				}
			}
			outs[w] = local
		}(w)
	}
	wg.Wait()
	var all []Row
	for _, o := range outs {
		all = append(all, o...)
	}
	return nil, all, nil
}

// applyFused runs every stage over one row in sequence — the "compiled"
// inner loop.
func (p *Pipeline) applyFused(r Row) (Row, bool) {
	cur := append(Row(nil), r...)
	for _, s := range p.stages {
		switch s.kind {
		case stageMap:
			cur = s.mapFn(cur)
		case stageFilter:
			if !s.filter(cur) {
				return nil, false
			}
		}
	}
	return cur, true
}

// StagedConfig tunes the Hadoop-style baseline's simulated overheads.
type StagedConfig struct {
	// TaskStartupOverhead simulates per-stage job scheduling cost as
	// extra work units per stage (JVM startup, task dispatch).
	TaskStartupOverhead int
	// SerializeBetweenStages materialises and deep-copies the whole
	// dataset between stages (shuffle/spill), the dominant Hadoop cost.
	SerializeBetweenStages bool
}

// DefaultStagedConfig mirrors a Hadoop-style runtime: full
// materialisation plus scheduling overhead per stage.
func DefaultStagedConfig() StagedConfig {
	return StagedConfig{TaskStartupOverhead: 200_000, SerializeBetweenStages: true}
}

// RunStaged executes the pipeline one stage at a time, materialising
// the dataset between stages — the baseline Tupleware is compared
// against.
func (p *Pipeline) RunStaged(data []Row, cfg StagedConfig) (Row, []Row, error) {
	if err := p.check(); err != nil {
		return nil, nil, err
	}
	cur := deepCopy(data)
	burn := 0
	for _, s := range p.stages {
		// Simulated per-stage task scheduling.
		for i := 0; i < cfg.TaskStartupOverhead; i++ {
			burn += i & 1
		}
		next := make([]Row, 0, len(cur))
		switch s.kind {
		case stageMap:
			for _, r := range cur {
				next = append(next, s.mapFn(append(Row(nil), r...)))
			}
		case stageFilter:
			for _, r := range cur {
				if s.filter(r) {
					next = append(next, r)
				}
			}
		}
		if cfg.SerializeBetweenStages {
			next = roundTrip(next)
		}
		cur = next
	}
	_ = burn
	if p.reduce == nil {
		return nil, cur, nil
	}
	acc := p.init()
	for _, r := range cur {
		acc = p.reduce(acc, r)
	}
	return acc, nil, nil
}

func (p *Pipeline) check() error {
	if len(p.stages) == 0 && p.reduce == nil {
		return fmt.Errorf("tupleware: empty pipeline")
	}
	if p.reduce != nil && (p.init == nil || p.combine == nil) {
		return fmt.Errorf("tupleware: Reduce requires init and combine")
	}
	return nil
}

// roundTrip simulates serialisation between stages by encoding each row
// to a byte buffer and back.
func roundTrip(rows []Row) []Row {
	out := make([]Row, len(rows))
	for i, r := range rows {
		buf := make([]byte, 0, len(r)*8)
		for _, v := range r {
			bits := floatBits(v)
			for s := 0; s < 64; s += 8 {
				buf = append(buf, byte(bits>>uint(s)))
			}
		}
		nr := make(Row, len(r))
		for j := range nr {
			var bits uint64
			for s := 0; s < 64; s += 8 {
				bits |= uint64(buf[j*8+s/8]) << uint(s)
			}
			nr[j] = floatFromBits(bits)
		}
		out[i] = nr
	}
	return out
}

func deepCopy(rows []Row) []Row {
	out := make([]Row, len(rows))
	for i, r := range rows {
		out[i] = append(Row(nil), r...)
	}
	return out
}

func span(n, workers, w int) (int, int) {
	lo := n * w / workers
	hi := n * (w + 1) / workers
	return lo, hi
}
