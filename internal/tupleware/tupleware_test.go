package tupleware

import (
	"math"
	"testing"
	"testing/quick"
)

func genData(n int, width int) []Row {
	data := make([]Row, n)
	for i := range data {
		r := make(Row, width)
		for j := range r {
			r[j] = float64((i*31+j*17)%100) / 10
		}
		data[i] = r
	}
	return data
}

func sumPipeline() *Pipeline {
	return NewPipeline().
		Map(func(r Row) Row {
			r[0] = r[0] * 2
			return r
		}, UDFStats{EstCyclesPerCall: 10}).
		Filter(func(r Row) bool { return r[0] > 2 }, UDFStats{EstCyclesPerCall: 5}).
		Reduce(
			func() Row { return Row{0, 0} }, // sum, count
			func(acc, r Row) Row { acc[0] += r[0]; acc[1]++; return acc },
			func(a, b Row) Row { a[0] += b[0]; a[1] += b[1]; return a },
		)
}

func TestEmptyPipelineRejected(t *testing.T) {
	if _, _, err := NewPipeline().RunCompiled(nil); err == nil {
		t.Error("empty pipeline should fail")
	}
	p := &Pipeline{reduce: func(a, b Row) Row { return a }}
	if _, _, err := p.RunCompiled(nil); err == nil {
		t.Error("reduce without init/combine should fail")
	}
}

func TestCompiledEqualsStaged(t *testing.T) {
	data := genData(1000, 4)
	p := sumPipeline()
	cAcc, _, err := p.RunCompiled(data)
	if err != nil {
		t.Fatal(err)
	}
	sAcc, _, err := p.RunStaged(data, DefaultStagedConfig())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cAcc[0]-sAcc[0]) > 1e-6 || cAcc[1] != sAcc[1] {
		t.Errorf("compiled %v != staged %v", cAcc, sAcc)
	}
}

func TestMapOnlyPipeline(t *testing.T) {
	data := genData(100, 2)
	p := NewPipeline().Map(func(r Row) Row { r[1] = r[0] + 1; return r }, UDFStats{EstCyclesPerCall: 1})
	_, outC, err := p.RunCompiled(data)
	if err != nil {
		t.Fatal(err)
	}
	_, outS, err := p.RunStaged(data, StagedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(outC) != 100 || len(outS) != 100 {
		t.Fatalf("lengths: %d %d", len(outC), len(outS))
	}
	for i := range outC {
		if outC[i][1] != outS[i][1] || outC[i][1] != outC[i][0]+1 {
			t.Errorf("row %d: %v vs %v", i, outC[i], outS[i])
		}
	}
	// Inputs must not be mutated by either mode.
	if data[0][1] == data[0][0]+1 && data[0][1] != 0 {
		fresh := genData(100, 2)
		if data[0][1] != fresh[0][1] {
			t.Error("RunCompiled mutated input data")
		}
	}
}

func TestFilterDropsRows(t *testing.T) {
	data := genData(100, 1)
	p := NewPipeline().Filter(func(r Row) bool { return r[0] >= 5 }, UDFStats{EstCyclesPerCall: 1})
	_, out, err := p.RunCompiled(data)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, r := range data {
		if r[0] >= 5 {
			want++
		}
	}
	if len(out) != want {
		t.Errorf("filtered %d rows, want %d", len(out), want)
	}
}

func TestParallelismHeuristic(t *testing.T) {
	cheap := NewPipeline().Map(func(r Row) Row { return r }, UDFStats{EstCyclesPerCall: 1})
	if got := cheap.parallelism(100); got != 1 {
		t.Errorf("cheap pipeline parallelism = %d, want 1", got)
	}
	pricey := NewPipeline().Map(func(r Row) Row { return r }, UDFStats{EstCyclesPerCall: 1_000_000})
	if got := pricey.parallelism(1000); got < 1 {
		t.Errorf("expensive pipeline parallelism = %d", got)
	}
	if got := pricey.parallelism(2); got > 2 {
		t.Errorf("parallelism exceeds data size: %d", got)
	}
}

func TestCompiledEqualsStagedProperty(t *testing.T) {
	// Property: for random thresholds, both modes agree on sum and count.
	f := func(thrRaw int8) bool {
		thr := float64(thrRaw) / 13
		data := genData(200, 2)
		p := NewPipeline().
			Map(func(r Row) Row { r[0] += r[1]; return r }, UDFStats{EstCyclesPerCall: 3}).
			Filter(func(r Row) bool { return r[0] > thr }, UDFStats{EstCyclesPerCall: 1}).
			Reduce(
				func() Row { return Row{0, 0} },
				func(acc, r Row) Row { acc[0] += r[0]; acc[1]++; return acc },
				func(a, b Row) Row { a[0] += b[0]; a[1] += b[1]; return a },
			)
		c, _, err1 := p.RunCompiled(data)
		s, _, err2 := p.RunStaged(data, StagedConfig{})
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(c[0]-s[0]) < 1e-6 && c[1] == s[1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestRoundTripPreservesValues(t *testing.T) {
	rows := []Row{{1.5, -2.25, math.Pi}, {0, math.Inf(1)}}
	got := roundTrip(rows)
	for i := range rows {
		for j := range rows[i] {
			if got[i][j] != rows[i][j] {
				t.Errorf("roundTrip[%d][%d] = %v, want %v", i, j, got[i][j], rows[i][j])
			}
		}
	}
}

func TestKMeansStylePipeline(t *testing.T) {
	// The paper motivates Tupleware with ML workloads; run one k-means
	// assignment step as a pipeline and check centroid accumulation.
	centroids := []Row{{0, 0}, {10, 10}}
	data := []Row{{1, 1}, {2, 2}, {9, 9}, {11, 11}}
	assign := func(r Row) Row {
		best, bestD := 0, math.Inf(1)
		for i, c := range centroids {
			d := (r[0]-c[0])*(r[0]-c[0]) + (r[1]-c[1])*(r[1]-c[1])
			if d < bestD {
				best, bestD = i, d
			}
		}
		return Row{r[0], r[1], float64(best)}
	}
	p := NewPipeline().
		Map(assign, UDFStats{EstCyclesPerCall: 50}).
		Reduce(
			func() Row { return Row{0, 0, 0, 0, 0, 0} }, // sumx0,sumy0,n0,sumx1,sumy1,n1
			func(acc, r Row) Row {
				k := int(r[2]) * 3
				acc[k] += r[0]
				acc[k+1] += r[1]
				acc[k+2]++
				return acc
			},
			func(a, b Row) Row {
				for i := range a {
					a[i] += b[i]
				}
				return a
			},
		)
	acc, _, err := p.RunCompiled(data)
	if err != nil {
		t.Fatal(err)
	}
	if acc[2] != 2 || acc[5] != 2 {
		t.Errorf("cluster sizes: %v", acc)
	}
	if acc[0] != 3 || acc[3] != 20 {
		t.Errorf("cluster sums: %v", acc)
	}
}
