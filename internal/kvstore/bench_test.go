package kvstore

import (
	"fmt"
	"testing"
)

func benchStore(b *testing.B, rows, notesPer int) *Store {
	b.Helper()
	s := NewStore()
	if err := s.CreateTable("notes", "note"); err != nil {
		b.Fatal(err)
	}
	var es []Entry
	for r := 0; r < rows; r++ {
		for q := 0; q < notesPer; q++ {
			text := fmt.Sprintf("routine note %d for patient", q)
			if r%10 == 0 && q < 3 {
				text += " who is very sick today"
			}
			es = append(es, Entry{
				Key:   Key{Row: fmt.Sprintf("p%06d", r), Family: "note", Qualifier: fmt.Sprintf("q%02d", q), Timestamp: int64(q)},
				Value: text,
			})
		}
	}
	if err := s.PutBatch("notes", es); err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkPut(b *testing.B) {
	s := NewStore()
	_ = s.CreateTable("t")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Put("t", Entry{Key: Key{Row: fmt.Sprintf("r%08d", i), Family: "f", Qualifier: "q"}, Value: "v"})
	}
}

func BenchmarkRowGet(b *testing.B) {
	s := benchStore(b, 2_000, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get("notes", "p000500"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRangeScan(b *testing.B) {
	s := benchStore(b, 2_000, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := s.Scan("notes", "p000100", "p000200", nil, func(Entry) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchIndexedVsScan(b *testing.B) {
	s := benchStore(b, 2_000, 4)
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.Search("notes", "very sick", 3); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full_scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.SearchScan("notes", "very sick", 3); err != nil {
				b.Fatal(err)
			}
		}
	})
}
