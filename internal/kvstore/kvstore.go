// Package kvstore implements BigDAWG's Apache Accumulo substitute: a
// sorted key-value store with (row, column family, qualifier, timestamp)
// keys, range scans, server-side iterators, and an inverted text index
// for the clinical-notes workload ("find patients with at least three
// doctor's reports saying 'very sick'"). It backs the text island and
// the Accumulo degenerate island.
package kvstore

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/engine"
)

// Key identifies one cell, ordered lexicographically by
// (Row, Family, Qualifier) and then by descending Timestamp so the
// newest version scans first, matching Accumulo.
type Key struct {
	Row       string
	Family    string
	Qualifier string
	Timestamp int64
}

// Entry is a key plus its value.
type Entry struct {
	Key   Key
	Value string
}

// Less orders keys in scan order.
func (k Key) Less(o Key) bool {
	if k.Row != o.Row {
		return k.Row < o.Row
	}
	if k.Family != o.Family {
		return k.Family < o.Family
	}
	if k.Qualifier != o.Qualifier {
		return k.Qualifier < o.Qualifier
	}
	return k.Timestamp > o.Timestamp // newest first
}

// Iterator is a server-side iterator applied during scans, mirroring
// Accumulo's iterator stack: it may transform an entry or drop it.
type Iterator func(e Entry) (Entry, bool)

// Table is one sorted table of entries.
type Table struct {
	name    string
	entries []Entry // kept sorted
	sorted  bool

	// Inverted text index: term -> row -> occurrence count. Built lazily
	// over entries in indexed column families.
	textIndex     map[string]map[string]int
	indexFamilies map[string]bool
}

// Store is the key-value engine: named tables behind a RW lock.
type Store struct {
	mu     sync.RWMutex
	tables map[string]*Table

	stats Stats
}

// Stats counts engine work for the cross-system monitor.
type Stats struct {
	Queries        int64
	EntriesScanned int64
}

// NewStore creates an empty store.
func NewStore() *Store { return &Store{tables: map[string]*Table{}} }

// Stats returns a snapshot of the engine counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.stats
}

// CreateTable registers a table. indexFamilies lists column families
// whose values are tokenised into the full-text index.
func (s *Store) CreateTable(name string, indexFamilies ...string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := s.tables[key]; ok {
		return fmt.Errorf("kvstore: table %q already exists", name)
	}
	t := &Table{name: name, sorted: true, indexFamilies: map[string]bool{}}
	for _, f := range indexFamilies {
		t.indexFamilies[f] = true
	}
	if len(indexFamilies) > 0 {
		t.textIndex = map[string]map[string]int{}
	}
	s.tables[key] = t
	return nil
}

// DropTable removes a table.
func (s *Store) DropTable(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := s.tables[key]; !ok {
		return fmt.Errorf("kvstore: no table %q", name)
	}
	delete(s.tables, key)
	return nil
}

// Rename atomically moves a table to a new name. It fails if the
// source is missing or the target name is taken, so a staged cast
// commit cannot clobber an existing table.
func (s *Store) Rename(oldName, newName string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	oldKey, newKey := strings.ToLower(oldName), strings.ToLower(newName)
	t, ok := s.tables[oldKey]
	if !ok {
		return fmt.Errorf("kvstore: no table %q", oldName)
	}
	if _, taken := s.tables[newKey]; taken && newKey != oldKey {
		return fmt.Errorf("kvstore: table %q already exists", newName)
	}
	delete(s.tables, oldKey)
	t.name = newName
	s.tables[newKey] = t
	return nil
}

// Tables lists table names.
func (s *Store) Tables() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.tables))
	for _, t := range s.tables {
		out = append(out, t.name)
	}
	sort.Strings(out)
	return out
}

func (s *Store) table(name string) (*Table, error) {
	t, ok := s.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("kvstore: no table %q", name)
	}
	return t, nil
}

// Put writes one entry. Writes append and defer sorting until the next
// scan (write-optimised, like Accumulo's in-memory map + compaction).
func (s *Store) Put(table string, e Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, err := s.table(table)
	if err != nil {
		return err
	}
	t.entries = append(t.entries, e)
	t.sorted = false
	if t.textIndex != nil && t.indexFamilies[e.Key.Family] {
		for term, n := range Tokenize(e.Value) {
			rows := t.textIndex[term]
			if rows == nil {
				rows = map[string]int{}
				t.textIndex[term] = rows
			}
			rows[e.Key.Row] += n
		}
	}
	return nil
}

// PutBatch writes many entries with one lock acquisition.
func (s *Store) PutBatch(table string, es []Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, err := s.table(table)
	if err != nil {
		return err
	}
	for _, e := range es {
		t.entries = append(t.entries, e)
		if t.textIndex != nil && t.indexFamilies[e.Key.Family] {
			for term, n := range Tokenize(e.Value) {
				rows := t.textIndex[term]
				if rows == nil {
					rows = map[string]int{}
					t.textIndex[term] = rows
				}
				rows[e.Key.Row] += n
			}
		}
	}
	t.sorted = false
	return nil
}

func (t *Table) ensureSorted() {
	if !t.sorted {
		// Stable: entries with fully identical keys (e.g. a migrated
		// relation whose rows share a row-key value, all stamped ts=0)
		// keep their insertion order, so scans are deterministic and a
		// filtered (pushdown) load orders duplicates exactly as the full
		// load would.
		sort.SliceStable(t.entries, func(i, j int) bool { return t.entries[i].Key.Less(t.entries[j].Key) })
		t.sorted = true
	}
}

// Scan visits entries with row in [startRow, endRow] (empty bounds are
// open) in key order, applying the iterator stack to each entry.
func (s *Store) Scan(table, startRow, endRow string, iters []Iterator, fn func(Entry) error) error {
	s.mu.Lock()
	t, err := s.table(table)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	t.ensureSorted()
	s.stats.Queries++
	// Snapshot boundaries under the write lock, then scan under it too:
	// sorting mutates, so the simple approach is to keep the lock. Scans
	// are the dominant op; entries are immutable once sorted.
	lo := 0
	if startRow != "" {
		lo = sort.Search(len(t.entries), func(i int) bool { return t.entries[i].Key.Row >= startRow })
	}
	defer s.mu.Unlock()
	for i := lo; i < len(t.entries); i++ {
		e := t.entries[i]
		if endRow != "" && e.Key.Row > endRow {
			break
		}
		s.stats.EntriesScanned++
		keep := true
		for _, it := range iters {
			e, keep = it(e)
			if !keep {
				break
			}
		}
		if !keep {
			continue
		}
		if err := fn(e); err != nil {
			return err
		}
	}
	return nil
}

// Get returns all entries for one row.
func (s *Store) Get(table, row string) ([]Entry, error) {
	var out []Entry
	err := s.Scan(table, row, row, nil, func(e Entry) error {
		out = append(out, e)
		return nil
	})
	return out, err
}

// Len returns the entry count of a table.
func (s *Store) Len(table string) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, err := s.table(table)
	if err != nil {
		return 0, err
	}
	return len(t.entries), nil
}

// FamilyFilter keeps only entries in the given column family.
func FamilyFilter(family string) Iterator {
	return func(e Entry) (Entry, bool) { return e, e.Key.Family == family }
}

// ValueContains keeps entries whose value contains the substring
// (case-insensitive) — the brute-force text path used when no index
// covers a family.
func ValueContains(sub string) Iterator {
	sub = strings.ToLower(sub)
	return func(e Entry) (Entry, bool) {
		return e, strings.Contains(strings.ToLower(e.Value), sub)
	}
}

// Tokenize splits text into lower-case alphanumeric terms with counts.
func Tokenize(text string) map[string]int {
	out := map[string]int{}
	start := -1
	lower := strings.ToLower(text)
	for i := 0; i <= len(lower); i++ {
		isWord := false
		if i < len(lower) {
			c := lower[i]
			isWord = c == '_' || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')
		}
		if isWord {
			if start < 0 {
				start = i
			}
		} else if start >= 0 {
			out[lower[start:i]]++
			start = -1
		}
	}
	return out
}

// SearchResult is one matching row from a text search.
type SearchResult struct {
	Row   string
	Count int // minimum per-term occurrence count across the phrase terms
}

// Search finds rows where every term of the phrase occurs at least
// minCount times, using the inverted index. Phrase terms are ANDed with
// the per-row count being the minimum across terms, which implements
// queries like "at least three reports saying 'very sick'".
func (s *Store) Search(table, phrase string, minCount int) ([]SearchResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, err := s.table(table)
	if err != nil {
		return nil, err
	}
	s.stats.Queries++
	if t.textIndex == nil {
		return nil, fmt.Errorf("kvstore: table %q has no text index", table)
	}
	terms := make([]string, 0, 4)
	for term := range Tokenize(phrase) {
		terms = append(terms, term)
	}
	if len(terms) == 0 {
		return nil, fmt.Errorf("kvstore: empty search phrase")
	}
	sort.Strings(terms)
	// Start from the rarest term's posting list.
	base := t.textIndex[terms[0]]
	for _, term := range terms[1:] {
		if len(t.textIndex[term]) < len(base) {
			base = t.textIndex[term]
		}
	}
	var out []SearchResult
	for row := range base {
		minN := 1 << 30
		ok := true
		for _, term := range terms {
			n := t.textIndex[term][row]
			if n == 0 {
				ok = false
				break
			}
			if n < minN {
				minN = n
			}
		}
		if ok && minN >= minCount {
			out = append(out, SearchResult{Row: row, Count: minN})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Row < out[j].Row
	})
	return out, nil
}

// SearchScan is the unindexed baseline: a full scan counting phrase
// occurrences per row. Used by E10 to show why the text engine wins on
// its home workload.
func (s *Store) SearchScan(table, phrase string, minCount int) ([]SearchResult, error) {
	terms := Tokenize(phrase)
	counts := map[string]int{}
	perRowTerm := map[string]map[string]int{}
	err := s.Scan(table, "", "", nil, func(e Entry) error {
		toks := Tokenize(e.Value)
		m := perRowTerm[e.Key.Row]
		if m == nil {
			m = map[string]int{}
			perRowTerm[e.Key.Row] = m
		}
		for term := range terms {
			m[term] += toks[term]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for row, m := range perRowTerm {
		minN := 1 << 30
		ok := true
		for term := range terms {
			if m[term] == 0 {
				ok = false
				break
			}
			if m[term] < minN {
				minN = m[term]
			}
		}
		if ok && minN >= minCount {
			counts[row] = minN
		}
	}
	out := make([]SearchResult, 0, len(counts))
	for row, n := range counts {
		out = append(out, SearchResult{Row: row, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Row < out[j].Row
	})
	return out, nil
}

// Dump exports a table range as a relation (CAST egress).
func (s *Store) Dump(table string) (*engine.Relation, error) {
	rel := engine.NewRelation(engine.NewSchema(
		engine.Col("row", engine.TypeString),
		engine.Col("family", engine.TypeString),
		engine.Col("qualifier", engine.TypeString),
		engine.Col("ts", engine.TypeInt),
		engine.Col("value", engine.TypeString),
	))
	err := s.Scan(table, "", "", nil, func(e Entry) error {
		return rel.Append(engine.Tuple{
			engine.NewString(e.Key.Row), engine.NewString(e.Key.Family),
			engine.NewString(e.Key.Qualifier), engine.NewInt(e.Key.Timestamp),
			engine.NewString(e.Value),
		})
	})
	if err != nil {
		return nil, err
	}
	return rel, nil
}

// LoadRelation imports a relation in Dump's five-column shape (CAST
// ingest). Tables are created (unindexed) if absent.
func (s *Store) LoadRelation(table string, rel *engine.Relation) error {
	if len(rel.Schema.Columns) != 5 {
		return fmt.Errorf("kvstore: LoadRelation needs (row, family, qualifier, ts, value), got %v", rel.Schema)
	}
	s.mu.Lock()
	if _, ok := s.tables[strings.ToLower(table)]; !ok {
		s.tables[strings.ToLower(table)] = &Table{name: table, sorted: true, indexFamilies: map[string]bool{}}
	}
	s.mu.Unlock()
	es := make([]Entry, 0, rel.Len())
	for _, row := range rel.Tuples {
		es = append(es, Entry{
			Key: Key{
				Row: row[0].String(), Family: row[1].String(),
				Qualifier: row[2].String(), Timestamp: row[3].AsInt(),
			},
			Value: row[4].String(),
		})
	}
	return s.PutBatch(table, es)
}
