package kvstore

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func noteStore(t *testing.T) *Store {
	t.Helper()
	s := NewStore()
	if err := s.CreateTable("notes", "note"); err != nil {
		t.Fatal(err)
	}
	puts := []struct {
		row, fam, qual string
		ts             int64
		val            string
	}{
		{"p001", "note", "d1", 1, "patient is very sick, very sick indeed"},
		{"p001", "note", "d2", 2, "still very sick today"},
		{"p001", "note", "d3", 3, "very sick; administered aspirin"},
		{"p002", "note", "d1", 1, "patient recovering well"},
		{"p002", "note", "d2", 2, "feeling very sick after meal"},
		{"p003", "note", "d1", 1, "routine checkup, all normal"},
		{"p001", "meta", "age", 1, "70"},
		{"p002", "meta", "age", 1, "62"},
	}
	for _, p := range puts {
		if err := s.Put("notes", Entry{Key: Key{p.row, p.fam, p.qual, p.ts}, Value: p.val}); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestKeyOrdering(t *testing.T) {
	a := Key{"r1", "f", "q", 5}
	b := Key{"r1", "f", "q", 9}
	if !b.Less(a) {
		t.Error("newer timestamp should sort first")
	}
	if !(Key{"r1", "a", "z", 0}).Less(Key{"r1", "b", "a", 0}) {
		t.Error("family ordering")
	}
	if !(Key{"a", "z", "z", 0}).Less(Key{"b", "a", "a", 0}) {
		t.Error("row ordering dominates")
	}
}

func TestCreateDrop(t *testing.T) {
	s := NewStore()
	if err := s.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable("T"); err == nil {
		t.Error("duplicate (case-insensitive) create should fail")
	}
	if err := s.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	if err := s.DropTable("t"); err == nil {
		t.Error("double drop should fail")
	}
	if err := s.Put("t", Entry{}); err == nil {
		t.Error("put into dropped table should fail")
	}
}

func TestScanRange(t *testing.T) {
	s := noteStore(t)
	var rows []string
	err := s.Scan("notes", "p001", "p002", nil, func(e Entry) error {
		rows = append(rows, e.Key.Row)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Errorf("range scan entries: %d, want 7", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i] < rows[i-1] {
			t.Errorf("scan not sorted: %v", rows)
		}
	}
	// Open-ended scan sees all 8.
	n := 0
	_ = s.Scan("notes", "", "", nil, func(Entry) error { n++; return nil })
	if n != 8 {
		t.Errorf("full scan: %d", n)
	}
}

func TestScanIterators(t *testing.T) {
	s := noteStore(t)
	var vals []string
	err := s.Scan("notes", "", "", []Iterator{FamilyFilter("meta")}, func(e Entry) error {
		vals = append(vals, e.Value)
		return nil
	})
	if err != nil || len(vals) != 2 {
		t.Fatalf("family filter: %v %v", vals, err)
	}
	n := 0
	_ = s.Scan("notes", "", "", []Iterator{FamilyFilter("note"), ValueContains("aspirin")}, func(Entry) error {
		n++
		return nil
	})
	if n != 1 {
		t.Errorf("stacked iterators: %d", n)
	}
}

func TestGet(t *testing.T) {
	s := noteStore(t)
	es, err := s.Get("notes", "p003")
	if err != nil || len(es) != 1 {
		t.Fatalf("Get: %v %v", es, err)
	}
	es, _ = s.Get("notes", "missing")
	if len(es) != 0 {
		t.Errorf("Get missing row: %v", es)
	}
}

func TestTimestampVersionOrder(t *testing.T) {
	s := NewStore()
	_ = s.CreateTable("v")
	_ = s.Put("v", Entry{Key: Key{"r", "f", "q", 1}, Value: "old"})
	_ = s.Put("v", Entry{Key: Key{"r", "f", "q", 2}, Value: "new"})
	es, _ := s.Get("v", "r")
	if len(es) != 2 || es[0].Value != "new" {
		t.Errorf("newest version should scan first: %v", es)
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("Very sick, very SICK indeed!")
	if got["very"] != 2 || got["sick"] != 2 || got["indeed"] != 1 {
		t.Errorf("Tokenize: %v", got)
	}
	if len(Tokenize("...!!!")) != 0 {
		t.Error("punctuation-only should yield no tokens")
	}
	// Property: token counts sum to a value ≤ number of runs of word chars.
	f := func(s string) bool {
		total := 0
		for _, n := range Tokenize(s) {
			total += n
		}
		return total <= len(s)/1+1 || len(s) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSearchMinCount(t *testing.T) {
	s := noteStore(t)
	// "very sick" at least 3 times → only p001 (3 notes each containing it;
	// occurrences: very=4, sick=4 → min 4 ≥ 3... recount: d1 has very
	// twice + sick twice, d2 once, d3 once → very=4, sick=4).
	res, err := s.Search("notes", "very sick", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Row != "p001" {
		t.Errorf("Search min 3: %v", res)
	}
	// min 1 → p001 and p002.
	res, _ = s.Search("notes", "very sick", 1)
	if len(res) != 2 || res[0].Row != "p001" {
		t.Errorf("Search min 1: %v", res)
	}
	// Term missing everywhere.
	res, _ = s.Search("notes", "zebra", 1)
	if len(res) != 0 {
		t.Errorf("Search zebra: %v", res)
	}
	if _, err := s.Search("notes", "  , ", 1); err == nil {
		t.Error("empty phrase should fail")
	}
	// Unindexed table.
	_ = s.CreateTable("plain")
	if _, err := s.Search("plain", "x", 1); err == nil {
		t.Error("search on unindexed table should fail")
	}
}

func TestSearchMatchesScanBaseline(t *testing.T) {
	s := noteStore(t)
	for _, minCount := range []int{1, 2, 3, 4} {
		idx, err := s.Search("notes", "very sick", minCount)
		if err != nil {
			t.Fatal(err)
		}
		scan, err := s.SearchScan("notes", "very sick", minCount)
		if err != nil {
			t.Fatal(err)
		}
		if len(idx) != len(scan) {
			t.Fatalf("min=%d: index %v vs scan %v", minCount, idx, scan)
		}
		for i := range idx {
			if idx[i] != scan[i] {
				t.Errorf("min=%d result %d: %v vs %v", minCount, i, idx[i], scan[i])
			}
		}
	}
}

func TestDumpLoadRoundTrip(t *testing.T) {
	s := noteStore(t)
	rel, err := s.Dump("notes")
	if err != nil || rel.Len() != 8 {
		t.Fatalf("Dump: %v %v", rel, err)
	}
	s2 := NewStore()
	if err := s2.LoadRelation("copy", rel); err != nil {
		t.Fatal(err)
	}
	n, _ := s2.Len("copy")
	if n != 8 {
		t.Errorf("loaded %d entries", n)
	}
	// Bad shape rejected.
	rel2, _ := s2.Dump("copy")
	rel2.Schema.Columns = rel2.Schema.Columns[:3]
	if err := s2.LoadRelation("bad", rel2); err == nil {
		t.Error("bad shape should fail")
	}
}

func TestPutBatchLargeAndStats(t *testing.T) {
	s := NewStore()
	_ = s.CreateTable("big", "f")
	var es []Entry
	for i := 0; i < 1000; i++ {
		es = append(es, Entry{
			Key:   Key{Row: fmt.Sprintf("r%04d", i%100), Family: "f", Qualifier: fmt.Sprintf("q%d", i), Timestamp: int64(i)},
			Value: fmt.Sprintf("value number %d with some words", i),
		})
	}
	if err := s.PutBatch("big", es); err != nil {
		t.Fatal(err)
	}
	n, _ := s.Len("big")
	if n != 1000 {
		t.Fatalf("batch len: %d", n)
	}
	res, err := s.Search("big", "words", 1)
	if err != nil || len(res) != 100 {
		t.Fatalf("batch search: %d results, %v", len(res), err)
	}
	st := s.Stats()
	if st.Queries == 0 {
		t.Error("stats should count queries")
	}
	var rows []string
	_ = s.Scan("big", "r0010", "r0010", nil, func(e Entry) error {
		rows = append(rows, e.Key.Qualifier)
		return nil
	})
	if len(rows) != 10 {
		t.Errorf("row group scan: %d", len(rows))
	}
	if s.Stats().EntriesScanned <= st.EntriesScanned {
		t.Error("scan should count entries")
	}
	if got := s.Tables(); len(got) != 1 || !strings.EqualFold(got[0], "big") {
		t.Errorf("Tables: %v", got)
	}
}
