package array

import (
	"fmt"
	"math"

	"repro/internal/engine"
	"repro/internal/relational"
)

// Operators below follow SciDB's AQL operator set. Each returns a new
// array (or scalar relation) and leaves the input untouched.

// Filter keeps cells where the predicate (a SQL expression over
// dimension and attribute names) is true. The result is sparse.
func (a *Array) Filter(predicate string) (*Array, error) {
	cols := a.cellSchema().Columns
	pred, err := relational.CompileRowExpr(predicate, cols)
	if err != nil {
		return nil, err
	}
	out, err := New(a.Name+"_filter", cloneDims(a.Dims), a.Attrs, false)
	if err != nil {
		return nil, err
	}
	row := make(engine.Tuple, len(cols))
	err = a.Iterate(func(coords []int64, vals engine.Tuple) error {
		for i, c := range coords {
			row[i] = engine.NewInt(c)
		}
		copy(row[len(coords):], vals)
		v, err := pred(row)
		if err != nil {
			return err
		}
		if !v.IsNull() && v.AsBool() {
			return out.Set(coords, vals.Clone())
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Subarray restricts the domain to the box [lo, hi] (inclusive,
// per-dimension) and rebases coordinates to start at lo.
func (a *Array) Subarray(lo, hi []int64) (*Array, error) {
	if len(lo) != len(a.Dims) || len(hi) != len(a.Dims) {
		return nil, fmt.Errorf("array: %s: subarray needs %d bounds per side", a.Name, len(a.Dims))
	}
	dims := make([]Dim, len(a.Dims))
	for i, d := range a.Dims {
		l, h := lo[i], hi[i]
		if l < d.Low {
			l = d.Low
		}
		if h > d.High {
			h = d.High
		}
		if h < l {
			return nil, fmt.Errorf("array: %s: empty subarray on dimension %s", a.Name, d.Name)
		}
		dims[i] = Dim{Name: d.Name, Low: 0, High: h - l, Chunk: d.Chunk}
		lo[i], hi[i] = l, h
	}
	out, err := New(a.Name+"_sub", dims, a.Attrs, a.dense)
	if err != nil {
		return nil, err
	}
	shifted := make([]int64, len(a.Dims))
	err = a.Iterate(func(coords []int64, vals engine.Tuple) error {
		for i := range coords {
			if coords[i] < lo[i] || coords[i] > hi[i] {
				return nil
			}
			shifted[i] = coords[i] - lo[i]
		}
		return out.Set(shifted, vals.Clone())
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Apply appends a computed attribute evaluated per populated cell.
func (a *Array) Apply(newAttr, expr string) (*Array, error) {
	cols := a.cellSchema().Columns
	ev, err := relational.CompileRowExpr(expr, cols)
	if err != nil {
		return nil, err
	}
	attrs := append(append([]engine.Column{}, a.Attrs...), engine.Col(newAttr, engine.TypeFloat))
	out, err := New(a.Name+"_apply", cloneDims(a.Dims), attrs, a.dense)
	if err != nil {
		return nil, err
	}
	row := make(engine.Tuple, len(cols))
	err = a.Iterate(func(coords []int64, vals engine.Tuple) error {
		for i, c := range coords {
			row[i] = engine.NewInt(c)
		}
		copy(row[len(coords):], vals)
		v, err := ev(row)
		if err != nil {
			return err
		}
		nv := make(engine.Tuple, 0, len(vals)+1)
		nv = append(nv, vals...)
		nv = append(nv, v)
		return out.Set(coords, nv)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// AggKind names a cell aggregate.
type AggKind string

// Supported aggregates.
const (
	AggSum   AggKind = "sum"
	AggAvg   AggKind = "avg"
	AggMin   AggKind = "min"
	AggMax   AggKind = "max"
	AggCount AggKind = "count"
	AggStdev AggKind = "stdev"
)

type aggAcc struct {
	kind     AggKind
	n        int64
	sum, sq  float64
	min, max float64
}

func newAggAcc(kind AggKind) *aggAcc {
	return &aggAcc{kind: kind, min: math.Inf(1), max: math.Inf(-1)}
}

func (ac *aggAcc) add(f float64) {
	if math.IsNaN(f) {
		return
	}
	ac.n++
	ac.sum += f
	ac.sq += f * f
	if f < ac.min {
		ac.min = f
	}
	if f > ac.max {
		ac.max = f
	}
}

func (ac *aggAcc) result() engine.Value {
	switch ac.kind {
	case AggCount:
		return engine.NewInt(ac.n)
	case AggSum:
		return engine.NewFloat(ac.sum)
	case AggAvg:
		if ac.n == 0 {
			return engine.Null
		}
		return engine.NewFloat(ac.sum / float64(ac.n))
	case AggMin:
		if ac.n == 0 {
			return engine.Null
		}
		return engine.NewFloat(ac.min)
	case AggMax:
		if ac.n == 0 {
			return engine.Null
		}
		return engine.NewFloat(ac.max)
	case AggStdev:
		if ac.n < 2 {
			return engine.Null
		}
		n := float64(ac.n)
		v := (ac.sq - ac.sum*ac.sum/n) / (n - 1)
		if v < 0 {
			v = 0
		}
		return engine.NewFloat(math.Sqrt(v))
	default:
		return engine.Null
	}
}

// Aggregate reduces one attribute over all populated cells to a single
// value.
func (a *Array) Aggregate(kind AggKind, attr string) (engine.Value, error) {
	ai, err := a.attrIndex(attr)
	if err != nil {
		return engine.Null, err
	}
	ac := newAggAcc(kind)
	if a.dense {
		// Tight loop over the attribute vector: the array engine's edge.
		col := a.data[ai]
		for idx, ok := range a.filled {
			if ok {
				ac.add(col[idx].AsFloat())
			}
		}
		return ac.result(), nil
	}
	err = a.Iterate(func(_ []int64, vals engine.Tuple) error {
		ac.add(vals[ai].AsFloat())
		return nil
	})
	if err != nil {
		return engine.Null, err
	}
	return ac.result(), nil
}

// AggregateBy reduces an attribute grouped by one dimension, returning a
// 1-D array indexed by that dimension.
func (a *Array) AggregateBy(kind AggKind, attr, dim string) (*Array, error) {
	ai, err := a.attrIndex(attr)
	if err != nil {
		return nil, err
	}
	di := -1
	for i, d := range a.Dims {
		if d.Name == dim {
			di = i
			break
		}
	}
	if di < 0 {
		return nil, fmt.Errorf("array: %s: no dimension %q", a.Name, dim)
	}
	d := a.Dims[di]
	accs := make([]*aggAcc, d.Len())
	for i := range accs {
		accs[i] = newAggAcc(kind)
	}
	err = a.Iterate(func(coords []int64, vals engine.Tuple) error {
		accs[coords[di]-d.Low].add(vals[ai].AsFloat())
		return nil
	})
	if err != nil {
		return nil, err
	}
	out, err := New(a.Name+"_aggby", []Dim{{Name: d.Name, Low: d.Low, High: d.High}},
		[]engine.Column{engine.Col(string(kind)+"_"+attr, engine.TypeFloat)}, true)
	if err != nil {
		return nil, err
	}
	for i, ac := range accs {
		if err := out.Set([]int64{d.Low + int64(i)}, engine.Tuple{ac.result()}); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Regrid partitions the domain into blocks of the given per-dimension
// sizes and aggregates one attribute within each block, producing a
// coarser array — the core of ScalaR's multi-resolution views.
func (a *Array) Regrid(block []int64, kind AggKind, attr string) (*Array, error) {
	if len(block) != len(a.Dims) {
		return nil, fmt.Errorf("array: %s: regrid needs %d block sizes", a.Name, len(a.Dims))
	}
	ai, err := a.attrIndex(attr)
	if err != nil {
		return nil, err
	}
	dims := make([]Dim, len(a.Dims))
	for i, d := range a.Dims {
		if block[i] <= 0 {
			return nil, fmt.Errorf("array: %s: block size must be positive", a.Name)
		}
		n := (d.Len() + block[i] - 1) / block[i]
		dims[i] = Dim{Name: d.Name, Low: 0, High: n - 1}
	}
	accs := map[int64]*aggAcc{}
	outShape, err := New(a.Name+"_regrid", dims,
		[]engine.Column{engine.Col(string(kind)+"_"+attr, engine.TypeFloat)}, true)
	if err != nil {
		return nil, err
	}
	bcoords := make([]int64, len(a.Dims))
	err = a.Iterate(func(coords []int64, vals engine.Tuple) error {
		for i := range coords {
			bcoords[i] = (coords[i] - a.Dims[i].Low) / block[i]
		}
		idx, err := outShape.linear(bcoords)
		if err != nil {
			return err
		}
		ac, ok := accs[idx]
		if !ok {
			ac = newAggAcc(kind)
			accs[idx] = ac
		}
		ac.add(vals[ai].AsFloat())
		return nil
	})
	if err != nil {
		return nil, err
	}
	coords := make([]int64, len(dims))
	for idx, ac := range accs {
		outShape.delinear(idx, coords)
		if err := outShape.Set(coords, engine.Tuple{ac.result()}); err != nil {
			return nil, err
		}
	}
	return outShape, nil
}

// Window computes a centred sliding-window aggregate over a 1-D array
// (radius cells on each side), the primitive behind waveform smoothing
// and the real-time monitoring reference profiles.
func (a *Array) Window(radius int64, kind AggKind, attr string) (*Array, error) {
	if len(a.Dims) != 1 {
		return nil, fmt.Errorf("array: %s: Window requires a 1-D array", a.Name)
	}
	vals, err := a.Floats(attr)
	if err != nil {
		return nil, err
	}
	d := a.Dims[0]
	out, err := New(a.Name+"_window", []Dim{{Name: d.Name, Low: d.Low, High: d.High}},
		[]engine.Column{engine.Col(string(kind)+"_"+attr, engine.TypeFloat)}, true)
	if err != nil {
		return nil, err
	}
	n := int64(len(vals))
	for i := int64(0); i < n; i++ {
		lo, hi := i-radius, i+radius
		if lo < 0 {
			lo = 0
		}
		if hi >= n {
			hi = n - 1
		}
		ac := newAggAcc(kind)
		for j := lo; j <= hi; j++ {
			ac.add(vals[j])
		}
		if err := out.Set([]int64{d.Low + i}, engine.Tuple{ac.result()}); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Transpose swaps the two dimensions of a 2-D array.
func (a *Array) Transpose() (*Array, error) {
	if len(a.Dims) != 2 {
		return nil, fmt.Errorf("array: %s: Transpose requires a 2-D array", a.Name)
	}
	dims := []Dim{a.Dims[1], a.Dims[0]}
	out, err := New(a.Name+"_t", cloneDims(dims), a.Attrs, a.dense)
	if err != nil {
		return nil, err
	}
	err = a.Iterate(func(coords []int64, vals engine.Tuple) error {
		return out.Set([]int64{coords[1], coords[0]}, vals.Clone())
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Matmul multiplies two 2-D arrays on the named attributes, treating
// empty cells as zero (so it works for both dense and sparse operands).
// Result dimensions are rebased to zero.
func Matmul(a, b *Array, attrA, attrB string) (*Array, error) {
	if len(a.Dims) != 2 || len(b.Dims) != 2 {
		return nil, fmt.Errorf("array: Matmul requires 2-D arrays")
	}
	if a.Dims[1].Len() != b.Dims[0].Len() {
		return nil, fmt.Errorf("array: Matmul shape mismatch: %d vs %d", a.Dims[1].Len(), b.Dims[0].Len())
	}
	ai, err := a.attrIndex(attrA)
	if err != nil {
		return nil, err
	}
	bi, err := b.attrIndex(attrB)
	if err != nil {
		return nil, err
	}
	m, k, n := a.Dims[0].Len(), a.Dims[1].Len(), b.Dims[1].Len()

	// Densify operands into float matrices for a cache-friendly kernel.
	am := make([]float64, m*k)
	_ = a.Iterate(func(coords []int64, vals engine.Tuple) error {
		r, c := coords[0]-a.Dims[0].Low, coords[1]-a.Dims[1].Low
		am[r*k+c] = vals[ai].AsFloat()
		return nil
	})
	bm := make([]float64, k*n)
	_ = b.Iterate(func(coords []int64, vals engine.Tuple) error {
		r, c := coords[0]-b.Dims[0].Low, coords[1]-b.Dims[1].Low
		bm[r*n+c] = vals[bi].AsFloat()
		return nil
	})
	cm := make([]float64, m*n)
	for i := int64(0); i < m; i++ {
		for l := int64(0); l < k; l++ {
			av := am[i*k+l]
			if av == 0 {
				continue
			}
			row := bm[l*n : (l+1)*n]
			out := cm[i*n : (i+1)*n]
			for j, bv := range row {
				out[j] += av * bv
			}
		}
	}
	out, err := New(a.Name+"_x_"+b.Name,
		[]Dim{{Name: a.Dims[0].Name, Low: 0, High: m - 1}, {Name: b.Dims[1].Name, Low: 0, High: n - 1}},
		[]engine.Column{engine.Col("v", engine.TypeFloat)}, true)
	if err != nil {
		return nil, err
	}
	for i := int64(0); i < m; i++ {
		for j := int64(0); j < n; j++ {
			if err := out.Set([]int64{i, j}, engine.Tuple{engine.NewFloat(cm[i*n+j])}); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

func cloneDims(dims []Dim) []Dim {
	out := make([]Dim, len(dims))
	copy(out, dims)
	return out
}
