// Package array implements BigDAWG's SciDB substitute: an n-dimensional
// array engine with named dimensions, typed attributes, chunked dense
// and sparse storage, and AQL-style operators (filter, subarray, apply,
// regrid, window, aggregate, matrix multiply, transpose). It backs the
// array island and the SciDB degenerate island; MIMIC II historical
// waveforms live here.
package array

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/engine"
)

// Dim is one array dimension with an inclusive integer domain
// [Low, High] and a chunk length used to tile storage.
type Dim struct {
	Name      string
	Low, High int64
	Chunk     int64
}

// Len returns the number of coordinates along the dimension.
func (d Dim) Len() int64 { return d.High - d.Low + 1 }

// Array is a multidimensional array: dimensions plus one or more typed
// attributes. Dense arrays preallocate a value vector per attribute over
// the whole domain; sparse arrays keep a map of populated cells.
//
// Cells of a dense array that were never written hold NULL, matching
// SciDB's "empty cell" semantics closely enough for the demo workloads.
type Array struct {
	Name  string
	Dims  []Dim
	Attrs []engine.Column

	dense  bool
	data   [][]engine.Value       // dense: per attribute, row-major
	filled []bool                 // dense: cell occupancy
	cells  map[int64]engine.Tuple // sparse: linear index -> attr values
	count  int64                  // populated cell count
}

// New creates an array. Dense arrays must have a bounded domain small
// enough to preallocate; sparse arrays only store populated cells.
func New(name string, dims []Dim, attrs []engine.Column, dense bool) (*Array, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("array: %s: need at least one dimension", name)
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("array: %s: need at least one attribute", name)
	}
	total := int64(1)
	for i, d := range dims {
		if d.High < d.Low {
			return nil, fmt.Errorf("array: %s: dimension %s has empty domain", name, d.Name)
		}
		if d.Chunk <= 0 {
			dims[i].Chunk = d.Len()
		}
		if dense {
			if d.Len() > (1<<31) || total > (1<<31)/d.Len() {
				return nil, fmt.Errorf("array: %s: dense domain too large", name)
			}
			total *= d.Len()
		}
	}
	a := &Array{Name: name, Dims: dims, Attrs: attrs, dense: dense}
	if dense {
		a.data = make([][]engine.Value, len(attrs))
		for i := range a.data {
			a.data[i] = make([]engine.Value, total)
		}
		a.filled = make([]bool, total)
	} else {
		a.cells = map[int64]engine.Tuple{}
	}
	return a, nil
}

// Dense reports whether the array uses dense storage.
func (a *Array) Dense() bool { return a.dense }

// Count returns the number of populated cells.
func (a *Array) Count() int64 { return a.count }

// linear maps coordinates to a row-major linear index.
func (a *Array) linear(coords []int64) (int64, error) {
	if len(coords) != len(a.Dims) {
		return 0, fmt.Errorf("array: %s: got %d coords, want %d", a.Name, len(coords), len(a.Dims))
	}
	var idx int64
	for i, d := range a.Dims {
		c := coords[i]
		if c < d.Low || c > d.High {
			return 0, fmt.Errorf("array: %s: coordinate %s=%d outside [%d,%d]", a.Name, d.Name, c, d.Low, d.High)
		}
		idx = idx*d.Len() + (c - d.Low)
	}
	return idx, nil
}

// delinear inverts linear into the provided coords slice.
func (a *Array) delinear(idx int64, coords []int64) {
	for i := len(a.Dims) - 1; i >= 0; i-- {
		d := a.Dims[i]
		coords[i] = d.Low + idx%d.Len()
		idx /= d.Len()
	}
}

// Set writes one cell's attribute values.
func (a *Array) Set(coords []int64, vals engine.Tuple) error {
	if len(vals) != len(a.Attrs) {
		return fmt.Errorf("array: %s: got %d values, want %d attrs", a.Name, len(vals), len(a.Attrs))
	}
	idx, err := a.linear(coords)
	if err != nil {
		return err
	}
	if a.dense {
		if !a.filled[idx] {
			a.filled[idx] = true
			a.count++
		}
		for i, v := range vals {
			a.data[i][idx] = v
		}
		return nil
	}
	if _, ok := a.cells[idx]; !ok {
		a.count++
	}
	a.cells[idx] = vals.Clone()
	return nil
}

// Get reads one cell; ok is false for empty cells.
func (a *Array) Get(coords []int64) (engine.Tuple, bool, error) {
	idx, err := a.linear(coords)
	if err != nil {
		return nil, false, err
	}
	if a.dense {
		if !a.filled[idx] {
			return nil, false, nil
		}
		t := make(engine.Tuple, len(a.Attrs))
		for i := range t {
			t[i] = a.data[i][idx]
		}
		return t, true, nil
	}
	t, ok := a.cells[idx]
	if !ok {
		return nil, false, nil
	}
	return t.Clone(), true, nil
}

// Fill populates every cell of the domain from fn(coords). Intended for
// dense arrays and synthetic data loading.
func (a *Array) Fill(fn func(coords []int64) engine.Tuple) error {
	coords := make([]int64, len(a.Dims))
	total := int64(1)
	for _, d := range a.Dims {
		total *= d.Len()
	}
	for idx := int64(0); idx < total; idx++ {
		a.delinear(idx, coords)
		if err := a.Set(coords, fn(coords)); err != nil {
			return err
		}
	}
	return nil
}

// Iterate calls fn for every populated cell in row-major order. The
// coords and vals slices are reused across calls; clone to retain.
func (a *Array) Iterate(fn func(coords []int64, vals engine.Tuple) error) error {
	coords := make([]int64, len(a.Dims))
	if a.dense {
		vals := make(engine.Tuple, len(a.Attrs))
		for idx := range a.filled {
			if !a.filled[idx] {
				continue
			}
			a.delinear(int64(idx), coords)
			for i := range vals {
				vals[i] = a.data[i][idx]
			}
			if err := fn(coords, vals); err != nil {
				return err
			}
		}
		return nil
	}
	// Sparse: iterate in sorted linear order for determinism.
	idxs := make([]int64, 0, len(a.cells))
	for idx := range a.cells {
		idxs = append(idxs, idx)
	}
	sortInt64s(idxs)
	for _, idx := range idxs {
		a.delinear(idx, coords)
		if err := fn(coords, a.cells[idx]); err != nil {
			return err
		}
	}
	return nil
}

func sortInt64s(s []int64) {
	// Insertion-free: stdlib sort via interface would allocate; a simple
	// pdq-ish shell sort keeps it dependency-free and fast enough.
	for gap := len(s) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(s); i++ {
			for j := i; j >= gap && s[j] < s[j-gap]; j -= gap {
				s[j], s[j-gap] = s[j-gap], s[j]
			}
		}
	}
}

// cellSchema is the relation schema of flattened cells: dims then attrs.
func (a *Array) cellSchema() engine.Schema {
	cols := make([]engine.Column, 0, len(a.Dims)+len(a.Attrs))
	for _, d := range a.Dims {
		cols = append(cols, engine.Col(d.Name, engine.TypeInt))
	}
	cols = append(cols, a.Attrs...)
	return engine.Schema{Columns: cols}
}

// Schema returns the relation schema of the array's flattened cells
// (dimension columns, then attribute columns) without materialising
// them — what Scan would produce. The polystore's pushdown planner uses
// it to validate predicates against array-resident objects.
func (a *Array) Schema() engine.Schema { return a.cellSchema() }

// Scan flattens the array into a relation with one row per populated
// cell: dimension columns followed by attribute columns. This is the
// CAST egress path from the array island.
func (a *Array) Scan() *engine.Relation {
	rel := engine.NewRelation(a.cellSchema())
	rel.Tuples = make([]engine.Tuple, 0, a.count)
	_ = a.Iterate(func(coords []int64, vals engine.Tuple) error {
		row := make(engine.Tuple, 0, len(coords)+len(vals))
		for _, c := range coords {
			row = append(row, engine.NewInt(c))
		}
		row = append(row, vals...)
		rel.Tuples = append(rel.Tuples, row)
		return nil
	})
	return rel
}

// FromRelation builds a sparse array from a relation whose first columns
// are integer coordinates named after dims. This is the CAST ingest path
// into the array island.
func FromRelation(name string, rel *engine.Relation, dimNames []string, dense bool) (*Array, error) {
	if rel.Len() == 0 {
		return nil, fmt.Errorf("array: cannot infer array %s from empty relation", name)
	}
	dimIdx := make([]int, len(dimNames))
	for i, dn := range dimNames {
		j, err := rel.Schema.MustIndex(dn)
		if err != nil {
			return nil, err
		}
		dimIdx[i] = j
	}
	isDim := map[int]bool{}
	for _, j := range dimIdx {
		isDim[j] = true
	}
	var attrs []engine.Column
	var attrIdx []int
	for j, c := range rel.Schema.Columns {
		if !isDim[j] {
			attrs = append(attrs, c)
			attrIdx = append(attrIdx, j)
		}
	}
	dims := make([]Dim, len(dimNames))
	for i, dn := range dimNames {
		lo, hi := int64(1<<62), int64(-1<<62)
		for _, row := range rel.Tuples {
			c := row[dimIdx[i]].AsInt()
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		dims[i] = Dim{Name: dn, Low: lo, High: hi}
	}
	a, err := New(name, dims, attrs, dense)
	if err != nil {
		return nil, err
	}
	coords := make([]int64, len(dimNames))
	for _, row := range rel.Tuples {
		for i, j := range dimIdx {
			coords[i] = row[j].AsInt()
		}
		vals := make(engine.Tuple, len(attrIdx))
		for i, j := range attrIdx {
			vals[i] = row[j]
		}
		if err := a.Set(coords, vals); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// attrIndex finds the position of the named attribute.
func (a *Array) attrIndex(name string) (int, error) {
	for i, at := range a.Attrs {
		if strings.EqualFold(at.Name, name) {
			return i, nil
		}
	}
	return -1, fmt.Errorf("array: %s: no attribute %q", a.Name, name)
}

// Floats extracts one attribute of a 1-D array as a dense float slice
// ordered by coordinate, with NaN for empty cells. Used by the
// analytics package (FFT, regression) for tight coupling with the array
// engine — the design §2.4 of the paper argues for.
func (a *Array) Floats(attr string) ([]float64, error) {
	if len(a.Dims) != 1 {
		return nil, fmt.Errorf("array: %s: Floats requires 1-D array", a.Name)
	}
	ai, err := a.attrIndex(attr)
	if err != nil {
		return nil, err
	}
	n := a.Dims[0].Len()
	out := make([]float64, n)
	if a.dense {
		for i := int64(0); i < n; i++ {
			out[i] = a.data[ai][i].AsFloat()
		}
		return out, nil
	}
	for i := range out {
		out[i] = math.NaN()
	}
	for idx, vals := range a.cells {
		out[idx] = vals[ai].AsFloat()
	}
	return out, nil
}
