package array

import (
	"testing"

	"repro/internal/engine"
)

func benchArray(b *testing.B, n int64) *Array {
	b.Helper()
	a, err := New("bench", []Dim{{Name: "i", Low: 0, High: n - 1}},
		[]engine.Column{engine.Col("v", engine.TypeFloat)}, true)
	if err != nil {
		b.Fatal(err)
	}
	if err := a.Fill(func(c []int64) engine.Tuple {
		return engine.Tuple{engine.NewFloat(float64(c[0]%97) / 7)}
	}); err != nil {
		b.Fatal(err)
	}
	return a
}

func BenchmarkAggregateDense(b *testing.B) {
	a := benchArray(b, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Aggregate(AggAvg, "v"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFilter(b *testing.B) {
	a := benchArray(b, 50_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Filter("v > 10"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRegrid(b *testing.B) {
	a := benchArray(b, 50_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Regrid([]int64{100}, AggAvg, "v"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWindowAggregate(b *testing.B) {
	a := benchArray(b, 10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Window(5, AggAvg, "v"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatmul(b *testing.B) {
	const n = 64
	m, err := New("m", []Dim{{Name: "r", Low: 0, High: n - 1}, {Name: "c", Low: 0, High: n - 1}},
		[]engine.Column{engine.Col("v", engine.TypeFloat)}, true)
	if err != nil {
		b.Fatal(err)
	}
	_ = m.Fill(func(c []int64) engine.Tuple {
		return engine.Tuple{engine.NewFloat(float64(c[0]+c[1]) / 9)}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Matmul(m, m, "v", "v"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreQueryPipeline(b *testing.B) {
	s := NewStore()
	s.Put(benchArray(b, 20_000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Query("aggregate(filter(bench, v > 5), count(v))"); err != nil {
			b.Fatal(err)
		}
	}
}
