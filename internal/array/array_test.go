package array

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/engine"
)

func mk1D(t *testing.T, name string, vals []float64) *Array {
	t.Helper()
	a, err := New(name, []Dim{{Name: "i", Low: 0, High: int64(len(vals) - 1)}},
		[]engine.Column{engine.Col("v", engine.TypeFloat)}, true)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if err := a.Set([]int64{int64(i)}, engine.Tuple{engine.NewFloat(v)}); err != nil {
			t.Fatal(err)
		}
	}
	return a
}

func mk2D(t *testing.T, name string, rows [][]float64, dense bool) *Array {
	t.Helper()
	a, err := New(name, []Dim{
		{Name: "r", Low: 0, High: int64(len(rows) - 1)},
		{Name: "c", Low: 0, High: int64(len(rows[0]) - 1)},
	}, []engine.Column{engine.Col("v", engine.TypeFloat)}, dense)
	if err != nil {
		t.Fatal(err)
	}
	for r, row := range rows {
		for c, v := range row {
			if err := a.Set([]int64{int64(r), int64(c)}, engine.Tuple{engine.NewFloat(v)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return a
}

func TestNewValidation(t *testing.T) {
	if _, err := New("x", nil, []engine.Column{engine.Col("v", engine.TypeFloat)}, true); err == nil {
		t.Error("no dims should fail")
	}
	if _, err := New("x", []Dim{{Name: "i", Low: 0, High: 9}}, nil, true); err == nil {
		t.Error("no attrs should fail")
	}
	if _, err := New("x", []Dim{{Name: "i", Low: 5, High: 2}}, []engine.Column{engine.Col("v", engine.TypeFloat)}, true); err == nil {
		t.Error("empty domain should fail")
	}
	if _, err := New("x", []Dim{{Name: "i", Low: 0, High: 1 << 40}}, []engine.Column{engine.Col("v", engine.TypeFloat)}, true); err == nil {
		t.Error("huge dense domain should fail")
	}
	// But a huge sparse domain is fine.
	if _, err := New("x", []Dim{{Name: "i", Low: 0, High: 1 << 40}}, []engine.Column{engine.Col("v", engine.TypeFloat)}, false); err != nil {
		t.Errorf("huge sparse domain: %v", err)
	}
}

func TestSetGet(t *testing.T) {
	a := mk1D(t, "a", []float64{1, 2, 3})
	v, ok, err := a.Get([]int64{1})
	if err != nil || !ok || v[0].AsFloat() != 2 {
		t.Errorf("Get = %v %v %v", v, ok, err)
	}
	if _, _, err := a.Get([]int64{99}); err == nil {
		t.Error("out-of-domain Get should fail")
	}
	if err := a.Set([]int64{0}, engine.Tuple{engine.NewFloat(1), engine.NewFloat(2)}); err == nil {
		t.Error("wrong arity Set should fail")
	}
	if a.Count() != 3 {
		t.Errorf("Count = %d", a.Count())
	}
	// Overwrite does not change count.
	_ = a.Set([]int64{0}, engine.Tuple{engine.NewFloat(10)})
	if a.Count() != 3 {
		t.Errorf("Count after overwrite = %d", a.Count())
	}
}

func TestSparseCells(t *testing.T) {
	a, err := New("s", []Dim{{Name: "i", Low: 0, High: 1000000}},
		[]engine.Column{engine.Col("v", engine.TypeFloat)}, false)
	if err != nil {
		t.Fatal(err)
	}
	_ = a.Set([]int64{7}, engine.Tuple{engine.NewFloat(1)})
	_ = a.Set([]int64{999999}, engine.Tuple{engine.NewFloat(2)})
	if a.Count() != 2 {
		t.Errorf("sparse count = %d", a.Count())
	}
	_, ok, _ := a.Get([]int64{8})
	if ok {
		t.Error("empty cell should report !ok")
	}
	// Iterate visits in coordinate order.
	var seen []int64
	_ = a.Iterate(func(coords []int64, _ engine.Tuple) error {
		seen = append(seen, coords[0])
		return nil
	})
	if len(seen) != 2 || seen[0] != 7 || seen[1] != 999999 {
		t.Errorf("sparse iterate order: %v", seen)
	}
}

func TestScanAndFromRelationRoundTrip(t *testing.T) {
	a := mk2D(t, "m", [][]float64{{1, 2}, {3, 4}}, true)
	rel := a.Scan()
	if rel.Len() != 4 || len(rel.Schema.Columns) != 3 {
		t.Fatalf("scan: %v", rel)
	}
	b, err := FromRelation("m2", rel, []string{"r", "c"}, false)
	if err != nil {
		t.Fatal(err)
	}
	v, ok, _ := b.Get([]int64{1, 0})
	if !ok || v[0].AsFloat() != 3 {
		t.Errorf("round trip cell: %v %v", v, ok)
	}
}

func TestFilter(t *testing.T) {
	a := mk1D(t, "a", []float64{1, 5, 2, 8, 3})
	f, err := a.Filter("v > 2.5")
	if err != nil {
		t.Fatal(err)
	}
	if f.Count() != 3 {
		t.Errorf("filter count = %d", f.Count())
	}
	// Filter may reference dimensions too.
	f2, err := a.Filter("i >= 3 AND v > 0")
	if err != nil {
		t.Fatal(err)
	}
	if f2.Count() != 2 {
		t.Errorf("dim filter count = %d", f2.Count())
	}
	if _, err := a.Filter("nonsense >"); err == nil {
		t.Error("bad predicate should fail")
	}
}

func TestSubarray(t *testing.T) {
	a := mk1D(t, "a", []float64{0, 1, 2, 3, 4, 5})
	sub, err := a.Subarray([]int64{2}, []int64{4})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Count() != 3 || sub.Dims[0].Low != 0 || sub.Dims[0].High != 2 {
		t.Errorf("subarray shape: %+v count=%d", sub.Dims, sub.Count())
	}
	v, ok, _ := sub.Get([]int64{0})
	if !ok || v[0].AsFloat() != 2 {
		t.Errorf("rebased cell: %v", v)
	}
	if _, err := a.Subarray([]int64{4}, []int64{2}); err == nil {
		t.Error("inverted bounds should fail")
	}
}

func TestApply(t *testing.T) {
	a := mk1D(t, "a", []float64{1, 2, 3})
	b, err := a.Apply("sq", "v * v")
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Attrs) != 2 {
		t.Fatalf("apply attrs: %v", b.Attrs)
	}
	v, _, _ := b.Get([]int64{2})
	if v[1].AsFloat() != 9 {
		t.Errorf("apply value: %v", v)
	}
}

func TestAggregate(t *testing.T) {
	a := mk1D(t, "a", []float64{1, 2, 3, 4})
	cases := []struct {
		kind AggKind
		want float64
	}{
		{AggSum, 10}, {AggAvg, 2.5}, {AggMin, 1}, {AggMax, 4}, {AggCount, 4},
	}
	for _, tc := range cases {
		v, err := a.Aggregate(tc.kind, "v")
		if err != nil {
			t.Fatal(err)
		}
		if v.AsFloat() != tc.want {
			t.Errorf("%s = %v, want %v", tc.kind, v, tc.want)
		}
	}
	v, _ := a.Aggregate(AggStdev, "v")
	if math.Abs(v.AsFloat()-math.Sqrt(5.0/3)) > 1e-12 {
		t.Errorf("stdev = %v", v)
	}
	if _, err := a.Aggregate(AggSum, "nope"); err == nil {
		t.Error("unknown attr should fail")
	}
}

func TestAggregateBy(t *testing.T) {
	a := mk2D(t, "m", [][]float64{{1, 2, 3}, {4, 5, 6}}, true)
	rowSums, err := a.AggregateBy(AggSum, "v", "r")
	if err != nil {
		t.Fatal(err)
	}
	v0, _, _ := rowSums.Get([]int64{0})
	v1, _, _ := rowSums.Get([]int64{1})
	if v0[0].AsFloat() != 6 || v1[0].AsFloat() != 15 {
		t.Errorf("row sums: %v %v", v0, v1)
	}
}

func TestRegrid(t *testing.T) {
	a := mk1D(t, "a", []float64{1, 2, 3, 4, 5, 6})
	g, err := a.Regrid([]int64{2}, AggAvg, "v")
	if err != nil {
		t.Fatal(err)
	}
	if g.Dims[0].Len() != 3 {
		t.Fatalf("regrid shape: %+v", g.Dims)
	}
	v, _, _ := g.Get([]int64{1})
	if v[0].AsFloat() != 3.5 {
		t.Errorf("regrid block avg: %v", v)
	}
	// Uneven final block.
	g2, err := a.Regrid([]int64{4}, AggCount, "v")
	if err != nil {
		t.Fatal(err)
	}
	v, _, _ = g2.Get([]int64{1})
	if v[0].AsInt() != 2 {
		t.Errorf("partial block count: %v", v)
	}
}

func TestWindow(t *testing.T) {
	a := mk1D(t, "a", []float64{1, 2, 3, 4, 5})
	w, err := a.Window(1, AggAvg, "v")
	if err != nil {
		t.Fatal(err)
	}
	v, _, _ := w.Get([]int64{2})
	if v[0].AsFloat() != 3 {
		t.Errorf("window center: %v", v)
	}
	// Edges use truncated windows.
	v, _, _ = w.Get([]int64{0})
	if v[0].AsFloat() != 1.5 {
		t.Errorf("window edge: %v", v)
	}
}

func TestTransposeAndMatmul(t *testing.T) {
	a := mk2D(t, "a", [][]float64{{1, 2, 3}, {4, 5, 6}}, true)
	at, err := a.Transpose()
	if err != nil {
		t.Fatal(err)
	}
	v, _, _ := at.Get([]int64{2, 1})
	if v[0].AsFloat() != 6 {
		t.Errorf("transpose: %v", v)
	}
	b := mk2D(t, "b", [][]float64{{7, 8}, {9, 10}, {11, 12}}, true)
	c, err := Matmul(a, b, "v", "v")
	if err != nil {
		t.Fatal(err)
	}
	// [1 2 3; 4 5 6] x [7 8; 9 10; 11 12] = [58 64; 139 154]
	want := [][]float64{{58, 64}, {139, 154}}
	for r := int64(0); r < 2; r++ {
		for cc := int64(0); cc < 2; cc++ {
			v, _, _ := c.Get([]int64{r, cc})
			if v[0].AsFloat() != want[r][cc] {
				t.Errorf("matmul[%d][%d] = %v, want %v", r, cc, v[0], want[r][cc])
			}
		}
	}
	if _, err := Matmul(a, a, "v", "v"); err == nil {
		t.Error("shape mismatch should fail")
	}
}

func TestMatmulSparseEqualsDense(t *testing.T) {
	rows := [][]float64{{1, 0, 2}, {0, 3, 0}, {4, 0, 5}}
	dense := mk2D(t, "d", rows, true)
	sparse, err := New("s", []Dim{{Name: "r", Low: 0, High: 2}, {Name: "c", Low: 0, High: 2}},
		[]engine.Column{engine.Col("v", engine.TypeFloat)}, false)
	if err != nil {
		t.Fatal(err)
	}
	for r, row := range rows {
		for c, v := range row {
			if v != 0 {
				_ = sparse.Set([]int64{int64(r), int64(c)}, engine.Tuple{engine.NewFloat(v)})
			}
		}
	}
	cd, err := Matmul(dense, dense, "v", "v")
	if err != nil {
		t.Fatal(err)
	}
	cs, err := Matmul(sparse, sparse, "v", "v")
	if err != nil {
		t.Fatal(err)
	}
	for r := int64(0); r < 3; r++ {
		for c := int64(0); c < 3; c++ {
			vd, _, _ := cd.Get([]int64{r, c})
			vs, _, _ := cs.Get([]int64{r, c})
			if vd[0].AsFloat() != vs[0].AsFloat() {
				t.Errorf("sparse/dense mismatch at %d,%d: %v vs %v", r, c, vd[0], vs[0])
			}
		}
	}
}

func TestLinearDelinearRoundTrip(t *testing.T) {
	a, err := New("x", []Dim{
		{Name: "i", Low: -3, High: 5},
		{Name: "j", Low: 10, High: 20},
	}, []engine.Column{engine.Col("v", engine.TypeFloat)}, false)
	if err != nil {
		t.Fatal(err)
	}
	f := func(i, j uint8) bool {
		ci := int64(-3) + int64(i)%9
		cj := int64(10) + int64(j)%11
		idx, err := a.linear([]int64{ci, cj})
		if err != nil {
			return false
		}
		got := make([]int64, 2)
		a.delinear(idx, got)
		return got[0] == ci && got[1] == cj
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStoreQuery(t *testing.T) {
	s := NewStore()
	s.Put(mk1D(t, "wf", []float64{0, 1, 4, 9, 16, 25}))

	rel, err := s.Query("scan(wf)")
	if err != nil || rel.Len() != 6 {
		t.Fatalf("scan: %v %v", rel, err)
	}
	rel, err = s.Query("aggregate(wf, sum(v))")
	if err != nil || rel.Tuples[0][0].AsFloat() != 55 {
		t.Fatalf("aggregate: %v %v", rel, err)
	}
	rel, err = s.Query("aggregate(filter(wf, v > 3), count(v))")
	if err != nil || rel.Tuples[0][0].AsInt() != 4 {
		t.Fatalf("nested filter: %v %v", rel, err)
	}
	rel, err = s.Query("subarray(wf, 1, 3)")
	if err != nil || rel.Len() != 3 {
		t.Fatalf("subarray: %v %v", rel, err)
	}
	rel, err = s.Query("apply(wf, double, v * 2)")
	if err != nil || len(rel.Schema.Columns) != 3 {
		t.Fatalf("apply: %v %v", rel, err)
	}
	rel, err = s.Query("regrid(wf, 3, max(v))")
	if err != nil || rel.Len() != 2 {
		t.Fatalf("regrid: %v %v", rel, err)
	}
	rel, err = s.Query("window(wf, 1, avg(v))")
	if err != nil || rel.Len() != 6 {
		t.Fatalf("window: %v %v", rel, err)
	}

	// 2-D pipeline.
	s.Put(mk2D(t, "m", [][]float64{{1, 2}, {3, 4}}, true))
	rel, err = s.Query("multiply(m, transpose(m))")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 4 {
		t.Fatalf("multiply result: %v", rel)
	}
	// aggregate by dimension.
	rel, err = s.Query("aggregate(m, sum(v), r)")
	if err != nil || rel.Len() != 2 {
		t.Fatalf("aggregate by: %v %v", rel, err)
	}

	// Errors.
	for _, bad := range []string{
		"nosuch(wf)",
		"scan(missing)",
		"filter(wf)",
		"subarray(wf, 1)",
		"aggregate(wf, frobnicate(v))",
		"scan(wf",
	} {
		if _, err := s.Query(bad); err == nil {
			t.Errorf("Query(%q) should fail", bad)
		}
	}
	if s.Stats().Queries == 0 {
		t.Error("stats should count queries")
	}
}

func TestStoreGetRemove(t *testing.T) {
	s := NewStore()
	s.Put(mk1D(t, "A", []float64{1}))
	if _, err := s.Get("a"); err != nil {
		t.Errorf("case-insensitive Get: %v", err)
	}
	if err := s.Remove("A"); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("A"); err == nil {
		t.Error("double remove should fail")
	}
	if len(s.Names()) != 0 {
		t.Errorf("Names = %v", s.Names())
	}
}

func TestFloats(t *testing.T) {
	a := mk1D(t, "a", []float64{1, 2, 3})
	f, err := a.Floats("v")
	if err != nil || len(f) != 3 || f[2] != 3 {
		t.Errorf("Floats: %v %v", f, err)
	}
	m := mk2D(t, "m", [][]float64{{1}}, true)
	if _, err := m.Floats("v"); err == nil {
		t.Error("Floats on 2-D should fail")
	}
}
