package array

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
)

// Store is the array engine's catalog: named arrays behind a RW lock,
// plus a textual query interface in an AFL (SciDB array functional
// language) style:
//
//	scan(A)
//	filter(A, v > 0.5 AND t < 100)
//	subarray(A, lo..., hi...)
//	apply(A, name, expr)
//	regrid(A, block..., agg(attr))
//	window(A, radius, agg(attr))
//	aggregate(A, agg(attr) [, dim])
//	transpose(A)
//	multiply(A, B [, attrA, attrB])
//
// The first argument of every operator may itself be a nested call, so
// pipelines compose: aggregate(filter(wf, v > 0), avg(v)).
type Store struct {
	mu     sync.RWMutex
	arrays map[string]*Array

	queries      atomic.Int64
	cellsScanned atomic.Int64
}

// Stats counts engine work for the cross-system monitor.
type Stats struct {
	Queries      int64
	CellsScanned int64
}

// NewStore creates an empty array store.
func NewStore() *Store { return &Store{arrays: map[string]*Array{}} }

// Stats returns a snapshot of the engine counters.
func (s *Store) Stats() Stats {
	return Stats{Queries: s.queries.Load(), CellsScanned: s.cellsScanned.Load()}
}

// Put registers an array under its name, replacing any previous one.
func (s *Store) Put(a *Array) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.arrays[strings.ToLower(a.Name)] = a
}

// Get fetches an array by name.
func (s *Store) Get(name string) (*Array, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	a, ok := s.arrays[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("array: no array %q", name)
	}
	return a, nil
}

// Remove drops an array.
func (s *Store) Remove(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := s.arrays[key]; !ok {
		return fmt.Errorf("array: no array %q", name)
	}
	delete(s.arrays, key)
	return nil
}

// Rename atomically moves an array to a new name. It fails if the
// source is missing or the target name is taken, so a staged cast
// commit cannot clobber an existing array.
func (s *Store) Rename(oldName, newName string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	oldKey, newKey := strings.ToLower(oldName), strings.ToLower(newName)
	a, ok := s.arrays[oldKey]
	if !ok {
		return fmt.Errorf("array: no array %q", oldName)
	}
	if _, taken := s.arrays[newKey]; taken && newKey != oldKey {
		return fmt.Errorf("array: array %q already exists", newName)
	}
	delete(s.arrays, oldKey)
	a.Name = newName
	s.arrays[newKey] = a
	return nil
}

// Names lists stored arrays.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.arrays))
	for _, a := range s.arrays {
		out = append(out, a.Name)
	}
	return out
}

// Query parses and executes one AFL query, returning the result as a
// flattened relation.
func (s *Store) Query(q string) (*engine.Relation, error) {
	s.queries.Add(1)
	s.mu.RLock()
	defer s.mu.RUnlock()
	q = strings.TrimSpace(q)
	name, args, isCall, err := splitCall(q)
	if err != nil {
		return nil, err
	}
	if isCall && strings.EqualFold(name, "aggregate") {
		return s.evalAggregate(args)
	}
	a, err := s.evalArray(q)
	if err != nil {
		return nil, err
	}
	s.cellsScanned.Add(a.Count())
	return a.Scan(), nil
}

// evalArray evaluates a query term that denotes an array.
func (s *Store) evalArray(q string) (*Array, error) {
	q = strings.TrimSpace(q)
	name, args, isCall, err := splitCall(q)
	if err != nil {
		return nil, err
	}
	if !isCall {
		a, ok := s.arrays[strings.ToLower(q)]
		if !ok {
			return nil, fmt.Errorf("array: no array %q", q)
		}
		return a, nil
	}
	switch strings.ToLower(name) {
	case "scan":
		if len(args) != 1 {
			return nil, fmt.Errorf("array: scan takes 1 argument")
		}
		return s.evalArray(args[0])
	case "filter":
		if len(args) != 2 {
			return nil, fmt.Errorf("array: filter takes 2 arguments")
		}
		in, err := s.evalArray(args[0])
		if err != nil {
			return nil, err
		}
		return in.Filter(args[1])
	case "apply":
		if len(args) != 3 {
			return nil, fmt.Errorf("array: apply takes 3 arguments")
		}
		in, err := s.evalArray(args[0])
		if err != nil {
			return nil, err
		}
		return in.Apply(strings.TrimSpace(args[1]), args[2])
	case "subarray":
		if len(args) < 3 {
			return nil, fmt.Errorf("array: subarray takes array, lo..., hi...")
		}
		in, err := s.evalArray(args[0])
		if err != nil {
			return nil, err
		}
		nd := len(in.Dims)
		if len(args) != 1+2*nd {
			return nil, fmt.Errorf("array: subarray of %d-D array needs %d bounds", nd, 2*nd)
		}
		lo := make([]int64, nd)
		hi := make([]int64, nd)
		for i := 0; i < nd; i++ {
			if lo[i], err = parseI64(args[1+i]); err != nil {
				return nil, err
			}
			if hi[i], err = parseI64(args[1+nd+i]); err != nil {
				return nil, err
			}
		}
		return in.Subarray(lo, hi)
	case "regrid":
		if len(args) < 3 {
			return nil, fmt.Errorf("array: regrid takes array, block..., agg(attr)")
		}
		in, err := s.evalArray(args[0])
		if err != nil {
			return nil, err
		}
		nd := len(in.Dims)
		if len(args) != 2+nd {
			return nil, fmt.Errorf("array: regrid of %d-D array needs %d block sizes", nd, nd)
		}
		block := make([]int64, nd)
		for i := 0; i < nd; i++ {
			if block[i], err = parseI64(args[1+i]); err != nil {
				return nil, err
			}
		}
		kind, attr, err := parseAgg(args[1+nd])
		if err != nil {
			return nil, err
		}
		return in.Regrid(block, kind, attr)
	case "window":
		if len(args) != 3 {
			return nil, fmt.Errorf("array: window takes array, radius, agg(attr)")
		}
		in, err := s.evalArray(args[0])
		if err != nil {
			return nil, err
		}
		radius, err := parseI64(args[1])
		if err != nil {
			return nil, err
		}
		kind, attr, err := parseAgg(args[2])
		if err != nil {
			return nil, err
		}
		return in.Window(radius, kind, attr)
	case "transpose":
		if len(args) != 1 {
			return nil, fmt.Errorf("array: transpose takes 1 argument")
		}
		in, err := s.evalArray(args[0])
		if err != nil {
			return nil, err
		}
		return in.Transpose()
	case "multiply":
		if len(args) != 2 && len(args) != 4 {
			return nil, fmt.Errorf("array: multiply takes 2 arrays (+ optional attrs)")
		}
		a, err := s.evalArray(args[0])
		if err != nil {
			return nil, err
		}
		b, err := s.evalArray(args[1])
		if err != nil {
			return nil, err
		}
		attrA, attrB := a.Attrs[0].Name, b.Attrs[0].Name
		if len(args) == 4 {
			attrA, attrB = strings.TrimSpace(args[2]), strings.TrimSpace(args[3])
		}
		return Matmul(a, b, attrA, attrB)
	case "aggregate":
		return nil, fmt.Errorf("array: aggregate returns a scalar; use it at top level")
	default:
		return nil, fmt.Errorf("array: unknown operator %q", name)
	}
}

// evalAggregate handles top-level aggregate(A, agg(attr) [, dim]).
func (s *Store) evalAggregate(args []string) (*engine.Relation, error) {
	if len(args) != 2 && len(args) != 3 {
		return nil, fmt.Errorf("array: aggregate takes array, agg(attr) [, dim]")
	}
	in, err := s.evalArray(args[0])
	if err != nil {
		return nil, err
	}
	kind, attr, err := parseAgg(args[1])
	if err != nil {
		return nil, err
	}
	s.cellsScanned.Add(in.Count())
	if len(args) == 3 {
		out, err := in.AggregateBy(kind, attr, strings.TrimSpace(args[2]))
		if err != nil {
			return nil, err
		}
		return out.Scan(), nil
	}
	v, err := in.Aggregate(kind, attr)
	if err != nil {
		return nil, err
	}
	rel := engine.NewRelation(engine.NewSchema(engine.Col(string(kind)+"_"+attr, engine.TypeFloat)))
	_ = rel.Append(engine.Tuple{v})
	return rel, nil
}

// splitCall splits "name(arg1, arg2, ...)" into name and raw args,
// respecting nesting and quotes. isCall is false for a bare identifier.
func splitCall(q string) (name string, args []string, isCall bool, err error) {
	open := strings.IndexByte(q, '(')
	if open < 0 {
		return q, nil, false, nil
	}
	name = strings.TrimSpace(q[:open])
	if name == "" || !strings.HasSuffix(strings.TrimSpace(q), ")") {
		return "", nil, false, fmt.Errorf("array: malformed call %q", q)
	}
	body := strings.TrimSpace(q)
	body = body[open+1 : len(body)-1]
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(body); i++ {
		c := body[i]
		switch {
		case inStr:
			if c == '\'' {
				inStr = false
			}
		case c == '\'':
			inStr = true
		case c == '(':
			depth++
		case c == ')':
			depth--
			if depth < 0 {
				return "", nil, false, fmt.Errorf("array: unbalanced parens in %q", q)
			}
		case c == ',' && depth == 0:
			args = append(args, strings.TrimSpace(body[start:i]))
			start = i + 1
		}
	}
	if depth != 0 || inStr {
		return "", nil, false, fmt.Errorf("array: unbalanced call %q", q)
	}
	if tail := strings.TrimSpace(body[start:]); tail != "" || len(args) > 0 {
		args = append(args, tail)
	}
	return name, args, true, nil
}

func parseI64(s string) (int64, error) {
	v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("array: expected integer, got %q", s)
	}
	return v, nil
}

// parseAgg parses "agg(attr)" like sum(v).
func parseAgg(s string) (AggKind, string, error) {
	name, args, isCall, err := splitCall(strings.TrimSpace(s))
	if err != nil {
		return "", "", err
	}
	if !isCall || len(args) != 1 {
		return "", "", fmt.Errorf("array: expected agg(attr), got %q", s)
	}
	kind := AggKind(strings.ToLower(name))
	switch kind {
	case AggSum, AggAvg, AggMin, AggMax, AggCount, AggStdev:
		return kind, strings.TrimSpace(args[0]), nil
	default:
		return "", "", fmt.Errorf("array: unknown aggregate %q", name)
	}
}
