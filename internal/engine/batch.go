package engine

import "fmt"

// ColumnBatch is the columnar twin of Relation: the same logical rows,
// stored as typed column vectors with per-row null bitmaps. It is the
// unit the vectorized relational executor operates on and the unit the
// binary CAST codec encodes frame-by-frame, so data can move
// scan → filter → join → wire without ever being boxed into per-row
// Tuples.
//
// A ColumnBatch is append-only; consumers treat a batch they did not
// build as immutable, which is what lets the relational engine hand out
// its cached column representation without copying.
type ColumnBatch struct {
	Schema  Schema
	Cols    []ColVec
	NumRows int
}

// ColVec is one column vector. Kind selects the active typed slice;
// Kind == TypeNull marks the generic fallback representation where
// every value lives in Any (used for mixed-type columns, which the
// vectorized executor refuses and the row-at-a-time path handles).
// For typed vectors, a NULL row holds a zero placeholder in the typed
// slice and has its bit set in Nulls.
type ColVec struct {
	Kind   Type
	Ints   []int64
	Floats []float64
	Strs   []string
	Bools  []bool
	Any    []Value
	Nulls  Bitmap
}

// Bitmap is a dense bit set used for per-row NULL tracking. The zero
// value is an empty bitmap where every Get reports false.
type Bitmap []uint64

// Get reports whether bit i is set.
func (b Bitmap) Get(i int) bool {
	w := i >> 6
	return w < len(b) && b[w]&(1<<(uint(i)&63)) != 0
}

// Set marks bit i, growing the bitmap as needed.
func (b *Bitmap) Set(i int) {
	w := i >> 6
	for len(*b) <= w {
		*b = append(*b, 0)
	}
	(*b)[w] |= 1 << (uint(i) & 63)
}

// Empty reports whether no bit is set.
func (b Bitmap) Empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// NewColumnBatch allocates an empty batch for the schema, with typed
// vectors sized for capacity rows. Columns whose schema type is not one
// of the four scalar kinds start in the generic representation.
func NewColumnBatch(s Schema, capacity int) *ColumnBatch {
	cb := &ColumnBatch{Schema: s, Cols: make([]ColVec, len(s.Columns))}
	for i, c := range s.Columns {
		cb.Cols[i] = emptyColVec(c.Type, capacity)
	}
	return cb
}

func emptyColVec(t Type, capacity int) ColVec {
	switch t {
	case TypeInt:
		return ColVec{Kind: TypeInt, Ints: make([]int64, 0, capacity)}
	case TypeFloat:
		return ColVec{Kind: TypeFloat, Floats: make([]float64, 0, capacity)}
	case TypeString:
		return ColVec{Kind: TypeString, Strs: make([]string, 0, capacity)}
	case TypeBool:
		return ColVec{Kind: TypeBool, Bools: make([]bool, 0, capacity)}
	default:
		return ColVec{Kind: TypeNull, Any: make([]Value, 0, capacity)}
	}
}

// BatchFromRelation converts a relation to columnar form. It never
// fails: columns whose values stray from the schema type demote to the
// generic representation.
func BatchFromRelation(rel *Relation) *ColumnBatch {
	cb := NewColumnBatch(rel.Schema, len(rel.Tuples))
	for _, t := range rel.Tuples {
		_ = cb.AppendTuple(t)
	}
	return cb
}

// AppendTuple adds one row; it must match the schema arity.
func (cb *ColumnBatch) AppendTuple(t Tuple) error {
	if len(t) != len(cb.Cols) {
		return fmt.Errorf("engine: tuple arity %d != batch arity %d", len(t), len(cb.Cols))
	}
	row := cb.NumRows
	for j := range cb.Cols {
		cb.Cols[j].appendVal(row, t[j])
	}
	cb.NumRows++
	return nil
}

// appendVal appends v at position row, demoting the vector to generic
// form if v's kind does not match the vector's.
func (c *ColVec) appendVal(row int, v Value) {
	if c.Kind == TypeNull {
		c.Any = append(c.Any, v)
		return
	}
	if v.Kind == TypeNull {
		c.Nulls.Set(row)
		c.appendZero()
		return
	}
	if v.Kind != c.Kind {
		c.demote(row)
		c.Any = append(c.Any, v)
		return
	}
	switch c.Kind {
	case TypeInt:
		c.Ints = append(c.Ints, v.I)
	case TypeFloat:
		c.Floats = append(c.Floats, v.F)
	case TypeString:
		c.Strs = append(c.Strs, v.S)
	case TypeBool:
		c.Bools = append(c.Bools, v.B)
	}
}

func (c *ColVec) appendZero() {
	switch c.Kind {
	case TypeInt:
		c.Ints = append(c.Ints, 0)
	case TypeFloat:
		c.Floats = append(c.Floats, 0)
	case TypeString:
		c.Strs = append(c.Strs, "")
	case TypeBool:
		c.Bools = append(c.Bools, false)
	}
}

// demote rewrites the first n typed entries into the generic Any form.
func (c *ColVec) demote(n int) {
	vals := make([]Value, n, n+1)
	for i := 0; i < n; i++ {
		vals[i] = c.Value(i)
	}
	*c = ColVec{Kind: TypeNull, Any: vals}
}

// Len returns the number of rows stored in the vector.
func (c *ColVec) Len() int {
	switch c.Kind {
	case TypeInt:
		return len(c.Ints)
	case TypeFloat:
		return len(c.Floats)
	case TypeString:
		return len(c.Strs)
	case TypeBool:
		return len(c.Bools)
	default:
		return len(c.Any)
	}
}

// Value boxes the value at row i.
func (c *ColVec) Value(i int) Value {
	if c.Kind == TypeNull {
		return c.Any[i]
	}
	if c.Nulls.Get(i) {
		return Null
	}
	switch c.Kind {
	case TypeInt:
		return NewInt(c.Ints[i])
	case TypeFloat:
		return NewFloat(c.Floats[i])
	case TypeString:
		return NewString(c.Strs[i])
	default:
		return NewBool(c.Bools[i])
	}
}

// Value boxes the value at (row, col).
func (cb *ColumnBatch) Value(row, col int) Value {
	return cb.Cols[col].Value(row)
}

// Row materialises row i as a freshly allocated tuple.
func (cb *ColumnBatch) Row(i int) Tuple {
	t := make(Tuple, len(cb.Cols))
	for j := range cb.Cols {
		t[j] = cb.Cols[j].Value(i)
	}
	return t
}

// ToRelation boxes the batch back into row form. Tuples are carved from
// one arena, so the conversion costs two allocations plus the value
// copies — no per-row make.
func (cb *ColumnBatch) ToRelation() *Relation {
	rel := NewRelation(cb.Schema)
	ncols := len(cb.Cols)
	rel.Tuples = make([]Tuple, cb.NumRows)
	arena := make([]Value, cb.NumRows*ncols)
	for i := 0; i < cb.NumRows; i++ {
		rel.Tuples[i] = Tuple(arena[i*ncols : (i+1)*ncols : (i+1)*ncols])
	}
	for j := range cb.Cols {
		c := &cb.Cols[j]
		switch c.Kind {
		case TypeInt:
			for i, v := range c.Ints {
				if !c.Nulls.Get(i) {
					arena[i*ncols+j] = NewInt(v)
				}
			}
		case TypeFloat:
			for i, v := range c.Floats {
				if !c.Nulls.Get(i) {
					arena[i*ncols+j] = NewFloat(v)
				}
			}
		case TypeString:
			for i, v := range c.Strs {
				if !c.Nulls.Get(i) {
					arena[i*ncols+j] = NewString(v)
				}
			}
		case TypeBool:
			for i, v := range c.Bools {
				if !c.Nulls.Get(i) {
					arena[i*ncols+j] = NewBool(v)
				}
			}
		default:
			for i, v := range c.Any {
				arena[i*ncols+j] = v
			}
		}
	}
	return rel
}

// AppendBatch appends all rows of src, which must have the same arity.
// Column kinds are reconciled: if either side of a column is generic,
// the destination column becomes generic.
func (cb *ColumnBatch) AppendBatch(src *ColumnBatch) error {
	if len(src.Cols) != len(cb.Cols) {
		return fmt.Errorf("engine: batch arity %d != %d", len(src.Cols), len(cb.Cols))
	}
	base := cb.NumRows
	for j := range cb.Cols {
		dst, sc := &cb.Cols[j], &src.Cols[j]
		if dst.Kind != TypeNull && sc.Kind != TypeNull && dst.Kind != sc.Kind {
			dst.demote(base)
		}
		if dst.Kind == TypeNull {
			for i := 0; i < src.NumRows; i++ {
				dst.Any = append(dst.Any, sc.Value(i))
			}
			continue
		}
		if sc.Kind == TypeNull {
			for i := 0; i < src.NumRows; i++ {
				dst.appendVal(base+i, sc.Any[i])
			}
			continue
		}
		switch dst.Kind {
		case TypeInt:
			dst.Ints = append(dst.Ints, sc.Ints...)
		case TypeFloat:
			dst.Floats = append(dst.Floats, sc.Floats...)
		case TypeString:
			dst.Strs = append(dst.Strs, sc.Strs...)
		case TypeBool:
			dst.Bools = append(dst.Bools, sc.Bools...)
		}
		if !sc.Nulls.Empty() {
			for i := 0; i < src.NumRows; i++ {
				if sc.Nulls.Get(i) {
					dst.Nulls.Set(base + i)
				}
			}
		}
	}
	cb.NumRows += src.NumRows
	return nil
}
