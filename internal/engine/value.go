// Package engine defines the data-model primitives shared by every
// BigDAWG storage engine and island: typed values, tuples, schemas and
// relations. Keeping these in one place lets the CAST operator move data
// between engines without per-pair conversion code.
package engine

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Type enumerates the value types understood by the federation. Every
// island data model (relational tuples, array cells, KV entries, stream
// records, associative arrays) bottoms out in these scalars.
type Type uint8

const (
	TypeNull Type = iota
	TypeInt
	TypeFloat
	TypeString
	TypeBool
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case TypeNull:
		return "NULL"
	case TypeInt:
		return "INT"
	case TypeFloat:
		return "FLOAT"
	case TypeString:
		return "STRING"
	case TypeBool:
		return "BOOL"
	default:
		return fmt.Sprintf("TYPE(%d)", uint8(t))
	}
}

// ParseType maps a type name (case-insensitive, with common SQL aliases)
// to a Type.
func ParseType(s string) (Type, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "INT", "INTEGER", "BIGINT", "INT64", "SMALLINT":
		return TypeInt, nil
	case "FLOAT", "DOUBLE", "REAL", "FLOAT64", "NUMERIC", "DECIMAL":
		return TypeFloat, nil
	case "STRING", "TEXT", "VARCHAR", "CHAR":
		return TypeString, nil
	case "BOOL", "BOOLEAN":
		return TypeBool, nil
	case "NULL":
		return TypeNull, nil
	default:
		return TypeNull, fmt.Errorf("engine: unknown type %q", s)
	}
}

// Value is a dynamically typed scalar. The zero Value is NULL.
//
// Value is a small struct rather than an interface so that hot loops in
// the engines (scans, window aggregates, array kernels) avoid interface
// allocation and devirtualisation costs.
type Value struct {
	Kind Type
	I    int64
	F    float64
	S    string
	B    bool
}

// Null is the NULL value.
var Null = Value{Kind: TypeNull}

// NewInt returns an INT value.
func NewInt(i int64) Value { return Value{Kind: TypeInt, I: i} }

// NewFloat returns a FLOAT value.
func NewFloat(f float64) Value { return Value{Kind: TypeFloat, F: f} }

// NewString returns a STRING value.
func NewString(s string) Value { return Value{Kind: TypeString, S: s} }

// NewBool returns a BOOL value.
func NewBool(b bool) Value { return Value{Kind: TypeBool, B: b} }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.Kind == TypeNull }

// AsFloat coerces numeric values to float64. NULL coerces to NaN so that
// it poisons arithmetic rather than silently reading as zero.
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case TypeInt:
		return float64(v.I)
	case TypeFloat:
		return v.F
	case TypeBool:
		if v.B {
			return 1
		}
		return 0
	case TypeNull:
		return math.NaN()
	default:
		f, err := strconv.ParseFloat(v.S, 64)
		if err != nil {
			return math.NaN()
		}
		return f
	}
}

// AsInt coerces numeric values to int64 (floats truncate toward zero).
func (v Value) AsInt() int64 {
	switch v.Kind {
	case TypeInt:
		return v.I
	case TypeFloat:
		return int64(v.F)
	case TypeBool:
		if v.B {
			return 1
		}
		return 0
	default:
		i, _ := strconv.ParseInt(v.S, 10, 64)
		return i
	}
}

// AsBool coerces to bool: non-zero numbers and "true" strings are true.
func (v Value) AsBool() bool {
	switch v.Kind {
	case TypeBool:
		return v.B
	case TypeInt:
		return v.I != 0
	case TypeFloat:
		return v.F != 0
	case TypeString:
		b, _ := strconv.ParseBool(v.S)
		return b
	default:
		return false
	}
}

// String renders the value for display and CSV export. NULL renders as
// the empty string.
func (v Value) String() string {
	switch v.Kind {
	case TypeNull:
		return ""
	case TypeInt:
		return strconv.FormatInt(v.I, 10)
	case TypeFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TypeString:
		return v.S
	case TypeBool:
		return strconv.FormatBool(v.B)
	default:
		return fmt.Sprintf("<%v>", v.Kind)
	}
}

// Compare orders two values. NULL sorts before everything; numeric kinds
// compare numerically across INT/FLOAT/BOOL; strings compare
// lexicographically. Mixed string/number comparisons compare the string
// form, which matches the behaviour of the KV island where everything is
// a byte string.
func Compare(a, b Value) int {
	if a.Kind == TypeNull || b.Kind == TypeNull {
		switch {
		case a.Kind == TypeNull && b.Kind == TypeNull:
			return 0
		case a.Kind == TypeNull:
			return -1
		default:
			return 1
		}
	}
	if a.isNumeric() && b.isNumeric() {
		if a.Kind == TypeInt && b.Kind == TypeInt {
			switch {
			case a.I < b.I:
				return -1
			case a.I > b.I:
				return 1
			default:
				return 0
			}
		}
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(a.String(), b.String())
}

// Equal reports whether two values compare equal under Compare.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

func (v Value) isNumeric() bool {
	return v.Kind == TypeInt || v.Kind == TypeFloat || v.Kind == TypeBool
}

// ParseValue parses s into the given type. An empty string parses to
// NULL for every type, matching CSV conventions.
func ParseValue(s string, t Type) (Value, error) {
	if s == "" {
		return Null, nil
	}
	switch t {
	case TypeInt:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Null, fmt.Errorf("engine: parse int %q: %w", s, err)
		}
		return NewInt(i), nil
	case TypeFloat:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Null, fmt.Errorf("engine: parse float %q: %w", s, err)
		}
		return NewFloat(f), nil
	case TypeBool:
		b, err := strconv.ParseBool(s)
		if err != nil {
			return Null, fmt.Errorf("engine: parse bool %q: %w", s, err)
		}
		return NewBool(b), nil
	case TypeString:
		return NewString(s), nil
	default:
		return Null, fmt.Errorf("engine: cannot parse into %v", t)
	}
}

// Infer guesses the tightest Type for the string s, in the order
// INT < FLOAT < BOOL < STRING. Used by CSV loaders.
func Infer(s string) Type {
	if s == "" {
		return TypeNull
	}
	if _, err := strconv.ParseInt(s, 10, 64); err == nil {
		return TypeInt
	}
	if _, err := strconv.ParseFloat(s, 64); err == nil {
		return TypeFloat
	}
	if _, err := strconv.ParseBool(s); err == nil {
		return TypeBool
	}
	return TypeString
}
