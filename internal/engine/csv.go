package engine

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// WriteCSV serialises the relation as CSV with a header row of
// "name:TYPE" cells. This is the file-based import/export baseline the
// paper contrasts the direct binary CAST against.
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(r.Schema.Columns))
	for i, c := range r.Schema.Columns {
		header[i] = c.Name + ":" + c.Type.String()
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for _, t := range r.Tuples {
		for i, v := range t {
			row[i] = v.String()
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a relation written by WriteCSV. Header cells may omit
// the ":TYPE" suffix, in which case types are inferred from the first
// data row.
func ReadCSV(r io.Reader) (*Relation, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("engine: read csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("engine: csv has no header")
	}
	header := rows[0]
	schema := Schema{Columns: make([]Column, len(header))}
	needInfer := false
	for i, h := range header {
		name, typeName, ok := strings.Cut(h, ":")
		if ok {
			t, err := ParseType(typeName)
			if err != nil {
				return nil, err
			}
			schema.Columns[i] = Column{Name: name, Type: t}
		} else {
			schema.Columns[i] = Column{Name: name, Type: TypeString}
			needInfer = true
		}
	}
	if needInfer && len(rows) > 1 {
		for i := range schema.Columns {
			if i < len(rows[1]) {
				if t := Infer(rows[1][i]); t != TypeNull {
					schema.Columns[i].Type = t
				}
			}
		}
	}
	rel := NewRelation(schema)
	rel.Tuples = make([]Tuple, 0, len(rows)-1)
	for _, row := range rows[1:] {
		t := make(Tuple, len(schema.Columns))
		for i := range t {
			if i >= len(row) {
				t[i] = Null
				continue
			}
			v, err := ParseValue(row[i], schema.Columns[i].Type)
			if err != nil {
				return nil, err
			}
			t[i] = v
		}
		rel.Tuples = append(rel.Tuples, t)
	}
	return rel, nil
}
