package engine

import (
	"bytes"
	"fmt"
	"testing"
)

func benchRelation(rows int) *Relation {
	r := NewRelation(NewSchema(
		Col("id", TypeInt), Col("name", TypeString), Col("v", TypeFloat)))
	for i := 0; i < rows; i++ {
		_ = r.Append(Tuple{NewInt(int64(i)), NewString(fmt.Sprintf("name_%d", i)), NewFloat(float64(i) / 3)})
	}
	return r
}

func BenchmarkWriteBinary(b *testing.B) {
	r := benchRelation(10_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := r.WriteBinary(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteBinaryV1Seed(b *testing.B) {
	r := benchRelation(10_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := r.WriteBinaryV1(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadBinary(b *testing.B) {
	r := benchRelation(10_000)
	var buf bytes.Buffer
	if err := r.WriteBinary(&buf); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadBinary(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadBinaryV1Seed(b *testing.B) {
	r := benchRelation(10_000)
	var buf bytes.Buffer
	if err := r.WriteBinaryV1(&buf); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadBinary(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadBinaryParallel(b *testing.B) {
	r := benchRelation(100_000)
	var buf bytes.Buffer
	if err := r.WriteBinary(&buf); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadBinaryParallel(bytes.NewReader(raw), 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteCSV(b *testing.B) {
	r := benchRelation(10_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := r.WriteCSV(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadCSV(b *testing.B) {
	r := benchRelation(10_000)
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadCSV(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompare(b *testing.B) {
	vals := []Value{NewInt(3), NewFloat(3.5), NewString("abc"), NewBool(true), Null}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Compare(vals[i%5], vals[(i+1)%5])
	}
}
