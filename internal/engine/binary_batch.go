package engine

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"

	"repro/internal/fault"
)

// Columnar codec for the v2 wire format: the same byte stream
// WriteBinary/ReadBinary produce and consume, but encoded straight from
// and decoded straight into ColumnBatch vectors. One wire frame maps to
// one decoded mini-batch, so the direct CAST path moves a relational
// table from column cache to array store without ever allocating per-row
// Tuples.

// WriteBinary serialises the batch in the v2 framed format. The stream
// is byte-identical in layout to Relation.WriteBinary: a reader cannot
// tell whether the sender was row- or column-organised.
func (cb *ColumnBatch) WriteBinary(w io.Writer) error {
	ncols := len(cb.Cols)
	if err := writeWireHeader(w, cb.Schema, cb.NumRows); err != nil {
		return err
	}

	payload := make([]byte, 0, batchTargetBytes+4096)
	var hdr [8]byte
	flush := func(count int) error {
		if err := fault.Hit(FpEncodeFrame); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(hdr[:4], uint32(count))
		binary.LittleEndian.PutUint32(hdr[4:], uint32(len(payload)))
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := w.Write(payload); err != nil {
			return err
		}
		payload = payload[:0]
		return nil
	}

	count := 0
	for i := 0; i < cb.NumRows; i++ {
		rowStart := len(payload)
		for j := 0; j < ncols; j++ {
			c := &cb.Cols[j]
			if c.Kind == TypeNull {
				var err error
				payload, err = appendEncodedValue(payload, &c.Any[i])
				if err != nil {
					return err
				}
				continue
			}
			if c.Nulls.Get(i) {
				payload = append(payload, byte(TypeNull))
				continue
			}
			payload = append(payload, byte(c.Kind))
			switch c.Kind {
			case TypeInt:
				payload = binary.AppendVarint(payload, c.Ints[i])
			case TypeFloat:
				payload = appendU64(payload, math.Float64bits(c.Floats[i]))
			case TypeString:
				s := c.Strs[i]
				if len(s) > maxEncodeStringLen {
					return fmt.Errorf("engine: string value of %d bytes exceeds wire limit %d", len(s), maxEncodeStringLen)
				}
				payload = binary.AppendUvarint(payload, uint64(len(s)))
				payload = append(payload, s...)
			case TypeBool:
				if c.Bools[i] {
					payload = append(payload, 1)
				} else {
					payload = append(payload, 0)
				}
			}
		}
		if len(payload)-rowStart > maxRowBytes {
			return fmt.Errorf("engine: tuple of %d encoded bytes exceeds wire row limit %d", len(payload)-rowStart, maxRowBytes)
		}
		count++
		if count >= batchMaxTuples || len(payload) >= batchTargetBytes {
			if err := flush(count); err != nil {
				return err
			}
			count = 0
		}
	}
	if count > 0 {
		if err := flush(count); err != nil {
			return err
		}
	}
	if err := fault.Hit(FpEncodeFrame); err != nil {
		return err
	}
	var tail [4]byte
	_, err := w.Write(tail[:])
	return err
}

// appendEncodedValue appends one boxed value in wire encoding; used for
// generic columns, where the kind varies row to row.
func appendEncodedValue(payload []byte, v *Value) ([]byte, error) {
	payload = append(payload, byte(v.Kind))
	switch v.Kind {
	case TypeNull:
	case TypeInt:
		payload = binary.AppendVarint(payload, v.I)
	case TypeFloat:
		payload = appendU64(payload, math.Float64bits(v.F))
	case TypeString:
		if len(v.S) > maxEncodeStringLen {
			return nil, fmt.Errorf("engine: string value of %d bytes exceeds wire limit %d", len(v.S), maxEncodeStringLen)
		}
		payload = binary.AppendUvarint(payload, uint64(len(v.S)))
		payload = append(payload, v.S...)
	case TypeBool:
		if v.B {
			payload = append(payload, 1)
		} else {
			payload = append(payload, 0)
		}
	default:
		return nil, fmt.Errorf("engine: cannot serialise kind %v", v.Kind)
	}
	return payload, nil
}

// decodeFrameColumnar decodes one frame payload into a fresh mini-batch.
// Values whose wire kind matches the column's vector land typed; strays
// demote the column to the generic representation, exactly as
// AppendTuple would.
func decodeFrameColumnar(schema Schema, payload []byte, count int) (*ColumnBatch, error) {
	cb := NewColumnBatch(schema, count)
	ncols := len(schema.Columns)
	payloadStr := ""
	off := 0
	for i := 0; i < count; i++ {
		for j := 0; j < ncols; j++ {
			if off >= len(payload) {
				return nil, corruptf("batch truncated at tuple %d column %d", i, j)
			}
			kind := Type(payload[off])
			off++
			c := &cb.Cols[j]
			switch kind {
			case TypeNull:
				if c.Kind == TypeNull {
					c.Any = append(c.Any, Null)
				} else {
					c.Nulls.Set(i)
					c.appendZero()
				}
				continue
			case TypeInt:
				var ux uint64
				var shift uint
				done := false
				for off < len(payload) {
					b := payload[off]
					off++
					if b < 0x80 {
						if shift == 63 && b > 1 {
							return nil, corruptf("varint overflow at tuple %d column %d", i, j)
						}
						ux |= uint64(b) << shift
						done = true
						break
					}
					ux |= uint64(b&0x7f) << shift
					shift += 7
					if shift >= 64 {
						return nil, corruptf("varint overflow at tuple %d column %d", i, j)
					}
				}
				if !done {
					return nil, corruptf("truncated varint at tuple %d column %d", i, j)
				}
				iv := int64(ux >> 1)
				if ux&1 != 0 {
					iv = ^iv
				}
				if c.Kind == TypeInt {
					c.Ints = append(c.Ints, iv)
				} else {
					c.appendVal(i, NewInt(iv))
				}
			case TypeFloat:
				if off+8 > len(payload) {
					return nil, corruptf("truncated float at tuple %d column %d", i, j)
				}
				fv := math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
				off += 8
				if c.Kind == TypeFloat {
					c.Floats = append(c.Floats, fv)
				} else {
					c.appendVal(i, NewFloat(fv))
				}
			case TypeString:
				if off >= len(payload) {
					return nil, corruptf("truncated string length at tuple %d column %d", i, j)
				}
				var n uint64
				if b := payload[off]; b < 0x80 {
					n = uint64(b)
					off++
				} else {
					var w int
					n, w = binary.Uvarint(payload[off:])
					if w <= 0 {
						return nil, corruptf("bad string length at tuple %d column %d", i, j)
					}
					off += w
				}
				if n > maxStringLen {
					return nil, corruptf("string length %d exceeds limit %d at tuple %d column %d", n, maxStringLen, i, j)
				}
				if off+int(n) > len(payload) {
					return nil, corruptf("truncated string body at tuple %d column %d", i, j)
				}
				var sv string
				if n > 0 {
					if payloadStr == "" {
						payloadStr = string(payload)
					}
					sv = payloadStr[off : off+int(n)]
				}
				off += int(n)
				if c.Kind == TypeString {
					c.Strs = append(c.Strs, sv)
				} else {
					c.appendVal(i, NewString(sv))
				}
			case TypeBool:
				if off >= len(payload) {
					return nil, corruptf("truncated bool at tuple %d column %d", i, j)
				}
				bv := payload[off] != 0
				off++
				if c.Kind == TypeBool {
					c.Bools = append(c.Bools, bv)
				} else {
					c.appendVal(i, NewBool(bv))
				}
			default:
				return nil, corruptf("unknown value kind %d at tuple %d column %d", kind, i, j)
			}
		}
		cb.NumRows++
	}
	if off != len(payload) {
		return nil, corruptf("batch has %d trailing bytes", len(payload)-off)
	}
	return cb, nil
}

// ReadBinaryColumnar deserialises a v2 stream into a ColumnBatch,
// fanning frame decoding out over workers goroutines when workers > 1.
// Unframed v1 streams decode through the row path and are converted.
func ReadBinaryColumnar(r io.Reader, workers int) (*ColumnBatch, error) {
	var word [4]byte
	if _, err := io.ReadFull(r, word[:]); err != nil {
		return nil, corruptf("truncated stream: %v", err)
	}
	first := binary.LittleEndian.Uint32(word[:])
	if first != binaryMagic {
		rel, err := readBinaryV1(r, first)
		if err != nil {
			return nil, err
		}
		return BatchFromRelation(rel), nil
	}
	if _, err := io.ReadFull(r, word[:]); err != nil {
		return nil, corruptf("truncated column count: %v", err)
	}
	schema, err := readSchema(r, binary.LittleEndian.Uint32(word[:]))
	if err != nil {
		return nil, err
	}
	var cnt [8]byte
	if _, err := io.ReadFull(r, cnt[:]); err != nil {
		return nil, corruptf("truncated tuple count: %v", err)
	}
	declared := binary.LittleEndian.Uint64(cnt[:])
	if workers > 1 {
		return readColumnarParallel(r, schema, declared, workers)
	}
	return readColumnarSequential(r, schema, declared)
}

func readColumnarSequential(r io.Reader, schema Schema, declared uint64) (*ColumnBatch, error) {
	out := NewColumnBatch(schema, preallocTupleCap(declared))
	ncols := len(schema.Columns)
	var payload []byte
	var total uint64
	for {
		count, payloadLen, err := readFrameHeader(r, ncols)
		if err != nil {
			return nil, err
		}
		if count == 0 {
			break
		}
		if cap(payload) < payloadLen {
			payload = make([]byte, payloadLen)
		}
		payload = payload[:payloadLen]
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, corruptf("truncated batch payload: %v", err)
		}
		frame, err := decodeFrameColumnar(schema, payload, count)
		if err != nil {
			return nil, err
		}
		if err := out.AppendBatch(frame); err != nil {
			return nil, err
		}
		total += uint64(count)
		if total > declared {
			return nil, corruptf("stream carries more than the declared %d tuples", declared)
		}
		if ncols == 0 && total > maxZeroColTuples {
			return nil, corruptf("zero-column relation claims %d tuples", total)
		}
	}
	if total != declared {
		return nil, corruptf("header declares %d tuples, stream carried %d", declared, total)
	}
	return out, nil
}

// readColumnarParallel mirrors readBatchesParallel: a reader goroutine
// pulls frames while workers decode them out of order into mini-batches,
// reassembled by sequence number and merged column-wise.
func readColumnarParallel(r io.Reader, schema Schema, declared uint64, workers int) (*ColumnBatch, error) {
	type frame struct {
		seq     int
		count   int
		payload []byte
	}
	type result struct {
		seq   int
		batch *ColumnBatch
		err   error
	}
	ncols := len(schema.Columns)
	frames := make(chan frame, workers)
	results := make(chan result, workers)

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for f := range frames {
				b, err := decodeFrameColumnar(schema, f.payload, f.count)
				results <- result{f.seq, b, err}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	readErr := make(chan error, 1)
	go func() {
		defer close(frames)
		var total uint64
		seq := 0
		for {
			count, payloadLen, err := readFrameHeader(r, ncols)
			if err != nil {
				readErr <- err
				return
			}
			if count == 0 {
				if total != declared {
					readErr <- corruptf("header declares %d tuples, stream carried %d", declared, total)
				} else {
					readErr <- nil
				}
				return
			}
			payload := make([]byte, payloadLen)
			if _, err := io.ReadFull(r, payload); err != nil {
				readErr <- corruptf("truncated batch payload: %v", err)
				return
			}
			frames <- frame{seq, count, payload}
			seq++
			total += uint64(count)
			if total > declared {
				readErr <- corruptf("stream carries more than the declared %d tuples", declared)
				return
			}
			if ncols == 0 && total > maxZeroColTuples {
				readErr <- corruptf("zero-column relation claims %d tuples", total)
				return
			}
		}
	}()

	var batches []*ColumnBatch
	var firstErr error
	for res := range results {
		if res.err != nil {
			if firstErr == nil {
				firstErr = res.err
			}
			continue
		}
		for res.seq >= len(batches) {
			batches = append(batches, nil)
		}
		batches[res.seq] = res.batch
	}
	if err := <-readErr; err != nil && firstErr == nil {
		firstErr = err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	n := 0
	for _, b := range batches {
		n += b.NumRows
	}
	out := NewColumnBatch(schema, n)
	for _, b := range batches {
		if err := out.AppendBatch(b); err != nil {
			return nil, err
		}
	}
	return out, nil
}
