package engine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"repro/internal/fault"
)

// Binary wire format v2 used by the direct CAST path. Layout:
//
//	u32 magic "BDW2" (0x32574442 little-endian)
//	u32 column count
//	per column: u8 type, u16 name length, name bytes
//	u64 total tuple count
//	repeated batch frames:
//	  u32 tuple count (0 terminates the stream)
//	  u32 payload byte length
//	  payload: per tuple, per value: u8 kind, then
//	    varint int / 8-byte LE float / uvarint-prefixed string / 1-byte bool
//
// The batch counts must sum to the declared total, which the decoder
// uses only as a (capped) preallocation hint until the end marker
// confirms it.
//
// The format is self-describing so the receiving engine can validate the
// schema without a side channel, mirroring the paper's "access method
// that knows how to read binary data in parallel directly from another
// engine". Framing the tuples into bounded batches is what makes the
// format streamable (encoder and decoder run concurrently over a pipe)
// and parallel-decodable (each payload is independent once the schema is
// known). ReadBinary also accepts the unframed v1 layout the seed wrote
// (no magic, u64 tuple count up front, values in one run); v1 streams
// are deliberately subject to the same uniform bounds below, so a v1
// stream with e.g. a >4KiB column name is rejected rather than trusted.

// Wire-codec failpoints, evaluated once per batch frame (not per value,
// so the disabled-path cost is one atomic load per ~64KiB). Chaos tests
// arm them to fail or stall a stream at exact frame boundaries.
const (
	// FpEncodeFrame fires before each frame (and the end-of-stream
	// marker) is written — row and columnar encoders both.
	FpEncodeFrame = "wire.encode.frame"
	// FpDecodeFrame fires before each frame header is read.
	FpDecodeFrame = "wire.decode.frame"
)

var errCorrupt = errors.New("engine: corrupt binary relation")

// corruptf wraps errCorrupt with positional context so a failed CAST
// names what was malformed instead of returning partial garbage.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errCorrupt, fmt.Sprintf(format, args...))
}

const (
	binaryMagic = 0x32574442 // "BDW2" little-endian

	// Encoder batching: flush a frame when either bound is hit.
	batchTargetBytes = 64 << 10
	batchMaxTuples   = 4096

	// Uniform bounds enforced on decode (and on encode, so honest
	// writers can never produce a stream the reader rejects).
	maxColumns    = 1 << 16
	maxNameLen    = 1 << 12
	maxStringLen  = 1 << 28
	maxBatchBytes = 1 << 26

	// maxRowBytes bounds one encoded tuple. Frames hold whole tuples, so
	// a frame can overshoot batchTargetBytes by at most one row; keeping
	// rows under this cap keeps every honest frame under maxBatchBytes,
	// preserving the invariant that encode-side checks guarantee the
	// reader accepts the stream. It also makes maxRowBytes the effective
	// v2 encode limit for a single string value (checked against
	// maxEncodeStringLen so the error names the string, not the row);
	// maxStringLen remains the looser decode bound for v1 compatibility.
	maxRowBytes        = 1 << 25
	maxEncodeStringLen = maxRowBytes - 64

	// maxZeroColTuples caps the decoded cardinality of zero-column
	// relations, whose tuples consume no payload bytes: without it a few
	// bytes of hostile input could demand unbounded tuple allocations.
	maxZeroColTuples = 1 << 20
)

// ---------- encoding ----------

func appendU16(b []byte, v uint16) []byte {
	return append(b, byte(v), byte(v>>8))
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// writeWireHeader emits the v2 stream header — magic word, column
// count, per-column descriptors, declared tuple count — enforcing the
// encode-side bounds. Shared by the row and columnar encoders so the
// header layout cannot drift between them.
func writeWireHeader(w io.Writer, schema Schema, ntuples int) error {
	ncols := len(schema.Columns)
	if ncols > maxColumns {
		return fmt.Errorf("engine: %d columns exceeds wire limit %d", ncols, maxColumns)
	}
	if ncols == 0 && ntuples > maxZeroColTuples {
		return fmt.Errorf("engine: zero-column relation of %d tuples exceeds wire limit %d", ntuples, maxZeroColTuples)
	}
	head := make([]byte, 0, 64)
	head = appendU32(head, binaryMagic)
	head = appendU32(head, uint32(ncols))
	for _, c := range schema.Columns {
		if len(c.Name) > maxNameLen {
			return fmt.Errorf("engine: column name of %d bytes exceeds wire limit %d", len(c.Name), maxNameLen)
		}
		head = append(head, byte(c.Type))
		head = appendU16(head, uint16(len(c.Name)))
		head = append(head, c.Name...)
	}
	head = appendU64(head, uint64(ntuples))
	_, err := w.Write(head)
	return err
}

// WriteBinary serialises the relation to w in the direct-CAST v2 format:
// the header (schema plus declared tuple count), then tuple batches
// flushed in ~64KiB frames from a reused scratch buffer, then the
// end-of-stream marker.
func (r *Relation) WriteBinary(w io.Writer) error {
	if err := writeWireHeader(w, r.Schema, len(r.Tuples)); err != nil {
		return err
	}

	payload := make([]byte, 0, batchTargetBytes+4096)
	var hdr [8]byte
	flush := func(count int) error {
		if err := fault.Hit(FpEncodeFrame); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(hdr[:4], uint32(count))
		binary.LittleEndian.PutUint32(hdr[4:], uint32(len(payload)))
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := w.Write(payload); err != nil {
			return err
		}
		payload = payload[:0]
		return nil
	}

	// The hot loop appends every value to the reused in-memory payload
	// slice (inlined per-kind encoding): zero per-value writer calls and
	// zero per-value heap allocations.
	count := 0
	for _, t := range r.Tuples {
		rowStart := len(payload)
		for i := range t {
			v := &t[i]
			payload = append(payload, byte(v.Kind))
			switch v.Kind {
			case TypeNull:
			case TypeInt:
				payload = binary.AppendVarint(payload, v.I)
			case TypeFloat:
				payload = appendU64(payload, math.Float64bits(v.F))
			case TypeString:
				if len(v.S) > maxEncodeStringLen {
					return fmt.Errorf("engine: string value of %d bytes exceeds wire limit %d", len(v.S), maxEncodeStringLen)
				}
				payload = binary.AppendUvarint(payload, uint64(len(v.S)))
				payload = append(payload, v.S...)
			case TypeBool:
				if v.B {
					payload = append(payload, 1)
				} else {
					payload = append(payload, 0)
				}
			default:
				return fmt.Errorf("engine: cannot serialise kind %v", v.Kind)
			}
		}
		if len(payload)-rowStart > maxRowBytes {
			return fmt.Errorf("engine: tuple of %d encoded bytes exceeds wire row limit %d", len(payload)-rowStart, maxRowBytes)
		}
		count++
		if count >= batchMaxTuples || len(payload) >= batchTargetBytes {
			if err := flush(count); err != nil {
				return err
			}
			count = 0
		}
	}
	if count > 0 {
		if err := flush(count); err != nil {
			return err
		}
	}
	if err := fault.Hit(FpEncodeFrame); err != nil {
		return err
	}
	var tail [4]byte // u32 0: end-of-stream marker
	_, err := w.Write(tail[:])
	return err
}

// ---------- decoding ----------

// decodeBatch decodes count tuples from one batch payload. Tuples are
// arena-allocated: one []Value block per batch instead of a make(Tuple,
// ncols) per row, so a million-row decode performs thousands — not
// millions — of tuple allocations.
func decodeBatch(schema Schema, payload []byte, count int) ([]Tuple, error) {
	ncols := len(schema.Columns)
	tuples := make([]Tuple, count)
	arena := make([]Value, count*ncols)
	// All string values in the batch are carved as substrings of one
	// payload-sized string, built lazily on the first string value: one
	// allocation per batch instead of one per value.
	payloadStr := ""
	off := 0
	for i := 0; i < count; i++ {
		t := Tuple(arena[i*ncols : (i+1)*ncols : (i+1)*ncols])
		for j := 0; j < ncols; j++ {
			if off >= len(payload) {
				return nil, corruptf("batch truncated at tuple %d column %d", i, j)
			}
			kind := Type(payload[off])
			off++
			switch kind {
			case TypeNull:
				t[j] = Null
			case TypeInt:
				// Manual zig-zag varint decode: binary.Varint is not
				// inlinable (it loops), and this is the hottest kind.
				var ux uint64
				var shift uint
				done := false
				for off < len(payload) {
					b := payload[off]
					off++
					if b < 0x80 {
						if shift == 63 && b > 1 {
							return nil, corruptf("varint overflow at tuple %d column %d", i, j)
						}
						ux |= uint64(b) << shift
						done = true
						break
					}
					ux |= uint64(b&0x7f) << shift
					shift += 7
					if shift >= 64 {
						return nil, corruptf("varint overflow at tuple %d column %d", i, j)
					}
				}
				if !done {
					return nil, corruptf("truncated varint at tuple %d column %d", i, j)
				}
				iv := int64(ux >> 1)
				if ux&1 != 0 {
					iv = ^iv
				}
				t[j] = NewInt(iv)
			case TypeFloat:
				if off+8 > len(payload) {
					return nil, corruptf("truncated float at tuple %d column %d", i, j)
				}
				t[j] = NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(payload[off:])))
				off += 8
			case TypeString:
				if off >= len(payload) {
					return nil, corruptf("truncated string length at tuple %d column %d", i, j)
				}
				// Fast path: lengths < 128 are a single uvarint byte.
				var n uint64
				if b := payload[off]; b < 0x80 {
					n = uint64(b)
					off++
				} else {
					var w int
					n, w = binary.Uvarint(payload[off:])
					if w <= 0 {
						return nil, corruptf("bad string length at tuple %d column %d", i, j)
					}
					off += w
				}
				if n > maxStringLen {
					return nil, corruptf("string length %d exceeds limit %d at tuple %d column %d", n, maxStringLen, i, j)
				}
				if off+int(n) > len(payload) {
					return nil, corruptf("truncated string body at tuple %d column %d", i, j)
				}
				if n == 0 {
					t[j] = NewString("")
				} else {
					if payloadStr == "" {
						payloadStr = string(payload)
					}
					t[j] = NewString(payloadStr[off : off+int(n)])
				}
				off += int(n)
			case TypeBool:
				if off >= len(payload) {
					return nil, corruptf("truncated bool at tuple %d column %d", i, j)
				}
				t[j] = NewBool(payload[off] != 0)
				off++
			default:
				return nil, corruptf("unknown value kind %d at tuple %d column %d", kind, i, j)
			}
		}
		tuples[i] = t
	}
	if off != len(payload) {
		return nil, corruptf("batch has %d trailing bytes", len(payload)-off)
	}
	return tuples, nil
}

// readSchema decodes the per-column header shared by v1 and v2, with
// uniform bounds on column count and name length.
func readSchema(r io.Reader, ncols uint32) (Schema, error) {
	if ncols > maxColumns {
		return Schema{}, corruptf("column count %d exceeds limit %d", ncols, maxColumns)
	}
	var scratch [3]byte
	schema := Schema{Columns: make([]Column, ncols)}
	for i := range schema.Columns {
		if _, err := io.ReadFull(r, scratch[:3]); err != nil {
			return Schema{}, corruptf("truncated header for column %d: %v", i, err)
		}
		nameLen := binary.LittleEndian.Uint16(scratch[1:3])
		if int(nameLen) > maxNameLen {
			return Schema{}, corruptf("column %d name length %d exceeds limit %d", i, nameLen, maxNameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return Schema{}, corruptf("truncated name for column %d: %v", i, err)
		}
		schema.Columns[i] = Column{Name: string(name), Type: Type(scratch[0])}
	}
	return schema, nil
}

// readFrameHeader reads one batch frame header, validating bounds
// against the schema arity. count == 0 signals end of stream.
func readFrameHeader(r io.Reader, ncols int) (count, payloadLen int, err error) {
	if err := fault.Hit(FpDecodeFrame); err != nil {
		return 0, 0, err
	}
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		return 0, 0, corruptf("truncated batch header: %v", err)
	}
	c := binary.LittleEndian.Uint32(hdr[:4])
	if c == 0 {
		return 0, 0, nil
	}
	if _, err := io.ReadFull(r, hdr[4:]); err != nil {
		return 0, 0, corruptf("truncated batch header: %v", err)
	}
	pl := binary.LittleEndian.Uint32(hdr[4:])
	if c > batchMaxTuples {
		return 0, 0, corruptf("batch tuple count %d exceeds limit %d", c, batchMaxTuples)
	}
	if pl > maxBatchBytes {
		return 0, 0, corruptf("batch payload %d bytes exceeds limit %d", pl, maxBatchBytes)
	}
	// Every value costs at least its kind byte, so a frame shorter than
	// count*ncols bytes cannot be honest.
	if int(pl) < int(c)*ncols {
		return 0, 0, corruptf("batch payload %d bytes too short for %d tuples × %d columns", pl, c, ncols)
	}
	return int(c), int(pl), nil
}

// preallocTupleCap caps how many tuple headers the decoder preallocates
// from the wire's declared count: the declaration is a hint, not a
// promise, so a lying header can never force a huge upfront allocation.
func preallocTupleCap(declared uint64) int {
	if declared > 1<<16 {
		return 1 << 16
	}
	return int(declared)
}

// ReadBinary deserialises a relation written by WriteBinary. Streams in
// the seed's unframed v1 layout (no magic word) are still accepted.
func ReadBinary(r io.Reader) (*Relation, error) {
	return readBinary(r, 1)
}

// ReadBinaryParallel is ReadBinary with batch decoding fanned out over
// the given number of worker goroutines — the paper's "read binary data
// in parallel" access method. Only v2 streams are framed for parallel
// decode; v1 streams fall back to sequential.
func ReadBinaryParallel(r io.Reader, workers int) (*Relation, error) {
	return readBinary(r, workers)
}

func readBinary(r io.Reader, workers int) (*Relation, error) {
	var word [4]byte
	if _, err := io.ReadFull(r, word[:]); err != nil {
		return nil, corruptf("truncated stream: %v", err)
	}
	first := binary.LittleEndian.Uint32(word[:])
	if first != binaryMagic {
		// v1 layout: the first word is the column count itself.
		return readBinaryV1(r, first)
	}
	if _, err := io.ReadFull(r, word[:]); err != nil {
		return nil, corruptf("truncated column count: %v", err)
	}
	schema, err := readSchema(r, binary.LittleEndian.Uint32(word[:]))
	if err != nil {
		return nil, err
	}
	var cnt [8]byte
	if _, err := io.ReadFull(r, cnt[:]); err != nil {
		return nil, corruptf("truncated tuple count: %v", err)
	}
	declared := binary.LittleEndian.Uint64(cnt[:])
	if workers > 1 {
		return readBatchesParallel(r, schema, declared, workers)
	}
	return readBatchesSequential(r, schema, declared)
}

func readBatchesSequential(r io.Reader, schema Schema, declared uint64) (*Relation, error) {
	rel := NewRelation(schema)
	rel.Tuples = make([]Tuple, 0, preallocTupleCap(declared))
	ncols := len(schema.Columns)
	var payload []byte
	var total uint64
	for {
		count, payloadLen, err := readFrameHeader(r, ncols)
		if err != nil {
			return nil, err
		}
		if count == 0 {
			break
		}
		if cap(payload) < payloadLen {
			payload = make([]byte, payloadLen)
		}
		payload = payload[:payloadLen]
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, corruptf("truncated batch payload: %v", err)
		}
		tuples, err := decodeBatch(schema, payload, count)
		if err != nil {
			return nil, err
		}
		rel.Tuples = append(rel.Tuples, tuples...)
		total += uint64(count)
		if total > declared {
			return nil, corruptf("stream carries more than the declared %d tuples", declared)
		}
		// Zero-column tuples consume no payload bytes, so the running
		// count is the only bound on what the stream can demand.
		if ncols == 0 && total > maxZeroColTuples {
			return nil, corruptf("zero-column relation claims %d tuples", total)
		}
	}
	if total != declared {
		return nil, corruptf("header declares %d tuples, stream carried %d", declared, total)
	}
	return rel, nil
}

// readBatchesParallel pipelines frame reading with batch decoding: a
// reader goroutine pulls frames off the wire while a worker pool decodes
// them out of order, reassembled by sequence number.
func readBatchesParallel(r io.Reader, schema Schema, declared uint64, workers int) (*Relation, error) {
	type frame struct {
		seq     int
		count   int
		payload []byte
	}
	type result struct {
		seq    int
		tuples []Tuple
		err    error
	}
	ncols := len(schema.Columns)
	frames := make(chan frame, workers)
	results := make(chan result, workers)

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for f := range frames {
				tuples, err := decodeBatch(schema, f.payload, f.count)
				results <- result{f.seq, tuples, err}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	readErr := make(chan error, 1)
	go func() {
		defer close(frames)
		var total uint64
		seq := 0
		for {
			count, payloadLen, err := readFrameHeader(r, ncols)
			if err != nil {
				readErr <- err
				return
			}
			if count == 0 {
				if total != declared {
					readErr <- corruptf("header declares %d tuples, stream carried %d", declared, total)
				} else {
					readErr <- nil
				}
				return
			}
			payload := make([]byte, payloadLen)
			if _, err := io.ReadFull(r, payload); err != nil {
				readErr <- corruptf("truncated batch payload: %v", err)
				return
			}
			frames <- frame{seq, count, payload}
			seq++
			total += uint64(count)
			if total > declared {
				readErr <- corruptf("stream carries more than the declared %d tuples", declared)
				return
			}
			if ncols == 0 && total > maxZeroColTuples {
				readErr <- corruptf("zero-column relation claims %d tuples", total)
				return
			}
		}
	}()

	var batches [][]Tuple
	var firstErr error
	for res := range results {
		if res.err != nil {
			if firstErr == nil {
				firstErr = res.err
			}
			continue
		}
		for res.seq >= len(batches) {
			batches = append(batches, nil)
		}
		batches[res.seq] = res.tuples
	}
	if err := <-readErr; err != nil && firstErr == nil {
		firstErr = err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	rel := NewRelation(schema)
	n := 0
	for _, b := range batches {
		n += len(b)
	}
	rel.Tuples = make([]Tuple, 0, n)
	for _, b := range batches {
		rel.Tuples = append(rel.Tuples, b...)
	}
	return rel, nil
}

// ---------- v1 compatibility ----------

// WriteBinaryV1 serialises the relation in the seed's unframed v1
// layout: u32 column count, columns, u64 tuple count, then one
// io.Writer call per value. Retained so benchmarks can compare the v2
// codec against the seed baseline and so back-compat decoding stays
// covered; new code should use WriteBinary.
func (r *Relation) WriteBinaryV1(w io.Writer) error {
	var scratch [10]byte
	put32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		_, err := w.Write(scratch[:4])
		return err
	}
	put64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(scratch[:8], v)
		_, err := w.Write(scratch[:8])
		return err
	}
	if err := put32(uint32(len(r.Schema.Columns))); err != nil {
		return err
	}
	for _, c := range r.Schema.Columns {
		if len(c.Name) > maxNameLen {
			return fmt.Errorf("engine: column name of %d bytes exceeds wire limit %d", len(c.Name), maxNameLen)
		}
		if _, err := w.Write([]byte{byte(c.Type)}); err != nil {
			return err
		}
		binary.LittleEndian.PutUint16(scratch[:2], uint16(len(c.Name)))
		if _, err := w.Write(scratch[:2]); err != nil {
			return err
		}
		if _, err := io.WriteString(w, c.Name); err != nil {
			return err
		}
	}
	if err := put64(uint64(len(r.Tuples))); err != nil {
		return err
	}
	for _, t := range r.Tuples {
		for _, v := range t {
			if _, err := w.Write([]byte{byte(v.Kind)}); err != nil {
				return err
			}
			switch v.Kind {
			case TypeNull:
			case TypeInt:
				n := binary.PutVarint(scratch[:], v.I)
				if _, err := w.Write(scratch[:n]); err != nil {
					return err
				}
			case TypeFloat:
				if err := put64(math.Float64bits(v.F)); err != nil {
					return err
				}
			case TypeString:
				if err := put32(uint32(len(v.S))); err != nil {
					return err
				}
				if _, err := io.WriteString(w, v.S); err != nil {
					return err
				}
			case TypeBool:
				b := byte(0)
				if v.B {
					b = 1
				}
				if _, err := w.Write([]byte{b}); err != nil {
					return err
				}
			default:
				return fmt.Errorf("engine: cannot serialise kind %v", v.Kind)
			}
		}
	}
	return nil
}

// readBinaryV1 decodes the seed's unframed layout. The column count has
// already been consumed by the magic probe. Unlike the seed decoder it
// never trusts the wire's tuple count for preallocation beyond a cap,
// and every bound violation reports errCorrupt with context.
func readBinaryV1(r io.Reader, ncols uint32) (*Relation, error) {
	schema, err := readSchema(r, ncols)
	if err != nil {
		return nil, err
	}
	br := byteReaderFrom(r)
	var scratch [8]byte
	if _, err := io.ReadFull(br, scratch[:8]); err != nil {
		return nil, corruptf("truncated tuple count: %v", err)
	}
	ntup := binary.LittleEndian.Uint64(scratch[:8])
	// A zero-column tuple consumes no wire bytes, so the claimed count is
	// the only bound on the decode loop — cap it rather than trust it.
	if len(schema.Columns) == 0 && ntup > maxZeroColTuples {
		return nil, corruptf("zero-column relation claims %d tuples", ntup)
	}
	rel := NewRelation(schema)
	rel.Tuples = make([]Tuple, 0, preallocTupleCap(ntup))
	for i := uint64(0); i < ntup; i++ {
		t := make(Tuple, len(schema.Columns))
		for j := range t {
			kind, err := br.ReadByte()
			if err != nil {
				return nil, corruptf("truncated at tuple %d column %d: %v", i, j, err)
			}
			switch Type(kind) {
			case TypeNull:
				t[j] = Null
			case TypeInt:
				iv, err := binary.ReadVarint(br)
				if err != nil {
					return nil, corruptf("bad varint at tuple %d column %d: %v", i, j, err)
				}
				t[j] = NewInt(iv)
			case TypeFloat:
				if _, err := io.ReadFull(br, scratch[:8]); err != nil {
					return nil, corruptf("truncated float at tuple %d column %d: %v", i, j, err)
				}
				t[j] = NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(scratch[:8])))
			case TypeString:
				if _, err := io.ReadFull(br, scratch[:4]); err != nil {
					return nil, corruptf("truncated string length at tuple %d column %d: %v", i, j, err)
				}
				n := binary.LittleEndian.Uint32(scratch[:4])
				if n > maxStringLen {
					return nil, corruptf("string length %d exceeds limit %d at tuple %d column %d", n, maxStringLen, i, j)
				}
				buf := make([]byte, n)
				if _, err := io.ReadFull(br, buf); err != nil {
					return nil, corruptf("truncated string body at tuple %d column %d: %v", i, j, err)
				}
				t[j] = NewString(string(buf))
			case TypeBool:
				b, err := br.ReadByte()
				if err != nil {
					return nil, corruptf("truncated bool at tuple %d column %d: %v", i, j, err)
				}
				t[j] = NewBool(b != 0)
			default:
				return nil, corruptf("unknown value kind %d at tuple %d column %d", kind, i, j)
			}
		}
		rel.Tuples = append(rel.Tuples, t)
	}
	return rel, nil
}

// byteReader pairs io.Reader with io.ByteReader for binary.ReadVarint.
type byteReader interface {
	io.Reader
	io.ByteReader
}

func byteReaderFrom(r io.Reader) byteReader {
	if br, ok := r.(byteReader); ok {
		return br
	}
	return &simpleByteReader{r: r}
}

type simpleByteReader struct {
	r   io.Reader
	buf [1]byte
}

func (s *simpleByteReader) Read(p []byte) (int, error) { return s.r.Read(p) }

func (s *simpleByteReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(s.r, s.buf[:]); err != nil {
		return 0, err
	}
	return s.buf[0], nil
}
