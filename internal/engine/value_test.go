package engine

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		TypeNull: "NULL", TypeInt: "INT", TypeFloat: "FLOAT",
		TypeString: "STRING", TypeBool: "BOOL",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", typ, got, want)
		}
	}
}

func TestParseType(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Type
	}{
		{"int", TypeInt}, {"INTEGER", TypeInt}, {"bigint", TypeInt},
		{"float", TypeFloat}, {"DOUBLE", TypeFloat}, {"real", TypeFloat},
		{"text", TypeString}, {"VARCHAR", TypeString},
		{"bool", TypeBool}, {" BOOLEAN ", TypeBool},
	} {
		got, err := ParseType(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseType(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseType("blob"); err == nil {
		t.Error("ParseType(blob) should fail")
	}
}

func TestValueCoercions(t *testing.T) {
	if got := NewInt(42).AsFloat(); got != 42 {
		t.Errorf("int AsFloat = %v", got)
	}
	if got := NewFloat(3.7).AsInt(); got != 3 {
		t.Errorf("float AsInt = %v", got)
	}
	if !NewBool(true).AsBool() || NewInt(0).AsBool() || !NewInt(5).AsBool() {
		t.Error("AsBool coercion wrong")
	}
	if got := NewString("2.5").AsFloat(); got != 2.5 {
		t.Errorf("string AsFloat = %v", got)
	}
	if !math.IsNaN(Null.AsFloat()) {
		t.Error("NULL AsFloat should be NaN")
	}
	if got := NewBool(true).AsInt(); got != 1 {
		t.Errorf("bool AsInt = %v", got)
	}
}

func TestCompare(t *testing.T) {
	for _, tc := range []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewInt(1), NewFloat(1.5), -1},
		{NewFloat(2.0), NewInt(2), 0},
		{Null, NewInt(0), -1},
		{NewInt(0), Null, 1},
		{Null, Null, 0},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{NewBool(false), NewBool(true), -1},
		// Mixed string/number compares string forms.
		{NewString("10"), NewInt(10), 0},
	} {
		if got := Compare(tc.a, tc.b); got != tc.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestCompareAntisymmetric(t *testing.T) {
	// Property: Compare(a,b) == -Compare(b,a) for int values.
	f := func(a, b int64) bool {
		return Compare(NewInt(a), NewInt(b)) == -Compare(NewInt(b), NewInt(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseValueRoundTrip(t *testing.T) {
	// Property: v -> String -> ParseValue round-trips for ints.
	f := func(i int64) bool {
		v := NewInt(i)
		got, err := ParseValue(v.String(), TypeInt)
		return err == nil && got.I == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Empty string parses to NULL for every type.
	for _, typ := range []Type{TypeInt, TypeFloat, TypeString, TypeBool} {
		v, err := ParseValue("", typ)
		if err != nil || !v.IsNull() {
			t.Errorf("ParseValue(\"\", %v) = %v, %v; want NULL", typ, v, err)
		}
	}
	if _, err := ParseValue("abc", TypeInt); err == nil {
		t.Error("ParseValue(abc, INT) should fail")
	}
}

func TestInfer(t *testing.T) {
	cases := map[string]Type{
		"42": TypeInt, "4.2": TypeFloat, "true": TypeBool,
		"hello": TypeString, "": TypeNull, "-17": TypeInt,
		"1e9": TypeFloat,
	}
	for in, want := range cases {
		if got := Infer(in); got != want {
			t.Errorf("Infer(%q) = %v, want %v", in, got, want)
		}
	}
}
