package engine

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleRelation() *Relation {
	r := NewRelation(NewSchema(
		Col("id", TypeInt), Col("name", TypeString),
		Col("score", TypeFloat), Col("active", TypeBool),
	))
	_ = r.Append(Tuple{NewInt(1), NewString("alice"), NewFloat(9.5), NewBool(true)})
	_ = r.Append(Tuple{NewInt(2), NewString("bob"), NewFloat(7.25), NewBool(false)})
	_ = r.Append(Tuple{NewInt(3), NewString("carol, the \"great\""), Null, NewBool(true)})
	return r
}

func TestSchemaIndex(t *testing.T) {
	s := sampleRelation().Schema
	if got := s.Index("NAME"); got != 1 {
		t.Errorf("case-insensitive Index = %d, want 1", got)
	}
	if got := s.Index("missing"); got != -1 {
		t.Errorf("Index(missing) = %d, want -1", got)
	}
	if _, err := s.MustIndex("missing"); err == nil {
		t.Error("MustIndex(missing) should fail")
	}
}

func TestSchemaEqualAndString(t *testing.T) {
	a := NewSchema(Col("x", TypeInt), Col("y", TypeFloat))
	b := NewSchema(Col("X", TypeInt), Col("Y", TypeFloat))
	c := NewSchema(Col("x", TypeInt))
	if !a.Equal(b) {
		t.Error("schemas should be equal ignoring case")
	}
	if a.Equal(c) {
		t.Error("different arity schemas should differ")
	}
	if got := a.String(); got != "(x INT, y FLOAT)" {
		t.Errorf("String = %q", got)
	}
}

func TestRelationAppendArity(t *testing.T) {
	r := NewRelation(NewSchema(Col("a", TypeInt)))
	if err := r.Append(Tuple{NewInt(1), NewInt(2)}); err == nil {
		t.Error("arity mismatch should fail")
	}
	if err := r.Append(Tuple{NewInt(1)}); err != nil {
		t.Errorf("valid append failed: %v", err)
	}
}

func TestRelationColumnAndFloats(t *testing.T) {
	r := sampleRelation()
	col, err := r.Column("name")
	if err != nil {
		t.Fatal(err)
	}
	if col[1].S != "bob" {
		t.Errorf("Column(name)[1] = %v", col[1])
	}
	f, err := r.Floats("id")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f, []float64{1, 2, 3}) {
		t.Errorf("Floats(id) = %v", f)
	}
	if _, err := r.Column("nope"); err == nil {
		t.Error("Column(nope) should fail")
	}
}

func TestRelationSortBy(t *testing.T) {
	r := NewRelation(NewSchema(Col("k", TypeInt), Col("v", TypeString)))
	for _, kv := range []struct {
		k int64
		v string
	}{{3, "c"}, {1, "a"}, {2, "b"}, {1, "a2"}} {
		_ = r.Append(Tuple{NewInt(kv.k), NewString(kv.v)})
	}
	r.SortBy(0)
	got := []string{r.Tuples[0][1].S, r.Tuples[1][1].S, r.Tuples[2][1].S, r.Tuples[3][1].S}
	// Stable: "a" (inserted before "a2") stays first among k=1.
	want := []string{"a", "a2", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SortBy order = %v, want %v", got, want)
	}
}

func TestRelationClone(t *testing.T) {
	r := sampleRelation()
	c := r.Clone()
	c.Tuples[0][0] = NewInt(99)
	if r.Tuples[0][0].I == 99 {
		t.Error("Clone should deep-copy tuples")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	r := sampleRelation()
	var buf bytes.Buffer
	if err := r.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Schema.Equal(r.Schema) {
		t.Fatalf("schema mismatch: %v vs %v", got.Schema, r.Schema)
	}
	if !reflect.DeepEqual(got.Tuples, r.Tuples) {
		t.Errorf("tuples mismatch:\n%v\n%v", got.Tuples, r.Tuples)
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	// Property: arbitrary int/float/string tuples survive the wire format.
	f := func(ints []int64, label string) bool {
		r := NewRelation(NewSchema(Col("i", TypeInt), Col("f", TypeFloat), Col("s", TypeString)))
		for _, i := range ints {
			_ = r.Append(Tuple{NewInt(i), NewFloat(float64(i) / 3), NewString(label)})
		}
		var buf bytes.Buffer
		if err := r.WriteBinary(&buf); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.Tuples, r.Tuples)
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestBinaryCorruptInput(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("truncated input should fail")
	}
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should fail")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := sampleRelation()
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Schema.Equal(r.Schema) {
		t.Fatalf("schema mismatch: %v vs %v", got.Schema, r.Schema)
	}
	if got.Len() != r.Len() {
		t.Fatalf("row count %d != %d", got.Len(), r.Len())
	}
	// Quoted comma-containing string survives.
	if got.Tuples[2][1].S != r.Tuples[2][1].S {
		t.Errorf("string with comma mismatch: %q", got.Tuples[2][1].S)
	}
	// NULL float survives as NULL.
	if !got.Tuples[2][2].IsNull() {
		t.Errorf("NULL did not survive CSV: %v", got.Tuples[2][2])
	}
}

func TestReadCSVInferredHeader(t *testing.T) {
	in := "id,score,name\n1,2.5,abc\n2,3.5,def\n"
	r, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := NewSchema(Col("id", TypeInt), Col("score", TypeFloat), Col("name", TypeString))
	if !r.Schema.Equal(want) {
		t.Errorf("inferred schema %v, want %v", r.Schema, want)
	}
	if r.Len() != 2 || r.Tuples[1][2].S != "def" {
		t.Errorf("rows wrong: %v", r)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty csv should fail")
	}
	if _, err := ReadCSV(strings.NewReader("a:INT\nxyz\n")); err == nil {
		t.Error("non-int cell should fail")
	}
}

func TestRelationString(t *testing.T) {
	s := sampleRelation().String()
	if !strings.Contains(s, "alice") || !strings.Contains(s, "id | name") {
		t.Errorf("String() rendering missing data: %q", s)
	}
}
