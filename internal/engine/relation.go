package engine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Column describes one attribute of a schema.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered list of columns. Schemas are value types: copying
// one is cheap and callers may mutate their copy freely.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema from alternating name/type pairs.
func NewSchema(cols ...Column) Schema { return Schema{Columns: cols} }

// Col is shorthand for constructing a Column.
func Col(name string, t Type) Column { return Column{Name: name, Type: t} }

// Index returns the position of the named column (case-insensitive), or
// -1 if absent.
func (s Schema) Index(name string) int {
	for i, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// MustIndex is Index but returns an error naming the column.
func (s Schema) MustIndex(name string) (int, error) {
	if i := s.Index(name); i >= 0 {
		return i, nil
	}
	return -1, fmt.Errorf("engine: no column %q in schema %v", name, s.Names())
}

// Names returns the column names in order.
func (s Schema) Names() []string {
	names := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		names[i] = c.Name
	}
	return names
}

// Equal reports whether two schemas have identical names and types.
func (s Schema) Equal(o Schema) bool {
	if len(s.Columns) != len(o.Columns) {
		return false
	}
	for i := range s.Columns {
		if !strings.EqualFold(s.Columns[i].Name, o.Columns[i].Name) || s.Columns[i].Type != o.Columns[i].Type {
			return false
		}
	}
	return true
}

// String renders the schema as "(a INT, b STRING)".
func (s Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Type)
	}
	b.WriteByte(')')
	return b.String()
}

// Tuple is one row of values, positionally aligned with a Schema.
type Tuple []Value

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Relation is a materialised result set: a schema plus tuples. It is the
// lingua franca returned by island queries and consumed by CAST.
type Relation struct {
	Schema Schema
	Tuples []Tuple
}

// NewRelation allocates an empty relation with the given schema.
func NewRelation(s Schema) *Relation { return &Relation{Schema: s} }

// Append adds a tuple; it must match the schema arity.
func (r *Relation) Append(t Tuple) error {
	if len(t) != len(r.Schema.Columns) {
		return fmt.Errorf("engine: tuple arity %d != schema arity %d", len(t), len(r.Schema.Columns))
	}
	r.Tuples = append(r.Tuples, t)
	return nil
}

// Len returns the cardinality.
func (r *Relation) Len() int { return len(r.Tuples) }

// Column extracts the named column as a Value slice.
func (r *Relation) Column(name string) ([]Value, error) {
	idx, err := r.Schema.MustIndex(name)
	if err != nil {
		return nil, err
	}
	out := make([]Value, len(r.Tuples))
	for i, t := range r.Tuples {
		out[i] = t[idx]
	}
	return out, nil
}

// Floats extracts the named column coerced to float64.
func (r *Relation) Floats(name string) ([]float64, error) {
	idx, err := r.Schema.MustIndex(name)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(r.Tuples))
	for i, t := range r.Tuples {
		out[i] = t[idx].AsFloat()
	}
	return out, nil
}

// SortBy sorts tuples by the given column indexes ascending (stable).
func (r *Relation) SortBy(cols ...int) {
	sort.SliceStable(r.Tuples, func(i, j int) bool {
		for _, c := range cols {
			if cmp := Compare(r.Tuples[i][c], r.Tuples[j][c]); cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
}

// Clone deep-copies the relation.
func (r *Relation) Clone() *Relation {
	out := NewRelation(r.Schema)
	out.Tuples = make([]Tuple, len(r.Tuples))
	for i, t := range r.Tuples {
		out.Tuples[i] = t.Clone()
	}
	return out
}

// String renders a bounded ASCII table (first 20 rows), for the shell and
// examples.
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Schema.Names(), " | "))
	b.WriteByte('\n')
	for i, t := range r.Tuples {
		if i == 20 {
			fmt.Fprintf(&b, "... (%d rows total)\n", len(r.Tuples))
			break
		}
		parts := make([]string, len(t))
		for j, v := range t {
			parts[j] = v.String()
		}
		b.WriteString(strings.Join(parts, " | "))
		b.WriteByte('\n')
	}
	return b.String()
}

// Binary wire format used by the direct CAST path. Layout:
//
//	u32 column count
//	per column: u8 type, u16 name length, name bytes
//	u64 tuple count
//	per tuple, per value: u8 kind, payload (varint int / 8-byte float /
//	  u32-prefixed string / 1-byte bool)
//
// The format is self-describing so the receiving engine can validate the
// schema without a side channel, mirroring the paper's "access method
// that knows how to read binary data in parallel directly from another
// engine".

var errCorrupt = errors.New("engine: corrupt binary relation")

// WriteBinary serialises the relation to w in the direct-CAST format.
func (r *Relation) WriteBinary(w io.Writer) error {
	var scratch [10]byte
	put32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		_, err := w.Write(scratch[:4])
		return err
	}
	put64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(scratch[:8], v)
		_, err := w.Write(scratch[:8])
		return err
	}
	if err := put32(uint32(len(r.Schema.Columns))); err != nil {
		return err
	}
	for _, c := range r.Schema.Columns {
		if _, err := w.Write([]byte{byte(c.Type)}); err != nil {
			return err
		}
		binary.LittleEndian.PutUint16(scratch[:2], uint16(len(c.Name)))
		if _, err := w.Write(scratch[:2]); err != nil {
			return err
		}
		if _, err := io.WriteString(w, c.Name); err != nil {
			return err
		}
	}
	if err := put64(uint64(len(r.Tuples))); err != nil {
		return err
	}
	for _, t := range r.Tuples {
		for _, v := range t {
			if _, err := w.Write([]byte{byte(v.Kind)}); err != nil {
				return err
			}
			switch v.Kind {
			case TypeNull:
			case TypeInt:
				n := binary.PutVarint(scratch[:], v.I)
				if _, err := w.Write(scratch[:n]); err != nil {
					return err
				}
			case TypeFloat:
				if err := put64(math.Float64bits(v.F)); err != nil {
					return err
				}
			case TypeString:
				if err := put32(uint32(len(v.S))); err != nil {
					return err
				}
				if _, err := io.WriteString(w, v.S); err != nil {
					return err
				}
			case TypeBool:
				b := byte(0)
				if v.B {
					b = 1
				}
				if _, err := w.Write([]byte{b}); err != nil {
					return err
				}
			default:
				return fmt.Errorf("engine: cannot serialise kind %v", v.Kind)
			}
		}
	}
	return nil
}

// ReadBinary deserialises a relation written by WriteBinary.
func ReadBinary(r io.Reader) (*Relation, error) {
	br := byteReaderFrom(r)
	var scratch [8]byte
	get32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, scratch[:4]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(scratch[:4]), nil
	}
	get64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, scratch[:8]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(scratch[:8]), nil
	}
	ncols, err := get32()
	if err != nil {
		return nil, err
	}
	if ncols > 1<<16 {
		return nil, errCorrupt
	}
	schema := Schema{Columns: make([]Column, ncols)}
	for i := range schema.Columns {
		kind, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		if _, err := io.ReadFull(br, scratch[:2]); err != nil {
			return nil, err
		}
		nameLen := binary.LittleEndian.Uint16(scratch[:2])
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, err
		}
		schema.Columns[i] = Column{Name: string(name), Type: Type(kind)}
	}
	ntup, err := get64()
	if err != nil {
		return nil, err
	}
	rel := NewRelation(schema)
	if ntup < 1<<20 {
		rel.Tuples = make([]Tuple, 0, ntup)
	}
	for i := uint64(0); i < ntup; i++ {
		t := make(Tuple, ncols)
		for j := range t {
			kind, err := br.ReadByte()
			if err != nil {
				return nil, err
			}
			switch Type(kind) {
			case TypeNull:
				t[j] = Null
			case TypeInt:
				iv, err := binary.ReadVarint(br)
				if err != nil {
					return nil, err
				}
				t[j] = NewInt(iv)
			case TypeFloat:
				bits, err := get64()
				if err != nil {
					return nil, err
				}
				t[j] = NewFloat(math.Float64frombits(bits))
			case TypeString:
				n, err := get32()
				if err != nil {
					return nil, err
				}
				if n > 1<<28 {
					return nil, errCorrupt
				}
				buf := make([]byte, n)
				if _, err := io.ReadFull(br, buf); err != nil {
					return nil, err
				}
				t[j] = NewString(string(buf))
			case TypeBool:
				b, err := br.ReadByte()
				if err != nil {
					return nil, err
				}
				t[j] = NewBool(b != 0)
			default:
				return nil, errCorrupt
			}
		}
		rel.Tuples = append(rel.Tuples, t)
	}
	return rel, nil
}

// byteReader pairs io.Reader with io.ByteReader for binary.ReadVarint.
type byteReader interface {
	io.Reader
	io.ByteReader
}

func byteReaderFrom(r io.Reader) byteReader {
	if br, ok := r.(byteReader); ok {
		return br
	}
	return &simpleByteReader{r: r}
}

type simpleByteReader struct {
	r   io.Reader
	buf [1]byte
}

func (s *simpleByteReader) Read(p []byte) (int, error) { return s.r.Read(p) }

func (s *simpleByteReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(s.r, s.buf[:]); err != nil {
		return 0, err
	}
	return s.buf[0], nil
}
