package engine

import (
	"fmt"
	"sort"
	"strings"
)

// Column describes one attribute of a schema.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered list of columns. Schemas are value types: copying
// one is cheap and callers may mutate their copy freely.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema from alternating name/type pairs.
func NewSchema(cols ...Column) Schema { return Schema{Columns: cols} }

// Col is shorthand for constructing a Column.
func Col(name string, t Type) Column { return Column{Name: name, Type: t} }

// Index returns the position of the named column (case-insensitive), or
// -1 if absent.
func (s Schema) Index(name string) int {
	for i, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// MustIndex is Index but returns an error naming the column.
func (s Schema) MustIndex(name string) (int, error) {
	if i := s.Index(name); i >= 0 {
		return i, nil
	}
	return -1, fmt.Errorf("engine: no column %q in schema %v", name, s.Names())
}

// Names returns the column names in order.
func (s Schema) Names() []string {
	names := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		names[i] = c.Name
	}
	return names
}

// Equal reports whether two schemas have identical names and types.
func (s Schema) Equal(o Schema) bool {
	if len(s.Columns) != len(o.Columns) {
		return false
	}
	for i := range s.Columns {
		if !strings.EqualFold(s.Columns[i].Name, o.Columns[i].Name) || s.Columns[i].Type != o.Columns[i].Type {
			return false
		}
	}
	return true
}

// String renders the schema as "(a INT, b STRING)".
func (s Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Type)
	}
	b.WriteByte(')')
	return b.String()
}

// Tuple is one row of values, positionally aligned with a Schema.
type Tuple []Value

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Relation is a materialised result set: a schema plus tuples. It is the
// lingua franca returned by island queries and consumed by CAST.
type Relation struct {
	Schema Schema
	Tuples []Tuple
}

// NewRelation allocates an empty relation with the given schema.
func NewRelation(s Schema) *Relation { return &Relation{Schema: s} }

// Append adds a tuple; it must match the schema arity.
func (r *Relation) Append(t Tuple) error {
	if len(t) != len(r.Schema.Columns) {
		return fmt.Errorf("engine: tuple arity %d != schema arity %d", len(t), len(r.Schema.Columns))
	}
	r.Tuples = append(r.Tuples, t)
	return nil
}

// Len returns the cardinality.
func (r *Relation) Len() int { return len(r.Tuples) }

// Column extracts the named column as a Value slice.
func (r *Relation) Column(name string) ([]Value, error) {
	idx, err := r.Schema.MustIndex(name)
	if err != nil {
		return nil, err
	}
	out := make([]Value, len(r.Tuples))
	for i, t := range r.Tuples {
		out[i] = t[idx]
	}
	return out, nil
}

// Floats extracts the named column coerced to float64.
func (r *Relation) Floats(name string) ([]float64, error) {
	idx, err := r.Schema.MustIndex(name)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(r.Tuples))
	for i, t := range r.Tuples {
		out[i] = t[idx].AsFloat()
	}
	return out, nil
}

// SortBy sorts tuples by the given column indexes ascending (stable).
func (r *Relation) SortBy(cols ...int) {
	sort.SliceStable(r.Tuples, func(i, j int) bool {
		for _, c := range cols {
			if cmp := Compare(r.Tuples[i][c], r.Tuples[j][c]); cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
}

// Clone deep-copies the relation.
func (r *Relation) Clone() *Relation {
	out := NewRelation(r.Schema)
	out.Tuples = make([]Tuple, len(r.Tuples))
	for i, t := range r.Tuples {
		out.Tuples[i] = t.Clone()
	}
	return out
}

// String renders a bounded ASCII table (first 20 rows), for the shell and
// examples.
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Schema.Names(), " | "))
	b.WriteByte('\n')
	for i, t := range r.Tuples {
		if i == 20 {
			fmt.Fprintf(&b, "... (%d rows total)\n", len(r.Tuples))
			break
		}
		parts := make([]string, len(t))
		for j, v := range t {
			parts[j] = v.String()
		}
		b.WriteString(strings.Join(parts, " | "))
		b.WriteByte('\n')
	}
	return b.String()
}

// The binary wire format used by the direct CAST path lives in
// binary.go (WriteBinary / ReadBinary / ReadBinaryParallel).
