package engine

import (
	"bytes"
	"fmt"
	"testing"
)

func batchSampleRel(rows int) *Relation {
	rel := NewRelation(NewSchema(
		Col("id", TypeInt), Col("score", TypeFloat),
		Col("name", TypeString), Col("ok", TypeBool)))
	for i := 0; i < rows; i++ {
		t := Tuple{NewInt(int64(i)), NewFloat(float64(i) / 3), NewString(fmt.Sprintf("n%d", i)), NewBool(i%2 == 0)}
		if i%7 == 3 { // sprinkle NULLs across every column
			t[i%4] = Null
		}
		_ = rel.Append(t)
	}
	return rel
}

func relationsEqual(t *testing.T, a, b *Relation) {
	t.Helper()
	if !a.Schema.Equal(b.Schema) {
		t.Fatalf("schema %v != %v", a.Schema, b.Schema)
	}
	if len(a.Tuples) != len(b.Tuples) {
		t.Fatalf("cardinality %d != %d", len(a.Tuples), len(b.Tuples))
	}
	for i := range a.Tuples {
		for j := range a.Tuples[i] {
			if !Equal(a.Tuples[i][j], b.Tuples[i][j]) {
				t.Fatalf("row %d col %d: %v != %v", i, j, a.Tuples[i][j], b.Tuples[i][j])
			}
		}
	}
}

func TestBatchRoundTrip(t *testing.T) {
	rel := batchSampleRel(500)
	cb := BatchFromRelation(rel)
	if cb.NumRows != rel.Len() {
		t.Fatalf("NumRows %d != %d", cb.NumRows, rel.Len())
	}
	for j, c := range cb.Cols {
		if c.Kind != rel.Schema.Columns[j].Type {
			t.Errorf("col %d kind %v, want %v (typed columns must not demote on nulls)", j, c.Kind, rel.Schema.Columns[j].Type)
		}
	}
	relationsEqual(t, rel, cb.ToRelation())
	// Random access agrees with the row image.
	for i := 0; i < cb.NumRows; i += 17 {
		for j := range cb.Cols {
			if !Equal(cb.Value(i, j), rel.Tuples[i][j]) {
				t.Fatalf("Value(%d,%d) = %v, want %v", i, j, cb.Value(i, j), rel.Tuples[i][j])
			}
		}
	}
}

func TestBatchDemotesMixedColumn(t *testing.T) {
	rel := NewRelation(NewSchema(Col("x", TypeInt)))
	_ = rel.Append(Tuple{NewInt(1)})
	_ = rel.Append(Tuple{NewString("two")}) // stray kind
	_ = rel.Append(Tuple{NewInt(3)})
	cb := BatchFromRelation(rel)
	if cb.Cols[0].Kind != TypeNull {
		t.Fatalf("mixed column kind %v, want generic", cb.Cols[0].Kind)
	}
	relationsEqual(t, rel, cb.ToRelation())
}

func TestBatchAppendBatch(t *testing.T) {
	a := BatchFromRelation(batchSampleRel(37))
	b := BatchFromRelation(batchSampleRel(23))
	if err := a.AppendBatch(b); err != nil {
		t.Fatal(err)
	}
	if a.NumRows != 60 {
		t.Fatalf("NumRows %d, want 60", a.NumRows)
	}
	want := batchSampleRel(37)
	want.Tuples = append(want.Tuples, batchSampleRel(23).Tuples...)
	relationsEqual(t, want, a.ToRelation())

	// Kind reconciliation: appending a generic column demotes the
	// destination without losing values.
	ga := BatchFromRelation(func() *Relation {
		r := NewRelation(NewSchema(Col("x", TypeInt)))
		_ = r.Append(Tuple{NewInt(1)})
		return r
	}())
	gb := BatchFromRelation(func() *Relation {
		r := NewRelation(NewSchema(Col("x", TypeInt)))
		_ = r.Append(Tuple{NewString("s")})
		return r
	}())
	if err := ga.AppendBatch(gb); err != nil {
		t.Fatal(err)
	}
	if got := ga.Cols[0].Value(1); !Equal(got, NewString("s")) {
		t.Fatalf("merged value %v, want 's'", got)
	}
}

// TestBatchBinaryWireCompat pins the key codec property: a stream
// written from a ColumnBatch is byte-identical to one written from the
// equivalent Relation, and either decoder accepts either stream.
func TestBatchBinaryWireCompat(t *testing.T) {
	rel := batchSampleRel(9000) // multiple frames
	cb := BatchFromRelation(rel)

	var fromRel, fromBatch bytes.Buffer
	if err := rel.WriteBinary(&fromRel); err != nil {
		t.Fatal(err)
	}
	if err := cb.WriteBinary(&fromBatch); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromRel.Bytes(), fromBatch.Bytes()) {
		t.Fatal("batch encoder produced different bytes than the relation encoder")
	}

	rowDecoded, err := ReadBinary(bytes.NewReader(fromBatch.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	relationsEqual(t, rel, rowDecoded)

	colDecoded, err := ReadBinaryColumnar(bytes.NewReader(fromRel.Bytes()), 1)
	if err != nil {
		t.Fatal(err)
	}
	relationsEqual(t, rel, colDecoded.ToRelation())
}

func TestReadBinaryColumnarParallel(t *testing.T) {
	rel := batchSampleRel(20000)
	var buf bytes.Buffer
	if err := rel.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	cb, err := ReadBinaryColumnar(bytes.NewReader(buf.Bytes()), 4)
	if err != nil {
		t.Fatal(err)
	}
	relationsEqual(t, rel, cb.ToRelation())
}

func TestReadBinaryColumnarV1Fallback(t *testing.T) {
	rel := batchSampleRel(100)
	var buf bytes.Buffer
	if err := rel.WriteBinaryV1(&buf); err != nil {
		t.Fatal(err)
	}
	cb, err := ReadBinaryColumnar(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	relationsEqual(t, rel, cb.ToRelation())
}

func TestReadBinaryColumnarCorrupt(t *testing.T) {
	rel := batchSampleRel(300)
	var buf bytes.Buffer
	if err := rel.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Truncations at every prefix must error, never panic or hang.
	for cut := 0; cut < len(full); cut += 97 {
		if _, err := ReadBinaryColumnar(bytes.NewReader(full[:cut]), 1); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// A flipped value-kind byte must be rejected or decode to the same
	// cardinality — never crash.
	mut := append([]byte(nil), full...)
	mut[len(mut)/2] ^= 0x7f
	if cb, err := ReadBinaryColumnar(bytes.NewReader(mut), 1); err == nil && cb.NumRows != rel.Len() {
		t.Fatalf("corrupt stream decoded to %d rows", cb.NumRows)
	}
}

func TestBatchMixedColumnOnWire(t *testing.T) {
	rel := NewRelation(NewSchema(Col("x", TypeInt)))
	_ = rel.Append(Tuple{NewInt(1)})
	_ = rel.Append(Tuple{NewString("two")})
	_ = rel.Append(Tuple{Null})
	cb := BatchFromRelation(rel)
	var buf bytes.Buffer
	if err := cb.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := ReadBinaryColumnar(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	relationsEqual(t, rel, out.ToRelation())
}
