package engine

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// roundTrip encodes r with the v2 codec and decodes it back, failing the
// test on any error.
func roundTrip(t *testing.T, r *Relation) *Relation {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteBinary(&buf); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	return got
}

func assertRelationsEqual(t *testing.T, got, want *Relation) {
	t.Helper()
	if !got.Schema.Equal(want.Schema) {
		t.Fatalf("schema mismatch: %v vs %v", got.Schema, want.Schema)
	}
	if got.Len() != want.Len() {
		t.Fatalf("row count %d != %d", got.Len(), want.Len())
	}
	for i := range want.Tuples {
		if len(got.Tuples[i]) != len(want.Tuples[i]) {
			t.Fatalf("tuple %d arity %d != %d", i, len(got.Tuples[i]), len(want.Tuples[i]))
		}
		for j := range want.Tuples[i] {
			if !reflect.DeepEqual(got.Tuples[i][j], want.Tuples[i][j]) {
				t.Fatalf("tuple %d col %d: %#v != %#v", i, j, got.Tuples[i][j], want.Tuples[i][j])
			}
		}
	}
}

func TestBinaryV2RoundTripEdgeCases(t *testing.T) {
	bigString := strings.Repeat("x", (64<<10)+17) // crosses the 64KiB batch flush target

	cases := map[string]func() *Relation{
		"nulls and bools": func() *Relation {
			r := NewRelation(NewSchema(Col("b", TypeBool), Col("n", TypeString)))
			_ = r.Append(Tuple{NewBool(true), Null})
			_ = r.Append(Tuple{Null, NewString("")})
			_ = r.Append(Tuple{NewBool(false), NewString("x")})
			return r
		},
		"empty strings": func() *Relation {
			r := NewRelation(NewSchema(Col("s", TypeString)))
			for i := 0; i < 10; i++ {
				_ = r.Append(Tuple{NewString("")})
			}
			return r
		},
		"string larger than one batch": func() *Relation {
			r := NewRelation(NewSchema(Col("s", TypeString)))
			_ = r.Append(Tuple{NewString(bigString)})
			_ = r.Append(Tuple{NewString("after")})
			return r
		},
		"zero rows": func() *Relation {
			return NewRelation(NewSchema(Col("a", TypeInt), Col("b", TypeFloat)))
		},
		"zero columns": func() *Relation {
			r := NewRelation(Schema{})
			_ = r.Append(Tuple{})
			_ = r.Append(Tuple{})
			return r
		},
		"zero rows zero columns": func() *Relation {
			return NewRelation(Schema{})
		},
		"float specials": func() *Relation {
			r := NewRelation(NewSchema(Col("f", TypeFloat)))
			for _, f := range []float64{0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), math.MaxFloat64, math.SmallestNonzeroFloat64} {
				_ = r.Append(Tuple{NewFloat(f)})
			}
			return r
		},
		"int extremes": func() *Relation {
			r := NewRelation(NewSchema(Col("i", TypeInt)))
			for _, i := range []int64{0, 1, -1, math.MaxInt64, math.MinInt64} {
				_ = r.Append(Tuple{NewInt(i)})
			}
			return r
		},
		"multi batch": func() *Relation {
			r := NewRelation(NewSchema(Col("i", TypeInt), Col("s", TypeString)))
			for i := 0; i < 3*batchMaxTuples+11; i++ {
				_ = r.Append(Tuple{NewInt(int64(i)), NewString("v")})
			}
			return r
		},
	}
	for name, mk := range cases {
		t.Run(name, func(t *testing.T) {
			want := mk()
			assertRelationsEqual(t, roundTrip(t, want), want)
		})
	}
}

// NaN needs a bit-level check: reflect.DeepEqual(NaN, NaN) is false.
func TestBinaryV2RoundTripNaN(t *testing.T) {
	r := NewRelation(NewSchema(Col("f", TypeFloat)))
	_ = r.Append(Tuple{NewFloat(math.NaN())})
	got := roundTrip(t, r)
	if !math.IsNaN(got.Tuples[0][0].F) {
		t.Fatalf("NaN did not survive: %v", got.Tuples[0][0])
	}
}

func TestBinaryV2RoundTripProperty(t *testing.T) {
	// Property: arbitrary mixed-type tuples survive the framed wire
	// format, including batch-boundary crossings.
	f := func(ints []int64, labels []string, bs []bool) bool {
		r := NewRelation(NewSchema(
			Col("i", TypeInt), Col("f", TypeFloat), Col("s", TypeString), Col("b", TypeBool)))
		for k, i := range ints {
			s := ""
			if len(labels) > 0 {
				s = labels[k%len(labels)]
			}
			b := Value(Null)
			if len(bs) > 0 {
				b = NewBool(bs[k%len(bs)])
			}
			_ = r.Append(Tuple{NewInt(i), NewFloat(float64(i) / 7), NewString(s), b})
		}
		var buf bytes.Buffer
		if err := r.WriteBinary(&buf); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if got.Len() != r.Len() || !got.Schema.Equal(r.Schema) {
			return false
		}
		for i := range r.Tuples {
			if !reflect.DeepEqual(got.Tuples[i], r.Tuples[i]) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestBinaryOversizedRowRefusedOnEncode(t *testing.T) {
	// Values or rows bigger than the frame limit must fail at encode time
	// with a clear error — never produce a stream the reader rejects.
	t.Run("single giant string", func(t *testing.T) {
		r := NewRelation(NewSchema(Col("s", TypeString)))
		_ = r.Append(Tuple{NewString(strings.Repeat("x", maxEncodeStringLen+100))})
		var buf bytes.Buffer
		err := r.WriteBinary(&buf)
		if err == nil || !strings.Contains(err.Error(), "wire limit") {
			t.Fatalf("want string wire-limit error, got %v", err)
		}
	})
	t.Run("row of strings over the row cap", func(t *testing.T) {
		r := NewRelation(NewSchema(Col("a", TypeString), Col("b", TypeString)))
		half := strings.Repeat("x", maxRowBytes/2+64)
		_ = r.Append(Tuple{NewString(half), NewString(half)})
		var buf bytes.Buffer
		err := r.WriteBinary(&buf)
		if err == nil || !strings.Contains(err.Error(), "row limit") {
			t.Fatalf("want row-limit error, got %v", err)
		}
	})
}

func TestBinaryV1CompatRoundTrip(t *testing.T) {
	want := sampleRelation()
	var buf bytes.Buffer
	if err := want.WriteBinaryV1(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary on v1 stream: %v", err)
	}
	assertRelationsEqual(t, got, want)
}

func TestBinaryParallelMatchesSequential(t *testing.T) {
	r := NewRelation(NewSchema(Col("i", TypeInt), Col("s", TypeString), Col("f", TypeFloat)))
	for i := 0; i < 20_000; i++ {
		_ = r.Append(Tuple{NewInt(int64(i)), NewString(strings.Repeat("a", i%13)), NewFloat(float64(i))})
	}
	var buf bytes.Buffer
	if err := r.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinaryParallel(bytes.NewReader(buf.Bytes()), 4)
	if err != nil {
		t.Fatal(err)
	}
	assertRelationsEqual(t, got, r)
}

func TestBinaryV2TruncationsError(t *testing.T) {
	r := NewRelation(NewSchema(Col("i", TypeInt), Col("s", TypeString)))
	for i := 0; i < 100; i++ {
		_ = r.Append(Tuple{NewInt(int64(i)), NewString("hello")})
	}
	var buf bytes.Buffer
	if err := r.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every proper prefix must fail cleanly — never panic, never return
	// a silently short relation.
	for n := 0; n < len(full); n += 7 {
		if _, err := ReadBinary(bytes.NewReader(full[:n])); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", n, len(full))
		} else if !errors.Is(err, errCorrupt) {
			t.Fatalf("prefix of %d bytes: error %v does not wrap errCorrupt", n, err)
		}
	}
}

func TestBinaryCorruptStreamsError(t *testing.T) {
	valid := func() []byte {
		r := sampleRelation()
		var buf bytes.Buffer
		if err := r.WriteBinary(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	t.Run("empty", func(t *testing.T) {
		if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
			t.Error("empty input should fail")
		}
	})
	t.Run("v1 junk", func(t *testing.T) {
		if _, err := ReadBinary(bytes.NewReader([]byte{1, 2, 3})); err == nil {
			t.Error("short non-magic input should fail")
		}
	})
	t.Run("huge v1 column count", func(t *testing.T) {
		// No magic → first word is a v1 column count; over the bound.
		if _, err := ReadBinary(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0x7f})); !errors.Is(err, errCorrupt) {
			t.Errorf("got %v, want errCorrupt", err)
		}
	})
	t.Run("v1 tuple count overclaims", func(t *testing.T) {
		// v1 header claiming 2^40 tuples then ending: must error with
		// context, not allocate or return partial garbage.
		var b []byte
		b = appendU32(b, 1)             // ncols
		b = append(b, byte(TypeInt))    // col type
		b = appendU16(b, 1)             // name len
		b = append(b, 'x')              // name
		b = appendU64(b, 1<<40)         // ntup — a lie
		b = append(b, byte(TypeInt), 2) // one real tuple
		if _, err := ReadBinary(bytes.NewReader(b)); !errors.Is(err, errCorrupt) {
			t.Errorf("got %v, want errCorrupt", err)
		}
	})
	t.Run("batch count over limit", func(t *testing.T) {
		b := valid()
		// Frame header sits right after the fixed header + 4 columns.
		// Corrupt the first batch's tuple count to an absurd value.
		off := frameHeaderOffset(t, b)
		binary_putU32(b[off:], batchMaxTuples+1)
		if _, err := ReadBinary(bytes.NewReader(b)); !errors.Is(err, errCorrupt) {
			t.Errorf("got %v, want errCorrupt", err)
		}
	})
	t.Run("payload shorter than arity floor", func(t *testing.T) {
		b := valid()
		off := frameHeaderOffset(t, b)
		binary_putU32(b[off+4:], 1) // payload length < count*ncols
		if _, err := ReadBinary(bytes.NewReader(b)); !errors.Is(err, errCorrupt) {
			t.Errorf("got %v, want errCorrupt", err)
		}
	})
	t.Run("unknown value kind", func(t *testing.T) {
		b := valid()
		off := frameHeaderOffset(t, b)
		b[off+8] = 0xee // first value's kind byte
		if _, err := ReadBinary(bytes.NewReader(b)); !errors.Is(err, errCorrupt) {
			t.Errorf("got %v, want errCorrupt", err)
		}
	})
	t.Run("declared count mismatch", func(t *testing.T) {
		b := valid()
		// The u64 declared total sits just before the first frame.
		binary_putU64(b[frameHeaderOffset(t, b)-8:], 999)
		if _, err := ReadBinary(bytes.NewReader(b)); !errors.Is(err, errCorrupt) {
			t.Errorf("got %v, want errCorrupt", err)
		}
	})
	t.Run("payload ends after string kind byte", func(t *testing.T) {
		// Hand-built v2 stream whose only value is a string kind byte
		// with no length following it — must error, not panic.
		var b []byte
		b = appendU32(b, binaryMagic)
		b = appendU32(b, 1)             // ncols
		b = append(b, byte(TypeString)) // col type
		b = appendU16(b, 1)             // name len
		b = append(b, 's')              // name
		b = appendU64(b, 1)             // declared tuple count
		b = appendU32(b, 1)             // frame: 1 tuple
		b = appendU32(b, 1)             // frame: 1 payload byte
		b = append(b, byte(TypeString)) // kind byte, then nothing
		b = appendU32(b, 0)             // end marker
		if _, err := ReadBinary(bytes.NewReader(b)); !errors.Is(err, errCorrupt) {
			t.Errorf("got %v, want errCorrupt", err)
		}
	})
	t.Run("zero-column amplification", func(t *testing.T) {
		// A tiny v2 stream with a zero-column schema streaming endless
		// "4096 tuples, 0 payload bytes" frames: 8 wire bytes per 4096
		// tuples must hit the zero-column cap, not allocate unbounded.
		var b []byte
		b = appendU32(b, binaryMagic)
		b = appendU32(b, 0)     // ncols
		b = appendU64(b, 1<<40) // declared tuple count (a lie)
		for i := 0; i < 1<<20/batchMaxTuples+2; i++ {
			b = appendU32(b, batchMaxTuples)
			b = appendU32(b, 0)
		}
		if _, err := ReadBinary(bytes.NewReader(b)); !errors.Is(err, errCorrupt) {
			t.Errorf("sequential: got %v, want errCorrupt", err)
		}
		if _, err := ReadBinaryParallel(bytes.NewReader(b), 4); !errors.Is(err, errCorrupt) {
			t.Errorf("parallel: got %v, want errCorrupt", err)
		}
	})
	t.Run("stream exceeds declared count", func(t *testing.T) {
		b := valid()
		// Shrink the declared total below the real row count: the decoder
		// must notice as soon as the stream overshoots it.
		binary_putU64(b[frameHeaderOffset(t, b)-8:], 1)
		if _, err := ReadBinary(bytes.NewReader(b)); !errors.Is(err, errCorrupt) {
			t.Errorf("got %v, want errCorrupt", err)
		}
	})
	t.Run("truncated at frame boundaries", func(t *testing.T) {
		// A stream cut off exactly at a frame header, inside one, or
		// right after one (the shapes a partial write produces) must
		// yield a clean error from both decoders — never a panic, never
		// a silently short relation.
		full := valid()
		hdr := frameHeaderOffset(t, full)
		for _, cut := range []int{hdr, hdr + 4, hdr + 8, len(full) - 4, len(full) - 1} {
			b := full[:cut]
			if _, err := ReadBinary(bytes.NewReader(b)); err == nil {
				t.Errorf("cut at %d: sequential decode accepted truncated stream", cut)
			}
			if _, err := ReadBinaryParallel(bytes.NewReader(b), 4); err == nil {
				t.Errorf("cut at %d: parallel decode accepted truncated stream", cut)
			}
		}
	})
	t.Run("parallel sees corruption too", func(t *testing.T) {
		b := valid()
		off := frameHeaderOffset(t, b)
		b[off+8] = 0xee
		if _, err := ReadBinaryParallel(bytes.NewReader(b), 4); !errors.Is(err, errCorrupt) {
			t.Errorf("got %v, want errCorrupt", err)
		}
	})
}

// frameHeaderOffset computes where the first batch frame starts in a v2
// stream produced from sampleRelation (magic + ncols + per-column
// headers + u64 declared tuple count).
func frameHeaderOffset(t testing.TB, b []byte) int {
	t.Helper()
	off := 8 // magic + column count
	ncols := int(uint32(b[4]) | uint32(b[5])<<8 | uint32(b[6])<<16 | uint32(b[7])<<24)
	for i := 0; i < ncols; i++ {
		nameLen := int(uint16(b[off+1]) | uint16(b[off+2])<<8)
		off += 3 + nameLen
	}
	off += 8 // declared tuple count
	if off >= len(b) {
		t.Fatalf("frame offset %d beyond stream length %d", off, len(b))
	}
	return off
}

func binary_putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func binary_putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// FuzzReadBinary asserts the decoder never panics and never hangs on
// arbitrary input, for both the framed v2 and legacy v1 layouts.
func FuzzReadBinary(f *testing.F) {
	var v2 bytes.Buffer
	if err := sampleRelation().WriteBinary(&v2); err != nil {
		f.Fatal(err)
	}
	var v1 bytes.Buffer
	if err := sampleRelation().WriteBinaryV1(&v1); err != nil {
		f.Fatal(err)
	}
	f.Add(v2.Bytes())
	f.Add(v1.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x42, 0x44, 0x57, 0x32}) // bare magic
	// Partial-write shapes: streams cut exactly at the first frame
	// header, mid-header, and just past it (header without payload) —
	// what a writer that died between frame boundaries leaves behind.
	hdr := frameHeaderOffset(f, v2.Bytes())
	f.Add(v2.Bytes()[:hdr])
	f.Add(v2.Bytes()[:hdr+4])
	f.Add(v2.Bytes()[:hdr+8])
	f.Add(v2.Bytes()[:len(v2.Bytes())-4]) // missing end marker
	f.Fuzz(func(t *testing.T, data []byte) {
		rel, err := ReadBinary(bytes.NewReader(data))
		if err == nil {
			// Whatever decoded must round-trip: re-encode and decode again.
			var buf bytes.Buffer
			if err := rel.WriteBinary(&buf); err != nil {
				t.Fatalf("re-encode of decoded relation failed: %v", err)
			}
			if _, err := ReadBinary(&buf); err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
		}
	})
}
