package templeak_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/templeak"
)

func TestTempleak(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), templeak.Analyzer, "templeak")
}
