// Package templeak enforces the temp-object lifecycle around CAST
// pushdown: every query-scoped temp object registered during planning
// must be handed to dropTempObjects on every return path.
//
// Two rules:
//
//  1. A call to dropTempObjects must be deferred (plain `defer
//     p.dropTempObjects(temps)` or inside a deferred closure). A
//     straight-line call runs on exactly one return path; an early
//     error return or a panic leaks the temp tables in the engine
//     catalogs — the exact defect PR 5 fixed in the pushdown planner.
//
//  2. A local slice that accumulates temp names (appends of tempName
//     results or CastResult.Target fields) must reach dropTempObjects,
//     be returned to the caller, or escape into another call that can
//     take ownership. A collector that does none of these is a leak no
//     matter how the function exits.
//
// Benchmarks and tests that intentionally drop mid-loop can suppress
// with //lint:ignore templeak <reason>, but the preferred shape is a
// per-iteration closure with a defer (see internal/core/bench_test.go).
package templeak

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer is the templeak analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "templeak",
	Doc:  "flags temp-object registrations that can miss dropTempObjects on some return path",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// The lifecycle functions themselves are exempt: the drop
			// helper calls engine drops, and tempName only mints names.
			if fd.Name.Name == "dropTempObjects" || fd.Name.Name == "tempName" {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// tracked is one local variable accumulating temp-object names.
type tracked struct {
	obj     types.Object
	declPos ast.Node // the statement that started the accumulation
	dropped bool     // passed to dropTempObjects
	escaped bool     // returned, or passed to some other call
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	vars := map[types.Object]*tracked{}

	// Pass 1: find accumulators and direct drop calls.
	analysis.WalkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil {
					continue
				}
				if accumulatesTempNames(info, rhs, vars) {
					if _, ok := vars[obj]; !ok {
						vars[obj] = &tracked{obj: obj, declPos: n}
					}
				}
			}
		case *ast.CallExpr:
			if analysis.CalleeName(n) == "dropTempObjects" {
				if !isDeferred(stack, n) {
					pass.Reportf(n.Pos(),
						"dropTempObjects is not deferred: an early return or panic before this call leaks temp objects (use defer)")
				}
				for _, arg := range n.Args {
					if id := analysis.RootIdent(arg); id != nil {
						if t, ok := vars[objOf(info, id)]; ok {
							t.dropped = true
						}
					}
				}
			}
		}
		return true
	})

	if len(vars) == 0 {
		return
	}

	// Pass 2: decide escape for each accumulator.
	analysis.WalkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				markMentioned(info, res, vars, func(t *tracked) { t.escaped = true })
			}
		case *ast.CallExpr:
			name := analysis.CalleeName(n)
			if name == "append" || name == "len" || name == "cap" || name == "tempName" {
				return true
			}
			isDrop := name == "dropTempObjects"
			for _, arg := range n.Args {
				markMentioned(info, arg, vars, func(t *tracked) {
					if isDrop {
						t.dropped = true
					} else {
						t.escaped = true
					}
				})
			}
		}
		return true
	})

	for _, t := range vars {
		if !t.dropped && !t.escaped {
			pass.Reportf(t.declPos.Pos(),
				"%s accumulates temp object names but never reaches dropTempObjects and never escapes this function (temp tables leak in the engine catalogs)",
				t.obj.Name())
		}
	}
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// accumulatesTempNames reports whether rhs feeds temp-object names into
// the assigned variable: append(x, tempName(...)), append(x, res.Target),
// a direct tempName(...) result, a .Target selector, or an append whose
// appended values mention an already-tracked variable.
func accumulatesTempNames(info *types.Info, rhs ast.Expr, vars map[types.Object]*tracked) bool {
	switch e := ast.Unparen(rhs).(type) {
	case *ast.CallExpr:
		name := analysis.CalleeName(e)
		if name == "tempName" {
			return true
		}
		if name == "append" && len(e.Args) > 1 {
			for _, v := range e.Args[1:] {
				if isTempNameExpr(info, v, vars) {
					return true
				}
			}
		}
	case *ast.SelectorExpr:
		return e.Sel.Name == "Target"
	}
	return false
}

// isTempNameExpr reports whether e is a temp-object name: a tempName
// call, a CastResult .Target selector, or a use of a tracked variable.
func isTempNameExpr(info *types.Info, e ast.Expr, vars map[types.Object]*tracked) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		return analysis.CalleeName(e) == "tempName"
	case *ast.SelectorExpr:
		return e.Sel.Name == "Target"
	case *ast.Ident:
		if obj := objOf(info, e); obj != nil {
			_, ok := vars[obj]
			return ok
		}
	case *ast.SliceExpr:
		return isTempNameExpr(info, e.X, vars)
	}
	return false
}

// markMentioned invokes mark for every tracked variable mentioned in e.
func markMentioned(info *types.Info, e ast.Expr, vars map[types.Object]*tracked, mark func(*tracked)) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				if t, ok := vars[obj]; ok {
					mark(t)
				}
			}
		}
		return true
	})
}

// isDeferred reports whether the call is the operand of a defer
// statement, directly (`defer p.dropTempObjects(ts)`) or via a deferred
// closure (`defer func() { p.dropTempObjects(ts) }()`).
func isDeferred(stack []ast.Node, call *ast.CallExpr) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.DeferStmt:
			return true
		case *ast.FuncLit:
			// Inside a function literal: deferred only if the literal
			// itself is the deferred call's function.
			if i > 0 {
				if d, ok := stack[i-1].(*ast.DeferStmt); ok {
					if fl, ok := d.Call.Fun.(*ast.FuncLit); ok && fl == n {
						return true
					}
				}
				// The literal may be wrapped: defer (func(){...})()
				if i > 1 {
					if d, ok := stack[i-2].(*ast.DeferStmt); ok {
						if fl, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok && fl == n {
							return true
						}
					}
				}
			}
			return false
		}
	}
	return false
}
