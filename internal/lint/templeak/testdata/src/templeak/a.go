// Fixtures for the templeak analyzer: local stand-ins for the
// polystore's temp-object API (tempName mints catalog names,
// dropTempObjects removes them from every engine, CastResult.Target is
// a registered temp table).
package templeak

type Planner struct{ n int }

func (p *Planner) tempName(base string) string   { p.n++; return base }
func (p *Planner) dropTempObjects(names []string) {}

type CastResult struct {
	Target string
	Bytes  int64
}

func (p *Planner) cast(obj string) (*CastResult, bool) {
	return &CastResult{Target: p.tempName(obj)}, true
}

func okDeferredDrop(p *Planner, fail bool) bool {
	var temps []string
	temps = append(temps, p.tempName("a"))
	defer p.dropTempObjects(temps)
	if fail {
		return false
	}
	temps = append(temps, p.tempName("b"))
	return true
}

func okDeferredClosureDrop(p *Planner) {
	var temps []string
	temps = append(temps, p.tempName("a"))
	defer func() { p.dropTempObjects(temps) }()
	temps = append(temps, p.tempName("b"))
}

// Handing the collector to the caller transfers cleanup ownership —
// this is the resolveCasts shape.
func okReturnsTemps(p *Planner) []string {
	var temps []string
	temps = append(temps, p.tempName("a"))
	return temps
}

// Passing the collector to another (non-drop) call also counts as an
// ownership transfer.
func okEscapesIntoCall(p *Planner, sink func([]string)) {
	var temps []string
	temps = append(temps, p.tempName("a"))
	sink(temps)
}

// A straight-line drop runs on exactly one return path: the early
// return above it leaks.
func badStraightLineDrop(p *Planner, fail bool) bool {
	var temps []string
	temps = append(temps, p.tempName("a"))
	if fail {
		return false
	}
	p.dropTempObjects(temps) // want `dropTempObjects is not deferred`
	return true
}

// The PR-5 planner defect shape: a collector accumulates cast targets
// and is then simply forgotten.
func badForgottenCollector(p *Planner) int64 {
	var temps []string
	res, ok := p.cast("big")
	if !ok {
		return 0
	}
	temps = append(temps, res.Target) // want `temps accumulates temp object names but never reaches dropTempObjects`
	return res.Bytes
}

func okSuppressedMidLoopDrop(p *Planner) {
	for i := 0; i < 3; i++ {
		var temps []string
		temps = append(temps, p.tempName("a"))
		//lint:ignore templeak fixture: bounded loop drops per iteration on purpose
		p.dropTempObjects(temps)
	}
}
