// Fixtures for the errdrop analyzer: a stand-in island API whose
// methods return errors. The fixture harness treats no package as
// standard library, so every declared callee here is in scope.
package errdrop

type failure struct{}

func (failure) Error() string { return "boom" }

type Relation struct{ rows int }

func (r *Relation) Append(vals []int64) error { return nil }
func (r *Relation) Size() int                 { return r.rows }
func (r *Relation) Close() error              { return failure{} }

func load(r *Relation) error { return failure{} }

func bad(r *Relation) {
	r.Append(nil) // want `error result of Append is silently dropped`
	load(r)       // want `error result of load is silently dropped`
}

// defer and go drop the error just as silently.
func badDeferred(r *Relation) {
	defer r.Close() // want `error result of Close is silently dropped`
}

func badGo(r *Relation) {
	go load(r) // want `error result of load is silently dropped`
}

// A blank assignment documents the discard and is exempt.
func okBlank(r *Relation) {
	_ = r.Append(nil)
}

func okHandled(r *Relation) error {
	if err := load(r); err != nil {
		return err
	}
	return nil
}

// No error in the signature, nothing to drop.
func okNoError(r *Relation) {
	r.Size()
}

// Calls through function values are out of scope (no declared callee).
func okFuncValue(fns []func() error) {
	for _, fn := range fns {
		fn()
	}
}

func okSuppressed(r *Relation) {
	//lint:ignore errdrop fixture: best-effort cleanup on shutdown
	load(r)
}
