package errdrop_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/errdrop"
)

func TestErrdrop(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), errdrop.Analyzer, "errdrop")
}
