// Package errdrop flags calls whose error result is silently discarded
// by using the call as a statement. In a polystore, a dropped error
// from an island, codec, or migration API usually means divergent state
// between engines: a Load that failed half-way, a migration whose
// target table was never created, a codec that stopped mid-frame.
//
// The rule: an expression statement calling a declared function or
// method that returns an error (in any result position) is a finding,
// unless the callee lives in the standard library (buf.WriteByte and
// friends are well-defined no-fail cases) — the suite is for the
// repository's own contracts, not a general errcheck clone.
//
// Deliberate discards stay available and visible: assign the error to
// blank (`_ = rel.Append(...)`) or suppress with //lint:ignore errdrop
// <reason>. Both forms document intent at the call site; a bare call
// statement documents nothing.
package errdrop

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer is the errdrop analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "errdrop",
	Doc:  "flags ignored error returns from island, codec, and migration APIs",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			// Only expression statements: `foo()` alone on a line.
			// Deferred and go'd calls get the same treatment — a
			// deferred Close that can fail mid-flush is still a
			// dropped error.
			var call *ast.CallExpr
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, _ = s.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = s.Call
			case *ast.GoStmt:
				call = s.Call
			}
			if call == nil {
				return true
			}
			check(pass, call)
			return true
		})
	}
	return nil
}

func check(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil {
		return // function values, builtins, conversions
	}
	if fn.Pkg() != nil && pass.IsStd(fn.Pkg().Path()) {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	results := sig.Results()
	for i := 0; i < results.Len(); i++ {
		if isErrorType(results.At(i).Type()) {
			pass.Reportf(call.Pos(),
				"error result of %s is silently dropped (assign to _ or handle it; a lost island/codec error means divergent engine state)",
				fn.Name())
			return
		}
	}
}

func isErrorType(t types.Type) bool {
	named := analysis.NamedTypeName(t)
	if named == "error" {
		return true
	}
	// The universe error interface has no *types.Named in older
	// representations; compare against the universe type directly.
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
