// Fixtures for the batchalias analyzer: local stand-ins for the engine
// ColumnBatch and the relational island's cached-view accessors. The
// analyzer treats results of columnBatch/DumpBatch/DumpBatchWhere as
// shared views that must not be written through.
package batchalias

type Bitmap struct{ words []uint64 }

func (b *Bitmap) Set(i int) {}

type ColVec struct {
	Ints  []int64
	Nulls Bitmap
}

func (v *ColVec) appendVal(x int64) {}

type ColumnBatch struct {
	Cols []ColVec
	Len  int
}

func (b *ColumnBatch) AppendTuple(vals []int64) {}

func NewColumnBatch() *ColumnBatch { return &ColumnBatch{} }

type Table struct{ cached *ColumnBatch }

func (t *Table) columnBatch() *ColumnBatch { return t.cached }

type DB struct{ tables map[string]*Table }

func (db *DB) DumpBatch(name string) (*ColumnBatch, bool) {
	tbl, ok := db.tables[name]
	if !ok {
		return nil, false
	}
	return tbl.columnBatch(), true
}

func badFieldWrite(t *Table) {
	v := t.columnBatch()
	v.Cols[0].Ints[1] = 7 // want `write through shared column-batch view v`
}

func badMutatorCall(t *Table) {
	v := t.columnBatch()
	v.AppendTuple(nil) // want `mutating call AppendTuple on shared column-batch view v`
}

func badVecMutator(t *Table) {
	v := t.columnBatch()
	v.Cols[0].appendVal(9) // want `mutating call appendVal on shared column-batch view v`
}

func badBitmapSet(t *Table) {
	v := t.columnBatch()
	v.Cols[0].Nulls.Set(3) // want `mutating call Set on shared column-batch view v`
}

// Aliases of a view are views: writing through a copied column slice
// still lands in the shared cache.
func badAliasWrite(t *Table) {
	v := t.columnBatch()
	cols := v.Cols
	cols[0].Ints = nil // want `write through shared column-batch view cols`
}

func badDumpBatchWrite(db *DB) {
	v, ok := db.DumpBatch("patients")
	if !ok {
		return
	}
	v.Len = 0 // want `write through shared column-batch view v`
}

func badCopyInto(t *Table, src []int64) {
	v := t.columnBatch()
	copy(v.Cols[0].Ints, src) // want `copy into shared column-batch view v`
}

// append can write the cached backing array in place when capacity
// allows, even though the result lands in a fresh variable.
func badAppendInPlace(t *Table, x int64) []int64 {
	v := t.columnBatch()
	out := append(v.Cols[0].Ints, x) // want `append to a slice of shared column-batch view v`
	return out
}

// Reading through a view is the whole point — no findings.
func okReads(t *Table) int64 {
	v := t.columnBatch()
	sum := int64(v.Len)
	sum += v.Cols[0].Ints[0]
	return sum
}

// A scalar copied out of a view carries no shared storage.
func okScalarCopy(t *Table) int {
	v := t.columnBatch()
	n := v.Len
	n++
	return n
}

// A batch the function builds itself is its own to mutate.
func okOwnBatch(x int64) *ColumnBatch {
	b := NewColumnBatch()
	b.AppendTuple(nil)
	b.Cols = append(b.Cols, ColVec{})
	b.Cols[0].Ints = append(b.Cols[0].Ints, x)
	return b
}

// Rebinding the view variable itself is not a write through it.
func okRebindNotAWrite(t *Table) {
	v := t.columnBatch()
	v = t.columnBatch()
	_ = v
}
