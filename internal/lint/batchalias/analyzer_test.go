package batchalias_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/batchalias"
)

func TestBatchalias(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), batchalias.Analyzer, "batchalias")
}
