// Package batchalias enforces the immutability contract on shared
// column-batch views. The relational island caches one ColumnBatch per
// table version and hands the *same* backing arrays to every consumer
// (DumpBatch, the vectorized executor, CAST pushdown). The contract —
// "consumers treat a batch they did not build as immutable" — is only a
// comment in internal/engine/batch.go; this analyzer makes it checkable.
//
// A *view* is the result of a call that returns a cached or shared
// batch: any call returning a ColumnBatch-typed value whose name is
// columnBatch, DumpBatch, or DumpBatchWhere, plus anything aliased from
// such a value with := . Flagged while rooted at a view:
//
//   - assignments through the view (v.Cols[i] = …, v.Cols[i].Ints[j] = …);
//   - mutating method calls (AppendTuple, AppendBatch, appendVal,
//     appendZero, Bitmap.Set);
//   - copy(dst, …) with a view-rooted destination;
//   - append(v.something, …) results assigned anywhere (append may
//     write in place when capacity allows).
//
// Batches a function builds itself (NewColumnBatch, composite literals)
// are its own to mutate and are never flagged.
package batchalias

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer is the batchalias analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "batchalias",
	Doc:  "flags writes through shared column-batch views (cache corruption)",
	Run:  run,
}

// viewSources are functions whose ColumnBatch results are shared with
// other consumers and must not be written through.
var viewSources = map[string]bool{
	"columnBatch":    true,
	"DumpBatch":      true,
	"DumpBatchWhere": true,
}

// mutators are method names that write into a batch or column vector.
var mutators = map[string]bool{
	"AppendTuple": true,
	"AppendBatch": true,
	"appendVal":   true,
	"appendZero":  true,
	"Set":         true,
	"Reset":       true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	views := map[types.Object]bool{}

	// Pass 1: collect view variables, including aliases of views.
	// Iterate to a fixed point so `cols := view.Cols` after
	// `view := t.columnBatch()` is caught regardless of order (Go
	// requires def-before-use in a function body, so two rounds
	// would do; fixed point is cheap and simpler to reason about).
	for {
		added := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range as.Rhs {
				var lhs ast.Expr
				switch {
				case len(as.Rhs) == len(as.Lhs):
					lhs = as.Lhs[i]
				case len(as.Rhs) == 1:
					lhs = as.Lhs[0] // v, ok := …; only first result is the batch
				default:
					continue
				}
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := objOf(info, id)
				if obj == nil || views[obj] {
					continue
				}
				if isViewExpr(info, views, rhs) {
					views[obj] = true
					added = true
				}
			}
			return true
		})
		if !added {
			break
		}
	}

	// Pass 2: flag writes through views.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if rootsInView(info, views, lhs) && !isBareIdent(lhs) {
					pass.Reportf(lhs.Pos(),
						"write through shared column-batch view %s corrupts the per-version column cache for every other reader",
						viewName(lhs))
				}
			}
			// append(view.Cols[i].Ints, …) may write the shared backing
			// array in place before growing.
			for _, rhs := range n.Rhs {
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok &&
					analysis.CalleeName(call) == "append" && len(call.Args) > 0 {
					if rootsInView(info, views, call.Args[0]) {
						pass.Reportf(call.Pos(),
							"append to a slice of shared column-batch view %s may write the cached backing array in place",
							viewName(call.Args[0]))
					}
				}
			}
		case *ast.IncDecStmt:
			if rootsInView(info, views, n.X) {
				pass.Reportf(n.X.Pos(),
					"write through shared column-batch view %s corrupts the per-version column cache for every other reader",
					viewName(n.X))
			}
		case *ast.CallExpr:
			name := analysis.CalleeName(n)
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && mutators[name] {
				if rootsInView(info, views, sel.X) {
					pass.Reportf(n.Pos(),
						"mutating call %s on shared column-batch view %s (consumers must copy before modifying)",
						name, viewName(sel.X))
				}
			}
			if name == "copy" && len(n.Args) == 2 && rootsInView(info, views, n.Args[0]) {
				pass.Reportf(n.Pos(),
					"copy into shared column-batch view %s overwrites the cached backing array",
					viewName(n.Args[0]))
			}
		}
		return true
	})
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// isViewExpr reports whether e yields a shared batch view: a call to a
// view source returning a ColumnBatch, or an expression rooted at an
// existing view variable (alias).
func isViewExpr(info *types.Info, views map[types.Object]bool, e ast.Expr) bool {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		if viewSources[analysis.CalleeName(call)] && returnsBatch(info, call) {
			return true
		}
		return false
	}
	if id := analysis.RootIdent(e); id != nil {
		if obj := objOf(info, id); obj != nil && views[obj] {
			// Only propagate aliases that still reference batch
			// internals (slices, vectors, the batch itself); a copied
			// scalar like v.Len is not a view.
			return aliasesBatchData(info, e)
		}
	}
	return false
}

// returnsBatch reports whether the call's (first) result is a
// ColumnBatch-ish named type.
func returnsBatch(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if tuple, ok := t.(*types.Tuple); ok {
		if tuple.Len() == 0 {
			return false
		}
		t = tuple.At(0).Type()
	}
	return strings.Contains(analysis.NamedTypeName(t), "ColumnBatch")
}

// aliasesBatchData reports whether e's type still lets the holder reach
// shared storage: pointers, slices, and the batch/vector structs.
func aliasesBatchData(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Struct:
		return true
	}
	return false
}

// rootsInView reports whether the expression is rooted at a view
// variable.
func rootsInView(info *types.Info, views map[types.Object]bool, e ast.Expr) bool {
	id := analysis.RootIdent(e)
	if id == nil {
		return false
	}
	obj := objOf(info, id)
	return obj != nil && views[obj]
}

// isBareIdent reports whether the LHS is just the variable itself —
// rebinding `v = something` is fine; only writes *through* v are not.
func isBareIdent(e ast.Expr) bool {
	_, ok := ast.Unparen(e).(*ast.Ident)
	return ok
}

func viewName(e ast.Expr) string {
	if id := analysis.RootIdent(e); id != nil {
		return id.Name
	}
	return "<view>"
}
