// Package spanend enforces the trace-span lifecycle: every span opened
// by trace.Start, trace.New, or (*trace.Span).StartChild must be ended
// on every path out of the function that opened it. An unended span
// stays open in the trace forever — Trace.OpenSpans never reaches zero,
// EXPLAIN ANALYZE renders the stage as "(open)", and the cancellation
// tests that pin "no orphan spans" go flaky instead of failing the
// culprit.
//
// A span is considered handled when one of these holds:
//
//  1. Its End is deferred — `defer sp.End()` or inside a deferred
//     closure. Always safe.
//  2. It escapes the function: returned, passed to another call
//     (ownership transfer, the finishCast shape), assigned to a
//     non-blank location, or sent on a channel.
//  3. A plain sp.End() call dominates the function exit, approximated
//     lexically: the End statement lives in the span's own block or an
//     ancestor of it, no return statement sits between the two, and no
//     loop or function literal intervenes (a span opened per-iteration
//     must be ended per-iteration).
//
// Discarding the span — `ctx, _ := trace.Start(...)` or an
// expression-statement StartChild — is flagged outright: a span nobody
// holds can never be ended. Tests that deliberately leave a span open
// (e.g. rendering the "(open)" marker) suppress with
// //lint:ignore spanend <reason>.
package spanend

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer is the spanend analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "spanend",
	Doc:  "flags trace spans that are not ended on every path out of their function",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Each function literal is its own scope: a span opened in a
			// goroutine closure must be ended in (or escape) that closure.
			checkScope(pass, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					checkScope(pass, fl.Body)
				}
				return true
			})
		}
	}
	return nil
}

// tracked is one span-typed local opened in the scope under analysis.
type tracked struct {
	obj      types.Object
	declStmt ast.Node     // the assignment that opened the span
	declPath []ast.Node   // ancestor chain of declStmt, outermost first
	kind     string       // "trace.Start", "trace.New", "StartChild"
	handled  bool         // deferred End, or escaped
	ends     [][]ast.Node // ancestor chains of non-deferred End statements
}

func checkScope(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	vars := map[types.Object]*tracked{}

	// Pass 1: creation sites. Nested function literals are pruned — they
	// are scopes of their own.
	analysis.WalkStack(body, func(n ast.Node, stack []ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && fl.Body != body {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			kind, idx := creationKind(info, call, len(n.Lhs))
			if kind == "" {
				return true
			}
			id, ok := n.Lhs[idx].(*ast.Ident)
			if !ok {
				return true
			}
			if id.Name == "_" {
				pass.Reportf(n.Pos(),
					"the span opened by %s is discarded: it can never be ended and stays open in the trace", kind)
				return true
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj == nil {
				return true
			}
			vars[obj] = &tracked{
				obj: obj, declStmt: n, kind: kind,
				declPath: append(append([]ast.Node(nil), stack...), n),
			}
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
				if kind, _ := creationKind(info, call, 0); kind != "" {
					pass.Reportf(n.Pos(),
						"the span opened by %s is discarded: it can never be ended and stays open in the trace", kind)
				}
			}
		}
		return true
	})

	if len(vars) == 0 {
		return
	}

	// Pass 2: End calls and escapes, across the whole scope including
	// nested literals (a deferred closure may carry the End).
	analysis.WalkStack(body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if t := endReceiver(info, n, vars); t != nil {
				if isDeferred(stack) {
					t.handled = true
				} else {
					t.ends = append(t.ends, append(append([]ast.Node(nil), stack...), n))
				}
				return true
			}
			for _, arg := range n.Args {
				markMentioned(info, arg, vars)
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				markMentioned(info, res, vars)
			}
		case *ast.SendStmt:
			markMentioned(info, n.Value, vars)
		case *ast.AssignStmt:
			// Aliasing or storing the span transfers ownership; assigning
			// it to the blank identifier does not.
			allBlank := true
			for _, l := range n.Lhs {
				if id, ok := l.(*ast.Ident); !ok || id.Name != "_" {
					allBlank = false
				}
			}
			if !allBlank {
				for _, rhs := range n.Rhs {
					if _, isCall := ast.Unparen(rhs).(*ast.CallExpr); isCall {
						continue // creation site, or args already handled
					}
					markMentioned(info, rhs, vars)
				}
			}
		}
		return true
	})

	for _, t := range vars {
		if t.handled {
			continue
		}
		ok := false
		for _, end := range t.ends {
			if endDominates(t, end) {
				ok = true
				break
			}
		}
		if !ok {
			pass.Reportf(t.declStmt.Pos(),
				"span %s opened by %s is not ended on every path out of this function (defer %s.End(), or End it before every return)",
				t.obj.Name(), t.kind, t.obj.Name())
		}
	}
}

// creationKind classifies a call that opens a span and returns which
// result index holds it: trace.Start / trace.New return (ctx, span),
// (*Span).StartChild returns the span alone. nlhs is the number of
// assignment targets (0 for an expression statement, where any span
// result is discarded).
func creationKind(info *types.Info, call *ast.CallExpr, nlhs int) (string, int) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", 0
	}
	switch sel.Sel.Name {
	case "Start", "New":
		if x, ok := sel.X.(*ast.Ident); ok && isTracePkg(info, x) {
			if nlhs == 0 || nlhs == 2 {
				return "trace." + sel.Sel.Name, 1
			}
		}
	case "StartChild":
		if tv, ok := info.Types[sel.X]; ok && analysis.NamedTypeName(tv.Type) == "Span" {
			if nlhs == 0 || nlhs == 1 {
				return "StartChild", 0
			}
		}
	}
	return "", 0
}

func isTracePkg(info *types.Info, id *ast.Ident) bool {
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Name() == "trace"
	}
	return id.Name == "trace"
}

// endReceiver returns the tracked span a call ends, or nil: the call
// must be <span>.End() on a tracked identifier.
func endReceiver(info *types.Info, call *ast.CallExpr, vars map[types.Object]*tracked) *tracked {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return nil
	}
	id := analysis.RootIdent(sel.X)
	if id == nil {
		return nil
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	return vars[obj]
}

// markMentioned marks every tracked span mentioned in e as handled
// (escaped: some other code now owns ending it).
func markMentioned(info *types.Info, e ast.Expr, vars map[types.Object]*tracked) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				if t, ok := vars[obj]; ok {
					t.handled = true
				}
			}
		}
		return true
	})
}

// endDominates approximates "this End runs before every exit": the End
// statement's innermost block must be the span's own block or an
// ancestor of it, reached without crossing a loop or function literal,
// and no return statement may sit between the opening assignment and
// the End within that block.
func endDominates(t *tracked, endPath []ast.Node) bool {
	endBlock, endStmt := innermostBlock(endPath)
	if endBlock == nil {
		return false
	}
	// Locate endBlock in the span's ancestor chain.
	j := -1
	for i, n := range t.declPath {
		if n == endBlock {
			j = i
			break
		}
	}
	if j < 0 {
		return false
	}
	// The statement of endBlock that leads to the span's declaration.
	var declStmt ast.Stmt
	if j+1 < len(t.declPath) {
		declStmt, _ = t.declPath[j+1].(ast.Stmt)
	}
	if declStmt == nil {
		return false
	}
	// No loop or function literal between the End's block and the span:
	// a per-iteration or per-closure span must be ended at its own depth.
	for _, n := range t.declPath[j+1:] {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
			return false
		}
	}
	list := stmtList(endBlock)
	iS, iE := -1, -1
	for i, s := range list {
		if s == declStmt {
			iS = i
		}
		if s == endStmt {
			iE = i
		}
	}
	if iS < 0 || iE < 0 || iE <= iS {
		return false
	}
	// A return between the opening and the End exits with the span open.
	for _, s := range list[iS+1 : iE] {
		if containsReturn(s) {
			return false
		}
	}
	return true
}

// stmtList returns the statement list a container node holds. Blocks,
// switch cases and select clauses all count — a span opened and ended
// inside one case body is as straight-line as inside a block.
func stmtList(n ast.Node) []ast.Stmt {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List
	case *ast.CaseClause:
		return n.Body
	case *ast.CommClause:
		return n.Body
	}
	return nil
}

// innermostBlock returns the deepest statement-list container on the
// path and the statement within it that the path descends through.
func innermostBlock(path []ast.Node) (ast.Node, ast.Stmt) {
	for i := len(path) - 1; i >= 0; i-- {
		if stmtList(path[i]) == nil {
			continue
		}
		if i+1 < len(path) {
			if s, ok := path[i+1].(ast.Stmt); ok {
				return path[i], s
			}
		}
		return path[i], nil
	}
	return nil, nil
}

// containsReturn reports whether the statement contains a return at
// this function's level (function literals are their own functions).
func containsReturn(s ast.Stmt) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			found = true
		}
		return !found
	})
	return found
}

// isDeferred reports whether the innermost enclosing statement chain
// defers the call: `defer sp.End()` directly, or an End inside a
// closure that is itself the operand of a defer.
func isDeferred(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.DeferStmt:
			return true
		case *ast.FuncLit:
			// The literal's ancestors are the deferred CallExpr and then
			// the DeferStmt itself: defer func(){ ... }().
			for _, up := range []int{i - 1, i - 2} {
				if up < 0 {
					break
				}
				if d, ok := stack[up].(*ast.DeferStmt); ok {
					if fl, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok && fl == n {
						return true
					}
				}
			}
			return false
		}
	}
	return false
}
