package spanend_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/spanend"
)

func TestSpanend(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), spanend.Analyzer, "spanend")
}
