// Package trace is a fixture-local stand-in for the polystore's
// internal/trace package: same names and result shapes, no stdlib
// imports (the analysistest harness resolves imports only under
// testdata/src). The analyzer matches on the package name "trace", the
// Span type name, and the Start/New/StartChild/End method names.
package trace

// Ctx stands in for context.Context.
type Ctx struct{}

// Span is the fixture span.
type Span struct{}

// New opens a root span.
func New(ctx Ctx, name string) (Ctx, *Span) { return ctx, &Span{} }

// Start opens a child span on the context.
func Start(ctx Ctx, name string) (Ctx, *Span) { return ctx, &Span{} }

// FromContext returns the context's span.
func FromContext(ctx Ctx) *Span { return &Span{} }

// StartChild opens a child span directly.
func (s *Span) StartChild(name string) *Span { return &Span{} }

// End closes the span.
func (s *Span) End() {}

// SetInt annotates the span.
func (s *Span) SetInt(key string, v int64) {}

// SetStr annotates the span.
func (s *Span) SetStr(key, v string) {}
