// Fixtures for the spanend analyzer, shaped after the real
// instrumentation sites in internal/core: deferred root spans,
// straight-line stage spans, per-attempt loop spans, encoder goroutine
// spans, and ownership transfers into a finishing helper.
package spanend

import "trace"

func work()                 {}
func cond() bool            { return true }
func finish(sp *trace.Span) {}

// The QueryCtx root shape: open, defer End.
func okDeferredEnd(ctx trace.Ctx) {
	ctx, sp := trace.Start(ctx, "query")
	defer sp.End()
	_ = ctx
	work()
}

// The parse/plan stage shape: open, run the stage, End, then branch.
func okStraightLineEnd(ctx trace.Ctx, fail bool) bool {
	_, sp := trace.Start(ctx, "parse")
	work()
	sp.End()
	if fail {
		return false
	}
	return true
}

// The attempt shape: annotations may be conditional, the End is not.
func okAnnotatedThenEnded(ctx trace.Ctx, failed bool) {
	_, sp := trace.Start(ctx, "attempt")
	if failed {
		sp.SetStr("error", "boom")
	}
	sp.End()
}

// The benchmark shape: opened conditionally, ended in the outer block.
func okEndInAncestorBlock(ctx trace.Ctx, traced bool) {
	var sp *trace.Span
	if traced {
		ctx, sp = trace.New(ctx, "bench")
	}
	work()
	sp.End()
	_ = ctx
}

// A deferred closure carrying the End is as good as a direct defer.
func okDeferredClosureEnd(ctx trace.Ctx) {
	_, sp := trace.Start(ctx, "cast")
	defer func() { sp.End() }()
	work()
}

// The encoder-goroutine shape: the closure is its own scope and ends
// its span before signalling.
func okGoroutineChild(parent *trace.Span, done chan bool) {
	go func() {
		enc := parent.StartChild("encode")
		work()
		enc.End()
		done <- true
	}()
}

// Returning the span hands the caller the obligation to End it.
func okEscapesReturn(parent *trace.Span) *trace.Span {
	sp := parent.StartChild("child")
	return sp
}

// Passing the span to another call transfers ownership — the
// finishCast shape.
func okEscapesIntoCall(ctx trace.Ctx) {
	_, sp := trace.Start(ctx, "cast")
	work()
	finish(sp)
}

// The transport-switch shape: a span opened and ended inside one
// switch case body is as straight-line as inside a block.
func okEndInSwitchCase(ctx trace.Ctx, mode int) bool {
	switch mode {
	case 0:
		_, sp := trace.Start(ctx, "wire")
		work()
		sp.End()
		return true
	default:
		return false
	}
}

// Discarding the span is unconditionally wrong: nobody can End it.
func badBlankSpan(ctx trace.Ctx) trace.Ctx {
	ctx2, _ := trace.Start(ctx, "query") // want `span opened by trace.Start is discarded`
	return ctx2
}

func badDiscardedChild(parent *trace.Span) {
	parent.StartChild("leaked") // want `span opened by StartChild is discarded`
}

// No End anywhere.
func badNeverEnded(ctx trace.Ctx) {
	_, sp := trace.Start(ctx, "query") // want `span sp opened by trace.Start is not ended on every path`
	_ = sp
	work()
}

// End only on one branch: the other exit leaves the span open.
func badConditionalEnd(ctx trace.Ctx) {
	_, sp := trace.Start(ctx, "plan") // want `span sp opened by trace.Start is not ended on every path`
	work()
	if cond() {
		sp.End()
	}
}

// The orphan-span bug class this analyzer exists for: an early return
// between the open and the End.
func badEarlyReturnBetween(ctx trace.Ctx, fail bool) bool {
	_, sp := trace.Start(ctx, "parse") // want `span sp opened by trace.Start is not ended on every path`
	if fail {
		return false
	}
	sp.End()
	return true
}

// A span opened per-iteration must be ended per-iteration: one End
// after the loop closes only the last span.
func badLoopEndOutside(ctx trace.Ctx) {
	var sp *trace.Span
	for i := 0; i < 3; i++ {
		_, sp = trace.Start(ctx, "attempt") // want `span sp opened by trace.Start is not ended on every path`
	}
	sp.End()
}

// An End captured by a non-deferred goroutine closure gives no ordering
// guarantee: the function can return (and the trace render) first.
func badEndInGoroutine(ctx trace.Ctx, done chan bool) {
	_, sp := trace.Start(ctx, "wire") // want `span sp opened by trace.Start is not ended on every path`
	go func() {
		sp.End()
		done <- true
	}()
}

// Deliberately open spans (the render test's "(open)" marker) suppress.
func okSuppressedOpenSpan(parent *trace.Span) {
	//lint:ignore spanend render test needs a deliberately open span
	parent.StartChild("open")
}
