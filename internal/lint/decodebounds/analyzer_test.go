package decodebounds_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/decodebounds"
)

func TestDecodebounds(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), decodebounds.Analyzer, "decodebounds")
}
