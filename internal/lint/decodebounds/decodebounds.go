// Package decodebounds audits binary decode paths: any slice index,
// sub-slice, or allocation size derived from a wire-supplied length
// (binary.Uint16/Uint32/Uint64, Uvarint/Varint, ReadByte) must be
// dominated by an explicit bounds comparison before it touches the
// payload. A missing check turns a truncated or hostile frame into a
// panic (index out of range) or an attacker-chosen allocation
// (make([]byte, n) with n from the wire).
//
// The analysis is per-function taint tracking:
//
//   - seeds: results of wire-read calls (Uint16/Uint32/Uint64/Uvarint/
//     Varint/ReadByte by name) and variables assigned from them;
//   - propagation: through arithmetic, conversions, and plain
//     assignments — but NOT through other function calls: a call
//     boundary is treated as a sanitizer, because helpers (clamps,
//     caps) exist precisely to launder a wire value into a safe one;
//   - guards: a comparison that mentions the tainted value and a
//     len()/cap() call sanitizes it for indexing; a comparison against
//     a constant (n > maxStringLen) sanitizes it for allocation sizing
//     only — a cap bounds how much you allocate, not where you read;
//   - sinks: payload[i], payload[a:b] with a tainted component, and
//     make(..., n) with a tainted size.
//
// Only files whose base name starts with "binary" are audited (the
// codec layout in internal/engine, plus fixtures); the rest of the repo
// does arithmetic on lengths that never came off a wire.
package decodebounds

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer is the decodebounds analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "decodebounds",
	Doc:  "flags wire-length-derived indexes and allocations not dominated by a bounds check",
	Run:  run,
}

// wireReads are call names whose results are wire-controlled.
var wireReads = map[string]bool{
	"Uint16":   true,
	"Uint32":   true,
	"Uint64":   true,
	"Uvarint":  true,
	"Varint":   true,
	"ReadByte": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		name := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		if !strings.HasPrefix(name, "binary") {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil
}

// taintInfo tracks one tainted variable: where the wire value entered
// it and the positions of the comparisons that sanitize it, if any.
type taintInfo struct {
	taintPos   token.Pos // where the wire value entered the variable
	lenGuard   token.Pos // comparison involving len()/cap(), or NoPos
	constGuard token.Pos // comparison against a constant, or NoPos
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	taint := map[types.Object]*taintInfo{}

	// Sequential walk in source order. The decode routines in this repo
	// are straight-line with early-return guards, so lexical dominance
	// (guard position < sink position) is the right approximation: an
	// `if off+n > len(p) { return err }` guard both precedes the access
	// and terminates the bad path.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			handleAssign(info, taint, n)
		case *ast.IfStmt:
			recordGuards(info, taint, n.Cond)
		case *ast.ForStmt:
			if n.Cond != nil {
				recordGuards(info, taint, n.Cond)
			}
		case *ast.IndexExpr:
			checkIndexSink(pass, taint, n)
		case *ast.SliceExpr:
			checkSliceSink(pass, taint, n)
		case *ast.CallExpr:
			checkMakeSink(pass, info, taint, n)
		}
		return true
	})
}

// handleAssign seeds and propagates taint through assignments.
func handleAssign(info *types.Info, taint map[types.Object]*taintInfo, as *ast.AssignStmt) {
	// n, off := binary.Uvarint(p[off:]) — multi-result seeding: every
	// integer result of a wire read is tainted.
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok && wireReads[analysis.CalleeName(call)] {
			for _, lhs := range as.Lhs {
				seedLHS(info, taint, lhs, call.Pos())
			}
			return
		}
	}
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) {
			break
		}
		lhs := as.Lhs[i]
		if carriesTaint(info, taint, rhs) {
			seedLHS(info, taint, lhs, rhs.Pos())
		} else if as.Tok == token.ASSIGN || as.Tok == token.DEFINE {
			// Overwriting with a clean value clears prior taint
			// (compound ops like += keep the variable's own state).
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := objOf(info, id); obj != nil {
					delete(taint, obj)
				}
			}
		}
	}
}

func seedLHS(info *types.Info, taint map[types.Object]*taintInfo, lhs ast.Expr, pos token.Pos) {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	if obj := objOf(info, id); obj != nil {
		taint[obj] = &taintInfo{taintPos: pos, lenGuard: token.NoPos, constGuard: token.NoPos}
	}
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// carriesTaint reports whether evaluating e yields a value still
// carrying unguarded wire taint. Calls other than wire reads and type
// conversions act as sanitizers.
func carriesTaint(info *types.Info, taint map[types.Object]*taintInfo, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if wireReads[analysis.CalleeName(n)] {
				found = true
				return false
			}
			// Conversions propagate the operand's taint; real calls
			// sanitize (do not descend into their arguments).
			return isConversion(info, n)
		case *ast.Ident:
			if obj := objOf(info, n); obj != nil {
				if t, ok := taint[obj]; ok && t.lenGuard == token.NoPos {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// isConversion reports whether call is a type conversion like int(n).
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		_, ok := info.Uses[fun].(*types.TypeName)
		return ok
	case *ast.SelectorExpr:
		_, ok := info.Uses[fun.Sel].(*types.TypeName)
		return ok
	case *ast.ArrayType, *ast.MapType, *ast.StarExpr:
		return true
	}
	return false
}

// recordGuards scans a condition for bounds comparisons and marks the
// tainted variables they mention as guarded from that position on.
func recordGuards(info *types.Info, taint map[types.Object]*taintInfo, cond ast.Expr) {
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		default:
			return true // &&, || — keep descending
		}
		hasLen := mentionsLenOrCap(be)
		hasConst := comparesConstant(info, be)
		if !hasLen && !hasConst {
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			markGuarded(info, taint, side, be.Pos(), hasLen, hasConst)
		}
		return true
	})
}

func mentionsLenOrCap(be *ast.BinaryExpr) bool {
	has := false
	ast.Inspect(be, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			name := analysis.CalleeName(call)
			if name == "len" || name == "cap" {
				has = true
			}
		}
		return !has
	})
	return has
}

func comparesConstant(info *types.Info, be *ast.BinaryExpr) bool {
	for _, side := range []ast.Expr{be.X, be.Y} {
		if tv, ok := info.Types[side]; ok && tv.Value != nil {
			return true
		}
	}
	return false
}

func markGuarded(info *types.Info, taint map[types.Object]*taintInfo, e ast.Expr, pos token.Pos, asLen, asConst bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := objOf(info, id); obj != nil {
				if t, ok := taint[obj]; ok {
					if asLen {
						t.lenGuard = pos
					}
					if asConst {
						t.constGuard = pos
					}
				}
			}
		}
		return true
	})
}

// guardKind selects which sanitizer a sink accepts.
type guardKind int

const (
	needLen   guardKind = iota // index/slice sinks: must relate to len()
	anyBound                   // make sinks: a constant cap is enough
)

// unguardedTaintIn returns the first variable in e that is tainted and
// not sanitized (per kind) before sinkPos, or a placeholder object for
// an inline wire read; nil if e is clean.
func unguardedTaintIn(info *types.Info, taint map[types.Object]*taintInfo, e ast.Expr, sinkPos token.Pos, kind guardKind) types.Object {
	var found types.Object
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if wireReads[analysis.CalleeName(n)] {
				// A wire read used directly in a sink is always unguarded.
				found = inlineWireRead
				return false
			}
			return isConversion(info, n)
		case *ast.Ident:
			if obj := objOf(info, n); obj != nil {
				if t, ok := taint[obj]; ok && !sanitized(t, sinkPos, kind) {
					found = obj
				}
			}
		}
		return found == nil
	})
	return found
}

func sanitized(t *taintInfo, sinkPos token.Pos, kind guardKind) bool {
	if t.lenGuard != token.NoPos && t.lenGuard < sinkPos {
		return true
	}
	if kind == anyBound && t.constGuard != token.NoPos && t.constGuard < sinkPos {
		return true
	}
	return false
}

// inlineWireRead stands in for "an anonymous wire read used inline".
var inlineWireRead types.Object = types.NewVar(token.NoPos, nil, "an inline wire read", types.Typ[types.Int])

func isByteSliceOrString(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.Underlying().(type) {
	case *types.Slice:
		b, ok := t.Elem().Underlying().(*types.Basic)
		return ok && b.Kind() == types.Byte
	case *types.Basic:
		return t.Info()&types.IsString != 0
	}
	return false
}

func checkIndexSink(pass *analysis.Pass, taint map[types.Object]*taintInfo, ie *ast.IndexExpr) {
	if !isByteSliceOrString(pass.TypesInfo, ie.X) {
		return
	}
	if obj := unguardedTaintIn(pass.TypesInfo, taint, ie.Index, ie.Pos(), needLen); obj != nil {
		pass.Reportf(ie.Pos(),
			"index derived from wire-supplied length %s is not dominated by a bounds check against len()",
			obj.Name())
	}
}

func checkSliceSink(pass *analysis.Pass, taint map[types.Object]*taintInfo, se *ast.SliceExpr) {
	if !isByteSliceOrString(pass.TypesInfo, se.X) {
		return
	}
	for _, idx := range []ast.Expr{se.Low, se.High, se.Max} {
		if idx == nil {
			continue
		}
		if obj := unguardedTaintIn(pass.TypesInfo, taint, idx, se.Pos(), needLen); obj != nil {
			pass.Reportf(se.Pos(),
				"sub-slice bound derived from wire-supplied length %s is not dominated by a bounds check against len()",
				obj.Name())
			return
		}
	}
}

func checkMakeSink(pass *analysis.Pass, info *types.Info, taint map[types.Object]*taintInfo, call *ast.CallExpr) {
	if analysis.CalleeName(call) != "make" || len(call.Args) < 2 {
		return
	}
	for _, size := range call.Args[1:] {
		if obj := unguardedTaintIn(info, taint, size, call.Pos(), anyBound); obj != nil {
			pass.Reportf(call.Pos(),
				"allocation sized by wire-supplied length %s without a preceding bound (attacker-chosen allocation)",
				obj.Name())
			return
		}
	}
}
