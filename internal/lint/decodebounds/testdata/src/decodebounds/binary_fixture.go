// Fixtures for the decodebounds analyzer. The file name starts with
// "binary" on purpose: the analyzer audits only codec files. Local
// stand-ins replace encoding/binary; the analyzer seeds taint by call
// name (Uint32/Uvarint/...), not by import path.
package decodebounds

const maxStringLen = 1 << 20

func Uint32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func Uvarint(b []byte) (uint64, int) { return uint64(b[0]), 1 }

// The v2 frame-header overread: the header's declared payload length is
// trusted and sliced with, so a frame truncated after the header (or a
// hostile length) panics the decoder.
func badHeaderOverread(frame []byte) []byte {
	n := Uint32(frame)
	return frame[4 : 4+int(n)] // want `sub-slice bound derived from wire-supplied length n`
}

func okHeaderGuarded(frame []byte) []byte {
	n := Uint32(frame)
	if 4+int(n) > len(frame) {
		return nil
	}
	return frame[4 : 4+int(n)]
}

func badIndexFromWire(frame []byte) byte {
	off, _ := Uvarint(frame)
	return frame[off] // want `index derived from wire-supplied length off`
}

func okIndexGuarded(frame []byte) byte {
	off, _ := Uvarint(frame)
	if off >= uint64(len(frame)) {
		return 0
	}
	return frame[off]
}

// Allocation sized straight from the wire: a hostile frame makes the
// decoder allocate gigabytes before any data is read.
func badAllocFromWire(frame []byte) []byte {
	n := Uint32(frame)
	return make([]byte, n) // want `allocation sized by wire-supplied length n`
}

// A constant cap is enough to bound an allocation (but would not be
// enough to bound an index into the payload).
func okAllocCapped(frame []byte) []byte {
	n := Uint32(frame)
	if n > maxStringLen {
		return nil
	}
	return make([]byte, n)
}

// Taint survives arithmetic and conversions.
func badDerivedOffset(frame []byte) []byte {
	n := Uint32(frame)
	end := 4 + int(n)*8
	return frame[4:end] // want `sub-slice bound derived from wire-supplied length end`
}

func clamp16(n int) int {
	if n > 16 {
		return 16
	}
	return n
}

// A call boundary launders the value: helpers exist to clamp
// wire-supplied lengths, and the analyzer trusts them.
func okSanitizedByHelper(frame []byte) byte {
	n := Uint32(frame)
	m := clamp16(int(n))
	return frame[m]
}

func okSuppressed(frame []byte) []byte {
	n := Uint32(frame)
	//lint:ignore decodebounds fixture: caller has already verified the frame length
	return frame[4 : 4+int(n)]
}
