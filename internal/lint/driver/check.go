package driver

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"runtime"

	"repro/internal/lint/analysis"
)

// Check type-checks one package's parsed files with the given importer
// and returns the package plus the filled-in types.Info the analyzers
// consume. goVersion may be "" (toolchain default).
func Check(fset *token.FileSet, path string, files []*ast.File, imp types.Importer, goVersion string) (*types.Package, *types.Info, error) {
	info := analysis.NewInfo()
	goarch := os.Getenv("GOARCH")
	if goarch == "" {
		goarch = runtime.GOARCH
	}
	var firstErr error
	conf := types.Config{
		Importer:  imp,
		GoVersion: goVersion,
		Sizes:     types.SizesFor("gc", goarch),
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, err := conf.Check(path, fset, files, info)
	if firstErr != nil {
		err = firstErr
	}
	if err != nil {
		return pkg, info, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return pkg, info, nil
}

// ParseFiles parses the named Go source files with comments (required
// for //lint:ignore suppressions).
func ParseFiles(fset *token.FileSet, filenames []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parseFile(fset, name)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func parseFile(fset *token.FileSet, name string) (*ast.File, error) {
	return parser.ParseFile(fset, name, nil, parser.ParseComments)
}
