// Package driver runs bigdawg-vet analyzers over one type-checked
// package and applies //lint:ignore suppressions. Both front ends — the
// go vet -vettool unitchecker and the analysistest fixture harness —
// funnel through Run, so suppression semantics cannot drift between CI
// and the analyzer tests.
package driver

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime/debug"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// Finding is one resolved diagnostic.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// Target is one package ready for analysis.
type Target struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	IsStd func(path string) bool
}

// Run applies every analyzer to the target, filters suppressed
// diagnostics, and returns the surviving findings sorted by position.
func Run(t *Target, analyzers []*analysis.Analyzer) ([]Finding, error) {
	sup := suppressions(t.Fset, t.Files)
	isStd := t.IsStd
	if isStd == nil {
		isStd = func(string) bool { return false }
	}
	var findings []Finding
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      t.Fset,
			Files:     t.Files,
			Pkg:       t.Pkg,
			TypesInfo: t.Info,
			IsStd:     isStd,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			pos := t.Fset.Position(d.Pos)
			if sup.covers(name, pos) {
				return
			}
			findings = append(findings, Finding{Analyzer: name, Pos: pos, Message: d.Message})
		}
		if err := runProtected(a, pass); err != nil {
			return findings, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}

func runProtected(a *analysis.Analyzer, pass *analysis.Pass) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
		}
	}()
	return a.Run(pass)
}

// suppressionIndex records //lint:ignore directives: a directive on
// line L of a file suppresses matching diagnostics reported on line L
// (trailing comment) or line L+1 (comment above the flagged line).
//
//	//lint:ignore lockheld send is to a buffered, never-closed channel
//	//lint:ignore errdrop,templeak best-effort cleanup
//	//lint:ignore * generated code
type suppressionIndex map[string]map[int][]string

func (s suppressionIndex) covers(analyzer string, pos token.Position) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range lines[line] {
			if name == "*" || name == analyzer {
				return true
			}
		}
	}
	return false
}

func suppressions(fset *token.FileSet, files []*ast.File) suppressionIndex {
	idx := suppressionIndex{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				m := idx[pos.Filename]
				if m == nil {
					m = map[int][]string{}
					idx[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], strings.Split(fields[0], ",")...)
			}
		}
	}
	return idx
}
