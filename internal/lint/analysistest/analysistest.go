// Package analysistest runs an analyzer over golden fixture packages,
// mirroring golang.org/x/tools/go/analysis/analysistest: fixture source
// lives under <analyzer>/testdata/src/<pkgpath>/, and every line that
// should be flagged carries a trailing
//
//	// want "regexp"
//
// comment (several quoted regexps if several diagnostics land on the
// line). The test fails if a diagnostic has no matching want, or a want
// has no matching diagnostic.
//
// Fixtures are type-checked from source with a fixture-local importer:
// an import of "foo/bar" resolves to testdata/src/foo/bar. Standard
// library imports are deliberately unsupported — offline containers
// have no export data for std at test time, so fixtures declare local
// stand-ins (a Mutex type, a binary-decode helper) instead. The
// analyzers duck-type on names for exactly this reason.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/driver"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run applies the analyzer to each fixture package (paths relative to
// testdata/src) and checks diagnostics against // want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	imp := &fixtureImporter{
		srcRoot: filepath.Join(testdata, "src"),
		fset:    token.NewFileSet(),
		pkgs:    map[string]*pkgResult{},
	}
	for _, path := range pkgPaths {
		res, err := imp.load(path)
		if err != nil {
			t.Fatalf("fixture %s: %v", path, err)
		}
		target := &driver.Target{
			Fset:  imp.fset,
			Files: res.files,
			Pkg:   res.pkg,
			Info:  res.info,
			IsStd: func(string) bool { return false },
		}
		findings, err := driver.Run(target, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("fixture %s: %v", path, err)
		}
		checkWants(t, imp.fset, res.files, findings)
	}
}

type pkgResult struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// fixtureImporter type-checks fixture packages from source, resolving
// imports under testdata/src.
type fixtureImporter struct {
	srcRoot string
	fset    *token.FileSet
	pkgs    map[string]*pkgResult
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	res, err := fi.load(path)
	if err != nil {
		return nil, err
	}
	return res.pkg, nil
}

func (fi *fixtureImporter) load(path string) (*pkgResult, error) {
	if res, ok := fi.pkgs[path]; ok {
		return res, nil
	}
	dir := filepath.Join(fi.srcRoot, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var filenames []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			filenames = append(filenames, filepath.Join(dir, e.Name()))
		}
	}
	if len(filenames) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	files, err := driver.ParseFiles(fi.fset, filenames)
	if err != nil {
		return nil, err
	}
	pkg, info, err := driver.Check(fi.fset, path, files, fi, "")
	if err != nil {
		return nil, err
	}
	res := &pkgResult{files: files, pkg: pkg, info: info}
	fi.pkgs[path] = res
	return res, nil
}

// want is one expectation: a regexp that must match a diagnostic
// reported on its line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, findings []driver.Finding) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				patterns, err := parsePatterns(text)
				if err != nil {
					t.Fatalf("%s: bad want comment: %v", pos, err)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, p, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	for _, fd := range findings {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == fd.Pos.Filename && w.line == fd.Pos.Line && w.re.MatchString(fd.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", fd)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// parsePatterns extracts the sequence of quoted (double-quote or
// backquote) regexps from a want comment body.
func parsePatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated %q", s)
			}
			p, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, err
			}
			out = append(out, p)
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated %q", s)
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[end+2:])
		default:
			return nil, fmt.Errorf("expected quoted regexp at %q", s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no patterns")
	}
	return out, nil
}
