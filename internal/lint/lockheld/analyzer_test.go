package lockheld_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/lockheld"
)

func TestLockheld(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockheld.Analyzer, "lockheld")
}
