// Package lockheld flags work performed while a mutex is held that can
// block indefinitely or re-enter another island's locks:
//
//   - a call into a *different* island package (core, relational,
//     array, kvstore, stream, tiledb, monitor, myria, d4m) — island
//     packages take their own locks, so holding one island's lock
//     across a call into another is lock-ordering (deadlock) fuel for
//     the concurrent server the roadmap is building toward;
//   - a channel send (blocks until a receiver is ready);
//   - a write on an io.PipeWriter (blocks until the decoder reads).
//
// The analyzer tracks Lock/RLock…Unlock/RUnlock regions per function
// with a lexical, branch-aware walk: a branch that terminates (returns
// or breaks) keeps its lock-state changes to itself, a branch that
// falls through propagates them. defer mu.Unlock() leaves the lock held
// for the rest of the function, which is the point: everything after it
// runs under the lock.
//
// Mutexes are duck-typed by named type (contains "Mutex", or
// sync.Locker), so fixtures need no std imports. Calls through function
// values (trigger callbacks, eviction hooks) are deliberately not
// resolved: the stream island runs triggers inside its append critical
// section by design.
package lockheld

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer is the lockheld analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockheld",
	Doc:  "flags cross-island calls, channel sends, and pipe writes while a mutex is held",
	Run:  run,
}

// islandPkgs are the base names of packages that own engine/catalog
// locks. engine and scalar are shared leaf libraries with no
// cross-island calls, so calls into them while locked are fine.
var islandPkgs = map[string]bool{
	"core":       true,
	"relational": true,
	"array":      true,
	"kvstore":    true,
	"stream":     true,
	"tiledb":     true,
	"monitor":    true,
	"myria":      true,
	"d4m":        true,
}

func pkgBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				w := &walker{pass: pass}
				w.stmts(fd.Body.List, map[string]token.Pos{})
			}
		}
	}
	return nil
}

type walker struct {
	pass *analysis.Pass
}

// stmts walks a statement list with the current set of held locks,
// keyed by the mutex expression's source text ("p.mu").
func (w *walker) stmts(list []ast.Stmt, held map[string]token.Pos) {
	for _, s := range list {
		w.stmt(s, held)
	}
}

func (w *walker) stmt(s ast.Stmt, held map[string]token.Pos) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, kind := w.lockOp(call); kind != 0 {
				if kind == opLock {
					held[key] = call.Pos()
				} else {
					delete(held, key)
				}
				return
			}
		}
		w.checkExpr(s.X, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held until return; nothing
		// to update. Deferred bodies run at return, outside this walk.
	case *ast.SendStmt:
		w.reportHeld(held, s.Arrow, "channel send")
		w.checkExpr(s.Chan, held)
		w.checkExpr(s.Value, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.checkExpr(e, held)
		}
		for _, e := range s.Lhs {
			w.checkExpr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.checkExpr(e, held)
		}
	case *ast.IncDecStmt:
		w.checkExpr(s.X, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.checkExpr(e, held)
					}
				}
			}
		}
	case *ast.BlockStmt:
		w.stmts(s.List, held)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.checkExpr(s.Cond, held)
		w.branch(s.Body.List, held)
		if s.Else != nil {
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				w.branch(e.List, held)
			default:
				w.stmt(e, held)
			}
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.checkExpr(s.Cond, held)
		}
		w.loopBody(s.Body.List, held)
	case *ast.RangeStmt:
		w.checkExpr(s.X, held)
		w.loopBody(s.Body.List, held)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.checkExpr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.branch(cc.Body, held)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.branch(cc.Body, held)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			if send, ok := cc.Comm.(*ast.SendStmt); ok {
				w.reportHeld(held, send.Arrow, "channel send (select case)")
			}
			w.branch(cc.Body, held)
		}
	case *ast.GoStmt:
		// The goroutine body runs concurrently, not under this lock.
	}
}

// branch walks a conditional body on a copy of the lock state; changes
// propagate to the fallthrough path only if the branch does not
// terminate (so `if !ok { mu.Unlock(); return err }` leaves the lock
// held on the main path).
func (w *walker) branch(body []ast.Stmt, held map[string]token.Pos) {
	clone := cloneState(held)
	w.stmts(body, clone)
	if !terminates(body) {
		replaceState(held, clone)
	}
}

// loopBody walks a loop body on a throwaway copy of the state: locks
// taken inside one iteration are assumed released by iteration end, and
// intra-iteration sequences are still checked.
func (w *walker) loopBody(body []ast.Stmt, held map[string]token.Pos) {
	w.stmts(body, cloneState(held))
}

func cloneState(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func replaceState(dst, src map[string]token.Pos) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

// terminates reports whether a statement list definitely leaves the
// enclosing flow (return, branch, or panic as its last statement).
func terminates(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	switch last := body[len(body)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			name := analysis.CalleeName(call)
			return name == "panic" || name == "Fatal" || name == "Fatalf" || name == "Exit"
		}
	case *ast.BlockStmt:
		return terminates(last.List)
	}
	return false
}

type lockOpKind int

const (
	opNone lockOpKind = iota
	opLock
	opUnlock
)

// lockOp classifies mu.Lock()/mu.RLock()/mu.Unlock()/mu.RUnlock()
// calls on mutex-like receivers and returns the receiver's source text
// as the lock key.
func (w *walker) lockOp(call *ast.CallExpr) (string, lockOpKind) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return "", opNone
	}
	var kind lockOpKind
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = opLock
	case "Unlock", "RUnlock":
		kind = opUnlock
	default:
		return "", opNone
	}
	recv := w.pass.TypesInfo.Types[sel.X].Type
	name := analysis.NamedTypeName(recv)
	if !strings.Contains(name, "Mutex") && name != "Locker" {
		return "", opNone
	}
	return types.ExprString(sel.X), kind
}

// checkExpr inspects an expression evaluated while locks are held for
// blocking or cross-island calls. Function literals are skipped: their
// bodies run when called, which this lexical walk cannot place.
func (w *walker) checkExpr(e ast.Expr, held map[string]token.Pos) {
	if len(held) == 0 || e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			w.checkCall(n, held)
		}
		return true
	})
}

func (w *walker) checkCall(call *ast.CallExpr, held map[string]token.Pos) {
	// Pipe writes: blocking until the reader side drains.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if sel.Sel.Name == "Write" || sel.Sel.Name == "CloseWithError" {
			if analysis.NamedTypeName(w.pass.TypesInfo.Types[sel.X].Type) == "PipeWriter" {
				w.reportHeld(held, call.Pos(), "io.Pipe write")
				return
			}
		}
	}
	fn := analysis.Callee(w.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	calleePath := fn.Pkg().Path()
	if calleePath == w.pass.Pkg.Path() {
		return
	}
	if base := pkgBase(calleePath); islandPkgs[base] && base != pkgBase(w.pass.Pkg.Path()) {
		for key := range held {
			w.pass.Reportf(call.Pos(),
				"call into island package %s while %s is held (lock-ordering hazard across islands)",
				calleePath, key)
			return
		}
	}
}

func (w *walker) reportHeld(held map[string]token.Pos, pos token.Pos, what string) {
	for key := range held {
		w.pass.Reportf(pos, "%s while %s is held may block with the lock held", what, key)
		return
	}
}
