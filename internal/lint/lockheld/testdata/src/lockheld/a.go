// Fixtures for the lockheld analyzer. Local stand-ins replace sync and
// io so the fixture needs no standard library: the analyzer duck-types
// mutexes by type name and pipe writers by PipeWriter/Write.
package lockheld

import "kvstore"

type Mutex struct{ state int }

func (m *Mutex) Lock()   { m.state++ }
func (m *Mutex) Unlock() { m.state-- }

type RWMutex struct{ state int }

func (m *RWMutex) Lock()    { m.state++ }
func (m *RWMutex) Unlock()  { m.state-- }
func (m *RWMutex) RLock()   { m.state++ }
func (m *RWMutex) RUnlock() { m.state-- }

type PipeWriter struct{ n int }

func (w *PipeWriter) Write(p []byte) (int, error)  { return len(p), nil }
func (w *PipeWriter) CloseWithError(err error) error { return nil }

func badSend(mu *Mutex, ch chan int) {
	mu.Lock()
	ch <- 1 // want `channel send while mu is held`
	mu.Unlock()
}

func badSendUnderRLock(mu *RWMutex, ch chan int) {
	mu.RLock()
	ch <- 1 // want `channel send while mu is held`
	mu.RUnlock()
}

func badSendAfterDeferredUnlock(mu *Mutex, ch chan int) {
	mu.Lock()
	defer mu.Unlock()
	ch <- 1 // want `channel send while mu is held`
}

func badCrossIsland(mu *Mutex) string {
	mu.Lock()
	defer mu.Unlock()
	return kvstore.Get("x") // want `call into island package kvstore while mu is held`
}

func badPipeWrite(mu *Mutex, pw *PipeWriter) {
	mu.Lock()
	pw.Write(nil) // want `io.Pipe write while mu is held`
	mu.Unlock()
}

func badSelectSend(mu *Mutex, ch chan int) {
	mu.Lock()
	select {
	case ch <- 1: // want `channel send \(select case\) while mu is held`
	default:
	}
	mu.Unlock()
}

// The early-exit branch unlocks and returns, so the lock is still held
// on the fallthrough path — the send after the if must be flagged, and
// the return inside the branch must not be.
func badAfterBranchUnlock(mu *Mutex, ok bool, ch chan int) {
	mu.Lock()
	if !ok {
		mu.Unlock()
		return
	}
	ch <- 1 // want `channel send while mu is held`
	mu.Unlock()
}

// A branch that unlocks and falls through releases the lock for the
// rest of the function.
func okBranchUnlockFallsThrough(mu *Mutex, ok bool, ch chan int) {
	mu.Lock()
	if ok {
		mu.Unlock()
	} else {
		mu.Unlock()
	}
	ch <- 1
}

func okSendAfterUnlock(mu *Mutex, ch chan int) {
	mu.Lock()
	mu.Unlock()
	ch <- 1
}

// Function literals only capture the lock region lexically; their
// bodies run whenever they are invoked, so the analyzer skips them
// (this is how stream triggers legitimately run under the engine lock).
func okFuncLitBody(mu *Mutex, ch chan int) func() {
	mu.Lock()
	f := func() { ch <- 1 }
	mu.Unlock()
	return f
}

// Goroutine bodies run concurrently, not under the spawning lock.
func okGoStmt(mu *Mutex, ch chan int) {
	mu.Lock()
	go func() { ch <- 1 }()
	mu.Unlock()
}

func okSuppressed(mu *Mutex, ch chan int) {
	mu.Lock()
	//lint:ignore lockheld fixture: send to a buffered channel with reserved capacity cannot block
	ch <- 1
	mu.Unlock()
}
