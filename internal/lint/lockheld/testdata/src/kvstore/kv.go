// Package kvstore is a fixture stand-in for an island package: its
// path base name ("kvstore") is in the analyzer's island set, so calls
// into it while a lock is held must be flagged.
package kvstore

var store = map[string]string{}

// Get looks up a key (and, in the real island, takes the island's own
// lock to do it).
func Get(k string) string { return store[k] }
