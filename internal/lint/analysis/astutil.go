package analysis

import (
	"go/ast"
	"go/types"
)

// Callee resolves the *types.Func a call invokes, or nil for calls
// through function values, builtins, and type conversions.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	if fn, ok := info.Uses[id].(*types.Func); ok {
		return fn
	}
	return nil
}

// CalleeName returns the bare name of the called function or method,
// whether or not it resolves to a declared *types.Func ("" for type
// conversions and anonymous function values).
func CalleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// NamedTypeName returns the name of the named (or pointer-to-named)
// type underlying t, or "" if t never reaches a named type.
func NamedTypeName(t types.Type) string {
	for t != nil {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Alias:
			t = types.Unalias(tt)
		case *types.Named:
			return tt.Obj().Name()
		default:
			return ""
		}
	}
	return ""
}

// RootIdent peels selector, index, slice, star and paren wrappers off
// an expression and returns the identifier at its root, or nil (e.g.
// for call results or literals).
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// WalkStack walks the tree rooted at root, invoking fn with each node
// and the stack of its ancestors (outermost first, not including n).
// Returning false prunes the subtree.
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// MentionsObject reports whether expr contains an identifier resolving
// to obj.
func MentionsObject(info *types.Info, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
