// Package analysis is a minimal, dependency-free mirror of the
// golang.org/x/tools/go/analysis API: an Analyzer is a named check, a
// Pass hands it one type-checked package, and diagnostics are reported
// through the Pass. The container deliberately vendors no third-party
// modules, so bigdawg-vet builds its analyzers on this shim instead of
// x/tools; the shapes match closely enough that porting an analyzer
// between the two is mechanical.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore suppression comments. It must be a valid Go
	// identifier.
	Name string

	// Doc is the analyzer's documentation: first line is a one-line
	// summary, the rest describes the invariant it enforces.
	Doc string

	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass is one application of one analyzer to one package. It provides
// the syntax trees, type information and a diagnostic sink.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// IsStd reports whether an import path belongs to the Go standard
	// library. Under `go vet -vettool=` this comes from the vet config's
	// Standard map; the analysistest harness wires a constant false
	// (fixtures import only fixture-local packages).
	IsStd func(path string) bool

	// Report delivers one diagnostic. The driver applies //lint:ignore
	// suppressions after this returns, so analyzers just report.
	Report func(Diagnostic)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// NewInfo allocates a types.Info with every map analyzers rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
