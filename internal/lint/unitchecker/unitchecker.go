// Package unitchecker implements the `go vet -vettool=` driver
// protocol with only the standard library, mirroring
// golang.org/x/tools/go/analysis/unitchecker:
//
//  1. `tool -V=full` prints a version fingerprint for the go command's
//     build cache (the do-not-cache buildID keeps results fresh while
//     the tool itself is under development);
//  2. `tool -flags` prints the tool's flag definitions as JSON (the go
//     command queries this to validate user-supplied vet flags);
//  3. `tool <dir>/vet.cfg` analyzes one package: the go command has
//     already resolved the package graph and compiled every dependency,
//     and the JSON config names the source files, the import map, and
//     the export-data file for each dependency. The tool type-checks
//     the package against that export data, runs the analyzers, prints
//     findings to stderr, and exits 2 if there were any.
//
// Because the config's PackageFile map points at compiler export data
// in the build cache, the whole flow works offline and needs no
// third-party loader.
package unitchecker

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/driver"
)

// Config is the JSON schema of the go command's vet.cfg, trimmed to the
// fields this driver consumes. Unknown fields are ignored.
type Config struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoVersion   string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// Main runs the vettool protocol and does not return.
func Main(analyzers ...*analysis.Analyzer) {
	var cfgPath string
	for _, arg := range os.Args[1:] {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			// Exact handshake format the go command's buildid probe expects.
			fmt.Printf("%s version devel comments-go-here buildID=do-not-cache\n",
				filepath.Base(os.Args[0]))
			os.Exit(0)
		case arg == "-flags" || arg == "--flags":
			// No analyzer flags: report an empty flag set.
			fmt.Println("[]")
			os.Exit(0)
		case arg == "help" || arg == "-h" || arg == "--help":
			usage(analyzers)
			os.Exit(0)
		case strings.HasSuffix(arg, ".cfg"):
			cfgPath = arg
		}
	}
	if cfgPath == "" {
		usage(analyzers)
		os.Exit(1)
	}
	code, err := run(cfgPath, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bigdawg-vet: %v\n", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func usage(analyzers []*analysis.Analyzer) {
	fmt.Fprintf(os.Stderr, `bigdawg-vet: polystore invariant analyzers for this repository.

Usage (as a go vet tool):

  go build -o /tmp/bigdawg-vet ./cmd/bigdawg-vet
  go vet -vettool=/tmp/bigdawg-vet ./...

Analyzers:
`)
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, doc)
	}
	fmt.Fprintf(os.Stderr, "\nSuppress a finding with a //lint:ignore <analyzer> <reason> comment\non, or on the line above, the flagged line (see internal/lint/README.md).\n")
}

func run(cfgPath string, analyzers []*analysis.Analyzer) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 1, err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 1, fmt.Errorf("parse %s: %w", cfgPath, err)
	}

	// Facts output: this suite defines no facts, but the go command
	// expects the output file of the vet action to exist.
	writeVetx := func() error {
		if cfg.VetxOutput == "" {
			return nil
		}
		return os.WriteFile(cfg.VetxOutput, nil, 0o666)
	}
	if cfg.VetxOnly {
		// Dependency pass run only to produce facts — nothing to do.
		return 0, writeVetx()
	}

	fset := token.NewFileSet()
	files, err := driver.ParseFiles(fset, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, writeVetx()
		}
		return 1, err
	}
	pkg, info, err := driver.Check(fset, cfg.ImportPath, files, newImporter(fset, &cfg), cfg.GoVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, writeVetx()
		}
		return 1, err
	}

	target := &driver.Target{
		Fset:  fset,
		Files: files,
		Pkg:   pkg,
		Info:  info,
		IsStd: func(path string) bool { return cfg.Standard[path] },
	}
	findings, err := driver.Run(target, analyzers)
	if err != nil {
		return 1, err
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if err := writeVetx(); err != nil {
		return 1, err
	}
	if len(findings) > 0 {
		return 2, nil
	}
	return 0, nil
}

// newImporter resolves imports through the vet config: source import
// paths map through ImportMap (vendoring, test variants), then the
// resolved path's compiler export data is read from PackageFile.
func newImporter(fset *token.FileSet, cfg *Config) types.Importer {
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	underlying := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			path = importPath
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return underlying.Import(path)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
