// Package lint aggregates the bigdawg-vet analyzer suite: the
// project-specific static checks that keep the polystore's invariants
// (lock discipline across islands, temp-object lifecycle, wire-length
// bounds, batch-view immutability, error propagation) machine-checked
// instead of comment-enforced. See README.md in this directory.
package lint

import (
	"repro/internal/lint/analysis"
	"repro/internal/lint/batchalias"
	"repro/internal/lint/decodebounds"
	"repro/internal/lint/errdrop"
	"repro/internal/lint/lockheld"
	"repro/internal/lint/spanend"
	"repro/internal/lint/templeak"
)

// Analyzers returns the full suite in the order findings are
// conventionally triaged: concurrency first, then resource lifecycle,
// then memory safety, then data sharing, then error hygiene.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		lockheld.Analyzer,
		templeak.Analyzer,
		spanend.Analyzer,
		decodebounds.Analyzer,
		batchalias.Analyzer,
		errdrop.Analyzer,
	}
}
