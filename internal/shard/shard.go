// Package shard implements horizontal partitioning for the polystore
// federation: a Spec declares how a table's rows map to shards (hash or
// range on a declared key column), Split produces the per-shard
// partitions, and the merge helpers (Gather, Union, MergeAggregate)
// reassemble per-shard results into the relation an unsharded execution
// would have produced.
//
// Row order is load-bearing across the polystore — casting a relation
// into the array island synthesizes a row-number dimension from row
// position — so partitioning must be losslessly invertible, order
// included. Split therefore appends a hidden INT column, GposColumn,
// holding each row's global position in the original relation; Gather
// sorts the reassembled rows by it and strips it, restoring the exact
// original order. The column is an implementation detail of the shard
// layer: coordinators fetch it explicitly and never let it escape into
// query results.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"repro/internal/engine"
)

// GposColumn is the hidden global-row-position column Split appends to
// every partition (always the last column). It exists so merges can
// restore the original global row order; user-visible schemas never
// include it.
const GposColumn = "__gpos"

// Strategy names a partitioning function.
type Strategy int

const (
	// Hash assigns a row to shard fnv1a(key) % Shards.
	Hash Strategy = iota
	// Range assigns a row to the first shard whose upper bound exceeds
	// the key (engine.Compare order); keys ≥ the last bound go to the
	// last shard.
	Range
)

func (s Strategy) String() string {
	switch s {
	case Hash:
		return "hash"
	case Range:
		return "range"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Spec declares how one table is partitioned: the strategy, the key
// column it partitions on, and the shard count. Range specs carry
// Shards-1 ascending split points.
type Spec struct {
	Strategy Strategy
	Key      string
	Shards   int
	// Bounds are the Range split points: row r goes to the first shard i
	// with Compare(key(r), Bounds[i]) < 0, else to shard len(Bounds).
	// Ignored for Hash.
	Bounds []engine.Value
}

// HashSpec declares hash partitioning on key across n shards.
func HashSpec(key string, n int) Spec {
	return Spec{Strategy: Hash, Key: key, Shards: n}
}

// RangeSpec declares range partitioning on key with the given ascending
// split points; the shard count is len(bounds)+1.
func RangeSpec(key string, bounds ...engine.Value) Spec {
	return Spec{Strategy: Range, Key: key, Shards: len(bounds) + 1, Bounds: bounds}
}

// Validate checks the spec is internally consistent.
func (s Spec) Validate() error {
	if s.Key == "" {
		return fmt.Errorf("shard: spec has no key column")
	}
	if s.Shards <= 0 {
		return fmt.Errorf("shard: spec has %d shards", s.Shards)
	}
	switch s.Strategy {
	case Hash:
		return nil
	case Range:
		if len(s.Bounds) != s.Shards-1 {
			return fmt.Errorf("shard: range spec with %d shards needs %d bounds, got %d",
				s.Shards, s.Shards-1, len(s.Bounds))
		}
		for i := 1; i < len(s.Bounds); i++ {
			if engine.Compare(s.Bounds[i-1], s.Bounds[i]) > 0 {
				return fmt.Errorf("shard: range bounds not ascending at %d", i)
			}
		}
		return nil
	default:
		return fmt.Errorf("shard: unknown strategy %v", s.Strategy)
	}
}

// Assign maps one key value to its shard index. NULL keys go to shard 0
// (both strategies), so every row has a home.
func (s Spec) Assign(v engine.Value) int {
	if v.IsNull() {
		return 0
	}
	switch s.Strategy {
	case Range:
		for i, b := range s.Bounds {
			if engine.Compare(v, b) < 0 {
				return i
			}
		}
		return s.Shards - 1
	default:
		h := fnv.New32a()
		_, _ = h.Write([]byte(canonValue(v)))
		return int(h.Sum32() % uint32(s.Shards))
	}
}

// canonValue renders a value as a kind-tagged canonical key, so Int 1,
// Float 1.0 and String "1" hash and group distinctly — mirroring the
// relational executor's grouping equality.
func canonValue(v engine.Value) string {
	switch v.Kind {
	case engine.TypeInt:
		return "i" + strconv.FormatInt(v.I, 10)
	case engine.TypeFloat:
		return "f" + strconv.FormatFloat(v.F, 'g', -1, 64)
	case engine.TypeString:
		return "s" + v.S
	case engine.TypeBool:
		if v.B {
			return "bt"
		}
		return "bf"
	default:
		return "n"
	}
}

// Split partitions a relation per the spec. Each partition carries the
// original schema plus the trailing GposColumn recording the row's
// global position, so any merge can restore the exact original order.
// Row slices are shared with the input (tuples are not deep-copied);
// the appended position cell lives in a fresh tuple per row.
func Split(rel *engine.Relation, spec Spec) ([]*engine.Relation, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	keyIdx := rel.Schema.Index(spec.Key)
	if keyIdx < 0 {
		return nil, fmt.Errorf("shard: key column %q not in schema %v", spec.Key, rel.Schema.Names())
	}
	if rel.Schema.Index(GposColumn) >= 0 {
		return nil, fmt.Errorf("shard: relation already carries %s", GposColumn)
	}
	cols := append(append([]engine.Column{}, rel.Schema.Columns...), engine.Col(GposColumn, engine.TypeInt))
	parts := make([]*engine.Relation, spec.Shards)
	for i := range parts {
		parts[i] = engine.NewRelation(engine.Schema{Columns: cols})
	}
	for pos, t := range rel.Tuples {
		dst := spec.Assign(t[keyIdx])
		row := make(engine.Tuple, 0, len(t)+1)
		row = append(append(row, t...), engine.NewInt(int64(pos)))
		parts[dst].Tuples = append(parts[dst].Tuples, row)
	}
	return parts, nil
}

// Union concatenates per-shard results with identical schemas, in shard
// order. It is the merge for scattered queries whose output order is
// restored separately (or does not matter).
func Union(parts []*engine.Relation) (*engine.Relation, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("shard: union of zero parts")
	}
	out := engine.NewRelation(parts[0].Schema)
	for i, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("shard: union part %d is nil", i)
		}
		if !p.Schema.Equal(parts[0].Schema) {
			return nil, fmt.Errorf("shard: union schema mismatch: shard 0 %s vs shard %d %s",
				parts[0].Schema, i, p.Schema)
		}
		out.Tuples = append(out.Tuples, p.Tuples...)
	}
	return out, nil
}

// UnionBatches is Union over columnar batches: per-shard ColumnBatch
// streams append into one batch without a row-at-a-time detour.
func UnionBatches(parts []*engine.ColumnBatch) (*engine.ColumnBatch, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("shard: union of zero batches")
	}
	total := 0
	for _, p := range parts {
		if p != nil {
			total += p.NumRows
		}
	}
	out := engine.NewColumnBatch(parts[0].Schema, total)
	for i, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("shard: union batch %d is nil", i)
		}
		if err := out.AppendBatch(p); err != nil {
			return nil, fmt.Errorf("shard: union batch %d: %w", i, err)
		}
	}
	return out, nil
}

// Gather reassembles full-partition fetches into the original relation:
// union, sort by the trailing GposColumn, strip it. The result is
// byte-identical (schema, rows, order) to the relation Split was given.
func Gather(parts []*engine.Relation) (*engine.Relation, error) {
	u, err := Union(parts)
	if err != nil {
		return nil, err
	}
	n := len(u.Schema.Columns)
	if n == 0 || !strings.EqualFold(u.Schema.Columns[n-1].Name, GposColumn) {
		return nil, fmt.Errorf("shard: gather input lacks trailing %s column (schema %s)", GposColumn, u.Schema)
	}
	sort.Slice(u.Tuples, func(i, j int) bool {
		return u.Tuples[i][n-1].I < u.Tuples[j][n-1].I
	})
	out := engine.NewRelation(engine.Schema{Columns: append([]engine.Column{}, u.Schema.Columns[:n-1]...)})
	out.Tuples = make([]engine.Tuple, len(u.Tuples))
	for i, t := range u.Tuples {
		out.Tuples[i] = t[:n-1]
	}
	return out, nil
}

// MergeOp names how one output column of a scattered aggregate query
// folds across shards.
type MergeOp int

const (
	// MergeKey marks a group-key column: constant within a group.
	MergeKey MergeOp = iota
	// MergeCount sums per-shard COUNT partials.
	MergeCount
	// MergeSum sums per-shard SUM partials, skipping NULL (empty-shard)
	// partials; all-NULL folds to NULL. The merged value stays INT only
	// while every partial is INT — matching the executor's SUM typing
	// for columns of uniform kind.
	MergeSum
	// MergeMin keeps the smallest non-NULL partial.
	MergeMin
	// MergeMax keeps the largest non-NULL partial.
	MergeMax
)

// MergeAggregate folds per-shard partial-aggregate results into the
// global result. The first keyCols columns of every part are group
// keys; ops (one per remaining column) say how the rest fold. Groups
// missing from a shard (no qualifying rows there) simply contribute
// nothing. With keyCols == 0 every part must carry exactly one row (the
// implicit single group) and the output is that single merged row.
//
// Output rows appear in first-encountered order across parts in shard
// order; callers that need the unsharded execution's order carry an
// ordering aggregate (e.g. MIN of GposColumn) and sort by it.
func MergeAggregate(parts []*engine.Relation, keyCols int, ops []MergeOp) (*engine.Relation, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("shard: merge of zero parts")
	}
	width := len(parts[0].Schema.Columns)
	if keyCols < 0 || keyCols+len(ops) != width {
		return nil, fmt.Errorf("shard: merge shape mismatch: %d key cols + %d ops != %d columns",
			keyCols, len(ops), width)
	}
	groups := map[string]*mergeGroup{}
	var order []string
	for i, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("shard: merge part %d is nil", i)
		}
		if !p.Schema.Equal(parts[0].Schema) {
			return nil, fmt.Errorf("shard: merge schema mismatch: shard 0 %s vs shard %d %s",
				parts[0].Schema, i, p.Schema)
		}
		if keyCols == 0 && p.Len() != 1 {
			return nil, fmt.Errorf("shard: global-aggregate part %d has %d rows, want 1", i, p.Len())
		}
		for _, t := range p.Tuples {
			var kb strings.Builder
			for _, v := range t[:keyCols] {
				kb.WriteString(canonValue(v))
				kb.WriteByte('\x1f')
			}
			k := kb.String()
			g, ok := groups[k]
			if !ok {
				g = &mergeGroup{row: t.Clone(), sumIsInt: make([]bool, len(ops))}
				for j, op := range ops {
					if op == MergeSum {
						g.sumIsInt[j] = t[keyCols+j].Kind == engine.TypeInt
					}
				}
				groups[k] = g
				order = append(order, k)
				continue
			}
			for j, op := range ops {
				if err := g.fold(j, keyCols+j, op, t[keyCols+j]); err != nil {
					return nil, err
				}
			}
		}
	}
	out := engine.NewRelation(parts[0].Schema)
	for _, k := range order {
		out.Tuples = append(out.Tuples, groups[k].row)
	}
	return out, nil
}

// mergeGroup accumulates one output group across shards. sumIsInt
// tracks, per op, whether every SUM partial folded so far was INT — the
// condition for the merged SUM to stay INT.
type mergeGroup struct {
	row      engine.Tuple
	sumIsInt []bool
}

func (g *mergeGroup) fold(j, c int, op MergeOp, v engine.Value) error {
	cur := g.row[c]
	switch op {
	case MergeKey:
		return nil
	case MergeCount:
		if cur.Kind != engine.TypeInt || v.Kind != engine.TypeInt {
			return fmt.Errorf("shard: COUNT partial is not INT (%v, %v)", cur.Kind, v.Kind)
		}
		g.row[c] = engine.NewInt(cur.I + v.I)
		return nil
	case MergeSum:
		if v.IsNull() {
			return nil
		}
		if cur.IsNull() {
			g.row[c] = v
			g.sumIsInt[j] = v.Kind == engine.TypeInt
			return nil
		}
		if g.sumIsInt[j] && v.Kind == engine.TypeInt {
			g.row[c] = engine.NewInt(cur.I + v.I)
			return nil
		}
		g.sumIsInt[j] = false
		g.row[c] = engine.NewFloat(cur.AsFloat() + v.AsFloat())
		return nil
	case MergeMin:
		if v.IsNull() {
			return nil
		}
		if cur.IsNull() || engine.Compare(v, cur) < 0 {
			g.row[c] = v
		}
		return nil
	case MergeMax:
		if v.IsNull() {
			return nil
		}
		if cur.IsNull() || engine.Compare(v, cur) > 0 {
			g.row[c] = v
		}
		return nil
	default:
		return fmt.Errorf("shard: unknown merge op %d", op)
	}
}
