package shard

import (
	"fmt"
	"testing"

	"repro/internal/engine"
)

func testRelation(rows int) *engine.Relation {
	rel := engine.NewRelation(engine.NewSchema(
		engine.Col("k", engine.TypeInt),
		engine.Col("v", engine.TypeFloat),
		engine.Col("s", engine.TypeString),
	))
	for i := 0; i < rows; i++ {
		s := engine.NewString(fmt.Sprintf("s%d", i%5))
		if i%7 == 0 {
			s = engine.Null
		}
		_ = rel.Append(engine.Tuple{
			engine.NewInt(int64(i * 3 % 17)),
			engine.NewFloat(float64(i) / 2),
			s,
		})
	}
	return rel
}

func relEqual(a, b *engine.Relation) error {
	if !a.Schema.Equal(b.Schema) {
		return fmt.Errorf("schema %s != %s", a.Schema, b.Schema)
	}
	if a.Len() != b.Len() {
		return fmt.Errorf("cardinality %d != %d", a.Len(), b.Len())
	}
	for i := range a.Tuples {
		for j := range a.Tuples[i] {
			av, bv := a.Tuples[i][j], b.Tuples[i][j]
			if av.Kind != bv.Kind || engine.Compare(av, bv) != 0 {
				return fmt.Errorf("row %d col %d: %v != %v", i, j, av, bv)
			}
		}
	}
	return nil
}

// Split then Gather must be the identity, order included, for both
// strategies and any shard count.
func TestSplitGatherRoundTrip(t *testing.T) {
	rel := testRelation(57)
	specs := []Spec{
		HashSpec("k", 1),
		HashSpec("k", 2),
		HashSpec("k", 4),
		HashSpec("s", 3), // string key with NULLs
		RangeSpec("k", engine.NewInt(5), engine.NewInt(11)),
		RangeSpec("v", engine.NewFloat(9)),
	}
	for _, spec := range specs {
		t.Run(fmt.Sprintf("%v-%s-%d", spec.Strategy, spec.Key, spec.Shards), func(t *testing.T) {
			parts, err := Split(rel, spec)
			if err != nil {
				t.Fatal(err)
			}
			if len(parts) != spec.Shards {
				t.Fatalf("got %d parts, want %d", len(parts), spec.Shards)
			}
			total := 0
			for _, p := range parts {
				total += p.Len()
			}
			if total != rel.Len() {
				t.Fatalf("parts hold %d rows, want %d", total, rel.Len())
			}
			back, err := Gather(parts)
			if err != nil {
				t.Fatal(err)
			}
			if err := relEqual(rel, back); err != nil {
				t.Fatalf("round trip not identity: %v", err)
			}
		})
	}
}

// Gather must restore order even when parts arrive permuted (shards
// answer in any order).
func TestGatherPermutedParts(t *testing.T) {
	rel := testRelation(20)
	parts, err := Split(rel, HashSpec("k", 3))
	if err != nil {
		t.Fatal(err)
	}
	parts[0], parts[2] = parts[2], parts[0]
	back, err := Gather(parts)
	if err != nil {
		t.Fatal(err)
	}
	if err := relEqual(rel, back); err != nil {
		t.Fatalf("permuted gather: %v", err)
	}
}

func TestAssignDeterministicAndInRange(t *testing.T) {
	spec := HashSpec("k", 4)
	vals := []engine.Value{
		engine.NewInt(0), engine.NewInt(-3), engine.NewFloat(1.5),
		engine.NewString("oak"), engine.NewBool(true), engine.Null,
	}
	for _, v := range vals {
		a, b := spec.Assign(v), spec.Assign(v)
		if a != b {
			t.Fatalf("assign not deterministic for %v: %d vs %d", v, a, b)
		}
		if a < 0 || a >= spec.Shards {
			t.Fatalf("assign out of range for %v: %d", v, a)
		}
	}
	// Kind-tagged hashing: Int 1 and Float 1.0 need not collide, but
	// NULL always lands on shard 0.
	if got := spec.Assign(engine.Null); got != 0 {
		t.Fatalf("NULL assigned to shard %d, want 0", got)
	}
}

func TestRangeAssign(t *testing.T) {
	spec := RangeSpec("k", engine.NewInt(10), engine.NewInt(20))
	cases := []struct {
		v    engine.Value
		want int
	}{
		{engine.NewInt(-5), 0},
		{engine.NewInt(9), 0},
		{engine.NewInt(10), 1},
		{engine.NewInt(19), 1},
		{engine.NewInt(20), 2},
		{engine.NewInt(1000), 2},
		{engine.Null, 0},
	}
	for _, c := range cases {
		if got := spec.Assign(c.v); got != c.want {
			t.Fatalf("assign(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{},                                     // no key
		{Key: "k", Shards: 0},                  // no shards
		{Key: "k", Shards: 3, Strategy: Range}, // missing bounds
		{Key: "k", Shards: 2, Strategy: Range,
			Bounds: []engine.Value{engine.NewInt(1), engine.NewInt(0)}}, // wrong count
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("case %d: bad spec validated", i)
		}
	}
	if err := RangeSpec("k", engine.NewInt(3), engine.NewInt(1)).Validate(); err == nil {
		t.Fatal("descending bounds validated")
	}
	if err := HashSpec("k", 4).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSplitRejectsBadInput(t *testing.T) {
	rel := testRelation(4)
	if _, err := Split(rel, HashSpec("nope", 2)); err == nil {
		t.Fatal("unknown key column accepted")
	}
	parts, err := Split(rel, HashSpec("k", 2))
	if err != nil {
		t.Fatal(err)
	}
	// A partition already carries __gpos; re-splitting one must refuse.
	if _, err := Split(parts[0], HashSpec("k", 2)); err == nil {
		t.Fatal("double split accepted")
	}
}

func TestUnionSchemaMismatch(t *testing.T) {
	a := engine.NewRelation(engine.NewSchema(engine.Col("a", engine.TypeInt)))
	b := engine.NewRelation(engine.NewSchema(engine.Col("b", engine.TypeInt)))
	if _, err := Union([]*engine.Relation{a, b}); err == nil {
		t.Fatal("union of mismatched schemas accepted")
	}
}

func TestUnionBatches(t *testing.T) {
	rel := testRelation(30)
	parts, err := Split(rel, HashSpec("k", 3))
	if err != nil {
		t.Fatal(err)
	}
	batches := make([]*engine.ColumnBatch, len(parts))
	for i, p := range parts {
		batches[i] = engine.BatchFromRelation(p)
	}
	merged, err := UnionBatches(batches)
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumRows != rel.Len() {
		t.Fatalf("merged batch has %d rows, want %d", merged.NumRows, rel.Len())
	}
	back, err := Gather([]*engine.Relation{merged.ToRelation()})
	if err != nil {
		t.Fatal(err)
	}
	if err := relEqual(rel, back); err != nil {
		t.Fatalf("batch union gather: %v", err)
	}
}

// Merge of partial aggregates: COUNT sums, SUM skips NULL partials and
// keeps INT typing only while all partials are INT, MIN/MAX compare.
func TestMergeAggregateGlobal(t *testing.T) {
	mk := func(count int64, sum, min, max engine.Value) *engine.Relation {
		rel := engine.NewRelation(engine.NewSchema(
			engine.Col("n", engine.TypeInt), engine.Col("s", engine.TypeInt),
			engine.Col("lo", engine.TypeInt), engine.Col("hi", engine.TypeInt)))
		_ = rel.Append(engine.Tuple{engine.NewInt(count), sum, min, max})
		return rel
	}
	parts := []*engine.Relation{
		mk(3, engine.NewInt(6), engine.NewInt(1), engine.NewInt(3)),
		mk(0, engine.Null, engine.Null, engine.Null), // empty shard
		mk(2, engine.NewInt(9), engine.NewInt(4), engine.NewInt(5)),
	}
	out, err := MergeAggregate(parts, 0, []MergeOp{MergeCount, MergeSum, MergeMin, MergeMax})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("got %d rows, want 1", out.Len())
	}
	row := out.Tuples[0]
	if row[0].I != 5 || row[1].Kind != engine.TypeInt || row[1].I != 15 || row[2].I != 1 || row[3].I != 5 {
		t.Fatalf("bad merged row: %v", row)
	}

	// Any FLOAT partial demotes the merged SUM to FLOAT.
	parts[2].Tuples[0][1] = engine.NewFloat(9.5)
	out, err = MergeAggregate(parts, 0, []MergeOp{MergeCount, MergeSum, MergeMin, MergeMax})
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Tuples[0][1]; got.Kind != engine.TypeFloat || got.F != 15.5 {
		t.Fatalf("merged float sum: %v", got)
	}

	// All-NULL partials fold to NULL.
	parts = []*engine.Relation{
		mk(0, engine.Null, engine.Null, engine.Null),
		mk(0, engine.Null, engine.Null, engine.Null),
	}
	out, err = MergeAggregate(parts, 0, []MergeOp{MergeCount, MergeSum, MergeMin, MergeMax})
	if err != nil {
		t.Fatal(err)
	}
	row = out.Tuples[0]
	if row[0].I != 0 || !row[1].IsNull() || !row[2].IsNull() || !row[3].IsNull() {
		t.Fatalf("all-empty merge: %v", row)
	}
}

func TestMergeAggregateGrouped(t *testing.T) {
	mk := func(rows ...[3]int64) *engine.Relation {
		rel := engine.NewRelation(engine.NewSchema(
			engine.Col("g", engine.TypeInt), engine.Col("n", engine.TypeInt),
			engine.Col("s", engine.TypeInt)))
		for _, r := range rows {
			_ = rel.Append(engine.Tuple{engine.NewInt(r[0]), engine.NewInt(r[1]), engine.NewInt(r[2])})
		}
		return rel
	}
	parts := []*engine.Relation{
		mk([3]int64{1, 2, 10}, [3]int64{2, 1, 5}),
		mk([3]int64{2, 3, 7}, [3]int64{3, 1, 1}),
	}
	out, err := MergeAggregate(parts, 1, []MergeOp{MergeCount, MergeSum})
	if err != nil {
		t.Fatal(err)
	}
	got := map[int64][2]int64{}
	for _, r := range out.Tuples {
		got[r[0].I] = [2]int64{r[1].I, r[2].I}
	}
	want := map[int64][2]int64{1: {2, 10}, 2: {4, 12}, 3: {1, 1}}
	if len(got) != len(want) {
		t.Fatalf("got %d groups, want %d: %v", len(got), len(want), got)
	}
	for g, w := range want {
		if got[g] != w {
			t.Fatalf("group %d: got %v, want %v", g, got[g], w)
		}
	}
}

// Kind-tagged grouping: Int 1 and Float 1.0 are distinct groups, as in
// the relational executor.
func TestMergeAggregateKindTaggedKeys(t *testing.T) {
	rel := engine.NewRelation(engine.NewSchema(
		engine.Col("g", engine.TypeFloat), engine.Col("n", engine.TypeInt)))
	_ = rel.Append(engine.Tuple{engine.NewInt(1), engine.NewInt(2)})
	_ = rel.Append(engine.Tuple{engine.NewFloat(1), engine.NewInt(3)})
	out, err := MergeAggregate([]*engine.Relation{rel}, 1, []MergeOp{MergeCount})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("Int 1 and Float 1.0 merged into %d groups, want 2", out.Len())
	}
}

func TestMergeAggregateShapeErrors(t *testing.T) {
	rel := engine.NewRelation(engine.NewSchema(engine.Col("n", engine.TypeInt)))
	_ = rel.Append(engine.Tuple{engine.NewInt(1)})
	_ = rel.Append(engine.Tuple{engine.NewInt(2)})
	// keyCols 0 demands exactly one row per part.
	if _, err := MergeAggregate([]*engine.Relation{rel}, 0, []MergeOp{MergeCount}); err == nil {
		t.Fatal("two-row global aggregate part accepted")
	}
	if _, err := MergeAggregate([]*engine.Relation{rel}, 1, []MergeOp{MergeCount}); err == nil {
		t.Fatal("ops wider than schema accepted")
	}
	if _, err := MergeAggregate(nil, 0, nil); err == nil {
		t.Fatal("zero parts accepted")
	}
}
