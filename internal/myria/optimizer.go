package myria

import (
	"strings"

	"repro/internal/relational"
)

// Optimize applies rule-based rewrites until a fixpoint:
//
//  1. selection fusion:     select[p](select[q](x)) → select[p AND q](x)
//  2. selection pushdown through joins: a predicate referencing only
//     one side's columns moves below the join, shrinking the join
//     input — the classic rewrite Myria's optimizer performs.
//  3. selection pushdown through unions and distinct.
//
// The rewrites are semantics-preserving; TestOptimizePreservesResults
// verifies equivalence and TestOptimizeReducesWork verifies the win.
func Optimize(p Plan) Plan {
	for i := 0; i < 10; i++ {
		np, changed := rewrite(p)
		p = np
		if !changed {
			break
		}
	}
	return p
}

func rewrite(p Plan) (Plan, bool) {
	switch node := p.(type) {
	case Select:
		child, changed := rewrite(node.Child)
		node.Child = child
		switch c := node.Child.(type) {
		case Select:
			return Select{Child: c.Child, Pred: "(" + c.Pred + ") AND (" + node.Pred + ")"}, true
		case Join:
			cols, ok := predColumns(node.Pred)
			if !ok {
				return node, changed
			}
			if sideHasAll(c.Left, cols) {
				c.Left = Select{Child: c.Left, Pred: node.Pred}
				return c, true
			}
			if sideHasAll(c.Right, cols) {
				c.Right = Select{Child: c.Right, Pred: node.Pred}
				return c, true
			}
			return node, changed
		case Union:
			c.Left = Select{Child: c.Left, Pred: node.Pred}
			c.Right = Select{Child: c.Right, Pred: node.Pred}
			return c, true
		case Distinct:
			c.Child = Select{Child: c.Child, Pred: node.Pred}
			return c, true
		default:
			return node, changed
		}
	case Project:
		child, changed := rewrite(node.Child)
		node.Child = child
		return node, changed
	case Join:
		l, lc := rewrite(node.Left)
		r, rc := rewrite(node.Right)
		node.Left, node.Right = l, r
		return node, lc || rc
	case GroupBy:
		child, changed := rewrite(node.Child)
		node.Child = child
		return node, changed
	case Distinct:
		child, changed := rewrite(node.Child)
		node.Child = child
		return node, changed
	case Union:
		l, lc := rewrite(node.Left)
		r, rc := rewrite(node.Right)
		node.Left, node.Right = l, r
		return node, lc || rc
	case Iterate:
		init, ic := rewrite(node.Init)
		body, bc := rewrite(node.Body)
		node.Init, node.Body = init, body
		return node, ic || bc
	default:
		return p, false
	}
}

// predColumns extracts the column names referenced by a predicate;
// ok=false if the predicate cannot be parsed.
func predColumns(pred string) (map[string]bool, bool) {
	expr, err := relational.ParseExpression(pred)
	if err != nil {
		return nil, false
	}
	cols := map[string]bool{}
	collectCols(expr, cols)
	return cols, true
}

func collectCols(e relational.Expr, out map[string]bool) {
	switch ex := e.(type) {
	case relational.ColumnRef:
		out[strings.ToLower(ex.Name)] = true
	case relational.BinaryExpr:
		collectCols(ex.Left, out)
		collectCols(ex.Right, out)
	case relational.UnaryExpr:
		collectCols(ex.Expr, out)
	case relational.FuncCall:
		for _, a := range ex.Args {
			collectCols(a, out)
		}
	case relational.InExpr:
		collectCols(ex.Expr, out)
		for _, a := range ex.List {
			collectCols(a, out)
		}
	case relational.IsNullExpr:
		collectCols(ex.Expr, out)
	case relational.BetweenExpr:
		collectCols(ex.Expr, out)
		collectCols(ex.Lo, out)
		collectCols(ex.Hi, out)
	}
}

// sideHasAll reports whether every referenced column is produced by the
// plan side, judged from its static output columns. Unknown producers
// (Scan) report false because their schema isn't known until execution
// — pushdown below a Scan is unnecessary anyway.
func sideHasAll(p Plan, cols map[string]bool) bool {
	out, ok := outputColumns(p)
	if !ok {
		return false
	}
	for c := range cols {
		if !out[c] {
			return false
		}
	}
	return true
}

// outputColumns statically derives a plan's output column set where
// possible.
func outputColumns(p Plan) (map[string]bool, bool) {
	switch node := p.(type) {
	case Project:
		out := map[string]bool{}
		for _, c := range node.Cols {
			out[strings.ToLower(c)] = true
		}
		return out, true
	case Select:
		return outputColumns(node.Child)
	case Distinct:
		return outputColumns(node.Child)
	case GroupBy:
		out := map[string]bool{}
		for _, k := range node.Keys {
			out[strings.ToLower(k)] = true
		}
		for _, a := range node.Aggs {
			name := a.As
			if name == "" {
				name = strings.ToLower(a.Kind) + "_" + a.Col
			}
			out[strings.ToLower(name)] = true
		}
		return out, true
	case Join:
		l, lok := outputColumns(node.Left)
		r, rok := outputColumns(node.Right)
		if !lok || !rok {
			return nil, false
		}
		for c := range r {
			l[c] = true
		}
		return l, true
	default:
		return nil, false
	}
}
