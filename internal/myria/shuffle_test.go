package myria

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/engine"
)

// canonRows renders a relation order-insensitively (sorted row lines).
func canonRows(rel *engine.Relation) string {
	lines := make([]string, rel.Len())
	for i, t := range rel.Tuples {
		var sb strings.Builder
		for _, v := range t {
			fmt.Fprintf(&sb, "%d:%s\x1f", v.Kind, v.String())
		}
		lines[i] = sb.String()
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// bigSrc builds a larger join workload than src(t), with NULL keys on
// both sides to pin the skip-NULL join semantics through the shuffle.
func bigSrc() MapSource {
	left := engine.NewRelation(engine.NewSchema(
		engine.Col("k", engine.TypeInt), engine.Col("lv", engine.TypeString)))
	right := engine.NewRelation(engine.NewSchema(
		engine.Col("k", engine.TypeInt), engine.Col("rv", engine.TypeInt)))
	for i := 0; i < 200; i++ {
		lk := engine.NewInt(int64(i % 37))
		if i%19 == 0 {
			lk = engine.Null
		}
		_ = left.Append(engine.Tuple{lk, engine.NewString(fmt.Sprintf("l%d", i))})
		rk := engine.NewInt(int64(i % 23))
		if i%31 == 0 {
			rk = engine.Null
		}
		_ = right.Append(engine.Tuple{rk, engine.NewInt(int64(i))})
	}
	return MapSource{"l": left, "r": right}
}

// TestShuffleIsMultisetPreserving: executing a Shuffle standalone is a
// pure reorder of its child.
func TestShuffleIsMultisetPreserving(t *testing.T) {
	s := bigSrc()
	plain, _, err := Execute(Scan{"l"}, s)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 4, 7} {
		shuffled, _, err := Execute(Shuffle{Child: Scan{"l"}, Key: "k", Partitions: n}, s)
		if err != nil {
			t.Fatalf("partitions=%d: %v", n, err)
		}
		if canonRows(shuffled) != canonRows(plain) {
			t.Fatalf("partitions=%d: shuffle changed the multiset", n)
		}
	}
	if _, _, err := Execute(Shuffle{Child: Scan{"l"}, Key: "k"}, s); err == nil {
		t.Fatal("Partitions=0 accepted")
	}
	if _, _, err := Execute(Shuffle{Child: Scan{"l"}, Key: "missing", Partitions: 2}, s); err == nil {
		t.Fatal("unknown key accepted")
	}
}

// TestPartitionedJoinMatchesSequential: the partition-parallel join
// produces exactly the sequential join's rows, for several partition
// counts, under NULL join keys, and composed with downstream
// operators.
func TestPartitionedJoinMatchesSequential(t *testing.T) {
	s := bigSrc()
	seqPlan := Join{Left: Scan{"l"}, Right: Scan{"r"}, LeftCol: "k", RightCol: "k"}
	seq, seqStats, err := Execute(seqPlan, s)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Len() == 0 {
		t.Fatal("fixture join is empty — test proves nothing")
	}
	for _, n := range []int{2, 3, 8} {
		par, parStats, err := Execute(Parallelize(seqPlan, n), s)
		if err != nil {
			t.Fatalf("partitions=%d: %v", n, err)
		}
		if canonRows(par) != canonRows(seq) {
			t.Fatalf("partitions=%d: partitioned join diverges from sequential", n)
		}
		if parStats.RowsProcessed < seqStats.RowsProcessed {
			t.Fatalf("partitions=%d: shuffle accounting lost work: %d < %d",
				n, parStats.RowsProcessed, seqStats.RowsProcessed)
		}
	}

	// Composed: groupby over a parallelized join, plus Optimize first.
	composed := GroupBy{
		Child: Select{Child: seqPlan, Pred: "rv > 50"},
		Keys:  []string{"lv"},
		Aggs:  []AggSpec{{Kind: "count", As: "n"}, {Kind: "sum", Col: "rv", As: "s"}},
	}
	want, _, err := Execute(composed, s)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Execute(Parallelize(Optimize(composed), 4), s)
	if err != nil {
		t.Fatal(err)
	}
	if canonRows(got) != canonRows(want) {
		t.Fatal("parallelized+optimized plan diverges")
	}
}

// TestPartitionedJoinGuards: mismatched shuffle keys or partition
// counts must NOT take the partition-parallel path (partition-local
// joins would lose cross-partition matches) — they fall back to the
// sequential join over the shuffles-as-reorders and stay correct.
func TestPartitionedJoinGuards(t *testing.T) {
	s := bigSrc()
	want, _, err := Execute(Join{Left: Scan{"l"}, Right: Scan{"r"}, LeftCol: "k", RightCol: "k"}, s)
	if err != nil {
		t.Fatal(err)
	}
	for name, plan := range map[string]Plan{
		"key mismatch": Join{
			Left:     Shuffle{Child: Scan{"l"}, Key: "lv", Partitions: 4},
			Right:    Shuffle{Child: Scan{"r"}, Key: "k", Partitions: 4},
			LeftCol:  "k",
			RightCol: "k",
		},
		"count mismatch": Join{
			Left:     Shuffle{Child: Scan{"l"}, Key: "k", Partitions: 4},
			Right:    Shuffle{Child: Scan{"r"}, Key: "k", Partitions: 3},
			LeftCol:  "k",
			RightCol: "k",
		},
	} {
		got, _, err := Execute(plan, s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if canonRows(got) != canonRows(want) {
			t.Fatalf("%s: fell into an unsound partitioned join", name)
		}
	}
}

// TestParallelizeIterate: the rewrite reaches inside iteration bodies
// (transitive closure still converges to the same fixpoint).
func TestParallelizeIterate(t *testing.T) {
	edges := engine.NewRelation(engine.NewSchema(
		engine.Col("src", engine.TypeInt), engine.Col("dst", engine.TypeInt)))
	// A renamed copy avoids name collisions in the self-join.
	edges2 := engine.NewRelation(engine.NewSchema(
		engine.Col("from2", engine.TypeInt), engine.Col("to2", engine.TypeInt)))
	for _, e := range [][2]int64{{1, 2}, {2, 3}, {3, 4}, {4, 5}, {6, 7}} {
		_ = edges.Append(engine.Tuple{engine.NewInt(e[0]), engine.NewInt(e[1])})
		_ = edges2.Append(engine.Tuple{engine.NewInt(e[0]), engine.NewInt(e[1])})
	}
	s := MapSource{"edges": edges, "edges2": edges2}
	tc := Iterate{
		Init: Scan{"edges"},
		Body: Project{
			Child: Join{Left: Scan{"tc"}, Right: Scan{"edges2"}, LeftCol: "dst", RightCol: "from2"},
			Cols:  []string{"src", "to2"},
		},
		StateName: "tc",
		MaxIters:  10,
	}
	want, _, err := Execute(tc, s)
	if err != nil {
		t.Fatal(err)
	}
	par := Parallelize(tc, 3)
	if !strings.Contains(par.String(), "shuffle[") {
		t.Fatalf("Parallelize left no shuffle in: %s", par)
	}
	got, _, err := Execute(par, s)
	if err != nil {
		t.Fatal(err)
	}
	if canonRows(got) != canonRows(want) {
		t.Fatal("parallelized transitive closure diverges")
	}
}
