// Package myria implements BigDAWG's Myria island: a programming model
// of relational algebra extended with iteration (§2.1.1 of the paper),
// plus a rule-based optimizer (selection pushdown and fusion) standing
// in for Myria's "sophisticated optimizer". Plans execute against a
// Source — the shim interface the polystore implements over its
// engines (SciDB and Postgres in the paper).
package myria

import (
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/relational"
)

// Source resolves named base relations; the polystore provides an
// implementation backed by its catalog and engines.
type Source interface {
	Relation(name string) (*engine.Relation, error)
}

// MapSource is a Source over an in-memory map, used in tests and for
// iteration-state overlays.
type MapSource map[string]*engine.Relation

// Relation implements Source.
func (m MapSource) Relation(name string) (*engine.Relation, error) {
	if rel, ok := m[strings.ToLower(name)]; ok {
		return rel, nil
	}
	return nil, fmt.Errorf("myria: no relation %q", name)
}

// overlay layers iteration state over a base source.
type overlay struct {
	base  Source
	extra MapSource
}

func (o overlay) Relation(name string) (*engine.Relation, error) {
	if rel, err := o.extra.Relation(name); err == nil {
		return rel, nil
	}
	return o.base.Relation(name)
}

// Stats counts work done during one Execute, exposing what the
// optimizer saves.
type Stats struct {
	RowsProcessed int64
}

// execCtx threads the source and counters through execution.
type execCtx struct {
	src   Source
	stats *Stats
}

// Plan is a relational-algebra plan node.
type Plan interface {
	execute(ctx *execCtx) (*engine.Relation, error)
	// String renders the plan for tests and EXPLAIN-style output.
	String() string
}

// Scan reads a named base relation from the source.
type Scan struct{ Name string }

// Select filters rows by a SQL predicate over the child's columns.
type Select struct {
	Child Plan
	Pred  string
}

// Project keeps the named columns in order.
type Project struct {
	Child Plan
	Cols  []string
}

// Join is a hash equi-join on LeftCol = RightCol.
type Join struct {
	Left, Right       Plan
	LeftCol, RightCol string
}

// AggSpec is one aggregate in a GroupBy: Kind over Col, output name As.
type AggSpec struct {
	Kind string // count, sum, avg, min, max
	Col  string // ignored for count
	As   string
}

// GroupBy groups by key columns and computes aggregates.
type GroupBy struct {
	Child Plan
	Keys  []string
	Aggs  []AggSpec
}

// Distinct removes duplicate rows.
type Distinct struct{ Child Plan }

// Union concatenates two plans with identical schemas.
type Union struct{ Left, Right Plan }

// Iterate implements Myria's iteration extension: starting from Init,
// it repeatedly executes Body — in which the name StateName resolves to
// the current iteration state — unions the result into the state, and
// stops at a fixpoint (no new rows) or after MaxIters. This computes
// fixpoints like transitive closure.
type Iterate struct {
	Init      Plan
	Body      Plan
	StateName string
	MaxIters  int
}

// Execute runs a plan against a source, returning the result and stats.
func Execute(p Plan, src Source) (*engine.Relation, *Stats, error) {
	ctx := &execCtx{src: src, stats: &Stats{}}
	rel, err := p.execute(ctx)
	return rel, ctx.stats, err
}

func (s Scan) execute(ctx *execCtx) (*engine.Relation, error) {
	rel, err := ctx.src.Relation(s.Name)
	if err != nil {
		return nil, err
	}
	ctx.stats.RowsProcessed += int64(rel.Len())
	return rel, nil
}

func (s Scan) String() string { return "scan(" + s.Name + ")" }

func (s Select) execute(ctx *execCtx) (*engine.Relation, error) {
	in, err := s.Child.execute(ctx)
	if err != nil {
		return nil, err
	}
	pred, err := relational.CompileRowExpr(s.Pred, in.Schema.Columns)
	if err != nil {
		return nil, err
	}
	out := engine.NewRelation(in.Schema)
	for _, t := range in.Tuples {
		ctx.stats.RowsProcessed++
		v, err := pred(t)
		if err != nil {
			return nil, err
		}
		if !v.IsNull() && v.AsBool() {
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out, nil
}

func (s Select) String() string { return fmt.Sprintf("select[%s](%s)", s.Pred, s.Child) }

func (p Project) execute(ctx *execCtx) (*engine.Relation, error) {
	in, err := p.Child.execute(ctx)
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(p.Cols))
	cols := make([]engine.Column, len(p.Cols))
	for i, c := range p.Cols {
		j, err := in.Schema.MustIndex(c)
		if err != nil {
			return nil, err
		}
		idx[i] = j
		cols[i] = in.Schema.Columns[j]
	}
	out := engine.NewRelation(engine.Schema{Columns: cols})
	out.Tuples = make([]engine.Tuple, len(in.Tuples))
	for i, t := range in.Tuples {
		ctx.stats.RowsProcessed++
		nt := make(engine.Tuple, len(idx))
		for k, j := range idx {
			nt[k] = t[j]
		}
		out.Tuples[i] = nt
	}
	return out, nil
}

func (p Project) String() string {
	return fmt.Sprintf("project[%s](%s)", strings.Join(p.Cols, ","), p.Child)
}

func (j Join) execute(ctx *execCtx) (*engine.Relation, error) {
	// A join whose inputs are both shuffles on the join keys runs
	// partition-parallel (shuffle.go) — the exchange-operator model the
	// paper's Myria island describes, wired to real work.
	if out, handled, err := j.executePartitioned(ctx); handled {
		return out, err
	}
	left, err := j.Left.execute(ctx)
	if err != nil {
		return nil, err
	}
	right, err := j.Right.execute(ctx)
	if err != nil {
		return nil, err
	}
	li, err := left.Schema.MustIndex(j.LeftCol)
	if err != nil {
		return nil, err
	}
	ri, err := right.Schema.MustIndex(j.RightCol)
	if err != nil {
		return nil, err
	}
	out, probed := joinRelations(left, right, li, ri)
	ctx.stats.RowsProcessed += probed
	return out, nil
}

// joinRelations is the hash equi-join core shared by the sequential
// and partition-parallel paths: build on the right, probe the left in
// order, skip NULL keys on both sides. probed counts probe rows.
func joinRelations(left, right *engine.Relation, li, ri int) (out *engine.Relation, probed int64) {
	build := make(map[string][]engine.Tuple, right.Len())
	for _, t := range right.Tuples {
		if t[ri].IsNull() {
			continue
		}
		k := t[ri].String()
		build[k] = append(build[k], t)
	}
	cols := append(append([]engine.Column{}, left.Schema.Columns...), right.Schema.Columns...)
	out = engine.NewRelation(engine.Schema{Columns: cols})
	for _, lt := range left.Tuples {
		probed++
		if lt[li].IsNull() {
			continue
		}
		for _, rt := range build[lt[li].String()] {
			row := make(engine.Tuple, 0, len(lt)+len(rt))
			row = append(row, lt...)
			row = append(row, rt...)
			out.Tuples = append(out.Tuples, row)
		}
	}
	return out, probed
}

func (j Join) String() string {
	return fmt.Sprintf("join[%s=%s](%s, %s)", j.LeftCol, j.RightCol, j.Left, j.Right)
}

func (g GroupBy) execute(ctx *execCtx) (*engine.Relation, error) {
	in, err := g.Child.execute(ctx)
	if err != nil {
		return nil, err
	}
	keyIdx := make([]int, len(g.Keys))
	for i, k := range g.Keys {
		j, err := in.Schema.MustIndex(k)
		if err != nil {
			return nil, err
		}
		keyIdx[i] = j
	}
	aggIdx := make([]int, len(g.Aggs))
	for i, a := range g.Aggs {
		if strings.EqualFold(a.Kind, "count") {
			aggIdx[i] = -1
			continue
		}
		j, err := in.Schema.MustIndex(a.Col)
		if err != nil {
			return nil, err
		}
		aggIdx[i] = j
	}
	type acc struct {
		key engine.Tuple
		n   []int64
		sum []float64
		min []float64
		max []float64
	}
	groups := map[string]*acc{}
	var order []string
	for _, t := range in.Tuples {
		ctx.stats.RowsProcessed++
		var kb strings.Builder
		for _, j := range keyIdx {
			kb.WriteString(t[j].String())
			kb.WriteByte('\x1f')
		}
		k := kb.String()
		a, ok := groups[k]
		if !ok {
			key := make(engine.Tuple, len(keyIdx))
			for i, j := range keyIdx {
				key[i] = t[j]
			}
			a = &acc{
				key: key,
				n:   make([]int64, len(g.Aggs)),
				sum: make([]float64, len(g.Aggs)),
				min: make([]float64, len(g.Aggs)),
				max: make([]float64, len(g.Aggs)),
			}
			for i := range a.min {
				a.min[i] = 1e308
				a.max[i] = -1e308
			}
			groups[k] = a
			order = append(order, k)
		}
		for i, j := range aggIdx {
			if j < 0 {
				a.n[i]++
				continue
			}
			if t[j].IsNull() {
				continue
			}
			v := t[j].AsFloat()
			a.n[i]++
			a.sum[i] += v
			if v < a.min[i] {
				a.min[i] = v
			}
			if v > a.max[i] {
				a.max[i] = v
			}
		}
	}
	cols := make([]engine.Column, 0, len(g.Keys)+len(g.Aggs))
	for i, k := range g.Keys {
		cols = append(cols, in.Schema.Columns[keyIdx[i]])
		_ = k
	}
	for _, a := range g.Aggs {
		typ := engine.TypeFloat
		if strings.EqualFold(a.Kind, "count") {
			typ = engine.TypeInt
		}
		name := a.As
		if name == "" {
			name = strings.ToLower(a.Kind) + "_" + a.Col
		}
		cols = append(cols, engine.Col(name, typ))
	}
	out := engine.NewRelation(engine.Schema{Columns: cols})
	for _, k := range order {
		a := groups[k]
		row := make(engine.Tuple, 0, len(cols))
		row = append(row, a.key...)
		for i, spec := range g.Aggs {
			switch strings.ToLower(spec.Kind) {
			case "count":
				row = append(row, engine.NewInt(a.n[i]))
			case "sum":
				row = append(row, engine.NewFloat(a.sum[i]))
			case "avg":
				if a.n[i] == 0 {
					row = append(row, engine.Null)
				} else {
					row = append(row, engine.NewFloat(a.sum[i]/float64(a.n[i])))
				}
			case "min":
				if a.n[i] == 0 {
					row = append(row, engine.Null)
				} else {
					row = append(row, engine.NewFloat(a.min[i]))
				}
			case "max":
				if a.n[i] == 0 {
					row = append(row, engine.Null)
				} else {
					row = append(row, engine.NewFloat(a.max[i]))
				}
			default:
				return nil, fmt.Errorf("myria: unknown aggregate %q", spec.Kind)
			}
		}
		out.Tuples = append(out.Tuples, row)
	}
	return out, nil
}

func (g GroupBy) String() string {
	return fmt.Sprintf("groupby[%s](%s)", strings.Join(g.Keys, ","), g.Child)
}

func (d Distinct) execute(ctx *execCtx) (*engine.Relation, error) {
	in, err := d.Child.execute(ctx)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	out := engine.NewRelation(in.Schema)
	for _, t := range in.Tuples {
		ctx.stats.RowsProcessed++
		var kb strings.Builder
		for _, v := range t {
			kb.WriteString(v.String())
			kb.WriteByte('\x1f')
		}
		k := kb.String()
		if !seen[k] {
			seen[k] = true
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out, nil
}

func (d Distinct) String() string { return fmt.Sprintf("distinct(%s)", d.Child) }

func (u Union) execute(ctx *execCtx) (*engine.Relation, error) {
	left, err := u.Left.execute(ctx)
	if err != nil {
		return nil, err
	}
	right, err := u.Right.execute(ctx)
	if err != nil {
		return nil, err
	}
	if len(left.Schema.Columns) != len(right.Schema.Columns) {
		return nil, fmt.Errorf("myria: union arity mismatch %d vs %d",
			len(left.Schema.Columns), len(right.Schema.Columns))
	}
	out := engine.NewRelation(left.Schema)
	out.Tuples = append(append([]engine.Tuple{}, left.Tuples...), right.Tuples...)
	return out, nil
}

func (u Union) String() string { return fmt.Sprintf("union(%s, %s)", u.Left, u.Right) }

func (it Iterate) execute(ctx *execCtx) (*engine.Relation, error) {
	if it.MaxIters <= 0 || it.StateName == "" {
		return nil, fmt.Errorf("myria: Iterate needs StateName and MaxIters > 0")
	}
	state, err := it.Init.execute(ctx)
	if err != nil {
		return nil, err
	}
	state = dedupe(state)
	for i := 0; i < it.MaxIters; i++ {
		iterCtx := &execCtx{
			src:   overlay{base: ctx.src, extra: MapSource{strings.ToLower(it.StateName): state}},
			stats: ctx.stats,
		}
		delta, err := it.Body.execute(iterCtx)
		if err != nil {
			return nil, err
		}
		if len(delta.Schema.Columns) != len(state.Schema.Columns) {
			return nil, fmt.Errorf("myria: iteration body arity %d != state arity %d",
				len(delta.Schema.Columns), len(state.Schema.Columns))
		}
		merged := engine.NewRelation(state.Schema)
		merged.Tuples = append(append([]engine.Tuple{}, state.Tuples...), delta.Tuples...)
		merged = dedupe(merged)
		if merged.Len() == state.Len() {
			return state, nil // fixpoint
		}
		state = merged
	}
	return state, nil
}

func (it Iterate) String() string {
	return fmt.Sprintf("iterate[%s,%d](%s; %s)", it.StateName, it.MaxIters, it.Init, it.Body)
}

func dedupe(rel *engine.Relation) *engine.Relation {
	seen := map[string]bool{}
	out := engine.NewRelation(rel.Schema)
	for _, t := range rel.Tuples {
		var kb strings.Builder
		for _, v := range t {
			kb.WriteString(v.String())
			kb.WriteByte('\x1f')
		}
		k := kb.String()
		if !seen[k] {
			seen[k] = true
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out
}
