package myria

import (
	"fmt"
	"testing"

	"repro/internal/engine"
)

func src(t *testing.T) MapSource {
	t.Helper()
	people := engine.NewRelation(engine.NewSchema(
		engine.Col("id", engine.TypeInt), engine.Col("name", engine.TypeString),
		engine.Col("age", engine.TypeInt),
	))
	for i, p := range []struct {
		name string
		age  int64
	}{{"alice", 70}, {"bob", 62}, {"carol", 55}, {"dave", 81}} {
		_ = people.Append(engine.Tuple{engine.NewInt(int64(i + 1)), engine.NewString(p.name), engine.NewInt(p.age)})
	}
	visits := engine.NewRelation(engine.NewSchema(
		engine.Col("pid", engine.TypeInt), engine.Col("ward", engine.TypeString),
	))
	for _, v := range []struct {
		pid  int64
		ward string
	}{{1, "icu"}, {1, "er"}, {2, "icu"}, {3, "ward"}} {
		_ = visits.Append(engine.Tuple{engine.NewInt(v.pid), engine.NewString(v.ward)})
	}
	// Edge list for transitive closure.
	edges := engine.NewRelation(engine.NewSchema(
		engine.Col("src", engine.TypeInt), engine.Col("dst", engine.TypeInt),
	))
	for _, e := range [][2]int64{{1, 2}, {2, 3}, {3, 4}, {5, 6}} {
		_ = edges.Append(engine.Tuple{engine.NewInt(e[0]), engine.NewInt(e[1])})
	}
	return MapSource{"people": people, "visits": visits, "edges": edges}
}

func TestScanSelectProject(t *testing.T) {
	s := src(t)
	plan := Project{
		Child: Select{Child: Scan{"people"}, Pred: "age > 60"},
		Cols:  []string{"name"},
	}
	rel, stats, err := Execute(plan, s)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 3 || len(rel.Schema.Columns) != 1 {
		t.Fatalf("result: %v", rel)
	}
	if stats.RowsProcessed == 0 {
		t.Error("stats not counted")
	}
	if _, _, err := Execute(Scan{"nope"}, s); err == nil {
		t.Error("missing relation should fail")
	}
	if _, _, err := Execute(Select{Child: Scan{"people"}, Pred: "bogus ("}, s); err == nil {
		t.Error("bad predicate should fail")
	}
	if _, _, err := Execute(Project{Child: Scan{"people"}, Cols: []string{"zzz"}}, s); err == nil {
		t.Error("missing column should fail")
	}
}

func TestJoin(t *testing.T) {
	s := src(t)
	plan := Join{Left: Scan{"people"}, Right: Scan{"visits"}, LeftCol: "id", RightCol: "pid"}
	rel, _, err := Execute(plan, s)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 4 {
		t.Fatalf("join rows: %d", rel.Len())
	}
	if len(rel.Schema.Columns) != 5 {
		t.Errorf("join schema: %v", rel.Schema)
	}
	if _, _, err := Execute(Join{Left: Scan{"people"}, Right: Scan{"visits"}, LeftCol: "zz", RightCol: "pid"}, s); err == nil {
		t.Error("bad join column should fail")
	}
}

func TestGroupBy(t *testing.T) {
	s := src(t)
	plan := GroupBy{
		Child: Join{Left: Scan{"people"}, Right: Scan{"visits"}, LeftCol: "id", RightCol: "pid"},
		Keys:  []string{"ward"},
		Aggs: []AggSpec{
			{Kind: "count", As: "n"},
			{Kind: "avg", Col: "age", As: "avg_age"},
			{Kind: "max", Col: "age", As: "max_age"},
		},
	}
	rel, _, err := Execute(plan, s)
	if err != nil {
		t.Fatal(err)
	}
	byWard := map[string]engine.Tuple{}
	for _, r := range rel.Tuples {
		byWard[r[0].S] = r
	}
	icu := byWard["icu"]
	if icu[1].I != 2 || icu[2].AsFloat() != 66 || icu[3].AsFloat() != 70 {
		t.Errorf("icu group: %v", icu)
	}
	if _, _, err := Execute(GroupBy{Child: Scan{"people"}, Keys: []string{"name"},
		Aggs: []AggSpec{{Kind: "median", Col: "age"}}}, s); err == nil {
		t.Error("unknown aggregate should fail")
	}
}

func TestDistinctUnion(t *testing.T) {
	s := src(t)
	u := Union{
		Left:  Project{Child: Scan{"visits"}, Cols: []string{"ward"}},
		Right: Project{Child: Scan{"visits"}, Cols: []string{"ward"}},
	}
	rel, _, err := Execute(Distinct{Child: u}, s)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 3 { // icu, er, ward
		t.Errorf("distinct wards: %v", rel)
	}
	bad := Union{Left: Scan{"people"}, Right: Scan{"visits"}}
	if _, _, err := Execute(bad, s); err == nil {
		t.Error("union arity mismatch should fail")
	}
}

func TestIterateTransitiveClosure(t *testing.T) {
	s := src(t)
	// state(src,dst) := edges ∪ project[src,dst2](state ⋈ edges on dst=src)
	body := Project{
		Child: Join{
			Left:     Scan{"tc"},
			Right:    Scan{"edges"},
			LeftCol:  "dst",
			RightCol: "src",
		},
		// After join columns are (src,dst,src,dst): project positions by
		// renaming — join output has duplicate names, so pick via the
		// left src and the right dst using unique aliases. The simple
		// fixture avoids ambiguity by projecting the two distinct names.
		Cols: []string{"src", "dst"},
	}
	_ = body
	// Column names collide after self-join; restructure with renamed
	// edge copy.
	edges2 := engine.NewRelation(engine.NewSchema(
		engine.Col("from2", engine.TypeInt), engine.Col("to2", engine.TypeInt),
	))
	base, _ := s.Relation("edges")
	for _, e := range base.Tuples {
		_ = edges2.Append(engine.Tuple{e[0], e[1]})
	}
	s["edges2"] = edges2
	plan := Iterate{
		Init:      Scan{"edges"},
		StateName: "tc",
		MaxIters:  10,
		Body: Project{
			Child: Join{
				Left:     Scan{"tc"},
				Right:    Scan{"edges2"},
				LeftCol:  "dst",
				RightCol: "from2",
			},
			Cols: []string{"src", "to2"},
		},
	}
	rel, _, err := Execute(plan, s)
	if err != nil {
		t.Fatal(err)
	}
	// Closure of 1→2→3→4 plus 5→6:
	// (1,2)(2,3)(3,4)(5,6)(1,3)(2,4)(1,4) = 7 pairs.
	if rel.Len() != 7 {
		t.Errorf("transitive closure size %d: %v", rel.Len(), rel)
	}
	has := func(a, b int64) bool {
		for _, r := range rel.Tuples {
			if r[0].I == a && r[1].I == b {
				return true
			}
		}
		return false
	}
	if !has(1, 4) || !has(2, 4) || has(5, 4) {
		t.Errorf("closure contents wrong: %v", rel)
	}
}

func TestIterateValidation(t *testing.T) {
	s := src(t)
	if _, _, err := Execute(Iterate{Init: Scan{"edges"}, Body: Scan{"edges"}}, s); err == nil {
		t.Error("missing StateName/MaxIters should fail")
	}
	// Arity mismatch between state and body.
	bad := Iterate{
		Init: Scan{"edges"}, StateName: "tc", MaxIters: 3,
		Body: Project{Child: Scan{"tc"}, Cols: []string{"src"}},
	}
	if _, _, err := Execute(bad, s); err == nil {
		t.Error("body arity mismatch should fail")
	}
}

func TestOptimizePreservesResults(t *testing.T) {
	s := src(t)
	plans := []Plan{
		Select{Child: Select{Child: Scan{"people"}, Pred: "age > 50"}, Pred: "age < 80"},
		Select{
			Child: Join{
				Left:    Project{Child: Scan{"people"}, Cols: []string{"id", "age"}},
				Right:   Project{Child: Scan{"visits"}, Cols: []string{"pid", "ward"}},
				LeftCol: "id", RightCol: "pid",
			},
			Pred: "age > 60",
		},
		Select{Child: Distinct{Child: Project{Child: Scan{"visits"}, Cols: []string{"ward"}}}, Pred: "ward = 'icu'"},
	}
	for i, p := range plans {
		orig, _, err := Execute(p, s)
		if err != nil {
			t.Fatalf("plan %d: %v", i, err)
		}
		opt := Optimize(p)
		got, _, err := Execute(opt, s)
		if err != nil {
			t.Fatalf("optimized plan %d: %v (plan: %s)", i, err, opt)
		}
		if got.Len() != orig.Len() {
			t.Errorf("plan %d: optimized %d rows != %d (plan %s)", i, got.Len(), orig.Len(), opt)
		}
	}
}

func TestOptimizeFusesSelects(t *testing.T) {
	p := Select{Child: Select{Child: Scan{"t"}, Pred: "a > 1"}, Pred: "b < 2"}
	opt := Optimize(p)
	sel, ok := opt.(Select)
	if !ok {
		t.Fatalf("expected Select, got %T", opt)
	}
	if _, isSel := sel.Child.(Select); isSel {
		t.Errorf("selects not fused: %s", opt)
	}
}

func TestOptimizePushesSelectBelowJoin(t *testing.T) {
	p := Select{
		Child: Join{
			Left:    Project{Child: Scan{"people"}, Cols: []string{"id", "age"}},
			Right:   Project{Child: Scan{"visits"}, Cols: []string{"pid", "ward"}},
			LeftCol: "id", RightCol: "pid",
		},
		Pred: "age > 60",
	}
	opt := Optimize(p)
	join, ok := opt.(Join)
	if !ok {
		t.Fatalf("select not pushed below join: %s", opt)
	}
	if _, isSel := join.Left.(Select); !isSel {
		t.Errorf("select should sit on the left side: %s", opt)
	}
}

func TestOptimizeReducesWork(t *testing.T) {
	// Larger input so the row-count difference is visible.
	people := engine.NewRelation(engine.NewSchema(
		engine.Col("id", engine.TypeInt), engine.Col("age", engine.TypeInt)))
	visits := engine.NewRelation(engine.NewSchema(
		engine.Col("pid", engine.TypeInt), engine.Col("ward", engine.TypeString)))
	for i := int64(0); i < 1000; i++ {
		_ = people.Append(engine.Tuple{engine.NewInt(i), engine.NewInt(i % 100)})
		_ = visits.Append(engine.Tuple{engine.NewInt(i), engine.NewString(fmt.Sprintf("w%d", i%3))})
	}
	s := MapSource{"people": people, "visits": visits}
	p := Select{
		Child: Join{
			Left:    Project{Child: Scan{"people"}, Cols: []string{"id", "age"}},
			Right:   Project{Child: Scan{"visits"}, Cols: []string{"pid", "ward"}},
			LeftCol: "id", RightCol: "pid",
		},
		Pred: "age > 95", // 4% selectivity
	}
	r1, s1, err := Execute(p, s)
	if err != nil {
		t.Fatal(err)
	}
	opt := Optimize(p)
	r2, s2, err := Execute(opt, s)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Len() != r2.Len() {
		t.Fatalf("results diverge: %d vs %d", r1.Len(), r2.Len())
	}
	if s2.RowsProcessed >= s1.RowsProcessed {
		t.Errorf("optimizer did not reduce work: %d vs %d", s2.RowsProcessed, s1.RowsProcessed)
	}
}
