package myria

// The shuffle (exchange) operator: Myria's parallel-execution model,
// wired to real work. A Shuffle hash-partitions its child's rows on a
// key column using the same assignment function the federation's
// sharding layer uses (internal/shard), so a shuffle-repartitioned
// join aligns rows exactly the way a sharded table's placement does. A
// Join whose two inputs are Shuffles on the join keys with matching
// partition counts executes partition-parallel: each partition pair is
// hash-joined in its own goroutine and the outputs concatenate in
// partition order. Parallelize rewrites a plan's equi-joins into this
// shape; it is a separate pass from Optimize, applied when the caller
// wants parallelism (the polystore's Myria entry point does for plans
// over sharded inputs).

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/engine"
	"repro/internal/shard"
)

// Shuffle hash-partitions its child's rows on Key into Partitions
// buckets. Executed standalone it returns the child's rows grouped by
// partition (a multiset-preserving reorder); its real purpose is to
// mark a Join input for the partition-parallel path.
type Shuffle struct {
	Child      Plan
	Key        string
	Partitions int
}

func (s Shuffle) execute(ctx *execCtx) (*engine.Relation, error) {
	in, parts, err := s.partition(ctx)
	if err != nil {
		return nil, err
	}
	out := engine.NewRelation(in.Schema)
	for _, p := range parts {
		out.Tuples = append(out.Tuples, p.Tuples...)
	}
	return out, nil
}

// partition executes the child and splits its rows by the shuffle key.
func (s Shuffle) partition(ctx *execCtx) (*engine.Relation, []*engine.Relation, error) {
	if s.Partitions <= 0 {
		return nil, nil, fmt.Errorf("myria: Shuffle needs Partitions > 0")
	}
	in, err := s.Child.execute(ctx)
	if err != nil {
		return nil, nil, err
	}
	ki, err := in.Schema.MustIndex(s.Key)
	if err != nil {
		return nil, nil, err
	}
	ctx.stats.RowsProcessed += int64(in.Len())
	spec := shard.HashSpec(s.Key, s.Partitions)
	parts := make([]*engine.Relation, s.Partitions)
	for i := range parts {
		parts[i] = engine.NewRelation(in.Schema)
	}
	for _, t := range in.Tuples {
		p := spec.Assign(t[ki])
		parts[p].Tuples = append(parts[p].Tuples, t)
	}
	return in, parts, nil
}

func (s Shuffle) String() string {
	return fmt.Sprintf("shuffle[%s,%d](%s)", s.Key, s.Partitions, s.Child)
}

// executePartitioned runs the partition-parallel join when both inputs
// are Shuffles on the join keys with matching partition counts.
// handled=false falls back to the sequential path (which still
// executes any Shuffle children as plain reorders, so a key or count
// mismatch stays correct — it just doesn't parallelize).
func (j Join) executePartitioned(ctx *execCtx) (*engine.Relation, bool, error) {
	ls, lok := j.Left.(Shuffle)
	rs, rok := j.Right.(Shuffle)
	if !lok || !rok || ls.Partitions != rs.Partitions || ls.Partitions <= 1 {
		return nil, false, nil
	}
	// Partition-local joins only see partition-local matches: the
	// shuffle keys must be the join keys, so equal join keys land in
	// the same partition on both sides.
	if !strings.EqualFold(ls.Key, j.LeftCol) || !strings.EqualFold(rs.Key, j.RightCol) {
		return nil, false, nil
	}
	left, lparts, err := ls.partition(ctx)
	if err != nil {
		return nil, true, err
	}
	right, rparts, err := rs.partition(ctx)
	if err != nil {
		return nil, true, err
	}
	li, err := left.Schema.MustIndex(j.LeftCol)
	if err != nil {
		return nil, true, err
	}
	ri, err := right.Schema.MustIndex(j.RightCol)
	if err != nil {
		return nil, true, err
	}
	outs := make([]*engine.Relation, len(lparts))
	probed := make([]int64, len(lparts))
	var wg sync.WaitGroup
	for p := range lparts {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			outs[p], probed[p] = joinRelations(lparts[p], rparts[p], li, ri)
		}(p)
	}
	wg.Wait()
	cols := append(append([]engine.Column{}, left.Schema.Columns...), right.Schema.Columns...)
	out := engine.NewRelation(engine.Schema{Columns: cols})
	for p := range outs {
		ctx.stats.RowsProcessed += probed[p]
		out.Tuples = append(out.Tuples, outs[p].Tuples...)
	}
	return out, true, nil
}

// Parallelize rewrites every equi-join in a plan into a
// shuffle-repartitioned join with n partitions. It is semantics
// preserving up to row order (joins emit partition-major instead of
// probe-major order); callers that need parallelism apply it after
// Optimize.
func Parallelize(p Plan, n int) Plan {
	if n <= 1 {
		return p
	}
	switch node := p.(type) {
	case Join:
		return Join{
			Left:     Shuffle{Child: Parallelize(node.Left, n), Key: node.LeftCol, Partitions: n},
			Right:    Shuffle{Child: Parallelize(node.Right, n), Key: node.RightCol, Partitions: n},
			LeftCol:  node.LeftCol,
			RightCol: node.RightCol,
		}
	case Select:
		node.Child = Parallelize(node.Child, n)
		return node
	case Project:
		node.Child = Parallelize(node.Child, n)
		return node
	case GroupBy:
		node.Child = Parallelize(node.Child, n)
		return node
	case Distinct:
		node.Child = Parallelize(node.Child, n)
		return node
	case Union:
		node.Left = Parallelize(node.Left, n)
		node.Right = Parallelize(node.Right, n)
		return node
	case Iterate:
		node.Init = Parallelize(node.Init, n)
		node.Body = Parallelize(node.Body, n)
		return node
	case Shuffle:
		node.Child = Parallelize(node.Child, n)
		return node
	default:
		return p
	}
}
