package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
)

// E11CastPushdown measures the cross-island CAST pushdown planner
// against the migrate-everything baseline. The paper's CAST (§2.1)
// moves a whole object between engines; the planner instead pushes the
// consuming island's predicate and referenced-column set across the
// CAST boundary, so a selective query migrates only what it can
// observe. The scenario is the planner's acceptance case: a 6-column
// table, a 10%-selective predicate, 2 referenced columns.
func E11CastPushdown(cfg Config) (Table, error) {
	t := Table{
		ID:    "E11",
		Title: "CAST pushdown: filtered, projected migration vs full-object CAST",
		Claim: "cross-island queries need not move data their island body never observes",
		Header: []string{"path", "rows moved", "wire bytes", "time (ms)", "vs full"},
	}
	rows := cfg.scale(10_000, 100_000)

	p := core.New()
	schema := engine.NewSchema(
		engine.Col("id", engine.TypeInt), engine.Col("a", engine.TypeInt),
		engine.Col("b", engine.TypeFloat), engine.Col("c", engine.TypeString),
		engine.Col("d", engine.TypeString), engine.Col("e", engine.TypeFloat),
	)
	rel := engine.NewRelation(schema)
	for i := 0; i < rows; i++ {
		_ = rel.Append(engine.Tuple{
			engine.NewInt(int64(i)), engine.NewInt(int64(i % 100)),
			engine.NewFloat(float64(i) * 0.5), engine.NewString(fmt.Sprintf("name_%06d", i)),
			engine.NewString("xxxxxxxxxxxxxxxxxxxx"), engine.NewFloat(float64(i)),
		})
	}
	if err := p.Load(core.EnginePostgres, "big", rel, core.CastOptions{}); err != nil {
		return t, err
	}

	// The raw migration, with and without pushdown.
	cast := func(opts core.CastOptions) (core.CastResult, time.Duration, error) {
		start := time.Now()
		res, err := p.Cast("big", core.EnginePostgres, opts)
		return res, time.Since(start), err
	}
	full, dFull, err := cast(core.CastOptions{})
	if err != nil {
		return t, err
	}
	pushed, dPushed, err := cast(core.CastOptions{
		Predicate: "a < 10", Columns: []string{"a", "b"},
	})
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows,
		[]string{"full CAST", fmt.Sprint(full.Rows), fmt.Sprint(full.Bytes), ms(dFull), "1.0x"},
		[]string{"pushdown CAST", fmt.Sprint(pushed.Rows), fmt.Sprint(pushed.Bytes), ms(dPushed),
			fmt.Sprintf("%.1fx fewer bytes", float64(full.Bytes)/float64(pushed.Bytes))},
	)

	// End to end: the island query that motivates the migration.
	q := `RELATIONAL(SELECT a, b FROM CAST(big, relation) WHERE a < 10)`
	timeQuery := func(on bool) (*engine.Relation, time.Duration, error) {
		p.SetPushdown(on)
		start := time.Now()
		r, err := p.Query(q)
		return r, time.Since(start), err
	}
	rOff, dOff, err := timeQuery(false)
	if err != nil {
		return t, err
	}
	rOn, dOn, err := timeQuery(true)
	if err != nil {
		return t, err
	}
	if rOn.Len() != rOff.Len() {
		return t, fmt.Errorf("E11: planner changed the answer: %d vs %d rows", rOn.Len(), rOff.Len())
	}
	t.Rows = append(t.Rows,
		[]string{"query, planner off", fmt.Sprint(rOff.Len()), "-", ms(dOff), "1.0x"},
		[]string{"query, planner on", fmt.Sprint(rOn.Len()), "-", ms(dOn),
			ratio(dOff, dOn) + " faster"},
	)
	t.Notes = "10% selectivity, 2 of 6 columns referenced; the cheapest tuple is the one never moved"
	return t, nil
}
