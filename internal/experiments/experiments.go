// Package experiments regenerates every evaluation artefact of the
// BigDAWG demo paper. The paper has no numeric tables — its evaluation
// is the set of demo scenarios plus explicit quantitative claims — so
// each experiment measures one claim and prints the series a reader
// would compare against the paper. DESIGN.md maps experiment IDs to
// paper sections; EXPERIMENTS.md records claim vs measurement.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/analytics"
	"repro/internal/core"
	"repro/internal/demo"
	"repro/internal/engine"
	"repro/internal/mimic"
	"repro/internal/seedb"
	"repro/internal/tupleware"
)

// Table is one regenerated experiment output.
type Table struct {
	ID     string
	Title  string
	Claim  string // what the paper says
	Header []string
	Rows   [][]string
	Notes  string
}

// String renders the table for the terminal and EXPERIMENTS.md.
func (t Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&sb, "paper claim: %s\n", t.Claim)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&sb, "  %-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	if t.Notes != "" {
		fmt.Fprintf(&sb, "note: %s\n", t.Notes)
	}
	return sb.String()
}

// Config scales the experiments.
type Config struct {
	// Quick shrinks sizes for CI; full sizes for the recorded results.
	Quick bool
	Seed  int64
}

func (c Config) scale(quick, full int) int {
	if c.Quick {
		return quick
	}
	return full
}

// RunAll executes every experiment in order.
func RunAll(cfg Config) ([]Table, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	runs := []func(Config) (Table, error){
		E1PolystoreVsOneSize, E2CastBinaryVsCSV, E3StreamLatency,
		E4SeeDBPruning, E5TuplewareFusion, E6AdaptivePlacement,
		E7TightVsLooseCoupling, E8SearchlightSynopsis, E9ScalaRPrefetch,
		E10EngineSpecialisation, E11CastPushdown,
	}
	out := make([]Table, 0, len(runs))
	for _, run := range runs {
		t, err := run(cfg)
		if err != nil {
			return out, fmt.Errorf("experiment %T: %w", run, err)
		}
		out = append(out, t)
	}
	return out, nil
}

func ms(d time.Duration) string { return fmt.Sprintf("%.3f", float64(d.Nanoseconds())/1e6) }

// minTiming clamps sub-resolution measurements so ratio cells stay
// finite and parseable: a quick-mode run that finishes inside the timer
// granularity reports against this floor instead of dividing by ~zero.
const minTiming = time.Microsecond

func ratio(slow, fast time.Duration) string {
	if slow < minTiming {
		slow = minTiming
	}
	if fast < minTiming {
		fast = minTiming
	}
	return fmt.Sprintf("%.1fx", float64(slow)/float64(fast))
}

// E1PolystoreVsOneSize runs the mixed MIMIC workload on the polystore
// (each task on its specialised engine) and on two one-size-fits-all
// configurations where every dataset is forced into a single engine.
// §4 claims the polystore outperforms one-size-fits-all by one to two
// orders of magnitude.
func E1PolystoreVsOneSize(cfg Config) (Table, error) {
	mcfg := mimic.DefaultConfig()
	mcfg.Seed = cfg.Seed
	mcfg.Patients = cfg.scale(100, 300)
	sys, err := demo.Load(mcfg)
	if err != nil {
		return Table{}, err
	}
	p := sys.Poly
	rate := mcfg.SampleRate
	iters := cfg.scale(3, 10)

	// The mixed workload: one of each demo query class.
	type task struct {
		name string
		poly func() error // specialised engine
		rel  func() error // everything-in-relational baseline
		kv   func() error // everything-in-kv baseline
	}

	// Baseline 1: force waveforms + notes into the relational engine.
	wfRes, err := p.Cast("waveforms", core.EnginePostgres, core.CastOptions{TargetName: "wf_rel"})
	if err != nil {
		return Table{}, err
	}
	notesRes, err := p.Cast("notes", core.EnginePostgres, core.CastOptions{TargetName: "notes_rel"})
	if err != nil {
		return Table{}, err
	}
	// Baseline 2: force everything into the key-value engine.
	patKV, err := p.Cast("patients", core.EngineAccumulo, core.CastOptions{TargetName: "patients_kv"})
	if err != nil {
		return Table{}, err
	}
	wfKV, err := p.Cast("waveforms", core.EngineAccumulo, core.CastOptions{TargetName: "wf_kv"})
	if err != nil {
		return Table{}, err
	}

	// Streaming fixtures: the polystore gets a dedicated stream with a
	// windowed-average trigger; the baselines get tables pre-loaded with
	// the same "history" the stream has already absorbed, since a
	// traditional engine retains every ingested record (§2.3: they "lack
	// the ability to handle the high insert rates intrinsic to streams").
	const streamWindow = 125
	historyLen := cfg.scale(2_000, 10_000)
	if err := p.Streams.CreateStream("bench_stream", engine.NewSchema(
		engine.Col("patient", engine.TypeInt), engine.Col("v", engine.TypeFloat)), streamWindow); err != nil {
		return Table{}, err
	}
	alerted := 0
	if err := p.Streams.RegisterTrigger("bench_stream", "avg_alert",
		func(view *streamWindowView, _ streamRecord) error {
			avg, err := view.Aggregate("avg", "v")
			if err != nil {
				return err
			}
			if avg > 0.95 {
				alerted++
			}
			return nil
		}); err != nil {
		return Table{}, err
	}
	if _, err := p.Relational.Execute(`CREATE TABLE stream_rel (patient INT, v FLOAT)`); err != nil {
		return Table{}, err
	}
	if err := p.KV.CreateTable("stream_kv"); err != nil {
		return Table{}, err
	}
	histRel := engine.NewRelation(engine.NewSchema(
		engine.Col("patient", engine.TypeInt), engine.Col("v", engine.TypeFloat)))
	var histKV []kvstoreEntry
	for i := 0; i < historyLen; i++ {
		v := float64(i%100) / 100
		_ = histRel.Append(engine.Tuple{engine.NewInt(1), engine.NewFloat(v)})
		e := kvEntry(1, v)
		e.Key.Qualifier = fmt.Sprintf("v%08d", i)
		histKV = append(histKV, e)
		_ = p.Streams.Append("bench_stream", streamRecord{TS: int64(i),
			Values: engine.Tuple{engine.NewInt(1), engine.NewFloat(v)}})
	}
	if err := p.Relational.InsertRelation("stream_rel", histRel); err != nil {
		return Table{}, err
	}
	if err := p.KV.PutBatch("stream_kv", histKV); err != nil {
		return Table{}, err
	}

	streamTS := int64(historyLen)
	tasks := []task{
		{
			name: "selective lookup",
			poly: func() error {
				_, err := p.Query(`POSTGRES(SELECT * FROM patients WHERE id = 42)`)
				return err
			},
			rel: func() error {
				_, err := p.Query(`POSTGRES(SELECT * FROM patients WHERE id = 42)`)
				return err
			},
			kv: func() error {
				_, err := p.Query(`TEXT(get(` + patKV.Target + `, '42'))`)
				return err
			},
		},
		{
			name: "waveform aggregate",
			poly: func() error {
				_, err := p.Query(`SCIDB(aggregate(waveforms, avg(v)))`)
				return err
			},
			rel: func() error {
				_, err := p.Query(`POSTGRES(SELECT AVG(v) FROM ` + wfRes.Target + `)`)
				return err
			},
			kv: func() error {
				// KV has no aggregates: full scan + client-side fold.
				rel, err := p.Query(`TEXT(scan(` + wfKV.Target + `))`)
				if err != nil {
					return err
				}
				sum, n := 0.0, 0
				vi := rel.Schema.Index("value")
				for _, t := range rel.Tuples {
					sum += t[vi].AsFloat()
					n++
				}
				_ = sum / float64(n+1)
				return nil
			},
		},
		{
			name: "text search",
			poly: func() error {
				_, err := p.Query(`TEXT(search(notes, 'very sick', 3))`)
				return err
			},
			rel: func() error {
				// Relational text search: LIKE scan + GROUP BY.
				_, err := p.Query(`POSTGRES(SELECT row, COUNT(*) AS n FROM ` + notesRes.Target +
					` WHERE value LIKE '%very sick%' GROUP BY row HAVING COUNT(*) >= 3)`)
				return err
			},
			kv: func() error {
				_, err := p.Query(`TEXT(search(notes, 'very sick', 3))`)
				return err
			},
		},
		{
			// 25 samples arrive; each must update a 125-sample windowed
			// average (the alert condition). The stream engine keeps the
			// window in memory; the baselines rescan their ever-growing
			// stores per arrival.
			name: "streaming alert (25 samples)",
			poly: func() error {
				for i := 0; i < rate/5; i++ {
					streamTS++
					if err := p.Streams.Append("bench_stream", streamRecord{TS: streamTS,
						Values: engine.Tuple{engine.NewInt(1), engine.NewFloat(0.5)}}); err != nil {
						return err
					}
				}
				return nil
			},
			rel: func() error {
				for i := 0; i < rate/5; i++ {
					if _, err := p.Relational.Execute(`INSERT INTO stream_rel VALUES (1, 0.5)`); err != nil {
						return err
					}
					if _, err := p.Relational.Query(`SELECT AVG(v) FROM stream_rel`); err != nil {
						return err
					}
				}
				return nil
			},
			kv: func() error {
				for i := 0; i < rate/5; i++ {
					if err := p.KV.Put("stream_kv", kvEntry(1, 0.5)); err != nil {
						return err
					}
					rel, err := p.Query(`TEXT(scan(stream_kv))`)
					if err != nil {
						return err
					}
					sum := 0.0
					vi := rel.Schema.Index("value")
					for _, t := range rel.Tuples {
						sum += t[vi].AsFloat()
					}
					_ = sum
				}
				return nil
			},
		},
	}

	timeIt := func(fn func() error) (time.Duration, error) {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := fn(); err != nil {
				return 0, err
			}
		}
		return time.Since(start) / time.Duration(iters), nil
	}

	t := Table{
		ID:     "E1",
		Title:  "mixed MIMIC workload: polystore vs one-size-fits-all",
		Claim:  "§4: polystore outperforms a one-size-fits-all system by 1–2 orders of magnitude",
		Header: []string{"task", "polystore(ms)", "all-relational(ms)", "all-kv(ms)"},
	}
	var totalPoly, totalRel, totalKV time.Duration
	for _, task := range tasks {
		dp, err := timeIt(task.poly)
		if err != nil {
			return t, fmt.Errorf("%s poly: %w", task.name, err)
		}
		dr, err := timeIt(task.rel)
		if err != nil {
			return t, fmt.Errorf("%s rel: %w", task.name, err)
		}
		dk, err := timeIt(task.kv)
		if err != nil {
			return t, fmt.Errorf("%s kv: %w", task.name, err)
		}
		totalPoly += dp
		totalRel += dr
		totalKV += dk
		t.Rows = append(t.Rows, []string{task.name, ms(dp), ms(dr), ms(dk)})
	}
	t.Rows = append(t.Rows, []string{"TOTAL", ms(totalPoly), ms(totalRel), ms(totalKV)})
	t.Notes = fmt.Sprintf("polystore wins overall: %s vs all-relational, %s vs all-kv",
		ratio(totalRel, totalPoly), ratio(totalKV, totalPoly))
	return t, nil
}

func kvEntry(patient int, v float64) (e kvstoreEntry) {
	e.Key.Row = fmt.Sprintf("p%06d", patient)
	e.Key.Family = "s"
	e.Key.Qualifier = "v"
	e.Value = fmt.Sprint(v)
	return e
}

// E2CastBinaryVsCSV measures CAST throughput via the direct binary
// transport against file-based CSV import/export, by cardinality.
func E2CastBinaryVsCSV(cfg Config) (Table, error) {
	t := Table{
		ID:     "E2",
		Title:  "CAST transport: direct binary vs file-based CSV",
		Claim:  "§2.1: casts should be more efficient than file-based import/export",
		Header: []string{"rows", "binary(ms)", "csv-file(ms)", "binary speedup"},
	}
	sizes := []int{1_000, 10_000}
	if !cfg.Quick {
		sizes = append(sizes, 100_000)
	}
	for _, n := range sizes {
		p := core.New()
		rel := engine.NewRelation(engine.NewSchema(
			engine.Col("id", engine.TypeInt), engine.Col("name", engine.TypeString),
			engine.Col("score", engine.TypeFloat)))
		for i := 0; i < n; i++ {
			_ = rel.Append(engine.Tuple{
				engine.NewInt(int64(i)), engine.NewString(fmt.Sprintf("row_%d", i)),
				engine.NewFloat(float64(i) / 3)})
		}
		if err := p.Relational.InsertRelation("src", rel); err != nil {
			return t, err
		}
		if err := p.Register("src", core.EnginePostgres, "src"); err != nil {
			return t, err
		}
		// One untimed warm-up rep (page cache, allocator, goroutine pool),
		// then best-of-N: the mean of cold and warm reps measured nothing
		// but scheduler noise at quick sizes and made this table flaky.
		timeCast := func(mode core.CastMode) (time.Duration, error) {
			const reps = 5
			best := time.Duration(1<<63 - 1)
			for i := 0; i <= reps; i++ {
				res, err := p.Cast("src", core.EngineSciDB, core.CastOptions{Mode: mode})
				if err != nil {
					return 0, err
				}
				if i > 0 && res.Elapsed < best {
					best = res.Elapsed
				}
				_ = p.ArrayStore.Remove(res.Target)
				p.Deregister(res.Target)
			}
			return best, nil
		}
		db, err := timeCast(core.CastDirect)
		if err != nil {
			return t, err
		}
		dc, err := timeCast(core.CastCSVFile)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(n), ms(db), ms(dc), ratio(dc, db)})
	}
	t.Notes = "binary path skips text formatting/parsing and filesystem round trips"
	return t, nil
}

// E3StreamLatency measures S-Store ingest→alert latency and throughput
// with a windowed-aggregate trigger armed, at MIMIC's 125 Hz shape.
func E3StreamLatency(cfg Config) (Table, error) {
	t := Table{
		ID:     "E3",
		Title:  "streaming ingest latency with windowed trigger",
		Claim:  "§1.2: hundreds of Hz with response times in the tens of milliseconds",
		Header: []string{"window", "appends", "avg latency(µs)", "max latency(µs)", "throughput(appends/s)"},
	}
	mcfg := mimic.DefaultConfig()
	n := cfg.scale(5_000, 50_000)
	for _, window := range []int{125, 1250} {
		sys, err := demo.Load(mimic.Config{
			Seed: cfg.Seed, Patients: 10, SampleRate: mcfg.SampleRate,
			WaveformSeconds: 1, NotesPerPatient: 1, LabsPerPatient: 1,
		})
		if err != nil {
			return t, err
		}
		_ = window // demo fixes window to SampleRate; measure with its engine directly below.
		e := sys.Poly.Streams
		if err := e.CreateStream("bench", engine.NewSchema(
			engine.Col("patient", engine.TypeInt), engine.Col("v", engine.TypeFloat)), window); err != nil {
			return t, err
		}
		alerts := 0
		if err := e.RegisterTrigger("bench", "thresh", func(view *streamWindowView, rec streamRecord) error {
			avg, err := view.Aggregate("avg", "v")
			if err != nil {
				return err
			}
			if avg > 0.95 {
				alerts++
			}
			return nil
		}); err != nil {
			return t, err
		}
		var maxLat time.Duration
		start := time.Now()
		for i := 0; i < n; i++ {
			s := time.Now()
			if err := e.Append("bench", streamRecord{
				TS:     int64(i),
				Values: engine.Tuple{engine.NewInt(1), engine.NewFloat(float64(i%100) / 100)},
			}); err != nil {
				return t, err
			}
			if lat := time.Since(s); lat > maxLat {
				maxLat = lat
			}
		}
		elapsed := time.Since(start)
		avgLat := elapsed / time.Duration(n)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(window), fmt.Sprint(n),
			fmt.Sprintf("%.1f", float64(avgLat.Nanoseconds())/1e3),
			fmt.Sprintf("%.1f", float64(maxLat.Nanoseconds())/1e3),
			fmt.Sprintf("%.0f", float64(n)/elapsed.Seconds()),
		})
	}
	t.Notes = "paper needs ~125 appends/s per patient and tens-of-ms alerts; both hold with orders of magnitude to spare"
	return t, nil
}

// E4SeeDBPruning contrasts exhaustive view search with sampling +
// confidence-interval pruning, checking the top view is preserved
// (Figure 2's race×stay view).
func E4SeeDBPruning(cfg Config) (Table, error) {
	t := Table{
		ID:     "E4",
		Title:  "SeeDB: exhaustive vs sampled+pruned view search",
		Claim:  "§2.2: sampling and pruning give reasonable response times while finding the same interesting views",
		Header: []string{"mode", "sample", "rows processed", "views pruned", "time(ms)", "top view"},
	}
	mcfg := mimic.DefaultConfig()
	mcfg.Seed = cfg.Seed
	mcfg.Patients = cfg.scale(400, 2000)
	ds, err := mimic.Generate(mcfg)
	if err != nil {
		return t, err
	}
	rel := flattenAdmissions(ds)
	// The partitioning attribute (ward) is excluded from the candidate
	// dimensions, as SeeDB does — a view keyed on the target predicate's
	// own attribute deviates trivially.
	dims := []string{"race", "sex", "drug"}
	measures := []string{"days"}
	aggs := []seedb.Agg{seedb.AggAvg, seedb.AggSum, seedb.AggCount}

	run := func(opts seedb.Options) ([]seedb.Result, seedb.Stats, time.Duration, error) {
		start := time.Now()
		res, stats, err := seedb.Explore(rel, "ward = 'icu'", dims, measures, aggs, opts)
		return res, stats, time.Since(start), err
	}
	full, fullStats, fullTime, err := run(seedb.Options{K: 3})
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{"exhaustive", "-",
		fmt.Sprint(fullStats.RowsProcessed), "0", ms(fullTime), full[0].View.String()})
	for _, frac := range []float64{0.1, 0.25, 0.5} {
		res, stats, dur, err := run(seedb.Options{K: 3, Prune: true, SampleFraction: frac, Seed: cfg.Seed})
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{"pruned", fmt.Sprintf("%.0f%%", frac*100),
			fmt.Sprint(stats.RowsProcessed), fmt.Sprint(stats.ViewsPruned), ms(dur), res[0].View.String()})
	}
	t.Notes = "all modes surface the race dimension — the Figure 2 finding; pruning pays off as the view lattice and data grow"
	return t, nil
}

// E5TuplewareFusion compares the fused ("compiled") pipeline with the
// materialising staged baseline on a k-means-style UDF workload.
func E5TuplewareFusion(cfg Config) (Table, error) {
	t := Table{
		ID:     "E5",
		Title:  "Tupleware: fused pipeline vs Hadoop-style staged execution",
		Claim:  "§2.5: nearly two orders of magnitude faster than the standard Hadoop codeline",
		Header: []string{"rows", "fused(ms)", "staged(ms)", "speedup"},
	}
	sizes := []int{10_000, 50_000}
	if !cfg.Quick {
		sizes = append(sizes, 200_000)
	}
	for _, n := range sizes {
		data := make([]tupleware.Row, n)
		for i := range data {
			data[i] = tupleware.Row{float64(i % 100), float64((i * 7) % 100), 0}
		}
		p := tupleware.NewPipeline().
			Map(func(r tupleware.Row) tupleware.Row {
				r[2] = r[0]*0.3 + r[1]*0.7
				return r
			}, tupleware.UDFStats{EstCyclesPerCall: 20}).
			Filter(func(r tupleware.Row) bool { return r[2] > 10 }, tupleware.UDFStats{EstCyclesPerCall: 5}).
			Map(func(r tupleware.Row) tupleware.Row {
				r[2] = r[2] * r[2]
				return r
			}, tupleware.UDFStats{EstCyclesPerCall: 10}).
			Reduce(
				func() tupleware.Row { return tupleware.Row{0, 0} },
				func(acc, r tupleware.Row) tupleware.Row { acc[0] += r[2]; acc[1]++; return acc },
				func(a, b tupleware.Row) tupleware.Row { a[0] += b[0]; a[1] += b[1]; return a },
			)
		start := time.Now()
		fusedAcc, _, err := p.RunCompiled(data)
		if err != nil {
			return t, err
		}
		fused := time.Since(start)
		start = time.Now()
		stagedAcc, _, err := p.RunStaged(data, tupleware.DefaultStagedConfig())
		if err != nil {
			return t, err
		}
		staged := time.Since(start)
		if fusedAcc[1] != stagedAcc[1] {
			return t, fmt.Errorf("fused and staged disagree: %v vs %v", fusedAcc, stagedAcc)
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(n), ms(fused), ms(staged), ratio(staged, fused)})
	}
	t.Notes = "staged mode materialises + serialises between stages and pays per-stage scheduling, as Hadoop does"
	return t, nil
}

func flattenAdmissions(ds *mimic.Dataset) *engine.Relation {
	raceOf := map[int64]string{}
	sexOf := map[int64]string{}
	for _, p := range ds.Patients.Tuples {
		raceOf[p[0].I] = p[4].S
		sexOf[p[0].I] = p[3].S
	}
	rel := engine.NewRelation(engine.NewSchema(
		engine.Col("ward", engine.TypeString), engine.Col("race", engine.TypeString),
		engine.Col("sex", engine.TypeString), engine.Col("drug", engine.TypeString),
		engine.Col("days", engine.TypeFloat),
	))
	for _, a := range ds.Admissions.Tuples {
		pid := a[1].I
		_ = rel.Append(engine.Tuple{a[2], engine.NewString(raceOf[pid]), engine.NewString(sexOf[pid]), a[4], a[3]})
	}
	return rel
}

var _ = analytics.Mean // keep import used until E6/E7 reference it
