package experiments

import (
	"fmt"
	"time"

	"repro/internal/analytics"
	"repro/internal/core"
	"repro/internal/demo"
	"repro/internal/engine"
	"repro/internal/kvstore"
	"repro/internal/mimic"
	"repro/internal/monitor"
	"repro/internal/scalar"
	"repro/internal/searchlight"
	"repro/internal/stream"
	"repro/internal/tiledb"
)

// Type aliases keep the experiment bodies readable.
type (
	kvstoreEntry     = kvstore.Entry
	streamWindowView = stream.WindowView
	streamRecord     = stream.Record
)

// E6AdaptivePlacement reproduces §2.1's monitoring story: waveforms
// start in Postgres, a linear-algebra-dominated workload arrives, the
// monitor probes both engines, advises migration, and the workload
// reruns against the array engine.
func E6AdaptivePlacement(cfg Config) (Table, error) {
	t := Table{
		ID:     "E6",
		Title:  "adaptive data placement driven by the monitor",
		Claim:  "§2.1: migrate data objects between engines as query workloads change",
		Header: []string{"phase", "home engine", "workload query avg(ms)", "advice"},
	}
	p := core.New()
	// Waveform samples initially stored relationally.
	nSamples := cfg.scale(4_096, 16_384)
	rel := engine.NewRelation(engine.NewSchema(
		engine.Col("t", engine.TypeInt), engine.Col("v", engine.TypeFloat)))
	w := mimic.Waveform(cfg.Seed, 1, 0, nSamples, 125, false)
	for i, v := range w {
		_ = rel.Append(engine.Tuple{engine.NewInt(int64(i)), engine.NewFloat(v)})
	}
	if err := p.Relational.InsertRelation("waveforms", rel); err != nil {
		return t, err
	}
	if err := p.Register("waveforms", core.EnginePostgres, "waveforms"); err != nil {
		return t, err
	}

	// The linear-algebra workload: pull the signal and compute its FFT
	// power spectrum, whichever engine holds it.
	runWorkload := func() (time.Duration, error) {
		start := time.Now()
		info, _ := p.Lookup("waveforms")
		var vals []float64
		switch info.Engine {
		case core.EnginePostgres:
			res, err := p.Relational.Query(`SELECT v FROM ` + info.Physical + ` ORDER BY t`)
			if err != nil {
				return 0, err
			}
			vals, err = res.Floats("v")
			if err != nil {
				return 0, err
			}
		case core.EngineSciDB:
			a, err := p.ArrayStore.Get(info.Physical)
			if err != nil {
				return 0, err
			}
			vals, err = a.Floats("v")
			if err != nil {
				return 0, err
			}
		}
		_ = analytics.PowerSpectrum(vals)
		return time.Since(start), nil
	}

	const probes = 5
	classify := monitor.ClassLinearAlgebra
	// Like E2, probes record the best of N runs: a scheduler stall in a
	// single rep must not swing the advisor's latency comparison.
	measure := func() (time.Duration, error) {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < probes; i++ {
			d, err := runWorkload()
			if err != nil {
				return 0, err
			}
			if d < best {
				best = d
			}
		}
		info, _ := p.Lookup("waveforms")
		p.Monitor.Record("waveforms", classify, string(info.Engine), best)
		return best, nil
	}

	before, err := measure()
	if err != nil {
		return t, err
	}
	// Probe the alternative engine on a workload sample (the paper's
	// "re-execute portions of a query workload on multiple engines").
	probeRes, err := p.Cast("waveforms", core.EngineSciDB, core.CastOptions{ArrayDims: []string{"t"}, Dense: true})
	if err != nil {
		return t, err
	}
	bestProbe := time.Duration(1<<63 - 1)
	for i := 0; i < probes; i++ {
		start := time.Now()
		a, err := p.ArrayStore.Get(probeRes.Target)
		if err != nil {
			return t, err
		}
		vals, err := a.Floats("v")
		if err != nil {
			return t, err
		}
		_ = analytics.PowerSpectrum(vals)
		if d := time.Since(start); d < bestProbe {
			bestProbe = d
		}
	}
	p.Monitor.Record("waveforms", classify, string(core.EngineSciDB), bestProbe)
	adv := p.Monitor.Advise("waveforms", string(core.EnginePostgres))
	t.Rows = append(t.Rows, []string{"before", "postgres", ms(before), adv.Reason})

	if adv.ShouldMigrate {
		if _, err := p.Migrate("waveforms", core.EngineKind(adv.To),
			core.CastOptions{ArrayDims: []string{"t"}, Dense: true}); err != nil {
			return t, err
		}
	}
	after, err := measure()
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{"after", adv.To, ms(after),
		fmt.Sprintf("migrated=%v, workload %s faster", adv.ShouldMigrate, ratio(before, after))})
	t.Notes = "the monitor probes both engines, detects the linear-algebra-dominant workload and migrates the array"
	return t, nil
}

// E7TightVsLooseCoupling measures §2.4's argument: analytics tightly
// coupled to the array storage versus the loose path that converts
// data formats on every call.
func E7TightVsLooseCoupling(cfg Config) (Table, error) {
	t := Table{
		ID:     "E7",
		Title:  "complex analytics: tight vs loose engine coupling",
		Claim:  "§2.4: loosely coupled DBMS + LA package is expensive due to format conversion",
		Header: []string{"kernel", "tight(ms)", "loose(ms)", "penalty"},
	}
	p := core.New()
	nSamples := cfg.scale(8_192, 32_768)
	w := mimic.Waveform(cfg.Seed, 1, 0, nSamples, 125, false)
	rel := engine.NewRelation(engine.NewSchema(
		engine.Col("t", engine.TypeInt), engine.Col("v", engine.TypeFloat)))
	for i, v := range w {
		_ = rel.Append(engine.Tuple{engine.NewInt(int64(i)), engine.NewFloat(v)})
	}
	if err := p.Load(core.EngineSciDB, "wf", rel, core.CastOptions{ArrayDims: []string{"t"}, Dense: true}); err != nil {
		return t, err
	}

	// FFT kernel: tight = Floats straight off the array; loose = CAST
	// to a relation (full binary round trip) then extract then FFT.
	const reps = 5
	tightFFT := func() (time.Duration, error) {
		start := time.Now()
		for i := 0; i < reps; i++ {
			a, err := p.ArrayStore.Get("wf")
			if err != nil {
				return 0, err
			}
			vals, err := a.Floats("v")
			if err != nil {
				return 0, err
			}
			_ = analytics.PowerSpectrum(vals)
		}
		return time.Since(start) / reps, nil
	}
	looseFFT := func() (time.Duration, error) {
		start := time.Now()
		for i := 0; i < reps; i++ {
			res, err := p.Cast("wf", core.EnginePostgres, core.CastOptions{})
			if err != nil {
				return 0, err
			}
			out, err := p.Relational.Query(`SELECT v FROM ` + res.Target + ` ORDER BY t`)
			if err != nil {
				return 0, err
			}
			vals, err := out.Floats("v")
			if err != nil {
				return 0, err
			}
			_ = analytics.PowerSpectrum(vals)
			_ = p.Relational.DropTable(res.Target)
			p.Deregister(res.Target)
		}
		return time.Since(start) / reps, nil
	}
	dt, err := tightFFT()
	if err != nil {
		return t, err
	}
	dl, err := looseFFT()
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{"FFT power spectrum", ms(dt), ms(dl), ratio(dl, dt)})

	// Sparse matvec on TileDB: tight = per-tile SpMV; loose = dump to a
	// relation and multiply from triples.
	n := int64(cfg.scale(500, 2000))
	ta, err := tiledb.NewArray("spm", tiledb.Box{Lo: []int64{0, 0}, Hi: []int64{n - 1, n - 1}}, 0.5)
	if err != nil {
		return t, err
	}
	var cells []tiledb.Cell
	for i := int64(0); i < n; i++ {
		cells = append(cells,
			tiledb.Cell{Coords: []int64{i, i}, Value: 2},
			tiledb.Cell{Coords: []int64{i, (i + 7) % n}, Value: 1})
	}
	if err := ta.Write(cells); err != nil {
		return t, err
	}
	if err := p.PutTileDB(ta); err != nil {
		return t, err
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i%13) / 3
	}
	start := time.Now()
	for i := 0; i < reps; i++ {
		if _, err := ta.SpMV(x); err != nil {
			return t, err
		}
	}
	dTight := time.Since(start) / reps
	start = time.Now()
	for i := 0; i < reps; i++ {
		triples, err := p.Dump("spm")
		if err != nil {
			return t, err
		}
		y := make([]float64, n)
		r0, c0, v0 := triples.Schema.Index("d0"), triples.Schema.Index("d1"), triples.Schema.Index("v")
		for _, tr := range triples.Tuples {
			y[tr[r0].AsInt()] += tr[v0].AsFloat() * x[tr[c0].AsInt()]
		}
	}
	dLoose := time.Since(start) / reps
	t.Rows = append(t.Rows, []string{"sparse matvec (TileDB)", ms(dTight), ms(dLoose), ratio(dLoose, dTight)})
	t.Notes = "tight coupling iterates storage-native tiles/vectors; loose coupling pays a full format conversion per call"
	return t, nil
}

// E8SearchlightSynopsis contrasts synopsis-guided CP search with the
// exhaustive baseline and sweeps synopsis resolution (ablation).
func E8SearchlightSynopsis(cfg Config) (Table, error) {
	t := Table{
		ID:     "E8",
		Title:  "Searchlight: synopsis+validate vs exhaustive CP search",
		Claim:  "§2.2: speculate on in-memory synopses, then validate candidates on the actual data",
		Header: []string{"mode", "block", "raw points read", "matches", "time(ms)"},
	}
	n := cfg.scale(60_000, 250_000)
	sig := mimic.Waveform(cfg.Seed, 3, 0, n, 125, false)
	q := searchlight.Query{
		WindowLen: 64,
		Constraints: []searchlight.Constraint{
			{Agg: "avg", Lo: -0.02, Hi: 0.02},
			{Agg: "max", Lo: -10, Hi: 1.4},
		},
	}
	start := time.Now()
	exMatches, exStats, err := searchlight.SearchExhaustive(sig, q)
	if err != nil {
		return t, err
	}
	exTime := time.Since(start)
	t.Rows = append(t.Rows, []string{"exhaustive", "-",
		fmt.Sprint(exStats.RawPointsRead), fmt.Sprint(len(exMatches)), ms(exTime)})
	for _, block := range []int{8, 32, 128} {
		syn, err := searchlight.BuildSynopsis(sig, block)
		if err != nil {
			return t, err
		}
		start := time.Now()
		matches, stats, err := searchlight.Search(sig, syn, q)
		if err != nil {
			return t, err
		}
		dur := time.Since(start)
		if len(matches) != len(exMatches) {
			return t, fmt.Errorf("synopsis changed result: %d vs %d", len(matches), len(exMatches))
		}
		t.Rows = append(t.Rows, []string{"synopsis", fmt.Sprint(block),
			fmt.Sprint(stats.RawPointsRead), fmt.Sprint(len(matches)), ms(dur)})
	}
	t.Notes = "identical matches in every mode; the synopsis trades a small index for most of the raw reads"
	return t, nil
}

// E9ScalaRPrefetch measures tile-fetch behaviour across a pan/zoom
// trace with and without prefetching.
func E9ScalaRPrefetch(cfg Config) (Table, error) {
	t := Table{
		ID:     "E9",
		Title:  "ScalaR: detail-on-demand browsing with prefetch",
		Claim:  "§1: prefetches data in anticipation of user movements for interactive response",
		Header: []string{"policy", "gestures", "cache hits", "misses", "avg gesture(ms)"},
	}
	mcfg := mimic.DefaultConfig()
	patients := int64(cfg.scale(32, 64))
	samples := int64(cfg.scale(2_048, 8_192))
	src, err := demoWaveformMap(cfg.Seed, patients, samples, mcfg.SampleRate)
	if err != nil {
		return t, err
	}
	// A pan-heavy session at the deepest level plus two zooms.
	var trace [][3]int
	trace = append(trace, [3]int{0, 0, 0}, [3]int{1, 0, 0}, [3]int{1, 1, 1})
	for x := 0; x < 8; x++ {
		trace = append(trace, [3]int{3, x, 4})
	}
	for y := 4; y >= 0; y-- {
		trace = append(trace, [3]int{3, 7, y})
	}
	for _, prefetch := range []bool{false, true} {
		b, err := scalar.NewBrowser(src, "v", 16, 4, 512)
		if err != nil {
			return t, err
		}
		b.Prefetch = prefetch
		// Measure only the interactive Fetch path; background prefetch
		// overlaps the user's think time between gestures (Quiesce).
		var elapsed time.Duration
		for _, step := range trace {
			start := time.Now()
			if _, err := b.Fetch(step[0], step[1], step[2]); err != nil {
				return t, err
			}
			elapsed += time.Since(start)
			b.Quiesce()
		}
		st := b.Stats()
		name := "no prefetch"
		if prefetch {
			name = "prefetch"
		}
		t.Rows = append(t.Rows, []string{name, fmt.Sprint(len(trace)),
			fmt.Sprint(st.CacheHits), fmt.Sprint(st.CacheMiss),
			ms(elapsed / time.Duration(len(trace)))})
	}
	t.Notes = "prefetching converts pans/zooms into cache hits; total work shifts off the interaction path"
	return t, nil
}

func demoWaveformMap(seed, patients, samples int64, rate int) (*arrayArray, error) {
	src, err := newArray("wf_map", patients, samples)
	if err != nil {
		return nil, err
	}
	for pid := int64(1); pid <= patients; pid++ {
		w := mimic.Waveform(seed, int(pid), 0, int(samples), rate, false)
		for i, v := range w {
			if err := src.Set([]int64{pid, int64(i)}, engine.Tuple{engine.NewFloat(v)}); err != nil {
				return nil, err
			}
		}
	}
	return src, nil
}

// E10EngineSpecialisation runs each query class on each engine — the
// "no single engine wins everywhere" grid that motivates the polystore.
func E10EngineSpecialisation(cfg Config) (Table, error) {
	t := Table{
		ID:     "E10",
		Title:  "engine specialisation grid (rows: query class; columns: engine)",
		Claim:  "§1.2: each workload class performs best on a specialised engine ('one size does not fit all')",
		Header: []string{"query class", "postgres(ms)", "scidb(ms)", "accumulo(ms)", "winner"},
	}
	mcfg := mimic.DefaultConfig()
	mcfg.Seed = cfg.Seed
	mcfg.Patients = cfg.scale(150, 400)
	sys, err := demo.Load(mcfg)
	if err != nil {
		return t, err
	}
	p := sys.Poly

	// Replicate the three core datasets onto all three engines.
	if _, err := p.Cast("patients", core.EngineSciDB, core.CastOptions{TargetName: "patients_arr"}); err != nil {
		return t, err
	}
	if _, err := p.Cast("patients", core.EngineAccumulo, core.CastOptions{TargetName: "patients_kv"}); err != nil {
		return t, err
	}
	if _, err := p.Cast("waveforms", core.EnginePostgres, core.CastOptions{TargetName: "wf_rel"}); err != nil {
		return t, err
	}
	if _, err := p.Cast("waveforms", core.EngineAccumulo, core.CastOptions{TargetName: "wf_kv"}); err != nil {
		return t, err
	}
	if _, err := p.Cast("notes", core.EnginePostgres, core.CastOptions{TargetName: "notes_rel"}); err != nil {
		return t, err
	}
	notesArr, err := p.Cast("notes", core.EngineSciDB, core.CastOptions{TargetName: "notes_arr_tmp"})
	// Notes cast to an array is text-heavy and not meaningful; treat as
	// unsupported, which is itself the point of islands exposing the
	// intersection of capabilities.
	notesOnArray := err == nil
	_ = notesArr

	iters := cfg.scale(3, 10)
	timeQ := func(fn func() error) (time.Duration, error) {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := fn(); err != nil {
				return 0, err
			}
		}
		return time.Since(start) / time.Duration(iters), nil
	}
	query := func(q string) func() error {
		return func() error {
			_, err := p.Query(q)
			return err
		}
	}
	type row struct {
		class   string
		pg, arr func() error
		kv      func() error
	}
	rows := []row{
		{
			class: "selective lookup",
			pg:    query(`POSTGRES(SELECT * FROM patients WHERE id = 77)`),
			arr:   query(`SCIDB(filter(patients_arr, id = 77))`),
			kv:    query(`TEXT(get(patients_kv, '77'))`),
		},
		{
			class: "SQL aggregate",
			pg:    query(`POSTGRES(SELECT race, AVG(age) FROM patients GROUP BY race)`),
			arr:   query(`SCIDB(aggregate(patients_arr, avg(age)))`),
			kv: func() error {
				// KV must scan and fold client-side.
				rel, err := p.Query(`TEXT(scan(patients_kv))`)
				if err != nil {
					return err
				}
				sums := map[string]float64{}
				ns := map[string]int{}
				var lastRace string
				for _, tp := range rel.Tuples {
					if tp[2].S == "race" {
						lastRace = tp[4].S
					}
					if tp[2].S == "age" {
						sums[lastRace] += tp[4].AsFloat()
						ns[lastRace]++
					}
				}
				return nil
			},
		},
		{
			class: "windowed array math",
			pg: func() error {
				rel, err := p.Query(`POSTGRES(SELECT v FROM wf_rel WHERE patient = 1 ORDER BY t)`)
				if err != nil {
					return err
				}
				vals, err := rel.Floats("v")
				if err != nil {
					return err
				}
				_ = analytics.PowerSpectrum(vals)
				return nil
			},
			arr: func() error {
				a, err := p.ArrayStore.Get("waveforms")
				if err != nil {
					return err
				}
				sub, err := a.Subarray([]int64{1, 0}, []int64{1, int64(mcfg.SampleRate*mcfg.WaveformSeconds - 1)})
				if err != nil {
					return err
				}
				vals, err := sub.Scan().Floats("v")
				if err != nil {
					return err
				}
				_ = analytics.PowerSpectrum(vals)
				return nil
			},
			kv: func() error {
				rel, err := p.Query(`TEXT(scan(wf_kv, '1', '1'))`)
				if err != nil {
					return err
				}
				vals := make([]float64, 0, rel.Len())
				for _, tp := range rel.Tuples {
					if tp[2].S == "v" {
						vals = append(vals, tp[4].AsFloat())
					}
				}
				_ = analytics.PowerSpectrum(vals)
				return nil
			},
		},
		{
			class: "text search",
			pg:    query(`POSTGRES(SELECT row, COUNT(*) FROM notes_rel WHERE value LIKE '%very sick%' GROUP BY row HAVING COUNT(*) >= 3)`),
			arr: func() error {
				if !notesOnArray {
					return nil
				}
				return nil // arrays cannot express text search; island refuses
			},
			kv: query(`TEXT(search(notes, 'very sick', 3))`),
		},
	}
	for _, r := range rows {
		dp, err := timeQ(r.pg)
		if err != nil {
			return t, fmt.Errorf("%s/postgres: %w", r.class, err)
		}
		da, err := timeQ(r.arr)
		if err != nil {
			return t, fmt.Errorf("%s/scidb: %w", r.class, err)
		}
		dk, err := timeQ(r.kv)
		if err != nil {
			return t, fmt.Errorf("%s/accumulo: %w", r.class, err)
		}
		arrCell := ms(da)
		if r.class == "text search" {
			arrCell = "n/a"
		}
		winner := "postgres"
		best := dp
		if da < best && r.class != "text search" {
			winner, best = "scidb", da
		}
		if dk < best {
			winner = "accumulo"
		}
		t.Rows = append(t.Rows, []string{r.class, ms(dp), arrCell, ms(dk), winner})
	}
	// Specialisation also applies inside one engine: the relational
	// island's vectorized columnar executor vs its row-at-a-time
	// fallback on the same aggregate plan.
	aggQ := query(`POSTGRES(SELECT race, AVG(age) FROM patients GROUP BY race)`)
	dVec, err := timeQ(aggQ)
	if err != nil {
		return t, err
	}
	p.Relational.SetVectorized(false)
	dRow, err := timeQ(aggQ)
	p.Relational.SetVectorized(true)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{"SQL aggregate (row executor)", ms(dRow), "n/a", "n/a",
		"vectorized " + ratio(dRow, dVec) + " faster"})
	t.Notes = "the winner changes per class — the motivating observation for islands of information"
	return t, nil
}

// newArray builds a dense patient×time array (shared by E9).
func newArray(name string, patients, samples int64) (*arrayArray, error) {
	return arrayNew(name, patients, samples)
}
