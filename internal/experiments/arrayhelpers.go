package experiments

import (
	"repro/internal/array"
	"repro/internal/engine"
)

// arrayArray aliases the array engine's type for the helpers here.
type arrayArray = array.Array

func arrayNew(name string, patients, samples int64) (*arrayArray, error) {
	return array.New(name, []array.Dim{
		{Name: "patient", Low: 1, High: patients},
		{Name: "t", Low: 0, High: samples - 1},
	}, []engine.Column{engine.Col("v", engine.TypeFloat)}, true)
}
