package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// The experiments are exercised end-to-end by the root-level
// TestExperimentsRunAll; the tests here pin down the *shape* claims of
// individual tables at quick sizes.

func quickCfg() Config { return Config{Quick: true, Seed: 1} }

func cell(t Table, row, col int) string { return t.Rows[row][col] }

func cellFloat(tb testing.TB, t Table, row, col int) float64 {
	tb.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(t.Rows[row][col]), 64)
	if err != nil {
		tb.Fatalf("%s cell (%d,%d) = %q not numeric: %v", t.ID, row, col, t.Rows[row][col], err)
	}
	return v
}

func TestE1PolystoreWinsOverall(t *testing.T) {
	tab, err := E1PolystoreVsOneSize(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	last := len(tab.Rows) - 1
	if cell(tab, last, 0) != "TOTAL" {
		t.Fatalf("last row should be TOTAL: %v", tab.Rows[last])
	}
	poly := cellFloat(t, tab, last, 1)
	rel := cellFloat(t, tab, last, 2)
	kv := cellFloat(t, tab, last, 3)
	if poly >= rel || poly >= kv {
		t.Errorf("polystore should win the mixed workload: poly=%v rel=%v kv=%v", poly, rel, kv)
	}
	// The claimed shape: at least an order of magnitude against each.
	if rel/poly < 10 || kv/poly < 10 {
		t.Errorf("expected ≥10x: rel/poly=%.1f kv/poly=%.1f", rel/poly, kv/poly)
	}
}

func TestE2BinaryBeatsCSV(t *testing.T) {
	tab, err := E2CastBinaryVsCSV(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		binary := cellFloat(t, tab, i, 1)
		csv := cellFloat(t, tab, i, 2)
		if binary >= csv {
			t.Errorf("row %d: binary %.3fms should beat csv %.3fms", i, binary, csv)
		}
	}
}

func TestE3MeetsLatencyBudget(t *testing.T) {
	tab, err := E3StreamLatency(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		avgMicros := cellFloat(t, tab, i, 2)
		if avgMicros > 10_000 { // tens of ms budget = 10,000 µs ceiling
			t.Errorf("row %d: avg append latency %vµs exceeds tens-of-ms budget", i, avgMicros)
		}
		throughput := cellFloat(t, tab, i, 4)
		if throughput < 125 {
			t.Errorf("row %d: throughput %v below 125 Hz", i, throughput)
		}
	}
}

func TestE5FusedBeatsStaged(t *testing.T) {
	tab, err := E5TuplewareFusion(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		fused := cellFloat(t, tab, i, 1)
		staged := cellFloat(t, tab, i, 2)
		if fused >= staged {
			t.Errorf("row %d: fused %.3fms should beat staged %.3fms", i, fused, staged)
		}
	}
}

func TestE6MigrationHelps(t *testing.T) {
	tab, err := E6AdaptivePlacement(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	before := cellFloat(t, tab, 0, 2)
	after := cellFloat(t, tab, 1, 2)
	if after >= before {
		t.Errorf("post-migration workload should be faster: %.3f vs %.3f", after, before)
	}
	if !strings.Contains(tab.Rows[1][3], "migrated=true") {
		t.Errorf("advisor should have migrated: %v", tab.Rows[1])
	}
}

func TestE10DiagonalWins(t *testing.T) {
	tab, err := E10EngineSpecialisation(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	winners := map[string]string{}
	for _, row := range tab.Rows {
		winners[row[0]] = row[4]
	}
	if winners["selective lookup"] != "postgres" {
		t.Errorf("lookup winner: %v", winners)
	}
	if winners["text search"] != "accumulo" {
		t.Errorf("text winner: %v", winners)
	}
	// The full grid must not have a single universal winner.
	distinct := map[string]bool{}
	for _, w := range winners {
		distinct[w] = true
	}
	if len(distinct) < 2 {
		t.Errorf("one engine won everything — contradicts the premise: %v", winners)
	}
}

func TestE11PushdownMovesLess(t *testing.T) {
	tab, err := E11CastPushdown(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Rows: full CAST, pushdown CAST, query planner off, query planner on.
	fullBytes := cellFloat(t, tab, 0, 2)
	pushedBytes := cellFloat(t, tab, 1, 2)
	if fullBytes/pushedBytes < 5 {
		t.Errorf("pushdown should move ≥5x fewer bytes: full=%v pushed=%v", fullBytes, pushedBytes)
	}
	fullRows := cellFloat(t, tab, 0, 1)
	pushedRows := cellFloat(t, tab, 1, 1)
	if pushedRows*10 != fullRows {
		t.Errorf("10%% selectivity expected: %v of %v rows moved", pushedRows, fullRows)
	}
	// The planner must not change the query answer (checked inside E11
	// too; this pins the reported row counts).
	if cell(tab, 2, 1) != cell(tab, 3, 1) {
		t.Errorf("planner changed result cardinality: %v vs %v", tab.Rows[2], tab.Rows[3])
	}
}

func TestTableString(t *testing.T) {
	tab := Table{
		ID: "EX", Title: "demo", Claim: "c",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  "n",
	}
	s := tab.String()
	for _, want := range []string{"EX", "demo", "paper claim", "a", "1", "note: n"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table.String missing %q:\n%s", want, s)
		}
	}
}
