package monitor

import (
	"testing"
	"time"
)

func TestRecordAndLatency(t *testing.T) {
	m := New()
	m.Record("waveforms", ClassLinearAlgebra, "scidb", 10*time.Millisecond)
	ms, ok := m.Latency("waveforms", ClassLinearAlgebra, "scidb")
	if !ok || ms != 10 {
		t.Errorf("latency = %v %v", ms, ok)
	}
	if _, ok := m.Latency("waveforms", ClassLookup, "scidb"); ok {
		t.Error("unobserved class should report !ok")
	}
}

func TestEWMARecencyBias(t *testing.T) {
	m := New()
	// Old slow observations followed by fast ones: smoothed value must
	// approach the recent regime.
	for i := 0; i < 5; i++ {
		m.Record("t", ClassLookup, "e", 100*time.Millisecond)
	}
	for i := 0; i < 20; i++ {
		m.Record("t", ClassLookup, "e", 1*time.Millisecond)
	}
	ms, _ := m.Latency("t", ClassLookup, "e")
	if ms > 5 {
		t.Errorf("EWMA too sticky: %v ms", ms)
	}
}

func TestDominantClass(t *testing.T) {
	m := New()
	if _, ok := m.DominantClass("x"); ok {
		t.Error("unknown object should report !ok")
	}
	m.Record("wf", ClassSQLAnalytics, "postgres", time.Millisecond)
	m.Record("wf", ClassLinearAlgebra, "postgres", time.Millisecond)
	m.Record("wf", ClassLinearAlgebra, "postgres", time.Millisecond)
	class, ok := m.DominantClass("wf")
	if !ok || class != ClassLinearAlgebra {
		t.Errorf("dominant = %v %v", class, ok)
	}
}

func TestBestEngineRequiresObservations(t *testing.T) {
	m := New()
	m.MinObservations = 3
	m.Record("wf", ClassLinearAlgebra, "scidb", time.Millisecond)
	if _, _, ok := m.BestEngine("wf", ClassLinearAlgebra); ok {
		t.Error("one observation should not qualify with MinObservations=3")
	}
	m.Record("wf", ClassLinearAlgebra, "scidb", time.Millisecond)
	m.Record("wf", ClassLinearAlgebra, "scidb", time.Millisecond)
	eng, ms, ok := m.BestEngine("wf", ClassLinearAlgebra)
	if !ok || eng != "scidb" || ms <= 0 {
		t.Errorf("best = %v %v %v", eng, ms, ok)
	}
}

func TestAdviseMigration(t *testing.T) {
	m := New()
	// Waveforms live in Postgres; linear-algebra queries dominate and
	// the array-store probe is 10x faster → migrate.
	for i := 0; i < 5; i++ {
		m.Record("waveforms", ClassLinearAlgebra, "postgres", 50*time.Millisecond)
		m.Record("waveforms", ClassLinearAlgebra, "scidb", 5*time.Millisecond) // probe
	}
	adv := m.Advise("waveforms", "postgres")
	if !adv.ShouldMigrate || adv.To != "scidb" {
		t.Fatalf("advice: %+v", adv)
	}
	if adv.Speedup < 5 {
		t.Errorf("speedup %v", adv.Speedup)
	}
}

func TestAdviseStaysWhenCurrentBest(t *testing.T) {
	m := New()
	for i := 0; i < 3; i++ {
		m.Record("patients", ClassLookup, "postgres", time.Millisecond)
		m.Record("patients", ClassLookup, "scidb", 20*time.Millisecond)
	}
	adv := m.Advise("patients", "postgres")
	if adv.ShouldMigrate {
		t.Errorf("should not migrate: %+v", adv)
	}
}

func TestAdviseBelowThreshold(t *testing.T) {
	m := New()
	m.MinSpeedup = 2.0
	for i := 0; i < 3; i++ {
		m.Record("t", ClassSQLAnalytics, "a", 10*time.Millisecond)
		m.Record("t", ClassSQLAnalytics, "b", 8*time.Millisecond)
	}
	adv := m.Advise("t", "a")
	if adv.ShouldMigrate {
		t.Errorf("1.25x speedup should not trigger at 2x threshold: %+v", adv)
	}
}

func TestAdviseNoObservations(t *testing.T) {
	m := New()
	adv := m.Advise("ghost", "postgres")
	if adv.ShouldMigrate || adv.Reason == "" {
		t.Errorf("advice on unknown object: %+v", adv)
	}
}

// fakeClock is an advanceable clock for staleness tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1700000000, 0)} }
func withFakeClock(m *Monitor) *fakeClock    { c := newFakeClock(); m.SetClock(c.now); return c }
func record(m *Monitor, e string, ms float64) {
	m.Record("wf", ClassLinearAlgebra, e, time.Duration(ms*1e6))
}

// TestBestEngineAgesOut is the staleness regression: an engine that
// stops serving a class must stop dominating placement advice. Before
// MaxAge, its EWMA entry lived forever — a long-dead 1ms probe would
// outrank every live engine indefinitely.
func TestBestEngineAgesOut(t *testing.T) {
	m := New()
	clk := withFakeClock(m)
	record(m, "scidb", 1) // fast, but about to go stale
	clk.advance(2 * time.Hour)
	record(m, "postgres", 20) // slow, but live
	eng, _, ok := m.BestEngine("wf", ClassLinearAlgebra)
	if !ok || eng != "postgres" {
		t.Fatalf("stale engine still wins: %q ok=%v", eng, ok)
	}
	// A fresh observation brings the fast engine back.
	record(m, "scidb", 1)
	eng, _, _ = m.BestEngine("wf", ClassLinearAlgebra)
	if eng != "scidb" {
		t.Fatalf("refreshed engine not restored: %q", eng)
	}
}

// TestBestEngineAllStale proves a fully stale class reports no engine
// at all rather than advising from ancient data.
func TestBestEngineAllStale(t *testing.T) {
	m := New()
	clk := withFakeClock(m)
	record(m, "scidb", 1)
	clk.advance(3 * time.Hour)
	if eng, _, ok := m.BestEngine("wf", ClassLinearAlgebra); ok {
		t.Fatalf("all-stale class still advised %q", eng)
	}
}

// TestDominantClassDecays: a historical pile of SQL accesses must not
// outweigh the current linear-algebra workload forever.
func TestDominantClassDecays(t *testing.T) {
	m := New()
	clk := withFakeClock(m)
	for i := 0; i < 100; i++ {
		m.Record("wf", ClassSQLAnalytics, "postgres", time.Millisecond)
	}
	clk.advance(3 * time.Hour) // 12 half-lives: 100 → ~0.02
	for i := 0; i < 3; i++ {
		m.Record("wf", ClassLinearAlgebra, "scidb", time.Millisecond)
	}
	class, ok := m.DominantClass("wf")
	if !ok || class != ClassLinearAlgebra {
		t.Fatalf("dominant class stuck on history: %v ok=%v", class, ok)
	}
}

func TestTotalObservations(t *testing.T) {
	m := New()
	if m.TotalObservations() != 0 {
		t.Fatal("fresh monitor has observations")
	}
	m.Record("a", ClassLookup, "postgres", time.Millisecond)
	m.Record("b", ClassLookup, "postgres", time.Millisecond)
	if got := m.TotalObservations(); got != 2 {
		t.Fatalf("total = %d, want 2", got)
	}
}

func TestAdviseWorkloadShift(t *testing.T) {
	// The paper's scenario: workload shifts from SQL to linear algebra
	// and the advice flips.
	m := New()
	for i := 0; i < 10; i++ {
		m.Record("wf", ClassSQLAnalytics, "postgres", 2*time.Millisecond)
		m.Record("wf", ClassSQLAnalytics, "scidb", 20*time.Millisecond)
	}
	if m.Advise("wf", "postgres").ShouldMigrate {
		t.Fatal("should stay in postgres while SQL dominates")
	}
	// Shift: many more linear-algebra queries arrive.
	for i := 0; i < 30; i++ {
		m.Record("wf", ClassLinearAlgebra, "postgres", 80*time.Millisecond)
		m.Record("wf", ClassLinearAlgebra, "scidb", 4*time.Millisecond)
	}
	adv := m.Advise("wf", "postgres")
	if !adv.ShouldMigrate || adv.To != "scidb" || adv.Class != ClassLinearAlgebra {
		t.Errorf("post-shift advice: %+v", adv)
	}
}
