// Package monitor implements BigDAWG's cross-system monitoring (§2.1 of
// the paper): it observes which engines execute which classes of
// queries fastest and advises migrating data objects between storage
// engines as query workloads change ("if the majority of the queries
// accessing MIMIC II's waveforms use linear algebra, this data would
// naturally be migrated to an array store").
//
// The monitor is deliberately engine-agnostic: the polystore records
// (object, query class, engine, latency) observations — including
// probe runs that re-execute workload samples on alternative engines —
// and asks for placement advice.
package monitor

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// QueryClass buckets queries by the capability they exercise.
type QueryClass string

// Query classes observed in the MIMIC II workload.
const (
	ClassLookup        QueryClass = "lookup"         // selective point/range reads
	ClassSQLAnalytics  QueryClass = "sql_analytics"  // aggregates, joins
	ClassLinearAlgebra QueryClass = "linear_algebra" // FFT, matmul, regression
	ClassTextSearch    QueryClass = "text_search"    // keyword search
	ClassStreaming     QueryClass = "streaming"      // windowed real-time ops
)

// ewma smooths latencies so recent workload shifts dominate. last
// remembers when the engine was last observed, so entries for engines
// that stop serving a class age out of placement advice instead of
// dominating it forever.
type ewma struct {
	value float64 // milliseconds
	n     int64
	last  time.Time
}

const ewmaAlpha = 0.3

func (e *ewma) add(ms float64, now time.Time) {
	if e.n == 0 {
		e.value = ms
	} else {
		e.value = ewmaAlpha*ms + (1-ewmaAlpha)*e.value
	}
	e.n++
	e.last = now
}

type engineKey struct {
	object string
	class  QueryClass
	engine string
}

type accessKey struct {
	object string
	class  QueryClass
}

// accessStat is a time-decayed access count: count halves every
// DecayHalfLife of silence, so DominantClass tracks the *current*
// workload mix rather than all of history.
type accessStat struct {
	count float64
	last  time.Time
}

// decayed returns the count as of now.
func (a *accessStat) decayed(now time.Time, halfLife time.Duration) float64 {
	if halfLife <= 0 || a.last.IsZero() {
		return a.count
	}
	dt := now.Sub(a.last)
	if dt <= 0 {
		return a.count
	}
	return a.count * math.Exp2(-float64(dt)/float64(halfLife))
}

// Monitor accumulates observations and produces placement advice.
type Monitor struct {
	mu       sync.Mutex
	latency  map[engineKey]*ewma
	accesses map[accessKey]*accessStat
	total    int64

	// MinObservations gates advice: an engine must have been probed at
	// least this many times for a class before it can be recommended.
	MinObservations int64
	// MinSpeedup gates migration: the target must beat the current
	// engine by at least this factor on the dominant class.
	MinSpeedup float64
	// MaxAge bounds how long a latency observation stays eligible for
	// BestEngine: an engine not observed for a class within MaxAge no
	// longer competes. Zero disables age-out.
	MaxAge time.Duration
	// DecayHalfLife halves an (object, class) access count for every
	// half-life of silence, so the dominant class follows the current
	// workload. Zero disables decay.
	DecayHalfLife time.Duration

	// now is the clock, injectable for staleness tests.
	now func() time.Time
}

// New creates a monitor with default thresholds: advice follows the
// last hour of latency observations and a 15-minute access half-life.
func New() *Monitor {
	return &Monitor{
		latency:         map[engineKey]*ewma{},
		accesses:        map[accessKey]*accessStat{},
		MinObservations: 1,
		MinSpeedup:      1.5,
		MaxAge:          time.Hour,
		DecayHalfLife:   15 * time.Minute,
		now:             time.Now,
	}
}

// SetClock overrides the monitor's clock — staleness regression tests
// advance a fake clock instead of sleeping.
func (m *Monitor) SetClock(now func() time.Time) {
	m.mu.Lock()
	m.now = now
	m.mu.Unlock()
}

// Record stores one observation of a query over an object executed on
// an engine. Probe re-executions record the same way, letting the
// monitor "re-execute portions of a query workload on multiple
// engines, learning which engines excel at which types of queries".
func (m *Monitor) Record(object string, class QueryClass, engineName string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	k := engineKey{object, class, engineName}
	e := m.latency[k]
	if e == nil {
		e = &ewma{}
		m.latency[k] = e
	}
	e.add(float64(d.Nanoseconds())/1e6, now)
	ak := accessKey{object, class}
	a := m.accesses[ak]
	if a == nil {
		a = &accessStat{}
		m.accesses[ak] = a
	}
	a.count = a.decayed(now, m.DecayHalfLife) + 1
	a.last = now
	m.total++
}

// TotalObservations reports how many observations Record has stored —
// undecayed, so tests can pin "one observation per query".
func (m *Monitor) TotalObservations() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total
}

// Latency returns the smoothed latency (ms) for an (object, class,
// engine) triple; ok=false if never observed.
func (m *Monitor) Latency(object string, class QueryClass, engineName string) (float64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.latency[engineKey{object, class, engineName}]
	if !ok {
		return 0, false
	}
	return e.value, true
}

// DominantClass returns the query class most frequently hitting the
// object, weighted by recency (access counts decay with DecayHalfLife);
// ok=false if the object was never queried.
func (m *Monitor) DominantClass(object string) (QueryClass, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	var best QueryClass
	bestN := -1.0
	// Deterministic tie-break by class name.
	keys := make([]accessKey, 0)
	for k := range m.accesses {
		if k.object == object {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].class < keys[j].class })
	for _, k := range keys {
		if n := m.accesses[k].decayed(now, m.DecayHalfLife); n > bestN {
			best, bestN = k.class, n
		}
	}
	if bestN < 0 {
		return "", false
	}
	return best, true
}

// BestEngine returns the engine with the lowest smoothed latency for
// the object's query class among engines with enough observations.
// Engines not observed within MaxAge are excluded — an engine that
// stopped serving a class cannot dominate advice on stale data.
func (m *Monitor) BestEngine(object string, class QueryClass) (string, float64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	bestEngine := ""
	bestMs := 0.0
	// Deterministic iteration.
	keys := make([]engineKey, 0)
	for k := range m.latency {
		if k.object == object && k.class == class {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].engine < keys[j].engine })
	for _, k := range keys {
		e := m.latency[k]
		if e.n < m.MinObservations {
			continue
		}
		if m.MaxAge > 0 && now.Sub(e.last) > m.MaxAge {
			continue
		}
		if bestEngine == "" || e.value < bestMs {
			bestEngine, bestMs = k.engine, e.value
		}
	}
	return bestEngine, bestMs, bestEngine != ""
}

// Advice is a migration recommendation.
type Advice struct {
	Object        string
	From, To      string
	Class         QueryClass
	CurrentMs     float64
	TargetMs      float64
	Speedup       float64
	ShouldMigrate bool
	Reason        string
}

// Advise evaluates whether the object should move off currentEngine,
// judged on its dominant query class.
func (m *Monitor) Advise(object, currentEngine string) Advice {
	class, ok := m.DominantClass(object)
	if !ok {
		return Advice{Object: object, From: currentEngine, Reason: "no observations"}
	}
	target, targetMs, ok := m.BestEngine(object, class)
	if !ok {
		return Advice{Object: object, From: currentEngine, Class: class, Reason: "no probed engine"}
	}
	currentMs, haveCurrent := m.Latency(object, class, currentEngine)
	adv := Advice{
		Object: object, From: currentEngine, To: target, Class: class,
		CurrentMs: currentMs, TargetMs: targetMs,
	}
	if target == currentEngine {
		adv.Reason = "current engine already best"
		return adv
	}
	if !haveCurrent {
		adv.Reason = "current engine never observed"
		return adv
	}
	if targetMs <= 0 {
		adv.Reason = "degenerate probe latency"
		return adv
	}
	adv.Speedup = currentMs / targetMs
	if adv.Speedup >= m.MinSpeedup {
		adv.ShouldMigrate = true
		adv.Reason = fmt.Sprintf("%s workload %.1fx faster on %s", class, adv.Speedup, target)
	} else {
		adv.Reason = fmt.Sprintf("speedup %.2fx below threshold %.2fx", adv.Speedup, m.MinSpeedup)
	}
	return adv
}
