package analytics

import (
	"math"
	"testing"
)

func benchSignal(n int) []float64 {
	sig := make([]float64, n)
	for i := range sig {
		sig[i] = math.Sin(2*math.Pi*float64(i)/125) + 0.3*math.Sin(2*math.Pi*float64(i)/17)
	}
	return sig
}

func BenchmarkFFT(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 14} {
		sig := benchSignal(n)
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = FFT(sig)
			}
		})
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1<<20:
		return "1M"
	case n >= 1<<14:
		return "16k"
	default:
		return "1k"
	}
}

func BenchmarkLinearRegression(b *testing.B) {
	const n = 5_000
	xs := make([][]float64, n)
	y := make([]float64, n)
	for i := range xs {
		x1, x2 := float64(i%97), float64((i*13)%89)
		xs[i] = []float64{x1, x2}
		y[i] = 3 + 2*x1 - x2 + float64(i%5)/10
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LinearRegression(xs, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPCA(b *testing.B) {
	const n, d = 2_000, 8
	data := make([][]float64, n)
	for i := range data {
		row := make([]float64, d)
		for j := range row {
			row[j] = float64((i*(j+3))%101) / 10
		}
		data[i] = row
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := PCA(data, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKMeans(b *testing.B) {
	const n = 2_000
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{float64(i % 37), float64((i * 7) % 41)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := KMeans(pts, 4, 20, 42); err != nil {
			b.Fatal(err)
		}
	}
}
