package analytics

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1000: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestFFTKnownSpectrum(t *testing.T) {
	// A pure sinusoid at bin 8 of a 64-sample window.
	const n = 64
	sig := make([]float64, n)
	for i := range sig {
		sig[i] = math.Sin(2 * math.Pi * 8 * float64(i) / n)
	}
	spec := FFT(sig)
	if len(spec) != n {
		t.Fatalf("spectrum length %d", len(spec))
	}
	// Energy concentrated at bins 8 and 56 (=n-8).
	for i, c := range spec {
		mag := cmplx.Abs(c)
		if i == 8 || i == n-8 {
			if math.Abs(mag-n/2) > 1e-9 {
				t.Errorf("bin %d magnitude %v, want %v", i, mag, n/2)
			}
		} else if mag > 1e-9 {
			t.Errorf("bin %d should be ~0, got %v", i, mag)
		}
	}
}

func TestFFTIFFTRoundTrip(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 || len(raw) > 256 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				return true
			}
		}
		spec := FFT(raw)
		back, err := IFFT(spec)
		if err != nil {
			return false
		}
		for i, v := range raw {
			if math.Abs(real(back[i])-v) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
	if _, err := IFFT(make([]complex128, 3)); err == nil {
		t.Error("non-power-of-two IFFT should fail")
	}
}

func TestDominantFrequency(t *testing.T) {
	// 5 Hz sine sampled at 125 Hz for 2 seconds.
	const rate, seconds, freq = 125.0, 2, 5.0
	n := int(rate * seconds)
	sig := make([]float64, n)
	for i := range sig {
		sig[i] = math.Sin(2 * math.Pi * freq * float64(i) / rate)
	}
	_, hz := DominantFrequency(sig, rate)
	if math.Abs(hz-freq) > 0.5 {
		t.Errorf("dominant frequency %v Hz, want ~%v", hz, freq)
	}
}

func TestLinearRegressionExact(t *testing.T) {
	// y = 3 + 2a - b, noiseless.
	var xs [][]float64
	var y []float64
	for a := 0.0; a < 5; a++ {
		for b := 0.0; b < 5; b++ {
			xs = append(xs, []float64{a, b})
			y = append(y, 3+2*a-b)
		}
	}
	coef, err := LinearRegression(xs, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, -1}
	for i := range want {
		if math.Abs(coef[i]-want[i]) > 1e-9 {
			t.Errorf("coef[%d] = %v, want %v", i, coef[i], want[i])
		}
	}
	if r2 := RSquared(xs, y, coef); math.Abs(r2-1) > 1e-12 {
		t.Errorf("R² = %v, want 1", r2)
	}
}

func TestLinearRegressionErrors(t *testing.T) {
	if _, err := LinearRegression(nil, nil); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := LinearRegression([][]float64{{1}}, []float64{1}); err == nil {
		t.Error("n < params should fail")
	}
	// Collinear columns → singular.
	xs := [][]float64{{1, 2}, {2, 4}, {3, 6}, {4, 8}}
	if _, err := LinearRegression(xs, []float64{1, 2, 3, 4}); err == nil {
		t.Error("collinear design should fail")
	}
}

func TestSolveLinearSystem(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	x, err := SolveLinearSystem(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("solution %v, want [1 3]", x)
	}
	if _, err := SolveLinearSystem([][]float64{{0, 0}, {0, 0}}, []float64{1, 1}); err == nil {
		t.Error("singular should fail")
	}
	if _, err := SolveLinearSystem([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("shape mismatch should fail")
	}
}

func TestStatsHelpers(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("mean = %v", m)
	}
	if sd := StdDev(xs); math.Abs(sd-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("stddev = %v", sd)
	}
	if Mean(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("degenerate stats")
	}
	c, err := Correlation([]float64{1, 2, 3}, []float64{2, 4, 6})
	if err != nil || math.Abs(c-1) > 1e-12 {
		t.Errorf("perfect correlation: %v %v", c, err)
	}
	c, _ = Correlation([]float64{1, 2, 3}, []float64{3, 2, 1})
	if math.Abs(c+1) > 1e-12 {
		t.Errorf("perfect anticorrelation: %v", c)
	}
	if _, err := Correlation([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("zero variance should fail")
	}
}

func TestNormalizedRMSE(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if d, err := NormalizedRMSE(a, a); err != nil || d != 0 {
		t.Errorf("identical series NRMSE = %v %v", d, err)
	}
	b := []float64{2, 3, 4, 5}
	d, err := NormalizedRMSE(a, b)
	if err != nil || d <= 0 {
		t.Errorf("shifted series NRMSE = %v %v", d, err)
	}
	if _, err := NormalizedRMSE(a, a[:2]); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestPowerIteration(t *testing.T) {
	// Matrix [[4 1],[2 3]] has eigenvalues 5 and 2.
	m := [][]float64{{4, 1}, {2, 3}}
	matvec := func(x []float64) []float64 {
		return []float64{m[0][0]*x[0] + m[0][1]*x[1], m[1][0]*x[0] + m[1][1]*x[1]}
	}
	lambda, vec, err := PowerIteration(matvec, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lambda-5) > 1e-6 {
		t.Errorf("dominant eigenvalue %v, want 5", lambda)
	}
	// Eigenvector for λ=5 is ∝ (1,1).
	if math.Abs(math.Abs(vec[0])-math.Abs(vec[1])) > 1e-6 {
		t.Errorf("eigenvector %v, want ∝ (1,1)", vec)
	}
	if _, _, err := PowerIteration(matvec, 0, 10); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestPCA(t *testing.T) {
	// Points along the line y = 2x with small orthogonal jitter: the
	// first component must be ∝ (1,2)/√5.
	var data [][]float64
	for i := -10; i <= 10; i++ {
		x := float64(i)
		jitter := 0.01 * float64(i%3)
		data = append(data, []float64{x - 2*jitter/math.Sqrt(5), 2*x + jitter/math.Sqrt(5)})
	}
	comps, vars, err := PCA(data, 2)
	if err != nil {
		t.Fatal(err)
	}
	c0 := comps[0]
	ratio := c0[1] / c0[0]
	if math.Abs(ratio-2) > 0.01 {
		t.Errorf("first component slope %v, want 2", ratio)
	}
	if vars[0] < 100*vars[1] {
		t.Errorf("variance ordering: %v", vars)
	}
	if _, _, err := PCA(data, 5); err == nil {
		t.Error("k > d should fail")
	}
	if _, _, err := PCA(data[:1], 1); err == nil {
		t.Error("single point should fail")
	}
}

func TestKMeansSeparatesClusters(t *testing.T) {
	var pts [][]float64
	for i := 0; i < 20; i++ {
		pts = append(pts, []float64{float64(i%5) * 0.1, float64(i%7) * 0.1})       // near origin
		pts = append(pts, []float64{10 + float64(i%5)*0.1, 10 + float64(i%7)*0.1}) // near (10,10)
	}
	cents, assign, err := KMeans(pts, 2, 50, 42)
	if err != nil {
		t.Fatal(err)
	}
	// Points at even indexes (origin cluster) must share one label, odd
	// indexes the other.
	a0 := assign[0]
	for i := 0; i < len(pts); i += 2 {
		if assign[i] != a0 {
			t.Fatalf("origin cluster split at %d", i)
		}
	}
	if assign[1] == a0 {
		t.Fatal("clusters merged")
	}
	// Centroids near (0.2,0.3) and (10.2,10.3).
	lo, hi := cents[a0], cents[assign[1]]
	if lo[0] > 1 || hi[0] < 9 {
		t.Errorf("centroids: %v", cents)
	}
	if _, _, err := KMeans(pts, 0, 10, 1); err == nil {
		t.Error("k=0 should fail")
	}
	if _, _, err := KMeans(pts, len(pts)+1, 10, 1); err == nil {
		t.Error("k>n should fail")
	}
}

func TestKMeansDeterministic(t *testing.T) {
	pts := [][]float64{{1, 1}, {1, 2}, {9, 9}, {9, 8}, {5, 5}}
	c1, a1, _ := KMeans(pts, 2, 20, 7)
	c2, a2, _ := KMeans(pts, 2, 20, 7)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("k-means not deterministic for same seed")
		}
	}
	for i := range c1 {
		for j := range c1[i] {
			if c1[i][j] != c2[i][j] {
				t.Fatal("centroids not deterministic")
			}
		}
	}
}
