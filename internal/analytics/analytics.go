// Package analytics implements the complex-analytics layer of BigDAWG
// (§2.4 of the paper): FFT, linear regression, PCA, k-means clustering
// and power iteration — "the vast majority [of predictive models] are
// based on linear algebra and often use recursion". The kernels operate
// on plain float slices so they couple tightly to the array and TileDB
// engines (no format conversion), which is exactly the design point the
// paper argues for.
package analytics

import (
	"fmt"
	"math"
	"math/cmplx"
)

// NextPow2 returns the smallest power of two ≥ n (and ≥ 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// FFT computes the discrete Fourier transform of a real signal using an
// iterative radix-2 Cooley-Tukey algorithm. Input is zero-padded to the
// next power of two.
func FFT(signal []float64) []complex128 {
	n := NextPow2(len(signal))
	a := make([]complex128, n)
	for i, v := range signal {
		a[i] = complex(v, 0)
	}
	fftInPlace(a, false)
	return a
}

// IFFT computes the inverse DFT. len(spectrum) must be a power of two.
func IFFT(spectrum []complex128) ([]complex128, error) {
	n := len(spectrum)
	if n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("analytics: IFFT length %d is not a power of two", n)
	}
	a := make([]complex128, n)
	copy(a, spectrum)
	fftInPlace(a, true)
	inv := complex(1/float64(n), 0)
	for i := range a {
		a[i] *= inv
	}
	return a, nil
}

func fftInPlace(a []complex128, inverse bool) {
	n := len(a)
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := 2 * math.Pi / float64(length)
		if !inverse {
			ang = -ang
		}
		wl := cmplx.Rect(1, ang)
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			half := length / 2
			for j := 0; j < half; j++ {
				u := a[i+j]
				v := a[i+j+half] * w
				a[i+j] = u + v
				a[i+j+half] = u - v
				w *= wl
			}
		}
	}
}

// PowerSpectrum returns |FFT|² for the first n/2+1 bins (the one-sided
// spectrum of a real signal).
func PowerSpectrum(signal []float64) []float64 {
	spec := FFT(signal)
	half := len(spec)/2 + 1
	out := make([]float64, half)
	for i := 0; i < half; i++ {
		out[i] = real(spec[i])*real(spec[i]) + imag(spec[i])*imag(spec[i])
	}
	return out
}

// DominantFrequency returns the non-DC bin with the highest power and
// its frequency in Hz given the sampling rate.
func DominantFrequency(signal []float64, sampleRate float64) (bin int, hz float64) {
	ps := PowerSpectrum(signal)
	best, bestP := 1, 0.0
	for i := 1; i < len(ps); i++ {
		if ps[i] > bestP {
			best, bestP = i, ps[i]
		}
	}
	n := NextPow2(len(signal))
	return best, float64(best) * sampleRate / float64(n)
}

// LinearRegression fits y = b0 + b1*x1 + ... + bk*xk by least squares
// via the normal equations. xs is row-major: one row per observation.
// Returns the coefficient vector [b0, b1, ..., bk].
func LinearRegression(xs [][]float64, y []float64) ([]float64, error) {
	n := len(xs)
	if n == 0 || n != len(y) {
		return nil, fmt.Errorf("analytics: regression needs matching non-empty xs and y")
	}
	k := len(xs[0])
	d := k + 1 // with intercept
	if n < d {
		return nil, fmt.Errorf("analytics: regression needs at least %d observations, got %d", d, n)
	}
	// Build X'X (d×d) and X'y (d).
	xtx := make([][]float64, d)
	for i := range xtx {
		xtx[i] = make([]float64, d)
	}
	xty := make([]float64, d)
	row := make([]float64, d)
	for i := 0; i < n; i++ {
		if len(xs[i]) != k {
			return nil, fmt.Errorf("analytics: ragged xs at row %d", i)
		}
		row[0] = 1
		copy(row[1:], xs[i])
		for a := 0; a < d; a++ {
			for b := 0; b < d; b++ {
				xtx[a][b] += row[a] * row[b]
			}
			xty[a] += row[a] * y[i]
		}
	}
	coef, err := SolveLinearSystem(xtx, xty)
	if err != nil {
		return nil, fmt.Errorf("analytics: singular design matrix: %w", err)
	}
	return coef, nil
}

// RSquared computes the coefficient of determination of a fitted model.
func RSquared(xs [][]float64, y []float64, coef []float64) float64 {
	meanY := Mean(y)
	var ssTot, ssRes float64
	for i, row := range xs {
		pred := coef[0]
		for j, x := range row {
			pred += coef[j+1] * x
		}
		ssRes += (y[i] - pred) * (y[i] - pred)
		ssTot += (y[i] - meanY) * (y[i] - meanY)
	}
	if ssTot == 0 {
		return 1
	}
	return 1 - ssRes/ssTot
}

// SolveLinearSystem solves Ax = b by Gaussian elimination with partial
// pivoting. A is modified in place conceptually (a copy is taken).
func SolveLinearSystem(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, fmt.Errorf("analytics: malformed system")
	}
	// Augmented copy.
	m := make([][]float64, n)
	for i := range m {
		if len(a[i]) != n {
			return nil, fmt.Errorf("analytics: non-square matrix")
		}
		m[i] = make([]float64, n+1)
		copy(m[i], a[i])
		m[i][n] = b[i]
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("analytics: singular matrix at column %d", col)
		}
		m[col], m[pivot] = m[pivot], m[col]
		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := m[r][n]
		for c := r + 1; c < n; c++ {
			sum -= m[r][c] * x[c]
		}
		x[r] = sum / m[r][r]
	}
	return x, nil
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, v := range xs {
		ss += (v - m) * (v - m)
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Correlation returns the Pearson correlation of two equal-length series.
func Correlation(x, y []float64) (float64, error) {
	if len(x) != len(y) || len(x) < 2 {
		return 0, fmt.Errorf("analytics: correlation needs two equal series of length ≥ 2")
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, fmt.Errorf("analytics: zero variance series")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// NormalizedRMSE returns RMSE(a,b) divided by the standard deviation of
// b; it is the waveform-vs-reference distance used by the real-time
// anomaly monitor.
func NormalizedRMSE(a, b []float64) (float64, error) {
	if len(a) != len(b) || len(a) == 0 {
		return 0, fmt.Errorf("analytics: NRMSE needs equal non-empty series")
	}
	var ss float64
	for i := range a {
		d := a[i] - b[i]
		ss += d * d
	}
	rmse := math.Sqrt(ss / float64(len(a)))
	sd := StdDev(b)
	if sd == 0 {
		return rmse, nil
	}
	return rmse / sd, nil
}

// PowerIteration finds the dominant eigenvalue/eigenvector of the
// linear operator matvec (n×n) by repeated multiplication — the
// paper's example of recursion in complex analytics.
func PowerIteration(matvec func(x []float64) []float64, n, iters int) (float64, []float64, error) {
	if n <= 0 {
		return 0, nil, fmt.Errorf("analytics: power iteration needs n > 0")
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = 1 / math.Sqrt(float64(n))
	}
	var lambda float64
	for it := 0; it < iters; it++ {
		w := matvec(v)
		if len(w) != n {
			return 0, nil, fmt.Errorf("analytics: matvec returned %d entries, want %d", len(w), n)
		}
		norm := 0.0
		for _, x := range w {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return 0, v, nil // operator annihilated v
		}
		for i := range w {
			w[i] /= norm
		}
		lambda = dot(matvec(w), w)
		v = w
	}
	return lambda, v, nil
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// PCA computes the top-k principal components of row-major data by
// power iteration with deflation on the covariance matrix. Returns the
// component vectors (k×d) and their explained variances.
func PCA(data [][]float64, k int) ([][]float64, []float64, error) {
	n := len(data)
	if n < 2 {
		return nil, nil, fmt.Errorf("analytics: PCA needs ≥ 2 observations")
	}
	d := len(data[0])
	if k <= 0 || k > d {
		return nil, nil, fmt.Errorf("analytics: PCA k=%d out of range (d=%d)", k, d)
	}
	// Covariance matrix.
	means := make([]float64, d)
	for _, row := range data {
		if len(row) != d {
			return nil, nil, fmt.Errorf("analytics: ragged PCA input")
		}
		for j, v := range row {
			means[j] += v
		}
	}
	for j := range means {
		means[j] /= float64(n)
	}
	cov := make([][]float64, d)
	for i := range cov {
		cov[i] = make([]float64, d)
	}
	for _, row := range data {
		for i := 0; i < d; i++ {
			di := row[i] - means[i]
			for j := i; j < d; j++ {
				cov[i][j] += di * (row[j] - means[j])
			}
		}
	}
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			cov[i][j] /= float64(n - 1)
			cov[j][i] = cov[i][j]
		}
	}
	comps := make([][]float64, 0, k)
	vars := make([]float64, 0, k)
	for c := 0; c < k; c++ {
		matvec := func(x []float64) []float64 {
			y := make([]float64, d)
			for i := 0; i < d; i++ {
				y[i] = dot(cov[i], x)
			}
			return y
		}
		lambda, vec, err := PowerIteration(matvec, d, 200)
		if err != nil {
			return nil, nil, err
		}
		comps = append(comps, vec)
		vars = append(vars, lambda)
		// Deflate: cov -= lambda * vec vecᵀ.
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				cov[i][j] -= lambda * vec[i] * vec[j]
			}
		}
	}
	return comps, vars, nil
}

// KMeans clusters row-major points into k clusters with Lloyd's
// algorithm, deterministic given the seed. Returns centroids and the
// per-point assignment.
func KMeans(points [][]float64, k, maxIters int, seed int64) ([][]float64, []int, error) {
	n := len(points)
	if n == 0 || k <= 0 || k > n {
		return nil, nil, fmt.Errorf("analytics: k-means needs 0 < k ≤ n")
	}
	d := len(points[0])
	rng := seed*2862933555777941757 + 3037000493
	next := func(bound int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		v := (rng >> 33) % int64(bound)
		if v < 0 {
			v += int64(bound)
		}
		return int(v)
	}
	centroids := make([][]float64, k)
	used := map[int]bool{}
	for c := 0; c < k; c++ {
		i := next(n)
		for used[i] {
			i = (i + 1) % n
		}
		used[i] = true
		centroids[c] = append([]float64(nil), points[i]...)
	}
	assign := make([]int, n)
	for it := 0; it < maxIters; it++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c, cent := range centroids {
				dist := 0.0
				for j := 0; j < d; j++ {
					dd := p[j] - cent[j]
					dist += dd * dd
				}
				if dist < bestD {
					best, bestD = c, dist
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && it > 0 {
			break
		}
		sums := make([][]float64, k)
		counts := make([]int, k)
		for c := range sums {
			sums[c] = make([]float64, d)
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for j, v := range p {
				sums[c][j] += v
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				continue // keep old centroid for empty cluster
			}
			for j := range centroids[c] {
				centroids[c][j] = sums[c][j] / float64(counts[c])
			}
		}
	}
	return centroids, assign, nil
}
