package core

import (
	"fmt"
	"strings"
)

// Island names the front-facing abstractions of the federation.
type Island string

// The eight islands of the reference implementation.
const (
	IslandRelational Island = "RELATIONAL"
	IslandArray      Island = "ARRAY"
	IslandD4M        Island = "D4M"
	IslandMyria      Island = "MYRIA"
	IslandPostgres   Island = "POSTGRES"
	IslandSciDB      Island = "SCIDB"
	IslandAccumulo   Island = "ACCUMULO"
	IslandSStore     Island = "SSTORE"
)

// Islands lists every island the polystore hosts.
func Islands() []Island {
	return []Island{
		IslandRelational, IslandArray, IslandD4M, IslandMyria,
		IslandPostgres, IslandSciDB, IslandAccumulo, IslandSStore,
	}
}

// scopedQuery is one parsed SCOPE specification: island plus body.
type scopedQuery struct {
	island Island
	body   string
}

// parseScope parses "ISLAND( body )". The SCOPE specification of §2.1
// is exactly this island designation.
func parseScope(q string) (scopedQuery, error) {
	q = strings.TrimSpace(q)
	open := strings.IndexByte(q, '(')
	if open <= 0 || !strings.HasSuffix(q, ")") {
		return scopedQuery{}, fmt.Errorf("core: query must be ISLAND(...): %q", q)
	}
	name := Island(strings.ToUpper(strings.TrimSpace(q[:open])))
	switch name {
	case IslandRelational, IslandArray, IslandD4M, IslandMyria,
		IslandPostgres, IslandSciDB, IslandAccumulo, IslandSStore:
	case "TEXT": // convenience alias for the text island
		name = IslandAccumulo
	case "STREAM":
		name = IslandSStore
	default:
		return scopedQuery{}, fmt.Errorf("core: unknown island %q", name)
	}
	body := q[open+1 : len(q)-1]
	if !balanced(body) {
		return scopedQuery{}, fmt.Errorf("core: unbalanced parentheses in %q", q)
	}
	return scopedQuery{island: name, body: strings.TrimSpace(body)}, nil
}

// balanced checks parenthesis balance outside single-quoted strings.
func balanced(s string) bool {
	depth := 0
	inStr := false
	for i := 0; i < len(s); i++ {
		switch {
		case inStr:
			if s[i] == '\'' {
				inStr = false
			}
		case s[i] == '\'':
			inStr = true
		case s[i] == '(':
			depth++
		case s[i] == ')':
			depth--
			if depth < 0 {
				return false
			}
		}
	}
	return depth == 0 && !inStr
}

// splitTopArgs splits a call body on top-level commas, respecting
// nesting and quotes.
func splitTopArgs(body string) []string {
	var args []string
	depth, start := 0, 0
	inStr := false
	for i := 0; i < len(body); i++ {
		c := body[i]
		switch {
		case inStr:
			if c == '\'' {
				inStr = false
			}
		case c == '\'':
			inStr = true
		case c == '(':
			depth++
		case c == ')':
			depth--
		case c == ',' && depth == 0:
			args = append(args, strings.TrimSpace(body[start:i]))
			start = i + 1
		}
	}
	if tail := strings.TrimSpace(body[start:]); tail != "" || len(args) > 0 {
		args = append(args, tail)
	}
	return args
}

// findCall locates the next case-insensitive occurrence of name+"("
// outside quotes at or after from, returning the index of the name and
// the index just past the matching close paren, or ok=false.
func findCall(s, name string, from int) (start, end int, ok bool) {
	upper := strings.ToUpper(s)
	uname := strings.ToUpper(name) + "("
	inStr := false
	for i := from; i+len(uname) <= len(s); i++ {
		if inStr {
			if s[i] == '\'' {
				inStr = false
			}
			continue
		}
		if s[i] == '\'' {
			inStr = true
			continue
		}
		if !strings.HasPrefix(upper[i:], uname) {
			continue
		}
		// Require a word boundary before the name.
		if i > 0 && (isWordChar(s[i-1])) {
			continue
		}
		// Find matching close paren.
		depth := 0
		inner := false
		for j := i + len(uname) - 1; j < len(s); j++ {
			switch {
			case inner:
				if s[j] == '\'' {
					inner = false
				}
			case s[j] == '\'':
				inner = true
			case s[j] == '(':
				depth++
			case s[j] == ')':
				depth--
				if depth == 0 {
					return i, j + 1, true
				}
			}
		}
		return 0, 0, false // unbalanced
	}
	return 0, 0, false
}

func isWordChar(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// castTargetEngine maps a CAST target model name to an engine.
func castTargetEngine(name string) (EngineKind, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "relation", "relational", "postgres", "table":
		return EnginePostgres, nil
	case "array", "scidb":
		return EngineSciDB, nil
	case "text", "keyvalue", "accumulo":
		return EngineAccumulo, nil
	case "tiledb":
		return EngineTileDB, nil
	default:
		return "", fmt.Errorf("core: unknown CAST target %q", name)
	}
}
