package core

// Benchmarks for the cross-island CAST pushdown planner. The scenario
// is the acceptance case from the planner's design: a 6-column table,
// a ≤10% selective predicate, 2 referenced columns — pushdown should
// move ~5x+ fewer bytes and finish correspondingly faster than the
// migrate-everything baseline. bench.sh snapshots these numbers into
// BENCH_cast_pushdown.json; wire_bytes/op is the custom metric that
// records CastResult.Bytes.

import (
	"context"
	"fmt"
	"io"
	"testing"

	"repro/internal/fault"
	"repro/internal/trace"
)

// benchStore memoizes one polystore per table size across sub-benchmarks.
var benchStores = map[int]*Polystore{}

func pushdownStore(b *testing.B, rows int) *Polystore {
	b.Helper()
	if p, ok := benchStores[rows]; ok {
		return p
	}
	p := New()
	bigTable(b, p, "big", rows)
	benchStores[rows] = p
	return p
}

func BenchmarkCastPushdown(b *testing.B) {
	for _, rows := range []int{10_000, 100_000} {
		for _, pushed := range []bool{false, true} {
			name := fmt.Sprintf("rows=%d/full", rows)
			opts := CastOptions{}
			if pushed {
				name = fmt.Sprintf("rows=%d/pushdown", rows)
				opts.Predicate, opts.Columns = "a < 10", []string{"a", "b"}
			}
			b.Run(name, func(b *testing.B) {
				p := pushdownStore(b, rows)
				var bytes int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					// Per-iteration closure so cleanup is deferred: the
					// temp target is dropped even if the iteration bails,
					// and the drop itself stays off the timer.
					func() {
						res, err := p.Cast("big", EnginePostgres, opts)
						if err != nil {
							b.Fatal(err)
						}
						bytes = res.Bytes
						b.StopTimer()
						defer b.StartTimer()
						defer p.dropTempObjects([]string{res.Target})
					}()
				}
				b.ReportMetric(float64(bytes), "wire_bytes/op")
			})
		}
	}
}

// BenchmarkQueryPushdown measures the end-to-end island query — parse,
// plan, migrate, execute, clean up — with the planner on vs off.
func BenchmarkQueryPushdown(b *testing.B) {
	const q = `RELATIONAL(SELECT a, b FROM CAST(big, relation) WHERE a < 10)`
	for _, rows := range []int{10_000, 100_000} {
		for _, pushed := range []bool{false, true} {
			name := fmt.Sprintf("rows=%d/planner=off", rows)
			if pushed {
				name = fmt.Sprintf("rows=%d/planner=on", rows)
			}
			b.Run(name, func(b *testing.B) {
				p := pushdownStore(b, rows)
				p.SetPushdown(pushed)
				defer p.SetPushdown(true)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := p.Query(q); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFaultHitDisarmed prices a failpoint call site when nothing
// is armed — the cost every production cast pays per Hit. bench.sh
// --fault snapshots it into BENCH_fault.json; it must stay at a single
// atomic load (~1ns), i.e. zero against cast latency.
func BenchmarkFaultHitDisarmed(b *testing.B) {
	fault.Reset()
	for i := 0; i < b.N; i++ {
		if err := fault.Hit(FpCastDump); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFaultWrapDisarmed prices the writer interposer when nothing
// is armed: Wrap must hand back the original writer, so the write is
// the whole cost.
func BenchmarkFaultWrapDisarmed(b *testing.B) {
	fault.Reset()
	buf := make([]byte, 64<<10)
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		if _, err := fault.Wrap(FpCastPipe, io.Discard).Write(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFaultCastDisarmed runs the acceptance-scenario 10k-row full
// cast with the failpoint suite idle. Its ns/op is directly comparable
// to BenchmarkCastPushdown/rows=10000/full in BENCH_cast_pushdown.json:
// the two must sit within run-to-run noise of each other, proving the
// injected failpoints cost nothing when disabled.
func BenchmarkFaultCastDisarmed(b *testing.B) {
	fault.Reset()
	p := pushdownStore(b, 10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		func() {
			res, err := p.Cast("big", EnginePostgres, CastOptions{})
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			defer b.StartTimer()
			defer p.dropTempObjects([]string{res.Target})
		}()
	}
}

// BenchmarkObsCast prices the cast pipeline's instrumentation.
// trace=off runs on a plain context — the production default, where
// every trace.Start site is one context.Value miss and every span
// method a nil check — and must sit within run-to-run noise of
// BenchmarkFaultCastDisarmed. trace=on carries a live trace, pricing
// the full span tree. bench.sh --obs snapshots the pair into
// BENCH_obs.json.
func BenchmarkObsCast(b *testing.B) {
	for _, traced := range []bool{false, true} {
		name := "trace=off"
		if traced {
			name = "trace=on"
		}
		b.Run(name, func(b *testing.B) {
			p := pushdownStore(b, 10_000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				func() {
					ctx := context.Background()
					var root *trace.Span
					if traced {
						ctx, root = trace.New(ctx, "bench")
					}
					res, err := p.CastCtx(ctx, "big", EnginePostgres, CastOptions{})
					root.End()
					if err != nil {
						b.Fatal(err)
					}
					b.StopTimer()
					defer b.StartTimer()
					defer p.dropTempObjects([]string{res.Target})
				}()
			}
		})
	}
}

// BenchmarkObsQuery is the same pair for the end-to-end island query —
// parse, plan, pushdown cast, execute — so BENCH_obs.json prices the
// instrumentation against the full QueryCtx path too.
func BenchmarkObsQuery(b *testing.B) {
	const q = `RELATIONAL(SELECT a, b FROM CAST(big, relation) WHERE a < 10)`
	for _, traced := range []bool{false, true} {
		name := "trace=off"
		if traced {
			name = "trace=on"
		}
		b.Run(name, func(b *testing.B) {
			p := pushdownStore(b, 10_000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctx := context.Background()
				var root *trace.Span
				if traced {
					ctx, root = trace.New(ctx, "bench")
				}
				_, err := p.QueryCtx(ctx, q)
				root.End()
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
