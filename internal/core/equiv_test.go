package core

// The randomized differential harness for the cross-island CAST
// pushdown planner. For each seed the shared federation generator
// (fedgen.go — also behind the chaos harness and the server load
// driver) builds a small federation plus a batch of cross-island
// SCOPE/CAST queries, then the harness executes every query under
// three configurations that must be observationally identical:
//
//	A — pushdown planner on, vectorized relational executor on (default)
//	B — pushdown off (full-object migration baseline)
//	C — pushdown on, vectorized executor off (interpreted row fallback)
//
// A≡B checks the planner never changes results; A≡C checks the two
// relational executors agree underneath the planner (and transitively
// B≡C re-pins row-vs-vectorized parity on planner-shaped workloads).
// Rows are compared order-insensitively; errors must agree in presence
// (messages may differ between paths).
//
// Reproduce a failure with:
//
//	go test ./internal/core -run TestEquivalenceRandomized -seed <N>

import (
	"flag"
	"fmt"
	"strings"
	"testing"
)

var (
	equivSeed  = flag.Int64("seed", -1, "run the equivalence harness for exactly this seed")
	equivSeeds = flag.Int("seeds", 0, "number of seeds the equivalence harness covers (0 = default)")
)

func TestEquivalenceRandomized(t *testing.T) {
	if *equivSeed >= 0 {
		runEquivSeed(t, *equivSeed)
		return
	}
	n := *equivSeeds
	if n == 0 {
		n = 200
		if testing.Short() {
			n = 40
		}
	}
	for s := 0; s < n; s++ {
		seed := int64(s)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runEquivSeed(t, seed)
		})
	}
}

func runEquivSeed(t *testing.T, seed int64) {
	t.Helper()
	g := NewFedGen(seed)
	objs := g.Catalog()
	queries := g.Queries(objs, 5)

	build := func() *Polystore {
		p := New()
		for _, o := range objs {
			if err := o.Load(p); err != nil {
				t.Fatalf("seed %d: load %s into %s: %v", seed, o.Name, o.Eng, err)
			}
		}
		return p
	}
	a := build()
	b := build()
	b.SetPushdown(false)
	c := build()
	c.Relational.SetVectorized(false)

	for _, q := range queries {
		relA, errA := a.Query(q)
		relB, errB := b.Query(q)
		relC, errC := c.Query(q)
		if (errA == nil) != (errB == nil) || (errA == nil) != (errC == nil) {
			t.Fatalf("seed %d: error divergence on %s\n  pushdown-on:    %v\n  pushdown-off:   %v\n  vectorized-off: %v\n%s",
				seed, q, errA, errB, errC, describeCatalog(objs))
		}
		if errA != nil {
			continue
		}
		ca, cb, cc := canonRelation(relA), canonRelation(relB), canonRelation(relC)
		if ca != cb {
			t.Fatalf("seed %d: pushdown-on vs pushdown-off diverge on %s\non:  %s\noff: %s\n%s",
				seed, q, ca, cb, describeCatalog(objs))
		}
		if ca != cc {
			t.Fatalf("seed %d: vectorized vs row executor diverge on %s\nvec: %s\nrow: %s\n%s",
				seed, q, ca, cc, describeCatalog(objs))
		}
	}
}

func describeCatalog(objs []*FedObject) string {
	var sb strings.Builder
	sb.WriteString("catalog:")
	for _, o := range objs {
		fmt.Fprintf(&sb, " %s@%s(%s)×%d", o.Name, o.Eng,
			strings.Join(o.Rel.Schema.Names(), ","), o.Rel.Len())
	}
	return sb.String()
}
