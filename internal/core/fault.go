package core

import (
	"context"
	"errors"
	"time"

	"repro/internal/engine"
)

// Failpoint names registered by the cast pipeline. Together with the
// codec's frame points (engine.FpEncodeFrame, engine.FpDecodeFrame)
// they cover every stage of dump → encode → pipe → decode → load →
// commit; the chaos harness derives its schedules from this set.
const (
	// FpCastDump fires before the source object is dumped.
	FpCastDump = "cast.dump"
	// FpCastLoad fires before the staged copy starts loading.
	FpCastLoad = "cast.load"
	// FpCastLoadMid fires with the staged copy half-loaded — the point
	// that proves rollback discards partial physical state.
	FpCastLoadMid = "cast.load.mid"
	// FpCastCommit fires before the stage→target rename, the last
	// instant a fault can strike with zero visible effect.
	FpCastCommit = "cast.commit"
	// FpCastPipe interposes on the transport writer (Wrap point):
	// partial-write specs truncate the wire stream mid-frame.
	FpCastPipe = "cast.pipe.write"
)

// CastFailpoints lists every call-site failpoint on the cast path, in
// pipeline order. Chaos schedules draw their error/delay specs from it.
func CastFailpoints() []string {
	return []string{
		FpCastDump,
		engine.FpEncodeFrame,
		engine.FpDecodeFrame,
		FpCastLoad,
		FpCastLoadMid,
		FpCastCommit,
	}
}

// CastWriteFailpoints lists the writer-interposer failpoints on the
// cast path — the points partial-write specs can truncate.
func CastWriteFailpoints() []string {
	return []string{FpCastPipe}
}

// RetryPolicy bounds how a CAST retries faults classified transient:
// up to MaxAttempts total attempts with exponential backoff from
// BaseDelay, capped at MaxDelay. Permanent faults and context
// cancellation never retry.
type RetryPolicy struct {
	MaxAttempts int
	BaseDelay   time.Duration
	MaxDelay    time.Duration
}

// DefaultRetryPolicy is the polystore's out-of-the-box retry budget.
var DefaultRetryPolicy = RetryPolicy{
	MaxAttempts: 3,
	BaseDelay:   time.Millisecond,
	MaxDelay:    50 * time.Millisecond,
}

// backoff is the delay before retry number attempt+1 (attempt counts
// from 0): BaseDelay doubled per attempt, capped at MaxDelay.
func (rp RetryPolicy) backoff(attempt int) time.Duration {
	d := rp.BaseDelay
	if d <= 0 {
		d = DefaultRetryPolicy.BaseDelay
	}
	for i := 0; i < attempt; i++ {
		d *= 2
		if rp.MaxDelay > 0 && d >= rp.MaxDelay {
			return rp.MaxDelay
		}
	}
	if rp.MaxDelay > 0 && d > rp.MaxDelay {
		d = rp.MaxDelay
	}
	return d
}

// IsTransientError reports whether err (anywhere in its chain) is a
// fault the retry policy should spend an attempt on. Errors classify
// themselves via an IsTransient method — injected *fault.Error does,
// and a future networked engine's timeouts can too.
func IsTransientError(err error) bool {
	var t interface{ IsTransient() bool }
	return errors.As(err, &t) && t.IsTransient()
}

// sleepCtx sleeps for d unless the context ends first, in which case
// the context's error is returned.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
