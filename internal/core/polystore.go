// Package core implements the BigDAWG polystore middleware itself: the
// catalog of data objects and their homes, the islands of information
// (Figure 1 of the paper), the SCOPE/CAST query language, shims between
// islands and engines, and the data migrator behind CAST.
//
// The reference implementation hosts eight islands, matching §2.1.1:
//
//	RELATIONAL — multi-engine SQL island (Postgres + SciDB via shims)
//	ARRAY      — multi-engine AFL island (SciDB + TileDB via shims)
//	D4M        — associative arrays over Accumulo/SciDB/Postgres
//	MYRIA      — relational algebra + iteration over Postgres/SciDB
//	POSTGRES   — degenerate island: full native SQL
//	SCIDB      — degenerate island: full native AFL
//	ACCUMULO   — degenerate island: scans + text search commands
//	SSTORE     — degenerate island: stream window commands
package core

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"repro/internal/array"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/kvstore"
	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/relational"
	"repro/internal/stream"
	"repro/internal/tiledb"
)

// EngineKind names a storage engine in the federation.
type EngineKind string

// The storage engines of the reference implementation (§1.1, §2.5).
const (
	EnginePostgres EngineKind = "postgres" // internal/relational
	EngineSciDB    EngineKind = "scidb"    // internal/array
	EngineAccumulo EngineKind = "accumulo" // internal/kvstore
	EngineSStore   EngineKind = "sstore"   // internal/stream
	EngineTileDB   EngineKind = "tiledb"   // internal/tiledb
)

// ObjectInfo is one catalog entry: a logical data object and where it
// physically lives.
type ObjectInfo struct {
	Name     string     // logical name, unique across the federation
	Engine   EngineKind // home engine
	Physical string     // engine-local name
}

// Polystore is the federation: engines, catalog, monitor and islands.
// Build one with New — the metrics plumbing is wired there.
type Polystore struct {
	Relational *relational.DB
	ArrayStore *array.Store
	KV         *kvstore.Store
	Streams    *stream.Engine
	Monitor    *monitor.Monitor

	// Metrics is the polystore's registry: every counter and histogram
	// the execution path populates, plus pull gauges over the engines'
	// own stats. Export it with Metrics.PublishExpvar.
	Metrics *metrics.Registry

	// om holds pre-created handles into Metrics for the hot path, so
	// instrumentation sites never pay a map lookup or a name build.
	om polyMetrics

	mu         sync.RWMutex
	catalog    map[string]ObjectInfo
	tile       map[string]*tiledb.Array
	tempSeq    int
	pushdown   bool
	retry      RetryPolicy
	shardEps   []ShardEndpoint
	placements map[string]Placement
}

// polyMetrics is the set of pre-resolved metric handles the execution
// path updates. All underlying values are atomics in the registry —
// RetryStats/CastStats and concurrent queries read and write them
// race-free.
type polyMetrics struct {
	queryLatency *metrics.Histogram
	queryErrors  *metrics.Counter
	queryCount   map[Island]*metrics.Counter
	classCount   map[monitor.QueryClass]*metrics.Counter

	castLatency     *metrics.Histogram
	castCount       *metrics.Counter
	castErrors      *metrics.Counter
	castRetries     *metrics.Counter
	castRollbacks   *metrics.Counter
	castBytes       *metrics.Counter
	castRowsScanned *metrics.Counter
	castRowsMoved   *metrics.Counter
	castPushed      *metrics.Counter
	castFull        *metrics.Counter

	scatterCount  *metrics.Counter
	scatterPushed *metrics.Counter
	scatterGather *metrics.Counter
}

func newPolyMetrics(r *metrics.Registry) polyMetrics {
	om := polyMetrics{
		queryLatency: r.Histogram("query.latency"),
		queryErrors:  r.Counter("query.errors"),
		queryCount:   map[Island]*metrics.Counter{},
		classCount:   map[monitor.QueryClass]*metrics.Counter{},

		castLatency:     r.Histogram("cast.latency"),
		castCount:       r.Counter("cast.count"),
		castErrors:      r.Counter("cast.errors"),
		castRetries:     r.Counter("cast.retries"),
		castRollbacks:   r.Counter("cast.rollbacks"),
		castBytes:       r.Counter("cast.wire_bytes"),
		castRowsScanned: r.Counter("cast.rows_scanned"),
		castRowsMoved:   r.Counter("cast.rows_moved"),
		castPushed:      r.Counter("cast.pushed"),
		castFull:        r.Counter("cast.full"),

		scatterCount:  r.Counter("scatter.count"),
		scatterPushed: r.Counter("scatter.pushdown"),
		scatterGather: r.Counter("scatter.gather"),
	}
	for _, isl := range []Island{IslandRelational, IslandArray, IslandD4M, IslandMyria,
		IslandPostgres, IslandSciDB, IslandAccumulo, IslandSStore} {
		om.queryCount[isl] = r.Counter("query.count." + strings.ToLower(string(isl)))
	}
	for _, qc := range []monitor.QueryClass{monitor.ClassLookup, monitor.ClassSQLAnalytics,
		monitor.ClassLinearAlgebra, monitor.ClassTextSearch, monitor.ClassStreaming} {
		om.classCount[qc] = r.Counter("query.class." + string(qc))
	}
	return om
}

// CastStats reports how many CASTs actually ran with pushdown (a
// source-side predicate or projection applied before the wire) versus
// migrating the whole object. Backed by registry counters, so reads are
// race-clean under concurrent queries.
func (p *Polystore) CastStats() (pushed, full int64) {
	return p.om.castPushed.Load(), p.om.castFull.Load()
}

// New assembles a polystore with fresh engines.
func New() *Polystore {
	reg := metrics.NewRegistry()
	p := &Polystore{
		Relational: relational.NewDB(),
		ArrayStore: array.NewStore(),
		KV:         kvstore.NewStore(),
		Streams:    stream.NewEngine(),
		Monitor:    monitor.New(),
		Metrics:    reg,
		om:         newPolyMetrics(reg),
		catalog:    map[string]ObjectInfo{},
		tile:       map[string]*tiledb.Array{},
		placements: map[string]Placement{},
		pushdown:   true,
	}
	// Pull gauges: the engines keep their own atomic stats; the registry
	// reads them at snapshot time.
	reg.GaugeFunc("engine.postgres.queries", func() int64 { return p.Relational.Stats().Queries })
	reg.GaugeFunc("engine.postgres.rows_scanned", func() int64 { return p.Relational.Stats().RowsScanned })
	reg.GaugeFunc("fault.hits", func() int64 {
		var n int64
		for _, fp := range CastFailpoints() {
			n += int64(fault.Fired(fp))
		}
		for _, fp := range CastWriteFailpoints() {
			n += int64(fault.Fired(fp))
		}
		return n
	})
	return p
}

// SetPushdown toggles the cross-island CAST pushdown planner (on by
// default). With it off, every CAST migrates its source object in full
// and the island body does all filtering after the move — the baseline
// the planner is benchmarked (and differentially tested) against.
func (p *Polystore) SetPushdown(on bool) {
	p.mu.Lock()
	p.pushdown = on
	p.mu.Unlock()
}

func (p *Polystore) pushdownOn() bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.pushdown
}

// SetRetryPolicy overrides the transient-fault retry budget for CASTs
// (DefaultRetryPolicy when unset or when MaxAttempts ≤ 0).
func (p *Polystore) SetRetryPolicy(rp RetryPolicy) {
	p.mu.Lock()
	p.retry = rp
	p.mu.Unlock()
}

func (p *Polystore) retryPolicy() RetryPolicy {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.retry.MaxAttempts <= 0 {
		return DefaultRetryPolicy
	}
	return p.retry
}

// RetryStats reports how many retry attempts CASTs have spent since
// the polystore was assembled — both the transient-fault retry loop and
// the planner's zero-match fallback recast. Backed by a registry
// counter, so reads are race-clean under concurrent queries.
func (p *Polystore) RetryStats() int64 { return p.om.castRetries.Load() }

// Register adds a catalog entry for an object already present in its
// home engine.
func (p *Polystore) Register(name string, eng EngineKind, physical string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := p.catalog[key]; ok {
		return fmt.Errorf("core: object %q already registered", name)
	}
	if physical == "" {
		physical = name
	}
	switch eng {
	case EnginePostgres, EngineSciDB, EngineAccumulo, EngineSStore, EngineTileDB:
	default:
		return fmt.Errorf("core: unknown engine %q", eng)
	}
	p.catalog[key] = ObjectInfo{Name: name, Engine: eng, Physical: physical}
	return nil
}

// Deregister removes a catalog entry (the physical object is left to
// the caller).
func (p *Polystore) Deregister(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.catalog, strings.ToLower(name))
}

// Lookup resolves a logical object.
func (p *Polystore) Lookup(name string) (ObjectInfo, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	info, ok := p.catalog[strings.ToLower(name)]
	return info, ok
}

// Objects lists catalog entries sorted by name.
func (p *Polystore) Objects() []ObjectInfo {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]ObjectInfo, 0, len(p.catalog))
	for _, info := range p.catalog {
		out = append(out, info)
	}
	sortObjects(out)
	return out
}

func sortObjects(s []ObjectInfo) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].Name < s[j-1].Name; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// PutTileDB registers a TileDB array as an engine-resident object.
func (p *Polystore) PutTileDB(a *tiledb.Array) error {
	p.mu.Lock()
	p.tile[strings.ToLower(a.Name)] = a
	p.mu.Unlock()
	return p.Register(a.Name, EngineTileDB, a.Name)
}

// TileDBArray fetches a TileDB array by name.
func (p *Polystore) TileDBArray(name string) (*tiledb.Array, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	a, ok := p.tile[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("core: no tiledb array %q", name)
	}
	return a, nil
}

// tempName mints a fresh name for CAST intermediates.
func (p *Polystore) tempName(prefix string) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tempSeq++
	return fmt.Sprintf("__%s_%d", prefix, p.tempSeq)
}

// Dump exports any catalog object as a relation, whatever engine it
// lives in — the universal egress half of CAST. Sharded objects are
// gathered from their shards in original row order.
func (p *Polystore) Dump(name string) (*engine.Relation, error) {
	if _, sharded := p.placementOf(name); sharded {
		return p.gatherObject(context.Background(), name)
	}
	info, ok := p.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("core: unknown object %q", name)
	}
	switch info.Engine {
	case EnginePostgres:
		return p.Relational.Dump(info.Physical)
	case EngineSciDB:
		a, err := p.ArrayStore.Get(info.Physical)
		if err != nil {
			return nil, err
		}
		return a.Scan(), nil
	case EngineAccumulo:
		return p.KV.Dump(info.Physical)
	case EngineSStore:
		return p.Streams.Dump(info.Physical)
	case EngineTileDB:
		a, err := p.TileDBArray(info.Physical)
		if err != nil {
			return nil, err
		}
		return tileDBToRelation(a)
	default:
		return nil, fmt.Errorf("core: cannot dump from engine %q", info.Engine)
	}
}

func tileDBToRelation(a *tiledb.Array) (*engine.Relation, error) {
	cells, err := a.Read(a.Domain)
	if err != nil {
		return nil, err
	}
	nd := len(a.Domain.Lo)
	cols := make([]engine.Column, 0, nd+1)
	for i := 0; i < nd; i++ {
		cols = append(cols, engine.Col(fmt.Sprintf("d%d", i), engine.TypeInt))
	}
	cols = append(cols, engine.Col("v", engine.TypeFloat))
	rel := engine.NewRelation(engine.Schema{Columns: cols})
	for _, c := range cells {
		row := make(engine.Tuple, 0, nd+1)
		for _, coord := range c.Coords {
			row = append(row, engine.NewInt(coord))
		}
		row = append(row, engine.NewFloat(c.Value))
		_ = rel.Append(row)
	}
	return rel, nil
}
