package core

// The seeded federation generator behind the randomized differential
// harnesses (equiv_test.go, chaos_test.go) and the server load driver
// (cmd/bigdawg -bench-serve): one rand.Rand source fully determines a
// small federation — random schemas, random rows, random engine
// placement — plus a batch of cross-island SCOPE/CAST queries over it.
// Tests use it to compare execution configurations; the load driver
// uses it so concurrent-client benchmarks exercise the same query
// shapes the correctness harnesses pin.

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/engine"
	"repro/internal/stream"
)

// FedObject is one generated catalog object: its logical relation plus
// the engine it calls home.
type FedObject struct {
	Name  string
	Eng   EngineKind
	Rel   *engine.Relation
	Dense bool
}

// Load places the object into its home engine and registers it.
func (o *FedObject) Load(p *Polystore) error {
	if o.Eng != EngineSStore {
		return p.Load(o.Eng, o.Name, o.Rel, CastOptions{Dense: o.Dense})
	}
	// Stream objects: column 0 is the timestamp, the rest the record.
	schema := engine.Schema{Columns: append([]engine.Column{}, o.Rel.Schema.Columns[1:]...)}
	if err := p.Streams.CreateStream(o.Name, schema, o.Rel.Len()+1); err != nil {
		return err
	}
	for _, row := range o.Rel.Tuples {
		rec := stream.Record{TS: row[0].AsInt(), Values: row[1:]}
		if err := p.Streams.Append(o.Name, rec); err != nil {
			return err
		}
	}
	return p.Register(o.Name, EngineSStore, o.Name)
}

// IslandSchema predicts the relation schema the object exposes once
// CAST into an island — what Polystore.Dump of the object produces.
func (o *FedObject) IslandSchema() engine.Schema {
	switch o.Eng {
	case EngineSciDB:
		if o.Rel.Schema.Columns[0].Type != engine.TypeInt {
			cols := append([]engine.Column{engine.Col("i", engine.TypeInt)}, o.Rel.Schema.Columns...)
			return engine.Schema{Columns: cols}
		}
		return o.Rel.Schema
	case EngineAccumulo:
		return kvResultRelation().Schema
	default:
		return o.Rel.Schema
	}
}

// FedGen drives all randomness from one seeded source so a seed fully
// determines catalog and queries.
type FedGen struct {
	rng *rand.Rand
}

// NewFedGen builds a generator for the given seed.
func NewFedGen(seed int64) *FedGen {
	return &FedGen{rng: rand.New(rand.NewSource(seed))}
}

func (g *FedGen) pick(ss []string) string { return ss[g.rng.Intn(len(ss))] }

var fedVocab = []string{"ash", "birch", "cedar", "oak", "pine", "x1", "y2", ""}

// randRelation builds a relation with ncols+1 columns (c0 always
// present, used as row key / array dimension about half the time).
func (g *FedGen) randRelation(rows int) *engine.Relation {
	types := []engine.Type{engine.TypeInt, engine.TypeFloat, engine.TypeString}
	cols := []engine.Column{}
	// c0: INT half the time (array-dim friendly), else FLOAT or STRING.
	t0 := engine.TypeInt
	if g.rng.Intn(2) == 0 {
		t0 = types[g.rng.Intn(len(types))]
	}
	cols = append(cols, engine.Col("c0", t0))
	ncols := 2 + g.rng.Intn(3)
	for i := 1; i <= ncols; i++ {
		cols = append(cols, engine.Col(fmt.Sprintf("c%d", i), types[g.rng.Intn(len(types))]))
	}
	rel := engine.NewRelation(engine.Schema{Columns: cols})
	for r := 0; r < rows; r++ {
		row := make(engine.Tuple, len(cols))
		for j, c := range cols {
			// c0 never NULL (it keys kv rows and array dims); elsewhere ~8%.
			if j > 0 && g.rng.Intn(12) == 0 {
				row[j] = engine.Null
				continue
			}
			switch c.Type {
			case engine.TypeInt:
				if j == 0 {
					row[j] = engine.NewInt(int64(r)) // distinct dim/key values
				} else {
					row[j] = engine.NewInt(int64(g.rng.Intn(26) - 5))
				}
			case engine.TypeFloat:
				row[j] = engine.NewFloat(float64(g.rng.Intn(41)-10) / 2)
			default:
				row[j] = engine.NewString(g.pick(fedVocab))
			}
		}
		_ = rel.Append(row)
	}
	return rel
}

// Catalog places 3-5 generated objects across the four source engines.
func (g *FedGen) Catalog() []*FedObject {
	engines := []EngineKind{EnginePostgres, EngineSciDB, EngineAccumulo, EnginePostgres}
	n := 3 + g.rng.Intn(2)
	objs := make([]*FedObject, 0, n+1)
	for i := 0; i < n; i++ {
		eng := engines[g.rng.Intn(len(engines))]
		if i == 0 {
			eng = EnginePostgres // always at least one relational-resident table
		}
		objs = append(objs, &FedObject{
			Name:  fmt.Sprintf("o%d", i),
			Eng:   eng,
			Rel:   g.randRelation(8 + g.rng.Intn(40)),
			Dense: eng == EngineSciDB && g.rng.Intn(3) == 0,
		})
	}
	if g.rng.Intn(3) == 0 {
		// A stream source: ts INT plus two value columns.
		rel := engine.NewRelation(engine.NewSchema(
			engine.Col("ts", engine.TypeInt),
			engine.Col("v", engine.TypeFloat), engine.Col("tag", engine.TypeString)))
		for r := 0; r < 6+g.rng.Intn(10); r++ {
			_ = rel.Append(engine.Tuple{
				engine.NewInt(int64(r)),
				engine.NewFloat(float64(g.rng.Intn(21)) / 2),
				engine.NewString(g.pick(fedVocab)),
			})
		}
		objs = append(objs, &FedObject{Name: fmt.Sprintf("o%d", n), Eng: EngineSStore, Rel: rel})
	}
	return objs
}

// Queries generates n cross-island queries over the catalog.
func (g *FedGen) Queries(objs []*FedObject, n int) []string {
	qs := make([]string, 0, n)
	for len(qs) < n {
		o := objs[g.rng.Intn(len(objs))]
		switch g.rng.Intn(4) {
		case 0:
			qs = append(qs, g.relationalQuery(o, objs))
		case 1:
			qs = append(qs, g.arrayQuery(o))
		case 2:
			qs = append(qs, g.textQuery(o))
		default:
			qs = append(qs, g.nestedQuery(o))
		}
	}
	return qs
}

// relationalQuery: SELECT over CAST(o, relation), sometimes joined with
// a second (cast or catalog-resident) object.
func (g *FedGen) relationalQuery(o *FedObject, objs []*FedObject) string {
	schema := o.IslandSchema()
	var sb strings.Builder
	sb.WriteString("RELATIONAL(SELECT ")
	switch g.rng.Intn(4) {
	case 0:
		sb.WriteString("*")
	case 1:
		sb.WriteString("COUNT(*) AS n")
	default:
		picked := g.someColumns(schema)
		sb.WriteString(strings.Join(picked, ", "))
	}
	fmt.Fprintf(&sb, " FROM CAST(%s, relation)", o.Name)
	join := g.rng.Intn(4) == 0
	var other *FedObject
	if join {
		other = objs[g.rng.Intn(len(objs))]
		if other == o || other.Eng == EngineSStore {
			join = false
		}
	}
	if join {
		os := other.IslandSchema()
		kind := ""
		if g.rng.Intn(3) == 0 {
			kind = "LEFT "
		}
		lc := schema.Columns[g.rng.Intn(len(schema.Columns))].Name
		rc := os.Columns[g.rng.Intn(len(os.Columns))].Name
		fmt.Fprintf(&sb, " a %sJOIN CAST(%s, relation) b ON a.%s = b.%s", kind, other.Name, lc, rc)
		if g.rng.Intn(2) == 0 {
			fmt.Fprintf(&sb, " WHERE %s", g.predicate(qualifySchema(schema, "a"), 1))
		}
	} else if g.rng.Intn(5) > 0 {
		fmt.Fprintf(&sb, " WHERE %s", g.predicate(schema, 2))
	}
	sb.WriteString(")")
	return sb.String()
}

// someColumns picks a non-empty random subset of the schema's columns,
// in schema order.
func (g *FedGen) someColumns(schema engine.Schema) []string {
	var picked []string
	for _, c := range schema.Columns {
		if g.rng.Intn(2) == 0 {
			picked = append(picked, c.Name)
		}
	}
	if len(picked) == 0 {
		picked = []string{schema.Columns[0].Name}
	}
	return picked
}

// qualifySchema prefixes every column name with an alias qualifier so
// the predicate generator emits qualified references.
func qualifySchema(s engine.Schema, alias string) engine.Schema {
	cols := make([]engine.Column, len(s.Columns))
	for i, c := range s.Columns {
		cols[i] = engine.Column{Name: alias + "." + c.Name, Type: c.Type}
	}
	return engine.Schema{Columns: cols}
}

// arrayQuery: scan/filter/aggregate over CAST(o, array). Aggregates
// occasionally use the domain-sensitive 3-arg (group-by-dim) form and
// calls occasionally put whitespace before the parenthesis — both must
// disable pushdown, not change answers.
func (g *FedGen) arrayQuery(o *FedObject) string {
	schema := o.IslandSchema()
	term := fmt.Sprintf("CAST(%s, array)", o.Name)
	if g.rng.Intn(3) > 0 {
		filter := "filter"
		if g.rng.Intn(8) == 0 {
			filter = "filter " // splitCall tolerates the space
		}
		term = fmt.Sprintf("%s(%s, %s)", filter, term, g.predicate(schema, 1))
	}
	switch g.rng.Intn(3) {
	case 0:
		return fmt.Sprintf("ARRAY(scan(%s))", term)
	default:
		agg := g.pick([]string{"min", "max", "sum", "count", "avg"})
		// Aggregate over an attribute column (a non-leading-INT column when
		// one exists; the last column is always an attribute).
		attr := schema.Columns[len(schema.Columns)-1].Name
		aggregate := "aggregate"
		if g.rng.Intn(8) == 0 {
			aggregate = "aggregate "
		}
		if g.rng.Intn(4) == 0 && schema.Columns[0].Type == engine.TypeInt {
			// 3-arg form: grouped per domain position of the first dim.
			return fmt.Sprintf("ARRAY(%s(%s, %s(%s), %s))",
				aggregate, term, agg, attr, schema.Columns[0].Name)
		}
		return fmt.Sprintf("ARRAY(%s(%s, %s(%s)))", aggregate, term, agg, attr)
	}
}

// textQuery: scan/get/count over CAST(o, text).
func (g *FedGen) textQuery(o *FedObject) string {
	term := fmt.Sprintf("CAST(%s, text)", o.Name)
	// Row keys come from the object's first column, stringified.
	key := func() string {
		if o.Rel.Len() == 0 {
			return "0"
		}
		v := o.Rel.Tuples[g.rng.Intn(o.Rel.Len())][0]
		return strings.ReplaceAll(v.String(), "'", "''")
	}
	switch g.rng.Intn(4) {
	case 0:
		return fmt.Sprintf("TEXT(get(%s, '%s'))", term, key())
	case 1:
		return fmt.Sprintf("TEXT(count(%s))", term)
	case 2:
		return fmt.Sprintf("TEXT(scan(%s, '%s'))", term, key())
	default:
		lo, hi := key(), key()
		if lo > hi {
			lo, hi = hi, lo
		}
		return fmt.Sprintf("TEXT(scan(%s, '%s', '%s'))", term, lo, hi)
	}
}

// nestedQuery: an inner island query feeding an outer scope through
// CAST — the multi-scope pipeline of §2.1.
func (g *FedGen) nestedQuery(o *FedObject) string {
	schema := o.IslandSchema()
	inner := fmt.Sprintf("ARRAY(filter(%s, %s))", o.Name, g.predicate(schema, 1))
	// The ARRAY island shims o in; the filtered result keeps o's island
	// schema (plus a synthesized dim when o lacks a leading INT column —
	// computing that exactly mirrors IslandSchema for SciDB residents).
	outSchema := schema
	if schema.Columns[0].Type != engine.TypeInt {
		outSchema = engine.Schema{Columns: append(
			[]engine.Column{engine.Col("i", engine.TypeInt)}, schema.Columns...)}
	}
	if g.rng.Intn(2) == 0 {
		return fmt.Sprintf("RELATIONAL(SELECT COUNT(*) AS n FROM CAST(%s, relation))", inner)
	}
	return fmt.Sprintf("RELATIONAL(SELECT * FROM CAST(%s, relation) WHERE %s)",
		inner, g.predicate(outSchema, 1))
}

// predicate builds a random boolean expression over the schema. depth
// bounds AND/OR/NOT nesting. Division is generated occasionally — its
// row-dependent errors (division by zero) are part of the behavior the
// differential configurations must agree on, and the planner must
// refuse to push any conjunct of a statement that contains one.
func (g *FedGen) predicate(schema engine.Schema, depth int) string {
	if depth > 0 && g.rng.Intn(3) == 0 {
		op := g.pick([]string{"AND", "OR"})
		l := g.predicate(schema, depth-1)
		r := g.predicate(schema, depth-1)
		if g.rng.Intn(6) == 0 {
			return fmt.Sprintf("NOT (%s %s %s)", l, op, r)
		}
		return fmt.Sprintf("(%s %s %s)", l, op, r)
	}
	c := schema.Columns[g.rng.Intn(len(schema.Columns))]
	if g.rng.Intn(12) == 0 {
		// Error-prone arithmetic: divisor may be zero on some rows.
		return fmt.Sprintf("%d / %s %s %s",
			10+g.rng.Intn(20), c.Name, g.pick([]string{">", "<"}), g.literal(engine.TypeInt))
	}
	switch g.rng.Intn(8) {
	case 0:
		if g.rng.Intn(2) == 0 {
			return fmt.Sprintf("%s IS NULL", c.Name)
		}
		return fmt.Sprintf("%s IS NOT NULL", c.Name)
	case 1:
		lo, hi := g.literal(c.Type), g.literal(c.Type)
		return fmt.Sprintf("%s BETWEEN %s AND %s", c.Name, lo, hi)
	case 2:
		items := []string{g.literal(c.Type), g.literal(c.Type), g.literal(c.Type)}
		return fmt.Sprintf("%s IN (%s)", c.Name, strings.Join(items, ", "))
	default:
		op := g.pick([]string{"<", "<=", ">", ">=", "=", "<>"})
		return fmt.Sprintf("%s %s %s", c.Name, op, g.literal(c.Type))
	}
}

// literal renders a random constant of (usually) the column's type;
// ~10% of the time the type is deliberately mismatched to exercise
// mixed-type comparison parity across the execution paths.
func (g *FedGen) literal(t engine.Type) string {
	if g.rng.Intn(10) == 0 {
		all := []engine.Type{engine.TypeInt, engine.TypeFloat, engine.TypeString}
		t = all[g.rng.Intn(len(all))]
	}
	switch t {
	case engine.TypeInt:
		return fmt.Sprintf("%d", g.rng.Intn(31)-6)
	case engine.TypeFloat:
		return fmt.Sprintf("%.1f", float64(g.rng.Intn(45)-12)/2)
	default:
		return "'" + g.pick(fedVocab) + "'"
	}
}
