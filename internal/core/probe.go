package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/engine"
	"repro/internal/monitor"
)

// This file implements two systems the paper says BigDAWG is
// investigating (§2.1):
//
//   - a testing system that probes islands looking for areas of common
//     semantics ("to identify such common sub-islands, we are
//     constructing a testing system that will probe islands"), and
//   - automatic processing-location selection ("when multiple islands
//     implement common functionality with the same semantics, then
//     BigDAWG can decide which island will do the processing
//     automatically").

// ProbeTask is one logical operation expressed per island. Islands
// whose results agree on a reference object share semantics for the
// operation and form a common sub-island.
type ProbeTask struct {
	// Name identifies the logical operation, e.g. "count", "sum_v".
	Name string
	// Queries maps island → concrete query text computing the operation
	// over the probe object. Islands absent from the map do not claim
	// the capability.
	Queries map[Island]string
}

// ProbeResult reports which islands agree on one task.
type ProbeResult struct {
	Task string
	// Agreeing lists islands whose results matched the majority answer.
	Agreeing []Island
	// Disagreeing lists islands that answered but differed.
	Disagreeing []Island
	// Failed lists islands whose query errored (capability absent).
	Failed []Island
}

// ProbeCommonSemantics executes every task on every island that claims
// it and clusters islands by answer equality. Results are compared as
// sorted value matrices so row order and column naming differences
// between islands do not mask semantic agreement.
func (p *Polystore) ProbeCommonSemantics(tasks []ProbeTask) ([]ProbeResult, error) {
	if len(tasks) == 0 {
		return nil, fmt.Errorf("core: no probe tasks")
	}
	var out []ProbeResult
	for _, task := range tasks {
		res := ProbeResult{Task: task.Name}
		answers := map[Island]string{}
		islands := make([]Island, 0, len(task.Queries))
		for island := range task.Queries {
			islands = append(islands, island)
		}
		sort.Slice(islands, func(i, j int) bool { return islands[i] < islands[j] })
		for _, island := range islands {
			rel, err := p.Query(string(island) + "(" + task.Queries[island] + ")")
			if err != nil {
				res.Failed = append(res.Failed, island)
				continue
			}
			answers[island] = canonicalAnswer(rel)
		}
		// Majority answer wins; ties break toward the lexicographically
		// smallest answer for determinism.
		counts := map[string]int{}
		for _, a := range answers {
			counts[a]++
		}
		best, bestN := "", -1
		keys := make([]string, 0, len(counts))
		for a := range counts {
			keys = append(keys, a)
		}
		sort.Strings(keys)
		for _, a := range keys {
			if counts[a] > bestN {
				best, bestN = a, counts[a]
			}
		}
		for _, island := range islands {
			a, ok := answers[island]
			if !ok {
				continue
			}
			if a == best {
				res.Agreeing = append(res.Agreeing, island)
			} else {
				res.Disagreeing = append(res.Disagreeing, island)
			}
		}
		out = append(out, res)
	}
	return out, nil
}

// canonicalAnswer renders a relation order- and naming-insensitively:
// numeric cells round to 9 significant digits so float paths through
// different engines still compare equal.
func canonicalAnswer(rel *engine.Relation) string {
	rows := make([]string, 0, rel.Len())
	for _, t := range rel.Tuples {
		row := ""
		for _, v := range t {
			switch v.Kind {
			case engine.TypeFloat, engine.TypeInt, engine.TypeBool:
				row += fmt.Sprintf("%.9g|", v.AsFloat())
			default:
				row += v.String() + "|"
			}
		}
		rows = append(rows, row)
	}
	sort.Strings(rows)
	out := ""
	for _, r := range rows {
		out += r + "\n"
	}
	return out
}

// AutoTask is a logical operation the polystore may execute on any of
// several islands with identical semantics (established via probing).
type AutoTask struct {
	// Name keys monitoring observations.
	Name string
	// Class buckets the task for the monitor.
	Class monitor.QueryClass
	// Candidates maps island → query text.
	Candidates map[Island]string
}

// AutoResult reports an automatic routing decision.
type AutoResult struct {
	Island  Island
	Elapsed time.Duration
	Reason  string
}

// QueryAuto picks the island for a task automatically: on the first
// calls it round-robins through the candidates to gather observations
// (the probing phase); once every candidate has been measured it
// routes to the lowest-latency island. This is the §2.1 promise that
// users need not write SCOPE by hand when semantics coincide.
func (p *Polystore) QueryAuto(task AutoTask) (*engine.Relation, AutoResult, error) {
	if len(task.Candidates) == 0 {
		return nil, AutoResult{}, fmt.Errorf("core: no candidate islands")
	}
	islands := make([]Island, 0, len(task.Candidates))
	for island := range task.Candidates {
		islands = append(islands, island)
	}
	sort.Slice(islands, func(i, j int) bool { return islands[i] < islands[j] })

	// Unprobed candidate? Measure it now.
	for _, island := range islands {
		if _, seen := p.Monitor.Latency(task.Name, task.Class, string(island)); !seen {
			rel, elapsed, err := p.timedQuery(island, task.Candidates[island])
			if err != nil {
				return nil, AutoResult{}, err
			}
			p.Monitor.Record(task.Name, task.Class, string(island), elapsed)
			return rel, AutoResult{Island: island, Elapsed: elapsed, Reason: "probing"}, nil
		}
	}
	best, _, ok := p.Monitor.BestEngine(task.Name, task.Class)
	if !ok {
		best = string(islands[0])
	}
	island := Island(best)
	if _, claimed := task.Candidates[island]; !claimed {
		island = islands[0]
	}
	rel, elapsed, err := p.timedQuery(island, task.Candidates[island])
	if err != nil {
		return nil, AutoResult{}, err
	}
	p.Monitor.Record(task.Name, task.Class, string(island), elapsed)
	return rel, AutoResult{Island: island, Elapsed: elapsed, Reason: "lowest observed latency"}, nil
}

func (p *Polystore) timedQuery(island Island, body string) (*engine.Relation, time.Duration, error) {
	start := time.Now()
	rel, err := p.Query(string(island) + "(" + body + ")")
	return rel, time.Since(start), err
}
